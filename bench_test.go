package asyncfd_test

import (
	"testing"

	"asyncfd/internal/exp"
)

// The root bench suite regenerates every table and figure of the
// reconstructed evaluation (see README.md, "The experiments") in quick mode — one
// benchmark per experiment, so `go test -bench=. -benchmem` exercises the
// full harness. Use cmd/fdbench for the full-size sweeps.

func benchExperiment(b *testing.B, fn func(exp.Options) (*exp.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(exp.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchAll sweeps every table through the sharded engine at the given pool
// size and reports kernel throughput, so serial and parallel engine runs can
// be compared directly (`-bench 'AllTables'`).
func benchAll(b *testing.B, parallel int) {
	b.Helper()
	b.ReportAllocs()
	var events, runs int64
	for i := 0; i < b.N; i++ {
		stats := &exp.EngineStats{}
		tables, err := exp.All(exp.Options{Quick: true, Seed: int64(i + 1), Parallel: parallel, Stats: stats})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
		events += stats.Events.Load()
		runs += stats.Runs.Load()
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
		b.ReportMetric(float64(runs)/secs, "runs/sec")
	}
}

// BenchmarkAllTablesSerial — the full quick-mode sweep on one worker.
func BenchmarkAllTablesSerial(b *testing.B) { benchAll(b, 1) }

// BenchmarkAllTablesParallel — the same sweep on a worker per CPU; output is
// byte-identical, only wall-clock and throughput change.
func BenchmarkAllTablesParallel(b *testing.B) { benchAll(b, -1) }

// BenchmarkE1DetectionVsN — Table 1: detection time vs n, all detectors.
func BenchmarkE1DetectionVsN(b *testing.B) { benchExperiment(b, exp.E1DetectionVsN) }

// BenchmarkE2DetectionVsF — Figure 1: detection/accuracy vs f (quorum n−f).
func BenchmarkE2DetectionVsF(b *testing.B) { benchExperiment(b, exp.E2DetectionVsF) }

// BenchmarkE3Disturbance — Figure 2: false suspicions around a slowdown.
func BenchmarkE3Disturbance(b *testing.B) { benchExperiment(b, exp.E3Disturbance) }

// BenchmarkE4QoS — Table 2: QoS under delay-distribution sweep.
func BenchmarkE4QoS(b *testing.B) { benchExperiment(b, exp.E4QoS) }

// BenchmarkE5MessageCost — Figure 3: message/byte cost vs n.
func BenchmarkE5MessageCost(b *testing.B) { benchExperiment(b, exp.E5MessageCost) }

// BenchmarkE6MPSensitivity — Table 3: sensitivity to the MP assumption.
func BenchmarkE6MPSensitivity(b *testing.B) { benchExperiment(b, exp.E6MPSensitivity) }

// BenchmarkE7Consensus — Figure 4: consensus latency over each detector.
func BenchmarkE7Consensus(b *testing.B) { benchExperiment(b, exp.E7Consensus) }

// BenchmarkE8Propagation — Table 4: suspicion propagation spread vs n.
func BenchmarkE8Propagation(b *testing.B) { benchExperiment(b, exp.E8Propagation) }

// BenchmarkA1TagsAblation — ablation: counter-tag recency guards on/off.
func BenchmarkA1TagsAblation(b *testing.B) { benchExperiment(b, exp.A1TagsAblation) }

// BenchmarkA2WindowAblation — ablation: response collection window sweep.
func BenchmarkA2WindowAblation(b *testing.B) { benchExperiment(b, exp.A2WindowAblation) }

// BenchmarkX1DensityExt — extension figure: detection time vs range density.
func BenchmarkX1DensityExt(b *testing.B) { benchExperiment(b, exp.X1DensityExt) }

// BenchmarkX2MobilityExt — extension figure: false suspicions during a move.
func BenchmarkX2MobilityExt(b *testing.B) { benchExperiment(b, exp.X2MobilityExt) }
