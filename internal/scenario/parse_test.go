package scenario

import (
	"strings"
	"testing"
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/netsim"
)

// clusterDoc is a complete, valid cluster-program scenario exercising
// variants, generators and every metric/column kind.
const clusterDoc = `{
  "schema": "asyncfd-scenario/v1",
  "name": "r1-like",
  "title": "crash-recovery demo",
  "note": "a note",
  "description": "docs",
  "repeat": 3,
  "ci": true,
  "cluster": {
    "n": 6,
    "f": 2,
    "detectors": ["async", "heartbeat"],
    "delay": {"model": "exponential", "min_us": 500, "mean_us": 700, "cap_us": 100000}
  },
  "faults": {
    "variant_header": "state",
    "variants": [
      {
        "name": "fresh",
        "events": [
          {"kind": "crash", "at_us": 10000000, "id": 5},
          {"kind": "recover", "at_us": 20000000, "id": 5, "fresh": true},
          {"kind": "crash", "at_us": 35000000, "id": 5}
        ]
      },
      {
        "name": "flappy",
        "events": [{"kind": "crash", "at_us": 10000000, "id": 5}],
        "generators": [
          {"kind": "flap", "islands": [[0, 1]], "at_us": 15000000, "down_us": 1000000, "period_us": 5000000, "count": 3}
        ]
      }
    ]
  },
  "measure": {
    "program": "cluster",
    "warm_us": 9000000,
    "horizon_us": 50000000,
    "metrics": [
      {"kind": "redetection", "name": "det1", "victim": 5},
      {"kind": "trust-restoration", "name": "restore", "victim": 5},
      {"kind": "redetection", "name": "det2", "victim": 5, "episode": 1},
      {"kind": "storm", "name": "storm", "from_us": 20000000, "to_us": 35000000},
      {"kind": "reconvergence", "name": "settle", "after_us": 30000000}
    ],
    "columns": [
      {"header": "det#1 avg", "metric": "det1", "kind": "fam_ms"},
      {"header": "det#2 max", "metric": "det2", "kind": "max_ms"},
      {"header": "det#2 missing", "metric": "det2", "kind": "missing"},
      {"header": "storm", "metric": "storm", "kind": "fam", "format": "%.2f"},
      {"header": "settle avg", "metric": "settle", "kind": "fam_ms"},
      {"header": "clean runs", "metric": "clean", "kind": "ratio"}
    ]
  },
  "quick": {
    "title": "crash-recovery demo (quick)",
    "repeat": 1
  }
}`

func TestParseClusterScenario(t *testing.T) {
	sc, err := Parse([]byte(clusterDoc), false)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "r1-like" || sc.Title != "crash-recovery demo" || sc.Repeat != 3 || !sc.CI {
		t.Errorf("header fields wrong: %+v", sc)
	}
	if sc.Cluster.N != 6 || sc.Cluster.F != 2 {
		t.Errorf("cluster size wrong: %+v", sc.Cluster)
	}
	exp, ok := sc.Cluster.Delay.(netsim.Exponential)
	if !ok {
		t.Fatalf("delay model %T, want Exponential", sc.Cluster.Delay)
	}
	if exp.Min != 500*time.Microsecond || exp.Mean != 700*time.Microsecond || exp.Cap != 100*time.Millisecond {
		t.Errorf("delay params wrong: %+v", exp)
	}
	if sc.Measure.Program != ProgramCluster {
		t.Errorf("program = %v", sc.Measure.Program)
	}
	if sc.Measure.Warm != 9*time.Second || sc.Measure.Horizon != 50*time.Second {
		t.Errorf("warm/horizon wrong: %v/%v", sc.Measure.Warm, sc.Measure.Horizon)
	}
	if sc.VariantHeader != "state" || len(sc.Variants) != 2 {
		t.Fatalf("variants wrong: header=%q n=%d", sc.VariantHeader, len(sc.Variants))
	}
	if sc.Variants[0].Name != "fresh" || len(sc.Variants[0].Faults) != 3 {
		t.Errorf("variant 0 wrong: %+v", sc.Variants[0])
	}
	// The flap generator expands to 3 partition/heal pairs after the crash.
	flappy := sc.Variants[1].Faults
	if len(flappy) != 1+6 {
		t.Fatalf("flappy schedule has %d events, want 7", len(flappy))
	}
	if flappy[1].Kind != faults.KindPartition || flappy[1].At != 15*time.Second {
		t.Errorf("first flap event wrong: %+v", flappy[1])
	}
	if flappy[2].Kind != faults.KindHeal || flappy[2].At != 16*time.Second {
		t.Errorf("first heal wrong: %+v", flappy[2])
	}
	if flappy[5].Kind != faults.KindPartition || flappy[5].At != 25*time.Second {
		t.Errorf("last flap event wrong: %+v", flappy[5])
	}
	if len(sc.Measure.Metrics) != 5 || len(sc.Measure.Columns) != 6 {
		t.Fatalf("metrics/columns: %d/%d", len(sc.Measure.Metrics), len(sc.Measure.Columns))
	}
	if m := sc.Measure.Metrics[2]; m.Kind != MetricRedetection || m.Episode != 1 || m.Victim != 5 {
		t.Errorf("det2 metric wrong: %+v", m)
	}
	if c := sc.Measure.Columns[3]; c.Kind != ColFam || c.Format != "%.2f" {
		t.Errorf("storm column wrong: %+v", c)
	}
	if c := sc.Measure.Columns[5]; c.Kind != ColRatio || c.Metric != "clean" {
		t.Errorf("clean column wrong: %+v", c)
	}
}

func TestParseQuickOverlay(t *testing.T) {
	sc, err := Parse([]byte(clusterDoc), true)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Title != "crash-recovery demo (quick)" {
		t.Errorf("quick title not applied: %q", sc.Title)
	}
	if sc.Repeat != 1 {
		t.Errorf("quick repeat not applied: %d", sc.Repeat)
	}
	// Unreplaced sections carry over.
	if sc.Cluster.N != 6 || len(sc.Variants) != 2 {
		t.Errorf("full sections should carry over: n=%d variants=%d", sc.Cluster.N, len(sc.Variants))
	}
}

// topoDoc is a valid topology-program scenario.
const topoDoc = `{
  "schema": "asyncfd-scenario/v1",
  "name": "lt-like",
  "title": "topology sweep",
  "cluster": {
    "detectors": ["heartbeat"],
    "delay": {"model": "constant", "d_us": 1000}
  },
  "measure": {
    "program": "topology",
    "horizon_us": 30000000,
    "topologies": ["ring", "grid"],
    "ns": [48, 96],
    "crash_at_us": 10400000
  }
}`

func TestParseTopologyScenario(t *testing.T) {
	sc, err := Parse([]byte(topoDoc), false)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Measure.Program != ProgramTopology {
		t.Fatalf("program = %v", sc.Measure.Program)
	}
	if len(sc.Measure.Topologies) != 2 || len(sc.Measure.Ns) != 2 {
		t.Errorf("sweep axes wrong: %+v", sc.Measure)
	}
	if sc.Measure.Interval != time.Second || sc.Measure.Timeout != 2*time.Second {
		t.Errorf("heartbeat defaults wrong: %v/%v", sc.Measure.Interval, sc.Measure.Timeout)
	}
	if sc.Measure.CrashAt != 10400*time.Millisecond {
		t.Errorf("crash_at wrong: %v", sc.Measure.CrashAt)
	}
	if len(sc.Variants) != 1 || sc.Variants[0].Name != "" || len(sc.Variants[0].Faults) != 0 {
		t.Errorf("topology variants wrong: %+v", sc.Variants)
	}
}

// consensusDoc is a valid consensus-program scenario.
const consensusDoc = `{
  "schema": "asyncfd-scenario/v1",
  "name": "e7-like",
  "title": "consensus bridge",
  "cluster": {
    "n": 5,
    "f": 2,
    "detectors": ["async", "heartbeat", "phi-accrual", "chen-nfde"],
    "delay": {"model": "exponential", "min_us": 500, "mean_us": 700, "cap_us": 100000}
  },
  "faults": {
    "events": [{"kind": "crash", "at_us": 5001000, "id": 0}]
  },
  "measure": {
    "program": "consensus",
    "horizon_us": 120000000,
    "propose_us": 5000000
  }
}`

func TestParseConsensusScenario(t *testing.T) {
	sc, err := Parse([]byte(consensusDoc), false)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Measure.Program != ProgramConsensus {
		t.Fatalf("program = %v", sc.Measure.Program)
	}
	if sc.Measure.Propose != 5*time.Second || sc.Measure.Horizon != 120*time.Second {
		t.Errorf("propose/horizon wrong: %v/%v", sc.Measure.Propose, sc.Measure.Horizon)
	}
	if len(sc.Variants) != 1 || len(sc.Variants[0].Faults) != 1 {
		t.Errorf("consensus variants wrong: %+v", sc.Variants)
	}
}

func TestParseTraceDelay(t *testing.T) {
	doc := `{
	  "schema": "asyncfd-scenario/v1",
	  "name": "trace-demo",
	  "title": "trace replay",
	  "cluster": {
	    "n": 4, "f": 1, "detectors": ["heartbeat"],
	    "delay": {"model": "trace", "synthetic": {"seed": 7, "count": 100, "tick_us": 50000, "base_us": 1000, "scale_us": 2000, "alpha": 1.2, "cap_us": 80000, "loss": 0.05}}
	  },
	  "measure": {
	    "program": "cluster", "horizon_us": 30000000,
	    "metrics": [{"kind": "detection", "name": "det", "victim": 3}],
	    "columns": [{"header": "det avg", "metric": "det", "kind": "fam_ms"}]
	  },
	  "faults": {"events": [{"kind": "crash", "at_us": 10000000, "id": 3}]}
	}`
	sc, err := Parse([]byte(doc), false)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := sc.Cluster.Delay.(netsim.Replay)
	if !ok {
		t.Fatalf("delay model %T, want Replay", sc.Cluster.Delay)
	}
	if rep.Series == nil || len(rep.Series.Samples) != 100 {
		t.Errorf("synthetic series wrong: %+v", rep.Series)
	}
	// Inline series form.
	doc2 := strings.Replace(doc,
		`{"model": "trace", "synthetic": {"seed": 7, "count": 100, "tick_us": 50000, "base_us": 1000, "scale_us": 2000, "alpha": 1.2, "cap_us": 80000, "loss": 0.05}}`,
		`{"model": "trace", "series": {"schema": "asyncfd-trace/v1", "span_us": 2000000, "samples": [{"at_us": 0, "rtt_us": 1400}, {"at_us": 1000000, "rtt_us": 2600, "loss": true}]}}`, 1)
	sc2, err := Parse([]byte(doc2), false)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := sc2.Cluster.Delay.(netsim.Replay)
	if len(rep2.Series.Samples) != 2 || rep2.Series.Span != 2*time.Second {
		t.Errorf("inline series wrong: %+v", rep2.Series)
	}
}

func TestParseUniformCrashesGenerator(t *testing.T) {
	doc := `{
	  "schema": "asyncfd-scenario/v1",
	  "name": "uniform-demo",
	  "title": "uniform crashes",
	  "cluster": {"n": 8, "f": 3, "detectors": ["async"], "delay": {"model": "constant", "d_us": 700}},
	  "faults": {"generators": [{"kind": "uniform-crashes", "seed": 11, "count": 3, "candidates": [1, 2, 3, 4, 5, 6], "start_us": 10000000, "end_us": 40000000}]},
	  "measure": {
	    "program": "cluster", "horizon_us": 60000000,
	    "metrics": [{"kind": "storm", "name": "storm", "from_us": 0, "to_us": 60000000}],
	    "columns": [{"header": "storm", "metric": "storm", "kind": "fam"}]
	  }
	}`
	a, err := Parse([]byte(doc), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(doc), false)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Variants[0].Faults, b.Variants[0].Faults
	if len(fa) != 3 {
		t.Fatalf("uniform-crashes expanded to %d events, want 3", len(fa))
	}
	for i := range fa {
		if fa[i].At != fb[i].At || fa[i].Kind != fb[i].Kind || fa[i].ID != fb[i].ID {
			t.Errorf("event %d differs across parses: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	if fa[0].At != 10*time.Second || fa[2].At != 40*time.Second {
		t.Errorf("crash spread wrong: first %v last %v", fa[0].At, fa[2].At)
	}
}

// TestParseErrors drives the diagnostic contract: each malformed document
// fails with an error mentioning the offending field path.
func TestParseErrors(t *testing.T) {
	valid := func(mutate func(s string) string) string { return mutate(clusterDoc) }
	repl := func(old, new string) func(string) string {
		return func(s string) string {
			if !strings.Contains(s, old) {
				t.Fatalf("mutation target %q not in document", old)
			}
			return strings.Replace(s, old, new, 1)
		}
	}
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "{", "scenario:"},
		{"wrong schema", valid(repl(`"asyncfd-scenario/v1"`, `"asyncfd-scenario/v9"`)), "unknown schema version"},
		{"missing schema", `{"name": "x"}`, "unknown schema version"},
		{"unknown top field", valid(repl(`"name":`, `"bogus": 1, "name":`)), "bogus"},
		{"missing name", valid(repl(`"name": "r1-like",`, ``)), "name: required"},
		{"bad name chars", valid(repl(`"name": "r1-like"`, `"name": "r1 like"`)), "name:"},
		{"missing title", valid(repl(`"title": "crash-recovery demo",`, ``)), "title: required"},
		{"negative repeat", valid(repl(`"repeat": 3`, `"repeat": -1`)), "repeat:"},
		{"n too small", valid(repl(`"n": 6`, `"n": 1`)), "cluster.n:"},
		{"f out of range", valid(repl(`"f": 2`, `"f": 6`)), "cluster.f:"},
		{"unknown detector", valid(repl(`"detectors": ["async", "heartbeat"]`, `"detectors": ["async", "gossip"]`)), "cluster.detectors[1]"},
		{"duplicate detector", valid(repl(`"detectors": ["async", "heartbeat"]`, `"detectors": ["async", "async"]`)), "duplicate detector"},
		{"no delay model", valid(repl(`"delay": {"model": "exponential", "min_us": 500, "mean_us": 700, "cap_us": 100000}`, `"delay": {}`)), "cluster.delay.model"},
		{"unknown delay model", valid(repl(`"model": "exponential"`, `"model": "gaussian"`)), "unknown delay model"},
		{"negative delay field", valid(repl(`"min_us": 500`, `"min_us": -500`)), "min_us"},
		{"unknown event kind", valid(repl(`{"kind": "crash", "at_us": 10000000, "id": 5},`, `{"kind": "melt", "at_us": 10000000, "id": 5},`)), "unknown event kind"},
		{"event id out of range", valid(repl(`{"kind": "crash", "at_us": 10000000, "id": 5},`, `{"kind": "crash", "at_us": 10000000, "id": 9},`)), "outside [0, n=6)"},
		{"double crash", valid(repl(`{"kind": "recover", "at_us": 20000000, "id": 5, "fresh": true},`, `{"kind": "crash", "at_us": 20000000, "id": 5},`)), "already down"},
		{"recover without crash", valid(repl(`{"kind": "crash", "at_us": 10000000, "id": 5},
          {"kind": "recover", "at_us": 20000000, "id": 5, "fresh": true},`, `{"kind": "recover", "at_us": 20000000, "id": 5, "fresh": true},`)), "without a preceding crash"},
		{"event past horizon", valid(repl(`{"kind": "crash", "at_us": 35000000, "id": 5}`, `{"kind": "crash", "at_us": 55000000, "id": 5}`)), "does not precede the horizon"},
		{"island overlap", valid(repl(`"islands": [[0, 1]]`, `"islands": [[0, 1], [1, 2]]`)), "two islands"},
		{"empty island", valid(repl(`"islands": [[0, 1]]`, `"islands": [[]]`)), "must not be empty"},
		{"heal without partition", valid(repl(`"generators": [
          {"kind": "flap", "islands": [[0, 1]], "at_us": 15000000, "down_us": 1000000, "period_us": 5000000, "count": 3}
        ]`, `"events2": []`)), ""},
		{"flap period too small", valid(repl(`"period_us": 5000000`, `"period_us": 500000`)), "period_us"},
		{"flap count zero", valid(repl(`"count": 3`, `"count": 0`)), "count:"},
		{"duplicate variant", valid(repl(`"name": "flappy"`, `"name": "fresh"`)), "duplicate variant"},
		{"variant header missing", valid(repl(`"variant_header": "state",`, ``)), "variant_header"},
		{"no program", valid(repl(`"program": "cluster"`, `"program": ""`)), "measure.program"},
		{"unknown program", valid(repl(`"program": "cluster"`, `"program": "mesh"`)), "unknown program"},
		{"warm past horizon", valid(repl(`"warm_us": 9000000`, `"warm_us": 50000000`)), "horizon_us"},
		{"no metrics", valid(repl(`"metrics": [
      {"kind": "redetection", "name": "det1", "victim": 5},
      {"kind": "trust-restoration", "name": "restore", "victim": 5},
      {"kind": "redetection", "name": "det2", "victim": 5, "episode": 1},
      {"kind": "storm", "name": "storm", "from_us": 20000000, "to_us": 35000000},
      {"kind": "reconvergence", "name": "settle", "after_us": 30000000}
    ],`, `"metrics": [],`)), "measure.metrics"},
		{"unknown metric kind", valid(repl(`{"kind": "storm", "name": "storm"`, `{"kind": "blizzard", "name": "storm"`)), "unknown metric kind"},
		{"duplicate metric name", valid(repl(`"name": "det2"`, `"name": "det1"`)), "duplicate metric name"},
		{"metric victim range", valid(repl(`{"kind": "redetection", "name": "det1", "victim": 5}`, `{"kind": "redetection", "name": "det1", "victim": 6}`)), "victim"},
		{"storm inverted window", valid(repl(`"from_us": 20000000, "to_us": 35000000`, `"from_us": 35000000, "to_us": 20000000`)), "to_us"},
		{"column unknown metric", valid(repl(`"metric": "storm", "kind": "fam"`, `"metric": "blizzard", "kind": "fam"`)), "unknown metric"},
		{"column kind mismatch", valid(repl(`{"header": "storm", "metric": "storm", "kind": "fam", "format": "%.2f"}`, `{"header": "storm", "metric": "storm", "kind": "fam_ms"}`)), "fam_ms needs"},
		{"column bad format", valid(repl(`"format": "%.2f"`, `"format": "%d"`)), "unsupported format"},
		{"format on non-fam", valid(repl(`{"header": "det#2 max", "metric": "det2", "kind": "max_ms"}`, `{"header": "det#2 max", "metric": "det2", "kind": "max_ms", "format": "%.1f"}`)), "only fam columns"},
		{"trailing data", clusterDoc + "{}", "after top-level value"},
		{"topology with cluster n", strings.Replace(topoDoc, `"detectors": ["heartbeat"],`, `"n": 8, "detectors": ["heartbeat"],`, 1), "cluster.n"},
		{"topology wrong detectors", strings.Replace(topoDoc, `["heartbeat"]`, `["async"]`, 1), "cluster.detectors"},
		{"topology unknown family", strings.Replace(topoDoc, `["ring", "grid"]`, `["ring", "hypercube"]`, 1), "unknown topology"},
		{"topology ns range", strings.Replace(topoDoc, `"ns": [48, 96]`, `"ns": [48, 2]`, 1), "measure.ns[1]"},
		{"topology crash past horizon", strings.Replace(topoDoc, `"crash_at_us": 10400000`, `"crash_at_us": 31000000`, 1), "crash_at_us"},
		{"consensus propose missing", strings.Replace(consensusDoc, `"propose_us": 5000000`, `"propose_us": 0`, 1), "propose_us"},
		{"consensus n vs f", strings.Replace(consensusDoc, `"n": 5`, `"n": 4`, 1), "2f+1"},
		{"consensus all crash", strings.Replace(consensusDoc,
			`"events": [{"kind": "crash", "at_us": 5001000, "id": 0}]`,
			`"events": [{"kind": "crash", "at_us": 5001000, "id": 0}, {"kind": "crash", "at_us": 6000000, "id": 1}, {"kind": "crash", "at_us": 7000000, "id": 2}, {"kind": "crash", "at_us": 8000000, "id": 3}, {"kind": "crash", "at_us": 9000000, "id": 4}]`, 1), "survivor"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "heal without partition" {
				// Built directly: a bare heal with no matching partition.
				tc.doc = `{
				  "schema": "asyncfd-scenario/v1", "name": "x", "title": "t",
				  "cluster": {"n": 4, "f": 1, "detectors": ["async"], "delay": {"model": "constant", "d_us": 700}},
				  "faults": {"events": [{"kind": "heal", "at_us": 5000000}]},
				  "measure": {"program": "cluster", "horizon_us": 10000000,
				    "metrics": [{"kind": "storm", "name": "s", "from_us": 0, "to_us": 10000000}],
				    "columns": [{"header": "s", "metric": "s", "kind": "fam"}]}
				}`
				tc.want = "without an active partition"
			}
			_, err := Parse([]byte(tc.doc), false)
			if err == nil {
				t.Fatal("Parse accepted a malformed document")
			}
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Errorf("error missing scenario prefix: %v", err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
