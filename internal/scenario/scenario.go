// Package scenario is the asyncfd-scenario/v1 configuration layer:
// experiments as data instead of code. A scenario JSON document describes a
// cluster (size, detector set, delay model — parametric or recorded-trace
// replay), a fault schedule (explicit crash/recover/partition/heal events
// plus generators for flapping-link trains, crash bursts and uniform crash
// plans), and a measurement program (which qos metrics to extract, how to
// aggregate them into table columns, warm/fork horizon, repeat count).
//
// Parse compiles a document into the typed Scenario in this package —
// netsim.DelayModel, faults.Schedule, ident ids — which
// internal/exp.ScenarioTable then executes on the exact machinery the
// built-in experiments use (runFamilies/runJobs, the shared formatters, the
// v2 sample collector). The compilation bar is strict: any input either
// yields a fully validated scenario or an error naming the offending
// field path; nothing silently defaults and nothing downstream panics
// (partition island overlaps, out-of-order crash/recover pairs and friends
// are all rejected here). FuzzScenarioConfig holds the package to that
// contract.
//
// This package deliberately does not import internal/exp (the execution
// engine imports us), performs no file IO (callers hand it bytes; inline
// trace series keep configs self-contained), and draws no randomness except
// the explicitly seeded generators (uniform-crashes, synthetic traces) —
// so a config names one deterministic experiment, byte-identical at any
// -parallel width, fork on or off.
package scenario

import (
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
)

// Schema is the JSON schema identifier this package accepts.
const Schema = "asyncfd-scenario/v1"

// DetectorNames lists the valid cluster.detectors entries, in the canonical
// presentation order of the built-in sweeps. The names match
// exp.Kind.String().
var DetectorNames = []string{"async", "heartbeat", "phi-accrual", "chen-nfde"}

// Program selects the measurement harness a scenario runs on.
type Program int

const (
	// ProgramCluster is the general harness: the full detector Cluster with
	// a per-variant fault schedule, configurable qos metrics and columns
	// (the harness behind E-series, R1 and R2).
	ProgramCluster Program = iota + 1
	// ProgramTopology is the fixed-shape large-n sweep: neighbor-local
	// heartbeat detection over ring/grid/scale-free/MANET graphs, one crash,
	// detection + traffic columns (the LT harness).
	ProgramTopology
	// ProgramConsensus is the fixed-shape theory bridge: Chandra–Toueg
	// consensus over each detector with a scripted fault schedule, worst
	// survivor decision latency (the E7 harness, generalized to arbitrary
	// schedules).
	ProgramConsensus
)

// String implements fmt.Stringer.
func (p Program) String() string {
	switch p {
	case ProgramCluster:
		return "cluster"
	case ProgramTopology:
		return "topology"
	case ProgramConsensus:
		return "consensus"
	default:
		return "program?"
	}
}

// MetricKind enumerates the qos measurements the cluster program extracts
// per replicate.
type MetricKind int

const (
	// MetricDetection is qos.Judge.DetectionTimes of the victim's first
	// crash over the observers.
	MetricDetection MetricKind = iota + 1
	// MetricRedetection is qos.Judge.RedetectionTimes of downtime episode
	// Episode (0 = first crash).
	MetricRedetection
	// MetricTrustRestoration is qos.Judge.TrustRestorationTimes after
	// recovery Episode.
	MetricTrustRestoration
	// MetricStorm is qos.Judge.MistakeStorm over [From, To).
	MetricStorm
	// MetricReconvergence is qos.Judge.Reconvergence from After; it yields
	// the settle duration under the metric's name and a 0/1 clean indicator
	// under CleanName.
	MetricReconvergence
)

// String implements fmt.Stringer.
func (k MetricKind) String() string {
	switch k {
	case MetricDetection:
		return "detection"
	case MetricRedetection:
		return "redetection"
	case MetricTrustRestoration:
		return "trust-restoration"
	case MetricStorm:
		return "storm"
	case MetricReconvergence:
		return "reconvergence"
	default:
		return "metric?"
	}
}

// Metric is one compiled per-replicate measurement of the cluster program.
type Metric struct {
	// Name keys the metric's samples in the v2 rows (detection-family
	// metrics append _avg_ms/_max_ms) and is what columns reference.
	Name string
	Kind MetricKind
	// Victim is the judged process of detection-family metrics.
	Victim ident.ID
	// Observers restricts which processes' suspicions are judged; empty =
	// every cluster member except the victim.
	Observers []ident.ID
	// Episode selects the downtime/recovery episode of redetection and
	// trust-restoration metrics (0-based).
	Episode int
	// From, To bound a storm metric's counting window.
	From, To time.Duration
	// After is a reconvergence metric's start (typically the heal time).
	After time.Duration
	// CleanName keys the reconvergence clean indicator (default "clean").
	CleanName string
}

// ColumnKind enumerates the aggregations a table column applies to its
// metric's replicate values.
type ColumnKind int

const (
	// ColFamMS renders mean ±ci95 in milliseconds (famMS): over the
	// per-replicate averages of a detection-family metric, or the
	// per-replicate settle durations of a reconvergence metric.
	ColFamMS ColumnKind = iota + 1
	// ColMaxMS renders the worst observation across the family in
	// milliseconds: max of maxima for detection-family metrics, max settle
	// for reconvergence.
	ColMaxMS
	// ColMissing renders the total missed detections across the family
	// (detection-family metrics only).
	ColMissing
	// ColFam renders mean ±ci95 of a scalar metric under Format.
	ColFam
	// ColRatio renders "k/R": the number of replicates whose 0/1 indicator
	// was nonzero, over the family size.
	ColRatio
)

// String implements fmt.Stringer.
func (k ColumnKind) String() string {
	switch k {
	case ColFamMS:
		return "fam_ms"
	case ColMaxMS:
		return "max_ms"
	case ColMissing:
		return "missing"
	case ColFam:
		return "fam"
	case ColRatio:
		return "ratio"
	default:
		return "column?"
	}
}

// Column is one compiled table column of the cluster program.
type Column struct {
	Header string
	// Metric names the Metric (or reconvergence CleanName stream) the
	// column aggregates.
	Metric string
	Kind   ColumnKind
	// Format is the famCell verb of ColFam columns (e.g. "%.1f").
	Format string
}

// ClusterSpec is the compiled cluster section: everything
// exp.ClusterConfig needs, minus the per-run seed and detector kind the
// execution engine supplies. Zero durations keep the engine defaults
// (exp.ClusterConfig.fillDefaults), exactly like the built-in experiments'
// zero fields.
type ClusterSpec struct {
	N, F      int
	Detectors []string
	Delay     netsim.DelayModel
	// Async-detector tuning.
	Window      time.Duration
	Interval    time.Duration
	Rebroadcast time.Duration
	DisableTags bool
	// Heartbeat/phi/chen tuning.
	HBInterval   time.Duration
	HBTimeout    time.Duration
	PhiThreshold float64
	ChenAlpha    time.Duration
	CountBytes   bool
	StartJitter  time.Duration
}

// Variant is one fault variant of a scenario: the cluster program runs the
// full detector × variant cross product (like R1's fresh/persisted modes).
type Variant struct {
	// Name tags the variant's table rows and cell keys; empty only for a
	// scenario's single unnamed variant.
	Name string
	// Faults is the compiled, validated schedule (generators expanded).
	Faults faults.Schedule
}

// Measure is the compiled measurement program.
type Measure struct {
	Program Program
	// Warm is the cluster program's fork horizon (replicates share the
	// base-seed prefix up to it); Horizon ends every run.
	Warm, Horizon time.Duration
	// Metrics and Columns drive the cluster program; empty for the
	// fixed-shape topology and consensus programs.
	Metrics []Metric
	Columns []Column
	// Topology program: graph families, machine sizes, crash time and the
	// neighbor heartbeat's interval/timeout.
	Topologies []string
	Ns         []int
	CrashAt    time.Duration
	Interval   time.Duration
	Timeout    time.Duration
	// Consensus program: when proposals are issued.
	Propose time.Duration
}

// Scenario is a fully compiled and validated scenario configuration.
type Scenario struct {
	// Name becomes the table/result ID (like the built-in "R1").
	Name string
	// Title and Note become the rendered table's title and note line.
	Title string
	Note  string
	// Description is free-form documentation carried by the config file.
	Description string
	// Repeat, when positive, is the scenario's default seed-family size; a
	// caller-pinned Options.Repeat (the -repeat flag) wins over it.
	Repeat int
	// CI marks the scenario as intended for v2 sample collection by
	// default (the -ci flag wins either way).
	CI bool

	Cluster ClusterSpec
	// VariantHeader is the header of the variant name column; empty when
	// the scenario has one unnamed variant (no such column, like R2).
	VariantHeader string
	Variants      []Variant
	Measure       Measure
}
