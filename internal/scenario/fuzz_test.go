package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioConfig holds Parse to its contract: an arbitrary byte string
// either compiles into a structurally valid scenario or fails with a
// diagnostic carrying the "scenario: " prefix (which every error path
// follows with the offending field path). Nothing may panic, and nothing
// may succeed while leaving the scenario in a state the execution engine
// would have to defend against.
//
// The committed corpus (testdata/fuzz/FuzzScenarioConfig) seeds the mutator
// with documents near the validation boundaries; the in-code seeds below
// cover every program and the overlay path. CI runs this for a short budget
// on every push (see .github/workflows).
func FuzzScenarioConfig(f *testing.F) {
	f.Add([]byte(clusterDoc))
	f.Add([]byte(topoDoc))
	f.Add([]byte(consensusDoc))
	f.Add([]byte(`{"schema": "asyncfd-scenario/v1"}`))
	f.Add([]byte(`{"schema": "asyncfd-scenario/v0"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"schema": "asyncfd-scenario/v1", "name": "x", "title": "t",
	  "cluster": {"n": 4, "f": 1, "detectors": ["async"],
	    "delay": {"model": "trace", "synthetic": {"seed": 1, "count": 10, "tick_us": 1000, "base_us": 100, "scale_us": 50, "alpha": 2.0, "cap_us": 0, "loss": 0.5}}},
	  "faults": {"generators": [{"kind": "crash-burst", "ids": [1, 2], "at_us": 1000000, "spacing_us": 1000}]},
	  "measure": {"program": "cluster", "horizon_us": 5000000,
	    "metrics": [{"kind": "detection", "name": "det", "victim": 1}],
	    "columns": [{"header": "det", "metric": "det", "kind": "fam_ms"}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, quick := range []bool{false, true} {
			sc, err := Parse(data, quick)
			if err != nil {
				if sc != nil {
					t.Fatalf("quick=%v: error with non-nil scenario: %v", quick, err)
				}
				if !strings.HasPrefix(err.Error(), "scenario: ") {
					t.Fatalf("quick=%v: error without diagnostic prefix: %v", quick, err)
				}
				continue
			}
			// A compiled scenario must satisfy the invariants the engine
			// assumes rather than re-checks.
			if sc.Name == "" || sc.Title == "" {
				t.Fatalf("quick=%v: accepted scenario without name/title: %+v", quick, sc)
			}
			if sc.Measure.Program < ProgramCluster || sc.Measure.Program > ProgramConsensus {
				t.Fatalf("quick=%v: accepted scenario with program %v", quick, sc.Measure.Program)
			}
			if sc.Cluster.Delay == nil {
				t.Fatalf("quick=%v: accepted scenario without a delay model", quick)
			}
			if len(sc.Variants) == 0 {
				t.Fatalf("quick=%v: accepted scenario without variants", quick)
			}
			if sc.Measure.Horizon <= 0 {
				t.Fatalf("quick=%v: accepted scenario with horizon %v", quick, sc.Measure.Horizon)
			}
			if sc.Measure.Program == ProgramCluster && (len(sc.Measure.Metrics) == 0 || len(sc.Measure.Columns) == 0) {
				t.Fatalf("quick=%v: accepted cluster scenario without metrics/columns", quick)
			}
		}
	})
}
