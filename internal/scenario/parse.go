package scenario

// parse.go turns asyncfd-scenario/v1 JSON into a validated Scenario. The
// contract FuzzScenarioConfig enforces: every input either compiles into a
// scenario that the execution engine can run without panicking, or fails
// with an error naming the offending field path ("scenario: <path>: ...").
// Decoding is strict everywhere — unknown fields, wrong schema versions and
// trailing bytes are errors — and every semantic invariant the downstream
// machinery assumes (disjoint partition islands, alternating crash/recover
// pairs, in-horizon events, resolvable column references, ...) is checked
// here rather than left to panic later.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/trace"
)

// Compile-time bounds. They exist to keep hostile inputs from ballooning
// memory during compilation (the fuzz harness parses arbitrary JSON); real
// configs sit far below all of them.
const (
	maxDurationUS  = int64(24 * time.Hour / time.Microsecond)
	maxClusterN    = 1024
	maxTopologyN   = 8192
	maxRepeat      = 1024
	maxVariants    = 32
	maxMetrics     = 64
	maxColumns     = 64
	maxEvents      = 16384
	maxFlapCount   = 1024
	maxEpisode     = 64
	maxNameLen     = 64
	maxStringLen   = 1024
	maxNsEntries   = 16
	maxIslandLists = 64
)

// errf builds a path-prefixed scenario error.
func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		//fdlint:allow errprefix callers wrap decode errors with errf, which adds the prefix
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// usDur converts a microsecond JSON field to a duration, enforcing the
// non-negative bounded range every duration field shares.
func usDur(path string, v int64) (time.Duration, error) {
	if v < 0 {
		return 0, errf("%s: must be >= 0, got %d", path, v)
	}
	if v > maxDurationUS {
		return 0, errf("%s: %d exceeds the 24h bound", path, v)
	}
	return time.Duration(v) * time.Microsecond, nil
}

// ---------------------------------------------------------------------------
// Raw (wire) forms.

type rawScenario struct {
	Schema      string          `json:"schema"`
	Name        string          `json:"name"`
	Title       string          `json:"title"`
	Note        string          `json:"note,omitempty"`
	Description string          `json:"description,omitempty"`
	Repeat      int             `json:"repeat,omitempty"`
	CI          bool            `json:"ci,omitempty"`
	Cluster     json.RawMessage `json:"cluster"`
	Faults      json.RawMessage `json:"faults,omitempty"`
	Measure     json.RawMessage `json:"measure"`
	Quick       *rawQuick       `json:"quick,omitempty"`
}

// rawQuick is the -quick overlay: each present field REPLACES the
// corresponding full-size section wholesale (no merging — a quick scenario
// is spelled out completely, like the built-in experiments' quick branches).
type rawQuick struct {
	Title   *string         `json:"title,omitempty"`
	Note    *string         `json:"note,omitempty"`
	Repeat  *int            `json:"repeat,omitempty"`
	Cluster json.RawMessage `json:"cluster,omitempty"`
	Faults  json.RawMessage `json:"faults,omitempty"`
	Measure json.RawMessage `json:"measure,omitempty"`
}

type rawCluster struct {
	N             int             `json:"n,omitempty"`
	F             int             `json:"f,omitempty"`
	Detectors     []string        `json:"detectors,omitempty"`
	Delay         json.RawMessage `json:"delay"`
	WindowUS      int64           `json:"window_us,omitempty"`
	IntervalUS    int64           `json:"interval_us,omitempty"`
	RebroadcastUS int64           `json:"rebroadcast_us,omitempty"`
	DisableTags   bool            `json:"disable_tags,omitempty"`
	HBIntervalUS  int64           `json:"hb_interval_us,omitempty"`
	HBTimeoutUS   int64           `json:"hb_timeout_us,omitempty"`
	PhiThreshold  float64         `json:"phi_threshold,omitempty"`
	ChenAlphaUS   int64           `json:"chen_alpha_us,omitempty"`
	CountBytes    bool            `json:"count_bytes,omitempty"`
	StartJitterUS int64           `json:"start_jitter_us,omitempty"`
}

type rawFaults struct {
	VariantHeader string            `json:"variant_header,omitempty"`
	Variants      []rawVariant      `json:"variants,omitempty"`
	Events        []json.RawMessage `json:"events,omitempty"`
	Generators    []json.RawMessage `json:"generators,omitempty"`
}

type rawVariant struct {
	Name       string            `json:"name"`
	Events     []json.RawMessage `json:"events,omitempty"`
	Generators []json.RawMessage `json:"generators,omitempty"`
}

type rawMeasure struct {
	Program    string            `json:"program"`
	WarmUS     int64             `json:"warm_us,omitempty"`
	HorizonUS  int64             `json:"horizon_us"`
	Metrics    []json.RawMessage `json:"metrics,omitempty"`
	Columns    []rawColumn       `json:"columns,omitempty"`
	Topologies []string          `json:"topologies,omitempty"`
	Ns         []int             `json:"ns,omitempty"`
	CrashAtUS  int64             `json:"crash_at_us,omitempty"`
	IntervalUS int64             `json:"interval_us,omitempty"`
	TimeoutUS  int64             `json:"timeout_us,omitempty"`
	ProposeUS  int64             `json:"propose_us,omitempty"`
}

type rawColumn struct {
	Header string `json:"header"`
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Format string `json:"format,omitempty"`
}

// ---------------------------------------------------------------------------
// Entry point.

// Parse compiles an asyncfd-scenario/v1 document. quick selects the
// document's "quick" overlay (section-wise replacement), mirroring the
// built-in experiments' Options.Quick behavior.
func Parse(data []byte, quick bool) (*Scenario, error) {
	// Probe the schema field first (loose decode) so a wrong or missing
	// schema is reported as such, not as an unknown-field error against v1.
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, errf("%v", err)
	}
	if probe.Schema != Schema {
		return nil, errf("schema: unknown schema version %q (want %q)", probe.Schema, Schema)
	}
	var raw rawScenario
	if err := strictUnmarshal(data, &raw); err != nil {
		return nil, errf("%v", err)
	}
	if quick && raw.Quick != nil {
		q := raw.Quick
		if q.Title != nil {
			raw.Title = *q.Title
		}
		if q.Note != nil {
			raw.Note = *q.Note
		}
		if q.Repeat != nil {
			raw.Repeat = *q.Repeat
		}
		if q.Cluster != nil {
			raw.Cluster = q.Cluster
		}
		if q.Faults != nil {
			raw.Faults = q.Faults
		}
		if q.Measure != nil {
			raw.Measure = q.Measure
		}
	}
	return compile(&raw)
}

func compile(raw *rawScenario) (*Scenario, error) {
	sc := &Scenario{
		Name:        raw.Name,
		Title:       raw.Title,
		Note:        raw.Note,
		Description: raw.Description,
		Repeat:      raw.Repeat,
		CI:          raw.CI,
	}
	if sc.Name == "" {
		return nil, errf("name: required")
	}
	if len(sc.Name) > maxNameLen {
		return nil, errf("name: longer than %d bytes", maxNameLen)
	}
	for _, r := range sc.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return nil, errf("name: %q contains %q; use letters, digits, - and _", sc.Name, r)
		}
	}
	if sc.Title == "" {
		return nil, errf("title: required")
	}
	for _, s := range []struct{ path, v string }{
		{"title", sc.Title}, {"note", sc.Note}, {"description", sc.Description},
	} {
		if len(s.v) > maxStringLen {
			return nil, errf("%s: longer than %d bytes", s.path, maxStringLen)
		}
	}
	if sc.Repeat < 0 || sc.Repeat > maxRepeat {
		return nil, errf("repeat: must be in [0, %d], got %d", maxRepeat, sc.Repeat)
	}
	if len(raw.Measure) == 0 {
		return nil, errf("measure: required")
	}
	var m rawMeasure
	if err := strictUnmarshal(raw.Measure, &m); err != nil {
		return nil, errf("measure: %v", err)
	}
	if len(raw.Cluster) == 0 {
		return nil, errf("cluster: required")
	}
	var cl rawCluster
	if err := strictUnmarshal(raw.Cluster, &cl); err != nil {
		return nil, errf("cluster: %v", err)
	}
	var err error
	switch m.Program {
	case "cluster":
		err = compileClusterProgram(sc, &cl, raw.Faults, &m)
	case "topology":
		err = compileTopologyProgram(sc, &cl, raw.Faults, &m)
	case "consensus":
		err = compileConsensusProgram(sc, &cl, raw.Faults, &m)
	case "":
		err = errf("measure.program: required (cluster, topology or consensus)")
	default:
		err = errf("measure.program: unknown program %q (want cluster, topology or consensus)", m.Program)
	}
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// ---------------------------------------------------------------------------
// Cluster section.

// compileClusterSpec compiles the cluster section for the programs that run
// the full detector cluster (cluster, consensus).
func compileClusterSpec(cl *rawCluster) (ClusterSpec, error) {
	var out ClusterSpec
	if cl.N < 2 || cl.N > maxClusterN {
		return out, errf("cluster.n: must be in [2, %d], got %d", maxClusterN, cl.N)
	}
	if cl.F < 0 || cl.F >= cl.N {
		return out, errf("cluster.f: must be in [0, n), got %d", cl.F)
	}
	out.N, out.F = cl.N, cl.F
	if len(cl.Detectors) == 0 {
		return out, errf("cluster.detectors: required")
	}
	seen := map[string]bool{}
	for i, d := range cl.Detectors {
		if !validDetector(d) {
			return out, errf("cluster.detectors[%d]: unknown detector %q (want one of %v)", i, d, DetectorNames)
		}
		if seen[d] {
			return out, errf("cluster.detectors[%d]: duplicate detector %q", i, d)
		}
		seen[d] = true
	}
	out.Detectors = cl.Detectors
	var err error
	if out.Delay, err = compileDelay("cluster.delay", cl.Delay); err != nil {
		return out, err
	}
	for _, d := range []struct {
		path string
		us   int64
		dst  *time.Duration
	}{
		{"cluster.window_us", cl.WindowUS, &out.Window},
		{"cluster.interval_us", cl.IntervalUS, &out.Interval},
		{"cluster.rebroadcast_us", cl.RebroadcastUS, &out.Rebroadcast},
		{"cluster.hb_interval_us", cl.HBIntervalUS, &out.HBInterval},
		{"cluster.hb_timeout_us", cl.HBTimeoutUS, &out.HBTimeout},
		{"cluster.chen_alpha_us", cl.ChenAlphaUS, &out.ChenAlpha},
		{"cluster.start_jitter_us", cl.StartJitterUS, &out.StartJitter},
	} {
		if *d.dst, err = usDur(d.path, d.us); err != nil {
			return out, err
		}
	}
	if cl.PhiThreshold < 0 || cl.PhiThreshold > 100 {
		return out, errf("cluster.phi_threshold: must be in [0, 100], got %v", cl.PhiThreshold)
	}
	out.PhiThreshold = cl.PhiThreshold
	out.DisableTags = cl.DisableTags
	out.CountBytes = cl.CountBytes
	return out, nil
}

func validDetector(name string) bool {
	for _, d := range DetectorNames {
		if d == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Delay models.

func compileDelay(path string, raw json.RawMessage) (netsim.DelayModel, error) {
	if len(raw) == 0 {
		return nil, errf("%s: required", path)
	}
	var probe struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, errf("%s: %v", path, err)
	}
	switch probe.Model {
	case "constant":
		var r struct {
			Model string `json:"model"`
			DUS   int64  `json:"d_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		d, err := usDur(path+".d_us", r.DUS)
		if err != nil {
			return nil, err
		}
		return netsim.Constant{D: d}, nil
	case "uniform":
		var r struct {
			Model string `json:"model"`
			MinUS int64  `json:"min_us"`
			MaxUS int64  `json:"max_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		min, err := usDur(path+".min_us", r.MinUS)
		if err != nil {
			return nil, err
		}
		max, err := usDur(path+".max_us", r.MaxUS)
		if err != nil {
			return nil, err
		}
		if max < min {
			return nil, errf("%s.max_us: %d below min_us", path, r.MaxUS)
		}
		return netsim.Uniform{Min: min, Max: max}, nil
	case "exponential":
		var r struct {
			Model  string `json:"model"`
			MinUS  int64  `json:"min_us"`
			MeanUS int64  `json:"mean_us"`
			CapUS  int64  `json:"cap_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		min, err := usDur(path+".min_us", r.MinUS)
		if err != nil {
			return nil, err
		}
		mean, err := usDur(path+".mean_us", r.MeanUS)
		if err != nil {
			return nil, err
		}
		cap, err := usDur(path+".cap_us", r.CapUS)
		if err != nil {
			return nil, err
		}
		if mean <= 0 {
			return nil, errf("%s.mean_us: must be positive", path)
		}
		return netsim.Exponential{Min: min, Mean: mean, Cap: cap}, nil
	case "pareto":
		var r struct {
			Model   string  `json:"model"`
			ScaleUS int64   `json:"scale_us"`
			Alpha   float64 `json:"alpha"`
			CapUS   int64   `json:"cap_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		scale, err := usDur(path+".scale_us", r.ScaleUS)
		if err != nil {
			return nil, err
		}
		cap, err := usDur(path+".cap_us", r.CapUS)
		if err != nil {
			return nil, err
		}
		if scale <= 0 {
			return nil, errf("%s.scale_us: must be positive", path)
		}
		if r.Alpha <= 0 {
			return nil, errf("%s.alpha: must be positive, got %v", path, r.Alpha)
		}
		return netsim.Pareto{Scale: scale, Alpha: r.Alpha, Cap: cap}, nil
	case "trace":
		var r struct {
			Model     string          `json:"model"`
			Series    json.RawMessage `json:"series,omitempty"`
			Synthetic json.RawMessage `json:"synthetic,omitempty"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		if (r.Series == nil) == (r.Synthetic == nil) {
			return nil, errf("%s: exactly one of series and synthetic is required", path)
		}
		var series *trace.DelaySeries
		if r.Series != nil {
			s, err := trace.ParseDelaySeries(r.Series)
			if err != nil {
				return nil, errf("%s.series: %v", path, err)
			}
			series = s
		} else {
			var s struct {
				Seed    int64   `json:"seed"`
				Count   int     `json:"count"`
				TickUS  int64   `json:"tick_us"`
				BaseUS  int64   `json:"base_us"`
				ScaleUS int64   `json:"scale_us"`
				Alpha   float64 `json:"alpha"`
				CapUS   int64   `json:"cap_us"`
				Loss    float64 `json:"loss,omitempty"`
			}
			if err := strictUnmarshal(r.Synthetic, &s); err != nil {
				return nil, errf("%s.synthetic: %v", path, err)
			}
			cfg := trace.SyntheticConfig{Seed: s.Seed, Count: s.Count, Alpha: s.Alpha, LossRate: s.Loss}
			var err error
			for _, d := range []struct {
				field string
				us    int64
				dst   *time.Duration
			}{
				{"tick_us", s.TickUS, &cfg.Tick},
				{"base_us", s.BaseUS, &cfg.Base},
				{"scale_us", s.ScaleUS, &cfg.Scale},
				{"cap_us", s.CapUS, &cfg.Cap},
			} {
				if *d.dst, err = usDur(path+".synthetic."+d.field, d.us); err != nil {
					return nil, err
				}
			}
			gen, err := trace.Synthetic(cfg)
			if err != nil {
				return nil, errf("%s.synthetic: %v", path, err)
			}
			series = gen
		}
		return netsim.Replay{Series: series}, nil
	case "":
		return nil, errf("%s.model: required (constant, uniform, exponential, pareto or trace)", path)
	default:
		return nil, errf("%s.model: unknown delay model %q", path, probe.Model)
	}
}

// ---------------------------------------------------------------------------
// Fault schedules.

// compileVariants compiles the faults section into named variants. n bounds
// the valid process ids; horizon bounds event times. allowFaults=false (the
// topology program) rejects any events at all.
func compileVariants(rawMsg json.RawMessage, n int, horizon time.Duration, allowFaults bool) (string, []Variant, error) {
	f := rawFaults{}
	if len(rawMsg) != 0 {
		if err := strictUnmarshal(rawMsg, &f); err != nil {
			return "", nil, errf("faults: %v", err)
		}
	}
	if len(f.Variants) > 0 && (len(f.Events) > 0 || len(f.Generators) > 0) {
		return "", nil, errf("faults: use either variants or bare events/generators, not both")
	}
	if !allowFaults {
		if len(f.Variants) > 0 || len(f.Events) > 0 || len(f.Generators) > 0 || f.VariantHeader != "" {
			return "", nil, errf("faults: the topology program does not take a fault schedule (measure.crash_at_us scripts its crash)")
		}
		return "", []Variant{{}}, nil
	}
	if len(f.Variants) == 0 {
		// Bare (or absent) form: one unnamed variant.
		if f.VariantHeader != "" {
			return "", nil, errf("faults.variant_header: requires a variants list")
		}
		sched, err := compileSchedule("faults", f.Events, f.Generators, n, horizon)
		if err != nil {
			return "", nil, err
		}
		return "", []Variant{{Faults: sched}}, nil
	}
	if len(f.Variants) > maxVariants {
		return "", nil, errf("faults.variants: more than %d variants", maxVariants)
	}
	if len(f.Variants) > 1 && f.VariantHeader == "" {
		return "", nil, errf("faults.variant_header: required when multiple variants are listed")
	}
	names := map[string]bool{}
	variants := make([]Variant, len(f.Variants))
	for i, rv := range f.Variants {
		path := fmt.Sprintf("faults.variants[%d]", i)
		if rv.Name == "" {
			return "", nil, errf("%s.name: required", path)
		}
		if len(rv.Name) > maxNameLen {
			return "", nil, errf("%s.name: longer than %d bytes", path, maxNameLen)
		}
		if names[rv.Name] {
			return "", nil, errf("%s.name: duplicate variant %q", path, rv.Name)
		}
		names[rv.Name] = true
		sched, err := compileSchedule(path, rv.Events, rv.Generators, n, horizon)
		if err != nil {
			return "", nil, err
		}
		variants[i] = Variant{Name: rv.Name, Faults: sched}
	}
	return f.VariantHeader, variants, nil
}

// compileSchedule compiles one variant's events and generators into a
// validated faults.Schedule (generators expanded, in listed order after the
// explicit events).
func compileSchedule(path string, events, generators []json.RawMessage, n int, horizon time.Duration) (faults.Schedule, error) {
	var sched faults.Schedule
	for i, raw := range events {
		ev, err := compileEvent(fmt.Sprintf("%s.events[%d]", path, i), raw, n)
		if err != nil {
			return nil, err
		}
		sched = append(sched, ev)
	}
	for i, raw := range generators {
		gpath := fmt.Sprintf("%s.generators[%d]", path, i)
		expanded, err := compileGenerator(gpath, raw, n)
		if err != nil {
			return nil, err
		}
		sched = append(sched, expanded...)
		if len(sched) > maxEvents {
			return nil, errf("%s: schedule exceeds %d events", gpath, maxEvents)
		}
	}
	if len(sched) > maxEvents {
		return nil, errf("%s.events: schedule exceeds %d events", path, maxEvents)
	}
	if err := validateSchedule(path, sched, horizon); err != nil {
		return nil, err
	}
	return sched, nil
}

func compileEvent(path string, raw json.RawMessage, n int) (faults.Event, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return faults.Event{}, errf("%s: %v", path, err)
	}
	switch probe.Kind {
	case "crash":
		var r struct {
			Kind string `json:"kind"`
			AtUS int64  `json:"at_us"`
			ID   int    `json:"id"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return faults.Event{}, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return faults.Event{}, err
		}
		if err := validateID(path+".id", r.ID, n); err != nil {
			return faults.Event{}, err
		}
		return faults.Event{At: at, Kind: faults.KindCrash, ID: ident.ID(r.ID)}, nil
	case "recover":
		var r struct {
			Kind  string `json:"kind"`
			AtUS  int64  `json:"at_us"`
			ID    int    `json:"id"`
			Fresh bool   `json:"fresh,omitempty"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return faults.Event{}, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return faults.Event{}, err
		}
		if err := validateID(path+".id", r.ID, n); err != nil {
			return faults.Event{}, err
		}
		return faults.Event{At: at, Kind: faults.KindRecover, ID: ident.ID(r.ID), FreshState: r.Fresh}, nil
	case "partition":
		var r struct {
			Kind    string  `json:"kind"`
			AtUS    int64   `json:"at_us"`
			Islands [][]int `json:"islands"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return faults.Event{}, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return faults.Event{}, err
		}
		islands, err := compileIslands(path+".islands", r.Islands, n)
		if err != nil {
			return faults.Event{}, err
		}
		return faults.Event{At: at, Kind: faults.KindPartition, Islands: islands}, nil
	case "heal":
		var r struct {
			Kind string `json:"kind"`
			AtUS int64  `json:"at_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return faults.Event{}, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return faults.Event{}, err
		}
		return faults.Event{At: at, Kind: faults.KindHeal}, nil
	case "":
		return faults.Event{}, errf("%s.kind: required (crash, recover, partition or heal)", path)
	default:
		return faults.Event{}, errf("%s.kind: unknown event kind %q", path, probe.Kind)
	}
}

func validateID(path string, id, n int) error {
	if id < 0 || id >= n {
		return errf("%s: process id %d outside [0, n=%d)", path, id, n)
	}
	return nil
}

// compileIslands validates one partition event's islands — non-empty, valid
// ids, no process in two islands (the invariant netsim.Partition panics on).
func compileIslands(path string, islands [][]int, n int) ([][]ident.ID, error) {
	if len(islands) == 0 {
		return nil, errf("%s: at least one island is required", path)
	}
	if len(islands) > maxIslandLists {
		return nil, errf("%s: more than %d islands", path, maxIslandLists)
	}
	seen := map[int]bool{}
	out := make([][]ident.ID, len(islands))
	for i, island := range islands {
		if len(island) == 0 {
			return nil, errf("%s[%d]: island must not be empty", path, i)
		}
		ids := make([]ident.ID, len(island))
		for j, id := range island {
			if err := validateID(fmt.Sprintf("%s[%d][%d]", path, i, j), id, n); err != nil {
				return nil, err
			}
			if seen[id] {
				return nil, errf("%s[%d][%d]: process %d listed in two islands", path, i, j, id)
			}
			seen[id] = true
			ids[j] = ident.ID(id)
		}
		out[i] = ids
	}
	return out, nil
}

func compileGenerator(path string, raw json.RawMessage, n int) (faults.Schedule, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, errf("%s: %v", path, err)
	}
	switch probe.Kind {
	case "flap":
		// A flapping-link train: partition into islands at at + k·period,
		// heal down later, for count cycles.
		var r struct {
			Kind     string  `json:"kind"`
			Islands  [][]int `json:"islands"`
			AtUS     int64   `json:"at_us"`
			DownUS   int64   `json:"down_us"`
			PeriodUS int64   `json:"period_us"`
			Count    int     `json:"count"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return nil, err
		}
		down, err := usDur(path+".down_us", r.DownUS)
		if err != nil {
			return nil, err
		}
		period, err := usDur(path+".period_us", r.PeriodUS)
		if err != nil {
			return nil, err
		}
		if down <= 0 {
			return nil, errf("%s.down_us: must be positive", path)
		}
		if period <= down {
			return nil, errf("%s.period_us: must exceed down_us (%d)", path, r.DownUS)
		}
		if r.Count < 1 || r.Count > maxFlapCount {
			return nil, errf("%s.count: must be in [1, %d], got %d", path, maxFlapCount, r.Count)
		}
		islands, err := compileIslands(path+".islands", r.Islands, n)
		if err != nil {
			return nil, err
		}
		var out faults.Schedule
		for k := 0; k < r.Count; k++ {
			start := at + time.Duration(k)*period
			out = out.PartitionAt(start, islands...).HealAt(start + down)
		}
		return out, nil
	case "crash-burst":
		// A correlated crash burst: the listed processes crash in order,
		// spacing apart.
		var r struct {
			Kind      string `json:"kind"`
			IDs       []int  `json:"ids"`
			AtUS      int64  `json:"at_us"`
			SpacingUS int64  `json:"spacing_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		at, err := usDur(path+".at_us", r.AtUS)
		if err != nil {
			return nil, err
		}
		spacing, err := usDur(path+".spacing_us", r.SpacingUS)
		if err != nil {
			return nil, err
		}
		if len(r.IDs) == 0 {
			return nil, errf("%s.ids: required", path)
		}
		seen := map[int]bool{}
		var out faults.Schedule
		for j, id := range r.IDs {
			if err := validateID(fmt.Sprintf("%s.ids[%d]", path, j), id, n); err != nil {
				return nil, err
			}
			if seen[id] {
				return nil, errf("%s.ids[%d]: duplicate process %d", path, j, id)
			}
			seen[id] = true
			out = out.CrashAt(ident.ID(id), at+time.Duration(j)*spacing)
		}
		return out, nil
	case "uniform-crashes":
		// The paper family's "faults uniformly inserted" plan, reproducible
		// from its own seed (faults.Uniform).
		var r struct {
			Kind       string `json:"kind"`
			Seed       int64  `json:"seed"`
			Count      int    `json:"count"`
			Candidates []int  `json:"candidates"`
			StartUS    int64  `json:"start_us"`
			EndUS      int64  `json:"end_us"`
		}
		if err := strictUnmarshal(raw, &r); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		start, err := usDur(path+".start_us", r.StartUS)
		if err != nil {
			return nil, err
		}
		end, err := usDur(path+".end_us", r.EndUS)
		if err != nil {
			return nil, err
		}
		if end <= start {
			return nil, errf("%s.end_us: must exceed start_us", path)
		}
		if len(r.Candidates) == 0 {
			return nil, errf("%s.candidates: required", path)
		}
		seen := map[int]bool{}
		cands := make([]ident.ID, len(r.Candidates))
		for j, id := range r.Candidates {
			if err := validateID(fmt.Sprintf("%s.candidates[%d]", path, j), id, n); err != nil {
				return nil, err
			}
			if seen[id] {
				return nil, errf("%s.candidates[%d]: duplicate process %d", path, j, id)
			}
			seen[id] = true
			cands[j] = ident.ID(id)
		}
		if r.Count < 1 || r.Count > len(cands) {
			return nil, errf("%s.count: must be in [1, len(candidates)=%d], got %d", path, len(cands), r.Count)
		}
		//fdlint:allow rngdiscipline deterministic generator expansion at parse time, outside any kernel
		return faults.Uniform(rand.New(rand.NewSource(r.Seed)), cands, r.Count, start, end), nil
	case "":
		return nil, errf("%s.kind: required (flap, crash-burst or uniform-crashes)", path)
	default:
		return nil, errf("%s.kind: unknown generator kind %q", path, probe.Kind)
	}
}

// validateSchedule enforces, over the time-sorted schedule, the invariants
// the downstream layers assume rather than tolerate: every event fires
// before the horizon, each process's crash/recover events strictly
// alternate starting with a crash (GroundTruth would silently no-op the
// violations), and every heal matches an active partition.
func validateSchedule(path string, sched faults.Schedule, horizon time.Duration) error {
	ordered := append(faults.Schedule(nil), sched...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	down := map[ident.ID]bool{}
	depth := 0
	for _, e := range ordered {
		if e.At >= horizon {
			return errf("%s: %s of %v at %v does not precede the horizon (%v)", path, e.Kind, e.ID, e.At, horizon)
		}
		switch e.Kind {
		case faults.KindCrash:
			if down[e.ID] {
				return errf("%s: %v crashes at %v while already down", path, e.ID, e.At)
			}
			down[e.ID] = true
		case faults.KindRecover:
			if !down[e.ID] {
				return errf("%s: %v recovers at %v without a preceding crash", path, e.ID, e.At)
			}
			down[e.ID] = false
		case faults.KindPartition:
			depth++
		case faults.KindHeal:
			if depth == 0 {
				return errf("%s: heal at %v without an active partition", path, e.At)
			}
			depth--
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Measurement programs.

func compileClusterProgram(sc *Scenario, cl *rawCluster, rawF json.RawMessage, m *rawMeasure) error {
	spec, err := compileClusterSpec(cl)
	if err != nil {
		return err
	}
	sc.Cluster = spec
	sc.Measure.Program = ProgramCluster
	if err := rejectFields("measure", "the cluster program", map[string]bool{
		"topologies":  len(m.Topologies) > 0,
		"ns":          len(m.Ns) > 0,
		"crash_at_us": m.CrashAtUS != 0,
		"interval_us": m.IntervalUS != 0,
		"timeout_us":  m.TimeoutUS != 0,
		"propose_us":  m.ProposeUS != 0,
	}); err != nil {
		return err
	}
	if sc.Measure.Warm, err = usDur("measure.warm_us", m.WarmUS); err != nil {
		return err
	}
	if sc.Measure.Horizon, err = usDur("measure.horizon_us", m.HorizonUS); err != nil {
		return err
	}
	if sc.Measure.Horizon <= sc.Measure.Warm {
		return errf("measure.horizon_us: must exceed warm_us")
	}
	sc.VariantHeader, sc.Variants, err = compileVariants(rawF, spec.N, sc.Measure.Horizon, true)
	if err != nil {
		return err
	}
	streams, err := compileMetrics(sc, m)
	if err != nil {
		return err
	}
	return compileColumns(sc, m, streams)
}

// rejectFields errors on the first listed field that is set but not used by
// the given program.
func rejectFields(prefix, program string, set map[string]bool) error {
	// Deterministic error selection: report the lexicographically first.
	var bad []string
	for name, isSet := range set {
		if isSet {
			bad = append(bad, name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return errf("%s.%s: not used by %s", prefix, bad[0], program)
}

// streamType is the value type a metric's per-replicate stream carries;
// columns must aggregate compatible streams.
type streamType int

const (
	streamDetection streamType = iota + 1 // qos.DetectionStats
	streamDuration                        // time.Duration (reconvergence settle)
	streamScalar                          // float64 (storm count)
	streamBool                            // 0/1 indicator (reconvergence clean)
)

func compileMetrics(sc *Scenario, m *rawMeasure) (map[string]streamType, error) {
	if len(m.Metrics) == 0 {
		return nil, errf("measure.metrics: required for the cluster program")
	}
	if len(m.Metrics) > maxMetrics {
		return nil, errf("measure.metrics: more than %d metrics", maxMetrics)
	}
	streams := map[string]streamType{}
	n := sc.Cluster.N
	horizon := sc.Measure.Horizon
	claim := func(path, name string, st streamType) error {
		if name == "" {
			return errf("%s: required", path)
		}
		if len(name) > maxNameLen {
			return errf("%s: longer than %d bytes", path, maxNameLen)
		}
		if _, dup := streams[name]; dup {
			return errf("%s: duplicate metric name %q", path, name)
		}
		streams[name] = st
		return nil
	}
	for i, raw := range m.Metrics {
		path := fmt.Sprintf("measure.metrics[%d]", i)
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, errf("%s: %v", path, err)
		}
		var met Metric
		switch probe.Kind {
		case "detection", "redetection", "trust-restoration":
			var r struct {
				Kind      string `json:"kind"`
				Name      string `json:"name"`
				Victim    int    `json:"victim"`
				Observers []int  `json:"observers,omitempty"`
				Episode   int    `json:"episode,omitempty"`
			}
			if err := strictUnmarshal(raw, &r); err != nil {
				return nil, errf("%s: %v", path, err)
			}
			if err := claim(path+".name", r.Name, streamDetection); err != nil {
				return nil, err
			}
			if err := validateID(path+".victim", r.Victim, n); err != nil {
				return nil, err
			}
			if r.Episode < 0 || r.Episode > maxEpisode {
				return nil, errf("%s.episode: must be in [0, %d], got %d", path, maxEpisode, r.Episode)
			}
			if probe.Kind == "detection" && r.Episode != 0 {
				return nil, errf("%s.episode: not used by detection (use redetection)", path)
			}
			obs := make([]ident.ID, 0, len(r.Observers))
			seen := map[int]bool{}
			for j, id := range r.Observers {
				if err := validateID(fmt.Sprintf("%s.observers[%d]", path, j), id, n); err != nil {
					return nil, err
				}
				if seen[id] {
					return nil, errf("%s.observers[%d]: duplicate process %d", path, j, id)
				}
				if id == r.Victim {
					return nil, errf("%s.observers[%d]: the victim cannot observe itself", path, j)
				}
				seen[id] = true
				obs = append(obs, ident.ID(id))
			}
			met = Metric{
				Name:      r.Name,
				Victim:    ident.ID(r.Victim),
				Observers: obs,
				Episode:   r.Episode,
			}
			switch probe.Kind {
			case "detection":
				met.Kind = MetricDetection
			case "redetection":
				met.Kind = MetricRedetection
			case "trust-restoration":
				met.Kind = MetricTrustRestoration
			}
		case "storm":
			var r struct {
				Kind   string `json:"kind"`
				Name   string `json:"name"`
				FromUS int64  `json:"from_us"`
				ToUS   int64  `json:"to_us"`
			}
			if err := strictUnmarshal(raw, &r); err != nil {
				return nil, errf("%s: %v", path, err)
			}
			if err := claim(path+".name", r.Name, streamScalar); err != nil {
				return nil, err
			}
			from, err := usDur(path+".from_us", r.FromUS)
			if err != nil {
				return nil, err
			}
			to, err := usDur(path+".to_us", r.ToUS)
			if err != nil {
				return nil, err
			}
			if to <= from {
				return nil, errf("%s.to_us: must exceed from_us", path)
			}
			if to > horizon {
				return nil, errf("%s.to_us: beyond the horizon (%v)", path, horizon)
			}
			met = Metric{Name: r.Name, Kind: MetricStorm, From: from, To: to}
		case "reconvergence":
			var r struct {
				Kind      string `json:"kind"`
				Name      string `json:"name"`
				AfterUS   int64  `json:"after_us"`
				CleanName string `json:"clean_name,omitempty"`
			}
			if err := strictUnmarshal(raw, &r); err != nil {
				return nil, errf("%s: %v", path, err)
			}
			if err := claim(path+".name", r.Name, streamDuration); err != nil {
				return nil, err
			}
			after, err := usDur(path+".after_us", r.AfterUS)
			if err != nil {
				return nil, err
			}
			if after >= horizon {
				return nil, errf("%s.after_us: must precede the horizon (%v)", path, horizon)
			}
			clean := r.CleanName
			if clean == "" {
				clean = "clean"
			}
			if err := claim(path+".clean_name", clean, streamBool); err != nil {
				return nil, err
			}
			met = Metric{Name: r.Name, Kind: MetricReconvergence, After: after, CleanName: clean}
		case "":
			return nil, errf("%s.kind: required (detection, redetection, trust-restoration, storm or reconvergence)", path)
		default:
			return nil, errf("%s.kind: unknown metric kind %q", path, probe.Kind)
		}
		sc.Measure.Metrics = append(sc.Measure.Metrics, met)
	}
	return streams, nil
}

// famFormats whitelists the famCell verbs a ColFam column may use.
var famFormats = map[string]bool{"%.0f": true, "%.1f": true, "%.2f": true, "%.3f": true}

func compileColumns(sc *Scenario, m *rawMeasure, streams map[string]streamType) error {
	if len(m.Columns) == 0 {
		return errf("measure.columns: required for the cluster program")
	}
	if len(m.Columns) > maxColumns {
		return errf("measure.columns: more than %d columns", maxColumns)
	}
	for i, rc := range m.Columns {
		path := fmt.Sprintf("measure.columns[%d]", i)
		if rc.Header == "" {
			return errf("%s.header: required", path)
		}
		if len(rc.Header) > maxNameLen {
			return errf("%s.header: longer than %d bytes", path, maxNameLen)
		}
		st, ok := streams[rc.Metric]
		if !ok {
			return errf("%s.metric: unknown metric %q", path, rc.Metric)
		}
		col := Column{Header: rc.Header, Metric: rc.Metric}
		switch rc.Kind {
		case "fam_ms":
			if st != streamDetection && st != streamDuration {
				return errf("%s.kind: fam_ms needs a detection or reconvergence metric, %q is %s-valued", path, rc.Metric, streamName(st))
			}
			col.Kind = ColFamMS
		case "max_ms":
			if st != streamDetection && st != streamDuration {
				return errf("%s.kind: max_ms needs a detection or reconvergence metric, %q is %s-valued", path, rc.Metric, streamName(st))
			}
			col.Kind = ColMaxMS
		case "missing":
			if st != streamDetection {
				return errf("%s.kind: missing needs a detection metric, %q is %s-valued", path, rc.Metric, streamName(st))
			}
			col.Kind = ColMissing
		case "fam":
			if st != streamScalar {
				return errf("%s.kind: fam needs a scalar metric, %q is %s-valued", path, rc.Metric, streamName(st))
			}
			col.Kind = ColFam
			col.Format = rc.Format
			if col.Format == "" {
				col.Format = "%.1f"
			}
			if !famFormats[col.Format] {
				return errf("%s.format: unsupported format %q (want %%.0f, %%.1f, %%.2f or %%.3f)", path, col.Format)
			}
		case "ratio":
			if st != streamBool {
				return errf("%s.kind: ratio needs a 0/1 indicator metric, %q is %s-valued", path, rc.Metric, streamName(st))
			}
			col.Kind = ColRatio
		case "":
			return errf("%s.kind: required (fam_ms, max_ms, missing, fam or ratio)", path)
		default:
			return errf("%s.kind: unknown column kind %q", path, rc.Kind)
		}
		if rc.Format != "" && col.Kind != ColFam {
			return errf("%s.format: only fam columns take a format", path)
		}
		sc.Measure.Columns = append(sc.Measure.Columns, col)
	}
	return nil
}

func streamName(st streamType) string {
	switch st {
	case streamDetection:
		return "detection"
	case streamDuration:
		return "duration"
	case streamScalar:
		return "scalar"
	case streamBool:
		return "indicator"
	default:
		return "stream?"
	}
}

// knownTopologies mirrors exp's LT graph families.
var knownTopologies = map[string]bool{"ring": true, "grid": true, "scale-free": true, "manet": true}

func compileTopologyProgram(sc *Scenario, cl *rawCluster, rawF json.RawMessage, m *rawMeasure) error {
	// The topology program builds its own neighbor-heartbeat machines per
	// graph; of the cluster section only the delay model applies.
	if err := rejectFields("cluster", "the topology program", map[string]bool{
		"n":               cl.N != 0,
		"f":               cl.F != 0,
		"window_us":       cl.WindowUS != 0,
		"interval_us":     cl.IntervalUS != 0,
		"rebroadcast_us":  cl.RebroadcastUS != 0,
		"disable_tags":    cl.DisableTags,
		"hb_interval_us":  cl.HBIntervalUS != 0,
		"hb_timeout_us":   cl.HBTimeoutUS != 0,
		"phi_threshold":   cl.PhiThreshold != 0,
		"chen_alpha_us":   cl.ChenAlphaUS != 0,
		"count_bytes":     cl.CountBytes,
		"start_jitter_us": cl.StartJitterUS != 0,
	}); err != nil {
		return err
	}
	if len(cl.Detectors) != 1 || cl.Detectors[0] != "heartbeat" {
		return errf(`cluster.detectors: the topology program runs the neighbor-local heartbeat only (want ["heartbeat"])`)
	}
	delay, err := compileDelay("cluster.delay", cl.Delay)
	if err != nil {
		return err
	}
	sc.Cluster = ClusterSpec{Detectors: cl.Detectors, Delay: delay}
	sc.Measure.Program = ProgramTopology
	if err := rejectFields("measure", "the topology program", map[string]bool{
		"warm_us":    m.WarmUS != 0,
		"metrics":    len(m.Metrics) > 0,
		"columns":    len(m.Columns) > 0,
		"propose_us": m.ProposeUS != 0,
	}); err != nil {
		return err
	}
	if sc.Measure.Horizon, err = usDur("measure.horizon_us", m.HorizonUS); err != nil {
		return err
	}
	if sc.Measure.Horizon <= 0 {
		return errf("measure.horizon_us: must be positive")
	}
	if len(m.Topologies) == 0 {
		return errf("measure.topologies: required for the topology program")
	}
	seen := map[string]bool{}
	for i, topo := range m.Topologies {
		if !knownTopologies[topo] {
			return errf("measure.topologies[%d]: unknown topology %q (want ring, grid, scale-free or manet)", i, topo)
		}
		if seen[topo] {
			return errf("measure.topologies[%d]: duplicate topology %q", i, topo)
		}
		seen[topo] = true
	}
	sc.Measure.Topologies = m.Topologies
	if len(m.Ns) == 0 {
		return errf("measure.ns: required for the topology program")
	}
	if len(m.Ns) > maxNsEntries {
		return errf("measure.ns: more than %d sizes", maxNsEntries)
	}
	for i, n := range m.Ns {
		if n < 4 || n > maxTopologyN {
			return errf("measure.ns[%d]: must be in [4, %d], got %d", i, maxTopologyN, n)
		}
	}
	sc.Measure.Ns = m.Ns
	if sc.Measure.CrashAt, err = usDur("measure.crash_at_us", m.CrashAtUS); err != nil {
		return err
	}
	if sc.Measure.CrashAt <= 0 || sc.Measure.CrashAt >= sc.Measure.Horizon {
		return errf("measure.crash_at_us: must fall inside (0, horizon)")
	}
	if sc.Measure.Interval, err = usDur("measure.interval_us", m.IntervalUS); err != nil {
		return err
	}
	if sc.Measure.Timeout, err = usDur("measure.timeout_us", m.TimeoutUS); err != nil {
		return err
	}
	if sc.Measure.Interval == 0 {
		sc.Measure.Interval = time.Second
	}
	if sc.Measure.Timeout == 0 {
		sc.Measure.Timeout = 2 * time.Second
	}
	if sc.Measure.Timeout <= sc.Measure.Interval {
		return errf("measure.timeout_us: must exceed interval_us")
	}
	_, sc.Variants, err = compileVariants(rawF, 0, sc.Measure.Horizon, false)
	return err
}

func compileConsensusProgram(sc *Scenario, cl *rawCluster, rawF json.RawMessage, m *rawMeasure) error {
	spec, err := compileClusterSpec(cl)
	if err != nil {
		return err
	}
	if spec.F < 1 {
		return errf("cluster.f: the consensus program needs f >= 1")
	}
	if spec.N < 2*spec.F+1 {
		return errf("cluster.n: the consensus program needs n >= 2f+1 (got n=%d, f=%d)", spec.N, spec.F)
	}
	sc.Cluster = spec
	sc.Measure.Program = ProgramConsensus
	if err := rejectFields("measure", "the consensus program", map[string]bool{
		"warm_us":     m.WarmUS != 0,
		"metrics":     len(m.Metrics) > 0,
		"columns":     len(m.Columns) > 0,
		"topologies":  len(m.Topologies) > 0,
		"ns":          len(m.Ns) > 0,
		"crash_at_us": m.CrashAtUS != 0,
		"interval_us": m.IntervalUS != 0,
		"timeout_us":  m.TimeoutUS != 0,
	}); err != nil {
		return err
	}
	if sc.Measure.Horizon, err = usDur("measure.horizon_us", m.HorizonUS); err != nil {
		return err
	}
	if sc.Measure.Propose, err = usDur("measure.propose_us", m.ProposeUS); err != nil {
		return err
	}
	if sc.Measure.Propose <= 0 {
		return errf("measure.propose_us: must be positive")
	}
	if sc.Measure.Horizon <= sc.Measure.Propose {
		return errf("measure.horizon_us: must exceed propose_us")
	}
	header, variants, err := compileVariants(rawF, spec.N, sc.Measure.Horizon, true)
	if err != nil {
		return err
	}
	if len(variants) != 1 || header != "" {
		return errf("faults.variants: the consensus program takes a single unnamed fault schedule")
	}
	// At least one process must never crash, or no survivor can decide.
	if crashed := variants[0].Faults.IDs(); crashed.Len() >= spec.N {
		return errf("faults: every process crashes; at least one survivor is required")
	}
	sc.Variants = variants
	return nil
}
