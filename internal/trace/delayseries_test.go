package trace

import (
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func testSeries() *DelaySeries {
	return &DelaySeries{
		Span: ms(100),
		Samples: []DelaySample{
			{At: 0, RTT: ms(2)},
			{At: ms(10), RTT: ms(4), Loss: true},
			{At: ms(50), RTT: ms(8)},
		},
	}
}

func TestSampleAtLookup(t *testing.T) {
	s := testSeries()
	cases := []struct {
		t    time.Duration
		rtt  time.Duration
		loss bool
	}{
		{0, ms(2), false},
		{ms(5), ms(2), false},
		{ms(10), ms(4), true}, // exactly on a sample boundary
		{ms(49), ms(4), true}, // last sample with At <= t governs
		{ms(50), ms(8), false},
		{ms(99), ms(8), false},
		{ms(100), ms(2), false}, // wraps modulo Span
		{ms(105), ms(2), false},
		{ms(250), ms(8), false}, // 250 mod 100 = 50
	}
	for _, tc := range cases {
		got := s.SampleAt(tc.t)
		if got.RTT != tc.rtt || got.Loss != tc.loss {
			t.Errorf("SampleAt(%v) = {rtt %v loss %v}, want {rtt %v loss %v}",
				tc.t, got.RTT, got.Loss, tc.rtt, tc.loss)
		}
	}
}

func TestSampleAtWrapBeforeFirstSample(t *testing.T) {
	// A series whose first sample sits at a positive offset: lookups before
	// it wrap to the final sample of the previous cycle.
	s := &DelaySeries{
		Span: ms(100),
		Samples: []DelaySample{
			{At: ms(20), RTT: ms(3)},
			{At: ms(60), RTT: ms(7)},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.SampleAt(ms(5)); got.RTT != ms(7) {
		t.Errorf("SampleAt before first sample = rtt %v, want wrap to %v", got.RTT, ms(7))
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	s := testSeries()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDelaySeries(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Span != s.Span || len(got.Samples) != len(s.Samples) {
		t.Fatalf("round trip: got span %v / %d samples, want %v / %d",
			got.Span, len(got.Samples), s.Span, len(s.Samples))
	}
	for i := range s.Samples {
		if got.Samples[i] != s.Samples[i] {
			t.Errorf("sample %d: got %+v want %+v", i, got.Samples[i], s.Samples[i])
		}
	}
}

func TestParseDelaySeriesErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"bad schema", `{"schema":"asyncfd-trace/v9","span_us":1,"samples":[{"at_us":0,"rtt_us":1}]}`, "unknown schema version"},
		{"unknown field", `{"schema":"asyncfd-trace/v1","span_us":1,"bogus":1,"samples":[]}`, "bogus"},
		{"empty samples", `{"schema":"asyncfd-trace/v1","span_us":1,"samples":[]}`, "samples: must not be empty"},
		{"zero span", `{"schema":"asyncfd-trace/v1","span_us":0,"samples":[{"at_us":0,"rtt_us":1}]}`, "span_us"},
		{"at out of range", `{"schema":"asyncfd-trace/v1","span_us":10,"samples":[{"at_us":10,"rtt_us":1}]}`, "samples[0].at_us"},
		{"not ascending", `{"schema":"asyncfd-trace/v1","span_us":10,"samples":[{"at_us":5,"rtt_us":1},{"at_us":5,"rtt_us":2}]}`, "samples[1].at_us"},
		{"negative rtt", `{"schema":"asyncfd-trace/v1","span_us":10,"samples":[{"at_us":0,"rtt_us":-1}]}`, "samples[0].rtt_us"},
		{"trailing data", `{"schema":"asyncfd-trace/v1","span_us":10,"samples":[{"at_us":0,"rtt_us":1}]}{}`, "trailing"},
		{"not json", `hello`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDelaySeries([]byte(tc.json))
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSyntheticDeterministicAndValid(t *testing.T) {
	cfg := SyntheticConfig{
		Seed:     42,
		Count:    500,
		Tick:     10 * time.Millisecond,
		Base:     ms(1),
		Scale:    ms(1),
		Alpha:    1.5,
		Cap:      ms(200),
		LossRate: 0.05,
	}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("synthetic series invalid: %v", err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) || a.Span != b.Span {
		t.Fatal("same config produced different shapes")
	}
	losses := 0
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across generations: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
		smp := a.Samples[i]
		if smp.RTT < cfg.Base || smp.RTT > cfg.Cap {
			t.Fatalf("sample %d rtt %v outside [base, cap]", i, smp.RTT)
		}
		if smp.Loss {
			losses++
		}
	}
	if losses == 0 {
		t.Error("expected some losses at 5% rate over 500 samples")
	}
	// A different seed must produce a different trace.
	cfg.Seed = 43
	c, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSyntheticConfigErrors(t *testing.T) {
	base := SyntheticConfig{Seed: 1, Count: 10, Tick: ms(1), Alpha: 1.5}
	cases := []struct {
		name   string
		mutate func(*SyntheticConfig)
		want   string
	}{
		{"zero count", func(c *SyntheticConfig) { c.Count = 0 }, "synthetic.count"},
		{"huge count", func(c *SyntheticConfig) { c.Count = 1 << 21 }, "synthetic.count"},
		{"zero tick", func(c *SyntheticConfig) { c.Tick = 0 }, "synthetic.tick_us"},
		{"negative base", func(c *SyntheticConfig) { c.Base = -1 }, "synthetic.base_us"},
		{"negative scale", func(c *SyntheticConfig) { c.Scale = -1 }, "synthetic.scale_us"},
		{"zero alpha", func(c *SyntheticConfig) { c.Alpha = 0 }, "synthetic.alpha"},
		{"negative cap", func(c *SyntheticConfig) { c.Cap = -1 }, "synthetic.cap_us"},
		{"loss rate one", func(c *SyntheticConfig) { c.LossRate = 1 }, "synthetic.loss"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := Synthetic(cfg)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
