package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"asyncfd/internal/ident"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func sampleLog() *Log {
	l := &Log{}
	l.OnSuspicion(sec(1), 0, 2, true)
	l.OnSuspicion(sec(2), 1, 2, true)
	l.OnSuspicion(sec(3), 0, 2, false)
	l.OnSuspicion(sec(5), 0, 2, true)
	return l
}

func TestLenAndEvents(t *testing.T) {
	l := sampleLog()
	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4", l.Len())
	}
	evs := l.Events()
	if len(evs) != 4 || evs[0].At != sec(1) || !evs[0].Suspected {
		t.Errorf("Events = %v", evs)
	}
	// The returned slice is a copy.
	evs[0].At = 0
	if l.Events()[0].At != sec(1) {
		t.Error("Events returned aliased storage")
	}
}

func TestFirstSuspicion(t *testing.T) {
	l := sampleLog()
	at, ok := l.FirstSuspicion(0, 2)
	if !ok || at != sec(1) {
		t.Errorf("FirstSuspicion = %v,%v", at, ok)
	}
	if _, ok := l.FirstSuspicion(3, 2); ok {
		t.Error("FirstSuspicion for absent observer = true")
	}
	if _, ok := l.FirstSuspicion(0, 9); ok {
		t.Error("FirstSuspicion for absent subject = true")
	}
}

func TestLastTransition(t *testing.T) {
	l := sampleLog()
	e, ok := l.LastTransition(0, 2)
	if !ok || e.At != sec(5) || !e.Suspected {
		t.Errorf("LastTransition = %+v,%v", e, ok)
	}
	if _, ok := l.LastTransition(9, 9); ok {
		t.Error("LastTransition for absent pair = true")
	}
}

func TestSuspectedAt(t *testing.T) {
	l := sampleLog()
	tests := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{sec(1), true}, // inclusive
		{sec(2), true},
		{sec(3), false},
		{sec(4), false},
		{sec(5), true},
	}
	for _, tt := range tests {
		if got := l.SuspectedAt(0, 2, tt.at); got != tt.want {
			t.Errorf("SuspectedAt(p0,p2,%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSuspicionCountSeries(t *testing.T) {
	l := sampleLog()
	times := []time.Duration{0, sec(1), sec(2), sec(3), sec(5)}
	got := l.SuspicionCountSeries(times, nil)
	want := []int{0, 1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	// Filter to a subject that never appears.
	got = l.SuspicionCountSeries(times, func(s ident.ID) bool { return s == 9 })
	for _, v := range got {
		if v != 0 {
			t.Fatalf("filtered series = %v, want zeros", got)
		}
	}
}

func TestAppendAndReset(t *testing.T) {
	l := &Log{}
	l.Append(Event{At: sec(1), Observer: 0, Subject: 1, Suspected: true})
	if l.Len() != 1 {
		t.Error("Append did not record")
	}
	l.Reset()
	if l.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sec(2), Observer: 1, Subject: 3, Suspected: true}
	if got := e.String(); !strings.Contains(got, "suspects") || !strings.Contains(got, "p3") {
		t.Errorf("Event.String = %q", got)
	}
	e.Suspected = false
	if got := e.String(); !strings.Contains(got, "trusts") {
		t.Errorf("Event.String = %q", got)
	}
}

func TestLogString(t *testing.T) {
	l := sampleLog()
	s := l.String()
	if strings.Count(s, "\n") != 4 {
		t.Errorf("String = %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	l := &Log{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.OnSuspicion(time.Duration(i), ident.ID(g), 0, i%2 == 0)
				_ = l.Len()
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d, want 800", l.Len())
	}
}
