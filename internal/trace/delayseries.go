package trace

// delayseries.go owns the recorded-trace delay format of the scenario
// subsystem: a DelaySeries is a timestamped sequence of RTT/loss samples —
// captured from a real network or generated synthetically — that
// internal/netsim's Replay delay model plays back deterministically per
// link instead of drawing from a parametric distribution. The JSON form
// ("asyncfd-trace/v1") can be embedded inline in an asyncfd-scenario/v1
// config; see docs/BENCHMARKS.md, "Scenario configs".

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DelaySeriesSchema is the JSON schema identifier of the trace format.
const DelaySeriesSchema = "asyncfd-trace/v1"

// MaxDuration bounds every duration a trace may carry (span, sample offsets,
// RTTs). It keeps replay arithmetic — phase offsets, wrap-around modulo,
// now+delay scheduling — far away from time.Duration overflow no matter what
// a config file claims.
const MaxDuration = 24 * time.Hour

// DelaySample is one trace observation: at offset At into the series the
// link's round-trip time measured RTT, and Loss records whether the probe
// was lost.
type DelaySample struct {
	At   time.Duration
	RTT  time.Duration
	Loss bool
}

// DelaySeries is a recorded (or synthesized) delay trace. Samples are
// strictly ascending in At and all fall inside [0, Span); replay wraps the
// series modulo Span, so a short capture loops over a long simulation.
type DelaySeries struct {
	Span    time.Duration
	Samples []DelaySample
}

// Validate checks the structural invariants replay relies on. Errors name
// the offending field path in the JSON form.
func (s *DelaySeries) Validate() error {
	if s == nil {
		return fmt.Errorf("trace: series: missing")
	}
	if s.Span <= 0 {
		return fmt.Errorf("trace: series.span_us: must be positive, got %v", s.Span)
	}
	if s.Span > MaxDuration {
		return fmt.Errorf("trace: series.span_us: %v exceeds the %v bound", s.Span, MaxDuration)
	}
	if len(s.Samples) == 0 {
		return fmt.Errorf("trace: series.samples: must not be empty")
	}
	prev := time.Duration(-1)
	for i, smp := range s.Samples {
		if smp.At < 0 || smp.At >= s.Span {
			return fmt.Errorf("trace: series.samples[%d].at_us: %v outside [0, span)", i, smp.At)
		}
		if smp.At <= prev {
			return fmt.Errorf("trace: series.samples[%d].at_us: not strictly ascending", i)
		}
		if smp.RTT < 0 {
			return fmt.Errorf("trace: series.samples[%d].rtt_us: negative", i)
		}
		if smp.RTT > MaxDuration {
			return fmt.Errorf("trace: series.samples[%d].rtt_us: %v exceeds the %v bound", i, smp.RTT, MaxDuration)
		}
		prev = smp.At
	}
	return nil
}

// SampleAt returns the sample governing offset t into the series: the last
// sample whose At is ≤ t mod Span (wrapping to the final sample for offsets
// before the first). The lookup is a pure function of (series, t) — no
// cursor state — so replay is trivially identical across runs and across
// the simulation Snapshot/Restore fork path.
func (s *DelaySeries) SampleAt(t time.Duration) DelaySample {
	off := t % s.Span
	if off < 0 {
		off += s.Span
	}
	// Binary search for the first sample with At > off; its predecessor
	// governs. If every sample is later than off the series wraps: the last
	// sample of the previous cycle is still in force.
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].At > off })
	if i == 0 {
		return s.Samples[len(s.Samples)-1]
	}
	return s.Samples[i-1]
}

// jsonDelaySample is the wire form of one sample (microsecond fields).
type jsonDelaySample struct {
	AtUS  int64 `json:"at_us"`
	RTTUS int64 `json:"rtt_us"`
	Loss  bool  `json:"loss,omitempty"`
}

// jsonDelaySeries is the wire form of a series.
type jsonDelaySeries struct {
	Schema  string            `json:"schema"`
	SpanUS  int64             `json:"span_us"`
	Samples []jsonDelaySample `json:"samples"`
}

// Encode renders the series in its committed JSON form.
func (s *DelaySeries) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	doc := jsonDelaySeries{
		Schema:  DelaySeriesSchema,
		SpanUS:  int64(s.Span / time.Microsecond),
		Samples: make([]jsonDelaySample, len(s.Samples)),
	}
	for i, smp := range s.Samples {
		doc.Samples[i] = jsonDelaySample{
			AtUS:  int64(smp.At / time.Microsecond),
			RTTUS: int64(smp.RTT / time.Microsecond),
			Loss:  smp.Loss,
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ParseDelaySeries decodes and validates the committed JSON form. Unknown
// fields and schema mismatches are errors, never silently ignored.
func ParseDelaySeries(data []byte) (*DelaySeries, error) {
	var doc jsonDelaySeries
	if err := strictUnmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: series: %w", err)
	}
	if doc.Schema != DelaySeriesSchema {
		return nil, fmt.Errorf("trace: series.schema: unknown schema version %q (want %q)", doc.Schema, DelaySeriesSchema)
	}
	// Bound the raw microsecond fields before converting: a value past the
	// bound would overflow the duration multiply and silently wrap.
	maxUS := int64(MaxDuration / time.Microsecond)
	if doc.SpanUS < 0 || doc.SpanUS > maxUS {
		return nil, fmt.Errorf("trace: series.span_us: %d outside [0, %d]", doc.SpanUS, maxUS)
	}
	for i, smp := range doc.Samples {
		if smp.AtUS < 0 || smp.AtUS > maxUS {
			return nil, fmt.Errorf("trace: series.samples[%d].at_us: %d outside [0, %d]", i, smp.AtUS, maxUS)
		}
		if smp.RTTUS < 0 || smp.RTTUS > maxUS {
			return nil, fmt.Errorf("trace: series.samples[%d].rtt_us: %d outside [0, %d]", i, smp.RTTUS, maxUS)
		}
	}
	s := &DelaySeries{
		Span:    time.Duration(doc.SpanUS) * time.Microsecond,
		Samples: make([]DelaySample, len(doc.Samples)),
	}
	for i, smp := range doc.Samples {
		s.Samples[i] = DelaySample{
			At:   time.Duration(smp.AtUS) * time.Microsecond,
			RTT:  time.Duration(smp.RTTUS) * time.Microsecond,
			Loss: smp.Loss,
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// SyntheticConfig parameterizes the synthetic heavy-tailed trace generator:
// Count samples spaced Tick apart, each an independent Base + Pareto(Scale,
// Alpha) round-trip (capped at Cap when positive) with Bernoulli(LossRate)
// losses, all drawn from a private RNG seeded with Seed — generation is a
// pure function of the config, so a config embedding a synthetic spec names
// the exact same trace on every machine.
type SyntheticConfig struct {
	Seed     int64
	Count    int
	Tick     time.Duration
	Base     time.Duration
	Scale    time.Duration
	Alpha    float64
	Cap      time.Duration
	LossRate float64
}

// Validate checks the generator parameters, naming offending fields.
func (c SyntheticConfig) Validate() error {
	if c.Count <= 0 || c.Count > 1<<20 {
		return fmt.Errorf("trace: synthetic.count: must be in [1, %d], got %d", 1<<20, c.Count)
	}
	if c.Tick <= 0 {
		return fmt.Errorf("trace: synthetic.tick_us: must be positive, got %v", c.Tick)
	}
	if c.Tick > MaxDuration/time.Duration(c.Count) {
		return fmt.Errorf("trace: synthetic.tick_us: count*tick exceeds the %v span bound", MaxDuration)
	}
	if c.Base < 0 || c.Base > MaxDuration {
		return fmt.Errorf("trace: synthetic.base_us: outside [0, %v]", MaxDuration)
	}
	if c.Scale < 0 || c.Scale > MaxDuration {
		return fmt.Errorf("trace: synthetic.scale_us: outside [0, %v]", MaxDuration)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("trace: synthetic.alpha: must be positive, got %v", c.Alpha)
	}
	if c.Cap < 0 || c.Cap > MaxDuration {
		return fmt.Errorf("trace: synthetic.cap_us: outside [0, %v]", MaxDuration)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("trace: synthetic.loss: must be in [0, 1), got %v", c.LossRate)
	}
	return nil
}

// Synthetic generates a heavy-tailed delay trace from cfg. The Pareto tail
// (RTT = Base + Scale·U^(-1/Alpha)) is the adversarial regime for
// timer-based detectors: any fixed timeout is violated with constant
// probability, exactly the condition the paper's time-free detector is
// designed to survive.
func Synthetic(cfg SyntheticConfig) (*DelaySeries, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	//fdlint:allow rngdiscipline seeded synthesizer runs at config-build time, outside any kernel
	r := rand.New(rand.NewSource(cfg.Seed))
	s := &DelaySeries{
		Span:    time.Duration(cfg.Count) * cfg.Tick,
		Samples: make([]DelaySample, cfg.Count),
	}
	for i := 0; i < cfg.Count; i++ {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		// The Pareto draw can reach +Inf (and 0·Inf = NaN when Scale is 0);
		// clamp it in float space before the duration conversion can wrap.
		tail := float64(cfg.Scale) * math.Pow(u, -1/cfg.Alpha)
		if !(tail < float64(MaxDuration)) {
			tail = float64(MaxDuration)
		}
		rtt := cfg.Base + time.Duration(tail)
		if cfg.Cap > 0 && rtt > cfg.Cap {
			rtt = cfg.Cap
		}
		if rtt > MaxDuration {
			rtt = MaxDuration
		}
		loss := cfg.LossRate > 0 && r.Float64() < cfg.LossRate
		s.Samples[i] = DelaySample{At: time.Duration(i) * cfg.Tick, RTT: rtt, Loss: loss}
	}
	return s, nil
}
