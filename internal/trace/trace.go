// Package trace records timestamped suspicion transitions emitted by
// failure-detector implementations. The log is the raw material for all QoS
// metrics (internal/qos) and for the figure-style time series in the
// experiment harness.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
)

// Event is one suspicion transition: observer started/stopped suspecting
// subject at At.
type Event struct {
	At        time.Duration
	Observer  ident.ID
	Subject   ident.ID
	Suspected bool
}

// String renders the event for debugging.
func (e Event) String() string {
	verb := "suspects"
	if !e.Suspected {
		verb = "trusts"
	}
	return fmt.Sprintf("%v %v %s %v", e.At, e.Observer, verb, e.Subject)
}

// Log accumulates events. It is safe for concurrent use and implements
// fd.SuspicionSink. The zero value is ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

var _ fd.SuspicionSink = (*Log)(nil)

// OnSuspicion implements fd.SuspicionSink.
func (l *Log) OnSuspicion(at time.Duration, observer, subject ident.ID, suspected bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{At: at, Observer: observer, Subject: subject, Suspected: suspected})
}

// Append adds an event directly (tests, synthetic traces).
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the log in recording order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Reset clears the log.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
}

// Mark returns the current log length, a checkpoint for TruncateTo. The log
// is append-only during a run, so (Mark, TruncateTo) rolls it back exactly —
// the trace half of the simulation snapshot/fork primitive.
func (l *Log) Mark() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// TruncateTo drops every event recorded after the checkpoint mark. Marks
// beyond the current length are a no-op.
func (l *Log) TruncateTo(mark int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mark >= 0 && mark < len(l.events) {
		l.events = l.events[:mark]
	}
}

// FirstSuspicion returns the earliest time observer suspected subject, or
// ok=false if it never did.
func (l *Log) FirstSuspicion(observer, subject ident.ID) (time.Duration, bool) {
	for _, e := range l.Events() {
		if e.Observer == observer && e.Subject == subject && e.Suspected {
			return e.At, true
		}
	}
	return 0, false
}

// LastTransition returns the last event observer recorded about subject, or
// ok=false if there is none.
func (l *Log) LastTransition(observer, subject ident.ID) (Event, bool) {
	events := l.Events()
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Observer == observer && e.Subject == subject {
			return e, true
		}
	}
	return Event{}, false
}

// SuspectedAt replays the log and reports whether observer suspected subject
// at time at (events at exactly at are included).
func (l *Log) SuspectedAt(observer, subject ident.ID, at time.Duration) bool {
	suspected := false
	for _, e := range l.Events() {
		if e.At > at {
			break
		}
		if e.Observer == observer && e.Subject == subject {
			suspected = e.Suspected
		}
	}
	return suspected
}

// SuspicionCountSeries samples, at each instant of times, how many
// (observer, subject) pairs are in the suspected state, counting only
// subjects for which include returns true (pass nil to count all). The
// series is the raw data of the "false suspicions over time" figure.
func (l *Log) SuspicionCountSeries(times []time.Duration, include func(subject ident.ID) bool) []int {
	events := l.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	type pair struct{ o, s ident.ID }
	active := make(map[pair]bool)
	out := make([]int, len(times))
	idx := 0
	for i, t := range times {
		for idx < len(events) && events[idx].At <= t {
			e := events[idx]
			if include == nil || include(e.Subject) {
				if e.Suspected {
					active[pair{e.Observer, e.Subject}] = true
				} else {
					delete(active, pair{e.Observer, e.Subject})
				}
			}
			idx++
		}
		out[i] = len(active)
	}
	return out
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
