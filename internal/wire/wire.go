// Package wire provides a compact binary encoding for the protocol messages
// of every detector in the repository. It serves two purposes: byte-accurate
// traffic accounting in the simulator (experiment E5) and framing for the
// real TCP transport (internal/tcpnet).
//
// The format is a one-byte message kind followed by uvarint-encoded fields;
// process ids and counters are uvarints, so small clusters pay one byte per
// id. The format is self-describing enough to decode without a schema and
// deliberately has no external dependencies.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asyncfd/internal/chen"
	"asyncfd/internal/core"
	"asyncfd/internal/core/tagset"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/phiaccrual"
)

// Message kind tags.
const (
	kindQuery     byte = 1
	kindResponse  byte = 2
	kindHeartbeat byte = 3
	kindVector    byte = 4
	kindPhi       byte = 5
	kindChen      byte = 6
)

// ErrTruncated reports an encoded message shorter than its header promises.
var ErrTruncated = errors.New("wire: truncated message")

// ErrUnknownKind reports an unrecognized message kind byte.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// Encode serializes one of the supported payload types.
func Encode(payload any) ([]byte, error) {
	return AppendEncode(nil, payload)
}

// AppendEncode serializes payload onto dst and returns the extended buffer,
// letting hot send paths (the tcpnet frame writer, broadcast fan-out) reuse
// one buffer instead of allocating per message. On error dst is returned
// unchanged.
func AppendEncode(dst []byte, payload any) ([]byte, error) {
	switch m := payload.(type) {
	case core.Query:
		buf := append(dst, kindQuery)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, m.Round)
		buf = appendEntries(buf, m.Suspected)
		buf = appendEntries(buf, m.Mistake)
		return buf, nil
	case core.Response:
		buf := append(dst, kindResponse)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, m.Round)
		return buf, nil
	case heartbeat.Message:
		buf := append(dst, kindHeartbeat)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, m.Seq)
		return buf, nil
	case phiaccrual.Message:
		buf := append(dst, kindPhi)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, m.Seq)
		return buf, nil
	case chen.Message:
		buf := append(dst, kindChen)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, m.Seq)
		return buf, nil
	case heartbeat.VectorMessage:
		buf := append(dst, kindVector)
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = binary.AppendUvarint(buf, uint64(len(m.Vector)))
		for _, v := range m.Vector {
			buf = binary.AppendUvarint(buf, v)
		}
		return buf, nil
	default:
		return dst, fmt.Errorf("wire: unsupported payload type %T", payload)
	}
}

func appendEntries(buf []byte, entries []tagset.Entry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.ID))
		buf = binary.AppendUvarint(buf, uint64(e.Tag))
	}
	return buf
}

// decoder walks an encoded buffer.
type decoder struct {
	buf []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) id() (ident.ID, error) {
	v, err := d.uvarint()
	return ident.ID(v), err
}

func (d *decoder) entries() ([]tagset.Entry, error) {
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if count > uint64(len(d.buf)) { // each entry is ≥ 2 bytes; cheap sanity cap
		return nil, ErrTruncated
	}
	out := make([]tagset.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		id, err := d.id()
		if err != nil {
			return nil, err
		}
		tag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, tagset.Entry{ID: id, Tag: tagset.Tag(tag)})
	}
	return out, nil
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	d := &decoder{buf: data[1:]}
	switch data[0] {
	case kindQuery:
		var q core.Query
		var err error
		if q.From, err = d.id(); err != nil {
			return nil, err
		}
		if q.Round, err = d.uvarint(); err != nil {
			return nil, err
		}
		if q.Suspected, err = d.entries(); err != nil {
			return nil, err
		}
		if q.Mistake, err = d.entries(); err != nil {
			return nil, err
		}
		return q, nil
	case kindResponse:
		var r core.Response
		var err error
		if r.From, err = d.id(); err != nil {
			return nil, err
		}
		if r.Round, err = d.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case kindHeartbeat:
		var m heartbeat.Message
		var err error
		if m.From, err = d.id(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case kindPhi:
		var m phiaccrual.Message
		var err error
		if m.From, err = d.id(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case kindChen:
		var m chen.Message
		var err error
		if m.From, err = d.id(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case kindVector:
		var m heartbeat.VectorMessage
		var err error
		if m.From, err = d.id(); err != nil {
			return nil, err
		}
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(d.buf)) {
			return nil, ErrTruncated
		}
		m.Vector = make([]uint64, count)
		for i := range m.Vector {
			if m.Vector[i], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownKind, data[0])
	}
}

// Size returns the encoded size of payload, or 0 for unsupported types
// (convenient as a netsim.Config.SizeOf hook).
func Size(payload any) int {
	b, err := Encode(payload)
	if err != nil {
		return 0
	}
	return len(b)
}
