package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"asyncfd/internal/core"
	"asyncfd/internal/core/tagset"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
)

func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	b, err := Encode(payload)
	if err != nil {
		t.Fatalf("Encode(%+v): %v", payload, err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%x): %v", b, err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := core.Query{
		From:  3,
		Round: 77,
		Suspected: []tagset.Entry{
			{ID: 1, Tag: 5},
			{ID: 9, Tag: 1 << 40},
		},
		Mistake: []tagset.Entry{{ID: 2, Tag: 0}},
	}
	got := roundTrip(t, q)
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip = %+v, want %+v", got, q)
	}
}

func TestEmptyQueryRoundTrip(t *testing.T) {
	q := core.Query{From: 0, Round: 0}
	got := roundTrip(t, q).(core.Query)
	if got.From != 0 || got.Round != 0 || len(got.Suspected) != 0 || len(got.Mistake) != 0 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := core.Response{From: 12, Round: 1 << 50}
	if got := roundTrip(t, r); !reflect.DeepEqual(got, r) {
		t.Errorf("round trip = %+v, want %+v", got, r)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	m := heartbeat.Message{From: 7, Seq: 123456}
	if got := roundTrip(t, m); !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	m := heartbeat.VectorMessage{From: 2, Vector: []uint64{0, 5, 1 << 33}}
	if got := roundTrip(t, m); !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
	empty := heartbeat.VectorMessage{From: 1, Vector: []uint64{}}
	got := roundTrip(t, empty).(heartbeat.VectorMessage)
	if got.From != 1 || len(got.Vector) != 0 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode("a string"); err == nil {
		t.Error("Encode of unsupported type succeeded")
	}
	if Size("a string") != 0 {
		t.Error("Size of unsupported type nonzero")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) err = %v", err)
	}
	if _, err := Decode([]byte{0x7f}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("Decode(unknown kind) err = %v", err)
	}
	// Truncate a valid query at every byte boundary.
	q := core.Query{From: 1, Round: 2, Suspected: []tagset.Entry{{ID: 3, Tag: 999}}}
	full, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("Decode of %d/%d-byte prefix succeeded", cut, len(full))
		}
	}
}

func TestDecodeEntryCountLies(t *testing.T) {
	// A message claiming a huge entry count must fail cleanly, not allocate.
	buf := []byte{kindQuery}
	buf = append(buf, 1, 1)          // from, round
	buf = append(buf, 0xff, 0xff, 3) // suspected count = large varint
	if _, err := Decode(buf); err == nil {
		t.Error("Decode with lying count succeeded")
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	q := core.Query{From: 3, Round: 9, Suspected: []tagset.Entry{{ID: 1, Tag: 2}}}
	b, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if Size(q) != len(b) {
		t.Errorf("Size = %d, want %d", Size(q), len(b))
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := core.Query{
			From:  ident.ID(r.Intn(1000)),
			Round: uint64(r.Int63()),
		}
		for i := 0; i < r.Intn(20); i++ {
			q.Suspected = append(q.Suspected, tagset.Entry{ID: ident.ID(r.Intn(1000)), Tag: tagset.Tag(r.Uint64())})
		}
		for i := 0; i < r.Intn(20); i++ {
			q.Mistake = append(q.Mistake, tagset.Entry{ID: ident.ID(r.Intn(1000)), Tag: tagset.Tag(r.Uint64())})
		}
		b, err := Encode(q)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		dq := got.(core.Query)
		if dq.From != q.From || dq.Round != q.Round ||
			len(dq.Suspected) != len(q.Suspected) || len(dq.Mistake) != len(q.Mistake) {
			return false
		}
		for i := range q.Suspected {
			if dq.Suspected[i] != q.Suspected[i] {
				return false
			}
		}
		for i := range q.Mistake {
			if dq.Mistake[i] != q.Mistake[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic on arbitrary input
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	q := core.Query{From: 3, Round: 9}
	for i := 0; i < 16; i++ {
		q.Suspected = append(q.Suspected, tagset.Entry{ID: ident.ID(i), Tag: tagset.Tag(i * 7)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeQuery(b *testing.B) {
	q := core.Query{From: 3, Round: 9}
	for i := 0; i < 16; i++ {
		q.Suspected = append(q.Suspected, tagset.Entry{ID: ident.ID(i), Tag: tagset.Tag(i * 7)})
	}
	buf, err := Encode(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendEncode pins the append variant to Encode: same bytes, appended
// in place after the existing prefix, dst untouched on error.
func TestAppendEncode(t *testing.T) {
	payloads := []any{
		core.Query{From: 3, Round: 9, Suspected: []tagset.Entry{{ID: 1, Tag: 4}}},
		core.Response{From: 2, Round: 9},
		heartbeat.Message{From: 5, Seq: 77},
		heartbeat.VectorMessage{From: 1, Vector: []uint64{9, 0, 300}},
	}
	for _, p := range payloads {
		want, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		prefix := []byte{0xAA, 0xBB, 0xCC}
		got, err := AppendEncode(append([]byte(nil), prefix...), p)
		if err != nil {
			t.Fatalf("AppendEncode(%+v): %v", p, err)
		}
		if !reflect.DeepEqual(got[:3], prefix) {
			t.Errorf("%T: prefix clobbered: %x", p, got[:3])
		}
		if !reflect.DeepEqual(got[3:], want) {
			t.Errorf("%T: AppendEncode = %x, Encode = %x", p, got[3:], want)
		}
	}
	dst := []byte{1, 2}
	out, err := AppendEncode(dst, "unsupported")
	if err == nil {
		t.Fatal("unsupported payload accepted")
	}
	if !reflect.DeepEqual(out, dst) {
		t.Errorf("dst changed on error: %x", out)
	}
}
