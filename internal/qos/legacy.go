package qos

// The legacy* functions are the pre-Judge metric implementations: one stable
// sort of the whole log plus an O(pairs·E) rescan per metric call. They are
// kept verbatim as the reference side of the differential tests (this
// package and internal/exp) that prove the streaming Judge byte-identical,
// the same way internal/des keeps the binary heap as the ladder queue's
// reference. They are not called from any production path.

import (
	"sort"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// episodes reconstructs the suspicion intervals of (observer, subject) by
// scanning the full event slice — the rescan the Judge's index replaces.
func episodes(events []trace.Event, observer, subject ident.ID) []episode {
	var out []episode
	open := -1
	for _, e := range events {
		if e.Observer != observer || e.Subject != subject {
			continue
		}
		if e.Suspected {
			if open == -1 {
				out = append(out, episode{start: e.At, end: -1})
				open = len(out) - 1
			}
		} else if open != -1 {
			out[open].end = e.At
			open = -1
		}
	}
	return out
}

// sortedEvents returns the log's events in time order (stable).
func sortedEvents(log *trace.Log) []trace.Event {
	events := log.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// LegacyDetectionTimes is the pre-Judge DetectionTimes, kept as the
// differential-test reference.
func LegacyDetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set) DetectionStats {
	crashAt, ok := truth.CrashTime(subject)
	if !ok {
		return DetectionStats{Missing: observers.Len()}
	}
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		eps := episodes(events, obs, subject)
		if len(eps) == 0 || eps[len(eps)-1].end != -1 {
			acc.miss()
			return true
		}
		det := eps[len(eps)-1].start - crashAt
		if det < 0 {
			det = 0
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// LegacyMistakes is the pre-Judge Mistakes, kept as the differential-test
// reference.
func LegacyMistakes(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) MistakeStats {
	events := sortedEvents(log)
	var stats MistakeStats
	var total time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				if truth.CrashedBy(subj, ep.start) {
					continue
				}
				if ep.end == -1 {
					if !truth.DownAt(subj, horizon) {
						stats.Unresolved++
					}
					continue
				}
				stats.Count++
				d := ep.end - ep.start
				total += d
				if d > stats.MaxDuration {
					stats.MaxDuration = d
				}
			}
			return true
		})
		return true
	})
	if stats.Count > 0 {
		stats.AvgDuration = total / time.Duration(stats.Count)
	}
	if pairs > 0 && horizon > 0 {
		stats.Rate = float64(stats.Count) / float64(pairs) / horizon.Seconds()
	}
	return stats
}

// LegacyQueryAccuracy is the pre-Judge QueryAccuracy, kept as the
// differential-test reference.
func LegacyQueryAccuracy(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 1
	}
	events := sortedEvents(log)
	var wrongful time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		if truth.Crashed(obs) {
			return true
		}
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj || truth.Crashed(subj) {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				end := ep.end
				if end == -1 || end > horizon {
					end = horizon
				}
				if end > ep.start {
					wrongful += end - ep.start
				}
			}
			return true
		})
		return true
	})
	if pairs == 0 {
		return 1
	}
	frac := float64(wrongful) / (float64(pairs) * float64(horizon))
	return 1 - frac
}

// LegacyRedetectionTimes is the pre-Judge RedetectionTimes, kept as the
// differential-test reference.
func LegacyRedetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) {
		return DetectionStats{Missing: observers.Len()}
	}
	iv := ivs[k]
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		det := time.Duration(-1)
		for _, ep := range episodes(events, obs, subject) {
			if ep.start <= iv.Start && (ep.end == -1 || ep.end > iv.Start) {
				det = 0
				break
			}
			if ep.start >= iv.Start && (iv.Open() || ep.start < iv.End) {
				det = ep.start - iv.Start
				break
			}
		}
		if det < 0 {
			acc.miss()
			return true
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// LegacyTrustRestorationTimes is the pre-Judge TrustRestorationTimes, kept
// as the differential-test reference.
func LegacyTrustRestorationTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) || ivs[k].Open() {
		return DetectionStats{Missing: observers.Len()}
	}
	r := ivs[k].End
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		for _, ep := range episodes(events, obs, subject) {
			if ep.start > r {
				break
			}
			if ep.end != -1 && ep.end <= r {
				continue
			}
			if ep.end == -1 {
				acc.miss()
				return true
			}
			acc.add(ep.end - r)
			return true
		}
		return true
	})
	return acc.result()
}

// LegacyReconvergence is the pre-Judge Reconvergence, kept as the
// differential-test reference.
func LegacyReconvergence(log *trace.Log, truth *GroundTruth, members ident.Set, from time.Duration) (settle time.Duration, clean bool) {
	events := sortedEvents(log)
	clean = true
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range episodes(events, obs, subj) {
				activeAt := ep.start
				if activeAt < from {
					if ep.end != -1 && ep.end <= from {
						continue
					}
					activeAt = from
				}
				if truth.DownAt(subj, activeAt) {
					continue
				}
				if ep.end == -1 {
					clean = false
					continue
				}
				if d := ep.end - from; d > settle {
					settle = d
				}
			}
			return true
		})
		return true
	})
	return settle, clean
}

// LegacyMistakeStorm is the pre-Judge MistakeStorm, kept as the
// differential-test reference.
func LegacyMistakeStorm(log *trace.Log, truth *GroundTruth, members ident.Set, start, end time.Duration) int {
	events := sortedEvents(log)
	storm := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range episodes(events, obs, subj) {
				if ep.start < start || ep.start >= end {
					continue
				}
				if !truth.DownAt(subj, ep.start) {
					storm++
				}
			}
			return true
		})
		return true
	})
	return storm
}
