package qos

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// randomTrace builds a synthetic suspicion log: random transitions (with
// duplicates, interleavings, and out-of-order recording) over n processes.
func randomTrace(r *rand.Rand, n, events int) *trace.Log {
	l := &trace.Log{}
	for i := 0; i < events; i++ {
		at := time.Duration(r.Int63n(int64(20 * time.Second)))
		obs := ident.ID(r.Intn(n))
		subj := ident.ID(r.Intn(n))
		l.OnSuspicion(at, obs, subj, r.Intn(2) == 0)
	}
	return l
}

// randomTruth builds a ground truth where some processes crash (and some of
// those recover, possibly to crash again) at random instants.
func randomTruth(r *rand.Rand, n int) *GroundTruth {
	var g GroundTruth
	for id := 0; id < n; id++ {
		if r.Intn(3) != 0 {
			continue
		}
		at := time.Duration(r.Int63n(int64(10 * time.Second)))
		for k := 0; k < 1+r.Intn(2); k++ {
			g.Crash(ident.ID(id), at)
			if r.Intn(2) == 0 {
				break // crash-stop
			}
			at += time.Duration(r.Int63n(int64(5 * time.Second)))
			g.Recover(ident.ID(id), at)
			at += time.Duration(1 + r.Int63n(int64(3*time.Second)))
		}
	}
	return &g
}

// TestJudgeDifferential proves every Judge finalizer byte-identical to the
// legacy sort+rescan implementation on randomized traces, both when
// snapshotting a recorded log and when the same events are streamed in via
// OnSuspicion (exercising the unsorted ingestion path).
func TestJudgeDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	horizon := 20 * time.Second
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(6)
		log := randomTrace(r, n, r.Intn(300))
		truth := randomTruth(r, n)
		members := ident.FullSet(n)

		streamed := NewJudge()
		for _, e := range log.Events() {
			streamed.OnSuspicion(e.At, e.Observer, e.Subject, e.Suspected)
		}
		for name, j := range map[string]*Judge{"snapshot": JudgeFrom(log), "streamed": streamed} {
			for id := 0; id < n; id++ {
				subj := ident.ID(id)
				if got, want := j.DetectionTimes(truth, subj, members), LegacyDetectionTimes(log, truth, subj, members); got != want {
					t.Fatalf("trial %d %s: DetectionTimes(%v) = %+v, legacy %+v", trial, name, subj, got, want)
				}
				for k := 0; k < 3; k++ {
					if got, want := j.RedetectionTimes(truth, subj, members, k), LegacyRedetectionTimes(log, truth, subj, members, k); got != want {
						t.Fatalf("trial %d %s: RedetectionTimes(%v, %d) = %+v, legacy %+v", trial, name, subj, k, got, want)
					}
					if got, want := j.TrustRestorationTimes(truth, subj, members, k), LegacyTrustRestorationTimes(log, truth, subj, members, k); got != want {
						t.Fatalf("trial %d %s: TrustRestorationTimes(%v, %d) = %+v, legacy %+v", trial, name, subj, k, got, want)
					}
				}
			}
			if got, want := j.Mistakes(truth, members, horizon), LegacyMistakes(log, truth, members, horizon); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s: Mistakes = %+v, legacy %+v", trial, name, got, want)
			}
			if got, want := j.QueryAccuracy(truth, members, horizon), LegacyQueryAccuracy(log, truth, members, horizon); got != want {
				t.Fatalf("trial %d %s: QueryAccuracy = %v, legacy %v", trial, name, got, want)
			}
			gs, gc := j.Reconvergence(truth, members, 5*time.Second)
			ws, wc := LegacyReconvergence(log, truth, members, 5*time.Second)
			if gs != ws || gc != wc {
				t.Fatalf("trial %d %s: Reconvergence = (%v, %v), legacy (%v, %v)", trial, name, gs, gc, ws, wc)
			}
			if got, want := j.MistakeStorm(truth, members, 2*time.Second, 12*time.Second), LegacyMistakeStorm(log, truth, members, 2*time.Second, 12*time.Second); got != want {
				t.Fatalf("trial %d %s: MistakeStorm = %d, legacy %d", trial, name, got, want)
			}
		}
	}
}

// TestJudgeIngestAfterQuery checks the index is rebuilt when events arrive
// after a metric has already been queried.
func TestJudgeIngestAfterQuery(t *testing.T) {
	var g GroundTruth
	g.Crash(1, 5*time.Second)
	j := NewJudge()
	j.OnSuspicion(6*time.Second, 0, 1, true)
	if st := j.DetectionTimes(&g, 1, ident.SetOf(0)); st.Count != 1 || st.Avg != time.Second {
		t.Fatalf("first query = %+v", st)
	}
	// A (late-recorded) earlier trust transition splits nothing but must be
	// picked up: the suspicion at 6s stays the permanent episode.
	j.OnSuspicion(2*time.Second, 0, 1, true)
	j.OnSuspicion(3*time.Second, 0, 1, false)
	if st := j.DetectionTimes(&g, 1, ident.SetOf(0)); st.Count != 1 || st.Avg != time.Second {
		t.Fatalf("after re-ingest = %+v", st)
	}
	if st := j.Mistakes(&g, ident.SetOf(0, 1), 10*time.Second); st.Count != 1 || st.AvgDuration != time.Second {
		t.Fatalf("Mistakes after re-ingest = %+v", st)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestGroundTruthRejectsOutOfOrder covers the validated non-decreasing-time
// contract: transitions that would record negative-length or overlapping
// downtime intervals panic instead of silently corrupting the record.
func TestGroundTruthRejectsOutOfOrder(t *testing.T) {
	mustPanic(t, "Recover before crash instant", func() {
		var g GroundTruth
		g.Crash(1, 5*time.Second)
		g.Recover(1, 4*time.Second)
	})
	mustPanic(t, "Crash before previous recovery", func() {
		var g GroundTruth
		g.Crash(1, 5*time.Second)
		g.Recover(1, 8*time.Second)
		g.Crash(1, 7*time.Second)
	})
}

// TestGroundTruthCrashAtRecoveryInstant: a crash exactly at the recovery
// instant opens a back-to-back interval, and the recovery instant itself
// counts as down (the second interval's Start is inclusive).
func TestGroundTruthCrashAtRecoveryInstant(t *testing.T) {
	var g GroundTruth
	g.Crash(1, 5*time.Second)
	g.Recover(1, 8*time.Second)
	g.Crash(1, 8*time.Second)
	ivs := g.Intervals(1)
	if len(ivs) != 2 || ivs[0].End != 8*time.Second || ivs[1].Start != 8*time.Second || !ivs[1].Open() {
		t.Fatalf("intervals = %+v", ivs)
	}
	if !g.DownAt(1, 8*time.Second) {
		t.Error("process not down at the back-to-back boundary")
	}
}

// TestGroundTruthZeroLengthDowntime: recovering exactly at the crash instant
// is legal and yields an interval covering no instant at all.
func TestGroundTruthZeroLengthDowntime(t *testing.T) {
	var g GroundTruth
	g.Crash(1, 5*time.Second)
	g.Recover(1, 5*time.Second)
	if g.DownAt(1, 5*time.Second) {
		t.Error("zero-length downtime covers its own instant")
	}
	if !g.Crashed(1) {
		t.Error("zero-length downtime not recorded at all")
	}
}

// TestOpenIntervalAtHorizonCut: a process still down at the horizon turns an
// open suspicion episode into a true detection (not Unresolved), while an
// open episode about an up process stays an accuracy violation at the cut.
func TestOpenIntervalAtHorizonCut(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, 5*time.Second)                // still down at the 20s horizon
	l.OnSuspicion(6*time.Second, 0, 1, true) // true detection, open at cut
	l.OnSuspicion(7*time.Second, 1, 0, true) // false suspicion, open at cut
	st := JudgeFrom(l).Mistakes(&g, ident.SetOf(0, 1), 20*time.Second)
	if st.Count != 0 || st.Unresolved != 1 {
		t.Fatalf("Mistakes = %+v, want 0 closed / 1 unresolved", st)
	}
}
