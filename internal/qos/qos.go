// Package qos computes quality-of-service metrics of failure detectors from
// recorded suspicion traces, following the taxonomy of Chen, Toueg and
// Aguilera: detection time, mistake rate, mistake duration and query
// accuracy probability. Ground truth is interval-based (processes may crash,
// recover and crash again), which adds the recovery-aware metrics of the
// crash-recovery QoS literature: re-detection time per downtime, trust
// restoration after a restart, re-convergence after a heal, and
// partition-window mistake storms. The experiment harness reduces every
// table of the reconstructed evaluation to these numbers.
//
// These are the per-run scalar metrics; across an R-seed family
// (internal/exp Options.Repeat) they become the sampled distributions —
// mean/stderr/ci95/percentiles — of the asyncfd-bench/v2 rows described
// in the repository README ("Reading BENCH_*.json") and
// docs/BENCHMARKS.md. Duration-valued metrics enter those rows in
// milliseconds via Millis.
package qos

import (
	"sort"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// Millis converts a duration to float64 milliseconds — the unit every
// duration-valued metric row of the asyncfd-bench/v2 schema uses (see
// cmd/fdbench and docs/BENCHMARKS.md).
func Millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Interval is one [Start, End) downtime window of a process. End = -1 marks
// an interval still open at the end of the record (the process never
// recovered).
type Interval struct {
	Start, End time.Duration
}

// Open reports whether the interval never closes.
func (iv Interval) Open() bool { return iv.End < 0 }

// Covers reports whether the interval contains time at (Start inclusive,
// End exclusive).
func (iv Interval) Covers(at time.Duration) bool {
	return at >= iv.Start && (iv.Open() || at < iv.End)
}

// GroundTruth is the fault-injection record a trace is judged against: for
// every process, the intervals during which it was down. The zero value (no
// faults) is ready to use. A crash-stop run records one open interval per
// crashed process; a crash-recovery run closes an interval at each recovery
// and opens a new one at each later crash. Crash and Recover must be called
// in non-decreasing time order per process (fault schedules are applied in
// time order).
type GroundTruth struct {
	downs map[ident.ID][]Interval
}

// Crash records that id went down at time at, opening a downtime interval.
// Crashing a process that is already down is a no-op.
func (g *GroundTruth) Crash(id ident.ID, at time.Duration) {
	ivs := g.downs[id]
	if len(ivs) > 0 && ivs[len(ivs)-1].Open() {
		return
	}
	if g.downs == nil {
		g.downs = make(map[ident.ID][]Interval)
	}
	g.downs[id] = append(ivs, Interval{Start: at, End: -1})
}

// Recover records that id came back up at time at, closing its open
// downtime interval. Recovering a process that is not down is a no-op.
func (g *GroundTruth) Recover(id ident.ID, at time.Duration) {
	ivs := g.downs[id]
	if len(ivs) == 0 || !ivs[len(ivs)-1].Open() {
		return
	}
	ivs[len(ivs)-1].End = at
}

// CrashTime returns when id first crashed.
func (g *GroundTruth) CrashTime(id ident.ID) (time.Duration, bool) {
	ivs := g.downs[id]
	if len(ivs) == 0 {
		return 0, false
	}
	return ivs[0].Start, true
}

// Crashed reports whether id ever crashes in this run.
func (g *GroundTruth) Crashed(id ident.ID) bool {
	return len(g.downs[id]) > 0
}

// DownAt reports whether id is down at time at: some downtime interval
// covers it (crash instants inclusive, recovery instants exclusive).
func (g *GroundTruth) DownAt(id ident.ID, at time.Duration) bool {
	for _, iv := range g.downs[id] {
		if iv.Covers(at) {
			return true
		}
	}
	return false
}

// CrashedBy reports whether id is down at time at. For crash-stop records
// this is the historical "had crashed at or before at"; with recoveries it
// is interval-based, so a suspicion of a crashed-and-recovered process is
// judged against the process's actual state at that time.
func (g *GroundTruth) CrashedBy(id ident.ID, at time.Duration) bool {
	return g.DownAt(id, at)
}

// Intervals returns a copy of id's downtime intervals in time order.
func (g *GroundTruth) Intervals(id ident.ID) []Interval {
	ivs := g.downs[id]
	if len(ivs) == 0 {
		return nil
	}
	out := make([]Interval, len(ivs))
	copy(out, ivs)
	return out
}

// CrashedSet returns the processes currently down at the end of the record
// (those whose last downtime interval never closed). For crash-stop records
// this is every process that crashed, as before.
func (g *GroundTruth) CrashedSet() ident.Set {
	var s ident.Set
	for id, ivs := range g.downs {
		if len(ivs) > 0 && ivs[len(ivs)-1].Open() {
			s.Add(id)
		}
	}
	return s
}

// DetectionStats summarizes how fast the observers permanently detected one
// crash.
type DetectionStats struct {
	// Avg, Min, Max are over the observers that did permanently detect.
	Avg, Min, Max time.Duration
	// Count is the number of observers that permanently detected.
	Count int
	// Missing is the number of observers that never did (completeness
	// violations within the observed horizon).
	Missing int
}

// detAccum folds per-observer detection durations into a DetectionStats,
// maintaining count/sum/min/max; stats() finalizes the average. It is the
// shared accumulator of DetectionTimes, RedetectionTimes and
// TrustRestorationTimes.
type detAccum struct {
	stats DetectionStats
	total time.Duration
}

func (a *detAccum) add(det time.Duration) {
	if a.stats.Count == 0 || det < a.stats.Min {
		a.stats.Min = det
	}
	if a.stats.Count == 0 || det > a.stats.Max {
		a.stats.Max = det
	}
	a.stats.Count++
	a.total += det
}

func (a *detAccum) miss() { a.stats.Missing++ }

func (a *detAccum) result() DetectionStats {
	if a.stats.Count > 0 {
		a.stats.Avg = a.total / time.Duration(a.stats.Count)
	}
	return a.stats
}

// episode is a [start, end) interval during which observer suspected
// subject; end = -1 marks an episode still open at the end of the trace.
type episode struct {
	start, end time.Duration
}

// episodes reconstructs the suspicion intervals of (observer, subject).
func episodes(events []trace.Event, observer, subject ident.ID) []episode {
	var out []episode
	open := -1
	for _, e := range events {
		if e.Observer != observer || e.Subject != subject {
			continue
		}
		if e.Suspected {
			if open == -1 {
				out = append(out, episode{start: e.At, end: -1})
				open = len(out) - 1
			}
		} else if open != -1 {
			out[open].end = e.At
			open = -1
		}
	}
	return out
}

// sortedEvents returns the log's events in time order (stable).
func sortedEvents(log *trace.Log) []trace.Event {
	events := log.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// DetectionTimes measures, for a subject that crashed, the time from the
// crash until each observer's *permanent* suspicion (the suspicion episode
// that never ends). Observers already suspecting the subject when it crashed
// count as detection time zero.
func DetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set) DetectionStats {
	crashAt, ok := truth.CrashTime(subject)
	if !ok {
		return DetectionStats{Missing: observers.Len()}
	}
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		eps := episodes(events, obs, subject)
		if len(eps) == 0 || eps[len(eps)-1].end != -1 {
			acc.miss()
			return true
		}
		det := eps[len(eps)-1].start - crashAt
		if det < 0 {
			det = 0 // suspected since before the crash
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// MistakeStats summarizes false suspicions of correct (or not-yet-crashed)
// subjects.
type MistakeStats struct {
	// Count is the number of closed false-suspicion episodes.
	Count int
	// Unresolved is the number of false-suspicion episodes still open at
	// the end of the horizon (accuracy violations at the cut).
	Unresolved int
	// AvgDuration and MaxDuration describe closed episodes (T_M).
	AvgDuration, MaxDuration time.Duration
	// Rate is closed episodes per observer-subject pair per second (λ_M).
	Rate float64
}

// Mistakes scans all (observer, subject) pairs among members and counts
// suspicion episodes of subjects that had not crashed when the episode
// began.
func Mistakes(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) MistakeStats {
	events := sortedEvents(log)
	var stats MistakeStats
	var total time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				if truth.CrashedBy(subj, ep.start) {
					continue // true suspicion
				}
				if ep.end == -1 {
					// Open at the cut: a mistake only if the subject is up
					// at the cut (otherwise it became a true detection).
					if !truth.DownAt(subj, horizon) {
						stats.Unresolved++
					}
					continue
				}
				stats.Count++
				d := ep.end - ep.start
				total += d
				if d > stats.MaxDuration {
					stats.MaxDuration = d
				}
			}
			return true
		})
		return true
	})
	if stats.Count > 0 {
		stats.AvgDuration = total / time.Duration(stats.Count)
	}
	if pairs > 0 && horizon > 0 {
		stats.Rate = float64(stats.Count) / float64(pairs) / horizon.Seconds()
	}
	return stats
}

// QueryAccuracy returns P_A: the probability that a random query about a
// random correct process at a random time in [0, horizon] is answered
// correctly (not suspected). Computed as 1 − (aggregate wrongful-suspicion
// time) / (correct-pair count × horizon). Pairs involving a process that
// crashes at any point are excluded entirely, as in the crash-stop metric
// definition; accuracy around recoveries is covered by the dedicated
// recovery metrics (TrustRestorationTimes, Reconvergence, MistakeStorm).
func QueryAccuracy(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 1
	}
	events := sortedEvents(log)
	var wrongful time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		if truth.Crashed(obs) {
			return true // crashed observers stop being queried; skip
		}
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj || truth.Crashed(subj) {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				end := ep.end
				if end == -1 || end > horizon {
					end = horizon
				}
				if end > ep.start {
					wrongful += end - ep.start
				}
			}
			return true
		})
		return true
	})
	if pairs == 0 {
		return 1
	}
	frac := float64(wrongful) / (float64(pairs) * float64(horizon))
	return 1 - frac
}

// FalseSuspicionSeries samples how many (observer, correct-subject) pairs
// are in a suspected state at each of the given instants — the data behind
// the "number of false suspicions over time" figure.
func FalseSuspicionSeries(log *trace.Log, truth *GroundTruth, times []time.Duration) []int {
	return log.SuspicionCountSeries(times, func(subject ident.ID) bool {
		return !truth.Crashed(subject)
	})
}

// RedetectionTimes measures detection of the subject's k-th downtime (k is a
// 0-based index into truth.Intervals(subject)): the time from the crash
// until each observer's first suspicion episode that begins inside the
// interval; an episode already open when the crash hit counts as detection
// time zero. Observers with no such episode count as Missing — for a closed
// interval that means the crash went unnoticed before the process came back.
// With k = 0 on a crash-stop record this generalizes DetectionTimes, except
// that the detecting episode need not be permanent (a recovered process is
// legitimately un-suspected later).
func RedetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) {
		return DetectionStats{Missing: observers.Len()}
	}
	iv := ivs[k]
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		det := time.Duration(-1)
		for _, ep := range episodes(events, obs, subject) {
			if ep.start <= iv.Start && (ep.end == -1 || ep.end > iv.Start) {
				det = 0 // suspected since before the crash
				break
			}
			if ep.start >= iv.Start && (iv.Open() || ep.start < iv.End) {
				det = ep.start - iv.Start
				break
			}
		}
		if det < 0 {
			acc.miss()
			return true
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// TrustRestorationTimes measures, after the subject's k-th downtime ends,
// how long the observers still suspecting it at the recovery instant take to
// trust it again: the end of the suspicion episode covering the recovery,
// minus the recovery time. Observers not suspecting the subject when it
// recovered are not counted at all; observers whose episode never closes
// count as Missing (the restarted process was never re-trusted within the
// horizon). An open k-th interval (no recovery) reports every observer as
// Missing.
func TrustRestorationTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) || ivs[k].Open() {
		return DetectionStats{Missing: observers.Len()}
	}
	r := ivs[k].End
	events := sortedEvents(log)
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		for _, ep := range episodes(events, obs, subject) {
			if ep.start > r {
				break // not suspecting at the recovery instant
			}
			if ep.end != -1 && ep.end <= r {
				continue
			}
			// Episode covers r.
			if ep.end == -1 {
				acc.miss()
				return true
			}
			acc.add(ep.end - r)
			return true
		}
		return true
	})
	return acc.result()
}

// Reconvergence measures the settle time after `from` (typically a heal or a
// recovery): how long until the last wrongful suspicion among members is
// corrected, and whether every one of them was (clean). A suspicion episode
// counts when it is active at `from`, or begins after it while its subject
// is up; the settle time is the largest episode end minus `from` — zero when
// nothing was wrongfully suspected from `from` on. Episodes still open at
// the end of the trace make the result unclean and do not extend the settle
// time.
func Reconvergence(log *trace.Log, truth *GroundTruth, members ident.Set, from time.Duration) (settle time.Duration, clean bool) {
	events := sortedEvents(log)
	clean = true
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range episodes(events, obs, subj) {
				activeAt := ep.start
				if activeAt < from {
					if ep.end != -1 && ep.end <= from {
						continue // over before `from`
					}
					activeAt = from
				}
				if truth.DownAt(subj, activeAt) {
					continue // justified suspicion
				}
				if ep.end == -1 {
					clean = false
					continue
				}
				if d := ep.end - from; d > settle {
					settle = d
				}
			}
			return true
		})
		return true
	})
	return settle, clean
}

// MistakeStorm counts the false-suspicion episodes that begin inside
// [start, end) — the mistake burst a partition window or a restart provokes.
// An episode is false when its subject is not down at the instant it begins.
func MistakeStorm(log *trace.Log, truth *GroundTruth, members ident.Set, start, end time.Duration) int {
	events := sortedEvents(log)
	storm := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range episodes(events, obs, subj) {
				if ep.start < start || ep.start >= end {
					continue
				}
				if !truth.DownAt(subj, ep.start) {
					storm++
				}
			}
			return true
		})
		return true
	})
	return storm
}
