// Package qos computes quality-of-service metrics of failure detectors from
// recorded suspicion traces, following the taxonomy of Chen, Toueg and
// Aguilera: detection time, mistake rate, mistake duration and query
// accuracy probability. Ground truth is interval-based (processes may crash,
// recover and crash again), which adds the recovery-aware metrics of the
// crash-recovery QoS literature: re-detection time per downtime, trust
// restoration after a restart, re-convergence after a heal, and
// partition-window mistake storms. The experiment harness reduces every
// table of the reconstructed evaluation to these numbers.
//
// Metrics are computed by the streaming Judge: it ingests each trace.Event
// once (snapshot via JudgeFrom, or live during the run as a SuspicionSink)
// into a flat per-pair episode index, and every metric is a finalizer over
// that one accumulator pass. The package-level metric functions are thin
// wrappers that build a Judge per call; callers that need several metrics
// from one trace — every sampled experiment does — should build one Judge
// and query it repeatedly, which is what makes judging n=1024–4096 topology
// cells tractable. Results are byte-identical to the pre-Judge sort+rescan
// implementations (kept in legacy.go and enforced by differential tests).
//
// These are the per-run scalar metrics; across an R-seed family
// (internal/exp Options.Repeat) they become the sampled distributions —
// mean/stderr/ci95/percentiles — of the asyncfd-bench/v2 rows described
// in the repository README ("Reading BENCH_*.json") and
// docs/BENCHMARKS.md. Duration-valued metrics enter those rows in
// milliseconds via Millis.
package qos

import (
	"fmt"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// Millis converts a duration to float64 milliseconds — the unit every
// duration-valued metric row of the asyncfd-bench/v2 schema uses (see
// cmd/fdbench and docs/BENCHMARKS.md).
func Millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Interval is one [Start, End) downtime window of a process. End = -1 marks
// an interval still open at the end of the record (the process never
// recovered).
type Interval struct {
	Start, End time.Duration
}

// Open reports whether the interval never closes.
func (iv Interval) Open() bool { return iv.End < 0 }

// Covers reports whether the interval contains time at (Start inclusive,
// End exclusive).
func (iv Interval) Covers(at time.Duration) bool {
	return at >= iv.Start && (iv.Open() || at < iv.End)
}

// GroundTruth is the fault-injection record a trace is judged against: for
// every process, the intervals during which it was down. The zero value (no
// faults) is ready to use. A crash-stop run records one open interval per
// crashed process; a crash-recovery run closes an interval at each recovery
// and opens a new one at each later crash. Crash and Recover must be called
// in non-decreasing time order per process (fault schedules are applied in
// time order); out-of-order timestamps panic, since they would silently
// record negative-length or overlapping downtime intervals and corrupt
// every metric judged against them.
type GroundTruth struct {
	downs map[ident.ID][]Interval
}

// Crash records that id went down at time at, opening a downtime interval.
// Crashing a process that is already down is a no-op. A crash before the
// process's previous recovery instant panics (the previous interval would
// overlap this one); a crash exactly at the recovery instant is allowed and
// opens a back-to-back interval.
func (g *GroundTruth) Crash(id ident.ID, at time.Duration) {
	ivs := g.downs[id]
	if len(ivs) > 0 {
		if last := ivs[len(ivs)-1]; last.Open() {
			return
		} else if at < last.End {
			panic(fmt.Sprintf("qos: Crash(%v, %v) before previous recovery at %v", id, at, last.End))
		}
	}
	if g.downs == nil {
		g.downs = make(map[ident.ID][]Interval)
	}
	g.downs[id] = append(ivs, Interval{Start: at, End: -1})
}

// Recover records that id came back up at time at, closing its open
// downtime interval. Recovering a process that is not down is a no-op. A
// recovery before the open interval's crash instant panics (it would record
// a negative-length downtime); a recovery exactly at the crash instant is
// allowed and closes the interval to zero length.
func (g *GroundTruth) Recover(id ident.ID, at time.Duration) {
	ivs := g.downs[id]
	if len(ivs) == 0 || !ivs[len(ivs)-1].Open() {
		return
	}
	if at < ivs[len(ivs)-1].Start {
		panic(fmt.Sprintf("qos: Recover(%v, %v) before crash at %v", id, at, ivs[len(ivs)-1].Start))
	}
	ivs[len(ivs)-1].End = at
}

// CrashTime returns when id first crashed.
func (g *GroundTruth) CrashTime(id ident.ID) (time.Duration, bool) {
	ivs := g.downs[id]
	if len(ivs) == 0 {
		return 0, false
	}
	return ivs[0].Start, true
}

// Crashed reports whether id ever crashes in this run.
func (g *GroundTruth) Crashed(id ident.ID) bool {
	return len(g.downs[id]) > 0
}

// DownAt reports whether id is down at time at: some downtime interval
// covers it (crash instants inclusive, recovery instants exclusive).
func (g *GroundTruth) DownAt(id ident.ID, at time.Duration) bool {
	for _, iv := range g.downs[id] {
		if iv.Covers(at) {
			return true
		}
	}
	return false
}

// CrashedBy reports whether id is down at time at. For crash-stop records
// this is the historical "had crashed at or before at"; with recoveries it
// is interval-based, so a suspicion of a crashed-and-recovered process is
// judged against the process's actual state at that time.
func (g *GroundTruth) CrashedBy(id ident.ID, at time.Duration) bool {
	return g.DownAt(id, at)
}

// Intervals returns a copy of id's downtime intervals in time order.
func (g *GroundTruth) Intervals(id ident.ID) []Interval {
	ivs := g.downs[id]
	if len(ivs) == 0 {
		return nil
	}
	out := make([]Interval, len(ivs))
	copy(out, ivs)
	return out
}

// CrashedSet returns the processes currently down at the end of the record
// (those whose last downtime interval never closed). For crash-stop records
// this is every process that crashed, as before.
func (g *GroundTruth) CrashedSet() ident.Set {
	var s ident.Set
	for id, ivs := range g.downs {
		if len(ivs) > 0 && ivs[len(ivs)-1].Open() {
			s.Add(id)
		}
	}
	return s
}

// DetectionStats summarizes how fast the observers permanently detected one
// crash.
type DetectionStats struct {
	// Avg, Min, Max are over the observers that did permanently detect.
	Avg, Min, Max time.Duration
	// Count is the number of observers that permanently detected.
	Count int
	// Missing is the number of observers that never did (completeness
	// violations within the observed horizon).
	Missing int
}

// detAccum folds per-observer detection durations into a DetectionStats,
// maintaining count/sum/min/max; stats() finalizes the average. It is the
// shared accumulator of DetectionTimes, RedetectionTimes and
// TrustRestorationTimes.
type detAccum struct {
	stats DetectionStats
	total time.Duration
}

func (a *detAccum) add(det time.Duration) {
	if a.stats.Count == 0 || det < a.stats.Min {
		a.stats.Min = det
	}
	if a.stats.Count == 0 || det > a.stats.Max {
		a.stats.Max = det
	}
	a.stats.Count++
	a.total += det
}

func (a *detAccum) miss() { a.stats.Missing++ }

func (a *detAccum) result() DetectionStats {
	if a.stats.Count > 0 {
		a.stats.Avg = a.total / time.Duration(a.stats.Count)
	}
	return a.stats
}

// episode is a [start, end) interval during which observer suspected
// subject; end = -1 marks an episode still open at the end of the trace.
type episode struct {
	start, end time.Duration
}

// MistakeStats summarizes false suspicions of correct (or not-yet-crashed)
// subjects.
type MistakeStats struct {
	// Count is the number of closed false-suspicion episodes.
	Count int
	// Unresolved is the number of false-suspicion episodes still open at
	// the end of the horizon (accuracy violations at the cut).
	Unresolved int
	// AvgDuration and MaxDuration describe closed episodes (T_M).
	AvgDuration, MaxDuration time.Duration
	// Rate is closed episodes per observer-subject pair per second (λ_M).
	Rate float64
}

// DetectionTimes is the one-shot wrapper over Judge.DetectionTimes; see its
// documentation for the metric definition.
func DetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set) DetectionStats {
	return JudgeFrom(log).DetectionTimes(truth, subject, observers)
}

// Mistakes is the one-shot wrapper over Judge.Mistakes; see its
// documentation for the metric definition.
func Mistakes(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) MistakeStats {
	return JudgeFrom(log).Mistakes(truth, members, horizon)
}

// QueryAccuracy is the one-shot wrapper over Judge.QueryAccuracy; see its
// documentation for the metric definition.
func QueryAccuracy(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) float64 {
	return JudgeFrom(log).QueryAccuracy(truth, members, horizon)
}

// FalseSuspicionSeries samples how many (observer, correct-subject) pairs
// are in a suspected state at each of the given instants — the data behind
// the "number of false suspicions over time" figure.
func FalseSuspicionSeries(log *trace.Log, truth *GroundTruth, times []time.Duration) []int {
	return log.SuspicionCountSeries(times, func(subject ident.ID) bool {
		return !truth.Crashed(subject)
	})
}

// RedetectionTimes is the one-shot wrapper over Judge.RedetectionTimes; see
// its documentation for the metric definition.
func RedetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	return JudgeFrom(log).RedetectionTimes(truth, subject, observers, k)
}

// TrustRestorationTimes is the one-shot wrapper over
// Judge.TrustRestorationTimes; see its documentation for the metric
// definition.
func TrustRestorationTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	return JudgeFrom(log).TrustRestorationTimes(truth, subject, observers, k)
}

// Reconvergence is the one-shot wrapper over Judge.Reconvergence; see its
// documentation for the metric definition.
func Reconvergence(log *trace.Log, truth *GroundTruth, members ident.Set, from time.Duration) (settle time.Duration, clean bool) {
	return JudgeFrom(log).Reconvergence(truth, members, from)
}

// MistakeStorm is the one-shot wrapper over Judge.MistakeStorm; see its
// documentation for the metric definition.
func MistakeStorm(log *trace.Log, truth *GroundTruth, members ident.Set, start, end time.Duration) int {
	return JudgeFrom(log).MistakeStorm(truth, members, start, end)
}
