// Package qos computes quality-of-service metrics of failure detectors from
// recorded suspicion traces, following the taxonomy of Chen, Toueg and
// Aguilera: detection time, mistake rate, mistake duration and query
// accuracy probability. The experiment harness reduces every table of the
// reconstructed evaluation to these numbers.
package qos

import (
	"sort"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// GroundTruth is the fault-injection record a trace is judged against.
// The zero value (no crashes) is ready to use.
type GroundTruth struct {
	crashes map[ident.ID]time.Duration
}

// Crash records that id crashed at time at.
func (g *GroundTruth) Crash(id ident.ID, at time.Duration) {
	if g.crashes == nil {
		g.crashes = make(map[ident.ID]time.Duration)
	}
	g.crashes[id] = at
}

// CrashTime returns when id crashed.
func (g *GroundTruth) CrashTime(id ident.ID) (time.Duration, bool) {
	t, ok := g.crashes[id]
	return t, ok
}

// Crashed reports whether id ever crashes in this run.
func (g *GroundTruth) Crashed(id ident.ID) bool {
	_, ok := g.crashes[id]
	return ok
}

// CrashedBy reports whether id had crashed at or before time at.
func (g *GroundTruth) CrashedBy(id ident.ID, at time.Duration) bool {
	t, ok := g.crashes[id]
	return ok && t <= at
}

// CrashedSet returns all processes that crash during the run.
func (g *GroundTruth) CrashedSet() ident.Set {
	var s ident.Set
	for id := range g.crashes {
		s.Add(id)
	}
	return s
}

// DetectionStats summarizes how fast the observers permanently detected one
// crash.
type DetectionStats struct {
	// Avg, Min, Max are over the observers that did permanently detect.
	Avg, Min, Max time.Duration
	// Count is the number of observers that permanently detected.
	Count int
	// Missing is the number of observers that never did (completeness
	// violations within the observed horizon).
	Missing int
}

// episode is a [start, end) interval during which observer suspected
// subject; end = -1 marks an episode still open at the end of the trace.
type episode struct {
	start, end time.Duration
}

// episodes reconstructs the suspicion intervals of (observer, subject).
func episodes(events []trace.Event, observer, subject ident.ID) []episode {
	var out []episode
	open := -1
	for _, e := range events {
		if e.Observer != observer || e.Subject != subject {
			continue
		}
		if e.Suspected {
			if open == -1 {
				out = append(out, episode{start: e.At, end: -1})
				open = len(out) - 1
			}
		} else if open != -1 {
			out[open].end = e.At
			open = -1
		}
	}
	return out
}

// sortedEvents returns the log's events in time order (stable).
func sortedEvents(log *trace.Log) []trace.Event {
	events := log.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// DetectionTimes measures, for a subject that crashed, the time from the
// crash until each observer's *permanent* suspicion (the suspicion episode
// that never ends). Observers already suspecting the subject when it crashed
// count as detection time zero.
func DetectionTimes(log *trace.Log, truth *GroundTruth, subject ident.ID, observers ident.Set) DetectionStats {
	crashAt, ok := truth.CrashTime(subject)
	if !ok {
		return DetectionStats{Missing: observers.Len()}
	}
	events := sortedEvents(log)
	var stats DetectionStats
	var total time.Duration
	first := true
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		eps := episodes(events, obs, subject)
		if len(eps) == 0 || eps[len(eps)-1].end != -1 {
			stats.Missing++
			return true
		}
		det := eps[len(eps)-1].start - crashAt
		if det < 0 {
			det = 0 // suspected since before the crash
		}
		stats.Count++
		total += det
		if first || det < stats.Min {
			stats.Min = det
		}
		if first || det > stats.Max {
			stats.Max = det
		}
		first = false
		return true
	})
	if stats.Count > 0 {
		stats.Avg = total / time.Duration(stats.Count)
	}
	return stats
}

// MistakeStats summarizes false suspicions of correct (or not-yet-crashed)
// subjects.
type MistakeStats struct {
	// Count is the number of closed false-suspicion episodes.
	Count int
	// Unresolved is the number of false-suspicion episodes still open at
	// the end of the horizon (accuracy violations at the cut).
	Unresolved int
	// AvgDuration and MaxDuration describe closed episodes (T_M).
	AvgDuration, MaxDuration time.Duration
	// Rate is closed episodes per observer-subject pair per second (λ_M).
	Rate float64
}

// Mistakes scans all (observer, subject) pairs among members and counts
// suspicion episodes of subjects that had not crashed when the episode
// began.
func Mistakes(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) MistakeStats {
	events := sortedEvents(log)
	var stats MistakeStats
	var total time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				if truth.CrashedBy(subj, ep.start) {
					continue // true suspicion
				}
				if ep.end == -1 {
					// Open at the cut: a mistake only if the subject is
					// still correct (otherwise it became a true detection).
					if !truth.Crashed(subj) {
						stats.Unresolved++
					}
					continue
				}
				stats.Count++
				d := ep.end - ep.start
				total += d
				if d > stats.MaxDuration {
					stats.MaxDuration = d
				}
			}
			return true
		})
		return true
	})
	if stats.Count > 0 {
		stats.AvgDuration = total / time.Duration(stats.Count)
	}
	if pairs > 0 && horizon > 0 {
		stats.Rate = float64(stats.Count) / float64(pairs) / horizon.Seconds()
	}
	return stats
}

// QueryAccuracy returns P_A: the probability that a random query about a
// random correct process at a random time in [0, horizon] is answered
// correctly (not suspected). Computed as 1 − (aggregate wrongful-suspicion
// time) / (correct-pair count × horizon).
func QueryAccuracy(log *trace.Log, truth *GroundTruth, members ident.Set, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 1
	}
	events := sortedEvents(log)
	var wrongful time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		if truth.Crashed(obs) {
			return true // crashed observers stop being queried; skip
		}
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj || truth.Crashed(subj) {
				return true
			}
			pairs++
			for _, ep := range episodes(events, obs, subj) {
				end := ep.end
				if end == -1 || end > horizon {
					end = horizon
				}
				if end > ep.start {
					wrongful += end - ep.start
				}
			}
			return true
		})
		return true
	})
	if pairs == 0 {
		return 1
	}
	frac := float64(wrongful) / (float64(pairs) * float64(horizon))
	return 1 - frac
}

// FalseSuspicionSeries samples how many (observer, correct-subject) pairs
// are in a suspected state at each of the given instants — the data behind
// the "number of false suspicions over time" figure.
func FalseSuspicionSeries(log *trace.Log, truth *GroundTruth, times []time.Duration) []int {
	return log.SuspicionCountSeries(times, func(subject ident.ID) bool {
		return !truth.Crashed(subject)
	})
}
