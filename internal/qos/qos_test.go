package qos

import (
	"testing"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestGroundTruth(t *testing.T) {
	var g GroundTruth
	if g.Crashed(1) || g.CrashedBy(1, sec(10)) {
		t.Error("zero GroundTruth reports crashes")
	}
	g.Crash(1, sec(5))
	if !g.Crashed(1) {
		t.Error("Crashed = false after Crash")
	}
	if at, ok := g.CrashTime(1); !ok || at != sec(5) {
		t.Errorf("CrashTime = %v,%v", at, ok)
	}
	if g.CrashedBy(1, sec(4)) {
		t.Error("CrashedBy before crash time = true")
	}
	if !g.CrashedBy(1, sec(5)) || !g.CrashedBy(1, sec(6)) {
		t.Error("CrashedBy at/after crash time = false")
	}
	set := g.CrashedSet()
	if set.Len() != 1 || !set.Has(1) {
		t.Errorf("CrashedSet = %v", set)
	}
}

func TestDetectionTimesBasic(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	// Observer 0 detects at 12s, observer 1 at 11s, observer 2 never.
	l.OnSuspicion(sec(12), 0, 3, true)
	l.OnSuspicion(sec(11), 1, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 1, 2))
	if st.Count != 2 || st.Missing != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Min != sec(1) || st.Max != sec(2) || st.Avg != 1500*time.Millisecond {
		t.Errorf("stats = %+v", st)
	}
}

func TestDetectionTimesPermanenceRequired(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	// Observer 0 suspects at 11s, revokes at 12s (not permanent), suspects
	// again at 15s (permanent): detection time is 5s, not 1s.
	l.OnSuspicion(sec(11), 0, 3, true)
	l.OnSuspicion(sec(12), 0, 3, false)
	l.OnSuspicion(sec(15), 0, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0))
	if st.Count != 1 || st.Avg != sec(5) {
		t.Errorf("stats = %+v, want permanent-episode detection at 5s", st)
	}
	// An observer whose final state is "not suspected" counts as missing.
	l2 := &trace.Log{}
	l2.OnSuspicion(sec(11), 0, 3, true)
	l2.OnSuspicion(sec(12), 0, 3, false)
	st2 := DetectionTimes(l2, &g, 3, ident.SetOf(0))
	if st2.Count != 0 || st2.Missing != 1 {
		t.Errorf("stats = %+v, want missing", st2)
	}
}

func TestDetectionTimeZeroWhenAlreadySuspected(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	l.OnSuspicion(sec(7), 0, 3, true) // false suspicion that becomes true
	st := DetectionTimes(l, &g, 3, ident.SetOf(0))
	if st.Count != 1 || st.Avg != 0 {
		t.Errorf("stats = %+v, want zero detection time", st)
	}
}

func TestDetectionTimesSubjectNeverCrashed(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 1))
	if st.Count != 0 || st.Missing != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDetectionExcludesSubjectAsObserver(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	l.OnSuspicion(sec(11), 0, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 3))
	if st.Count != 1 || st.Missing != 0 {
		t.Errorf("stats = %+v; the subject itself must not count as observer", st)
	}
}

func TestMistakes(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	members := ident.SetOf(0, 1, 2)
	// Two closed mistakes about p1 (durations 2s and 4s), one open mistake
	// about p2 at the horizon.
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(3), 0, 1, false)
	l.OnSuspicion(sec(5), 2, 1, true)
	l.OnSuspicion(sec(9), 2, 1, false)
	l.OnSuspicion(sec(8), 0, 2, true)
	st := Mistakes(l, &g, members, sec(10))
	if st.Count != 2 || st.Unresolved != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgDuration != sec(3) || st.MaxDuration != sec(4) {
		t.Errorf("durations = %+v", st)
	}
	wantRate := 2.0 / 6.0 / 10.0 // 2 mistakes, 6 ordered pairs, 10 seconds
	if diff := st.Rate - wantRate; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Rate = %v, want %v", st.Rate, wantRate)
	}
}

func TestMistakesExcludeTrueSuspicions(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, sec(5))
	l.OnSuspicion(sec(6), 0, 1, true) // true detection, not a mistake
	l.OnSuspicion(sec(2), 0, 1, true) // started before crash → mistake even though 1 crashes later
	l.OnSuspicion(sec(3), 0, 1, false)
	st := Mistakes(l, &g, ident.SetOf(0, 1), sec(10))
	if st.Count != 1 {
		t.Errorf("Count = %d, want 1 (pre-crash episode only)", st.Count)
	}
	if st.Unresolved != 0 {
		t.Errorf("Unresolved = %d; open true detection counted as mistake", st.Unresolved)
	}
}

func TestQueryAccuracyPerfect(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	if pa := QueryAccuracy(l, &g, ident.SetOf(0, 1, 2), sec(10)); pa != 1 {
		t.Errorf("PA = %v, want 1", pa)
	}
	if pa := QueryAccuracy(l, &g, ident.SetOf(0), sec(10)); pa != 1 {
		t.Errorf("PA with one member = %v, want 1", pa)
	}
	if pa := QueryAccuracy(l, &g, ident.SetOf(0, 1), 0); pa != 1 {
		t.Errorf("PA with zero horizon = %v, want 1", pa)
	}
}

func TestQueryAccuracyCountsWrongfulTime(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	members := ident.SetOf(0, 1)
	// p0 wrongfully suspects p1 for 2 of 10 seconds; 2 ordered pairs.
	l.OnSuspicion(sec(4), 0, 1, true)
	l.OnSuspicion(sec(6), 0, 1, false)
	pa := QueryAccuracy(l, &g, members, sec(10))
	want := 1 - 2.0/(2*10.0)
	if diff := pa - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("PA = %v, want %v", pa, want)
	}
}

func TestQueryAccuracyIgnoresCrashedParties(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, sec(0))
	l.OnSuspicion(sec(1), 0, 1, true) // about a crashed subject: not wrongful
	pa := QueryAccuracy(l, &g, ident.SetOf(0, 1, 2), sec(10))
	if pa != 1 {
		t.Errorf("PA = %v, want 1 (crashed subject excluded)", pa)
	}
}

func TestQueryAccuracyOpenEpisodeClampedToHorizon(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	l.OnSuspicion(sec(8), 0, 1, true) // open until horizon 10 → 2s wrongful
	pa := QueryAccuracy(l, &g, ident.SetOf(0, 1), sec(10))
	want := 1 - 2.0/(2*10.0)
	if diff := pa - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("PA = %v, want %v", pa, want)
	}
}

func TestFalseSuspicionSeries(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(9, sec(0))
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(2), 0, 9, true) // crashed subject: excluded
	l.OnSuspicion(sec(3), 0, 1, false)
	got := FalseSuspicionSeries(l, &g, []time.Duration{0, sec(1), sec(2), sec(3)})
	want := []int{0, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestEpisodesIgnoreDuplicateTransitions(t *testing.T) {
	l := &trace.Log{}
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(2), 0, 1, true) // duplicate suspect
	l.OnSuspicion(sec(3), 0, 1, false)
	l.OnSuspicion(sec(4), 0, 1, false) // duplicate restore
	var g GroundTruth
	st := Mistakes(l, &g, ident.SetOf(0, 1), sec(10))
	if st.Count != 1 || st.AvgDuration != sec(2) {
		t.Errorf("stats = %+v, want one 2s episode", st)
	}
}
