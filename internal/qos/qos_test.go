package qos

import (
	"testing"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestGroundTruth(t *testing.T) {
	var g GroundTruth
	if g.Crashed(1) || g.CrashedBy(1, sec(10)) {
		t.Error("zero GroundTruth reports crashes")
	}
	g.Crash(1, sec(5))
	if !g.Crashed(1) {
		t.Error("Crashed = false after Crash")
	}
	if at, ok := g.CrashTime(1); !ok || at != sec(5) {
		t.Errorf("CrashTime = %v,%v", at, ok)
	}
	if g.CrashedBy(1, sec(4)) {
		t.Error("CrashedBy before crash time = true")
	}
	if !g.CrashedBy(1, sec(5)) || !g.CrashedBy(1, sec(6)) {
		t.Error("CrashedBy at/after crash time = false")
	}
	set := g.CrashedSet()
	if set.Len() != 1 || !set.Has(1) {
		t.Errorf("CrashedSet = %v", set)
	}
}

func TestGroundTruthIntervals(t *testing.T) {
	var g GroundTruth
	// crash → recover → crash.
	g.Crash(1, sec(5))
	g.Recover(1, sec(10))
	g.Crash(1, sec(20))

	ivs := g.Intervals(1)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v, want 2", ivs)
	}
	if ivs[0].Start != sec(5) || ivs[0].End != sec(10) || ivs[0].Open() {
		t.Errorf("first interval = %+v", ivs[0])
	}
	if ivs[1].Start != sec(20) || !ivs[1].Open() {
		t.Errorf("second interval = %+v", ivs[1])
	}
	if at, ok := g.CrashTime(1); !ok || at != sec(5) {
		t.Errorf("CrashTime = %v,%v, want first crash", at, ok)
	}
	if !g.Crashed(1) || g.Crashed(2) {
		t.Error("Crashed bookkeeping wrong")
	}

	// CrashedBy at interval boundaries: crash instants are down (inclusive),
	// recovery instants are up (exclusive).
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{sec(4), false}, {sec(5), true}, {sec(7), true}, {sec(10), false},
		{sec(15), false}, {sec(20), true}, {sec(30), true},
	}
	for _, tc := range cases {
		if got := g.CrashedBy(1, tc.at); got != tc.down {
			t.Errorf("CrashedBy(1, %v) = %v, want %v", tc.at, got, tc.down)
		}
		if got := g.DownAt(1, tc.at); got != tc.down {
			t.Errorf("DownAt(1, %v) = %v, want %v", tc.at, got, tc.down)
		}
	}
}

func TestGroundTruthCrashedSetCurrentlyDown(t *testing.T) {
	var g GroundTruth
	g.Crash(1, sec(5)) // crash-stop: still down at the end
	g.Crash(2, sec(6)) // crashes but recovers
	g.Recover(2, sec(8))
	set := g.CrashedSet()
	if !set.Has(1) || set.Has(2) || set.Len() != 1 {
		t.Errorf("CrashedSet = %v, want only the currently-down {p1}", set)
	}
}

func TestGroundTruthRedundantTransitionsIgnored(t *testing.T) {
	var g GroundTruth
	g.Recover(1, sec(1)) // recover while up: no-op
	if g.Crashed(1) {
		t.Error("Recover on an up process recorded something")
	}
	g.Crash(1, sec(2))
	g.Crash(1, sec(3)) // crash while down: no-op
	if ivs := g.Intervals(1); len(ivs) != 1 || ivs[0].Start != sec(2) {
		t.Errorf("intervals = %+v", ivs)
	}
	g.Recover(1, sec(4))
	g.Recover(1, sec(5)) // recover while up: no-op
	if ivs := g.Intervals(1); len(ivs) != 1 || ivs[0].End != sec(4) {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestMistakesJudgedAgainstIntervals(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, sec(5))
	g.Recover(1, sec(10))
	// Episode beginning during the downtime: a true suspicion, not a mistake.
	l.OnSuspicion(sec(6), 0, 1, true)
	l.OnSuspicion(sec(11), 0, 1, false)
	// Episode beginning after the recovery: a mistake again.
	l.OnSuspicion(sec(12), 0, 1, true)
	l.OnSuspicion(sec(14), 0, 1, false)
	st := Mistakes(l, &g, ident.SetOf(0, 1), sec(20))
	if st.Count != 1 || st.AvgDuration != sec(2) {
		t.Errorf("stats = %+v, want one 2s post-recovery mistake", st)
	}
}

func TestRedetectionTimes(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	g.Recover(3, sec(20))
	g.Crash(3, sec(30))
	// Crash #1: observer 0 detects at 12s, observer 1 already suspected
	// since 9s, observer 2 never notices before the recovery.
	l.OnSuspicion(sec(9), 1, 3, true)
	l.OnSuspicion(sec(12), 0, 3, true)
	// Restorations after the recovery.
	l.OnSuspicion(sec(21), 0, 3, false)
	l.OnSuspicion(sec(22), 1, 3, false)
	// Crash #2: observers 0 and 2 re-detect, observer 1 never does.
	l.OnSuspicion(sec(31), 0, 3, true)
	l.OnSuspicion(sec(33), 2, 3, true)

	obs := ident.SetOf(0, 1, 2)
	st1 := RedetectionTimes(l, &g, 3, obs, 0)
	if st1.Count != 2 || st1.Missing != 1 {
		t.Fatalf("crash #1 stats = %+v", st1)
	}
	if st1.Min != 0 || st1.Max != sec(2) || st1.Avg != sec(1) {
		t.Errorf("crash #1 stats = %+v", st1)
	}
	st2 := RedetectionTimes(l, &g, 3, obs, 1)
	if st2.Count != 2 || st2.Missing != 1 {
		t.Fatalf("crash #2 stats = %+v", st2)
	}
	if st2.Min != sec(1) || st2.Max != sec(3) || st2.Avg != sec(2) {
		t.Errorf("crash #2 stats = %+v", st2)
	}
	// Out-of-range interval index: everything missing.
	if st := RedetectionTimes(l, &g, 3, obs, 5); st.Missing != 3 {
		t.Errorf("out-of-range stats = %+v", st)
	}
}

func TestRedetectionIgnoresPostRecoveryEpisodes(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	g.Recover(3, sec(20))
	// The only episode begins after the recovery: it cannot count as
	// detection of the closed downtime.
	l.OnSuspicion(sec(25), 0, 3, true)
	st := RedetectionTimes(l, &g, 3, ident.SetOf(0), 0)
	if st.Count != 0 || st.Missing != 1 {
		t.Errorf("stats = %+v, want missing", st)
	}
}

func TestTrustRestorationTimes(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	g.Recover(3, sec(20))
	// Observer 0: suspects during downtime, restores 1.5s after recovery.
	l.OnSuspicion(sec(11), 0, 3, true)
	l.OnSuspicion(sec(21)+500*time.Millisecond, 0, 3, false)
	// Observer 1: suspected and already restored before the recovery (a
	// flap): not suspecting at the recovery instant → not counted.
	l.OnSuspicion(sec(12), 1, 3, true)
	l.OnSuspicion(sec(15), 1, 3, false)
	// Observer 2: suspects and never restores → missing.
	l.OnSuspicion(sec(13), 2, 3, true)

	st := TrustRestorationTimes(l, &g, 3, ident.SetOf(0, 1, 2), 0)
	if st.Count != 1 || st.Missing != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Avg != sec(1)+500*time.Millisecond {
		t.Errorf("Avg = %v, want 1.5s", st.Avg)
	}
	// An open downtime has no recovery to restore trust after.
	var g2 GroundTruth
	g2.Crash(3, sec(10))
	if st := TrustRestorationTimes(l, &g2, 3, ident.SetOf(0), 0); st.Missing != 1 || st.Count != 0 {
		t.Errorf("open-interval stats = %+v", st)
	}
}

func TestReconvergence(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	members := ident.SetOf(0, 1, 2)
	// Partition-era suspicions, healed at t=20s.
	l.OnSuspicion(sec(16), 0, 1, true)
	l.OnSuspicion(sec(22), 0, 1, false) // settles 2s after heal
	l.OnSuspicion(sec(17), 1, 0, true)
	l.OnSuspicion(sec(21), 1, 0, false) // settles 1s after heal
	// An episode fully over before the heal must not count.
	l.OnSuspicion(sec(5), 2, 0, true)
	l.OnSuspicion(sec(6), 2, 0, false)
	settle, clean := Reconvergence(l, &g, members, sec(20))
	if !clean || settle != sec(2) {
		t.Errorf("settle=%v clean=%v, want 2s clean", settle, clean)
	}

	// A suspicion that never resolves makes the result unclean.
	l.OnSuspicion(sec(23), 2, 1, true)
	settle, clean = Reconvergence(l, &g, members, sec(20))
	if clean {
		t.Error("clean = true with an unresolved post-heal suspicion")
	}
	if settle != sec(2) {
		t.Errorf("settle = %v; open episodes must not extend it", settle)
	}

	// Justified suspicions (subject down) are excluded.
	var g2 GroundTruth
	g2.Crash(1, sec(25))
	l2 := &trace.Log{}
	l2.OnSuspicion(sec(26), 0, 1, true)
	settle, clean = Reconvergence(l2, &g2, members, sec(20))
	if !clean || settle != 0 {
		t.Errorf("settle=%v clean=%v, want 0s clean (true detection excluded)", settle, clean)
	}
}

func TestMistakeStorm(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(2, sec(12))
	members := ident.SetOf(0, 1, 2)
	l.OnSuspicion(sec(9), 0, 1, true)  // before the window
	l.OnSuspicion(sec(11), 1, 0, true) // in the window: counts
	l.OnSuspicion(sec(13), 0, 2, true) // in the window but subject is down: true suspicion
	l.OnSuspicion(sec(14), 0, 1, false)
	l.OnSuspicion(sec(15), 0, 1, true) // at the window end: excluded
	if storm := MistakeStorm(l, &g, members, sec(10), sec(15)); storm != 1 {
		t.Errorf("storm = %d, want 1", storm)
	}
}

func TestDetectionTimesBasic(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	// Observer 0 detects at 12s, observer 1 at 11s, observer 2 never.
	l.OnSuspicion(sec(12), 0, 3, true)
	l.OnSuspicion(sec(11), 1, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 1, 2))
	if st.Count != 2 || st.Missing != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Min != sec(1) || st.Max != sec(2) || st.Avg != 1500*time.Millisecond {
		t.Errorf("stats = %+v", st)
	}
}

func TestDetectionTimesPermanenceRequired(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	// Observer 0 suspects at 11s, revokes at 12s (not permanent), suspects
	// again at 15s (permanent): detection time is 5s, not 1s.
	l.OnSuspicion(sec(11), 0, 3, true)
	l.OnSuspicion(sec(12), 0, 3, false)
	l.OnSuspicion(sec(15), 0, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0))
	if st.Count != 1 || st.Avg != sec(5) {
		t.Errorf("stats = %+v, want permanent-episode detection at 5s", st)
	}
	// An observer whose final state is "not suspected" counts as missing.
	l2 := &trace.Log{}
	l2.OnSuspicion(sec(11), 0, 3, true)
	l2.OnSuspicion(sec(12), 0, 3, false)
	st2 := DetectionTimes(l2, &g, 3, ident.SetOf(0))
	if st2.Count != 0 || st2.Missing != 1 {
		t.Errorf("stats = %+v, want missing", st2)
	}
}

func TestDetectionTimeZeroWhenAlreadySuspected(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	l.OnSuspicion(sec(7), 0, 3, true) // false suspicion that becomes true
	st := DetectionTimes(l, &g, 3, ident.SetOf(0))
	if st.Count != 1 || st.Avg != 0 {
		t.Errorf("stats = %+v, want zero detection time", st)
	}
}

func TestDetectionTimesSubjectNeverCrashed(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 1))
	if st.Count != 0 || st.Missing != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDetectionExcludesSubjectAsObserver(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(3, sec(10))
	l.OnSuspicion(sec(11), 0, 3, true)
	st := DetectionTimes(l, &g, 3, ident.SetOf(0, 3))
	if st.Count != 1 || st.Missing != 0 {
		t.Errorf("stats = %+v; the subject itself must not count as observer", st)
	}
}

func TestMistakes(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	members := ident.SetOf(0, 1, 2)
	// Two closed mistakes about p1 (durations 2s and 4s), one open mistake
	// about p2 at the horizon.
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(3), 0, 1, false)
	l.OnSuspicion(sec(5), 2, 1, true)
	l.OnSuspicion(sec(9), 2, 1, false)
	l.OnSuspicion(sec(8), 0, 2, true)
	st := Mistakes(l, &g, members, sec(10))
	if st.Count != 2 || st.Unresolved != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgDuration != sec(3) || st.MaxDuration != sec(4) {
		t.Errorf("durations = %+v", st)
	}
	wantRate := 2.0 / 6.0 / 10.0 // 2 mistakes, 6 ordered pairs, 10 seconds
	if diff := st.Rate - wantRate; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Rate = %v, want %v", st.Rate, wantRate)
	}
}

func TestMistakesExcludeTrueSuspicions(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, sec(5))
	l.OnSuspicion(sec(6), 0, 1, true) // true detection, not a mistake
	l.OnSuspicion(sec(2), 0, 1, true) // started before crash → mistake even though 1 crashes later
	l.OnSuspicion(sec(3), 0, 1, false)
	st := Mistakes(l, &g, ident.SetOf(0, 1), sec(10))
	if st.Count != 1 {
		t.Errorf("Count = %d, want 1 (pre-crash episode only)", st.Count)
	}
	if st.Unresolved != 0 {
		t.Errorf("Unresolved = %d; open true detection counted as mistake", st.Unresolved)
	}
}

func TestQueryAccuracyPerfect(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	if pa := QueryAccuracy(l, &g, ident.SetOf(0, 1, 2), sec(10)); pa != 1 {
		t.Errorf("PA = %v, want 1", pa)
	}
	if pa := QueryAccuracy(l, &g, ident.SetOf(0), sec(10)); pa != 1 {
		t.Errorf("PA with one member = %v, want 1", pa)
	}
	if pa := QueryAccuracy(l, &g, ident.SetOf(0, 1), 0); pa != 1 {
		t.Errorf("PA with zero horizon = %v, want 1", pa)
	}
}

func TestQueryAccuracyCountsWrongfulTime(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	members := ident.SetOf(0, 1)
	// p0 wrongfully suspects p1 for 2 of 10 seconds; 2 ordered pairs.
	l.OnSuspicion(sec(4), 0, 1, true)
	l.OnSuspicion(sec(6), 0, 1, false)
	pa := QueryAccuracy(l, &g, members, sec(10))
	want := 1 - 2.0/(2*10.0)
	if diff := pa - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("PA = %v, want %v", pa, want)
	}
}

func TestQueryAccuracyIgnoresCrashedParties(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(1, sec(0))
	l.OnSuspicion(sec(1), 0, 1, true) // about a crashed subject: not wrongful
	pa := QueryAccuracy(l, &g, ident.SetOf(0, 1, 2), sec(10))
	if pa != 1 {
		t.Errorf("PA = %v, want 1 (crashed subject excluded)", pa)
	}
}

func TestQueryAccuracyOpenEpisodeClampedToHorizon(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	l.OnSuspicion(sec(8), 0, 1, true) // open until horizon 10 → 2s wrongful
	pa := QueryAccuracy(l, &g, ident.SetOf(0, 1), sec(10))
	want := 1 - 2.0/(2*10.0)
	if diff := pa - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("PA = %v, want %v", pa, want)
	}
}

func TestFalseSuspicionSeries(t *testing.T) {
	l := &trace.Log{}
	var g GroundTruth
	g.Crash(9, sec(0))
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(2), 0, 9, true) // crashed subject: excluded
	l.OnSuspicion(sec(3), 0, 1, false)
	got := FalseSuspicionSeries(l, &g, []time.Duration{0, sec(1), sec(2), sec(3)})
	want := []int{0, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestEpisodesIgnoreDuplicateTransitions(t *testing.T) {
	l := &trace.Log{}
	l.OnSuspicion(sec(1), 0, 1, true)
	l.OnSuspicion(sec(2), 0, 1, true) // duplicate suspect
	l.OnSuspicion(sec(3), 0, 1, false)
	l.OnSuspicion(sec(4), 0, 1, false) // duplicate restore
	var g GroundTruth
	st := Mistakes(l, &g, ident.SetOf(0, 1), sec(10))
	if st.Count != 1 || st.AvgDuration != sec(2) {
		t.Errorf("stats = %+v, want one 2s episode", st)
	}
}
