package qos

import (
	"sort"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// pairKey packs an (observer, subject) pair into one map key.
type pairKey uint64

func key(observer, subject ident.ID) pairKey {
	return pairKey(uint64(uint32(observer))<<32 | uint64(uint32(subject)))
}

// Judge turns a suspicion trace into QoS metrics with a single accumulator
// pass. It ingests trace.Events once — either all at once from a recorded
// log (JudgeFrom) or streamed during the run (it implements fd.SuspicionSink,
// so it can replace or tee a trace.Log as a detector's sink) — and builds a
// flat sparse index of suspicion episodes per (observer, subject) pair. Every
// metric is then a finalizer over that index: one O(E log E) sort amortized
// over all metrics of a run, instead of the pre-refactor one-sort-plus-
// O(pairs·E)-rescan per metric call.
//
// Metrics may be queried at any time; ingesting further events after a query
// simply rebuilds the index on the next query. Results are byte-identical to
// the original per-metric implementations (enforced by the differential
// tests in this package and internal/exp).
type Judge struct {
	mu     sync.Mutex
	events []trace.Event
	sorted bool // events are known to be in non-decreasing At order
	dirty  bool // events changed since the index was built

	// index maps each observed (observer, subject) pair to its suspicion
	// episodes in time order; open ⇔ last episode has end == -1.
	index map[pairKey][]episode
}

var _ fd.SuspicionSink = (*Judge)(nil)

// NewJudge returns an empty Judge ready for streaming ingestion.
func NewJudge() *Judge {
	return &Judge{sorted: true}
}

// JudgeFrom snapshots a recorded log into a new Judge.
func JudgeFrom(log *trace.Log) *Judge {
	return &Judge{events: log.Events(), dirty: true}
}

// OnSuspicion implements fd.SuspicionSink: one suspicion transition streamed
// in during the run. Safe for concurrent use.
func (j *Judge) OnSuspicion(at time.Duration, observer, subject ident.ID, suspected bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sorted && len(j.events) > 0 && at < j.events[len(j.events)-1].At {
		j.sorted = false
	}
	j.events = append(j.events, trace.Event{At: at, Observer: observer, Subject: subject, Suspected: suspected})
	j.dirty = true
}

// Ingest appends recorded events (tests, synthetic traces).
func (j *Judge) Ingest(events ...trace.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range events {
		if j.sorted && len(j.events) > 0 && e.At < j.events[len(j.events)-1].At {
			j.sorted = false
		}
		j.events = append(j.events, e)
	}
	j.dirty = true
}

// build sorts the buffered events (stable, by At — identical to the legacy
// sortedEvents) and folds them into the per-pair episode index in one pass,
// replicating the legacy episodes() state machine per pair.
func (j *Judge) build() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.dirty && j.index != nil {
		return
	}
	if !j.sorted {
		sort.SliceStable(j.events, func(a, b int) bool { return j.events[a].At < j.events[b].At })
		j.sorted = true
	}
	j.index = make(map[pairKey][]episode)
	for _, e := range j.events {
		k := key(e.Observer, e.Subject)
		eps := j.index[k]
		open := len(eps) > 0 && eps[len(eps)-1].end == -1
		if e.Suspected {
			if !open {
				j.index[k] = append(eps, episode{start: e.At, end: -1})
			}
		} else if open {
			eps[len(eps)-1].end = e.At
		}
	}
	j.dirty = false
}

// pairEpisodes returns the suspicion episodes of (observer, subject) in time
// order, building the index if needed.
func (j *Judge) pairEpisodes(observer, subject ident.ID) []episode {
	j.build()
	return j.index[key(observer, subject)]
}

// SuspectedInTail returns the set of subjects suspected by any observer at or
// after cut: a subject qualifies when some pair holds a suspicion episode
// that begins at or after the cut, spans it, or never closes. It is the
// episode-index equivalent of scanning the raw trace for post-cut suspicion
// transitions plus probing every pair's state at the cut instant — one pass
// over the index instead of O(pairs·events) — and backs the E6 tail metric.
func (j *Judge) SuspectedInTail(cut time.Duration) ident.Set {
	j.build()
	var out ident.Set
	for k, eps := range j.index {
		subject := ident.ID(uint32(k))
		if out.Has(subject) {
			continue
		}
		for _, ep := range eps {
			if ep.start >= cut || ep.end == -1 || ep.end > cut {
				out.Add(subject)
				break
			}
		}
	}
	return out
}

// DetectionTimes measures, for a subject that crashed, the time from the
// crash until each observer's *permanent* suspicion (the suspicion episode
// that never ends). Observers already suspecting the subject when it crashed
// count as detection time zero.
func (j *Judge) DetectionTimes(truth *GroundTruth, subject ident.ID, observers ident.Set) DetectionStats {
	crashAt, ok := truth.CrashTime(subject)
	if !ok {
		return DetectionStats{Missing: observers.Len()}
	}
	j.build()
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		eps := j.index[key(obs, subject)]
		if len(eps) == 0 || eps[len(eps)-1].end != -1 {
			acc.miss()
			return true
		}
		det := eps[len(eps)-1].start - crashAt
		if det < 0 {
			det = 0 // suspected since before the crash
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// Mistakes scans all (observer, subject) pairs among members and counts
// suspicion episodes of subjects that had not crashed when the episode
// began.
func (j *Judge) Mistakes(truth *GroundTruth, members ident.Set, horizon time.Duration) MistakeStats {
	j.build()
	var stats MistakeStats
	var total time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			pairs++
			for _, ep := range j.index[key(obs, subj)] {
				if truth.CrashedBy(subj, ep.start) {
					continue // true suspicion
				}
				if ep.end == -1 {
					// Open at the cut: a mistake only if the subject is up
					// at the cut (otherwise it became a true detection).
					if !truth.DownAt(subj, horizon) {
						stats.Unresolved++
					}
					continue
				}
				stats.Count++
				d := ep.end - ep.start
				total += d
				if d > stats.MaxDuration {
					stats.MaxDuration = d
				}
			}
			return true
		})
		return true
	})
	if stats.Count > 0 {
		stats.AvgDuration = total / time.Duration(stats.Count)
	}
	if pairs > 0 && horizon > 0 {
		stats.Rate = float64(stats.Count) / float64(pairs) / horizon.Seconds()
	}
	return stats
}

// QueryAccuracy returns P_A: the probability that a random query about a
// random correct process at a random time in [0, horizon] is answered
// correctly (not suspected). Computed as 1 − (aggregate wrongful-suspicion
// time) / (correct-pair count × horizon). Pairs involving a process that
// crashes at any point are excluded entirely, as in the crash-stop metric
// definition; accuracy around recoveries is covered by the dedicated
// recovery metrics (TrustRestorationTimes, Reconvergence, MistakeStorm).
func (j *Judge) QueryAccuracy(truth *GroundTruth, members ident.Set, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 1
	}
	j.build()
	var wrongful time.Duration
	pairs := 0
	members.ForEach(func(obs ident.ID) bool {
		if truth.Crashed(obs) {
			return true // crashed observers stop being queried; skip
		}
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj || truth.Crashed(subj) {
				return true
			}
			pairs++
			for _, ep := range j.index[key(obs, subj)] {
				end := ep.end
				if end == -1 || end > horizon {
					end = horizon
				}
				if end > ep.start {
					wrongful += end - ep.start
				}
			}
			return true
		})
		return true
	})
	if pairs == 0 {
		return 1
	}
	frac := float64(wrongful) / (float64(pairs) * float64(horizon))
	return 1 - frac
}

// RedetectionTimes measures detection of the subject's k-th downtime (k is a
// 0-based index into truth.Intervals(subject)): the time from the crash
// until each observer's first suspicion episode that begins inside the
// interval; an episode already open when the crash hit counts as detection
// time zero. Observers with no such episode count as Missing — for a closed
// interval that means the crash went unnoticed before the process came back.
// With k = 0 on a crash-stop record this generalizes DetectionTimes, except
// that the detecting episode need not be permanent (a recovered process is
// legitimately un-suspected later).
func (j *Judge) RedetectionTimes(truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) {
		return DetectionStats{Missing: observers.Len()}
	}
	iv := ivs[k]
	j.build()
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		det := time.Duration(-1)
		for _, ep := range j.index[key(obs, subject)] {
			if ep.start <= iv.Start && (ep.end == -1 || ep.end > iv.Start) {
				det = 0 // suspected since before the crash
				break
			}
			if ep.start >= iv.Start && (iv.Open() || ep.start < iv.End) {
				det = ep.start - iv.Start
				break
			}
		}
		if det < 0 {
			acc.miss()
			return true
		}
		acc.add(det)
		return true
	})
	return acc.result()
}

// TrustRestorationTimes measures, after the subject's k-th downtime ends,
// how long the observers still suspecting it at the recovery instant take to
// trust it again: the end of the suspicion episode covering the recovery,
// minus the recovery time. Observers not suspecting the subject when it
// recovered are not counted at all; observers whose episode never closes
// count as Missing (the restarted process was never re-trusted within the
// horizon). An open k-th interval (no recovery) reports every observer as
// Missing.
func (j *Judge) TrustRestorationTimes(truth *GroundTruth, subject ident.ID, observers ident.Set, k int) DetectionStats {
	ivs := truth.Intervals(subject)
	if k < 0 || k >= len(ivs) || ivs[k].Open() {
		return DetectionStats{Missing: observers.Len()}
	}
	r := ivs[k].End
	j.build()
	var acc detAccum
	observers.ForEach(func(obs ident.ID) bool {
		if obs == subject {
			return true
		}
		for _, ep := range j.index[key(obs, subject)] {
			if ep.start > r {
				break // not suspecting at the recovery instant
			}
			if ep.end != -1 && ep.end <= r {
				continue
			}
			// Episode covers r.
			if ep.end == -1 {
				acc.miss()
				return true
			}
			acc.add(ep.end - r)
			return true
		}
		return true
	})
	return acc.result()
}

// Reconvergence measures the settle time after `from` (typically a heal or a
// recovery): how long until the last wrongful suspicion among members is
// corrected, and whether every one of them was (clean). A suspicion episode
// counts when it is active at `from`, or begins after it while its subject
// is up; the settle time is the largest episode end minus `from` — zero when
// nothing was wrongfully suspected from `from` on. Episodes still open at
// the end of the trace make the result unclean and do not extend the settle
// time.
func (j *Judge) Reconvergence(truth *GroundTruth, members ident.Set, from time.Duration) (settle time.Duration, clean bool) {
	j.build()
	clean = true
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range j.index[key(obs, subj)] {
				activeAt := ep.start
				if activeAt < from {
					if ep.end != -1 && ep.end <= from {
						continue // over before `from`
					}
					activeAt = from
				}
				if truth.DownAt(subj, activeAt) {
					continue // justified suspicion
				}
				if ep.end == -1 {
					clean = false
					continue
				}
				if d := ep.end - from; d > settle {
					settle = d
				}
			}
			return true
		})
		return true
	})
	return settle, clean
}

// MistakeStorm counts the false-suspicion episodes that begin inside
// [start, end) — the mistake burst a partition window or a restart provokes.
// An episode is false when its subject is not down at the instant it begins.
func (j *Judge) MistakeStorm(truth *GroundTruth, members ident.Set, start, end time.Duration) int {
	j.build()
	storm := 0
	members.ForEach(func(obs ident.ID) bool {
		members.ForEach(func(subj ident.ID) bool {
			if obs == subj {
				return true
			}
			for _, ep := range j.index[key(obs, subj)] {
				if ep.start < start || ep.start >= end {
					continue
				}
				if !truth.DownAt(subj, ep.start) {
					storm++
				}
			}
			return true
		})
		return true
	})
	return storm
}
