package des

// ladder.go is the calendar-queue (ladder) eventQueue: the kernel's default
// timing structure. The classic DES answer to a binary heap's O(log n)
// push/pop on dense horizons is to spread events over an array of
// fixed-width time buckets and drain them in bucket order — O(1) amortized
// when bucket occupancy stays small. The ladder variant keeps that promise
// under skew by subdividing overfull buckets into child rungs of finer
// width, and under deep timer horizons by parking far events in an unsorted
// top list that re-spawns into a fresh year (new epoch, re-sized bucket
// width) whenever the current year drains.
//
// Layout, nearest-first:
//
//	bottom   sorted drain of the frontmost consumed bucket (plus any event
//	         pushed below the frontier afterwards); popMin reads its head
//	rungs    rungs[0] is the year — fixed-width buckets over [start, end);
//	         each deeper rung subdivides its parent's current bucket
//	top      unsorted overflow beyond the year's end (the far horizon)
//
// The frontier is the structure's low watermark: every event stored in
// rungs or top fires at or after it, and pushes below it binary-insert into
// bottom. Advancing the frontier as buckets are consumed is what makes the
// deepest-rung-first push walk safe: an incoming event either lands in
// bottom (below the frontier) or maps to a bucket at or past the current
// one, never behind the drain.
//
// Ordering is exactly the kernel's (at, seq) key: buckets are sorted with
// Simulator.less when they become the bottom drain, so same-instant FIFO
// ties — including Batch fan-out blocks and re-keyed batch continuations,
// whose seqs may be smaller than already-queued events' — resolve
// identically to the binary heap. The differential harness
// (TestQueueDifferential, FuzzQueueEquivalence, the internal/exp sweep
// test) enforces that equivalence.

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"time"
)

const (
	// ladderMinBuckets / ladderMaxBuckets bound the bucket count a rung is
	// built with; within the bounds it tracks the event count so occupancy
	// stays near one event per bucket.
	ladderMinBuckets = 16
	ladderMaxBuckets = 1 << 14
	// ladderSpawnLen is the bucket occupancy beyond which the bucket is
	// subdivided into a child rung instead of sorted wholesale.
	ladderSpawnLen = 48
	// ladderMaxRungs caps subdivision depth; past it (or at 1ns width)
	// buckets just sort, which is still correct and never pathological for
	// the widths that remain.
	ladderMaxRungs = 10
	// ladderSpareCap bounds the recycled-bucket pool.
	ladderSpareCap = 1 << 12
)

// ladderRung is one rung: fixed-width buckets over [start, end). The last
// bucket absorbs the remainder when the span does not divide evenly, so
// bucketIndex clamps and bucketBounds caps at end.
type ladderRung struct {
	start   time.Duration
	end     time.Duration
	width   time.Duration // ≥ 1ns
	cur     int           // current bucket; buckets below cur are spent
	n       int           // events currently stored in this rung
	buckets [][]int32
}

func (r *ladderRung) bucketIndex(at time.Duration) int {
	idx := int((at - r.start) / r.width)
	if idx >= len(r.buckets) {
		idx = len(r.buckets) - 1
	}
	return idx
}

// bucketBounds returns bucket k's half-open range [lo, hi). hi is capped at
// the rung's end so a child rung spawned from the last bucket never covers
// time the parent's siblings own.
func (r *ladderRung) bucketBounds(k int) (lo, hi time.Duration) {
	lo = r.start + time.Duration(k)*r.width
	hi = lo + r.width
	if hi > r.end || hi < lo { // cap, and guard Duration overflow
		hi = r.end
	}
	return lo, hi
}

// ladderQueue implements eventQueue. See the file comment for the layout.
type ladderQueue struct {
	s    *Simulator
	size int

	// bottom is the sorted drain; bottom[bottomHead:] is the live part.
	bottom     []int32
	bottomHead int

	// frontier: every event in rungs/top fires ≥ frontier; pushes below it
	// sort into bottom. Monotonically non-decreasing.
	frontier time.Duration

	rungs []ladderRung

	top            []int32
	topMin, topMax time.Duration

	// spare recycles bucket slices of dropped rungs across re-spawns, so a
	// steady-state workload stops allocating.
	spare [][]int32
}

func (q *ladderQueue) len() int { return q.size }

func (q *ladderQueue) push(i int32) {
	at := q.s.events[i].at
	q.size++
	if at < q.frontier {
		q.insertBottom(i)
		return
	}
	// Deepest rung first: each deeper rung's range is a prefix slice of its
	// parent's current bucket, and at ≥ frontier guarantees the computed
	// bucket is at or past every rung's current position.
	for k := len(q.rungs) - 1; k >= 0; k-- {
		r := &q.rungs[k]
		if at < r.end {
			idx := r.bucketIndex(at)
			r.buckets[idx] = append(r.buckets[idx], i)
			r.n++
			return
		}
	}
	if len(q.top) == 0 || at < q.topMin {
		q.topMin = at
	}
	if len(q.top) == 0 || at > q.topMax {
		q.topMax = at
	}
	q.top = append(q.top, i)
}

// insertBottom binary-inserts i into the live part of the sorted drain.
// Full (at, seq) comparison: a re-keyed batch continuation can carry a
// smaller seq than events already queued at the same instant.
//
// Bottom stays naturally small while rungs exist (only the current bucket's
// window lands here). The one way it can grow without bound is after
// takeSmallTop jumped the frontier far ahead and a dense burst then arrives
// below it — in exactly that state (no rungs, no top) the burst is poured
// back as a fresh top list for a proper re-spawn instead.
func (q *ladderQueue) insertBottom(i int32) {
	s := q.s
	if len(q.rungs) == 0 && len(q.top) == 0 && len(q.bottom)-q.bottomHead >= 2*ladderSpawnLen {
		q.rebuildFromBottom(i)
		return
	}
	live := q.bottom[q.bottomHead:]
	pos := sort.Search(len(live), func(j int) bool { return s.less(i, live[j]) })
	q.bottom = append(q.bottom, 0)
	at := q.bottomHead + pos
	copy(q.bottom[at+1:], q.bottom[at:])
	q.bottom[at] = i
}

// rebuildFromBottom re-seeds the ladder from the live drain plus the
// incoming event: everything becomes the new top list and the frontier
// drops to its minimum fire time, so the next ensure re-spawns a year with
// a width sized to the actual pending horizon. Safe exactly when rungs and
// top are empty — the drain IS the whole queue, so lowering the frontier
// cannot reorder anything.
func (q *ladderQueue) rebuildFromBottom(i int32) {
	s := q.s
	live := q.bottom[q.bottomHead:]
	q.top = append(q.top, live...)
	q.top = append(q.top, i)
	q.topMin, q.topMax = s.events[q.top[0]].at, s.events[q.top[0]].at
	for _, j := range q.top[1:] {
		at := s.events[j].at
		if at < q.topMin {
			q.topMin = at
		}
		if at > q.topMax {
			q.topMax = at
		}
	}
	q.bottom = q.bottom[:0]
	q.bottomHead = 0
	q.frontier = q.topMin
}

// takeSmallTop short-circuits tiny populations: sorting a handful of
// events straight into the bottom drain beats building bucket arrays, and
// is what keeps cold-start simulators and sparse tails allocation-free.
func (q *ladderQueue) takeSmallTop() {
	s := q.s
	q.bottom = append(q.bottom, q.top...)
	q.top = q.top[:0]
	hi := q.topMax + 1
	if hi < q.topMax { // Duration overflow at the far end of time
		hi = math.MaxInt64
	}
	q.advanceFrontier(hi)
	q.topMin, q.topMax = 0, 0
	sortIndices(s, q.bottom)
}

// sortIndices orders slab indices by (at, seq). Insertion sort below a
// small threshold; slices.SortFunc (no reflection) above it. (at, seq) is
// a total order — seqs are unique — so the unstable sort's output is the
// unique sorted permutation either way.
func sortIndices(s *Simulator, v []int32) {
	if len(v) <= 2*ladderSpawnLen {
		for a := 1; a < len(v); a++ {
			x := v[a]
			b := a - 1
			for b >= 0 && s.less(x, v[b]) {
				v[b+1] = v[b]
				b--
			}
			v[b+1] = x
		}
		return
	}
	slices.SortFunc(v, func(a, b int32) int {
		ea, eb := &s.events[a], &s.events[b]
		if ea.at != eb.at {
			return cmp.Compare(ea.at, eb.at)
		}
		return cmp.Compare(ea.seq, eb.seq)
	})
}

func (q *ladderQueue) advanceFrontier(t time.Duration) {
	if t > q.frontier {
		q.frontier = t
	}
}

// ensure makes bottom's head the queue minimum (or leaves everything empty):
// it advances through bucket positions, subdividing overfull buckets into
// child rungs, dropping exhausted rungs, and re-spawning a new year from the
// top list when the ladder runs dry — the epoch advance.
func (q *ladderQueue) ensure() {
	for {
		if q.bottomHead < len(q.bottom) {
			return
		}
		if len(q.bottom) > 0 {
			q.bottom = q.bottom[:0]
			q.bottomHead = 0
		}
		if len(q.rungs) == 0 {
			if len(q.top) == 0 {
				return
			}
			if len(q.top) <= ladderSpawnLen {
				q.takeSmallTop()
				return
			}
			q.spawnYear()
			continue
		}
		r := &q.rungs[len(q.rungs)-1]
		for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
			r.cur++
		}
		if r.cur >= len(r.buckets) {
			// Rung exhausted. The parent's current bucket (which this rung
			// subdivided) is empty, so the parent's own skip loop advances
			// past it next iteration.
			q.advanceFrontier(r.end)
			q.dropRung()
			continue
		}
		lo, hi := r.bucketBounds(r.cur)
		// The frontier must reach the current bucket's start even when the
		// skip loop jumped empty buckets: pushes below it belong in bottom,
		// never behind the drain position.
		q.advanceFrontier(lo)
		b := r.buckets[r.cur]
		if len(b) > ladderSpawnLen && r.width > 1 && len(q.rungs) < ladderMaxRungs {
			q.spawnChild(r, b, lo, hi)
			continue
		}
		// Take the bucket as the new bottom drain.
		q.bottom = append(q.bottom, b...)
		r.buckets[r.cur] = b[:0]
		r.n -= len(b)
		r.cur++
		q.advanceFrontier(hi)
		sortIndices(q.s, q.bottom)
		return
	}
}

// spawnChild subdivides the parent's current (overfull) bucket [lo, hi)
// into a finer-width child rung. The parent keeps its position; when the
// child drains, the parent's now-empty bucket is skipped.
func (q *ladderQueue) spawnChild(r *ladderRung, b []int32, lo, hi time.Duration) {
	child := q.newRung(lo, hi, len(b))
	for _, i := range b {
		idx := child.bucketIndex(q.s.events[i].at)
		child.buckets[idx] = append(child.buckets[idx], i)
	}
	child.n = len(b)
	r.n -= len(b)
	r.buckets[r.cur] = b[:0]
	q.rungs = append(q.rungs, child)
}

// spawnYear advances the epoch: the accumulated top list becomes a fresh
// year whose bucket width is re-sized to the list's span and count, so the
// structure adapts to however skewed the pending horizon is.
func (q *ladderQueue) spawnYear() {
	lo, hi := q.topMin, q.topMax+1
	if hi < q.topMax { // Duration overflow at the far end of time
		hi = math.MaxInt64
	}
	q.advanceFrontier(lo)
	r := q.newRung(lo, hi, len(q.top))
	for _, i := range q.top {
		idx := r.bucketIndex(q.s.events[i].at)
		r.buckets[idx] = append(r.buckets[idx], i)
	}
	r.n = len(q.top)
	q.top = q.top[:0]
	q.topMin, q.topMax = 0, 0
	q.rungs = append(q.rungs, r)
}

// newRung sizes a rung for count events over [start, end): bucket count
// tracks the event count (clamped to [ladderMinBuckets, ladderMaxBuckets])
// and width is the span split across it, at least 1ns.
func (q *ladderQueue) newRung(start, end time.Duration, count int) ladderRung {
	span := end - start
	if span < 1 {
		span = 1
	}
	nb := ladderMinBuckets
	for nb < count && nb < ladderMaxBuckets {
		nb <<= 1
	}
	// span/nb+1 (not ceil) keeps the arithmetic overflow-free even for
	// horizons at the far end of the Duration range.
	width := span/time.Duration(nb) + 1
	n := int(span/width) + 1
	return ladderRung{start: start, end: end, width: width, buckets: q.takeBuckets(n)}
}

// takeBuckets builds a bucket array of length n, refilling entries from the
// spare pool so steady-state re-spawns reuse earlier years' storage.
func (q *ladderQueue) takeBuckets(n int) [][]int32 {
	bk := make([][]int32, n)
	m := len(q.spare)
	for k := 0; k < n && m > 0; k++ {
		m--
		bk[k] = q.spare[m]
	}
	q.spare = q.spare[:m]
	return bk
}

// dropRung removes the deepest (exhausted) rung, pooling its bucket slices.
func (q *ladderQueue) dropRung() {
	k := len(q.rungs) - 1
	for _, b := range q.rungs[k].buckets {
		if cap(b) > 0 && len(q.spare) < ladderSpareCap {
			q.spare = append(q.spare, b[:0])
		}
	}
	q.rungs[k] = ladderRung{}
	q.rungs = q.rungs[:k]
}

func (q *ladderQueue) peekMin() int32 {
	q.ensure()
	if q.bottomHead >= len(q.bottom) {
		return noEvent
	}
	return q.bottom[q.bottomHead]
}

func (q *ladderQueue) popMin() int32 {
	q.ensure()
	if q.bottomHead >= len(q.bottom) {
		return noEvent
	}
	i := q.bottom[q.bottomHead]
	q.bottomHead++
	q.size--
	if q.bottomHead == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.bottomHead = 0
	}
	return i
}

func (q *ladderQueue) reap() { reapHead(q.s, q) }

// clone deep-copies the full ladder state — drain, rungs (with every bucket),
// top list, frontier and epoch bookkeeping — bound to owner's slab. The spare
// bucket pool is capacity only (its contents are always overwritten before
// use), so the clone starts with an empty one.
func (q *ladderQueue) clone(owner *Simulator) eventQueue {
	c := &ladderQueue{
		s:          owner,
		size:       q.size,
		bottom:     append([]int32(nil), q.bottom...),
		bottomHead: q.bottomHead,
		frontier:   q.frontier,
		top:        append([]int32(nil), q.top...),
		topMin:     q.topMin,
		topMax:     q.topMax,
	}
	if len(q.rungs) > 0 {
		c.rungs = make([]ladderRung, len(q.rungs))
		copy(c.rungs, q.rungs)
		for k := range c.rungs {
			buckets := make([][]int32, len(c.rungs[k].buckets))
			for b, src := range c.rungs[k].buckets {
				if len(src) > 0 {
					buckets[b] = append([]int32(nil), src...)
				}
			}
			c.rungs[k].buckets = buckets
		}
	}
	return c
}

// indices returns every queued slab index, in no particular order — test
// hook for the slab-release invariant (no index reuse while queued).
func (q *ladderQueue) indices() []int32 {
	var out []int32
	out = append(out, q.bottom[q.bottomHead:]...)
	for _, r := range q.rungs {
		for _, b := range r.buckets {
			out = append(out, b...)
		}
	}
	out = append(out, q.top...)
	return out
}
