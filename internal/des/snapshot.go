package des

// snapshot.go is the kernel's checkpoint/fork primitive. A Snapshot captures
// the complete observable state of a Simulator — virtual clock, sequence
// counter, the event slab (including per-event batch item storage), the free
// list, the ready bucket and front slot, the timing queue, and the random
// stream position — so a warmed simulation can be rolled back and re-run, or
// cloned outright.
//
// Two verbs, two use cases:
//
//   - Snapshot/Restore roll the SAME Simulator back in place. This is the
//     form the experiment layer uses: scheduled closures capture the live
//     component objects (detectors, network), so replication must rewind the
//     kernel those closures are bound to rather than build a second one. A
//     Snapshot is immutable once taken — Restore deep-copies out of it — so
//     one warmed checkpoint serves any number of replicates.
//
//   - Fork deep-copies into a NEW Simulator. Pending closures are shared by
//     reference, so a fork only makes sense when those closures touch no
//     state outside the kernel (pure-kernel tests, microbenchmarks) — which
//     is exactly what the clone-invariant tests exercise: mutating the child
//     must never perturb the parent's slab, queue, or free list.
//
// Determinism contract: after Restore, the simulator replays byte-identically
// — same fire order, same Now/Steps/Pending trajectory, same Rand() draws —
// until the caller diverges it (Reseed, or different scheduling). The random
// stream is captured as (seed, draw count) and replayed by burning the source
// forward, which is exact because every top-level Rand() draw maps to a fixed
// number of source calls.
//
// Caveat: Timer handles created AFTER a snapshot was taken must not be used
// after restoring it. Restore rewinds slot generations, so such a handle can
// alias an unrelated event scheduled by the rolled-back run. Handles that
// existed when the snapshot was taken remain valid across Restore.

import (
	"math/rand"
	"time"
)

// countingSource wraps the kernel's random source and counts draws, so a
// snapshot can record the stream position and Restore can replay to it. Both
// Int63 and Uint64 advance the underlying generator by exactly one step, so
// a single counter suffices whatever mix of draws the simulation makes.
//
// burnLeft defers a restored stream's replay until the stream is actually
// read: draws is the logical position, and the physical generator lags it by
// burnLeft steps, caught up on first use. A restored replicate that
// immediately Reseeds — the warm-fork path — therefore never pays for
// replaying the warmup's draws at all.
type countingSource struct {
	src      rand.Source64
	draws    uint64
	burnLeft uint64
}

// catchUp advances the physical generator to the logical position.
func (c *countingSource) catchUp() {
	for ; c.burnLeft > 0; c.burnLeft-- {
		c.src.Uint64()
	}
}

func (c *countingSource) Int63() int64 { c.catchUp(); c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.catchUp(); c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.draws = 0; c.burnLeft = 0 }

// setSource rebinds the simulator's random stream to a fresh source seeded
// with seed, at draw position zero.
func (s *Simulator) setSource(seed int64) {
	s.seed = seed
	s.src = &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	s.rng = rand.New(s.src)
}

// resumeSource rebinds the random stream to seed at logical draw position
// pos, deferring the physical replay until the stream is next read.
func (s *Simulator) resumeSource(seed int64, pos uint64) {
	s.setSource(seed)
	s.src.draws = pos
	s.src.burnLeft = pos
}

// Reseed replaces the simulator's random stream with a fresh one seeded with
// seed. This is how a restored replicate diverges from its siblings: restore
// the warmed checkpoint, then give each replicate its own stride seed —
// exactly the strided-seed family semantics, applied at the fork point.
func (s *Simulator) Reseed(seed int64) { s.setSource(seed) }

// Snapshot is an immutable checkpoint of a Simulator. Take one with
// Simulator.Snapshot, roll back to it with Simulator.Restore (any number of
// times), or spawn an independent kernel with Simulator.Fork.
type Snapshot struct {
	now      time.Duration
	seq      uint64
	stepped  uint64
	pending  int
	halted   bool
	seed     int64
	draws    uint64
	events   []event
	free     []int32
	fifo     []int32
	fifoHead int
	front    int32
	queue    eventQueue
}

// cloneEvents deep-copies an event slab. The per-event items slices must be
// copied too: the live kernel recycles them through its itemFree pool, so a
// shallow copy would alias storage the next broadcast overwrites.
func cloneEvents(src []event) []event {
	out := make([]event, len(src))
	copy(out, src)
	for k := range out {
		if out[k].items != nil {
			items := make([]batchItem, len(out[k].items))
			copy(items, out[k].items)
			out[k].items = items
		}
	}
	return out
}

// Snapshot captures the simulator's complete state. The checkpoint shares
// nothing mutable with the live kernel: the slab (with batch item storage),
// free list, ready bucket and timing queue are all deep copies.
func (s *Simulator) Snapshot() *Snapshot {
	return &Snapshot{
		now:      s.now,
		seq:      s.seq,
		stepped:  s.stepped,
		pending:  s.pending,
		halted:   s.halted,
		seed:     s.seed,
		draws:    s.src.draws,
		events:   cloneEvents(s.events),
		free:     append([]int32(nil), s.free...),
		fifo:     append([]int32(nil), s.fifo...),
		fifoHead: s.fifoHead,
		front:    s.front,
		queue:    s.queue.clone(s),
	}
}

// restoreEvents copies the checkpointed slab into the live one, reusing the
// live slab's array and its per-event item storage where capacity allows:
// Restore runs once per replicate, and reallocating the arena every time
// dominated fork cost at large n. Reuse is safe because a non-nil items
// slice is owned by exactly one event header — release returns it to the
// itemFree pool only after nilling the header.
func (s *Simulator) restoreEvents(src []event) {
	events := s.events
	if cap(events) < len(src) {
		events = make([]event, len(src))
	} else {
		events = events[:len(src)]
	}
	for k := range src {
		reuse := events[k].items
		events[k] = src[k]
		if n := len(src[k].items); n > 0 {
			if cap(reuse) < n {
				reuse = make([]batchItem, n)
			}
			reuse = reuse[:n]
			copy(reuse, src[k].items)
			events[k].items = reuse
		} else {
			events[k].items = nil
		}
	}
	s.events = events
}

// Restore rolls the simulator back to the checkpoint, in place. Everything
// is deep-copied out of the snapshot, so the same checkpoint can be restored
// repeatedly; the itemFree pool is left alone (it holds spare capacity only,
// never semantics). The random stream resumes at the captured position, with
// the physical replay deferred until the stream is next read — so a restore
// immediately followed by Reseed pays nothing for the checkpoint's draws.
func (s *Simulator) Restore(snap *Snapshot) {
	s.now = snap.now
	s.seq = snap.seq
	s.stepped = snap.stepped
	s.pending = snap.pending
	s.halted = snap.halted
	s.restoreEvents(snap.events)
	s.free = append(s.free[:0], snap.free...)
	s.fifo = append(s.fifo[:0], snap.fifo...)
	s.fifoHead = snap.fifoHead
	s.front = snap.front
	s.queue = snap.queue.clone(s)
	s.resumeSource(snap.seed, snap.draws)
}

// Fork returns a new, independent Simulator that is a deep copy of this one:
// same clock, same pending events, same random stream position, same queue
// kind. Pending closures are shared by reference (closures cannot be deep
// copied), so Fork is for kernel-level workloads whose events touch only
// kernel state; component stacks use Snapshot/Restore instead. Mutating
// either simulator never perturbs the other.
func (s *Simulator) Fork() *Simulator {
	c := &Simulator{
		now:       s.now,
		seq:       s.seq,
		stepped:   s.stepped,
		pending:   s.pending,
		halted:    s.halted,
		queueKind: s.queueKind,
		events:    cloneEvents(s.events),
		free:      append([]int32(nil), s.free...),
		fifo:      append([]int32(nil), s.fifo...),
		fifoHead:  s.fifoHead,
		front:     s.front,
	}
	c.queue = s.queue.clone(c)
	c.resumeSource(s.seed, s.src.draws)
	return c
}
