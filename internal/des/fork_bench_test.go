package des

import (
	"fmt"
	"testing"
	"time"
)

// fork_bench_test.go quantifies the warm-fork trade at the kernel level:
// restoring a checkpoint of a warmed simulator versus rebuilding it and
// re-running the warmup. The cluster-level counterpart (full detector
// deployments) is BenchmarkForkVsWarm in internal/exp.

// buildKernelLoad schedules n interleaved periodic chains (one per simulated
// node, mimicking heartbeat traffic) that keep rescheduling themselves.
func buildKernelLoad(n int) *Simulator {
	s := New(11)
	for i := 0; i < n; i++ {
		i := i
		var tick func()
		tick = func() {
			s.After(time.Second+time.Duration(s.Rand().Int63n(int64(10*time.Millisecond))), tick)
		}
		s.After(time.Duration(i)*time.Millisecond, tick)
	}
	return s
}

const kernelWarm = 10 * time.Second

// BenchmarkForkVsWarm compares the per-replicate cost of materializing a
// warmed kernel: "warm" rebuilds and re-simulates the 10s prefix, "fork"
// restores a checkpoint taken once.
func BenchmarkForkVsWarm(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n%d/warm", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := buildKernelLoad(n)
				s.RunUntil(kernelWarm)
			}
		})
		b.Run(fmt.Sprintf("n%d/fork", n), func(b *testing.B) {
			s := buildKernelLoad(n)
			s.RunUntil(kernelWarm)
			snap := s.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Restore(snap)
			}
		})
	}
}
