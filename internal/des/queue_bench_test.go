package des

import (
	"testing"
	"time"
)

// queue_bench_test.go: heap-vs-ladder microbenchmarks for the kernel's hot
// paths. The headline is the dense-horizon benchmark — hundreds of
// thousands of near-term timers in flight, the shape every n=256
// per-peer-timeout experiment generates — where the ladder's O(1) bucket
// operations beat the heap's O(log n) sifts. Run with
// `go test -bench 'Queue' -benchmem ./internal/des`.

func queueKinds() []QueueKind { return []QueueKind{QueueHeap, QueueLadder} }

// BenchmarkQueueDenseHorizon measures steady-state push/pop churn with a
// large standing population of near-term timers: every fired event
// reschedules itself, so each Step is one pop plus one push against a
// ~64k-element queue.
func BenchmarkQueueDenseHorizon(b *testing.B) {
	for _, kind := range queueKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			s := New(1, WithQueue(kind))
			const standing = 1 << 16
			var reschedule func()
			reschedule = func() {
				s.After(time.Duration(1+s.Rand().Intn(10_000_000)), reschedule)
			}
			for k := 0; k < standing; k++ {
				reschedule()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkQueueBroadcastFanout measures batched fan-out scheduling plus
// drain — the netsim broadcast path — under both queues, including the
// kernel's batch-item slice pool.
func BenchmarkQueueBroadcastFanout(b *testing.B) {
	for _, kind := range queueKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			items := make([]BatchItem, 64)
			fn := func() {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := New(1, WithQueue(kind))
				for round := 0; round < 20; round++ {
					for j := range items {
						items[j] = BatchItem{D: time.Duration(j%7) * time.Microsecond, Fn: fn}
					}
					s.Batch(items)
					s.Run()
				}
			}
		})
	}
}

// BenchmarkQueueStopReapChurn measures the per-peer-timeout pattern: arm a
// timeout, cancel it, re-arm — so the queue carries a steady mix of live
// and stopped events and reaps the stopped ones as they surface.
func BenchmarkQueueStopReapChurn(b *testing.B) {
	for _, kind := range queueKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			s := New(1, WithQueue(kind))
			const peers = 1 << 12
			timers := make([]*Timer, peers)
			fn := func() {}
			for k := range timers {
				timers[k] = s.After(time.Duration(1+s.Rand().Intn(2_000_000)), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % peers
				timers[k].Stop()
				timers[k] = s.After(time.Duration(1+s.Rand().Intn(2_000_000)), fn)
				if i%4 == 0 {
					s.Step()
				}
			}
		})
	}
}
