package des

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestBatchMatchesAfter checks that a Batch fires its items exactly as the
// same closures scheduled with individual After calls, including FIFO ties
// and interleaving with independently scheduled events.
func TestBatchMatchesAfter(t *testing.T) {
	runTrace := func(seed int64, batched bool) []int {
		r := rand.New(rand.NewSource(seed))
		s := New(seed)
		var tr []int
		n := 2 + r.Intn(8)
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(r.Intn(4)) * time.Millisecond
		}
		// Competing plain events around the batch's time range.
		for i := 0; i < 5; i++ {
			i := i
			s.After(time.Duration(r.Intn(5))*time.Millisecond, func() { tr = append(tr, 100+i) })
		}
		if batched {
			items := make([]BatchItem, n)
			for i := range items {
				i := i
				items[i] = BatchItem{D: delays[i], Fn: func() { tr = append(tr, i) }}
			}
			s.Batch(items)
		} else {
			for i := range delays {
				i := i
				s.After(delays[i], func() { tr = append(tr, i) })
			}
		}
		// More events scheduled after, including same instants.
		for i := 0; i < 5; i++ {
			i := i
			s.After(time.Duration(r.Intn(5))*time.Millisecond, func() { tr = append(tr, 200+i) })
		}
		s.Run()
		return tr
	}
	f := func(seed int64) bool {
		a, b := runTrace(seed, true), runTrace(seed, false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBatchSameInstantBurst(t *testing.T) {
	s := New(1)
	var got []int
	s.After(time.Millisecond, func() {
		items := make([]BatchItem, 10)
		for i := range items {
			i := i
			items[i] = BatchItem{D: 0, Fn: func() { got = append(got, i) }}
		}
		s.Batch(items)
		// Scheduled after the batch: must run after every batch item.
		s.After(0, func() { got = append(got, 99) })
	})
	s.Run()
	if len(got) != 11 || got[10] != 99 {
		t.Fatalf("burst order = %v", got)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("burst order = %v, want FIFO then 99", got)
		}
	}
	if s.Now() != time.Millisecond {
		t.Errorf("Now = %v, want 1ms", s.Now())
	}
}

func TestBatchNestedScheduling(t *testing.T) {
	s := New(1)
	var got []string
	s.Batch([]BatchItem{
		{D: time.Millisecond, Fn: func() {
			got = append(got, "a")
			s.After(0, func() { got = append(got, "b") })
		}},
		{D: time.Millisecond, Fn: func() { got = append(got, "a2") }},
		{D: 2 * time.Millisecond, Fn: func() { got = append(got, "c") }},
	})
	s.Run()
	want := []string{"a", "a2", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBatchEmptyAndSingle(t *testing.T) {
	s := New(1)
	s.Batch(nil)
	ran := false
	s.Batch([]BatchItem{{D: time.Millisecond, Fn: func() { ran = true }}})
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if !ran {
		t.Error("single-item batch did not run")
	}
}

func TestBatchRunUntilBoundary(t *testing.T) {
	s := New(1)
	var got []int
	s.Batch([]BatchItem{
		{D: time.Millisecond, Fn: func() { got = append(got, 1) }},
		{D: 3 * time.Millisecond, Fn: func() { got = append(got, 3) }},
	})
	s.RunUntil(2 * time.Millisecond)
	if len(got) != 1 || s.Pending() != 1 {
		t.Fatalf("got %v pending %d, want only the 1ms item", got, s.Pending())
	}
	s.Run()
	if len(got) != 2 {
		t.Error("remaining batch item lost after RunUntil")
	}
}

// TestSlabRecycled checks that steady-state scheduling reuses slab slots
// instead of growing storage without bound.
func TestSlabRecycled(t *testing.T) {
	s := New(1)
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 10; i++ {
			s.After(time.Duration(i)*time.Microsecond, func() {})
		}
		s.Run()
	}
	if len(s.events) > 64 {
		t.Errorf("slab grew to %d slots for a working set of 10", len(s.events))
	}
}

// TestStaleTimerAfterReuse checks that a Timer for a consumed event stays
// inert even after its slab slot has been recycled for a new event.
func TestStaleTimerAfterReuse(t *testing.T) {
	s := New(1)
	tm := s.After(0, func() {})
	s.Run()
	ran := false
	s.After(0, func() { ran = true }) // reuses the freed slot
	if tm.Stop() {
		t.Error("stale Timer.Stop = true")
	}
	s.Run()
	if !ran {
		t.Error("stale Stop cancelled an unrelated event in the reused slot")
	}
}

func BenchmarkBroadcastFanout(b *testing.B) {
	b.ReportAllocs()
	items := make([]BatchItem, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(1)
		fn := func() {}
		for round := 0; round < 20; round++ {
			for j := range items {
				items[j] = BatchItem{D: time.Duration(j%7) * time.Microsecond, Fn: fn}
			}
			s.Batch(items)
			s.Run()
		}
	}
}
