package des

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fork_clone_test.go pins the structural invariants of Snapshot/Fork cloning
// that the observational differential (fork_fuzz_test.go) cannot see
// directly: cloned queues index into the clone's own slab with no index both
// queued and free, and a forked child is fully detached — no child mutation
// may perturb the parent's structure.

// queuedIndices collects every slab index the simulator considers pending:
// the far-horizon queue, the live part of the ready FIFO, and the front
// batch-continuation slot.
func queuedIndices(s *Simulator) []int32 {
	var out []int32
	switch q := s.queue.(type) {
	case *heapQueue:
		out = append(out, q.indices()...)
	case *ladderQueue:
		out = append(out, q.indices()...)
	default:
		panic(fmt.Sprintf("unknown queue type %T", s.queue))
	}
	out = append(out, s.fifo[s.fifoHead:]...)
	if s.front != noEvent {
		out = append(out, s.front)
	}
	return out
}

// checkSlabInvariants fails t when a queued slab index is out of range or
// also sits on the free list.
func checkSlabInvariants(t *testing.T, label string, s *Simulator) {
	t.Helper()
	free := make(map[int32]bool, len(s.free))
	for _, idx := range s.free {
		if free[idx] {
			t.Errorf("%s: slab index %d appears twice on the free list", label, idx)
		}
		free[idx] = true
	}
	for _, idx := range queuedIndices(s) {
		if idx < 0 || int(idx) >= len(s.events) {
			t.Errorf("%s: queued slab index %d out of range [0,%d)", label, idx, len(s.events))
			continue
		}
		if free[idx] {
			t.Errorf("%s: slab index %d is both queued and on the free list", label, idx)
		}
	}
}

// structuralFingerprint renders everything reachable from the simulator's
// scheduling structures into one comparable string.
func structuralFingerprint(s *Simulator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d seq=%d stepped=%d pending=%d halted=%v\n", s.now, s.seq, s.stepped, s.pending, s.halted)
	fmt.Fprintf(&b, "free=%v fifo=%v fifoHead=%d front=%d\n", s.free, s.fifo, s.fifoHead, s.front)
	for i, e := range s.events {
		fmt.Fprintf(&b, "ev%d at=%d seq=%d gen=%d stopped=%v items=%d head=%d fn=%v\n",
			i, e.at, e.seq, e.gen, e.stopped, len(e.items), e.head, e.fn != nil)
	}
	return b.String()
}

// loadSim builds a simulator mid-run with every structural feature present:
// recycled free slots, a part-drained FIFO, stopped entries, batch nodes and
// far-horizon timers.
func loadSim(kind QueueKind) (s *Simulator, fired *int, stopped int) {
	s = New(7, WithQueue(kind))
	fired = new(int)
	bump := func() { *fired++ }
	for i := 0; i < 8; i++ {
		s.After(time.Duration(i)*time.Millisecond, bump)
	}
	far := s.After(time.Hour, bump)
	s.At(30*time.Second, bump)
	items := make([]BatchItem, 5)
	for j := range items {
		items[j] = BatchItem{D: time.Duration(j%2) * 250 * time.Microsecond, Fn: bump}
	}
	s.Batch(items)
	stop := s.After(4500*time.Microsecond, bump)
	s.RunUntil(2 * time.Millisecond) // recycle a few slots onto the free list
	// Stopped events stay on Pending()'s count until the kernel reaps them.
	for _, tm := range []*Timer{stop, far} {
		if tm.Stop() {
			stopped++
		}
	}
	s.After(0, bump) // ready-FIFO entry at the current instant
	s.Batch([]BatchItem{{D: 0, Fn: bump}, {D: time.Millisecond, Fn: bump}})
	return s, fired, stopped
}

// TestForkCloneInvariants forks a loaded simulator on both queue kinds and
// checks, for parent and child alike: the slab invariants hold, child
// mutations (Stop/After/Batch/Step/RunUntil) never change the parent's
// structural fingerprint, and both kernels then drain to the same schedule.
func TestForkCloneInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind QueueKind
	}{
		{"ladder", QueueLadder},
		{"heap", QueueHeap},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			parent, parentFired, parentStopped := loadSim(tc.kind)
			child := parent.Fork()
			checkSlabInvariants(t, "parent", parent)
			checkSlabInvariants(t, "child", child)

			if got, want := structuralFingerprint(child), structuralFingerprint(parent); got != want {
				t.Fatalf("fork is not structurally identical:\nparent:\n%s\nchild:\n%s", want, got)
			}

			before := structuralFingerprint(parent)
			// Mutate the child every way the API allows.
			childExtra := 0
			tm := child.After(3*time.Millisecond, func() { childExtra++ })
			child.Batch([]BatchItem{{D: 0, Fn: func() { childExtra++ }}, {D: time.Minute, Fn: func() { childExtra++ }}})
			tm.Stop()
			child.Step()
			child.RunUntil(child.Now() + 10*time.Millisecond)
			checkSlabInvariants(t, "child after mutation", child)
			if got := structuralFingerprint(parent); got != before {
				t.Fatalf("child mutation perturbed the parent:\nbefore:\n%s\nafter:\n%s", before, got)
			}

			// The parent still drains its original schedule: every pending
			// callback except the stopped (not yet reaped) ones fires once.
			pend := parent.Pending()
			beforeFired := *parentFired
			parent.RunUntil(2 * time.Hour)
			if *parentFired != beforeFired+pend-parentStopped {
				t.Errorf("parent drained %d callbacks, want %d", *parentFired-beforeFired, pend-parentStopped)
			}
			checkSlabInvariants(t, "parent drained", parent)
		})
	}
}

// TestRestoreRepeatable pins that one snapshot supports any number of
// restores: three replays of the same tail produce identical fire sequences
// and identical final clocks.
func TestRestoreRepeatable(t *testing.T) {
	for _, kind := range []QueueKind{QueueLadder, QueueHeap} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			s := New(3, WithQueue(kind))
			var fires []string
			for i := 0; i < 6; i++ {
				i := i
				s.After(time.Duration(i+1)*time.Millisecond, func() {
					fires = append(fires, fmt.Sprintf("%d@%d#%d", i, s.Now(), s.Rand().Int63n(100)))
				})
			}
			s.RunUntil(2500 * time.Microsecond)
			snap := s.Snapshot()
			prefix := len(fires)

			var runs []string
			for round := 0; round < 3; round++ {
				s.Restore(snap)
				fires = fires[:prefix]
				s.RunUntil(10 * time.Millisecond)
				runs = append(runs, strings.Join(fires[prefix:], ","))
			}
			if runs[0] == "" {
				t.Fatal("replay fired nothing")
			}
			if runs[1] != runs[0] || runs[2] != runs[0] {
				t.Fatalf("replays diverged: %q / %q / %q", runs[0], runs[1], runs[2])
			}
		})
	}
}
