package des

// queue.go is the kernel's pluggable timing structure. The Simulator splits
// event *storage* (the slab) from event *ordering*: same-instant events
// drain through the FIFO ready bucket and the front slot without ever
// touching a priority structure, and everything scheduled for a later
// instant goes through an eventQueue keyed by (at, seq).
//
// Two implementations exist. The binary heap is the reference: the original
// kernel structure, kept verbatim as the ordering oracle that the
// differential harness (TestQueueDifferential, FuzzQueueEquivalence, the
// internal/exp sweep-identity test) checks the calendar/ladder queue
// against. The ladder queue (ladder.go) is the default: amortized O(1)
// push/pop on the dense near-term horizons the experiments generate.

import "sync/atomic"

// QueueKind selects an eventQueue implementation for a Simulator.
type QueueKind int32

const (
	// QueueLadder is the calendar-queue (ladder) structure: a year of
	// fixed-width buckets over the near horizon, child rungs that re-spawn
	// as the epoch advances, and a sorted bottom drain. The default.
	QueueLadder QueueKind = iota
	// QueueHeap is the binary-heap reference implementation: O(log n)
	// push/pop, the ordering oracle the ladder is tested against.
	QueueHeap
)

// String implements fmt.Stringer.
func (k QueueKind) String() string {
	switch k {
	case QueueLadder:
		return "ladder"
	case QueueHeap:
		return "heap"
	default:
		return "QueueKind(?)"
	}
}

// ParseQueueKind maps the names accepted by the DES_QUEUE escape hatch and
// fdbench's -queue flag ("ladder", "heap") to a QueueKind.
func ParseQueueKind(s string) (QueueKind, bool) {
	switch s {
	case "ladder":
		return QueueLadder, true
	case "heap":
		return QueueHeap, true
	default:
		return QueueLadder, false
	}
}

// defaultQueue holds the process-wide default QueueKind used by New when no
// WithQueue option is given. Atomic so tools may flip it before fanning out
// concurrent simulations (cmd/fdbench honors DES_QUEUE / -queue with it).
var defaultQueue atomic.Int32 // QueueKind; zero value = QueueLadder

// DefaultQueue reports the process-wide default queue implementation.
func DefaultQueue() QueueKind { return QueueKind(defaultQueue.Load()) }

// SetDefaultQueue changes the default queue implementation used by New.
// Existing simulators are unaffected.
func SetDefaultQueue(k QueueKind) { defaultQueue.Store(int32(k)) }

// Option configures a Simulator at construction time.
type Option func(*Simulator)

// WithQueue selects the timing-queue implementation for this simulator.
// Event execution order is identical under every QueueKind — the
// differential harness enforces it — so the choice is purely a performance
// knob.
func WithQueue(k QueueKind) Option {
	return func(s *Simulator) { s.queueKind = k }
}

// eventQueue orders pending far-horizon events — slab indices keyed by
// (at, seq) — for the Simulator. Contract:
//
//   - push is only ever called with an index whose at is strictly greater
//     than the simulator's now at call time (same-instant events go to the
//     ready bucket instead), and an index's key never mutates while queued
//     (batch nodes re-key only between a pop and the following push);
//   - popMin/peekMin return the queued index with the smallest (at, seq)
//     key, or noEvent when empty — stopped events included, so Stop stays
//     O(1) and reclamation is the head-reaping below;
//   - reap pops and releases stopped events for as long as one sits at the
//     head, so peek/pop always expose a live minimum and Pending() converges
//     identically under every implementation;
//   - len reports the queued element count (stopped-but-unreclaimed
//     included), used by invariant checks and tests;
//   - clone returns a deep copy of the ordering state bound to owner's slab,
//     sharing no mutable storage with the receiver — the checkpoint half of
//     Simulator.Snapshot/Fork. Capacity-only pools need not be copied.
type eventQueue interface {
	push(i int32)
	popMin() int32
	peekMin() int32
	reap()
	len() int
	clone(owner *Simulator) eventQueue
}

// newEventQueue builds the QueueKind's implementation bound to s's slab.
func newEventQueue(k QueueKind, s *Simulator) eventQueue {
	if k == QueueHeap {
		return &heapQueue{s: s}
	}
	return &ladderQueue{s: s}
}

// reapHead is the shared head-reaping loop behind eventQueue.reap: both
// implementations reclaim stopped events exactly when they surface as the
// queue minimum, so the observable Pending() trajectory is identical
// whichever queue runs.
func reapHead(s *Simulator, q eventQueue) {
	for {
		i := q.peekMin()
		if i == noEvent || !s.events[i].stopped {
			return
		}
		q.popMin()
		s.pending--
		s.release(i)
	}
}

// heapQueue is the binary-heap reference eventQueue: the kernel's original
// timing structure, byte-for-byte the same sift logic it always had.
type heapQueue struct {
	s *Simulator
	h []int32
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) push(i int32) {
	q.h = append(q.h, i)
	h := q.h
	s := q.s
	k := len(h) - 1
	for k > 0 {
		p := (k - 1) / 2
		if !s.less(h[k], h[p]) {
			break
		}
		h[k], h[p] = h[p], h[k]
		k = p
	}
}

func (q *heapQueue) popMin() int32 {
	if len(q.h) == 0 {
		return noEvent
	}
	h := q.h
	s := q.s
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.h = h[:n]
	h = q.h
	k := 0
	for {
		l := 2*k + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(h[r], h[l]) {
			m = r
		}
		if !s.less(h[m], h[k]) {
			break
		}
		h[k], h[m] = h[m], h[k]
		k = m
	}
	return top
}

func (q *heapQueue) peekMin() int32 {
	if len(q.h) == 0 {
		return noEvent
	}
	return q.h[0]
}

func (q *heapQueue) reap() { reapHead(q.s, q) }

// clone deep-copies the heap array; the sift order is a pure function of the
// push/pop history, so the copy is byte-for-byte the same structure.
func (q *heapQueue) clone(owner *Simulator) eventQueue {
	return &heapQueue{s: owner, h: append([]int32(nil), q.h...)}
}

// indices returns every queued slab index, in no particular order — test
// hook for the slab-release invariant, mirroring ladderQueue.indices.
func (q *heapQueue) indices() []int32 {
	return append([]int32(nil), q.h...)
}
