package des

import (
	"math/rand"
	"testing"
	"time"
)

// ladder_test.go: property tests for the calendar/ladder queue internals —
// epoch advance across rung boundaries, bucket-width re-sizing under skewed
// horizons, and slab release correctness. These drive the ladderQueue
// directly (table-driven, no heap oracle involved); the differential
// harness in fuzz_test.go and internal/exp covers heap equivalence.

// rawLadder returns a ladderQueue bound to a host slab plus an add helper
// that allocates a slab event with the next seq and pushes it.
func rawLadder() (*Simulator, *ladderQueue, func(at time.Duration) int32) {
	s := New(1, WithQueue(QueueHeap)) // host slab only; s.queue is unused here
	q := &ladderQueue{s: s}
	add := func(at time.Duration) int32 {
		i := s.alloc()
		e := &s.events[i]
		e.at, e.seq = at, s.seq
		s.seq++
		q.push(i)
		return i
	}
	return s, q, add
}

// drainSorted pops n events and asserts strict (at, seq) order.
func drainSorted(t *testing.T, s *Simulator, q *ladderQueue, n int) []int32 {
	t.Helper()
	out := make([]int32, 0, n)
	for k := 0; k < n; k++ {
		i := q.popMin()
		if i == noEvent {
			t.Fatalf("queue ran dry after %d of %d pops", k, n)
		}
		if len(out) > 0 && !s.less(out[len(out)-1], i) {
			prev := out[len(out)-1]
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", k,
				s.events[i].at, s.events[i].seq, s.events[prev].at, s.events[prev].seq)
		}
		out = append(out, i)
	}
	return out
}

// TestLadderOrderProperties drives push/pop patterns straight through the
// ladder and asserts every pop sequence is exactly (at, seq)-sorted.
func TestLadderOrderProperties(t *testing.T) {
	cases := []struct {
		name string
		ats  func(r *rand.Rand, k int) time.Duration
		n    int
	}{
		{"uniform near horizon", func(r *rand.Rand, _ int) time.Duration {
			return time.Duration(r.Intn(10_000_000))
		}, 3000},
		{"same-instant ties", func(r *rand.Rand, _ int) time.Duration {
			return time.Duration(r.Intn(4)) * time.Millisecond
		}, 500},
		{"two skewed clusters", func(r *rand.Rand, k int) time.Duration {
			if k%2 == 0 {
				return time.Millisecond + time.Duration(r.Intn(1000))*time.Microsecond
			}
			return time.Hour + time.Duration(r.Intn(1000))*time.Nanosecond
		}, 2000},
		{"single far outlier", func(r *rand.Rand, k int) time.Duration {
			if k == 0 {
				return 240 * time.Hour
			}
			return time.Duration(1 + r.Intn(2_000_000))
		}, 1500},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, q, add := rawLadder()
			r := rand.New(rand.NewSource(7))
			for k := 0; k < tc.n; k++ {
				add(tc.ats(r, k))
			}
			if q.len() != tc.n {
				t.Fatalf("len = %d, want %d", q.len(), tc.n)
			}
			// Interleave: drain half, push a second wave (below and above
			// the frontier), drain the rest.
			drainSorted(t, s, q, tc.n/2)
			for k := 0; k < tc.n/4; k++ {
				at := tc.ats(r, k)
				if at < s.events[q.peekMin()].at {
					at = s.events[q.peekMin()].at // pushes are never below the drained past
				}
				add(at)
			}
			drainSorted(t, s, q, q.len())
			if got := q.popMin(); got != noEvent {
				t.Fatalf("popMin on empty = %d, want noEvent", got)
			}
		})
	}
}

// TestLadderEpochAdvance checks that draining one year and reaching the
// next re-spawns the structure at a new epoch: the year's start advances
// past everything consumed, the frontier is monotone throughout, and rung
// boundaries are crossed without losing or reordering events.
func TestLadderEpochAdvance(t *testing.T) {
	s, q, add := rawLadder()
	// First cluster: dense near-term events (one year).
	for k := 0; k < 200; k++ {
		add(time.Millisecond + time.Duration(k%50)*time.Microsecond)
	}
	if q.peekMin() == noEvent {
		t.Fatal("peekMin = noEvent with events queued")
	}
	if len(q.rungs) == 0 {
		t.Fatal("no year spawned by peek")
	}
	firstEpoch := q.rungs[0].start
	lastFrontier := q.frontier
	drainSorted(t, s, q, 200)
	if q.frontier < lastFrontier {
		t.Fatalf("frontier went backwards: %v -> %v", lastFrontier, q.frontier)
	}
	if got := q.peekMin(); got != noEvent { // forces the lazy rung cleanup
		t.Fatalf("peekMin after full drain = %d, want noEvent", got)
	}
	if len(q.rungs) != 0 {
		t.Fatalf("rungs not dropped after full drain: %d", len(q.rungs))
	}
	// Second cluster far ahead: must re-spawn a NEW year at a later epoch.
	for k := 0; k < 200; k++ {
		add(10*time.Second + time.Duration(k)*time.Microsecond)
	}
	if q.peekMin() == noEvent {
		t.Fatal("peekMin = noEvent after second wave")
	}
	if len(q.rungs) == 0 {
		t.Fatal("no re-spawned year after epoch advance")
	}
	secondEpoch := q.rungs[0].start
	if secondEpoch <= firstEpoch {
		t.Fatalf("epoch did not advance: first %v, second %v", firstEpoch, secondEpoch)
	}
	if secondEpoch < 10*time.Second {
		t.Fatalf("second epoch %v predates its events", secondEpoch)
	}
	drainSorted(t, s, q, 200)
}

// TestLadderWidthResize checks the bucket width adapts to the pending
// horizon's span on every re-spawn, and that an overfull bucket under skew
// subdivides into a child rung of strictly finer width.
func TestLadderWidthResize(t *testing.T) {
	s, q, add := rawLadder()
	// Wide horizon: 1024 events over ~1s.
	for k := 0; k < 1024; k++ {
		add(time.Duration(1+k) * time.Millisecond)
	}
	q.peekMin()
	wide := q.rungs[0].width
	if wide <= 0 {
		t.Fatalf("wide width = %v", wide)
	}
	drainSorted(t, s, q, 1024)

	// Narrow horizon, same count: the re-spawned year must re-size.
	for k := 0; k < 1024; k++ {
		add(2*time.Second + time.Duration(k)*time.Nanosecond)
	}
	q.peekMin()
	narrow := q.rungs[0].width
	drainSorted(t, s, q, 1024)
	if narrow >= wide {
		t.Fatalf("width did not shrink for a narrower horizon: wide %v, narrow %v", wide, narrow)
	}

	// Skew: one far outlier stretches the year, piling the dense cluster
	// into one bucket — which must spawn a child rung of finer width.
	for k := 0; k < 500; k++ {
		add(10*time.Second + time.Duration(k%200)*time.Nanosecond)
	}
	add(100 * 24 * time.Hour)
	q.peekMin()
	if len(q.rungs) < 2 {
		t.Fatalf("dense bucket under skew did not spawn a child rung: %d rungs", len(q.rungs))
	}
	parent, child := q.rungs[0], q.rungs[len(q.rungs)-1]
	if child.width >= parent.width {
		t.Fatalf("child rung width %v not finer than parent %v", child.width, parent.width)
	}
	drainSorted(t, s, q, 501)
}

// checkSlabInvariant asserts no slab index is simultaneously queued and on
// the free list, and that nothing is queued twice — i.e. release() can
// never hand out a slot that the queue still references.
func checkSlabInvariant(t *testing.T, s *Simulator) {
	t.Helper()
	q := s.queue.(*ladderQueue)
	seen := make(map[int32]bool)
	for _, i := range q.indices() {
		if seen[i] {
			t.Fatalf("slab index %d queued twice", i)
		}
		seen[i] = true
	}
	if got, want := len(seen), q.len(); got != want {
		t.Fatalf("queue holds %d distinct indices but len() = %d", got, want)
	}
	for k := s.fifoHead; k < len(s.fifo); k++ {
		i := s.fifo[k]
		if seen[i] {
			t.Fatalf("slab index %d in both queue and fifo", i)
		}
		seen[i] = true
	}
	if s.front != noEvent {
		if seen[s.front] {
			t.Fatalf("front index %d also queued", s.front)
		}
		seen[s.front] = true
	}
	for _, i := range s.free {
		if seen[i] {
			t.Fatalf("slab index %d is queued AND on the free list", i)
		}
	}
}

// TestLadderSlabRelease drives a full simulator on the ladder through a
// randomized schedule/stop/step churn, checking after every operation that
// queued slab indices never overlap the free list (no reuse while queued).
func TestLadderSlabRelease(t *testing.T) {
	scenarios := []struct {
		name     string
		stopFrac int // stop one in stopFrac timers
		farFrac  int // one in farFrac timers is far-horizon
	}{
		{"no stops", 0, 5},
		{"light stop churn", 4, 0},
		{"heavy stop churn", 2, 3},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := New(3, WithQueue(QueueLadder))
			r := rand.New(rand.NewSource(11))
			var timers []*Timer
			for round := 0; round < 40; round++ {
				for k := 0; k < 25; k++ {
					d := time.Duration(r.Intn(5000)) * time.Microsecond
					if sc.farFrac > 0 && k%sc.farFrac == 0 {
						d = time.Duration(r.Intn(3600)) * time.Second
					}
					timers = append(timers, s.After(d, func() {}))
				}
				if sc.stopFrac > 0 {
					for k := 0; k < len(timers); k += sc.stopFrac {
						timers[k].Stop()
					}
				}
				checkSlabInvariant(t, s)
				for k := 0; k < 10; k++ {
					s.Step()
				}
				checkSlabInvariant(t, s)
			}
			s.Run()
			checkSlabInvariant(t, s)
			if s.Pending() != 0 {
				t.Fatalf("Pending = %d after full drain", s.Pending())
			}
		})
	}
}
