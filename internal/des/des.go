// Package des is a deterministic discrete-event simulation kernel.
//
// It replaces the paper's simulator testbed: experiments run in virtual time
// (no real sleeps), driven by a single-threaded event loop with a seeded
// random source, so every run is exactly reproducible from its seed. All
// simulated components (network links, protocol timers, fault injectors)
// schedule closures on the kernel; the kernel executes them in (time, FIFO)
// order.
package des

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is a scheduled closure. seq breaks ties so that events scheduled for
// the same instant run in scheduling order (deterministic FIFO).
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap bookkeeping
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Stop cancels the event if it has not run yet, reporting whether it was
// still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped {
		return false
	}
	t.ev.stopped = true
	t.ev.fn = nil // release captured state promptly
	return true
}

// Simulator is the event loop. It is strictly single-threaded: all scheduled
// closures run on the goroutine that calls Step/Run/RunUntil, so simulated
// components need no locking.
type Simulator struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	halted  bool
	stepped uint64
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. All simulated
// randomness must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.stepped }

// Pending returns the number of events currently scheduled (including
// stopped-but-unpopped ones).
func (s *Simulator) Pending() int { return s.queue.Len() }

// After schedules fn to run d from now. Negative delays are clamped to zero:
// the event runs at the current instant, after already-queued events for
// that instant.
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event, advancing virtual time. It returns
// false when no events remain or the simulator has been halted.
func (s *Simulator) Step() bool {
	for {
		if s.halted || s.queue.Len() == 0 {
			return false
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			continue
		}
		ev.stopped = true // consume: a later Timer.Stop reports false
		s.now = ev.at
		s.stepped++
		ev.fn()
		return true
	}
}

// Run executes events until none remain or Halt is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled exactly at t do run.
func (s *Simulator) RunUntil(t time.Duration) {
	for !s.halted && s.queue.Len() > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

func (s *Simulator) peek() *event {
	for s.queue.Len() > 0 {
		if !s.queue[0].stopped {
			return s.queue[0]
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Halt stops the event loop; Step/Run/RunUntil return immediately afterward.
// Pending events are kept but will not run unless Resume is called.
func (s *Simulator) Halt() { s.halted = true }

// Resume clears a previous Halt.
func (s *Simulator) Resume() { s.halted = false }

// Halted reports whether the simulator is halted.
func (s *Simulator) Halted() bool { return s.halted }
