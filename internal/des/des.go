// Package des is a deterministic discrete-event simulation kernel.
//
// It replaces the paper's simulator testbed: experiments run in virtual time
// (no real sleeps), driven by a single-threaded event loop with a seeded
// random source, so every run is exactly reproducible from its seed. All
// simulated components (network links, protocol timers, fault injectors)
// schedule closures on the kernel; the kernel executes them in (time, FIFO)
// order.
//
// The kernel is built for throughput: events live in a slab recycled through
// a free list (no per-event heap allocation in steady state), same-instant
// bursts drain through a FIFO ready bucket instead of churning the timing
// structure, message fan-outs can be scheduled as a single Batch node that
// occupies one queue slot however many deliveries it carries, and batch item
// storage is recycled through a kernel-owned free pool so repeated
// broadcasts stop allocating. Far-horizon ordering itself is pluggable
// (queue.go): a calendar/ladder queue with amortized O(1) push/pop is the
// default, and the original binary heap is kept as the reference
// implementation a differential harness checks it against — see QueueKind,
// WithQueue and SetDefaultQueue.
package des

import (
	"cmp"
	"math/rand"
	"slices"
	"time"
)

// Compile-time checks: both queue implementations satisfy the interface.
var (
	_ eventQueue = (*heapQueue)(nil)
	_ eventQueue = (*ladderQueue)(nil)
)

// event is one kernel node: either a single closure or a whole batch
// fan-out. Events live in the simulator's slab, addressed by index and
// recycled through a free list; gen invalidates stale Timer handles when a
// slot is reused. For batch nodes, (at, seq) always hold the key of the
// earliest unfired item.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	gen     uint32
	stopped bool
	items   []batchItem // non-nil for batch fan-out nodes
	head    int         // next unfired batch item
}

type batchItem struct {
	at  time.Duration
	fn  func()
	idx int32 // position in the caller's slice; sort tiebreak for equal at
}

// BatchItem is one callback of a batch fan-out (see Simulator.Batch).
type BatchItem struct {
	D  time.Duration // delay from now; negative delays clamp to zero
	Fn func()
}

// noEvent marks an empty slab reference.
const noEvent = int32(-1)

// Timer is a handle to a scheduled event.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Stop cancels the event if it has not run yet, reporting whether it was
// still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.s == nil {
		return false
	}
	e := &t.s.events[t.idx]
	if e.gen != t.gen || e.stopped {
		return false
	}
	e.stopped = true
	e.fn = nil // release captured state promptly
	return true
}

// Simulator is the event loop. It is strictly single-threaded: all scheduled
// closures run on the goroutine that calls Step/Run/RunUntil, so simulated
// components need no locking.
type Simulator struct {
	now     time.Duration
	seq     uint64
	rng     *rand.Rand      //fdlint:allow clonefields reconstructed from src's seed and draw count on Restore
	seed    int64           // seed of the current random stream (see Reseed)
	src     *countingSource // the stream itself, draw-counted for Snapshot
	halted  bool
	stepped uint64
	pending int // scheduled callbacks not yet run or reclaimed

	events []event // slab; all event storage, recycled via free
	free   []int32 // recycled slab slots

	// queue orders far-horizon events by (at, seq); pluggable — see
	// queue.go (binary-heap reference) and ladder.go (the default).
	queue     eventQueue
	queueKind QueueKind //fdlint:allow clonefields immutable config, fixed at construction

	// itemFree recycles the slices batch nodes carry their items in, so
	// steady-state broadcast fan-outs reuse storage instead of allocating.
	//fdlint:allow clonefields recycling pool; restoreEvents rebuilds item storage in place
	itemFree [][]batchItem

	// fifo is the ready bucket: events scheduled for the current instant,
	// drained in seq (FIFO) order without touching the heap. Entries are
	// sorted by seq by construction.
	fifo     []int32
	fifoHead int

	// front holds at most one batch continuation whose key is the global
	// minimum (the currently draining same-instant fan-out), letting a
	// k-message burst run with zero heap operations after the first pop.
	front int32
}

// New returns a simulator whose random source is seeded with seed. Options
// tune kernel internals (e.g. WithQueue); event semantics and execution
// order are identical whatever the options, so runs stay reproducible from
// the seed alone.
func New(seed int64, opts ...Option) *Simulator {
	s := &Simulator{front: noEvent, queueKind: DefaultQueue()}
	s.setSource(seed)
	for _, o := range opts {
		o(s)
	}
	s.queue = newEventQueue(s.queueKind, s)
	return s
}

// Queue reports which timing-queue implementation this simulator runs on.
func (s *Simulator) Queue() QueueKind { return s.queueKind }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. All simulated
// randomness must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.stepped }

// Pending returns the number of callbacks currently scheduled (including
// stopped-but-unreclaimed ones).
func (s *Simulator) Pending() int { return s.pending }

// alloc takes a slab slot from the free list, growing the slab when empty.
func (s *Simulator) alloc() int32 {
	if n := len(s.free); n > 0 {
		i := s.free[n-1]
		s.free = s.free[:n-1]
		return i
	}
	s.events = append(s.events, event{})
	return int32(len(s.events) - 1)
}

// release recycles a slab slot; the gen bump invalidates outstanding Timers.
// Batch item slices go back to the kernel-owned free pool (cleared first so
// captured closures are released promptly).
func (s *Simulator) release(i int32) {
	e := &s.events[i]
	e.fn = nil
	if e.items != nil {
		items := e.items
		for k := range items {
			items[k] = batchItem{}
		}
		s.itemFree = append(s.itemFree, items[:0])
		e.items = nil
	}
	e.head = 0
	e.stopped = false
	e.gen++
	s.free = append(s.free, i)
}

// takeItems pops a batch item slice of length n from the free pool, falling
// back to allocation when the pool is empty or its top entry is too small.
func (s *Simulator) takeItems(n int) []batchItem {
	if k := len(s.itemFree); k > 0 {
		b := s.itemFree[k-1]
		s.itemFree = s.itemFree[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]batchItem, n)
}

// After schedules fn to run d from now. Negative delays are clamped to zero:
// the event runs at the current instant, after already-queued events for
// that instant.
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	i := s.alloc()
	e := &s.events[i]
	e.at, e.seq, e.fn = t, s.seq, fn
	s.seq++
	s.pending++
	if t == s.now {
		s.fifo = append(s.fifo, i) // seq is monotonic, so fifo stays sorted
	} else {
		s.queue.push(i)
	}
	return &Timer{s: s, idx: i, gen: e.gen}
}

// Batch schedules a group of callbacks — typically one message fan-out — as
// a single kernel node. The node is kept sorted by fire time and always
// carries the key of its earliest unfired item, so a k-message broadcast
// costs one slab slot and at most one heap insertion per distinct fire time
// instead of k, and same-instant bursts drain through the ready bucket with
// no heap traffic at all. Execution order is exactly that of k individual
// After calls issued in slice order. The kernel takes ownership of nothing:
// items is read synchronously and may be reused by the caller.
func (s *Simulator) Batch(items []BatchItem) {
	switch len(items) {
	case 0:
		return
	case 1:
		s.After(items[0].D, items[0].Fn)
		return
	}
	bs := s.takeItems(len(items))
	for k, it := range items {
		at := s.now + it.D
		if it.D < 0 || at < s.now { // negative or overflowing delays clamp to now, as in After
			at = s.now
		}
		bs[k] = batchItem{at: at, fn: it.Fn, idx: int32(k)}
	}
	// Sorting by (at, idx) — a total order, since idx is the item's position
	// in the caller's slice — yields exactly the stable-by-at permutation:
	// equal fire times keep slice order, which combined with the block of
	// consecutive seqs preserves After-by-After FIFO semantics. The explicit
	// tiebreak lets this use the unstable pdqsort; a k-receiver broadcast
	// sorts k items on every send, and first the reflection-based
	// sort.SliceStable and then symMerge were top entries in large-n sweep
	// profiles.
	slices.SortFunc(bs, func(a, b batchItem) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.idx, b.idx)
	})
	i := s.alloc()
	e := &s.events[i]
	e.at, e.seq = bs[0].at, s.seq
	e.items, e.head = bs, 0
	s.seq += uint64(len(bs))
	s.pending += len(bs)
	if e.at == s.now {
		s.fifo = append(s.fifo, i)
	} else {
		s.queue.push(i)
	}
}

// less orders slab indices by (at, seq); seqs are unique so there are no ties.
func (s *Simulator) less(i, j int32) bool {
	a, b := &s.events[i], &s.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) fifoPeek() int32 {
	if s.fifoHead >= len(s.fifo) {
		return noEvent
	}
	return s.fifo[s.fifoHead]
}

func (s *Simulator) fifoPop() int32 {
	i := s.fifo[s.fifoHead]
	s.fifoHead++
	if s.fifoHead == len(s.fifo) {
		s.fifo = s.fifo[:0]
		s.fifoHead = 0
	}
	return i
}

// reapStoppedHeads reclaims stopped events sitting at the head of the fifo
// bucket or the timing queue, so pop and peek always see a live minimum.
func (s *Simulator) reapStoppedHeads() {
	for {
		f := s.fifoPeek()
		if f == noEvent || !s.events[f].stopped {
			break
		}
		s.fifoPop()
		s.pending--
		s.release(f)
	}
	s.queue.reap()
}

// popMin removes and returns the live event with the smallest (at, seq) key,
// or noEvent. The front slot, when occupied, is always the global minimum.
func (s *Simulator) popMin() int32 {
	if s.front != noEvent {
		i := s.front
		s.front = noEvent
		return i
	}
	s.reapStoppedHeads()
	f := s.fifoPeek()
	q := s.queue.peekMin()
	if q == noEvent {
		if f == noEvent {
			return noEvent
		}
		return s.fifoPop()
	}
	if f != noEvent && s.less(f, q) {
		return s.fifoPop()
	}
	return s.queue.popMin()
}

// peekAt reports the fire time of the earliest live event.
func (s *Simulator) peekAt() (time.Duration, bool) {
	if s.front != noEvent {
		return s.events[s.front].at, true
	}
	s.reapStoppedHeads()
	best := s.fifoPeek()
	if q := s.queue.peekMin(); q != noEvent && (best == noEvent || s.less(q, best)) {
		best = q
	}
	if best == noEvent {
		return 0, false
	}
	return s.events[best].at, true
}

// Step executes the next pending event, advancing virtual time. It returns
// false when no events remain or the simulator has been halted.
func (s *Simulator) Step() bool {
	if s.halted {
		return false
	}
	i := s.popMin()
	if i == noEvent {
		return false
	}
	e := &s.events[i]
	if e.items != nil {
		// Batch node: fire the current item, then re-key the node at its
		// next item. A same-instant successor parks in the front slot (it
		// remains the global minimum), skipping the heap entirely.
		it := e.items[e.head]
		e.head++
		s.now = it.at
		s.stepped++
		s.pending--
		if e.head < len(e.items) {
			e.at = e.items[e.head].at
			e.seq++
			if e.at == s.now && s.front == noEvent {
				s.front = i
			} else {
				s.queue.push(i)
			}
		} else {
			s.release(i)
		}
		it.fn()
		return true
	}
	at, fn := e.at, e.fn
	s.release(i) // consume first: a later Timer.Stop reports false
	s.now = at
	s.stepped++
	s.pending--
	fn()
	return true
}

// Run executes events until none remain or Halt is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled exactly at t do run.
func (s *Simulator) RunUntil(t time.Duration) {
	for !s.halted {
		at, ok := s.peekAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

// Halt stops the event loop; Step/Run/RunUntil return immediately afterward.
// Pending events are kept but will not run unless Resume is called.
func (s *Simulator) Halt() { s.halted = true }

// Resume clears a previous Halt.
func (s *Simulator) Resume() { s.halted = false }

// Halted reports whether the simulator is halted.
func (s *Simulator) Halted() bool { return s.halted }
