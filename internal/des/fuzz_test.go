package des

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// fuzz_test.go is the kernel-level half of the queue differential harness:
// a byte-coded script drives an identical workload of After/At/Stop/Step/
// RunUntil/Batch calls against a heap-backed and a ladder-backed simulator
// and asserts the two are observationally identical — same fire order, same
// Now()/Steps()/Pending() at every checkpoint. The committed seed corpus
// (testdata/fuzz/FuzzQueueEquivalence) covers the regression-prone shapes:
// same-instant ties, stopped-head reaping, far-horizon timers and batch
// fan-outs. CI runs the target with a short -fuzztime budget on every push.

// queueScriptTrace is everything observable about one script run.
type queueScriptTrace struct {
	fires  []string // "id@now" per executed callback, in order
	marks  []string // "now/steps/pending" checkpoint after each control op
	events uint64
	now    time.Duration
	pend   int
}

// runQueueScript interprets data as an op stream against a fresh simulator
// on the given queue. The interpretation is fully deterministic in data, so
// two runs on different queues see byte-for-byte the same workload.
func runQueueScript(kind QueueKind, data []byte) queueScriptTrace {
	s := New(1, WithQueue(kind))
	var tr queueScriptTrace
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	next16 := func() time.Duration {
		return time.Duration(int(next())<<8 | int(next()))
	}
	var timers []*Timer
	eventID := 0
	var mk func() func()
	mk = func() func() {
		id := eventID
		eventID++
		return func() {
			tr.fires = append(tr.fires, fmt.Sprintf("%d@%d", id, s.Now()))
			// A sparse, deterministic fraction of callbacks schedules nested
			// work (same rule on both queues); the id cap bounds the chain.
			if id%7 == 3 && eventID < 4096 {
				s.After(time.Duration(id%5)*time.Microsecond, mk())
			}
		}
	}
	mark := func() {
		tr.marks = append(tr.marks, fmt.Sprintf("%d/%d/%d", s.Now(), s.Steps(), s.Pending()))
	}
	for pos < len(data) && eventID < 4096 {
		switch next() % 8 {
		case 0, 1: // near-horizon After, µs scale: the dense common case
			s.After(next16()*time.Microsecond, mk())
		case 2: // absolute At, including already-passed instants (clamped)
			timers = append(timers, s.At(s.Now()+next16()*time.Microsecond-32*time.Millisecond, mk()))
		case 3: // far-horizon After, up to ~18.6h (65535ms << 10): deep
			// ladder top-list accumulation and epoch re-spawns
			s.After(next16()*time.Millisecond<<(next()%11), mk())
		case 4: // Stop a previously returned timer
			if len(timers) > 0 {
				timers[int(next())%len(timers)].Stop()
			}
		case 5:
			s.Step()
			mark()
		case 6:
			s.RunUntil(s.Now() + next16()*time.Microsecond)
			mark()
		case 7: // batch fan-out with same-instant and spread items
			k := int(next())%6 + 2
			items := make([]BatchItem, k)
			for j := 0; j < k; j++ {
				items[j] = BatchItem{D: time.Duration(next()%8) * 500 * time.Microsecond, Fn: mk()}
			}
			s.Batch(items)
		}
		if next()%4 == 0 { // sprinkle timers eligible for Stop
			timers = append(timers, s.After(next16()*time.Microsecond, mk()))
		}
	}
	mark()
	// Drain to completion with a safety cap (the nested-scheduling rule is
	// subcritical, but a fuzz harness should never be able to hang).
	for i := 0; i < 1_000_000 && s.Step(); i++ {
	}
	tr.events = s.Steps()
	tr.now = s.Now()
	tr.pend = s.Pending()
	return tr
}

// assertQueueTracesEqual fails t on the first observable divergence.
func assertQueueTracesEqual(t *testing.T, data []byte) {
	t.Helper()
	h := runQueueScript(QueueHeap, data)
	l := runQueueScript(QueueLadder, data)
	if h.events != l.events || h.now != l.now || h.pend != l.pend {
		t.Fatalf("final state diverged: heap steps=%d now=%v pending=%d, ladder steps=%d now=%v pending=%d",
			h.events, h.now, h.pend, l.events, l.now, l.pend)
	}
	if len(h.fires) != len(l.fires) {
		t.Fatalf("fire counts diverged: heap %d, ladder %d", len(h.fires), len(l.fires))
	}
	for i := range h.fires {
		if h.fires[i] != l.fires[i] {
			t.Fatalf("fire order diverged at %d: heap %s, ladder %s", i, h.fires[i], l.fires[i])
		}
	}
	if len(h.marks) != len(l.marks) {
		t.Fatalf("checkpoint counts diverged: heap %d, ladder %d", len(h.marks), len(l.marks))
	}
	for i := range h.marks {
		if h.marks[i] != l.marks[i] {
			t.Fatalf("checkpoint %d diverged (now/steps/pending): heap %s, ladder %s", i, h.marks[i], l.marks[i])
		}
	}
}

// FuzzQueueEquivalence drives random interleavings of After/At/Stop/Step/
// RunUntil/Batch against the heap and ladder queues and asserts identical
// observable behavior. Seeds mirror the committed corpus.
func FuzzQueueEquivalence(f *testing.F) {
	for _, seed := range queueScriptSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		assertQueueTracesEqual(t, data)
	})
}

// queueScriptSeeds are hand-built op streams covering the shapes the queue
// swap is most likely to break on; they are also committed as the fuzz seed
// corpus under testdata/fuzz/FuzzQueueEquivalence.
func queueScriptSeeds() [][]byte {
	return [][]byte{
		// same-instant ties: a burst of zero-delay Afters and batches
		{0, 0, 0, 1, 1, 0, 0, 2, 0, 0, 0, 3, 7, 4, 0, 0, 0, 0, 0, 0, 0, 0, 5, 1},
		// stopped-head reaping: schedule, stop, step
		{0, 1, 0, 0, 4, 0, 1, 4, 1, 1, 5, 2, 4, 0, 3, 5, 1, 6, 255, 255, 0},
		// far-horizon timers interleaved with near ones
		{3, 255, 255, 3, 0, 0, 16, 1, 3, 127, 0, 2, 6, 8, 0, 0, 3, 1, 1, 1, 5, 0},
		// batch fan-outs crossing RunUntil boundaries
		{7, 5, 0, 1, 2, 3, 4, 5, 6, 6, 16, 0, 0, 7, 3, 7, 7, 7, 1, 5, 0, 5, 0},
		// mixed soup exercising every opcode
		{0, 10, 0, 1, 2, 200, 10, 2, 3, 9, 9, 3, 1, 4, 0, 0, 5, 3, 6, 4, 4, 2,
			7, 2, 1, 2, 3, 0, 4, 250, 128, 1, 5, 2, 6, 0, 64, 3, 2, 2, 2},
	}
}

// TestQueueDifferential replays the seed corpus plus quick-generated random
// scripts without needing -fuzz, so `go test` alone exercises the kernel
// differential harness on every run.
func TestQueueDifferential(t *testing.T) {
	for i, seed := range queueScriptSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) { assertQueueTracesEqual(t, seed) })
	}
	f := func(data []byte) bool {
		h := runQueueScript(QueueHeap, data)
		l := runQueueScript(QueueLadder, data)
		if h.events != l.events || h.now != l.now || h.pend != l.pend || len(h.fires) != len(l.fires) {
			return false
		}
		for i := range h.fires {
			if h.fires[i] != l.fires[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
