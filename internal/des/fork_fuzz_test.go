package des

import (
	"fmt"
	"testing"
	"time"
)

// fork_fuzz_test.go is the kernel-level half of the warm-fork differential
// harness (the experiment-level half is internal/exp's fork_diff_test.go): a
// byte-coded script in the FuzzQueueEquivalence op language is split at a
// fuzzer-chosen point into prefix and suffix; the simulator is snapshotted
// between the two, run to completion, restored, and the suffix replayed. The
// replay must be observationally identical — same fire order, same RNG draws,
// same Now()/Steps()/Pending() at every checkpoint — and taking the snapshot
// itself must not perturb the original run. CI runs the target with a short
// -fuzztime budget on every push; the committed seed corpus
// (testdata/fuzz/FuzzForkEquivalence) covers snapshot points amid same-instant
// ties, stopped timers, far-horizon rungs and batch fan-outs.

// forkHarness interprets op scripts against one simulator while letting the
// caller checkpoint and roll back the interpreter alongside the kernel.
type forkHarness struct {
	s       *Simulator
	out     *[]string // swappable so a replay records into a fresh trace
	timers  []*Timer
	eventID int
}

// mk returns the next callback. A deterministic subset of callbacks draws
// from the kernel RNG (the draw value lands in the trace, so a replay with a
// mis-positioned RNG stream diverges) and schedules nested work.
func (h *forkHarness) mk() func() {
	id := h.eventID
	h.eventID++
	return func() {
		line := fmt.Sprintf("%d@%d", id, h.s.Now())
		if id%3 == 0 {
			line += fmt.Sprintf("#%d", h.s.Rand().Int63n(1024))
		}
		*h.out = append(*h.out, line)
		if id%7 == 3 && h.eventID < 4096 {
			h.s.After(time.Duration(id%5)*time.Microsecond, h.mk())
		}
	}
}

func (h *forkHarness) mark() {
	*h.out = append(*h.out, fmt.Sprintf("%d/%d/%d", h.s.Now(), h.s.Steps(), h.s.Pending()))
}

// interp runs data through the same opcode map as runQueueScript.
func (h *forkHarness) interp(data []byte) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	next16 := func() time.Duration {
		return time.Duration(int(next())<<8 | int(next()))
	}
	for pos < len(data) && h.eventID < 4096 {
		switch next() % 8 {
		case 0, 1:
			h.s.After(next16()*time.Microsecond, h.mk())
		case 2:
			h.timers = append(h.timers, h.s.At(h.s.Now()+next16()*time.Microsecond-32*time.Millisecond, h.mk()))
		case 3:
			h.s.After(next16()*time.Millisecond<<(next()%11), h.mk())
		case 4:
			if len(h.timers) > 0 {
				h.timers[int(next())%len(h.timers)].Stop()
			}
		case 5:
			h.s.Step()
			h.mark()
		case 6:
			h.s.RunUntil(h.s.Now() + next16()*time.Microsecond)
			h.mark()
		case 7:
			k := int(next())%6 + 2
			items := make([]BatchItem, k)
			for j := 0; j < k; j++ {
				items[j] = BatchItem{D: time.Duration(next()%8) * 500 * time.Microsecond, Fn: h.mk()}
			}
			h.s.Batch(items)
		}
		if next()%4 == 0 {
			h.timers = append(h.timers, h.s.After(next16()*time.Microsecond, h.mk()))
		}
	}
}

// drain steps the simulator dry (capped so a fuzz input can never hang).
func (h *forkHarness) drain() {
	for i := 0; i < 1_000_000 && h.s.Step(); i++ {
	}
	h.mark()
}

// assertForkEquivalence runs prefix+suffix three ways on the given queue:
// plain (reference), with a snapshot taken between prefix and suffix (must
// not perturb anything), and replayed from the restored snapshot (must
// reproduce the post-snapshot trace byte for byte, twice).
func assertForkEquivalence(t *testing.T, kind QueueKind, prefix, suffix []byte) {
	t.Helper()

	var ref []string
	h := &forkHarness{s: New(1, WithQueue(kind)), out: &ref}
	h.interp(prefix)
	h.interp(suffix)
	h.drain()

	var full []string
	h = &forkHarness{s: New(1, WithQueue(kind)), out: &full}
	h.interp(prefix)
	snap := h.s.Snapshot()
	cut := len(full)
	nTimers, nEvents := len(h.timers), h.eventID
	h.interp(suffix)
	h.drain()

	if len(full) != len(ref) {
		t.Fatalf("%v: taking a snapshot perturbed the run: %d trace lines, want %d", kind, len(full), len(ref))
	}
	for i := range ref {
		if full[i] != ref[i] {
			t.Fatalf("%v: taking a snapshot perturbed the run at line %d: %q, want %q", kind, i, full[i], ref[i])
		}
	}

	tail := full[cut:]
	for round := 0; round < 2; round++ {
		var replay []string
		h.out = &replay
		h.timers = h.timers[:nTimers]
		h.eventID = nEvents
		h.s.Restore(snap)
		h.interp(suffix)
		h.drain()
		if len(replay) != len(tail) {
			t.Fatalf("%v restore #%d: replay has %d trace lines, want %d", kind, round+1, len(replay), len(tail))
		}
		for i := range tail {
			if replay[i] != tail[i] {
				t.Fatalf("%v restore #%d: replay diverged at line %d: %q, want %q", kind, round+1, i, replay[i], tail[i])
			}
		}
	}
}

// splitScript interprets the first byte of data as the prefix length.
func splitScript(data []byte) (prefix, suffix []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	cut := int(data[0])
	data = data[1:]
	if cut > len(data) {
		cut = len(data)
	}
	return data[:cut], data[cut:]
}

// FuzzForkEquivalence drives random op scripts with a random snapshot point
// against both queue kinds and asserts the restored replay is byte-identical
// to the original continuation. Seeds mirror the committed corpus.
func FuzzForkEquivalence(f *testing.F) {
	for _, seed := range forkScriptSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		prefix, suffix := splitScript(data)
		assertForkEquivalence(t, QueueLadder, prefix, suffix)
		assertForkEquivalence(t, QueueHeap, prefix, suffix)
	})
}

// forkScriptSeeds are the queue-differential seeds with snapshot points
// chosen to land amid the regression-prone shapes; committed as the fuzz
// seed corpus under testdata/fuzz/FuzzForkEquivalence.
func forkScriptSeeds() [][]byte {
	var out [][]byte
	for _, base := range queueScriptSeeds() {
		for _, cut := range []byte{0, byte(len(base) / 2), byte(len(base))} {
			out = append(out, append([]byte{cut}, base...))
		}
	}
	return out
}

// TestForkDifferential replays the seed corpus without needing -fuzz, so
// `go test` alone exercises the kernel fork harness on every run.
func TestForkDifferential(t *testing.T) {
	for i, seed := range forkScriptSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			prefix, suffix := splitScript(seed)
			assertForkEquivalence(t, QueueLadder, prefix, suffix)
			assertForkEquivalence(t, QueueHeap, prefix, suffix)
		})
	}
}
