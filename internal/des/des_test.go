package des

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySimulator(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty simulator = true")
	}
	if s.Now() != 0 {
		t.Errorf("Now = %v, want 0", s.Now())
	}
	s.Run() // must not hang
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Errorf("RunUntil advanced clock to %v, want 1s", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", s.Steps())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var got []string
	s.After(time.Millisecond, func() {
		got = append(got, "a")
		s.After(time.Millisecond, func() { got = append(got, "c") })
		s.After(0, func() { got = append(got, "b") })
	})
	s.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("nested order = %v", got)
	}
	if s.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v, want 2ms", s.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	ran := false
	s.After(time.Millisecond, func() {
		s.After(-5*time.Second, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if s.Now() != time.Millisecond {
		t.Errorf("clock went backwards: %v", s.Now())
	}
}

func TestAtClampedToNow(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.After(time.Second, func() {
		s.At(time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != time.Second {
		t.Errorf("past At ran at %v, want clamped to 1s", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Error("Stop pending timer = false")
	}
	if tm.Stop() {
		t.Error("second Stop = true")
	}
	s.Run()
	if ran {
		t.Error("stopped event ran")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Error("nil Timer.Stop = true")
	}
}

func TestStopAfterRun(t *testing.T) {
	s := New(1)
	tm := s.After(0, func() {})
	s.Run()
	if tm.Stop() {
		t.Error("Stop after event ran = true")
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		s.After(d, func() { got = append(got, d) })
	}
	s.RunUntil(2 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("events run = %v, want through 2ms inclusive", got)
	}
	if s.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v, want 2ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(got) != 3 {
		t.Error("remaining event lost after RunUntil")
	}
}

func TestHaltResume(t *testing.T) {
	s := New(1)
	count := 0
	s.After(time.Millisecond, func() {
		count++
		s.Halt()
	})
	s.After(2*time.Millisecond, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count after Halt = %d, want 1", count)
	}
	if !s.Halted() {
		t.Error("Halted = false")
	}
	if s.Step() {
		t.Error("Step after Halt = true")
	}
	s.Resume()
	s.Run()
	if count != 2 {
		t.Errorf("count after Resume+Run = %d, want 2", count)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

// TestQuickDeterministicSchedule builds a random workload of scheduled,
// nested and canceled events from a seed and checks two simulators replay
// exactly the same trace.
func TestQuickDeterministicSchedule(t *testing.T) {
	runTrace := func(seed int64) []time.Duration {
		r := rand.New(rand.NewSource(seed))
		s := New(seed)
		var tr []time.Duration
		var timers []*Timer
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 2 + r.Intn(5)
			for i := 0; i < n; i++ {
				d := time.Duration(r.Intn(1000)) * time.Microsecond
				tm := s.After(d, func() {
					tr = append(tr, s.Now())
					if depth < 3 && r.Intn(3) == 0 {
						schedule(depth + 1)
					}
				})
				timers = append(timers, tm)
			}
			if len(timers) > 0 && r.Intn(4) == 0 {
				timers[r.Intn(len(timers))].Stop()
			}
		}
		schedule(0)
		s.Run()
		return tr
	}
	f := func(seed int64) bool {
		a, b := runTrace(seed), runTrace(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Times must be non-decreasing.
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPendingSkipsStopped(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	tm.Stop()
	s.RunUntil(3 * time.Millisecond)
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 100; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}
