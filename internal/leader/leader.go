// Package leader derives an eventual leader oracle (class Ω) from any ◇S
// failure detector: every process elects the smallest-id member it does not
// currently suspect. Once the underlying detector reaches its eventual weak
// accuracy (some correct process is never suspected again), all correct
// processes eventually and permanently agree on a correct leader — Ω is the
// weakest failure detector for consensus, so this tiny adapter closes the
// loop between the paper's detector and the leader-based literature.
package leader

import (
	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
)

// Oracle is an Ω oracle view derived from one process's detector.
type Oracle struct {
	det     fd.Detector
	members ident.Set
}

// New builds an oracle over the given membership.
func New(det fd.Detector, members ident.Set) *Oracle {
	return &Oracle{det: det, members: members.Clone()}
}

// Leader returns the smallest member not currently suspected, or ident.Nil
// when every member is suspected (transient; cannot persist under ◇S, which
// keeps at least one correct process eventually unsuspected).
func (o *Oracle) Leader() ident.ID {
	suspects := o.det.Suspects()
	leader := ident.Nil
	o.members.ForEach(func(id ident.ID) bool {
		if !suspects.Has(id) {
			leader = id
			return false
		}
		return true
	})
	return leader
}
