package leader

import (
	"testing"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
)

type fakeFD struct{ set ident.Set }

func (f *fakeFD) Suspects() ident.Set          { return f.set.Clone() }
func (f *fakeFD) IsSuspected(id ident.ID) bool { return f.set.Has(id) }

var _ fd.Detector = (*fakeFD)(nil)

func TestLeaderSmallestUnsuspected(t *testing.T) {
	det := &fakeFD{}
	o := New(det, ident.FullSet(4))
	if got := o.Leader(); got != 0 {
		t.Errorf("Leader = %v, want p0", got)
	}
	det.set = ident.SetOf(0, 1)
	if got := o.Leader(); got != 2 {
		t.Errorf("Leader = %v, want p2", got)
	}
}

func TestLeaderAllSuspected(t *testing.T) {
	det := &fakeFD{set: ident.FullSet(3)}
	o := New(det, ident.FullSet(3))
	if got := o.Leader(); got != ident.Nil {
		t.Errorf("Leader = %v, want Nil", got)
	}
}

func TestLeaderDemotionAndRecovery(t *testing.T) {
	det := &fakeFD{}
	o := New(det, ident.SetOf(1, 3, 5))
	if got := o.Leader(); got != 1 {
		t.Errorf("Leader = %v, want p1", got)
	}
	det.set = ident.SetOf(1)
	if got := o.Leader(); got != 3 {
		t.Errorf("Leader = %v, want p3 after demotion", got)
	}
	det.set = ident.Set{}
	if got := o.Leader(); got != 1 {
		t.Errorf("Leader = %v, want p1 restored", got)
	}
}

func TestLeaderIgnoresNonMembers(t *testing.T) {
	det := &fakeFD{}
	o := New(det, ident.SetOf(2, 4))
	if got := o.Leader(); got != 2 {
		t.Errorf("Leader = %v, want p2 (p0 is not a member)", got)
	}
}

func TestMembershipIsolatedFromCaller(t *testing.T) {
	members := ident.SetOf(0, 1)
	o := New(&fakeFD{}, members)
	members.Remove(0)
	if got := o.Leader(); got != 0 {
		t.Errorf("Leader = %v; oracle must copy the membership", got)
	}
}
