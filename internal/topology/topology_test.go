package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asyncfd/internal/ident"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	g.AddEdge(2, 2) // self-loop ignored
	if g.HasEdge(2, 2) {
		t.Error("self-loop inserted")
	}
	g.AddEdge(0, 99) // out of range ignored
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Error("edge not removed")
	}
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestDegreeAndDensity(t *testing.T) {
	g := New(4) // path 0-1-2-3
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
	if g.RangeDensity() != 2 {
		t.Errorf("RangeDensity = %d, want min-degree+1 = 2", g.RangeDensity())
	}
	if New(0).RangeDensity() != 0 {
		t.Error("empty graph density nonzero")
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestConnectedExcluding(t *testing.T) {
	// Star centered at 0: removing 0 disconnects.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if !g.Connected() {
		t.Fatal("star not connected")
	}
	if g.ConnectedExcluding(ident.SetOf(0)) {
		t.Error("star minus center reported connected")
	}
	if !g.ConnectedExcluding(ident.SetOf(1, 2)) {
		t.Error("star minus two leaves reported disconnected")
	}
	if !g.ConnectedExcluding(ident.SetOf(0, 1, 2)) {
		t.Error("single remaining vertex should be vacuously connected")
	}
}

func TestVertexConnectivity(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		kappa int // exact vertex connectivity
	}{
		{"path4", func() *Graph {
			g := New(4)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 3)
			return g
		}, 1},
		{"cycle5", func() *Graph { return Circulant(5, 1) }, 2},
		{"circulant8_2", func() *Graph { return Circulant(8, 2) }, 4},
		{"complete5", func() *Graph { return Circulant(5, 2) }, 4},
		{"two-triangles-bridge", func() *Graph {
			g := New(6)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(0, 2)
			g.AddEdge(3, 4)
			g.AddEdge(4, 5)
			g.AddEdge(3, 5)
			g.AddEdge(2, 3)
			return g
		}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.build()
			if !g.VertexConnectivityAtLeast(tt.kappa) {
				t.Errorf("connectivity ≥ %d = false", tt.kappa)
			}
			if g.VertexConnectivityAtLeast(tt.kappa + 1) {
				t.Errorf("connectivity ≥ %d = true", tt.kappa+1)
			}
			if !g.VertexConnectivityAtLeast(0) {
				t.Error("connectivity ≥ 0 must always hold")
			}
		})
	}
}

func TestIsFCovering(t *testing.T) {
	// C_8(1..2) is 4-connected: f-covering for f ≤ 3.
	g := Circulant(8, 2)
	if !g.IsFCovering(3) {
		t.Error("C_8(1,2) should be 3-covering")
	}
	if g.IsFCovering(4) {
		t.Error("C_8(1,2) is not 4-covering")
	}
}

// TestQuickMengerSpotCheck cross-validates VertexConnectivityAtLeast against
// brute-force vertex removal on random small graphs: if κ ≥ k then removing
// any k−1 vertices leaves the graph connected, and if κ < k some (k−1)-set
// disconnects it.
func TestQuickMengerSpotCheck(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(3) // 5..7
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) > 0 { // dense-ish
					g.AddEdge(ident.ID(i), ident.ID(j))
				}
			}
		}
		const k = 2
		claim := g.VertexConnectivityAtLeast(k)
		// Brute force: remove every single vertex (k−1 = 1) and check
		// connectivity; κ ≥ 2 iff connected and no cut vertex.
		brute := g.Connected() && n > k
		for v := 0; v < n && brute; v++ {
			if !g.ConnectedExcluding(ident.SetOf(ident.ID(v))) {
				brute = false
			}
		}
		return claim == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGeometric(t *testing.T) {
	pos := []Point{{0, 0}, {0, 5}, {0, 11}}
	g := Geometric(pos, 6)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("geometric edges wrong")
	}
	if p, ok := g.Position(1); !ok || p.Y != 5 {
		t.Error("position not preserved")
	}
	if _, ok := New(2).Position(0); ok {
		t.Error("abstract graph reported a position")
	}
}

func TestCirculantShape(t *testing.T) {
	g := Circulant(10, 3)
	for i := 0; i < 10; i++ {
		if g.Degree(ident.ID(i)) != 6 {
			t.Fatalf("degree of %d = %d, want 6", i, g.Degree(ident.ID(i)))
		}
	}
	if g.RangeDensity() != 7 {
		t.Errorf("density = %d, want 7", g.RangeDensity())
	}
}

func TestGenerateFCovering(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g, err := GenerateFCovering(r, GenConfig{
		N: 40, F: 2, Width: 700, Height: 700, Range: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 40 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Error("generated graph disconnected")
	}
	if d := g.RangeDensity(); d < 2+2 { // min degree ≥ f+1 ⇒ d ≥ f+2
		t.Errorf("density = %d, want ≥ f+2 = 4", d)
	}
}

func TestGenerateFCoveringErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := GenerateFCovering(r, GenConfig{N: 2, F: 2, Width: 1, Height: 1, Range: 1}); err == nil {
		t.Error("N < F+2 accepted")
	}
	if _, err := GenerateFCovering(r, GenConfig{N: 5, F: 1, Width: 0, Height: 1, Range: 1}); err == nil {
		t.Error("zero width accepted")
	}
	// An impossible placement (range too small relative to region) must
	// terminate with an error, not loop forever.
	if _, err := GenerateFCovering(r, GenConfig{
		N: 30, F: 1, Width: 1e9, Height: 1e9, Range: 1, MaxAttempts: 50,
	}); err == nil {
		t.Error("impossible placement succeeded")
	}
}

func TestDistAndPoints(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func BenchmarkConnectivityCheck(b *testing.B) {
	g := Circulant(24, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.VertexConnectivityAtLeast(3) {
			b.Fatal("unexpected")
		}
	}
}

func TestGridTorus(t *testing.T) {
	g := Grid(4, 5)
	if g.Len() != 20 {
		t.Fatalf("Len = %d, want 20", g.Len())
	}
	for v := 0; v < g.Len(); v++ {
		if d := g.Degree(ident.ID(v)); d != 4 {
			t.Fatalf("degree(%d) = %d, want 4 on a torus", v, d)
		}
	}
	if !g.Connected() {
		t.Error("torus grid not connected")
	}
	// Wrap-around edges: (0,0)–(3,0) and (0,0)–(0,4).
	if !g.HasEdge(0, 15) || !g.HasEdge(0, 4) {
		t.Error("wrap-around edges missing")
	}
}

func TestScaleFree(t *testing.T) {
	g := ScaleFree(rand.New(rand.NewSource(3)), 200, 3)
	if g.Len() != 200 {
		t.Fatalf("Len = %d, want 200", g.Len())
	}
	if !g.Connected() {
		t.Error("BA graph not connected")
	}
	min, max, sum := g.Len(), 0, 0
	for v := 0; v < g.Len(); v++ {
		d := g.Degree(ident.ID(v))
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < 3 {
		t.Errorf("min degree = %d, want ≥ m = 3", min)
	}
	if max < 3*min {
		t.Errorf("max degree = %d with min %d; expected hubs under preferential attachment", max, min)
	}
	// Seed clique of m+1=4 contributes 6 edges; each later vertex adds 3.
	wantEdges := 6 + 3*(200-4)
	if sum != 2*wantEdges {
		t.Errorf("degree sum = %d, want %d", sum, 2*wantEdges)
	}
	// Same seed ⇒ same graph.
	h := ScaleFree(rand.New(rand.NewSource(3)), 200, 3)
	for v := 0; v < g.Len(); v++ {
		if g.Degree(ident.ID(v)) != h.Degree(ident.ID(v)) {
			t.Fatalf("ScaleFree not deterministic at vertex %d", v)
		}
	}
}

func TestScaleFreeTiny(t *testing.T) {
	g := ScaleFree(rand.New(rand.NewSource(1)), 3, 3)
	if g.Len() != 3 || g.Degree(0) != 2 {
		t.Errorf("tiny BA fallback not a complete graph: n=%d deg0=%d", g.Len(), g.Degree(0))
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(rand.New(rand.NewSource(5)), 100, 1000, 1000, 200)
	if g.Len() != 100 {
		t.Fatalf("Len = %d, want 100", g.Len())
	}
	// Edges respect the radius.
	for a := 0; a < g.Len(); a++ {
		pa, _ := g.Position(ident.ID(a))
		g.Neighbors(ident.ID(a)).ForEach(func(b ident.ID) bool {
			pb, _ := g.Position(b)
			if pa.Dist(pb) > 200 {
				t.Fatalf("edge {%d,%d} longer than the radius", a, b)
			}
			return true
		})
	}
	h := RandomGeometric(rand.New(rand.NewSource(5)), 100, 1000, 1000, 200)
	for v := 0; v < g.Len(); v++ {
		if g.Degree(ident.ID(v)) != h.Degree(ident.ID(v)) {
			t.Fatalf("RandomGeometric not deterministic at vertex %d", v)
		}
	}
}
