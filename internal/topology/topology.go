// Package topology builds and checks the communication graphs used by the
// partial-connectivity extension: geometric (radio-range) graphs, the
// f-covering generator of the extension report, circulant graphs for
// controlled density sweeps, and vertex-connectivity checks backing the
// f-covering property (G must be (f+1)-connected, by Menger's theorem).
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"asyncfd/internal/ident"
)

// Point is a position in the simulation region.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is an undirected communication graph over processes 0..n-1.
type Graph struct {
	n   int
	adj []ident.Set
	pos []Point // optional geometric embedding (nil if abstract)
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	adj := make([]ident.Set, n)
	for i := range adj {
		adj[i] = ident.NewSet(n)
	}
	return &Graph{n: n, adj: adj}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the undirected edge {a, b}; self-loops are ignored.
func (g *Graph) AddEdge(a, b ident.ID) {
	if a == b || !a.Valid() || !b.Valid() || int(a) >= g.n || int(b) >= g.n {
		return
	}
	g.adj[a].Add(b)
	g.adj[b].Add(a)
}

// RemoveEdge deletes the undirected edge {a, b} if present.
func (g *Graph) RemoveEdge(a, b ident.ID) {
	if !a.Valid() || !b.Valid() || int(a) >= g.n || int(b) >= g.n {
		return
	}
	g.adj[a].Remove(b)
	g.adj[b].Remove(a)
}

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b ident.ID) bool {
	return a.Valid() && int(a) < g.n && g.adj[a].Has(b)
}

// Neighbors returns a copy of a's adjacency set.
func (g *Graph) Neighbors(a ident.ID) ident.Set { return g.adj[a].Clone() }

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a ident.ID) int { return g.adj[a].Len() }

// Position returns the geometric embedding of a, if any.
func (g *Graph) Position(a ident.ID) (Point, bool) {
	if g.pos == nil || int(a) >= len(g.pos) {
		return Point{}, false
	}
	return g.pos[a], true
}

// RangeDensity returns d: the size of the smallest range set, i.e. the
// minimum degree plus one (the range includes the node itself).
func (g *Graph) RangeDensity() int {
	if g.n == 0 {
		return 0
	}
	min := g.adj[0].Len()
	for _, a := range g.adj[1:] {
		if l := a.Len(); l < min {
			min = l
		}
	}
	return min + 1
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool { return g.ConnectedExcluding(ident.Set{}) }

// ConnectedExcluding reports whether the graph restricted to vertices not in
// removed is connected (vacuously true when one or zero vertices remain).
func (g *Graph) ConnectedExcluding(removed ident.Set) bool {
	start := ident.Nil
	remaining := 0
	for i := 0; i < g.n; i++ {
		if !removed.Has(ident.ID(i)) {
			if start == ident.Nil {
				start = ident.ID(i)
			}
			remaining++
		}
	}
	if remaining <= 1 {
		return true
	}
	visited := ident.NewSet(g.n)
	visited.Add(start)
	queue := []ident.ID{start}
	seen := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.adj[v].ForEach(func(w ident.ID) bool {
			if !removed.Has(w) && !visited.Has(w) {
				visited.Add(w)
				seen++
				queue = append(queue, w)
			}
			return true
		})
	}
	return seen == remaining
}

// VertexConnectivityAtLeast reports whether the vertex connectivity κ(G) is
// ≥ k: by Menger's theorem, every pair of distinct non-adjacent vertices
// must be joined by at least k internally vertex-disjoint paths. It runs a
// unit-capacity max-flow on the vertex-split graph for every non-adjacent
// pair; fine for the experiment-scale graphs used here.
func (g *Graph) VertexConnectivityAtLeast(k int) bool {
	if k <= 0 {
		return true
	}
	if g.n <= k {
		return false // κ(G) ≤ n−1, and complete graphs cap at n−1
	}
	for s := 0; s < g.n; s++ {
		for t := s + 1; t < g.n; t++ {
			if g.adj[ident.ID(s)].Has(ident.ID(t)) {
				continue
			}
			if g.maxVertexDisjointPaths(ident.ID(s), ident.ID(t), k) < k {
				return false
			}
		}
	}
	return true
}

// IsFCovering reports the paper's f-covering property: G is (f+1)-connected.
func (g *Graph) IsFCovering(f int) bool { return g.VertexConnectivityAtLeast(f + 1) }

// maxVertexDisjointPaths counts internally vertex-disjoint s–t paths up to
// the bound via augmenting BFS on the standard vertex-split transform:
// vertex v becomes v_in → v_out with capacity 1 (except s and t).
func (g *Graph) maxVertexDisjointPaths(s, t ident.ID, bound int) int {
	// Node indices: v_in = 2v, v_out = 2v+1.
	type edge struct {
		to  int
		cap int
		rev int // index of reverse edge in adj[to]
	}
	adj := make([][]edge, 2*g.n)
	addEdge := func(u, v, c int) {
		adj[u] = append(adj[u], edge{to: v, cap: c, rev: len(adj[v])})
		adj[v] = append(adj[v], edge{to: u, cap: 0, rev: len(adj[u]) - 1})
	}
	for v := 0; v < g.n; v++ {
		capacity := 1
		if ident.ID(v) == s || ident.ID(v) == t {
			capacity = bound // endpoints are not interior vertices
		}
		addEdge(2*v, 2*v+1, capacity)
		g.adj[ident.ID(v)].ForEach(func(w ident.ID) bool {
			addEdge(2*v+1, 2*int(w), 1)
			return true
		})
	}
	source, sink := 2*int(s)+1, 2*int(t)
	flow := 0
	for flow < bound {
		// BFS for an augmenting path.
		parent := make([]int, len(adj))
		parentEdge := make([]int, len(adj))
		for i := range parent {
			parent[i] = -1
		}
		parent[source] = source
		queue := []int{source}
		for len(queue) > 0 && parent[sink] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i, e := range adj[u] {
				if e.cap > 0 && parent[e.to] == -1 {
					parent[e.to] = u
					parentEdge[e.to] = i
					queue = append(queue, e.to)
				}
			}
		}
		if parent[sink] == -1 {
			break
		}
		// Augment by 1 along the path.
		v := sink
		for v != source {
			u := parent[v]
			e := &adj[u][parentEdge[v]]
			e.cap--
			adj[v][e.rev].cap++
			v = u
		}
		flow++
	}
	return flow
}

// Geometric builds the radio graph of the given positions: an edge joins two
// nodes iff they are within transmission range r of each other.
func Geometric(positions []Point, r float64) *Graph {
	g := New(len(positions))
	g.pos = append([]Point(nil), positions...)
	for i := range positions {
		for j := i + 1; j < len(positions); j++ {
			if positions[i].Dist(positions[j]) <= r {
				g.AddEdge(ident.ID(i), ident.ID(j))
			}
		}
	}
	return g
}

// Circulant builds the circulant graph C_n(1..k): vertex i is adjacent to
// i±1, …, i±k (mod n). Its vertex connectivity is 2k and its range density
// is 2k+1 — a convenient family for controlled density sweeps.
func Circulant(n, k int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			g.AddEdge(ident.ID(i), ident.ID((i+j)%n))
		}
	}
	return g
}

// Grid builds the rows × cols torus grid: vertex (r, c) — numbered r·cols+c
// — is adjacent to its four orthogonal neighbors with wrap-around. Every
// vertex has degree 4 (less on degenerate 1- or 2-wide tori, where wrapped
// neighbors coincide), making it the constant-degree planar-like family of
// the topology sweeps.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) ident.ID {
		return ident.ID(((r+rows)%rows)*cols + (c+cols)%cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r+1, c))
			g.AddEdge(id(r, c), id(r, c+1))
		}
	}
	return g
}

// ScaleFree builds a Barabási–Albert preferential-attachment graph: a seed
// clique of m+1 vertices, then each new vertex attaches to m distinct
// existing vertices chosen with probability proportional to their degree.
// The result is connected with minimum degree m and a power-law tail — the
// hub-dominated family of the topology sweeps.
func ScaleFree(r *rand.Rand, n, m int) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m+1 {
		// Too small for attachment rounds: complete graph.
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(ident.ID(i), ident.ID(j))
			}
		}
		return g
	}
	g := New(n)
	// endpoints lists every edge endpoint once; sampling it uniformly is
	// sampling vertices proportionally to degree.
	endpoints := make([]ident.ID, 0, 2*m*n)
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(ident.ID(i), ident.ID(j))
			endpoints = append(endpoints, ident.ID(i), ident.ID(j))
		}
	}
	chosen := make([]ident.ID, 0, m)
	for v := m + 1; v < n; v++ {
		// Rejection-sample m distinct targets in draw order, keeping the
		// construction deterministic for a given rand stream.
		chosen = chosen[:0]
		for len(chosen) < m {
			t := endpoints[r.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		// Append after all m draws so a vertex cannot attach to itself.
		for _, t := range chosen {
			g.AddEdge(ident.ID(v), t)
			endpoints = append(endpoints, ident.ID(v), t)
		}
	}
	return g
}

// RandomGeometric builds the MANET-style random radio graph: n nodes placed
// uniformly in a width × height region, joined when within transmission
// range radius. Unlike GenerateFCovering it does not retry placements, so
// the result may be disconnected — callers that need connectivity check and
// redraw.
func RandomGeometric(r *rand.Rand, n int, width, height, radius float64) *Graph {
	positions := make([]Point, n)
	for i := range positions {
		positions[i] = Point{X: r.Float64() * width, Y: r.Float64() * height}
	}
	return Geometric(positions, radius)
}

// GenConfig parameterizes the f-covering generator.
type GenConfig struct {
	// N is the target node count.
	N int
	// F is the crash bound the covering must survive.
	F int
	// Width and Height bound the region (the extension report uses
	// 700m × 700m).
	Width, Height float64
	// Range is the transmission radius r (the report uses 100m).
	Range float64
	// MaxAttempts bounds placement retries per node (default 10000).
	MaxAttempts int
}

// GenerateFCovering reproduces the extension report's topology construction:
// seed a clique of f+2 nodes on a circle of radius r/2 at the region center,
// then insert nodes at random positions, accepting a position only if it has
// at least f+1 neighbors in the current graph. The result is connected with
// minimum degree ≥ f+1 by construction; callers that need the full
// (f+1)-connectivity guarantee can verify with IsFCovering.
func GenerateFCovering(r *rand.Rand, cfg GenConfig) (*Graph, error) {
	if cfg.N < cfg.F+2 {
		return nil, fmt.Errorf("topology: need N ≥ F+2, got N=%d F=%d", cfg.N, cfg.F)
	}
	if cfg.Range <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, errors.New("topology: Range, Width and Height must be positive")
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 10000
	}
	center := Point{X: cfg.Width / 2, Y: cfg.Height / 2}
	positions := make([]Point, 0, cfg.N)
	seed := cfg.F + 2
	for i := 0; i < seed; i++ {
		angle := 2 * math.Pi * float64(i) / float64(seed)
		positions = append(positions, Point{
			X: center.X + cfg.Range/2*math.Cos(angle),
			Y: center.Y + cfg.Range/2*math.Sin(angle),
		})
	}
	for len(positions) < cfg.N {
		placed := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			p := Point{X: r.Float64() * cfg.Width, Y: r.Float64() * cfg.Height}
			neighbors := 0
			for _, q := range positions {
				if p.Dist(q) <= cfg.Range {
					neighbors++
				}
			}
			if neighbors >= cfg.F+1 {
				positions = append(positions, p)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("topology: could not place node %d after %d attempts", len(positions), maxAttempts)
		}
	}
	return Geometric(positions, cfg.Range), nil
}
