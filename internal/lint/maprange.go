package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapRange flags `range` over a map in simulation packages unless the loop is
// provably order-insensitive. Go randomizes map iteration order, so any map
// order that leaks into simulation behavior breaks the byte-identity
// guarantee (PR 3 shipped exactly this bug: phiaccrual/chen iterated peer
// maps in map order, so same-seed traces diverged across runs).
//
// A loop body is accepted as order-insensitive when every statement is one of:
//
//   - a write to a map element (last-write-wins per distinct key) or delete;
//   - commutative integer/boolean accumulation (+=, -=, |=, &=, ^=, ++, --);
//   - an append whose target slice is sorted later in the same function
//     (the collect-keys-then-sort idiom);
//   - control flow (if/for/switch/continue/break) over such statements with
//     side-effect-free conditions;
//   - declarations of loop-local variables.
//
// Calls inside the body are accepted only when they are conversions, pure
// builtins, calls rooted at the iteration variables or loop-locals (assumed
// element-local, e.g. `out[id] = s.Clone()`), or calls into a small allowlist
// of pure stdlib packages. Anything else — early returns, sends, appends
// without a later sort, float accumulation, calls that can reach shared
// state — is reported. Sort the keys first, restructure the body, or annotate
// `//fdlint:allow maprange <reason>`.
var MapRange = &analysis.Analyzer{
	Name:     mapRangeName,
	Doc:      "flags order-sensitive iteration over maps in simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapRange,
}

func runMapRange(pass *analysis.Pass) (any, error) {
	if !isSim(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if allowed(pass, rs, mapRangeName) {
			return true
		}
		chk := &mapRangeChecker{pass: pass, rng: rs, fnBody: enclosingFuncBody(stack)}
		chk.collectLoopLocals()
		if chk.blockOK(rs.Body) {
			return true
		}
		pass.Report(analysis.Diagnostic{
			Pos: rs.Pos(),
			Message: fmt.Sprintf(
				"range over map %s is order-sensitive (%s); iterate sorted keys, make the body commutative, or annotate //fdlint:allow maprange <reason>",
				types.ExprString(rs.X), chk.why),
		})
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function enclosing the
// node at the top of the stack, for the sorted-later scan.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// mapRangeChecker walks a map-range body and records the first
// order-sensitive construct it finds.
type mapRangeChecker struct {
	pass   *analysis.Pass
	rng    *ast.RangeStmt
	fnBody *ast.BlockStmt
	locals map[types.Object]bool // iteration vars + vars defined inside the body
	why    string
}

func (c *mapRangeChecker) fail(n ast.Node, format string, args ...any) bool {
	if c.why == "" {
		pos := c.pass.Fset.Position(n.Pos())
		c.why = fmt.Sprintf(format, args...) + fmt.Sprintf(" at line %d", pos.Line)
	}
	return false
}

// collectLoopLocals gathers the iteration variables and every variable
// defined inside the loop body; calls rooted at these are element-local.
func (c *mapRangeChecker) collectLoopLocals() {
	c.locals = make(map[types.Object]bool)
	for _, e := range []ast.Expr{c.rng.Key, c.rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				c.locals[obj] = true
			}
		}
	}
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.locals[obj] = true
		}
		return true
	})
}

func (c *mapRangeChecker) blockOK(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *mapRangeChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BlockStmt:
		return c.blockOK(s)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return true
		}
		return c.fail(s, "%s out of the loop", s.Tok)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return c.fail(s, "declaration")
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !c.exprOK(v) {
						return false
					}
				}
			}
		}
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		if !c.integerLValue(s.X) {
			return c.fail(s, "%s on non-integer accumulator", s.Tok)
		}
		return c.exprOK(s.X)
	case *ast.ExprStmt:
		return c.exprOK(s.X)
	case *ast.IfStmt:
		if !c.stmtOK(s.Init) || !c.exprOK(s.Cond) || !c.blockOK(s.Body) {
			return false
		}
		return c.stmtOK(s.Else)
	case *ast.ForStmt:
		return c.stmtOK(s.Init) && (s.Cond == nil || c.exprOK(s.Cond)) &&
			c.stmtOK(s.Post) && c.blockOK(s.Body)
	case *ast.RangeStmt:
		// A nested range over a map is checked by its own visit; only its
		// operand needs vetting here. Other nested ranges follow body rules.
		if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return c.exprOK(s.X)
			}
		}
		return c.exprOK(s.X) && c.blockOK(s.Body)
	case *ast.SwitchStmt:
		if !c.stmtOK(s.Init) || s.Tag != nil && !c.exprOK(s.Tag) {
			return false
		}
		return c.caseClausesOK(s.Body)
	case *ast.TypeSwitchStmt:
		if !c.stmtOK(s.Init) || !c.stmtOK(s.Assign) {
			return false
		}
		return c.caseClausesOK(s.Body)
	default:
		return c.fail(s, "%T", s)
	}
}

func (c *mapRangeChecker) caseClausesOK(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			return c.fail(cl, "%T", cl)
		}
		for _, e := range cc.List {
			if !c.exprOK(e) {
				return false
			}
		}
		for _, s := range cc.Body {
			if !c.stmtOK(s) {
				return false
			}
		}
	}
	return true
}

func (c *mapRangeChecker) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		for _, r := range s.Rhs {
			if !c.exprOK(r) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		// xs = append(xs, ...) is the collect-then-sort idiom: accepted only
		// when xs is demonstrably sorted later in the same function.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(c.pass, call.Fun, "append") {
				for _, a := range call.Args {
					if !c.exprOK(a) {
						return false
					}
				}
				if c.sortedLater(s.Lhs[0]) {
					return true
				}
				return c.fail(s, "append to %s with no later sort", types.ExprString(s.Lhs[0]))
			}
		}
		for _, l := range s.Lhs {
			if !c.lhsOK(l) {
				return false
			}
		}
		for _, r := range s.Rhs {
			if !c.exprOK(r) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative for integers; float addition is not associative
		// bit-for-bit, so float accumulation in map order is a real bug.
		if !c.integerLValue(s.Lhs[0]) {
			return c.fail(s, "non-integer %s accumulation", s.Tok)
		}
		return c.exprOK(s.Rhs[0])
	default:
		return c.fail(s, "%s assignment", s.Tok)
	}
}

// lhsOK accepts assignment targets that are order-insensitive: blank, a map
// element (one write per distinct key), loop-local variables, or fields and
// elements reached through a loop-local.
func (c *mapRangeChecker) lhsOK(l ast.Expr) bool {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		if obj := c.pass.TypesInfo.ObjectOf(l); obj != nil && c.locals[obj] {
			return true
		}
		return c.fail(l, "last-write-wins assignment to %s", l.Name)
	case *ast.IndexExpr:
		if tv, ok := c.pass.TypesInfo.Types[l.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return c.exprOK(l.X) && c.exprOK(l.Index)
			}
		}
		if c.rootIsLocal(l) {
			return c.exprOK(l.Index)
		}
		return c.fail(l, "assignment through %s", types.ExprString(l))
	case *ast.SelectorExpr, *ast.StarExpr:
		if c.rootIsLocal(l) {
			return true
		}
		return c.fail(l, "assignment through %s", types.ExprString(l))
	default:
		return c.fail(l, "assignment to %s", types.ExprString(l))
	}
}

func (c *mapRangeChecker) integerLValue(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// pureStdlib is the allowlist of stdlib packages whose functions cannot
// reach simulation state.
var pureStdlib = map[string]bool{
	"math": true, "strings": true, "strconv": true,
	"cmp": true, "unicode": true, "unicode/utf8": true,
}

// pureFmt are the allocation-only fmt functions (no I/O).
var pureFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// exprOK vets an expression: no calls that can reach shared state, no
// function literals, no channel operations.
func (c *mapRangeChecker) exprOK(e ast.Expr) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !c.callOK(n) {
				ok = false
				return false
			}
		case *ast.FuncLit:
			ok = c.fail(n, "function literal")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = c.fail(n, "channel receive")
				return false
			}
		}
		return true
	})
	return ok
}

// callOK accepts conversions, pure builtins, calls rooted at loop-local
// values (assumed element-local), and the pure stdlib allowlist.
func (c *mapRangeChecker) callOK(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Type conversions.
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return true
	}
	// Builtins: len/cap/min/max/make/new/delete/abs are order-insensitive.
	for _, name := range []string{"len", "cap", "min", "max", "make", "new", "delete"} {
		if isBuiltin(c.pass, fun, name) {
			return true
		}
	}
	if isBuiltin(c.pass, fun, "append") {
		return c.fail(call, "append outside a sorted-later assignment")
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if c.commutativeCall(sel) {
			return true
		}
		if pkg := selectorPkg(c.pass, sel); pkg != nil {
			path := pkg.Imported().Path()
			if pureStdlib[path] || path == "fmt" && pureFmt[sel.Sel.Name] {
				return true
			}
			return c.fail(call, "call to %s.%s", pkg.Name(), sel.Sel.Name)
		}
		if c.rootIsLocal(sel.X) {
			return true
		}
	}
	return c.fail(call, "call to %s", types.ExprString(fun))
}

// rootIsLocal reports whether the base of a selector/index/deref chain is an
// iteration variable or a variable defined inside the loop body.
func (c *mapRangeChecker) rootIsLocal(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.ObjectOf(x)
			return obj != nil && c.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sortFuncs maps package path -> function names that sort their argument.
// ident.SortIDs is the project's canonical ID sort, so collect-then-SortIDs
// is recognized alongside the stdlib idioms.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices":                 {"Sort": true, "SortFunc": true, "SortStableFunc": true},
	"asyncfd/internal/ident": {"SortIDs": true},
}

// commutativeMethods lists methods that are commutative, idempotent
// accumulator operations (or pure reads) on their receiver, keyed by the
// receiver's fully qualified type: calling them from a map range is
// order-insensitive. ident.Set is a bitset; Add/Remove commute and Has only
// reads.
var commutativeMethods = map[string]map[string]bool{
	"asyncfd/internal/ident.Set": {"Add": true, "Remove": true, "Has": true},
}

// commutativeCall reports whether sel names a commutativeMethods entry.
func (c *mapRangeChecker) commutativeCall(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return commutativeMethods[key][fn.Name()]
}

// sortedLater reports whether target (an identifier) is passed to a sort
// call after the range statement, inside the same function body.
func (c *mapRangeChecker) sortedLater(target ast.Expr) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok || c.fnBody == nil {
		return false
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := selectorPkg(c.pass, sel)
		if pkg == nil || !sortFuncs[pkg.Imported().Path()][sel.Sel.Name] {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
			c.pass.TypesInfo.ObjectOf(arg) == obj {
			found = true
		}
		return true
	})
	return found
}

// isBuiltin reports whether fun resolves to the named universe builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isB
}

// selectorPkg returns the *types.PkgName if sel.X names an imported package.
func selectorPkg(pass *analysis.Pass, sel *ast.SelectorExpr) *types.PkgName {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pkg, _ := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	return pkg
}
