package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"

	"golang.org/x/tools/go/analysis"
)

// Diag is one finding, bound to its analyzer.
type Diag struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunAnalyzers runs the given analyzers (and their Requires closure, in
// dependency order) over one type-checked package and returns the findings.
// It is the single execution engine behind both cmd/fdlint and the
// linttest fixture harness; fact-based analyzers are not supported.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*analysis.Analyzer) ([]Diag, error) {

	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var out []Diag
	results := make(map[*analysis.Analyzer]any)
	ran := make(map[*analysis.Analyzer]bool)

	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, req := range a.Requires {
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				out = append(out, Diag{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %w", a.Name, pkg.Path(), err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := run(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}
