package lint_test

import (
	"testing"

	"asyncfd/internal/lint"
	"asyncfd/internal/lint/linttest"
)

func TestRNGDiscipline(t *testing.T) {
	linttest.Run(t, lint.RNGDiscipline,
		"asyncfd/internal/exp/rngfix",
		"asyncfd/internal/des/rngfix",
		"asyncfd/internal/livenet/rngfix",
	)
}
