package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CloneFields verifies checkpoint exhaustiveness: every Snapshot/Clone method
// on a locally defined struct must reference every field of that struct
// (copylocks-style), so adding a field to netsim.Network or a detector
// runtime without snapshotting it becomes a lint error instead of a
// fork-divergence heisenbug discovered by a differential test three PRs
// later. A field counts as referenced when the method (or another method of
// the same type it calls) mentions it, or when the method copies the whole
// receiver (`cp := *n`). Deliberately uncaptured fields — immutable config,
// derived caches rebuilt on Restore — carry a per-field annotation:
//
//	fanout []fanoutEntry //fdlint:allow clonefields derived cache, rebuilt lazily
//
// which documents the decision at the field, where the next person adding a
// neighbor field will see it. A method-level annotation suppresses the whole
// check and should be rare.
var CloneFields = &analysis.Analyzer{
	Name: cloneFieldsName,
	Doc:  "verifies Snapshot/Clone methods reference every field of their receiver struct",
	Run:  runCloneFields,
}

func runCloneFields(pass *analysis.Pass) (any, error) {
	methods := collectMethods(pass)
	structs := collectStructDecls(pass)
	for _, fn := range pass.Files {
		for _, decl := range fn.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Snapshot" && fd.Name.Name != "Clone" {
				continue
			}
			if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() == 0 {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if allowed(pass, fd, cloneFieldsName) {
				continue
			}
			refs := &refWalker{
				pass:    pass,
				methods: methods[named.Obj()],
				fields:  make(map[*types.Var]bool),
				visited: make(map[*ast.FuncDecl]bool),
			}
			refs.walkMethod(fd)
			var missing []string
			fieldDecls := structs[named.Obj()]
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() == "_" || refs.whole || refs.fields[f] {
					continue
				}
				if fld := fieldDecls[f.Name()]; fld != nil && allowed(pass, fld, cloneFieldsName) {
					continue
				}
				missing = append(missing, f.Name())
			}
			if len(missing) == 0 {
				continue
			}
			sort.Strings(missing)
			pass.Report(analysis.Diagnostic{
				Pos: fd.Name.Pos(),
				Message: fmt.Sprintf(
					"%s.%s does not reference field(s) %s: snapshot every mutable field, or annotate the field //fdlint:allow clonefields <reason>",
					named.Obj().Name(), fd.Name.Name, strings.Join(missing, ", ")),
			})
		}
	}
	return nil, nil
}

// collectMethods indexes every method declaration in the package by its
// receiver's named-type object.
func collectMethods(pass *analysis.Pass) map[types.Object]map[string]*ast.FuncDecl {
	out := make(map[types.Object]map[string]*ast.FuncDecl)
	for _, fn := range pass.Files {
		for _, decl := range fn.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil {
				continue
			}
			m := out[named.Obj()]
			if m == nil {
				m = make(map[string]*ast.FuncDecl)
				out[named.Obj()] = m
			}
			m[fd.Name.Name] = fd
		}
	}
	return out
}

// collectStructDecls indexes, per named-type object, the syntax of each
// struct field, for per-field //fdlint:allow annotations.
func collectStructDecls(pass *analysis.Pass) map[types.Object]map[string]*ast.Field {
	out := make(map[types.Object]map[string]*ast.Field)
	for _, fn := range pass.Files {
		for _, decl := range fn.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stExpr, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				fields := make(map[string]*ast.Field)
				for _, f := range stExpr.Fields.List {
					if len(f.Names) == 0 {
						// Embedded: keyed by the type's base name.
						name := types.ExprString(f.Type)
						if i := strings.LastIndexAny(name, ".*["); i >= 0 && i+1 < len(name) {
							name = name[i+1:]
						}
						name = strings.TrimSuffix(name, "]")
						fields[name] = f
						continue
					}
					for _, id := range f.Names {
						fields[id.Name] = f
					}
				}
				out[obj] = fields
			}
		}
	}
	return out
}

// receiverNamed resolves a method's receiver base type to its *types.Named.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t
	}
	return nil
}

// receiverObj returns the receiver variable of a method decl, if named.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// refWalker accumulates the receiver fields a method references, following
// calls to sibling methods of the same type (one package deep).
type refWalker struct {
	pass    *analysis.Pass
	methods map[string]*ast.FuncDecl
	fields  map[*types.Var]bool
	visited map[*ast.FuncDecl]bool
	whole   bool // method copies the whole receiver (*r or value-receiver r)
}

// valueReceiverCopied marks the walk whole when one of exprs is the bare
// receiver of a value-receiver method (using it as a value copies the
// struct).
func (w *refWalker) valueReceiverCopied(recv types.Object, exprs []ast.Expr) bool {
	if recv == nil {
		return false
	}
	if _, isPtr := recv.Type().(*types.Pointer); isPtr {
		return false
	}
	for _, e := range exprs {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && w.pass.TypesInfo.ObjectOf(id) == recv {
			w.whole = true
			return true
		}
	}
	return false
}

func (w *refWalker) walkMethod(fd *ast.FuncDecl) {
	if w.visited[fd] || w.whole {
		return
	}
	w.visited[fd] = true
	recv := receiverObj(w.pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if w.whole {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj, ok := w.pass.TypesInfo.Uses[n].(*types.Var); ok && obj.IsField() {
				w.fields[obj] = true
			}
		case *ast.StarExpr:
			// *r as a value: the whole receiver is copied.
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && recv != nil &&
				w.pass.TypesInfo.ObjectOf(id) == recv {
				w.whole = true
				return false
			}
		case *ast.AssignStmt:
			// cp := r on a value receiver copies every field.
			if w.valueReceiverCopied(recv, n.Rhs) {
				return false
			}
		case *ast.ReturnStmt:
			// return r on a value receiver copies every field.
			if w.valueReceiverCopied(recv, n.Results) {
				return false
			}
		case *ast.CallExpr:
			// Follow r.sibling(...) into the sibling method's body.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && recv != nil &&
					w.pass.TypesInfo.ObjectOf(id) == recv {
					if sib := w.methods[sel.Sel.Name]; sib != nil {
						w.walkMethod(sib)
					}
				}
			}
		}
		return true
	})
}
