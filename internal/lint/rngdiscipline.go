package lint

import (
	"fmt"
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RNGDiscipline flags math/rand source construction (rand.New,
// rand.NewSource, and the v2 equivalents) outside internal/des. The kernel
// wraps its RNG in a counting source so snapshots record the draw position
// and restores replay it lazily (PR 7's fork-safety): an RNG constructed
// anywhere else draws outside that accounting, so a forked replicate silently
// diverges from its serial comparator. Live packages are exempt; everything
// else — including neutral support packages — must either route draws through
// the kernel RNG or annotate the construction with a reason why its stream
// can never interleave with kernel draws.
var RNGDiscipline = &analysis.Analyzer{
	Name:     rngDisciplineName,
	Doc:      "flags math/rand source construction outside internal/des",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRNGDiscipline,
}

// rngConstructors maps package path -> constructor names that mint a new
// source or generator.
var rngConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

func runRNGDiscipline(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if underTree(path, rngOwnerPath) || isLive(path) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkg := selectorPkg(pass, sel)
		if pkg == nil || !rngConstructors[pkg.Imported().Path()][sel.Sel.Name] {
			return
		}
		if allowed(pass, call, rngDisciplineName) {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"rand.%s outside internal/des: RNGs must come from the seeded draw-counted kernel so forks replay exactly (or annotate //fdlint:allow rngdiscipline <reason>)",
				sel.Sel.Name),
		})
	})
	return nil, nil
}
