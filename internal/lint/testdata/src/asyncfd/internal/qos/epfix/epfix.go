// Package epfix is the out-of-scope control: errprefix applies only to the
// scenario tree, so unprefixed constructors elsewhere are not flagged.
package epfix

import "errors"

var errPlain = errors.New("plain message, no prefix")
