// Package mrfix seeds maprange fixtures in a simulation-classified package
// (asyncfd/internal/qos/... is Sim in the shared classification table).
package mrfix

import (
	"sort"

	"asyncfd/internal/ident"
)

type peerState struct {
	seq  uint64
	next int
}

type node struct {
	peers map[ident.ID]*peerState
	rng   interface{ Intn(int) int }
}

func (n *node) arm(p ident.ID, st *peerState) {}

// startUnsorted is the seeded PR-3 regression: phiaccrual/chen iterated the
// peer map in map order while arming kernel timers, so same-seed traces
// diverged across runs.
func (n *node) startUnsorted() {
	for p, st := range n.peers { // want `order-sensitive`
		n.arm(p, st)
	}
}

// startSorted is the fix shape: collect keys, sort, then iterate.
func (n *node) startSorted() {
	ids := make([]ident.ID, 0, len(n.peers))
	for p := range n.peers {
		ids = append(ids, p)
	}
	ids = ident.SortIDs(ids)
	for _, p := range ids {
		n.arm(p, n.peers[p])
	}
}

// startSortSlice uses the stdlib sort idiom instead.
func (n *node) startSortSlice() {
	ids := make([]uint32, 0, len(n.peers))
	for p := range n.peers {
		ids = append(ids, uint32(p))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, p := range ids {
		n.arm(ident.ID(p), n.peers[ident.ID(p)])
	}
}

// collectNoSort appends map keys but never sorts them.
func (n *node) collectNoSort() []ident.ID {
	var ids []ident.ID
	for p := range n.peers { // want `no later sort`
		ids = append(ids, p)
	}
	return ids
}

func mapWrites(in map[int]int) map[int]int {
	out := make(map[int]int, len(in))
	for k, v := range in {
		out[k] = v + 1
	}
	return out
}

func intAccumulation(in map[int]int) (n int, sum int) {
	for _, v := range in {
		n++
		sum += v
	}
	return n, sum
}

// floatAccumulation is order-sensitive: float addition is not associative
// bit-for-bit, so the sum depends on iteration order.
func floatAccumulation(in map[int]float64) float64 {
	var sum float64
	for _, v := range in { // want `non-integer \+= accumulation`
		sum += v
	}
	return sum
}

func deletes(m map[int]int, dead map[int]bool) {
	for k := range dead {
		delete(m, k)
	}
}

func commutativeSet(in map[ident.ID]bool) ident.Set {
	var out ident.Set
	for id, up := range in {
		if !up && !out.Has(id) {
			out.Add(id)
		}
	}
	return out
}

type clonable struct{ v int }

func (c *clonable) clone() *clonable { return &clonable{v: c.v} }

// elementLocalCall: calls rooted at the iteration variables are assumed
// element-local.
func elementLocalCall(in map[int]*clonable) map[int]*clonable {
	out := make(map[int]*clonable, len(in))
	for k, v := range in {
		out[k] = v.clone()
	}
	return out
}

var counter int

func bump() { counter++ }

// sharedStateCall reaches package state from inside the loop.
func sharedStateCall(in map[int]int) {
	for range in { // want `order-sensitive`
		bump()
	}
}

// earlyReturn leaks map order through which key wins.
func earlyReturn(in map[int]int) int {
	for k, v := range in { // want `order-sensitive`
		if v > 10 {
			return k
		}
	}
	return -1
}

// drawInLoop is the RNG hazard: each draw advances the shared stream, so
// iteration order changes every subsequent draw in the run.
func (n *node) drawInLoop(in map[int]int) map[int]int {
	out := make(map[int]int, len(in))
	for k := range in { // want `order-sensitive`
		out[k] = n.rng.Intn(10)
	}
	return out
}

// allowAnnotated is suppressed by the escape hatch, reason given.
func allowAnnotated(in map[int]int) int {
	//fdlint:allow maprange fixture: proven order-insensitive by construction
	for k, v := range in {
		if v > 10 {
			return k
		}
	}
	return -1
}

// allowTrailing is suppressed by a same-line annotation.
func allowTrailing(in map[int]int) int {
	for k, v := range in { //fdlint:allow maprange fixture: proven order-insensitive by construction
		if v > 10 {
			return k
		}
	}
	return -1
}

// allowMissingReason is NOT suppressed: the annotation has no justification.
func allowMissingReason(in map[int]int) int {
	//fdlint:allow maprange
	for k, v := range in { // want `order-sensitive`
		if v > 10 {
			return k
		}
	}
	return -1
}

// allowWrongAnalyzer is NOT suppressed: the annotation names another check.
func allowWrongAnalyzer(in map[int]int) int {
	//fdlint:allow walltime not the analyzer reporting here
	for k, v := range in { // want `order-sensitive`
		if v > 10 {
			return k
		}
	}
	return -1
}
