// Package epfix seeds errprefix fixtures inside the scenario tree, where
// every constructed error must carry the "scenario: " prefix.
package epfix

import (
	"errors"
	"fmt"
)

var errMissing = errors.New("missing detector block") // want `errors\.New message "missing detector block" lacks the "scenario: " field-path prefix`

func badErrorf(n int) error {
	return fmt.Errorf("replicas %d out of range", n) // want `fmt\.Errorf message "replicas %d out of range" lacks the "scenario: " field-path prefix`
}

func good(name string) error {
	return fmt.Errorf("scenario: detector.%s: unknown kind", name)
}

// errf mirrors the real helper: a concatenation counts through its leftmost
// literal operand.
func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}

// nonLiteral formats cannot be proven either way and are skipped.
func nonLiteral(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// errSentinel is wrapped with errf by every caller, so the hatch applies.
var errSentinel = errors.New("trailing data") //fdlint:allow errprefix callers wrap with errf before returning
