// Package rngfix exercises the rng-owner exemption: the internal/des tree
// constructs the kernel's draw-counted RNG, so constructors here are not
// flagged.
package rngfix

import "math/rand"

func kernelRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
