// Package cffix seeds clonefields fixtures: Snapshot/Clone methods that miss
// receiver fields, plus the shapes the analyzer accepts (whole-copy, sibling
// methods, per-field and per-method annotations).
package cffix

type state struct {
	seq   uint64
	inbox []int
	cache map[int]int //fdlint:allow clonefields derived cache, rebuilt lazily on Restore
}

func (s *state) Snapshot() *state { // want `state\.Snapshot does not reference field\(s\) inbox`
	return &state{seq: s.seq}
}

type full struct {
	seq   uint64
	inbox []int
}

func (f *full) Snapshot() *full {
	cp := &full{seq: f.seq}
	cp.inbox = append([]int(nil), f.inbox...)
	return cp
}

// Clone copies the whole receiver: every field is captured by *f.
func (f *full) Clone() full { return *f }

type scalar struct{ a, b int }

// Clone on a value receiver: returning the bare receiver copies the struct.
func (s scalar) Clone() scalar { return s }

type layered struct {
	head int
	tail []int
}

// Snapshot delegates tail to a sibling method; the analyzer follows the call.
func (l *layered) Snapshot() *layered {
	cp := &layered{head: l.head}
	l.copyTail(cp)
	return cp
}

func (l *layered) copyTail(dst *layered) {
	dst.tail = append([]int(nil), l.tail...)
}

type ephemeral struct {
	live    int
	scratch []byte
}

//fdlint:allow clonefields scratch is dead between calls; method-level hatch
func (e *ephemeral) Snapshot() *ephemeral {
	return &ephemeral{live: e.live}
}

type sloppy struct {
	kept    int
	dropped int //fdlint:allow clonefields
}

// Snapshot is still flagged: the field annotation above has no reason.
func (s *sloppy) Snapshot() *sloppy { // want `sloppy\.Snapshot does not reference field\(s\) dropped`
	return &sloppy{kept: s.kept}
}

type wide struct {
	a, b, c int
}

func (w *wide) Snapshot() *wide { // want `wide\.Snapshot does not reference field\(s\) b, c`
	return &wide{a: w.a}
}

type padded struct {
	_ [8]byte
	n int
}

// Snapshot ignores the blank padding field.
func (p *padded) Snapshot() *padded { return &padded{n: p.n} }
