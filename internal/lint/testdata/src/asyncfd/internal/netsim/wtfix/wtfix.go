// Package wtfix seeds walltime fixtures in a simulation-classified package
// (asyncfd/internal/netsim/... is Sim in the shared classification table).
package wtfix

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

func nap(d time.Duration) {
	time.Sleep(d) // want `wall-clock time\.Sleep`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

func expire(d time.Duration) <-chan time.Time {
	return time.After(d) // want `wall-clock time\.After`
}

func draw() int {
	return rand.Intn(10) // want `global rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// durationMath uses time only for arithmetic and constants: fine.
func durationMath(d time.Duration) time.Duration { return d + 5*time.Millisecond }

// constructorNotDraw: rand.New/NewSource are rngdiscipline's concern; the
// walltime check covers only the global-source draw functions.
func constructorNotDraw(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// allowObservability is the annotated escape hatch.
func allowObservability() time.Time {
	return time.Now() //fdlint:allow walltime observability only, never feeds simulation
}
