// Package ident is a fixture stub of the real asyncfd/internal/ident: just
// enough surface for the maprange fixtures to exercise the project-aware
// tables (ident.Set commutative methods, ident.SortIDs).
package ident

// ID is a process identity.
type ID uint32

// Set is a bitset of process identities.
type Set struct{ bits []uint64 }

// Add inserts id (commutative, idempotent).
func (s *Set) Add(id ID) { s.bits = append(s.bits, uint64(id)) }

// Remove deletes id (commutative, idempotent).
func (s *Set) Remove(id ID) {}

// Has reports membership.
func (s *Set) Has(id ID) bool { return false }

// SortIDs sorts ids ascending, in place, and returns them.
func SortIDs(ids []ID) []ID { return ids }
