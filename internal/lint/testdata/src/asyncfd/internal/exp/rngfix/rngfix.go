// Package rngfix seeds rngdiscipline fixtures in a simulation package that is
// not the RNG owner (only internal/des may construct generators).
package rngfix

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func mint(seed int64) *rand.Rand {
	src := rand.NewSource(seed) // want `rand\.NewSource outside internal/des`
	return rand.New(src)        // want `rand\.New outside internal/des`
}

func mintV2(a, b uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(a, b)) // want `rand\.New outside internal/des` `rand\.NewPCG outside internal/des`
}

// drawOnly: package-level draws on the global source are walltime's concern,
// not rngdiscipline's.
func drawOnly() int { return rand.Intn(3) }

// allowSeeded is the annotated hatch: this generator is fully consumed before
// the kernel runs, so its stream never interleaves with kernel draws.
func allowSeeded(seed int64) *rand.Rand {
	//fdlint:allow rngdiscipline seed-addressed construction before the kernel runs
	return rand.New(rand.NewSource(seed))
}
