// Package wtfix exercises the live-package exemption: real clocks and the
// global rand source are this tree's job, so nothing below is flagged.
package wtfix

import (
	"math/rand"
	"time"
)

func stamp() time.Time { return time.Now() }

func jitter() time.Duration { return time.Duration(rand.Intn(50)) * time.Millisecond }
