// Package rngfix exercises the live-package exemption for rngdiscipline: live
// transports may mint their own jitter sources.
package rngfix

import "math/rand"

func jitterSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
