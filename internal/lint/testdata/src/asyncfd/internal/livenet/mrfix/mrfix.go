// Package mrfix exercises the live-package exemption: asyncfd/internal/livenet
// is classified Live, so an order-sensitive map range here is not flagged.
package mrfix

func firstOver(in map[int]int) int {
	for k, v := range in {
		if v > 10 {
			return k
		}
	}
	return -1
}
