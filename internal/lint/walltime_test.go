package lint_test

import (
	"testing"

	"asyncfd/internal/lint"
	"asyncfd/internal/lint/linttest"
)

func TestWallTime(t *testing.T) {
	linttest.Run(t, lint.WallTime,
		"asyncfd/internal/netsim/wtfix",
		"asyncfd/internal/livenet/wtfix",
	)
}
