package lint

import "strings"

// Class is how fdlint treats a package when deciding which invariants apply.
type Class int

const (
	// Neutral packages are support code (stats, wire, ident, node, trace,
	// scenario, lint itself): they never touch simulated time, so maprange
	// and walltime do not sweep them, but rngdiscipline and clonefields do.
	Neutral Class = iota
	// Sim packages sit inside the deterministic simulation boundary: all
	// time flows from des.Kernel/node.Env, all randomness from the seeded
	// draw-counted kernel RNG, and map iteration order must never leak into
	// behavior. maprange and walltime sweep these.
	Sim
	// Live packages talk to real clocks, sockets and terminals (livenet,
	// tcpnet, examples, cmd). Wall-clock time and ad-hoc RNGs are their job;
	// only clonefields applies.
	Live
)

// classTable is the shared package-classification table every analyzer
// consults. A key classifies the named package and everything below it
// (longest matching prefix wins); packages matching no entry are Neutral.
var classTable = map[string]Class{
	"asyncfd/internal/des":        Sim,
	"asyncfd/internal/netsim":     Sim,
	"asyncfd/internal/qos":        Sim,
	"asyncfd/internal/exp":        Sim,
	"asyncfd/internal/fd":         Sim,
	"asyncfd/internal/chen":       Sim,
	"asyncfd/internal/phiaccrual": Sim,
	"asyncfd/internal/heartbeat":  Sim,
	"asyncfd/internal/core":       Sim,
	"asyncfd/internal/unknown":    Sim,
	"asyncfd/internal/leader":     Sim,
	"asyncfd/internal/consensus":  Sim,
	"asyncfd/internal/faults":     Sim,
	"asyncfd/internal/topology":   Sim,
	"asyncfd/internal/livenet":    Live,
	"asyncfd/internal/liveshard":  Live,
	"asyncfd/internal/tcpnet":     Live,
	"asyncfd/examples":            Live,
	"asyncfd/cmd":                 Live,
}

// rngOwnerPath is the one package tree allowed to construct math/rand
// sources: its countingSource is what makes RNG state snapshotable.
const rngOwnerPath = "asyncfd/internal/des"

// scenarioPath is the package whose error constructors errprefix sweeps.
const scenarioPath = "asyncfd/internal/scenario"

// underTree reports whether path is root or a package below it.
func underTree(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}

// classOf returns the classification of an import path per classTable,
// using the longest matching prefix entry.
func classOf(path string) Class {
	best, bestLen := Neutral, -1
	for root, c := range classTable {
		if underTree(path, root) && len(root) > bestLen {
			best, bestLen = c, len(root)
		}
	}
	return best
}

func isSim(path string) bool  { return classOf(path) == Sim }
func isLive(path string) bool { return classOf(path) == Live }
