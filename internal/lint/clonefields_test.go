package lint_test

import (
	"testing"

	"asyncfd/internal/lint"
	"asyncfd/internal/lint/linttest"
)

func TestCloneFields(t *testing.T) {
	linttest.Run(t, lint.CloneFields,
		"asyncfd/internal/netsim/cffix",
	)
}
