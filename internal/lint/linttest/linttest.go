// Package linttest is a self-contained analysistest-style fixture harness
// for the fdlint analyzers.
//
// Fixtures live under testdata/src/<import-path>/ relative to the calling
// test's package directory, one directory per fixture package; import paths
// under asyncfd/ get their classification from the real shared table, so a
// fixture at testdata/src/asyncfd/internal/qos/... is swept as a simulation
// package and one under .../livenet/... is exempt. Expected findings are
// declared in the fixture source with analysistest syntax:
//
//	for k := range m { ... } // want `order-sensitive`
//
// where each `want` is followed by one or more quoted or backquoted regular
// expressions that must match, in order, the diagnostics reported on that
// line. Diagnostics with no matching want comment, and want comments with no
// matching diagnostic, fail the test.
//
// Fixture packages may import the standard library (type-checked from GOROOT
// source) and other fixture packages. They are plain testdata, excluded from
// the module build, so they can — and do — contain seeded violations of
// every invariant the suite enforces.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"asyncfd/internal/lint"
)

// loaders shares one loader per testdata root across Run calls, so the
// standard library is type-checked from source once per test binary.
var loaders = struct {
	sync.Mutex
	m map[string]*loader
}{m: make(map[string]*loader)}

// Run loads each fixture package and checks the analyzer's diagnostics
// against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loaders.Lock()
	l := loaders.m[root]
	if l == nil {
		l = newLoader(root)
		loaders.m[root] = l
	}
	loaders.Unlock()
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.RunAnalyzers(l.fset, p.files, p.pkg, p.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, path, p.files, diags)
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture imports from the
// testdata tree and everything else from GOROOT source.
type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*loaded
}

func newLoader(root string) *loader {
	l := &loader{
		fset: token.NewFileSet(),
		root: root,
		pkgs: make(map[string]*loaded),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer over fixture-then-stdlib resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(l.root, filepath.FromSlash(path))) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// wantRx matches one quoted or backquoted regexp after a want keyword.
var wantRx = regexp.MustCompile("^(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// checkWants matches reported diagnostics against the fixture's want
// comments, both directions.
func checkWants(t *testing.T, fset *token.FileSet, pkgPath string, files []*ast.File, diags []lint.Diag) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				rest := strings.TrimSpace(text[i+len("want "):])
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for rest != "" {
					m := wantRx.FindString(rest)
					if m == "" {
						t.Errorf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, rest)
						break
					}
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Errorf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, m, err)
						break
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: compiling %q: %v", pos.Filename, pos.Line, pat, err)
						break
					}
					wants[k] = append(wants[k], rx)
					rest = strings.TrimSpace(rest[len(m):])
				}
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Column < diags[j].Pos.Column
	})
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		rxs := wants[k]
		if len(rxs) == 0 {
			t.Errorf("%s: unexpected diagnostic: %s", posString(d), d.Message)
			continue
		}
		if !rxs[0].MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", posString(d), d.Message, rxs[0])
		}
		wants[k] = rxs[1:]
	}
	var leftover []key
	for k, rxs := range wants {
		if len(rxs) > 0 {
			leftover = append(leftover, k)
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		if leftover[i].file != leftover[j].file {
			return leftover[i].file < leftover[j].file
		}
		return leftover[i].line < leftover[j].line
	})
	for _, k := range leftover {
		for _, rx := range wants[k] {
			t.Errorf("%s:%d: no diagnostic matching want %q (package %s)", k.file, k.line, rx, pkgPath)
		}
	}
}

func posString(d lint.Diag) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}
