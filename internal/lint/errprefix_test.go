package lint_test

import (
	"testing"

	"asyncfd/internal/lint"
	"asyncfd/internal/lint/linttest"
)

func TestErrPrefix(t *testing.T) {
	linttest.Run(t, lint.ErrPrefix,
		"asyncfd/internal/scenario/epfix",
		"asyncfd/internal/qos/epfix",
	)
}
