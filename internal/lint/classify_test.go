package lint

import "testing"

func TestClassOf(t *testing.T) {
	cases := []struct {
		path string
		want Class
	}{
		{"asyncfd/internal/des", Sim},
		{"asyncfd/internal/des/desutil", Sim},
		{"asyncfd/internal/qos", Sim},
		{"asyncfd/internal/qos/judge", Sim},
		{"asyncfd/internal/livenet", Live},
		{"asyncfd/internal/tcpnet", Live},
		{"asyncfd/cmd/fdlint", Live},
		{"asyncfd/examples/quorum", Live},
		{"asyncfd/internal/scenario", Neutral},
		{"asyncfd/internal/ident", Neutral},
		{"asyncfd/internal/lint", Neutral},
		// Prefix matching is per path segment, not per byte.
		{"asyncfd/internal/despite", Neutral},
		{"fmt", Neutral},
	}
	for _, c := range cases {
		if got := classOf(c.path); got != c.want {
			t.Errorf("classOf(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestParseAllow(t *testing.T) {
	note, ok := parseAllow("//fdlint:allow maprange per-peer in-place writes")
	if !ok || note.analyzer != "maprange" || note.reason != "per-peer in-place writes" {
		t.Errorf("parseAllow full form: got %+v ok=%v", note, ok)
	}
	note, ok = parseAllow("//fdlint:allow walltime")
	if !ok || note.analyzer != "walltime" || note.reason != "" {
		t.Errorf("parseAllow bare form: got %+v ok=%v", note, ok)
	}
	if _, ok := parseAllow("// plain comment"); ok {
		t.Error("parseAllow accepted a plain comment")
	}
	if _, ok := parseAllow("//fdlint:allow"); ok {
		t.Error("parseAllow accepted a directive with no analyzer")
	}
}

func TestAnalyzersRegistered(t *testing.T) {
	as := Analyzers()
	if len(as) != 5 {
		t.Fatalf("Analyzers() returned %d analyzers, want 5", len(as))
	}
	seen := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely initialized", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
