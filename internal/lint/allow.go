package lint

import (
	"go/ast"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// allowDirective is the comment prefix of the fdlint escape hatch:
//
//	//fdlint:allow <analyzer> <reason>
//
// The reason is mandatory: an annotation without one never suppresses, so
// every exemption in the tree documents why the invariant does not apply.
const allowDirective = "//fdlint:allow"

// allowNote is one parsed //fdlint:allow annotation.
type allowNote struct {
	analyzer string
	reason   string
}

// allowIndex maps filename -> line -> annotations ending on that line.
type allowIndex map[string]map[int][]allowNote

// allowCache memoizes the per-package annotation index. Keyed by *types.Package
// identity via the Pass, so concurrent passes over different packages are safe.
var allowCache sync.Map // *ast.File slice identity is awkward; key by Pass.Pkg

// parseAllow parses one comment line into an allowNote, or ok=false.
func parseAllow(text string) (allowNote, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), allowDirective)
	if !ok {
		return allowNote{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return allowNote{}, false
	}
	return allowNote{
		analyzer: fields[0],
		reason:   strings.Join(fields[1:], " "),
	}, true
}

// indexFor builds (or fetches) the annotation index for the pass's package.
func indexFor(pass *analysis.Pass) allowIndex {
	if v, ok := allowCache.Load(pass.Pkg); ok {
		return v.(allowIndex)
	}
	idx := make(allowIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				note, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				byLine := idx[p.Filename]
				if byLine == nil {
					byLine = make(map[int][]allowNote)
					idx[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], note)
			}
		}
	}
	allowCache.Store(pass.Pkg, idx)
	return idx
}

// allowed reports whether an //fdlint:allow annotation for the named analyzer
// (with a non-empty reason) covers node: on the node's first line, on the line
// directly above it, or — for declarations and struct fields — anywhere in
// the attached doc or trailing comment group.
func allowed(pass *analysis.Pass, node ast.Node, analyzer string) bool {
	var groups []*ast.CommentGroup
	switch n := node.(type) {
	case *ast.FuncDecl:
		groups = append(groups, n.Doc)
	case *ast.GenDecl:
		groups = append(groups, n.Doc)
	case *ast.Field:
		groups = append(groups, n.Doc, n.Comment)
	case *ast.TypeSpec:
		groups = append(groups, n.Doc, n.Comment)
	}
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if note, ok := parseAllow(c.Text); ok && note.analyzer == analyzer && note.reason != "" {
				return true
			}
		}
	}
	idx := indexFor(pass)
	p := pass.Fset.Position(node.Pos())
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, note := range idx[p.Filename][line] {
			if note.analyzer == analyzer && note.reason != "" {
				return true
			}
		}
	}
	return false
}
