package lint

import (
	"fmt"
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WallTime flags wall-clock reads and global math/rand draws in simulation
// packages. Inside the simulation boundary all time must flow from
// des.Kernel/node.Env (simulated time) and all randomness from the seeded,
// draw-counted kernel RNG — a single time.Now or rand.Intn makes same-seed
// runs diverge and breaks snapshot/fork replay, which replays the RNG by
// draw count. Live packages (livenet, tcpnet, examples, cmd) are exempt by
// the classification table: real clocks are their job.
var WallTime = &analysis.Analyzer{
	Name:     wallTimeName,
	Doc:      "flags wall-clock time and global math/rand use in simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWallTime,
}

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock. time.Duration arithmetic and constants are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *analysis.Pass) (any, error) {
	if !isSim(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkg := selectorPkg(pass, sel)
		if pkg == nil {
			return
		}
		name := sel.Sel.Name
		switch pkg.Imported().Path() {
		case "time":
			if !wallClockFuncs[name] {
				return
			}
			if allowed(pass, call, wallTimeName) {
				return
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"wall-clock time.%s in simulation package %s: simulated time must flow from des.Kernel/node.Env (or annotate //fdlint:allow walltime <reason>)",
					name, pass.Pkg.Path()),
			})
		case "math/rand", "math/rand/v2":
			// Constructors are rngdiscipline's concern; package-level draw
			// functions use the global source, which is not seeded, not
			// draw-counted, and shared across goroutines.
			if len(name) >= 3 && name[:3] == "New" {
				return
			}
			if allowed(pass, call, wallTimeName) {
				return
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"global rand.%s in simulation package %s bypasses the seeded draw-counted kernel RNG (or annotate //fdlint:allow walltime <reason>)",
					name, pass.Pkg.Path()),
			})
		}
	})
	return nil, nil
}
