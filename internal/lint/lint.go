// Package lint implements fdlint, a go/analysis suite that enforces the
// simulator's determinism invariants at the source level.
//
// Every guarantee this reproduction makes about the paper's QoS tables rests
// on determinism: byte-identical output across -parallel worker counts, fork
// modes and queue kinds, and zero stray RNG draws in replay. Those invariants
// used to be enforced only by after-the-fact differential tests; fdlint checks
// them at compile time. The analyzers:
//
//   - maprange: flags `range` over a map in simulation packages unless the
//     loop is provably order-insensitive or its keys are collected and sorted
//     before use (the PR-3 bug class: phiaccrual/chen iterated peer maps in
//     map order, so same-seed traces diverged between runs).
//   - walltime: flags wall-clock calls (time.Now, time.Sleep, ...) and global
//     math/rand draws in simulation packages, where all time must flow from
//     des.Kernel/node.Env and all randomness from the seeded draw-counted
//     kernel RNG.
//   - clonefields: for every Snapshot/Clone method on a locally defined
//     struct, verifies the method references every struct field, so adding a
//     field without snapshotting it becomes a lint error instead of a
//     fork-divergence heisenbug (the PR-7 bug class).
//   - errprefix: internal/scenario error constructors must carry the
//     documented "scenario: " field-path prefix.
//   - rngdiscipline: no rand.New/rand.NewSource construction outside
//     internal/des, whose counting source is what makes snapshots replayable.
//
// Each analyzer honors a `//fdlint:allow <analyzer> <reason>` annotation on
// the flagged line, the line above it, or the doc comment of the enclosing
// declaration; the reason is mandatory — an annotation without one does not
// suppress. Package scope is decided by the shared classification table in
// classify.go.
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full fdlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRange,
		WallTime,
		CloneFields,
		ErrPrefix,
		RNGDiscipline,
	}
}

// Analyzer names, shared by the Analyzer literals and their run functions
// (which cannot reference the Analyzer vars without an init cycle).
const (
	mapRangeName      = "maprange"
	wallTimeName      = "walltime"
	cloneFieldsName   = "clonefields"
	errPrefixName     = "errprefix"
	rngDisciplineName = "rngdiscipline"
)
