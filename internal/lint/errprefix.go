package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrPrefix enforces the documented error contract of internal/scenario:
// every error leaving the config compiler names the offending field with a
// "scenario: " prefix (the fuzz harness asserts valid-scenario-or-prefixed-
// error-never-panic). The analyzer flags errors.New and fmt.Errorf calls in
// the scenario tree whose format literal does not start with "scenario: ".
// Concatenations count through their leftmost literal operand, so the errf
// helper (`fmt.Errorf("scenario: "+format, ...)`) passes; constructors whose
// errors are demonstrably wrapped by a prefixing caller can annotate
// //fdlint:allow errprefix <reason>.
var ErrPrefix = &analysis.Analyzer{
	Name:     errPrefixName,
	Doc:      `enforces the "scenario: " prefix on internal/scenario error constructors`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrPrefix,
}

// scenarioErrPrefix is the contract documented on scenario.Parse.
const scenarioErrPrefix = "scenario: "

func runErrPrefix(pass *analysis.Pass) (any, error) {
	if !underTree(pass.Pkg.Path(), scenarioPath) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		pkg := selectorPkg(pass, sel)
		if pkg == nil {
			return
		}
		var constructor string
		switch {
		case pkg.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
			constructor = "fmt.Errorf"
		case pkg.Imported().Path() == "errors" && sel.Sel.Name == "New":
			constructor = "errors.New"
		default:
			return
		}
		lit, ok := leftmostStringLit(call.Args[0])
		if !ok {
			return // non-literal format: cannot prove either way
		}
		if strings.HasPrefix(lit, scenarioErrPrefix) {
			return
		}
		if allowed(pass, call, errPrefixName) {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"%s message %q lacks the %q field-path prefix scenario errors must carry (or annotate //fdlint:allow errprefix <reason>)",
				constructor, lit, scenarioErrPrefix),
		})
	})
	return nil, nil
}

// leftmostStringLit resolves the leftmost operand of a string concatenation
// chain to its literal value.
func leftmostStringLit(e ast.Expr) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			e = x.X
		case *ast.BasicLit:
			s, err := strconv.Unquote(x.Value)
			return s, err == nil
		default:
			return "", false
		}
	}
}
