package lint_test

import (
	"testing"

	"asyncfd/internal/lint"
	"asyncfd/internal/lint/linttest"
)

func TestMapRange(t *testing.T) {
	linttest.Run(t, lint.MapRange,
		"asyncfd/internal/qos/mrfix",
		"asyncfd/internal/livenet/mrfix",
	)
}
