package fd

import (
	"testing"
	"time"

	"asyncfd/internal/ident"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassP, "P"},
		{ClassEventuallyP, "◇P"},
		{ClassS, "S"},
		{ClassEventuallyS, "◇S"},
		{ClassOmega, "Ω"},
		{Class(42), "Class(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestSinkFunc(t *testing.T) {
	var gotAt time.Duration
	var gotObs, gotSubj ident.ID
	var gotSusp bool
	s := SinkFunc(func(at time.Duration, observer, subject ident.ID, suspected bool) {
		gotAt, gotObs, gotSubj, gotSusp = at, observer, subject, suspected
	})
	s.OnSuspicion(3*time.Second, 1, 2, true)
	if gotAt != 3*time.Second || gotObs != 1 || gotSubj != 2 || !gotSusp {
		t.Errorf("SinkFunc forwarded (%v, %v, %v, %v)", gotAt, gotObs, gotSubj, gotSusp)
	}
}

func TestMultiSink(t *testing.T) {
	count := 0
	mk := SinkFunc(func(time.Duration, ident.ID, ident.ID, bool) { count++ })
	m := MultiSink{mk, mk, mk}
	m.OnSuspicion(0, 0, 1, true)
	if count != 3 {
		t.Errorf("MultiSink fanned out to %d sinks, want 3", count)
	}
	var empty MultiSink
	empty.OnSuspicion(0, 0, 1, false) // must not panic
}
