// Package fd defines the common vocabulary of unreliable failure detectors:
// the output interface every implementation exposes, the Chandra–Toueg class
// taxonomy, and the sink through which implementations report suspicion
// transitions to metrics and traces.
package fd

import (
	"fmt"
	"time"

	"asyncfd/internal/ident"
)

// Detector is the oracle output read by applications (e.g. consensus): the
// set of processes currently suspected of having crashed. Implementations
// must make these methods safe for concurrent use.
type Detector interface {
	// Suspects returns a snapshot of the currently suspected processes.
	Suspects() ident.Set
	// IsSuspected reports whether id is currently suspected.
	IsSuspected(id ident.ID) bool
}

// Restartable is implemented by detector runtimes that support the
// crash-recovery fault model: after the network layer has revived a crashed
// process, Restart brings its detector back to life and resumes its
// protocol activity. fresh=true discards all volatile detector state (the
// process rebooted without stable storage); fresh=false resumes with the
// state held at the crash (persisted-state recovery). Implementations must
// emit the suspicion transitions implied by a state reset through their
// sink, so recorded traces stay consistent with the oracle output.
type Restartable interface {
	Restart(fresh bool)
}

// Class names the Chandra–Toueg failure-detector classes relevant here.
type Class int

const (
	// ClassP is the perfect detector: strong completeness + strong accuracy.
	ClassP Class = iota + 1
	// ClassEventuallyP (◇P): strong completeness + eventual strong accuracy.
	ClassEventuallyP
	// ClassS: strong completeness + perpetual weak accuracy.
	ClassS
	// ClassEventuallyS (◇S): strong completeness + eventual weak accuracy.
	// This is the class the paper's protocol implements, and the weakest
	// class allowing consensus with a correct majority.
	ClassEventuallyS
	// ClassOmega (Ω): eventual leader oracle; equivalent to ◇S for
	// consensus solvability.
	ClassOmega
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassP:
		return "P"
	case ClassEventuallyP:
		return "◇P"
	case ClassS:
		return "S"
	case ClassEventuallyS:
		return "◇S"
	case ClassOmega:
		return "Ω"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// SuspicionSink receives timestamped suspicion transitions from detector
// implementations. Implementations of the sink must be safe for concurrent
// use when driven by the live runtime.
type SuspicionSink interface {
	// OnSuspicion records that observer started (suspected=true) or
	// stopped (suspected=false) suspecting subject at time at.
	OnSuspicion(at time.Duration, observer, subject ident.ID, suspected bool)
}

// SinkFunc adapts a function to SuspicionSink.
type SinkFunc func(at time.Duration, observer, subject ident.ID, suspected bool)

// OnSuspicion implements SuspicionSink.
func (f SinkFunc) OnSuspicion(at time.Duration, observer, subject ident.ID, suspected bool) {
	f(at, observer, subject, suspected)
}

// MultiSink fans a transition out to several sinks.
type MultiSink []SuspicionSink

// OnSuspicion implements SuspicionSink.
func (m MultiSink) OnSuspicion(at time.Duration, observer, subject ident.ID, suspected bool) {
	for _, s := range m {
		s.OnSuspicion(at, observer, subject, suspected)
	}
}
