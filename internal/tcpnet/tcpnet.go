// Package tcpnet runs the protocol nodes over real TCP sockets: a
// length-prefixed framing of the wire codec plus a tiny identity handshake.
// It demonstrates that the same core.Node that runs on the simulator and the
// in-process live runtime also runs across machines, and it is the socket
// layer under the sharded live detector service (internal/liveshard,
// cmd/fdload).
//
// The send path is built so that no peer can stall another: every peer has
// its own bounded outbound queue drained by a per-connection writer
// goroutine that coalesces queued frames into a single Write, and dialing
// happens asynchronously on a dedicated goroutine — Send never blocks on
// the network. Under overload (a peer that stops reading, a down peer being
// redialed) frames are dropped, oldest first, and counted; the asynchronous
// model makes no delivery promises and the detectors retry every period.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/node"
	"asyncfd/internal/wire"
)

// maxFrame bounds incoming frames (1 MiB is far above any detector message).
const maxFrame = 1 << 20

// Defaults for the tunable knobs (zero values in Config).
const (
	// DefaultSendQueue is the per-peer bound on queued outbound frames.
	DefaultSendQueue = 128
	// DefaultDialTimeout bounds one asynchronous dial attempt.
	DefaultDialTimeout = time.Second
	// DefaultRedialBackoff is the minimum gap between dial attempts to a
	// peer whose last dial failed (prevents a dialing storm at every
	// heartbeat while a peer is down).
	DefaultRedialBackoff = 250 * time.Millisecond
)

// Config parameterizes a transport endpoint.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// ListenAddr is the TCP address to listen on (e.g. "127.0.0.1:0").
	ListenAddr string
	// Handler receives decoded messages.
	Handler node.Handler
	// SendQueue bounds the frames queued per peer while its connection is
	// busy or being dialed; the oldest frame is dropped on overflow
	// (default DefaultSendQueue).
	SendQueue int
	// DialTimeout bounds one async dial attempt (default DefaultDialTimeout).
	DialTimeout time.Duration
	// RedialBackoff is the minimum gap between dial attempts to a peer
	// whose last dial failed (default DefaultRedialBackoff).
	RedialBackoff time.Duration
	// ConcurrentDeliver skips the global mutex that serializes
	// Handler.Deliver across connections. The node.Env contract wants
	// per-process serialization, so leave this false for protocol nodes;
	// set it when the handler is internally synchronized (the sharded
	// detector service is), so one busy inbound link cannot serialize
	// ingestion from every other link.
	ConcurrentDeliver bool
}

// peerState is the connection lifecycle of one registered peer.
type peerState int

const (
	stateIdle peerState = iota
	stateConnecting
	stateConnected
)

// peer is the per-peer outbound endpoint: address, connection lifecycle and
// the bounded frame queue its writer goroutine drains.
type peer struct {
	id   ident.ID
	addr string

	mu       sync.Mutex
	state    peerState
	conn     net.Conn // non-nil iff state == stateConnected
	queue    [][]byte // pending frames, oldest first
	lastFail time.Time
	wake     chan struct{} // cap-1 signal: the queue became non-empty
}

// Stats are cumulative transport counters (monotone; read with Stats).
type Stats struct {
	// FramesSent counts frames handed to the kernel (post-coalescing
	// writes may carry many frames each).
	FramesSent uint64
	// FramesDropped counts frames dropped on the send path: queue
	// overflow, dial failure, redial backoff, unknown/closed peer.
	FramesDropped uint64
	// Dials and DialFails count asynchronous dial attempts and failures.
	Dials, DialFails uint64
	// Writes counts kernel Write calls (FramesSent/Writes is the achieved
	// coalescing factor).
	Writes uint64
}

// Transport is one process's endpoint. It implements node.Env.
type Transport struct {
	cfg   Config
	ln    net.Listener
	start time.Time

	mu      sync.Mutex
	peers   map[ident.ID]*peer
	conns   map[net.Conn]struct{} // live outgoing connections (closed on Close)
	inbound map[net.Conn]struct{} // accepted connections (closed on Close)
	closed  bool

	deliver sync.Mutex // serializes Handler.Deliver unless ConcurrentDeliver

	// dial is the dial function (swapped by tests to simulate slow or
	// hanging networks).
	dial func(addr string, timeout time.Duration) (net.Conn, error)

	framesSent    atomic.Uint64
	framesDropped atomic.Uint64
	dials         atomic.Uint64
	dialFails     atomic.Uint64
	writes        atomic.Uint64

	done    chan struct{}
	wg      sync.WaitGroup
	pending sync.WaitGroup
}

var _ node.Env = (*Transport)(nil)

// New opens the listener and starts accepting.
func New(cfg Config) (*Transport, error) {
	if cfg.Handler == nil {
		return nil, errors.New("tcpnet: Config.Handler is required")
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = DefaultSendQueue
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = DefaultRedialBackoff
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen: %w", err)
	}
	t := &Transport{
		cfg:     cfg,
		ln:      ln,
		start:   time.Now(),
		peers:   make(map[ident.ID]*peer),
		conns:   make(map[net.Conn]struct{}),
		inbound: make(map[net.Conn]struct{}),
		dial:    dialTCP,
		done:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers the address of another process.
func (t *Transport) AddPeer(id ident.ID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[id]; ok {
		p.mu.Lock()
		p.addr = addr
		p.mu.Unlock()
		return
	}
	t.peers[id] = &peer{id: id, addr: addr, wake: make(chan struct{}, 1)}
}

// Stats returns cumulative send-path counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesSent:    t.framesSent.Load(),
		FramesDropped: t.framesDropped.Load(),
		Dials:         t.dials.Load(),
		DialFails:     t.dialFails.Load(),
		Writes:        t.writes.Load(),
	}
}

// Close tears the endpoint down and joins all goroutines.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	err := t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.queue = nil
		p.mu.Unlock()
	}
	t.pending.Wait()
	t.wg.Wait()
	return err
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop consumes the hello frame then dispatches messages. The frame
// buffer is reused across reads: wire.Decode copies everything it returns.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	var buf []byte
	hello, err := readFrameReuse(br, &buf)
	if err != nil || len(hello) == 0 {
		return
	}
	from64, n := binary.Uvarint(hello)
	if n <= 0 {
		return
	}
	from := ident.ID(from64)
	for {
		frame, err := readFrameReuse(br, &buf)
		if err != nil {
			return
		}
		payload, err := wire.Decode(frame)
		if err != nil {
			continue // tolerate garbage; asynchronous links may be attacked
		}
		select {
		case <-t.done:
			return
		default:
		}
		if t.cfg.ConcurrentDeliver {
			t.cfg.Handler.Deliver(from, payload)
			continue
		}
		t.deliver.Lock()
		t.cfg.Handler.Deliver(from, payload)
		t.deliver.Unlock()
	}
}

// readFrameReuse reads one length-prefixed frame into *buf, growing it as
// needed; the returned slice aliases *buf and is only valid until the next
// call.
func readFrameReuse(r io.Reader, buf *[]byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > maxFrame {
		return nil, fmt.Errorf("tcpnet: bad frame size %d", size)
	}
	if uint32(cap(*buf)) < size {
		*buf = make([]byte, size)
	}
	b := (*buf)[:size]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// dialTCP is the production dial function.
func dialTCP(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// appendFrame appends the length prefix and frame body to dst.
func appendFrame(dst, frame []byte) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	dst = append(dst, lenBuf[:]...)
	return append(dst, frame...)
}

func writeFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(appendFrame(make([]byte, 0, 4+len(frame)), frame))
	return err
}

// enqueue queues one encoded frame for peer p, starting a dial if the peer
// has no connection. It never blocks on the network: a full queue drops the
// oldest frame, a peer inside its redial backoff drops the new one.
func (t *Transport) enqueue(p *peer, frame []byte) {
	p.mu.Lock()
	switch p.state {
	case stateConnected, stateConnecting:
		if len(p.queue) >= t.cfg.SendQueue {
			p.queue = p.queue[1:]
			t.framesDropped.Add(1)
		}
		p.queue = append(p.queue, frame)
		if p.state == stateConnected {
			signal(p.wake)
		}
		p.mu.Unlock()
	case stateIdle:
		if !p.lastFail.IsZero() && time.Since(p.lastFail) < t.cfg.RedialBackoff {
			p.mu.Unlock()
			t.framesDropped.Add(1)
			return
		}
		p.state = stateConnecting
		p.queue = append(p.queue[:0], frame)
		p.mu.Unlock()
		// Spawn the dialer under t.mu so Close's wg.Wait cannot race the
		// Add; if the transport closed meanwhile, roll the state back.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			p.mu.Lock()
			p.state = stateIdle
			p.queue = nil
			p.mu.Unlock()
			t.framesDropped.Add(1)
			return
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.dialPeer(p)
	}
}

// signal makes a non-blocking send on a cap-1 wake channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// dialPeer runs one asynchronous dial attempt for p and, on success, hands
// the connection to a writer goroutine. Frames queued while connecting are
// flushed by the writer; a failed dial drops them.
func (t *Transport) dialPeer(p *peer) {
	defer t.wg.Done()
	t.dials.Add(1)
	p.mu.Lock()
	addr := p.addr
	p.mu.Unlock()
	c, err := t.dial(addr, t.cfg.DialTimeout)
	if err == nil {
		hello := binary.AppendUvarint(nil, uint64(t.cfg.Self))
		if herr := writeFrame(c, hello); herr != nil {
			c.Close()
			c, err = nil, herr
		}
	}
	if err != nil {
		t.dialFails.Add(1)
		p.mu.Lock()
		p.state = stateIdle
		p.lastFail = time.Now()
		t.framesDropped.Add(uint64(len(p.queue)))
		p.queue = nil
		p.mu.Unlock()
		return
	}
	// Register the connection; if Close ran while dialing, fold back.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		p.mu.Lock()
		p.state = stateIdle
		p.queue = nil
		p.mu.Unlock()
		return
	}
	t.conns[c] = struct{}{}
	t.wg.Add(1)
	t.mu.Unlock()
	p.mu.Lock()
	p.state = stateConnected
	p.conn = c
	p.mu.Unlock()
	go t.writeLoop(p, c)
}

// writeLoop drains p's queue over c, coalescing all queued frames into one
// buffer per kernel write. It exits when the connection is replaced or
// fails, or the transport closes.
func (t *Transport) writeLoop(p *peer, c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, c)
		t.mu.Unlock()
	}()
	buf := make([]byte, 0, 16<<10)
	for {
		p.mu.Lock()
		if p.conn != c {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		if len(batch) == 0 {
			select {
			case <-p.wake:
				continue
			case <-t.done:
				return
			}
		}
		buf = buf[:0]
		for _, f := range batch {
			buf = appendFrame(buf, f)
		}
		if _, err := c.Write(buf); err != nil {
			t.dropConn(p, c)
			return
		}
		t.framesSent.Add(uint64(len(batch)))
		t.writes.Add(1)
	}
}

// dropConn retires a failed connection: the peer goes back to idle (with a
// redial backoff) and its queued frames are dropped.
func (t *Transport) dropConn(p *peer, c net.Conn) {
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
		p.state = stateIdle
		p.lastFail = time.Now()
		t.framesDropped.Add(uint64(len(p.queue)))
		p.queue = nil
	}
	p.mu.Unlock()
	c.Close()
}

// Self implements node.Env.
func (t *Transport) Self() ident.ID { return t.cfg.Self }

// Now implements node.Env.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// After implements node.Env.
func (t *Transport) After(d time.Duration, fn func()) node.Timer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return deadTimer{}
	}
	t.pending.Add(1)
	var once sync.Once
	release := func() { once.Do(func() { t.pending.Done() }) }
	tm := time.AfterFunc(d, func() {
		defer release()
		select {
		case <-t.done:
		default:
			fn()
		}
	})
	return &tcpTimer{t: tm, release: release}
}

type tcpTimer struct {
	t       *time.Timer
	release func()
}

func (t *tcpTimer) Stop() bool {
	stopped := t.t.Stop()
	if stopped {
		t.release()
	}
	return stopped
}

type deadTimer struct{}

func (deadTimer) Stop() bool { return false }

// Send implements node.Env: best-effort asynchronous transmission. The call
// never blocks on the network — frames are queued to the peer's writer
// goroutine (dialing asynchronously if needed) and dropped under overload
// (the asynchronous model makes no delivery-time promises; the detector
// tolerates it and the next round retries).
func (t *Transport) Send(to ident.ID, payload any) {
	frame, err := wire.Encode(payload)
	if err != nil {
		return
	}
	t.sendFrame(to, frame)
}

// sendFrame queues one already-encoded frame (shared by Send and the
// encode-once Broadcast; the frame must not be mutated afterwards).
func (t *Transport) sendFrame(to ident.ID, frame []byte) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	p, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		t.framesDropped.Add(1)
		return
	}
	t.enqueue(p, frame)
}

// Broadcast implements node.Env: the payload is encoded once and the frame
// queued to every registered peer.
func (t *Transport) Broadcast(payload any) {
	frame, err := wire.Encode(payload)
	if err != nil {
		return
	}
	t.mu.Lock()
	targets := make([]ident.ID, 0, len(t.peers))
	for id := range t.peers {
		if id != t.cfg.Self {
			targets = append(targets, id)
		}
	}
	t.mu.Unlock()
	ident.SortIDs(targets)
	for _, id := range targets {
		t.sendFrame(id, frame)
	}
}
