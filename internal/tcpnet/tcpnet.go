// Package tcpnet runs the protocol nodes over real TCP sockets: a
// length-prefixed framing of the wire codec plus a tiny identity handshake.
// It demonstrates that the same core.Node that runs on the simulator and the
// in-process live runtime also runs across machines. It is a demonstration
// transport (full mesh, lazy dialing, drop-on-error), not a hardened
// product.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/node"
	"asyncfd/internal/wire"
)

// maxFrame bounds incoming frames (1 MiB is far above any detector message).
const maxFrame = 1 << 20

// Config parameterizes a transport endpoint.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// ListenAddr is the TCP address to listen on (e.g. "127.0.0.1:0").
	ListenAddr string
	// Handler receives decoded messages.
	Handler node.Handler
}

// Transport is one process's endpoint. It implements node.Env.
type Transport struct {
	cfg   Config
	ln    net.Listener
	start time.Time

	mu      sync.Mutex
	peers   map[ident.ID]string   // id → address
	conns   map[ident.ID]net.Conn // established outgoing connections
	inbound map[net.Conn]struct{} // accepted connections (closed on Close)
	closed  bool

	deliver sync.Mutex // serializes Handler.Deliver per the node.Env contract
	write   sync.Mutex // serializes frame writes (frames must not interleave)

	done    chan struct{}
	wg      sync.WaitGroup
	pending sync.WaitGroup
}

var _ node.Env = (*Transport)(nil)

// New opens the listener and starts accepting.
func New(cfg Config) (*Transport, error) {
	if cfg.Handler == nil {
		return nil, errors.New("tcpnet: Config.Handler is required")
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen: %w", err)
	}
	t := &Transport{
		cfg:     cfg,
		ln:      ln,
		start:   time.Now(),
		peers:   make(map[ident.ID]string),
		conns:   make(map[ident.ID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers the address of another process.
func (t *Transport) AddPeer(id ident.ID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Close tears the endpoint down and joins all goroutines.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	err := t.ln.Close()
	for _, c := range t.conns {
		c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.pending.Wait()
	t.wg.Wait()
	return err
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes the hello frame then dispatches messages.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	hello, err := readFrame(conn)
	if err != nil || len(hello) == 0 {
		return
	}
	from64, n := binary.Uvarint(hello)
	if n <= 0 {
		return
	}
	from := ident.ID(from64)
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		payload, err := wire.Decode(frame)
		if err != nil {
			continue // tolerate garbage; asynchronous links may be attacked
		}
		select {
		case <-t.done:
			return
		default:
		}
		t.deliver.Lock()
		t.cfg.Handler.Deliver(from, payload)
		t.deliver.Unlock()
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > maxFrame {
		return nil, fmt.Errorf("tcpnet: bad frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, frame []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// conn returns (dialing if necessary) the outgoing connection to id.
func (t *Transport) conn(id ident.ID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcpnet: closed")
	}
	if c, ok := t.conns[id]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[id]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: unknown peer %v", id)
	}
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	hello := binary.AppendUvarint(nil, uint64(t.cfg.Self))
	if err := writeFrame(c, hello); err != nil {
		c.Close()
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, errors.New("tcpnet: closed")
	}
	if existing, ok := t.conns[id]; ok {
		c.Close()
		return existing, nil
	}
	t.conns[id] = c
	return c, nil
}

func (t *Transport) dropConn(id ident.ID, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[id] == c {
		delete(t.conns, id)
	}
	c.Close()
}

// Self implements node.Env.
func (t *Transport) Self() ident.ID { return t.cfg.Self }

// Now implements node.Env.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// After implements node.Env.
func (t *Transport) After(d time.Duration, fn func()) node.Timer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return deadTimer{}
	}
	t.pending.Add(1)
	var once sync.Once
	release := func() { once.Do(func() { t.pending.Done() }) }
	tm := time.AfterFunc(d, func() {
		defer release()
		select {
		case <-t.done:
		default:
			fn()
		}
	})
	return &tcpTimer{t: tm, release: release}
}

type tcpTimer struct {
	t       *time.Timer
	release func()
}

func (t *tcpTimer) Stop() bool {
	stopped := t.t.Stop()
	if stopped {
		t.release()
	}
	return stopped
}

type deadTimer struct{}

func (deadTimer) Stop() bool { return false }

// Send implements node.Env: best-effort asynchronous transmission. Encoding
// or connection failures drop the message (the asynchronous model makes no
// delivery-time promises; the detector tolerates it and the next round
// retries).
func (t *Transport) Send(to ident.ID, payload any) {
	frame, err := wire.Encode(payload)
	if err != nil {
		return
	}
	c, err := t.conn(to)
	if err != nil {
		return
	}
	t.write.Lock()
	err = writeFrame(c, frame)
	t.write.Unlock()
	if err != nil {
		t.dropConn(to, c)
	}
}

// Broadcast implements node.Env: one Send per registered peer.
func (t *Transport) Broadcast(payload any) {
	t.mu.Lock()
	targets := make([]ident.ID, 0, len(t.peers))
	for id := range t.peers {
		if id != t.cfg.Self {
			targets = append(targets, id)
		}
	}
	t.mu.Unlock()
	ident.SortIDs(targets)
	for _, id := range targets {
		t.Send(id, payload)
	}
}
