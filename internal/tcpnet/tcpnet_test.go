package tcpnet

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/wire"
)

// collector accumulates deliveries.
type collector struct {
	mu  sync.Mutex
	got []any
	ch  chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 64)} }

func (c *collector) Deliver(_ ident.ID, payload any) {
	c.mu.Lock()
	c.got = append(c.got, payload)
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func TestNewRequiresHandler(t *testing.T) {
	if _, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("missing handler accepted")
	}
}

func TestSendReceive(t *testing.T) {
	colA, colB := newCollector(), newCollector()
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: colA})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0", Handler: colB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	a.Send(1, heartbeat.Message{From: 0, Seq: 42})
	select {
	case <-colB.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("delivery timed out")
	}
	colB.mu.Lock()
	m, ok := colB.got[0].(heartbeat.Message)
	colB.mu.Unlock()
	if !ok || m.Seq != 42 || m.From != 0 {
		t.Fatalf("got %+v", colB.got)
	}

	// Reverse direction (b dials its own connection).
	b.Send(0, heartbeat.Message{From: 1, Seq: 7})
	select {
	case <-colA.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("reverse delivery timed out")
	}
}

func TestSendToUnknownPeerDropped(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send(9, heartbeat.Message{From: 0, Seq: 1}) // no peer registered: no panic
	a.Send(1, "unencodable")                      // unsupported payload: no panic
	if s := a.Stats(); s.FramesDropped == 0 {
		t.Error("unknown-peer send not counted as dropped")
	}
}

func TestTimerAndClose(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{})
	a.After(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
	tm := a.After(time.Hour, func() { t.Error("must not fire") })
	if !tm.Stop() {
		t.Error("Stop pending = false")
	}
	if err := a.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if a.After(time.Millisecond, func() {}).Stop() {
		t.Error("After on closed transport returned live timer")
	}
}

// stalledListener accepts connections, reads their hello, then stops reading
// forever — a peer whose application has wedged while the socket stays open.
func stalledListener(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			// Never read: the kernel buffers fill and writes stall.
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// bigPayload is a ~60 KB frame, large enough that a handful of them
// overwhelm the loopback socket buffers of a stalled reader.
func bigPayload() heartbeat.VectorMessage {
	return heartbeat.VectorMessage{From: 0, Vector: make([]uint64, 60_000)}
}

// TestStalledPeerDoesNotBlockHealthySends is the regression test for the
// head-of-line blocking bug: with the old single global write mutex, one
// peer that stopped reading froze sends to every other peer. Now each
// connection has its own writer goroutine and bounded queue, so sends to
// the stalled peer drop while sends to healthy peers flow.
func TestStalledPeerDoesNotBlockHealthySends(t *testing.T) {
	colB := newCollector()
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector(), SendQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0", Handler: colB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	stalledAddr, stopStalled := stalledListener(t)
	defer stopStalled()

	a.AddPeer(1, b.Addr())
	a.AddPeer(2, stalledAddr)

	// Saturate the stalled peer: far more bytes than loopback buffering
	// plus the bounded queue can hold. Every Send must return promptly —
	// the bound is loose to absorb -race/GC noise; the pre-fix code blocks
	// in the kernel write forever once the socket buffers fill.
	payload := bigPayload()
	for i := 0; i < 100; i++ {
		start := time.Now()
		a.Send(2, payload)
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Send to stalled peer blocked for %v", d)
		}
	}

	// Sends to the healthy peer must not be delayed by the stalled one.
	start := time.Now()
	a.Send(1, heartbeat.Message{From: 0, Seq: 1})
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Send to healthy peer blocked for %v behind a stalled peer", d)
	}
	select {
	case <-colB.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("delivery to healthy peer timed out behind a stalled peer")
	}
	if s := a.Stats(); s.FramesDropped == 0 {
		t.Error("overloading a stalled peer dropped no frames")
	}
}

// TestSendDoesNotBlockOnDial is the regression test for the blocking-dial
// bug: Send used to run net.DialTimeout (up to 1s) on the caller's
// goroutine, so a heartbeat broadcast stalled (down peers × 1s). Dialing is
// now asynchronous: Send returns immediately while the dial is in flight.
func TestSendDoesNotBlockOnDial(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dialing := make(chan struct{}, 16)
	a.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		dialing <- struct{}{}
		time.Sleep(200 * time.Millisecond) // a slow, ultimately dead network
		return nil, errors.New("unreachable")
	}
	for id := ident.ID(1); id <= 8; id++ {
		a.AddPeer(id, "203.0.113.1:9") // never dialed for real
	}

	start := time.Now()
	a.Broadcast(heartbeat.Message{From: 0, Seq: 1})
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("Broadcast with 8 down peers took %v; dials must be async", d)
	}
	// All eight dials run concurrently, not serially on the send path.
	deadline := time.After(time.Second)
	for i := 0; i < 8; i++ {
		select {
		case <-dialing:
		case <-deadline:
			t.Fatalf("only %d async dials started", i)
		}
	}
	// While connecting (and during the failure backoff), sends drop
	// rather than stall.
	start = time.Now()
	a.Send(1, heartbeat.Message{From: 0, Seq: 2})
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("Send while connecting took %v", d)
	}
}

// TestRedialBackoff: after a failed dial the peer is not redialed until the
// backoff elapses; sends in between drop without spawning dial goroutines.
func TestRedialBackoff(t *testing.T) {
	a, err := New(Config{
		Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector(),
		RedialBackoff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var dials atomic.Int64
	a.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		dials.Add(1)
		return nil, errors.New("refused")
	}
	a.AddPeer(1, "203.0.113.1:9")
	a.Send(1, heartbeat.Message{From: 0, Seq: 1})
	waitFor(t, time.Second, func() bool { return dials.Load() == 1 })
	for i := 0; i < 10; i++ {
		a.Send(1, heartbeat.Message{From: 0, Seq: uint64(i) + 2})
	}
	time.Sleep(20 * time.Millisecond)
	if n := dials.Load(); n != 1 {
		t.Fatalf("dials during backoff = %d, want 1", n)
	}
}

// TestCloseDuringDial races Close against in-flight async dials (run under
// -race in CI).
func TestCloseDuringDial(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 64)
	a.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		started <- struct{}{}
		time.Sleep(10 * time.Millisecond)
		return nil, errors.New("unreachable")
	}
	for id := ident.ID(1); id <= 4; id++ {
		a.AddPeer(id, "203.0.113.1:9")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				a.Send(ident.ID(g%4)+1, heartbeat.Message{From: 0, Seq: uint64(i)})
			}
		}(g)
	}
	<-started // at least one dial in flight
	if err := a.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
	// Sends after Close are no-ops.
	a.Send(1, heartbeat.Message{From: 0, Seq: 99})
}

// TestWriteAfterDropConn races sends against a connection being dropped
// out from under them (run under -race in CI).
func TestWriteAfterDropConn(t *testing.T) {
	colB := newCollector()
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector(), RedialBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0", Handler: colB})
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(1, b.Addr())

	a.Send(1, heartbeat.Message{From: 0, Seq: 1})
	select {
	case <-colB.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("initial delivery timed out")
	}

	// Drop the connection out from under a burst of concurrent sends; the
	// race detector guards the write-after-dropConn interleavings, and the
	// peer must recover (redial) so a marker message still gets through.
	a.mu.Lock()
	p := a.peers[1]
	a.mu.Unlock()
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c == nil {
		t.Fatal("no established connection to drop")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			a.Send(1, heartbeat.Message{From: 0, Seq: uint64(i) + 2})
		}
	}()
	a.dropConn(p, c)
	wg.Wait()
	// After the drop and its 1ms backoff, a fresh send must redial and land.
	waitFor(t, 5*time.Second, func() bool {
		a.Send(1, heartbeat.Message{From: 0, Seq: 9999})
		colB.mu.Lock()
		defer colB.mu.Unlock()
		for _, m := range colB.got {
			if hb, ok := m.(heartbeat.Message); ok && hb.Seq == 9999 {
				return true
			}
		}
		return false
	})
}

// TestDuplicateInboundHello: two inbound connections claiming the same peer
// identity must both deliver and tear down cleanly (run under -race in CI).
func TestDuplicateInboundHello(t *testing.T) {
	col := newCollector()
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: col})
	if err != nil {
		t.Fatal(err)
	}
	hello := binary.AppendUvarint(nil, 7)
	frame, err := wire.Encode(heartbeat.Message{From: 7, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", a.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if err := writeFrame(c, hello); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(c, frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, func() bool { return col.len() == 2 })
	for _, c := range conns {
		c.Close()
	}
	if err := a.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestBroadcastEncodesOnce: a broadcast to many peers performs one encode
// and the frames reach every peer.
func TestBroadcastCoalescing(t *testing.T) {
	cols := make([]*collector, 3)
	trs := make([]*Transport, 3)
	for i := range trs {
		cols[i] = newCollector()
		tr, err := New(Config{Self: ident.ID(i), ListenAddr: "127.0.0.1:0", Handler: cols[i]})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
	}
	for i := range trs {
		for j := range trs {
			if i != j {
				trs[i].AddPeer(ident.ID(j), trs[j].Addr())
			}
		}
	}
	const rounds = 50
	for r := 0; r < rounds; r++ {
		trs[0].Broadcast(heartbeat.Message{From: 0, Seq: uint64(r)})
	}
	waitFor(t, 5*time.Second, func() bool {
		return cols[1].len() == rounds && cols[2].len() == rounds
	})
	s := trs[0].Stats()
	if s.FramesSent != 2*rounds {
		t.Errorf("FramesSent = %d, want %d", s.FramesSent, 2*rounds)
	}
	if s.Writes == 0 || s.Writes > s.FramesSent {
		t.Errorf("Writes = %d out of range (FramesSent %d)", s.Writes, s.FramesSent)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFDOverTCP runs the time-free failure detector across real sockets:
// three processes on localhost; one endpoint is torn down and the survivors
// must suspect it.
func TestFDOverTCP(t *testing.T) {
	const n, f = 3, 1
	transports := make([]*Transport, n)
	nodes := make([]*core.Node, n)
	cells := make([]*cell, n)

	for i := 0; i < n; i++ {
		cells[i] = &cell{}
		tr, err := New(Config{Self: ident.ID(i), ListenAddr: "127.0.0.1:0", Handler: cells[i]})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].AddPeer(ident.ID(j), transports[j].Addr())
			}
		}
	}
	for i := 0; i < n; i++ {
		nd, err := core.NewNode(transports[i], core.NodeConfig{
			Detector: core.Config{Self: ident.ID(i), N: n, F: f},
			Window:   20 * time.Millisecond,
			Interval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cells[i].n = nd
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}

	time.Sleep(500 * time.Millisecond) // steady state across real sockets
	for i := 0; i < 2; i++ {
		if s := nodes[i].Suspects(); !s.Empty() {
			t.Logf("transient suspicions at steady state on node %d: %v", i, s)
		}
	}

	nodes[2].Stop()
	transports[2].Close() // process 2 "crashes"

	deadline := time.Now().Add(10 * time.Second)
	for {
		if nodes[0].IsSuspected(2) && nodes[1].IsSuspected(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not suspect the dead endpoint: p0=%v p1=%v",
				nodes[0].Suspects(), nodes[1].Suspects())
		}
		time.Sleep(20 * time.Millisecond)
	}
	nodes[0].Stop()
	nodes[1].Stop()
}

type cell struct{ n *core.Node }

func (c *cell) Deliver(from ident.ID, payload any) {
	if c.n != nil {
		c.n.Deliver(from, payload)
	}
}
