package tcpnet

import (
	"sync"
	"testing"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
)

// collector accumulates deliveries.
type collector struct {
	mu  sync.Mutex
	got []any
	ch  chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 64)} }

func (c *collector) Deliver(_ ident.ID, payload any) {
	c.mu.Lock()
	c.got = append(c.got, payload)
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func TestNewRequiresHandler(t *testing.T) {
	if _, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("missing handler accepted")
	}
}

func TestSendReceive(t *testing.T) {
	colA, colB := newCollector(), newCollector()
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: colA})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0", Handler: colB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	a.Send(1, heartbeat.Message{From: 0, Seq: 42})
	select {
	case <-colB.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("delivery timed out")
	}
	colB.mu.Lock()
	m, ok := colB.got[0].(heartbeat.Message)
	colB.mu.Unlock()
	if !ok || m.Seq != 42 || m.From != 0 {
		t.Fatalf("got %+v", colB.got)
	}

	// Reverse direction (b dials its own connection).
	b.Send(0, heartbeat.Message{From: 1, Seq: 7})
	select {
	case <-colA.ch:
	case <-time.After(3 * time.Second):
		t.Fatal("reverse delivery timed out")
	}
}

func TestSendToUnknownPeerDropped(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send(9, heartbeat.Message{From: 0, Seq: 1}) // no peer registered: no panic
	a.Send(1, "unencodable")                      // unsupported payload: no panic
}

func TestTimerAndClose(t *testing.T) {
	a, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Handler: newCollector()})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{})
	a.After(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
	tm := a.After(time.Hour, func() { t.Error("must not fire") })
	if !tm.Stop() {
		t.Error("Stop pending = false")
	}
	if err := a.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if a.After(time.Millisecond, func() {}).Stop() {
		t.Error("After on closed transport returned live timer")
	}
}

// TestFDOverTCP runs the time-free failure detector across real sockets:
// three processes on localhost; one endpoint is torn down and the survivors
// must suspect it.
func TestFDOverTCP(t *testing.T) {
	const n, f = 3, 1
	transports := make([]*Transport, n)
	nodes := make([]*core.Node, n)
	cells := make([]*cell, n)

	for i := 0; i < n; i++ {
		cells[i] = &cell{}
		tr, err := New(Config{Self: ident.ID(i), ListenAddr: "127.0.0.1:0", Handler: cells[i]})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].AddPeer(ident.ID(j), transports[j].Addr())
			}
		}
	}
	for i := 0; i < n; i++ {
		nd, err := core.NewNode(transports[i], core.NodeConfig{
			Detector: core.Config{Self: ident.ID(i), N: n, F: f},
			Window:   20 * time.Millisecond,
			Interval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cells[i].n = nd
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}

	time.Sleep(500 * time.Millisecond) // steady state across real sockets
	for i := 0; i < 2; i++ {
		if s := nodes[i].Suspects(); !s.Empty() {
			t.Logf("transient suspicions at steady state on node %d: %v", i, s)
		}
	}

	nodes[2].Stop()
	transports[2].Close() // process 2 "crashes"

	deadline := time.Now().Add(10 * time.Second)
	for {
		if nodes[0].IsSuspected(2) && nodes[1].IsSuspected(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not suspect the dead endpoint: p0=%v p1=%v",
				nodes[0].Suspects(), nodes[1].Suspects())
		}
		time.Sleep(20 * time.Millisecond)
	}
	nodes[0].Stop()
	nodes[1].Stop()
}

type cell struct{ n *core.Node }

func (c *cell) Deliver(from ident.ID, payload any) {
	if c.n != nil {
		c.n.Deliver(from, payload)
	}
}
