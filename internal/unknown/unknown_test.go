package unknown

import (
	"math/rand"
	"testing"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/topology"
)

func defaultConfig(g *topology.Graph, f int) ClusterConfig {
	return ClusterConfig{
		Graph:       g,
		F:           f,
		Seed:        1,
		Delay:       netsim.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
		Window:      20 * time.Millisecond,
		Interval:    100 * time.Millisecond,
		Rebroadcast: 500 * time.Millisecond,
	}
}

func TestNewClusterValidation(t *testing.T) {
	g := topology.Circulant(8, 2) // d = 5
	if _, err := NewCluster(ClusterConfig{F: 1, Delay: netsim.Constant{}}); err == nil {
		t.Error("missing graph accepted")
	}
	if _, err := NewCluster(ClusterConfig{Graph: g, F: 1}); err == nil {
		t.Error("missing delay accepted")
	}
	if _, err := NewCluster(ClusterConfig{Graph: g, F: 4, Delay: netsim.Constant{}}); err == nil {
		t.Error("d ≤ f+1 accepted")
	}
}

func TestMembershipDiscovery(t *testing.T) {
	// After a few rounds every node's known set must equal its range
	// (1-hop neighbors + itself): membership is learned, never configured.
	g := topology.Circulant(10, 2)
	c, err := NewCluster(defaultConfig(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(2 * time.Second)
	for i := 0; i < 10; i++ {
		id := ident.ID(i)
		known := c.Node(id).Known()
		want := g.Neighbors(id)
		want.Add(id)
		if !known.Equal(want) {
			t.Errorf("node %v known = %v, want its range %v", id, known, want)
		}
	}
}

func TestCompletenessAcrossHops(t *testing.T) {
	// C_12(1,2): diameter 3. A crash must eventually be suspected by every
	// correct node, including those multiple hops away (gossip inside
	// queries).
	g := topology.Circulant(12, 2) // d = 5
	c, err := NewCluster(defaultConfig(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.CrashAt(0, 3*time.Second)
	c.RunUntil(60 * time.Second)
	for i := 1; i < 12; i++ {
		if !c.Detector(ident.ID(i)).IsSuspected(0) {
			t.Errorf("node %d (multi-hop) does not suspect the crashed node", i)
		}
	}
	// And nobody suspects a live node at the end.
	for i := 1; i < 12; i++ {
		s := c.Detector(ident.ID(i)).Suspects()
		s.Remove(0)
		if !s.Empty() {
			t.Errorf("node %d holds false suspicions %v", i, s)
		}
	}
}

func TestDisconnectReconnectSelfCorrects(t *testing.T) {
	g := topology.Circulant(10, 3) // d = 7
	cfg := defaultConfig(g, 2)
	cfg.Mobility = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.DisconnectAt(0, 5*time.Second, 10*time.Second)
	c.RunUntil(60 * time.Second)

	// During the absence, someone must have suspected the mover.
	if _, ok := c.Log.FirstSuspicion(1, 0); !ok {
		t.Fatal("neighbor never suspected the disconnected node; scenario too weak")
	}
	// Long after reconnection, no suspicions remain in either direction.
	for i := 0; i < 10; i++ {
		if s := c.Detector(ident.ID(i)).Suspects(); !s.Empty() {
			t.Errorf("node %d still suspects %v after reconnection", i, s)
		}
	}
}

func TestRelocateEvictsOldRangeFromKnown(t *testing.T) {
	// Full mobility: node 0 moves from one side of the ring to the other.
	// With the mobility rule, its old neighbors must eventually evict it
	// from their known sets (and vice versa), ending the ping-pong of
	// suspicions.
	g := topology.Circulant(20, 3) // d = 7
	cfg := defaultConfig(g, 2)
	cfg.Mobility = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newNeighbors := ident.SetOf(9, 10, 11, 12, 13, 14)
	c.RelocateAt(0, newNeighbors, 5*time.Second, 10*time.Second)
	c.RunUntil(120 * time.Second)

	// No lingering suspicions anywhere.
	for i := 0; i < 20; i++ {
		if s := c.Detector(ident.ID(i)).Suspects(); !s.Empty() {
			t.Errorf("node %d still suspects %v long after the move", i, s)
		}
	}
	// The mover's known set must now be its new range.
	known := c.Node(0).Known()
	want := newNeighbors.Clone()
	want.Add(0)
	if !known.Equal(want) {
		t.Errorf("mover known = %v, want new range %v", known, want)
	}
	// Old direct neighbors no longer know the mover.
	for _, old := range []ident.ID{1, 2, 3, 17, 18, 19} {
		if c.Node(old).Known().Has(0) {
			t.Errorf("old neighbor %v still knows the mover", old)
		}
	}
}

func TestFCoveringGeneratedTopology(t *testing.T) {
	// End-to-end on a generated geometric f-covering network.
	gen, err := topology.GenerateFCovering(randSource(7), topology.GenConfig{
		N: 25, F: 2, Width: 700, Height: 700, Range: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig(gen, 2)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CrashAt(3, 5*time.Second)
	c.RunUntil(90 * time.Second)
	for i := 0; i < 25; i++ {
		if i == 3 {
			continue
		}
		if !c.Detector(ident.ID(i)).IsSuspected(3) {
			t.Errorf("node %d does not suspect the crashed node on the geometric topology", i)
		}
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestCrashRecoveryOnPartialTopology(t *testing.T) {
	g := topology.Circulant(10, 2) // d = 5
	c, err := NewCluster(defaultConfig(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	victim := ident.ID(0)
	c.CrashAt(victim, 3*time.Second)
	c.RunUntil(10 * time.Second)
	suspecting := 0
	for i := 1; i < g.Len(); i++ {
		if c.Detector(ident.ID(i)).IsSuspected(victim) {
			suspecting++
		}
	}
	if suspecting == 0 {
		t.Fatal("crash never detected on the partial topology")
	}
	// Fresh restart: the node rejoins knowing only itself, re-learns its
	// range from received queries, and the network re-trusts it.
	c.RecoverAt(victim, 12*time.Second, true)
	c.RunUntil(30 * time.Second)
	for i := 1; i < g.Len(); i++ {
		if c.Detector(ident.ID(i)).IsSuspected(victim) {
			t.Errorf("p%d still suspects the recovered p0", i)
		}
	}
	if got := c.Node(victim).Known(); got.Len() < 2 {
		t.Errorf("restarted node re-learned only %v", got)
	}
}
