// Package unknown runs the failure detector in its extension setting: an
// unknown, partially connected, possibly mobile network. It is NOT part of
// the reproduced DSN 2003 paper (known membership, full connectivity) — it
// implements the direction the paper's future work points to, published
// later as INRIA RR-6088: processes initially know only themselves, learn
// their range from received queries, wait for d−f responses (d = range
// density), and flood suspicions/mistakes across hops inside queries; a
// mobility rule prunes remote processes from the known set.
//
// The heavy lifting lives in internal/core (the same state machine serves
// both models); this package wires core nodes onto a topology.Graph over the
// simulated radio network and provides the mobility choreography used by the
// X1/X2 extension experiments.
package unknown

import (
	"errors"
	"fmt"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/des"
	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/topology"
	"asyncfd/internal/trace"
)

// ClusterConfig describes a partial-connectivity deployment.
type ClusterConfig struct {
	// Graph is the communication topology (required). It should be
	// f-covering, i.e. (F+1)-connected, for the ◇S guarantees to hold.
	Graph *topology.Graph
	// F is the crash bound.
	F int
	// D overrides the range density; by default it is computed from Graph.
	// The paper requires d > f+1.
	D int
	// Seed seeds the simulation.
	Seed int64
	// Delay is the per-link latency model (required).
	Delay netsim.DelayModel
	// Window, Interval and Rebroadcast configure the query rounds (see
	// core.NodeConfig). Mobility scenarios need Rebroadcast > 0 so that a
	// node whose query was lost while disconnected re-queries.
	Window      time.Duration
	Interval    time.Duration
	Rebroadcast time.Duration
	// Mobility enables the known-set eviction rule of the extension.
	Mobility bool
	// StartJitter staggers node start times uniformly over [0, StartJitter)
	// (0 = all nodes start at t=0).
	StartJitter time.Duration
}

// Cluster is a running partial-topology deployment.
type Cluster struct {
	Sim   *des.Simulator
	Net   *netsim.Network
	Log   *trace.Log
	Graph *topology.Graph
	D     int

	cfg   ClusterConfig
	nodes []*core.Node
	adj   []ident.Set // current (mutable) neighborhoods
}

type cell struct{ n *core.Node }

func (c *cell) Deliver(from ident.ID, payload any) {
	if c.n != nil {
		c.n.Deliver(from, payload)
	}
}

// NewCluster builds and starts one detector per vertex of the graph.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Graph == nil {
		return nil, errors.New("unknown: ClusterConfig.Graph is required")
	}
	if cfg.Delay == nil {
		return nil, errors.New("unknown: ClusterConfig.Delay is required")
	}
	n := cfg.Graph.Len()
	d := cfg.D
	if d == 0 {
		d = cfg.Graph.RangeDensity()
	}
	if d <= cfg.F+1 {
		return nil, fmt.Errorf("unknown: need d > f+1, got d=%d f=%d", d, cfg.F)
	}
	c := &Cluster{
		Sim:   des.New(cfg.Seed),
		Log:   &trace.Log{},
		Graph: cfg.Graph,
		D:     d,
		cfg:   cfg,
		nodes: make([]*core.Node, n),
		adj:   make([]ident.Set, n),
	}
	c.Net = netsim.New(c.Sim, netsim.Config{Delay: cfg.Delay})
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		cl := &cell{}
		env := c.Net.AddNode(id, cl)
		nd, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{
				Self:       id,
				Membership: core.UnknownMembership,
				F:          cfg.F,
				D:          d,
				Mobility:   cfg.Mobility,
			},
			Window:      cfg.Window,
			Interval:    cfg.Interval,
			Rebroadcast: cfg.Rebroadcast,
			Sink:        c.Log,
		})
		if err != nil {
			return nil, err
		}
		cl.n = nd
		c.nodes[i] = nd
		c.adj[i] = cfg.Graph.Neighbors(id)
		c.Net.SetNeighbors(id, c.adj[i])
	}
	for _, nd := range c.nodes {
		nd := nd
		var jitter time.Duration
		if cfg.StartJitter > 0 {
			jitter = time.Duration(c.Sim.Rand().Int63n(int64(cfg.StartJitter)))
		}
		c.Sim.At(jitter, nd.Start)
	}
	return c, nil
}

// Node returns the detector runtime of id.
func (c *Cluster) Node(id ident.ID) *core.Node { return c.nodes[id] }

// Detector returns the oracle of id.
func (c *Cluster) Detector(id ident.ID) fd.Detector { return c.nodes[id] }

// RunUntil advances virtual time.
func (c *Cluster) RunUntil(t time.Duration) { c.Sim.RunUntil(t) }

// CrashAt schedules a crash-stop failure.
func (c *Cluster) CrashAt(id ident.ID, at time.Duration) {
	c.Sim.At(at, func() { c.Net.Crash(id) })
}

// RecoverAt schedules a crash-recovery: the process rejoins the network at
// time at and restarts its detector with fresh state (the extension's model
// of a node that reboots knowing only itself) or with the state persisted at
// the crash.
func (c *Cluster) RecoverAt(id ident.ID, at time.Duration, fresh bool) {
	c.Sim.At(at, func() {
		c.Net.Recover(id)
		if int(id) < len(c.nodes) {
			c.nodes[id].Restart(fresh)
		}
	})
}

// setNeighborsNow rewrites id's neighborhood (both directions) immediately.
func (c *Cluster) setNeighborsNow(id ident.ID, neighbors ident.Set) {
	old := c.adj[id]
	old.ForEach(func(o ident.ID) bool {
		if !neighbors.Has(o) {
			c.adj[o].Remove(id)
			c.Net.SetNeighbors(o, c.adj[o])
		}
		return true
	})
	neighbors.ForEach(func(o ident.ID) bool {
		c.adj[o].Add(id)
		c.Net.SetNeighbors(o, c.adj[o])
		return true
	})
	c.adj[id] = neighbors.Clone()
	c.adj[id].Remove(id)
	c.Net.SetNeighbors(id, c.adj[id])
}

// DisconnectAt separates id from the network during [from, to): a moving
// node that later reconnects at the same place. While separated it sends and
// receives nothing (the paper's model: the node stops interacting but keeps
// its state).
func (c *Cluster) DisconnectAt(id ident.ID, from, to time.Duration) {
	saved := ident.Set{}
	c.Sim.At(from, func() {
		saved = c.adj[id].Clone()
		c.setNeighborsNow(id, ident.Set{})
	})
	c.Sim.At(to, func() {
		c.setNeighborsNow(id, saved)
	})
}

// RelocateAt disconnects id at time from and reattaches it at time to with a
// brand-new neighborhood: the full mobility scenario of the extension (the
// node "moves to another range").
func (c *Cluster) RelocateAt(id ident.ID, newNeighbors ident.Set, from, to time.Duration) {
	c.Sim.At(from, func() { c.setNeighborsNow(id, ident.Set{}) })
	c.Sim.At(to, func() { c.setNeighborsNow(id, newNeighbors) })
}
