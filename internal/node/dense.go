package node

import (
	"slices"

	"asyncfd/internal/ident"
)

// denseLimit bounds the IDs the direct-indexed backing array may grow to
// cover. The simulation harness numbers processes 0..n-1, so in practice
// every entry lands in the array; IDs at or above the limit (or negative
// ones) fall back to a hash map so arbitrary identities still work without
// unbounded memory.
const denseLimit = 1 << 14

// DenseMap maps ident.ID to T, optimized for the dense non-negative IDs the
// simulation harness assigns: small IDs index a backing slice directly,
// which keeps the detectors' per-delivery peer lookup off the hash path —
// map hashing was a measurable slice of large-n sweep time. The zero value
// is ready to use.
//
// The zero value of T means "absent": Get returns it for missing keys, and
// callers must not store it (detectors store non-nil pointers or timer
// handles, so the constraint costs nothing).
type DenseMap[T comparable] struct {
	dense  []T
	sparse map[ident.ID]T
	count  int
}

// Get returns the value stored for id, or T's zero value if none.
func (m *DenseMap[T]) Get(id ident.ID) T {
	if i := int(id); i >= 0 && i < len(m.dense) {
		return m.dense[i]
	}
	return m.sparse[id]
}

// Put stores v for id, replacing any previous value. Storing T's zero value
// is equivalent to deleting the entry.
func (m *DenseMap[T]) Put(id ident.ID, v T) {
	var zero T
	if i := int(id); i >= 0 && i < denseLimit {
		if i >= len(m.dense) {
			grown := make([]T, i+1)
			copy(grown, m.dense)
			m.dense = grown
		}
		if (m.dense[i] == zero) != (v == zero) {
			if v == zero {
				m.count--
			} else {
				m.count++
			}
		}
		m.dense[i] = v
		return
	}
	if (m.sparse[id] == zero) != (v == zero) {
		if v == zero {
			m.count--
		} else {
			m.count++
		}
	}
	if v == zero {
		delete(m.sparse, id)
		return
	}
	if m.sparse == nil {
		m.sparse = make(map[ident.ID]T)
	}
	m.sparse[id] = v
}

// Len returns the number of present entries.
func (m *DenseMap[T]) Len() int { return m.count }

// ForEach visits every present entry in ascending ID order (deterministic,
// unlike map iteration) until fn returns false.
func (m *DenseMap[T]) ForEach(fn func(id ident.ID, v T) bool) {
	var zero T
	for i, v := range m.dense {
		if v == zero {
			continue
		}
		if !fn(ident.ID(i), v) {
			return
		}
	}
	if len(m.sparse) == 0 {
		return
	}
	ids := make([]ident.ID, 0, len(m.sparse))
	for id := range m.sparse {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		if !fn(id, m.sparse[id]) {
			return
		}
	}
}
