package node

import (
	"testing"

	"asyncfd/internal/ident"
)

func TestDenseMapDenseAndSparse(t *testing.T) {
	var m DenseMap[*struct{ v int }]
	type box = struct{ v int }
	small := &box{1}
	big := &box{2}
	m.Put(3, small)
	m.Put(denseLimit+5, big) // lands in the sparse fallback
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.Get(3) != small || m.Get(denseLimit+5) != big {
		t.Fatal("Get returned wrong values")
	}
	if m.Get(0) != nil || m.Get(4) != nil || m.Get(denseLimit+6) != nil {
		t.Fatal("Get of absent IDs must return the zero value")
	}
}

func TestDenseMapOverwriteAndDelete(t *testing.T) {
	var m DenseMap[*struct{}]
	a, b := &struct{}{}, &struct{}{}
	for _, id := range []ident.ID{7, denseLimit + 1} {
		m.Put(id, a)
		m.Put(id, b) // overwrite must not double-count
		if m.Len() != 1 {
			t.Fatalf("Len after overwrite of %d = %d, want 1", id, m.Len())
		}
		if m.Get(id) != b {
			t.Fatalf("Get(%d) did not see the overwrite", id)
		}
		m.Put(id, nil) // storing the zero value deletes
		if m.Len() != 0 || m.Get(id) != nil {
			t.Fatalf("Put(%d, zero) did not delete (Len=%d)", id, m.Len())
		}
	}
}

func TestDenseMapForEachOrderAndStop(t *testing.T) {
	var m DenseMap[*struct{}]
	v := &struct{}{}
	for _, id := range []ident.ID{denseLimit + 9, 4, 0, denseLimit + 2, 17} {
		m.Put(id, v)
	}
	var got []ident.ID
	m.ForEach(func(id ident.ID, _ *struct{}) bool {
		got = append(got, id)
		return true
	})
	want := []ident.ID{0, 4, 17, denseLimit + 2, denseLimit + 9}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want ascending %v", got, want)
		}
	}
	n := 0
	m.ForEach(func(ident.ID, *struct{}) bool {
		n++
		return n < 2 // early stop
	})
	if n != 2 {
		t.Fatalf("ForEach ignored early stop: visited %d", n)
	}
}
