package node

import (
	"testing"
	"time"

	"asyncfd/internal/ident"
)

func TestHandlerFuncDelivers(t *testing.T) {
	var gotFrom ident.ID
	var gotPayload any
	h := HandlerFunc(func(from ident.ID, payload any) {
		gotFrom, gotPayload = from, payload
	})
	var asHandler Handler = h // HandlerFunc must satisfy Handler
	asHandler.Deliver(3, "ping")
	if gotFrom != 3 || gotPayload != "ping" {
		t.Errorf("Deliver(3, ping) recorded (%v, %v)", gotFrom, gotPayload)
	}
}

// fakeEnv is a minimal in-test Env: it runs After callbacks synchronously
// and records traffic. It pins down the Env contract shape the runtimes
// (netsim, livenet) must provide.
type fakeEnv struct {
	id        ident.ID
	now       time.Duration
	sent      map[ident.ID]any
	broadcast []any
}

type fakeTimer struct{ stopped bool }

func (f *fakeTimer) Stop() bool {
	was := !f.stopped
	f.stopped = true
	return was
}

func (e *fakeEnv) Self() ident.ID     { return e.id }
func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) After(d time.Duration, fn func()) Timer {
	e.now += d
	fn()
	return &fakeTimer{}
}
func (e *fakeEnv) Send(to ident.ID, payload any) {
	if e.sent == nil {
		e.sent = make(map[ident.ID]any)
	}
	e.sent[to] = payload
}
func (e *fakeEnv) Broadcast(payload any) { e.broadcast = append(e.broadcast, payload) }

func TestEnvContract(t *testing.T) {
	var env Env = &fakeEnv{id: 7}
	if env.Self() != 7 {
		t.Errorf("Self = %v", env.Self())
	}
	ran := false
	tm := env.After(time.Second, func() { ran = true })
	if !ran {
		t.Error("After callback not run")
	}
	if env.Now() != time.Second {
		t.Errorf("Now = %v after 1s timer", env.Now())
	}
	if !tm.Stop() {
		t.Error("first Stop = false")
	}
	if tm.Stop() {
		t.Error("second Stop = true")
	}
	env.Send(1, "a")
	env.Broadcast("b")
	fe := env.(*fakeEnv)
	if fe.sent[1] != "a" || len(fe.broadcast) != 1 {
		t.Error("Send/Broadcast not recorded")
	}
}
