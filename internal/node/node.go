// Package node defines the narrow runtime environment a protocol node
// executes in. The same protocol implementations (query–response detector,
// heartbeat, φ-accrual, Chen NFD-E, consensus) run unchanged on the
// deterministic simulator (internal/netsim) and on the real-time
// goroutine/channel runtime (internal/livenet), because both provide this
// interface.
package node

import (
	"time"

	"asyncfd/internal/ident"
)

// Timer is a cancelable scheduled callback.
type Timer interface {
	// Stop cancels the callback if it has not fired, reporting whether it
	// was still pending.
	Stop() bool
}

// Env is the world as seen by one process: its identity, a clock, a
// scheduler and an unreliable asynchronous network. Message sending never
// blocks and never fails synchronously; delivery order and timing are
// arbitrary. All callbacks (scheduled functions and Deliver) are serialized
// per process by the runtime, so node implementations need no locking for
// state touched only from callbacks.
type Env interface {
	// Self returns this process's identity.
	Self() ident.ID
	// Now returns the current time (virtual in simulation, wall-clock
	// offset in live runs). Protocol logic of the time-free detector must
	// not consult it — it exists for timer-based baselines and metrics.
	Now() time.Duration
	// After schedules fn to run after d, subject to the process being
	// alive when it fires.
	After(d time.Duration, fn func()) Timer
	// Send transmits payload to one process.
	Send(to ident.ID, payload any)
	// Broadcast transmits payload to every neighbor (every other process
	// in a fully connected system). The sender does not receive its own
	// broadcast; protocols that need self-delivery handle it internally.
	Broadcast(payload any)
}

// Cloneable is the checkpoint contract a detector runtime implements to
// support warmup forking (see internal/des's Snapshot/Restore): Snapshot
// deep-copies the runtime's mutable state — per-pair estimator windows,
// suspicion sets, pending timer handles — into an opaque value, and Restore
// rolls the SAME runtime instance back to it, in place. In-place matters:
// scheduled closures and in-flight deliveries captured the live instance, so
// replication rewinds it rather than building a second one. A snapshot must
// survive any number of Restores, and timer handles it carries stay valid
// because the kernel snapshot rewinds slot generations in lockstep.
type Cloneable interface {
	// Snapshot captures the runtime's mutable state.
	Snapshot() any
	// Restore rolls the runtime back to a value Snapshot returned.
	Restore(snapshot any)
}

// Handler consumes messages delivered to a process.
type Handler interface {
	// Deliver hands the process a message previously sent to it. It runs
	// on the runtime's callback context; implementations must not block.
	Deliver(from ident.ID, payload any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ident.ID, payload any)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from ident.ID, payload any) { f(from, payload) }
