package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	tests := []struct {
		id   ID
		want string
	}{
		{0, "p0"},
		{7, "p7"},
		{41, "p41"},
		{Nil, "p⊥"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("ID(%d).String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestIDValid(t *testing.T) {
	if Nil.Valid() {
		t.Error("Nil.Valid() = true, want false")
	}
	if !ID(0).Valid() {
		t.Error("ID(0).Valid() = false, want true")
	}
	if !ID(100).Valid() {
		t.Error("ID(100).Valid() = false, want true")
	}
}

func TestSetZeroValue(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero Set is not empty")
	}
	if s.Has(0) {
		t.Fatal("zero Set reports element 0")
	}
	if s.Len() != 0 {
		t.Fatalf("zero Set Len = %d, want 0", s.Len())
	}
	s.Add(5)
	if !s.Has(5) || s.Len() != 1 {
		t.Fatalf("after Add(5): Has=%v Len=%d", s.Has(5), s.Len())
	}
}

func TestSetAddRemoveHas(t *testing.T) {
	s := NewSet(10)
	ids := []ID{0, 3, 9, 63, 64, 65, 200}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Has(id) {
			t.Errorf("Has(%v) = false after Add", id)
		}
	}
	if s.Len() != len(ids) {
		t.Errorf("Len = %d, want %d", s.Len(), len(ids))
	}
	s.Remove(63)
	s.Remove(0)
	if s.Has(63) || s.Has(0) {
		t.Error("Remove did not delete elements")
	}
	if s.Len() != len(ids)-2 {
		t.Errorf("Len after remove = %d, want %d", s.Len(), len(ids)-2)
	}
	// Removing absent and negative ids is a no-op.
	s.Remove(1000)
	s.Remove(Nil)
	if s.Len() != len(ids)-2 {
		t.Error("Remove of absent element changed Len")
	}
}

func TestSetAddNilNoop(t *testing.T) {
	var s Set
	s.Add(Nil)
	if !s.Empty() {
		t.Error("Add(Nil) inserted an element")
	}
	if s.Has(Nil) {
		t.Error("Has(Nil) = true")
	}
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 130} {
		s := FullSet(n)
		if s.Len() != n {
			t.Errorf("FullSet(%d).Len() = %d", n, s.Len())
		}
		for i := 0; i < n; i++ {
			if !s.Has(ID(i)) {
				t.Errorf("FullSet(%d) missing %d", n, i)
			}
		}
		if s.Has(ID(n)) {
			t.Errorf("FullSet(%d) contains %d", n, n)
		}
	}
}

func TestSetOf(t *testing.T) {
	s := SetOf(4, 1, 4, 9)
	if s.Len() != 3 {
		t.Errorf("SetOf Len = %d, want 3 (duplicates collapse)", s.Len())
	}
	want := []ID{1, 4, 9}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a := SetOf(1, 2, 3, 70)
	b := SetOf(3, 4, 70, 100)

	u := a.Clone()
	u.Union(b)
	for _, id := range []ID{1, 2, 3, 4, 70, 100} {
		if !u.Has(id) {
			t.Errorf("union missing %v", id)
		}
	}
	if u.Len() != 6 {
		t.Errorf("union Len = %d, want 6", u.Len())
	}

	i := a.Clone()
	i.Intersect(b)
	if i.Len() != 2 || !i.Has(3) || !i.Has(70) {
		t.Errorf("intersect = %v, want {p3, p70}", i)
	}

	d := a.Clone()
	d.Subtract(b)
	if d.Len() != 2 || !d.Has(1) || !d.Has(2) {
		t.Errorf("subtract = %v, want {p1, p2}", d)
	}
}

func TestSetIntersectShorterOther(t *testing.T) {
	a := SetOf(1, 200) // two words
	b := SetOf(1)      // one word
	a.Intersect(b)
	if a.Len() != 1 || !a.Has(1) || a.Has(200) {
		t.Errorf("intersect with shorter set = %v, want {p1}", a)
	}
}

func TestSetEqual(t *testing.T) {
	a := SetOf(1, 64)
	b := SetOf(1, 64)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("equal sets reported unequal")
	}
	b.Remove(64) // b now has trailing zero word
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
	c := SetOf(1)
	if !b.Equal(c) || !c.Equal(b) {
		t.Error("sets with different capacity but same elements reported unequal")
	}
	var zero Set
	empty := NewSet(100)
	if !zero.Equal(empty) || !empty.Equal(zero) {
		t.Error("empty sets with different capacities reported unequal")
	}
}

func TestSetContains(t *testing.T) {
	a := SetOf(1, 2, 3, 99)
	if !a.Contains(SetOf(1, 3)) {
		t.Error("Contains subset = false")
	}
	if !a.Contains(Set{}) {
		t.Error("Contains empty = false")
	}
	if a.Contains(SetOf(1, 4)) {
		t.Error("Contains non-subset = true")
	}
	if (Set{}).Contains(SetOf(200)) {
		t.Error("empty Contains {200} = true")
	}
	if !a.Contains(a) {
		t.Error("Contains self = false")
	}
}

func TestSetForEachOrderAndStop(t *testing.T) {
	s := SetOf(5, 1, 200, 64)
	var got []ID
	s.ForEach(func(id ID) bool {
		got = append(got, id)
		return true
	})
	want := []ID{1, 5, 64, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
	count := 0
	s.ForEach(func(ID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach early stop visited %d, want 2", count)
	}
}

func TestSetClear(t *testing.T) {
	s := SetOf(1, 2, 3)
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left elements")
	}
	s.Add(2)
	if s.Len() != 1 {
		t.Error("set unusable after Clear")
	}
}

func TestSetCloneIndependence(t *testing.T) {
	a := SetOf(1, 2)
	b := a.Clone()
	b.Add(3)
	b.Remove(1)
	if !a.Has(1) || a.Has(3) {
		t.Error("Clone shares storage with original")
	}
}

func TestSetString(t *testing.T) {
	if got := SetOf(2, 0).String(); got != "{p0, p2}" {
		t.Errorf("String = %q, want {p0, p2}", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{5, 1, 3}
	SortIDs(ids)
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("SortIDs = %v", ids)
	}
}

// randomIDs produces a bounded random slice of valid IDs for property tests.
func randomIDs(r *rand.Rand) []ID {
	n := r.Intn(40)
	out := make([]ID, n)
	for i := range out {
		out[i] = ID(r.Intn(256))
	}
	return out
}

func TestQuickSetModelConformance(t *testing.T) {
	// The bitset must behave exactly like a map[ID]bool model under a random
	// sequence of adds and removes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Set
		model := make(map[ID]bool)
		for i := 0; i < 200; i++ {
			id := ID(r.Intn(300))
			if r.Intn(2) == 0 {
				s.Add(id)
				model[id] = true
			} else {
				s.Remove(id)
				delete(model, id)
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for id := range model {
			if !s.Has(id) {
				return false
			}
		}
		ok := true
		s.ForEach(func(id ID) bool {
			if !model[id] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := SetOf(randomIDs(r)...), SetOf(randomIDs(r)...)
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| + |A ∩ B| == |A| + |B|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := SetOf(randomIDs(r)...), SetOf(randomIDs(r)...)
		u := a.Clone()
		u.Union(b)
		i := a.Clone()
		i.Intersect(b)
		return u.Len()+i.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractDisjoint(t *testing.T) {
	// (A \ B) ∩ B == ∅ and (A \ B) ∪ (A ∩ B) == A
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := SetOf(randomIDs(r)...), SetOf(randomIDs(r)...)
		diff := a.Clone()
		diff.Subtract(b)
		check := diff.Clone()
		check.Intersect(b)
		if !check.Empty() {
			return false
		}
		inter := a.Clone()
		inter.Intersect(b)
		recon := diff.Clone()
		recon.Union(inter)
		return recon.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAdd(b *testing.B) {
	s := NewSet(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(ID(i % 1024))
	}
}

func BenchmarkSetForEach(b *testing.B) {
	s := FullSet(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEach(func(ID) bool { n++; return true })
	}
}
