// Package ident provides process identities and dense process sets.
//
// The protocol of the paper indexes processes p_1..p_n. We represent a
// process identity as a small non-negative integer (ID) and provide Set, a
// bitset keyed by ID, which is the workhorse collection for rec_from, known
// and membership bookkeeping. Set is a value type whose zero value is the
// empty set; mutating methods use pointer receivers and grow storage on
// demand.
package ident

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// ID identifies a process. IDs are dense, non-negative integers assigned at
// cluster construction time. The zero ID is a valid process identity; Nil
// marks the absence of a process.
type ID int32

// Nil is the absent process identity.
const Nil ID = -1

// String implements fmt.Stringer, rendering the identity as the paper does
// (p0, p1, ...).
func (id ID) String() string {
	if id == Nil {
		return "p⊥"
	}
	return fmt.Sprintf("p%d", int32(id))
}

// Valid reports whether the identity denotes an actual process.
func (id ID) Valid() bool { return id >= 0 }

const wordBits = 64

// Set is a dense bitset of process identities. The zero value is an empty
// set ready for use. Set is not safe for concurrent mutation.
type Set struct {
	words []uint64
}

// NewSet returns an empty set with capacity for ids in [0, n).
func NewSet(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FullSet returns the set {0, 1, ..., n-1}.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(ID(i))
	}
	return s
}

// SetOf builds a set containing exactly the given ids.
func SetOf(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id into the set. Adding Nil or a negative id is a no-op.
func (s *Set) Add(id ID) {
	if id < 0 {
		return
	}
	w := int(id) / wordBits
	s.grow(w)
	s.words[w] |= 1 << (uint(id) % wordBits)
}

// Remove deletes id from the set if present.
func (s *Set) Remove(id ID) {
	if id < 0 {
		return
	}
	w := int(id) / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(id) % wordBits)
	}
}

// Has reports whether id is in the set.
func (s Set) Has(id ID) bool {
	if id < 0 {
		return false
	}
	w := int(id) / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%wordBits)) != 0
}

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := Set{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Union adds every element of other to s.
func (s *Set) Union(other Set) {
	s.grow(len(other.words) - 1)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Intersect removes from s every element not in other.
func (s *Set) Intersect(other Set) {
	for i := range s.words {
		if i < len(other.words) {
			s.words[i] &= other.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Subtract removes from s every element of other.
func (s *Set) Subtract(other Set) {
	for i := range s.words {
		if i < len(other.words) {
			s.words[i] &^= other.words[i]
		}
	}
}

// Equal reports whether both sets contain exactly the same elements.
func (s Set) Equal(other Set) bool {
	long, short := s.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Contains reports whether every element of other is also in s.
func (s Set) Contains(other Set) bool {
	for i, w := range other.words {
		if w == 0 {
			continue
		}
		if i >= len(s.words) || w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. If fn returns false
// iteration stops.
func (s Set) ForEach(fn func(ID) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(ID(i*wordBits + b)) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// IDs returns the elements in ascending order.
func (s Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	s.ForEach(func(id ID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// String renders the set like {p0, p3, p7}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(id.String())
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// SortIDs sorts a slice of identities in ascending order, in place, and
// returns it for convenience.
func SortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
