package heartbeat

import (
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	base := Config{Self: 0, Interval: time.Second, Timeout: 2 * time.Second}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Self: ident.Nil, Interval: time.Second, Timeout: time.Second},
		{Self: 0, Interval: 0, Timeout: time.Second},
		{Self: 0, Interval: time.Second, Timeout: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGossipConfigValidate(t *testing.T) {
	good := GossipConfig{Self: 0, N: 3, Interval: time.Second, Timeout: 2 * time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid gossip config rejected: %v", err)
	}
	bad := []GossipConfig{
		{Self: 5, N: 3, Interval: time.Second, Timeout: time.Second},
		{Self: 0, N: 1, Interval: time.Second, Timeout: time.Second},
		{Self: 0, N: 3, Interval: 0, Timeout: time.Second},
		{Self: 0, N: 3, Interval: time.Second, Timeout: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad gossip config %d accepted", i)
		}
	}
}

type hbCluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	nodes []*Node
	log   *trace.Log
}

func newHBCluster(t *testing.T, n int, delay netsim.DelayModel, interval, timeout time.Duration) *hbCluster {
	t.Helper()
	c := &hbCluster{sim: des.New(1), log: &trace.Log{}}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	peers := ident.FullSet(n)
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		var nd *Node
		env := c.net.AddNode(id, proxy{&nd})
		var err error
		nd, err = NewNode(env, Config{Self: id, Peers: peers, Interval: interval, Timeout: timeout, Sink: c.log})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = nd
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

type proxy struct{ n **Node }

func (p proxy) Deliver(from ident.ID, payload any) {
	if *p.n != nil {
		(*p.n).Deliver(from, payload)
	}
}

func TestHeartbeatNoFalseSuspicionsStableNet(t *testing.T) {
	c := newHBCluster(t, 4, netsim.Constant{D: 5 * time.Millisecond}, time.Second, 2500*time.Millisecond)
	c.sim.RunUntil(30 * time.Second)
	if c.log.Len() != 0 {
		t.Errorf("false suspicions on a stable network:\n%s", c.log)
	}
}

func TestHeartbeatDetectsCrashWithinTimeout(t *testing.T) {
	const (
		interval = time.Second
		timeout  = 2 * time.Second
		crashAt  = 5 * time.Second
	)
	c := newHBCluster(t, 4, netsim.Constant{D: time.Millisecond}, interval, timeout)
	c.sim.At(crashAt, func() { c.net.Crash(3) })
	c.sim.RunUntil(20 * time.Second)

	for i := 0; i < 3; i++ {
		at, ok := c.log.FirstSuspicion(ident.ID(i), 3)
		if !ok {
			t.Fatalf("node %d never suspected the crashed process", i)
		}
		// Detection happens between Θ and Θ+Δ after the last heartbeat,
		// which itself is at most Δ before the crash.
		lo, hi := crashAt, crashAt+timeout+interval+10*time.Millisecond
		if at < lo || at > hi {
			t.Errorf("node %d detected at %v, want within (%v, %v]", i, at, lo, hi)
		}
		if !c.nodes[i].IsSuspected(3) {
			t.Errorf("node %d suspicion not permanent", i)
		}
	}
}

func TestHeartbeatRestoresAfterDisturbance(t *testing.T) {
	delay := netsim.Disturbance{
		Base:   netsim.Constant{D: time.Millisecond},
		Nodes:  ident.SetOf(2),
		Start:  5 * time.Second,
		End:    10 * time.Second,
		Factor: 10000, // ≈10s delays: heartbeats outrun the timeout
	}
	c := newHBCluster(t, 3, delay, time.Second, 2*time.Second)
	c.sim.RunUntil(40 * time.Second)

	suspected := false
	for _, e := range c.log.Events() {
		if e.Subject == 2 && e.Suspected {
			suspected = true
		}
	}
	if !suspected {
		t.Fatal("disturbance did not trigger suspicion; scenario too weak")
	}
	for i := 0; i < 2; i++ {
		if c.nodes[i].IsSuspected(2) {
			t.Errorf("node %d did not restore p2 after the disturbance", i)
		}
	}
}

func TestHeartbeatStop(t *testing.T) {
	c := newHBCluster(t, 3, netsim.Constant{D: time.Millisecond}, 100*time.Millisecond, 300*time.Millisecond)
	c.sim.RunUntil(time.Second)
	c.nodes[0].Stop()
	before := c.net.Stats().Sent
	c.sim.RunUntil(1100 * time.Millisecond) // node 0 silent now
	// Only nodes 1 and 2 heartbeat in this window (plus any in-flight).
	after := c.net.Stats().Sent
	perTick := int64(2 * 2) // 2 nodes × 2 receivers
	if after-before > perTick+2 {
		t.Errorf("stopped node still sending: %d messages in one tick window", after-before)
	}
	// Stopped monitor raises no new suspicions either.
	c.sim.RunUntil(5 * time.Second)
	if c.nodes[0].IsSuspected(1) || c.nodes[0].IsSuspected(2) {
		t.Error("stopped node changed suspicion state")
	}
}

func TestHeartbeatIgnoresForeignPayloadAndStrangers(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	var nd *Node
	env := net.AddNode(0, proxy{&nd})
	stranger := net.AddNode(9, proxy{new(*Node)})
	var err error
	nd, err = NewNode(env, Config{Self: 0, Peers: ident.SetOf(0, 1), Interval: time.Second, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	stranger.Send(0, Message{From: 9, Seq: 1}) // not a peer
	stranger.Send(0, "garbage")
	sim.RunUntil(time.Second)
	if nd.IsSuspected(9) {
		t.Error("non-peer entered suspicion state")
	}
}

// --- Gossip variant ---

// lineTopology wires n gossip nodes in a path 0–1–2–…–(n−1).
func lineTopology(t *testing.T, n int, interval, timeout time.Duration) (*des.Simulator, *netsim.Network, []*GossipNode, *trace.Log) {
	t.Helper()
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{D: time.Millisecond}})
	log := &trace.Log{}
	nodes := make([]*GossipNode, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		var g *GossipNode
		env := net.AddNode(id, gproxy{&g})
		var err error
		g, err = NewGossipNode(env, GossipConfig{Self: id, N: n, Interval: interval, Timeout: timeout, Sink: log})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = g
	}
	for i := 0; i < n; i++ {
		var nb ident.Set
		if i > 0 {
			nb.Add(ident.ID(i - 1))
		}
		if i < n-1 {
			nb.Add(ident.ID(i + 1))
		}
		net.SetNeighbors(ident.ID(i), nb)
	}
	for _, g := range nodes {
		g.Start()
	}
	return sim, net, nodes, log
}

type gproxy struct{ g **GossipNode }

func (p gproxy) Deliver(from ident.ID, payload any) {
	if *p.g != nil {
		(*p.g).Deliver(from, payload)
	}
}

func TestGossipPropagatesAcrossHops(t *testing.T) {
	sim, _, nodes, log := lineTopology(t, 5, 500*time.Millisecond, 5*time.Second)
	sim.RunUntil(30 * time.Second)
	if log.Len() != 0 {
		t.Errorf("false suspicions on a stable line: \n%s", log)
	}
	// Node 0's counter must have reached node 4 through three hops.
	v := nodes[4].Vector()
	if v[0] == 0 {
		t.Error("heartbeat counter of node 0 never reached node 4")
	}
}

func TestGossipDetectsCrashOnLine(t *testing.T) {
	sim, net, nodes, log := lineTopology(t, 5, 500*time.Millisecond, 4*time.Second)
	sim.At(10*time.Second, func() { net.Crash(0) })
	sim.RunUntil(60 * time.Second)
	for i := 1; i < 5; i++ {
		if !nodes[i].IsSuspected(0) {
			t.Errorf("node %d does not suspect the crashed end of the line", i)
		}
		if at, ok := log.FirstSuspicion(ident.ID(i), 0); !ok || at < 10*time.Second {
			t.Errorf("node %d suspicion time = %v, ok=%v", i, at, ok)
		}
	}
	// The crash of an end node must not contaminate the others.
	for i := 1; i < 5; i++ {
		for j := 1; j < 5; j++ {
			if i != j && nodes[i].IsSuspected(ident.ID(j)) {
				t.Errorf("node %d wrongly suspects live node %d", i, j)
			}
		}
	}
}

func TestGossipRestore(t *testing.T) {
	// Disconnect node 4 from the line for a while; it must be suspected and
	// then restored once reconnected.
	sim, net, nodes, _ := lineTopology(t, 5, 500*time.Millisecond, 3*time.Second)
	blocked := false
	net.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
		if blocked && (from == 4 || to == 4) {
			return false
		}
		return true
	})
	sim.At(10*time.Second, func() { blocked = true })
	sim.At(20*time.Second, func() { blocked = false })
	sim.RunUntil(60 * time.Second)
	for i := 0; i < 4; i++ {
		if nodes[i].IsSuspected(4) {
			t.Errorf("node %d still suspects reconnected node 4", i)
		}
	}
	if nodes[4].IsSuspected(3) {
		t.Error("node 4 still suspects its neighbor after reconnection")
	}
}

func TestGossipIgnoresShortAndForeignVectors(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	var g *GossipNode
	env := net.AddNode(0, gproxy{&g})
	other := net.AddNode(1, gproxy{new(*GossipNode)})
	var err error
	g, err = NewGossipNode(env, GossipConfig{Self: 0, N: 3, Interval: time.Second, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	other.Send(0, VectorMessage{From: 1, Vector: []uint64{0, 7}})          // short vector
	other.Send(0, VectorMessage{From: 1, Vector: []uint64{0, 1, 2, 3, 4}}) // long vector
	other.Send(0, 42)                                                      // foreign payload
	sim.RunUntil(time.Second)
	v := g.Vector()
	if v[1] != 7 || v[2] != 2 {
		t.Errorf("vector merge = %v, want [_,7,2]", v)
	}
}

func BenchmarkHeartbeatTick(b *testing.B) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{D: time.Millisecond}})
	peers := ident.FullSet(16)
	nodes := make([]*Node, 16)
	for i := 0; i < 16; i++ {
		id := ident.ID(i)
		var nd *Node
		env := net.AddNode(id, proxy{&nd})
		var err error
		nd, err = NewNode(env, Config{Self: id, Peers: peers, Interval: 100 * time.Millisecond, Timeout: 300 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.RunUntil(sim.Now() + 100*time.Millisecond)
	}
}

func TestRestartFreshClearsSuspicionsAndResumes(t *testing.T) {
	c := newHBCluster(t, 3, netsim.Constant{D: time.Millisecond}, time.Second, 2*time.Second)
	// p2 crashes; p0 and p1 suspect it.
	c.sim.At(5*time.Second, func() { c.net.Crash(2) })
	c.sim.RunUntil(10 * time.Second)
	if !c.nodes[0].IsSuspected(2) {
		t.Fatal("crash not detected")
	}
	c.sim.At(12*time.Second, func() {
		c.net.Recover(2)
		c.nodes[2].Restart(true)
	})
	c.sim.RunUntil(20 * time.Second)
	if c.nodes[0].IsSuspected(2) || c.nodes[1].IsSuspected(2) {
		t.Error("restarted process still suspected after its heartbeats resumed")
	}
	if n := c.nodes[2].Suspects().Len(); n != 0 {
		t.Errorf("fresh restart kept %d suspicions", n)
	}
}

func TestRestartFreshEmitsRestores(t *testing.T) {
	// p0 suspects the crashed p1; when p0 itself crash-recovers with fresh
	// state, its oracle output transitions p1 back to trusted and the trace
	// must record that restore.
	c := newHBCluster(t, 3, netsim.Constant{D: time.Millisecond}, time.Second, 2*time.Second)
	c.sim.At(2*time.Second, func() { c.net.Crash(1) })
	c.sim.RunUntil(6 * time.Second)
	if !c.nodes[0].IsSuspected(1) {
		t.Fatal("p0 does not suspect the crashed p1")
	}
	c.sim.At(7*time.Second, func() {
		c.net.Crash(0)
		c.net.Recover(0)
		c.nodes[0].Restart(true)
	})
	c.sim.RunUntil(7500 * time.Millisecond)
	if c.nodes[0].IsSuspected(1) {
		t.Error("fresh restart kept the suspicion of p1")
	}
	found := false
	for _, e := range c.log.Events() {
		if e.Observer == 0 && e.Subject == 1 && !e.Suspected && e.At == 7*time.Second {
			found = true
		}
	}
	if !found {
		t.Error("fresh restart did not emit the restore transition for p1")
	}
	// The dead p1 times out again on the restarted monitor.
	c.sim.RunUntil(12 * time.Second)
	if !c.nodes[0].IsSuspected(1) {
		t.Error("restarted monitor never re-detected the dead peer")
	}
}

func TestRestartPersistedKeepsSuspicions(t *testing.T) {
	c := newHBCluster(t, 3, netsim.Constant{D: time.Millisecond}, time.Second, 2*time.Second)
	c.sim.At(2*time.Second, func() { c.net.Crash(1) })
	c.sim.RunUntil(6 * time.Second)
	c.sim.At(7*time.Second, func() {
		c.net.Crash(0)
		c.net.Recover(0)
		c.nodes[0].Restart(false)
	})
	c.sim.RunUntil(7100 * time.Millisecond)
	if !c.nodes[0].IsSuspected(1) {
		t.Error("persisted restart lost the suspicion of the dead p1")
	}
}
