package heartbeat

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// VectorMessage is a gossiped heartbeat vector: entry k is the highest
// heartbeat counter known to have been emitted by process k.
type VectorMessage struct {
	From   ident.ID
	Vector []uint64
}

// GossipConfig parameterizes a Friedman–Tcharny-style gossip detector.
type GossipConfig struct {
	// Self is this process's identity.
	Self ident.ID
	// N is the total number of processes (the vector length); the gossip
	// variant assumes the number of nodes is known, as in the original.
	N int
	// Interval is the gossip period Δ.
	Interval time.Duration
	// Timeout is the suspicion timeout Θ: a process whose counter has not
	// increased for Θ is suspected. Θ must account for multi-hop
	// propagation.
	Timeout time.Duration
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Validate checks the configuration.
func (c GossipConfig) Validate() error {
	if !c.Self.Valid() || int(c.Self) >= c.N {
		return errors.New("heartbeat: gossip config: Self out of range")
	}
	if c.N < 2 {
		return errors.New("heartbeat: gossip config: N must be ≥ 2")
	}
	if c.Interval <= 0 || c.Timeout <= 0 {
		return errors.New("heartbeat: gossip config: Interval and Timeout must be positive")
	}
	return nil
}

// GossipNode floods heartbeat counters through neighbor broadcasts: every Δ
// it increments its own vector entry and broadcasts the vector; on reception
// it merges entry-wise maxima. A peer is suspected when its entry stalls for
// Θ. Works over partially connected topologies because counters propagate
// transitively. Safe for concurrent use.
type GossipNode struct {
	mu        sync.Mutex
	env       node.Env
	cfg       GossipConfig
	vector    []uint64
	lastRise  []time.Duration
	suspected ident.Set
	stopped   bool
	beat      node.Timer
}

var _ node.Handler = (*GossipNode)(nil)
var _ fd.Detector = (*GossipNode)(nil)

// NewGossipNode builds a gossip heartbeat detector on env.
func NewGossipNode(env node.Env, cfg GossipConfig) (*GossipNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GossipNode{
		env:      env,
		cfg:      cfg,
		vector:   make([]uint64, cfg.N),
		lastRise: make([]time.Duration, cfg.N),
	}, nil
}

// Start begins gossiping. The start instant counts as the last sighting of
// every process.
func (g *GossipNode) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.env.Now()
	for i := range g.lastRise {
		g.lastRise[i] = now
	}
	g.tickLocked()
}

// Stop halts gossiping and suspicion checks.
func (g *GossipNode) Stop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stopped = true
	if g.beat != nil {
		g.beat.Stop()
	}
}

func (g *GossipNode) tickLocked() {
	if g.stopped {
		return
	}
	g.vector[g.cfg.Self]++
	g.lastRise[g.cfg.Self] = g.env.Now()
	out := make([]uint64, len(g.vector))
	copy(out, g.vector)
	g.env.Broadcast(VectorMessage{From: g.cfg.Self, Vector: out})
	g.scanLocked()
	g.beat = g.env.After(g.cfg.Interval, func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.tickLocked()
	})
}

// scanLocked applies the timeout rule to every entry.
func (g *GossipNode) scanLocked() {
	now := g.env.Now()
	for i := range g.vector {
		id := ident.ID(i)
		if id == g.cfg.Self {
			continue
		}
		stale := now-g.lastRise[i] > g.cfg.Timeout
		if stale && !g.suspected.Has(id) {
			g.suspected.Add(id)
			g.emitLocked(id, true)
		}
	}
}

// Deliver implements node.Handler: entry-wise max merge; a rising entry is a
// fresh sighting of that process.
func (g *GossipNode) Deliver(_ ident.ID, payload any) {
	m, ok := payload.(VectorMessage)
	if !ok {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopped {
		return
	}
	now := g.env.Now()
	for i, v := range m.Vector {
		if i >= len(g.vector) {
			break
		}
		if v > g.vector[i] {
			g.vector[i] = v
			g.lastRise[i] = now
			id := ident.ID(i)
			if g.suspected.Has(id) {
				g.suspected.Remove(id)
				g.emitLocked(id, false)
			}
		}
	}
}

func (g *GossipNode) emitLocked(subject ident.ID, suspected bool) {
	if g.cfg.Sink != nil {
		g.cfg.Sink.OnSuspicion(g.env.Now(), g.cfg.Self, subject, suspected)
	}
}

// Suspects implements fd.Detector.
func (g *GossipNode) Suspects() ident.Set {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.suspected.Clone()
}

// IsSuspected implements fd.Detector.
func (g *GossipNode) IsSuspected(id ident.ID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.suspected.Has(id)
}

// Vector returns a copy of the current heartbeat vector (tests/diagnostics).
func (g *GossipNode) Vector() []uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]uint64, len(g.vector))
	copy(out, g.vector)
	return out
}
