// Package heartbeat implements the classical timer-based unreliable failure
// detector that the paper argues against: every process broadcasts a
// heartbeat every Δ; a monitor suspects a peer when no heartbeat arrives for
// Θ, and revokes the suspicion when one finally does.
//
// Two variants are provided:
//
//   - Node: the direct all-to-all detector for fully connected systems
//     (Chandra–Toueg-style, the default comparator in experiments E1–E7).
//   - GossipNode: the Friedman–Tcharny-style vector detector for partially
//     connected systems — heartbeat counters are flooded through neighbor
//     broadcasts, so liveness information crosses multiple hops (used by the
//     extension experiments X1/X2).
//
// Both variants need the timing assumption the time-free detector avoids: Θ
// must dominate the (unknown) end-to-end delay, or false suspicions never
// stop.
package heartbeat

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Message is a direct heartbeat.
type Message struct {
	From ident.ID
	Seq  uint64
}

// Config parameterizes a direct heartbeat detector.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// Peers are the monitored processes (Self is ignored if present).
	Peers ident.Set
	// Interval is the heartbeat period Δ.
	Interval time.Duration
	// Timeout is the suspicion timeout Θ (counted from the last heartbeat).
	Timeout time.Duration
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() {
		return errors.New("heartbeat: config: Self must be valid")
	}
	if c.Interval <= 0 {
		return errors.New("heartbeat: config: Interval must be positive")
	}
	if c.Timeout <= 0 {
		return errors.New("heartbeat: config: Timeout must be positive")
	}
	return nil
}

// peerState holds the per-peer suspicion timeout. It is a pointer target so
// the hot re-arm path (every heartbeat delivery) is a direct slice index plus
// a field write, with no map operations.
type peerState struct {
	expiry node.Timer
}

// Node is the direct all-to-all heartbeat detector. It is safe for
// concurrent use.
type Node struct {
	mu        sync.Mutex
	env       node.Env //fdlint:allow clonefields immutable wiring, set once at construction
	cfg       Config   //fdlint:allow clonefields immutable config, set once at construction
	seq       uint64
	suspected ident.Set
	peers     node.DenseMap[*peerState]
	stopped   bool
	beat      node.Timer
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)
var _ node.Cloneable = (*Node)(nil)

// NewNode builds a direct heartbeat detector on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Peers = cfg.Peers.Clone()
	cfg.Peers.Remove(cfg.Self)
	n := &Node{env: env, cfg: cfg}
	cfg.Peers.ForEach(func(p ident.ID) bool {
		n.peers.Put(p, &peerState{})
		return true
	})
	return n, nil
}

// Start begins heartbeating and arms the initial timeout for every peer (the
// start of monitoring counts as the last sighting, avoiding instant
// suspicions).
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		n.armLocked(p)
		return true
	})
	n.tickLocked()
}

// Restart implements fd.Restartable: after a crash-recovery, the node
// re-arms every suspicion timeout (the restart counts as the last sighting
// of every peer, like Start) and resumes heartbeating. With fresh state the
// reboot lost the suspicion set, so the oracle output transitions every
// suspected peer back to trusted; with persisted state suspicions survive
// until the peers' heartbeats clear them.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.beat != nil {
		n.beat.Stop()
	}
	n.peers.ForEach(func(_ ident.ID, st *peerState) bool {
		if st.expiry != nil {
			st.expiry.Stop()
		}
		return true
	})
	n.stopped = false
	if fresh {
		n.suspected.ForEach(func(p ident.ID) bool {
			n.emitLocked(p, false)
			return true
		})
		n.suspected.Clear()
		n.seq = 0
	}
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		n.armLocked(p)
		return true
	})
	n.tickLocked()
}

// Stop halts heartbeating and suspicion timers.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.beat != nil {
		n.beat.Stop()
	}
	n.peers.ForEach(func(_ ident.ID, st *peerState) bool {
		if st.expiry != nil {
			st.expiry.Stop()
		}
		return true
	})
}

func (n *Node) tickLocked() {
	if n.stopped {
		return
	}
	n.seq++
	n.env.Broadcast(Message{From: n.env.Self(), Seq: n.seq})
	n.beat = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.tickLocked()
	})
}

// armLocked (re)arms the expiry timer for peer p.
func (n *Node) armLocked(p ident.ID) {
	st := n.peers.Get(p)
	if st.expiry != nil {
		st.expiry.Stop()
	}
	st.expiry = n.env.After(n.cfg.Timeout, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || n.suspected.Has(p) {
			return
		}
		n.suspected.Add(p)
		n.emitLocked(p, true)
	})
}

// Deliver implements node.Handler.
func (n *Node) Deliver(from ident.ID, payload any) {
	if _, ok := payload.(Message); !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped || !n.cfg.Peers.Has(from) {
		return
	}
	if n.suspected.Has(from) {
		n.suspected.Remove(from)
		n.emitLocked(from, false)
	}
	n.armLocked(from)
}

func (n *Node) emitLocked(subject ident.ID, suspected bool) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), subject, suspected)
	}
}

// snapshot is the node.Cloneable checkpoint of a heartbeat detector: the
// sequence counter, the suspicion set and the live timer handles. Timer
// handles are shared by value with the live node — des.Timer handles are
// immutable, and the paired kernel snapshot rewinds slot generations so a
// handle captured here is pending again after Restore.
type snapshot struct {
	seq       uint64
	suspected ident.Set
	expiry    map[ident.ID]node.Timer
	stopped   bool
	beat      node.Timer
}

// Snapshot implements node.Cloneable.
func (n *Node) Snapshot() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	expiry := make(map[ident.ID]node.Timer, n.peers.Len())
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		if st.expiry != nil {
			expiry[p] = st.expiry
		}
		return true
	})
	return &snapshot{
		seq:       n.seq,
		suspected: n.suspected.Clone(),
		expiry:    expiry,
		stopped:   n.stopped,
		beat:      n.beat,
	}
}

// Restore implements node.Cloneable: writes each saved timer handle back into
// the live peerState (clearing peers the checkpoint had no timer for).
func (n *Node) Restore(snap any) {
	s := snap.(*snapshot)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq = s.seq
	n.suspected = s.suspected.Clone()
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		st.expiry = s.expiry[p]
		return true
	})
	n.stopped = s.stopped
	n.beat = s.beat
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.suspected.Clone()
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.suspected.Has(id)
}
