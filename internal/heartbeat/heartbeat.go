// Package heartbeat implements the classical timer-based unreliable failure
// detector that the paper argues against: every process broadcasts a
// heartbeat every Δ; a monitor suspects a peer when no heartbeat arrives for
// Θ, and revokes the suspicion when one finally does.
//
// Two variants are provided:
//
//   - Node: the direct all-to-all detector for fully connected systems
//     (Chandra–Toueg-style, the default comparator in experiments E1–E7).
//   - GossipNode: the Friedman–Tcharny-style vector detector for partially
//     connected systems — heartbeat counters are flooded through neighbor
//     broadcasts, so liveness information crosses multiple hops (used by the
//     extension experiments X1/X2).
//
// Both variants need the timing assumption the time-free detector avoids: Θ
// must dominate the (unknown) end-to-end delay, or false suspicions never
// stop.
package heartbeat

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Message is a direct heartbeat.
type Message struct {
	From ident.ID
	Seq  uint64
}

// Config parameterizes a direct heartbeat detector.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// Peers are the monitored processes (Self is ignored if present).
	Peers ident.Set
	// Interval is the heartbeat period Δ.
	Interval time.Duration
	// Timeout is the suspicion timeout Θ (counted from the last heartbeat).
	Timeout time.Duration
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() {
		return errors.New("heartbeat: config: Self must be valid")
	}
	if c.Interval <= 0 {
		return errors.New("heartbeat: config: Interval must be positive")
	}
	if c.Timeout <= 0 {
		return errors.New("heartbeat: config: Timeout must be positive")
	}
	return nil
}

// Node is the direct all-to-all heartbeat detector. It is safe for
// concurrent use.
type Node struct {
	mu        sync.Mutex
	env       node.Env
	cfg       Config
	seq       uint64
	suspected ident.Set
	expiry    map[ident.ID]node.Timer
	stopped   bool
	beat      node.Timer
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)

// NewNode builds a direct heartbeat detector on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Peers = cfg.Peers.Clone()
	cfg.Peers.Remove(cfg.Self)
	return &Node{env: env, cfg: cfg, expiry: make(map[ident.ID]node.Timer)}, nil
}

// Start begins heartbeating and arms the initial timeout for every peer (the
// start of monitoring counts as the last sighting, avoiding instant
// suspicions).
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		n.armLocked(p)
		return true
	})
	n.tickLocked()
}

// Restart implements fd.Restartable: after a crash-recovery, the node
// re-arms every suspicion timeout (the restart counts as the last sighting
// of every peer, like Start) and resumes heartbeating. With fresh state the
// reboot lost the suspicion set, so the oracle output transitions every
// suspected peer back to trusted; with persisted state suspicions survive
// until the peers' heartbeats clear them.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.beat != nil {
		n.beat.Stop()
	}
	for _, t := range n.expiry {
		t.Stop()
	}
	n.stopped = false
	if fresh {
		n.suspected.ForEach(func(p ident.ID) bool {
			n.emitLocked(p, false)
			return true
		})
		n.suspected.Clear()
		n.seq = 0
	}
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		n.armLocked(p)
		return true
	})
	n.tickLocked()
}

// Stop halts heartbeating and suspicion timers.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.beat != nil {
		n.beat.Stop()
	}
	for _, t := range n.expiry {
		t.Stop()
	}
}

func (n *Node) tickLocked() {
	if n.stopped {
		return
	}
	n.seq++
	n.env.Broadcast(Message{From: n.env.Self(), Seq: n.seq})
	n.beat = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.tickLocked()
	})
}

// armLocked (re)arms the expiry timer for peer p.
func (n *Node) armLocked(p ident.ID) {
	if t, ok := n.expiry[p]; ok {
		t.Stop()
	}
	n.expiry[p] = n.env.After(n.cfg.Timeout, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || n.suspected.Has(p) {
			return
		}
		n.suspected.Add(p)
		n.emitLocked(p, true)
	})
}

// Deliver implements node.Handler.
func (n *Node) Deliver(from ident.ID, payload any) {
	if _, ok := payload.(Message); !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped || !n.cfg.Peers.Has(from) {
		return
	}
	if n.suspected.Has(from) {
		n.suspected.Remove(from)
		n.emitLocked(from, false)
	}
	n.armLocked(from)
}

func (n *Node) emitLocked(subject ident.ID, suspected bool) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), subject, suspected)
	}
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.suspected.Clone()
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.suspected.Has(id)
}
