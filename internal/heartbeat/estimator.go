package heartbeat

import "time"

// Estimator is the shard-callable core of the heartbeat detector: the
// fixed-timeout rule Θ with no Env, goroutine or timer machinery. A shard
// worker (internal/liveshard) owns one Estimator per monitored peer, feeds
// it heartbeat arrival times via Observe and polls Suspected on its scan
// tick. All times are offsets on the caller's clock; the Estimator never
// reads a clock itself, so it is trivially testable and runs identically
// under simulated and wall-clock time.
//
// The zero value is not ready: use NewEstimator, which primes the estimator
// as if a heartbeat arrived at the given instant (the start of monitoring
// counts as the last sighting, avoiding instant suspicion — the same
// bootstrap Node.Start uses).
type Estimator struct {
	timeout time.Duration
	last    time.Duration
}

// NewEstimator builds an estimator with suspicion timeout Θ, primed as if a
// heartbeat arrived at now.
func NewEstimator(timeout, now time.Duration) *Estimator {
	return &Estimator{timeout: timeout, last: now}
}

// Observe records a heartbeat arrival at time at. Out-of-order arrivals
// (at before the last sighting) are ignored — the freshest sighting wins.
func (e *Estimator) Observe(at time.Duration) {
	if at > e.last {
		e.last = at
	}
}

// Suspected reports whether the peer is suspected at time now: silence has
// exceeded the timeout.
func (e *Estimator) Suspected(now time.Duration) bool {
	return now-e.last > e.timeout
}

// Last returns the time of the freshest sighting (diagnostics).
func (e *Estimator) Last() time.Duration { return e.last }
