package heartbeat

import (
	"testing"
	"time"
)

func TestEstimatorTimeoutRule(t *testing.T) {
	e := NewEstimator(100*time.Millisecond, 0)
	if e.Suspected(50 * time.Millisecond) {
		t.Error("suspected within the primed timeout")
	}
	if !e.Suspected(150 * time.Millisecond) {
		t.Error("not suspected after silence > timeout")
	}
	e.Observe(140 * time.Millisecond)
	if e.Suspected(200 * time.Millisecond) {
		t.Error("suspected right after a heartbeat")
	}
	if !e.Suspected(241 * time.Millisecond) {
		t.Error("not suspected after renewed silence")
	}
}

func TestEstimatorOutOfOrderObserve(t *testing.T) {
	e := NewEstimator(100*time.Millisecond, 0)
	e.Observe(80 * time.Millisecond)
	e.Observe(20 * time.Millisecond) // stale: must not rewind
	if e.Last() != 80*time.Millisecond {
		t.Errorf("Last = %v after stale Observe, want 80ms", e.Last())
	}
	if e.Suspected(150 * time.Millisecond) {
		t.Error("stale Observe rewound the silence clock")
	}
}
