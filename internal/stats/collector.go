package stats

import (
	"sort"
	"sync"
)

// Sample is one scalar observation: the value a metric took in one seed
// replicate of one table cell (e.g. cell "n=128/async", metric
// "det_avg_ms", replicate 3).
type Sample struct {
	Cell   string  // cell key, stable across runs (e.g. "n=128/async")
	Metric string  // metric name (e.g. "det_avg_ms")
	Rep    int     // replicate index within the cell's seed family
	Value  float64 // observed value
}

// Collector accumulates samples from concurrently executing experiment
// cells. Add is safe for concurrent use; Rows produces the aggregate in a
// canonical order (cell, then metric, with each family's samples folded in
// replicate order), so the output is byte-for-byte independent of the
// worker count that produced the samples — the engine's serial/parallel
// identity guarantee, extended to the v2 bench rows.
type Collector struct {
	mu      sync.Mutex
	samples []Sample
}

// Add records one observation.
func (c *Collector) Add(cell, metric string, rep int, value float64) {
	c.mu.Lock()
	c.samples = append(c.samples, Sample{Cell: cell, Metric: metric, Rep: rep, Value: value})
	c.mu.Unlock()
}

// Len returns the number of samples recorded so far.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples)
}

// Samples returns a copy of the raw samples recorded so far.
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}

// AddSamples appends pre-recorded samples, e.g. to merge a sub-run's
// collector into a run-wide one.
func (c *Collector) AddSamples(samples []Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, samples...)
	c.mu.Unlock()
}

// Row is the aggregate of one (cell, metric) seed family.
type Row struct {
	Cell   string
	Metric string
	Summary
}

// Rows aggregates every (cell, metric) family recorded so far into
// deterministic summary rows, sorted by cell then metric. Samples within a
// family are ordered by replicate index before summarizing, so arrival
// order (and hence scheduling) cannot influence the result.
func (c *Collector) Rows() []Row {
	c.mu.Lock()
	samples := make([]Sample, len(c.samples))
	copy(samples, c.samples)
	c.mu.Unlock()

	sort.SliceStable(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.Rep < b.Rep
	})

	var rows []Row
	for i := 0; i < len(samples); {
		j := i
		for j < len(samples) && samples[j].Cell == samples[i].Cell && samples[j].Metric == samples[i].Metric {
			j++
		}
		values := make([]float64, 0, j-i)
		for _, s := range samples[i:j] {
			values = append(values, s.Value)
		}
		rows = append(rows, Row{
			Cell:    samples[i].Cell,
			Metric:  samples[i].Metric,
			Summary: Summarize(values),
		})
		i = j
	}
	return rows
}
