// Package stats turns the seed families of the experiment engine into
// distribution summaries: streaming mean/variance/standard-error
// accumulation, two-sided Student-t 95% confidence intervals, and percentile
// digests. The experiment harness (internal/exp) records one sample per
// seed replicate of every table cell into a Collector, and cmd/fdbench
// renders the aggregated rows as the asyncfd-bench/v2 schema (see the
// repository README, "Reading BENCH_*.json", and docs/BENCHMARKS.md, "The
// R-seed replication model").
//
// Everything here is deterministic in the input order: Summarize folds
// samples left to right and sorts a private copy for the percentiles, so
// identical sample sequences always produce bit-identical summaries —
// the property the engine's serial/parallel byte-identity guarantee
// extends through to the v2 rows.
package stats

import (
	"math"
	"sort"
)

// Stream is a streaming mean/variance accumulator (Welford's algorithm):
// one pass, O(1) memory, no catastrophic cancellation. The zero value is an
// empty stream ready for Add.
type Stream struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations folded in.
func (s *Stream) N() int { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the sample (n−1) variance; 0 while fewer than two
// observations are in.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean, StdDev/√n; 0 while fewer
// than two observations are in.
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the two-sided Student-t 95% confidence
// interval for the mean: TCritical95(n−1) × StdErr. The interval is
// [Mean−CI95, Mean+CI95]. A family of fewer than two seeds has no interval
// (0).
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(s.n-1) * s.StdErr()
}

// tTable95 holds the two-sided 95% Student-t critical values (the 0.975
// quantile) for 1–30 degrees of freedom.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values for df ≤ 30, then a conservative
// step function (the value of the largest tabulated df not exceeding the
// argument: 40→2.021, 60→2.000, ≥120→1.980, approaching the normal 1.960
// limit from above). df < 1 returns 0 — no interval is defined.
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tTable95):
		return tTable95[df-1]
	case df < 40:
		return tTable95[len(tTable95)-1]
	case df < 60:
		return 2.021
	case df < 120:
		return 2.000
	default:
		return 1.980
	}
}

// Percentile returns the p-quantile (p in [0,1]) of samples under linear
// interpolation between closest ranks (R type 7, the numpy default): rank
// h = (n−1)·p, interpolating between the floor and ceiling order
// statistics. Ties are handled naturally — equal order statistics
// interpolate to themselves. Edge cases: an empty slice returns 0 (a
// seedless family has no distribution), a single sample is every
// percentile of itself, and p outside [0,1] clamps. The input is not
// modified (a copy is sorted).
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if len(samples) == 1 {
		return samples[0]
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	h := float64(len(sorted)-1) * p
	lo := int(math.Floor(h))
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Summary is the distribution digest of one metric's seed family, the
// payload of an asyncfd-bench/v2 row.
type Summary struct {
	N      int     // family size (number of seed replicates observed)
	Mean   float64 // sample mean
	StdErr float64 // standard error of the mean (0 when N < 2)
	CI95   float64 // Student-t 95% CI half-width: [Mean−CI95, Mean+CI95]
	P50    float64 // median (linear-interpolation percentile)
	P99    float64 // 99th percentile
	Min    float64
	Max    float64
}

// Summarize digests a seed family. Samples are folded in the given order,
// so callers that fix the order (the Collector sorts by replicate index)
// get deterministic summaries whatever the execution interleaving that
// produced the samples.
func Summarize(samples []float64) Summary {
	var st Stream
	sum := Summary{}
	for i, x := range samples {
		st.Add(x)
		if i == 0 || x < sum.Min {
			sum.Min = x
		}
		if i == 0 || x > sum.Max {
			sum.Max = x
		}
	}
	sum.N = st.N()
	sum.Mean = st.Mean()
	sum.StdErr = st.StdErr()
	sum.CI95 = st.CI95()
	sum.P50 = Percentile(samples, 0.50)
	sum.P99 = Percentile(samples, 0.99)
	return sum
}
