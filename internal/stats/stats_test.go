package stats

import (
	"math"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestStreamGoldenValues pins mean/variance/stderr/CI against hand-computed
// values for a known small sample: {1,2,3,4,5} has mean 3, sample variance
// 2.5, stddev 1.58114, stderr 0.70711 and, with t(4) = 2.776, a 95% CI
// half-width of 1.96293.
func TestStreamGoldenValues(t *testing.T) {
	var s Stream
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if !close(s.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if !close(s.Variance(), 2.5, 1e-12) {
		t.Errorf("Variance = %v, want 2.5", s.Variance())
	}
	if !close(s.StdDev(), math.Sqrt(2.5), 1e-12) {
		t.Errorf("StdDev = %v, want √2.5", s.StdDev())
	}
	wantSE := math.Sqrt(2.5) / math.Sqrt(5)
	if !close(s.StdErr(), wantSE, 1e-12) {
		t.Errorf("StdErr = %v, want %v", s.StdErr(), wantSE)
	}
	if !close(s.CI95(), 2.776*wantSE, 1e-9) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), 2.776*wantSE)
	}
}

// TestStreamGoldenMeasurements uses a classic measurement-style family:
// {4.1, 4.3, 3.9, 4.2, 4.0} has mean 4.1, sample variance 0.025 and stderr
// ≈ 0.0707107.
func TestStreamGoldenMeasurements(t *testing.T) {
	var s Stream
	for _, x := range []float64{4.1, 4.3, 3.9, 4.2, 4.0} {
		s.Add(x)
	}
	if !close(s.Mean(), 4.1, 1e-12) {
		t.Errorf("Mean = %v, want 4.1", s.Mean())
	}
	if !close(s.Variance(), 0.025, 1e-12) {
		t.Errorf("Variance = %v, want 0.025", s.Variance())
	}
	if !close(s.StdErr(), 0.07071067811865475, 1e-12) {
		t.Errorf("StdErr = %v", s.StdErr())
	}
}

// TestStreamDegenerateFamilies: R < 2 has no spread and no interval.
func TestStreamDegenerateFamilies(t *testing.T) {
	var empty Stream
	if empty.Mean() != 0 || empty.Variance() != 0 || empty.StdErr() != 0 || empty.CI95() != 0 {
		t.Error("empty stream must report all zeros")
	}
	var one Stream
	one.Add(42)
	if one.Mean() != 42 {
		t.Errorf("Mean = %v, want 42", one.Mean())
	}
	if one.Variance() != 0 || one.StdErr() != 0 || one.CI95() != 0 {
		t.Error("single-sample family must have zero spread and no CI")
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 12.706}, {2, 4.303}, {4, 2.776}, {9, 2.262}, {29, 2.045}, {30, 2.042},
		{35, 2.042}, // conservative: the df=30 entry
		{40, 2.021}, {59, 2.021}, {60, 2.000}, {119, 2.000}, {120, 1.980}, {10000, 1.980},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Monotone non-increasing over df ≥ 1: a bigger family never widens
	// the interval.
	prev := TCritical95(1)
	for df := 2; df <= 200; df++ {
		cur := TCritical95(df)
		if cur > prev {
			t.Fatalf("TCritical95 increased at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample: %v, want 7", got)
	}
	// Ties: equal order statistics interpolate to themselves.
	ties := []float64{1, 1, 1, 5}
	if got := Percentile(ties, 0.5); !close(got, 1, 1e-12) {
		t.Errorf("p50 of %v = %v, want 1", ties, got)
	}
	allSame := []float64{3, 3, 3, 3}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(allSame, p); got != 3 {
			t.Errorf("p%v of all-ties = %v, want 3", p, got)
		}
	}
	// Linear interpolation (R type 7): p50 of {1,2,3,4} is 2.5, p25 is 1.75.
	quad := []float64{4, 2, 1, 3} // unsorted on purpose: input must not matter
	if got := Percentile(quad, 0.5); !close(got, 2.5, 1e-12) {
		t.Errorf("p50 of {1..4} = %v, want 2.5", got)
	}
	if got := Percentile(quad, 0.25); !close(got, 1.75, 1e-12) {
		t.Errorf("p25 of {1..4} = %v, want 1.75", got)
	}
	// Clamping and endpoints.
	if got := Percentile(quad, -1); got != 1 {
		t.Errorf("p<0 must clamp to min, got %v", got)
	}
	if got := Percentile(quad, 2); got != 4 {
		t.Errorf("p>1 must clamp to max, got %v", got)
	}
	// The input slice is left untouched.
	if quad[0] != 4 || quad[3] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarizeGolden(t *testing.T) {
	sum := Summarize([]float64{1, 2, 3, 4, 5})
	if sum.N != 5 || sum.Min != 1 || sum.Max != 5 {
		t.Fatalf("N/Min/Max = %d/%v/%v", sum.N, sum.Min, sum.Max)
	}
	if !close(sum.Mean, 3, 1e-12) || !close(sum.P50, 3, 1e-12) {
		t.Errorf("Mean/P50 = %v/%v, want 3/3", sum.Mean, sum.P50)
	}
	if !close(sum.P99, 4.96, 1e-12) { // h = 4×0.99 = 3.96 → 4 + 0.96×(5−4)
		t.Errorf("P99 = %v, want 4.96", sum.P99)
	}
	wantCI := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if !close(sum.CI95, wantCI, 1e-9) {
		t.Errorf("CI95 = %v, want %v", sum.CI95, wantCI)
	}
	// R < 2 edge: a single-seed family summarizes to itself with no spread.
	one := Summarize([]float64{2.5})
	if one.N != 1 || one.Mean != 2.5 || one.P50 != 2.5 || one.P99 != 2.5 || one.StdErr != 0 || one.CI95 != 0 {
		t.Errorf("single-seed summary = %+v", one)
	}
	zero := Summarize(nil)
	if zero != (Summary{}) {
		t.Errorf("empty summary = %+v, want zero value", zero)
	}
}

// TestSummarizeGoldenNewMetricFamilies pins Summarize/Percentile against
// hand-computed golden values on sample shapes matching the newly sampled
// v2 metric families (PR 4): an E7 decision-latency family, an E3
// mistake-duration family, and an E8 propagation-spread family whose R=5
// values carry ties.
func TestSummarizeGoldenNewMetricFamilies(t *testing.T) {
	// decision_ms-shaped family: {2012.0, 2049.5, 1998.0, 2103.0, 2020.5}.
	// Sum = 10183, mean = 2036.6; squared deviations sum = 6929.7 →
	// sample variance 1732.425, stderr √(1732.425/5) = 18.61411…;
	// t(4) = 2.776 → ci95 = 51.67278…; sorted {1998, 2012, 2020.5,
	// 2049.5, 2103}: p50 = 2020.5, p99 = 2049.5 + 0.96×53.5 = 2100.86.
	dec := Summarize([]float64{2012.0, 2049.5, 1998.0, 2103.0, 2020.5})
	if dec.N != 5 || dec.Min != 1998.0 || dec.Max != 2103.0 {
		t.Fatalf("decision family N/Min/Max = %d/%v/%v", dec.N, dec.Min, dec.Max)
	}
	if !close(dec.Mean, 2036.6, 1e-9) {
		t.Errorf("decision mean = %v, want 2036.6", dec.Mean)
	}
	if !close(dec.StdErr, math.Sqrt(1732.425/5), 1e-9) {
		t.Errorf("decision stderr = %v, want %v", dec.StdErr, math.Sqrt(1732.425/5))
	}
	if !close(dec.CI95, 2.776*math.Sqrt(1732.425/5), 1e-9) {
		t.Errorf("decision ci95 = %v", dec.CI95)
	}
	if !close(dec.P50, 2020.5, 1e-12) || !close(dec.P99, 2100.86, 1e-9) {
		t.Errorf("decision p50/p99 = %v/%v, want 2020.5/2100.86", dec.P50, dec.P99)
	}

	// mistake_dur_ms-shaped family: {12.0, 14.5, 13.2, 15.1, 12.9}.
	// Mean 13.54; squared deviations sum = 6.252 → variance 1.563,
	// stderr √(1.563/5) = 0.5591064…, ci95 = 2.776 × stderr.
	dur := Summarize([]float64{12.0, 14.5, 13.2, 15.1, 12.9})
	if !close(dur.Mean, 13.54, 1e-12) {
		t.Errorf("duration mean = %v, want 13.54", dur.Mean)
	}
	if !close(dur.StdErr, math.Sqrt(1.563/5), 1e-9) {
		t.Errorf("duration stderr = %v, want %v", dur.StdErr, math.Sqrt(1.563/5))
	}
	if !close(dur.CI95, 2.776*math.Sqrt(1.563/5), 1e-9) {
		t.Errorf("duration ci95 = %v", dur.CI95)
	}
	if !close(dur.P50, 13.2, 1e-12) {
		t.Errorf("duration p50 = %v, want 13.2", dur.P50)
	}

	// spread_ms-shaped family with ties: {40, 40, 55, 55, 70}: mean 52,
	// p50 = 55 (middle order statistic), p25 = 40 (tie interpolates to
	// itself), p99 = 55 + 0.96×15 = 69.4.
	spread := []float64{55, 40, 70, 40, 55} // unsorted: order must not matter
	sum := Summarize(spread)
	if !close(sum.Mean, 52, 1e-12) || !close(sum.P50, 55, 1e-12) {
		t.Errorf("spread mean/p50 = %v/%v, want 52/55", sum.Mean, sum.P50)
	}
	if got := Percentile(spread, 0.25); !close(got, 40, 1e-12) {
		t.Errorf("spread p25 = %v, want 40 (tie)", got)
	}
	if !close(sum.P99, 69.4, 1e-9) {
		t.Errorf("spread p99 = %v, want 69.4", sum.P99)
	}
	if sum.Min != 40 || sum.Max != 70 {
		t.Errorf("spread min/max = %v/%v", sum.Min, sum.Max)
	}
}

// TestCollectorDeterministicRows: rows must not depend on sample arrival
// order — only on (cell, metric, rep).
func TestCollectorDeterministicRows(t *testing.T) {
	build := func(order []int) []Row {
		c := &Collector{}
		type obs struct {
			cell, metric string
			rep          int
			v            float64
		}
		all := []obs{
			{"n=8/async", "det_avg_ms", 0, 10},
			{"n=8/async", "det_avg_ms", 1, 12},
			{"n=8/async", "det_avg_ms", 2, 11},
			{"n=8/async", "det_max_ms", 0, 20},
			{"n=4/chen", "det_avg_ms", 0, 30},
		}
		for _, i := range order {
			o := all[i]
			c.Add(o.cell, o.metric, o.rep, o.v)
		}
		return c.Rows()
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 2, 0, 3, 1})
	if len(a) != 3 {
		t.Fatalf("rows = %d, want 3 families", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across arrival orders:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// Canonical order: cells sorted, then metrics.
	if a[0].Cell != "n=4/chen" || a[1].Metric != "det_avg_ms" || a[2].Metric != "det_max_ms" {
		t.Errorf("unexpected row order: %+v", a)
	}
	if got := a[1].Summary.Mean; !close(got, 11, 1e-12) {
		t.Errorf("family mean = %v, want 11", got)
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	c := &Collector{}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for r := 0; r < 100; r++ {
				c.Add("cell", "metric", g*100+r, float64(r))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() != 800 {
		t.Fatalf("Len = %d, want 800", c.Len())
	}
	rows := c.Rows()
	if len(rows) != 1 || rows[0].N != 800 {
		t.Fatalf("rows = %+v", rows)
	}
}
