// Package netsim simulates an asynchronous message-passing network on the
// discrete-event kernel. Message delays are drawn per message from a
// pluggable DelayModel, so messages are arbitrarily reordered — exactly the
// asynchronous model of the paper. Links are reliable by default (the
// paper's assumption); a drop rate, a composable stack of link filters and
// first-class partitions are available for the extension and fault-scenario
// experiments (partial connectivity, mobility, partition/heal), and crashed
// processes can be revived for crash-recovery scenarios.
//
// In the repository README's architecture map this is the "asynchronous
// network model" layer: internal/faults schedules Crash/Recover/Partition/
// Heal events against it, and every internal/exp cluster sends through it.
// Scenario-driven connectivity changes use the composable
// AddLinkFilter/RemoveLinkFilter stack or the first-class Partition/Heal.
package netsim

import (
	"fmt"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Config parameterizes a simulated network.
type Config struct {
	// Delay is the latency model; required.
	Delay DelayModel
	// DropRate is the probability a message is lost (0 = reliable links,
	// the paper's model).
	DropRate float64
	// SizeOf, if set, returns the wire size of a payload for byte
	// accounting in Stats.
	SizeOf func(payload any) int
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent      int64 // messages handed to the network
	Delivered int64 // messages delivered to a live process
	Dropped   int64 // lost to DropRate or the link filter
	Bytes     int64 // wire bytes sent (only if Config.SizeOf set)
}

// LinkFilter vetoes transmissions at send time: return false to drop the
// message. Filters model disconnection, mobility and partitions.
type LinkFilter func(from, to ident.ID, now time.Duration) bool

// linkFilterEntry is one installed filter with its removal token.
type linkFilterEntry struct {
	token int
	f     LinkFilter
}

// Network is the simulated medium. All methods must be called from the
// simulation goroutine (i.e., inside DES events or before the run starts).
type Network struct {
	sim      *des.Simulator
	cfg      Config
	handlers map[ident.ID]node.Handler
	crashed  ident.Set
	// neighbors, when non-nil for an id, restricts that id's broadcasts
	// and sends to the given set (extension topologies). nil = full mesh.
	neighbors map[ident.ID]ident.Set
	// filters is the composable veto stack: a message is admitted only if
	// every installed filter passes.
	filters   []linkFilterEntry
	nextToken int
	// partitions holds the tokens of active Partition filters, most recent
	// last; Heal pops them LIFO.
	partitions []int
	stats      Stats
	// bcast is the broadcast fan-out scratch buffer, reused across
	// Broadcast calls (Batch reads it synchronously, and the kernel pools
	// the per-node item storage itself), so steady-state gossip stops
	// allocating one slice per broadcast.
	bcast []des.BatchItem
}

// New builds a network on sim.
func New(sim *des.Simulator, cfg Config) *Network {
	if cfg.Delay == nil {
		panic("netsim: Config.Delay is required")
	}
	return &Network{
		sim:      sim,
		cfg:      cfg,
		handlers: make(map[ident.ID]node.Handler),
	}
}

// AddNode registers a process and returns its environment. Registering the
// same id twice panics: it is a programming error in experiment setup.
func (n *Network) AddNode(id ident.ID, h node.Handler) *Env {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	n.handlers[id] = h
	return &Env{net: n, id: id}
}

// Env returns the environment bound to id (which must be registered).
func (n *Network) Env(id ident.ID) *Env {
	if _, ok := n.handlers[id]; !ok {
		panic(fmt.Sprintf("netsim: unknown node %v", id))
	}
	return &Env{net: n, id: id}
}

// Nodes returns the registered process identities.
func (n *Network) Nodes() ident.Set {
	var s ident.Set
	for id := range n.handlers {
		s.Add(id)
	}
	return s
}

// Crash marks id as crashed: it stops sending, receiving and firing timers.
// Without a later Recover this is the crash-stop model; with one it is the
// crash phase of a crash-recovery fault.
func (n *Network) Crash(id ident.ID) { n.crashed.Add(id) }

// Recover reverses a Crash: id sends, receives and fires newly armed timers
// again. Timers that came due while the process was down stay suppressed
// (the callback was dropped at fire time); reviving the process's protocol
// activity is the detector runtime's job (fd.Restartable).
func (n *Network) Recover(id ident.ID) { n.crashed.Remove(id) }

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id ident.ID) bool { return n.crashed.Has(id) }

// SetNeighbors restricts id's outgoing traffic to the given set (used by the
// partial-connectivity extension). It does not make links symmetric; callers
// model radio ranges by setting both directions.
func (n *Network) SetNeighbors(id ident.ID, neighbors ident.Set) {
	if n.neighbors == nil {
		n.neighbors = make(map[ident.ID]ident.Set)
	}
	n.neighbors[id] = neighbors.Clone()
}

// Neighbors returns the broadcast set for id: its configured neighborhood,
// or every other registered node in the default full mesh.
func (n *Network) Neighbors(id ident.ID) ident.Set {
	if nb, ok := n.neighbors[id]; ok {
		out := nb.Clone()
		out.Remove(id)
		return out
	}
	out := n.Nodes()
	out.Remove(id)
	return out
}

// AddLinkFilter pushes f onto the veto stack and returns a token for
// RemoveLinkFilter. Filters compose: a message is transmitted only if every
// installed filter passes.
func (n *Network) AddLinkFilter(f LinkFilter) int {
	n.nextToken++
	n.filters = append(n.filters, linkFilterEntry{token: n.nextToken, f: f})
	return n.nextToken
}

// RemoveLinkFilter removes the filter identified by token, reporting whether
// it was installed.
func (n *Network) RemoveLinkFilter(token int) bool {
	for i, e := range n.filters {
		if e.token == token {
			n.filters = append(n.filters[:i], n.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Partition splits the cluster into islands: a message is dropped unless its
// endpoints belong to the same island. Processes not listed in any island
// together form one implicit extra island, so Partition([]ident.ID{a, b})
// cuts {a, b} off from everyone else with one call. Partitions stack — a
// second Partition further constrains the first — and Heal removes the most
// recent one.
func (n *Network) Partition(islands ...[]ident.ID) {
	member := make(map[ident.ID]int)
	for i, island := range islands {
		for _, id := range island {
			member[id] = i + 1 // 0 is the implicit island of unlisted processes
		}
	}
	token := n.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
		return member[from] == member[to]
	})
	n.partitions = append(n.partitions, token)
}

// Heal removes the most recently installed partition, reporting whether one
// was active.
func (n *Network) Heal() bool {
	k := len(n.partitions)
	if k == 0 {
		return false
	}
	token := n.partitions[k-1]
	n.partitions = n.partitions[:k-1]
	return n.RemoveLinkFilter(token)
}

// Partitioned reports whether any partition is active.
func (n *Network) Partitioned() bool { return len(n.partitions) > 0 }

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// send is the single unicast transmission path. When a neighborhood is
// configured for the sender, point-to-point sends outside it are dropped
// too: in the radio model a node can only talk to processes within its
// range.
func (n *Network) send(from, to ident.ID, payload any) {
	if n.crashed.Has(from) || from == to {
		return
	}
	if nb, ok := n.neighbors[from]; ok && !nb.Has(to) {
		return
	}
	delay, ok := n.admit(from, to, payload)
	if !ok {
		return
	}
	n.sim.After(delay, func() { n.deliver(from, to, payload) })
}

// admit runs the send-time checks shared by unicast and broadcast — stats,
// link filter, loss — and samples the link delay for an admitted message.
func (n *Network) admit(from, to ident.ID, payload any) (time.Duration, bool) {
	now := n.sim.Now()
	n.stats.Sent++
	if n.cfg.SizeOf != nil {
		n.stats.Bytes += int64(n.cfg.SizeOf(payload))
	}
	for _, e := range n.filters {
		if !e.f(from, to, now) {
			n.stats.Dropped++
			return 0, false
		}
	}
	if n.cfg.DropRate > 0 && n.sim.Rand().Float64() < n.cfg.DropRate {
		n.stats.Dropped++
		return 0, false
	}
	return n.cfg.Delay.Delay(n.sim.Rand(), from, to, now), true
}

// deliver hands payload to the destination process, if it is still alive.
func (n *Network) deliver(from, to ident.ID, payload any) {
	if n.crashed.Has(to) {
		return
	}
	h, ok := n.handlers[to]
	if !ok {
		return
	}
	n.stats.Delivered++
	h.Deliver(from, payload)
}

// Env binds one process identity to the network; it implements node.Env.
type Env struct {
	net *Network
	id  ident.ID
}

var _ node.Env = (*Env)(nil)

// Self implements node.Env.
func (e *Env) Self() ident.ID { return e.id }

// Now implements node.Env.
func (e *Env) Now() time.Duration { return e.net.sim.Now() }

// After implements node.Env. The callback is suppressed if the process has
// crashed by the time it fires.
func (e *Env) After(d time.Duration, fn func()) node.Timer {
	return e.net.sim.After(d, func() {
		if e.net.crashed.Has(e.id) {
			return
		}
		fn()
	})
}

// Send implements node.Env.
func (e *Env) Send(to ident.ID, payload any) { e.net.send(e.id, to, payload) }

// Broadcast implements node.Env: one message per neighbor, each with an
// independent delay (models per-link radio/unicast fan-out). The whole
// fan-out is handed to the kernel as a single batch node — one scheduling
// operation instead of one heap insertion per neighbor — with delivery
// order identical to per-neighbor sends.
func (e *Env) Broadcast(payload any) {
	n := e.net
	if n.crashed.Has(e.id) {
		return
	}
	neighbors := n.Neighbors(e.id)
	items := n.bcast[:0]
	from := e.id
	neighbors.ForEach(func(to ident.ID) bool {
		delay, ok := n.admit(from, to, payload)
		if !ok {
			return true
		}
		items = append(items, des.BatchItem{D: delay, Fn: func() { n.deliver(from, to, payload) }})
		return true
	})
	n.sim.Batch(items)
	// Batch copied everything it needs; clear the scratch so the payload
	// and delivery closures are not pinned until the next broadcast.
	for k := range items {
		items[k] = des.BatchItem{}
	}
	n.bcast = items[:0]
}
