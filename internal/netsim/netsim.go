// Package netsim simulates an asynchronous message-passing network on the
// discrete-event kernel. Message delays are drawn per message from a
// pluggable DelayModel, so messages are arbitrarily reordered — exactly the
// asynchronous model of the paper. Links are reliable by default (the
// paper's assumption); a drop rate, a composable stack of link filters and
// first-class partitions are available for the extension and fault-scenario
// experiments (partial connectivity, mobility, partition/heal), and crashed
// processes can be revived for crash-recovery scenarios.
//
// In the repository README's architecture map this is the "asynchronous
// network model" layer: internal/faults schedules Crash/Recover/Partition/
// Heal events against it, and every internal/exp cluster sends through it.
// Scenario-driven connectivity changes use the composable
// AddLinkFilter/RemoveLinkFilter stack or the first-class Partition/Heal.
//
// # Sparse delivery
//
// The send path is built so per-message cost depends on the sender's
// connectivity degree, never on the cluster size n — the property that
// makes the n=1024–4096 topology sweeps (experiment LT) tractable:
//
//   - Broadcast fans out over a precomputed per-node neighbor list, rebuilt
//     lazily only when the topology epoch changes (AddNode/SetNeighbors).
//     No full-mesh ident.Set is ever materialized per message.
//   - Partition membership is an O(1) array lookup: each Partition event
//     opens a new epoch whose composite island labels (one int32 per
//     process, folding in every partition below it on the stack) are
//     computed once, so admitting a message compares two integers instead
//     of walking a closure stack.
//   - Timers armed by an already-crashed process are dropped at arm time
//     (the callback is suppressed at fire time anyway), so long downtimes
//     no longer fill the kernel queue with dead weight.
package netsim

import (
	"fmt"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Config parameterizes a simulated network.
type Config struct {
	// Delay is the latency model; required.
	Delay DelayModel
	// DropRate is the probability a message is lost (0 = reliable links,
	// the paper's model).
	DropRate float64
	// SizeOf, if set, returns the wire size of a payload for byte
	// accounting in Stats.
	SizeOf func(payload any) int
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent      int64 // messages handed to the network
	Delivered int64 // messages delivered to a live process
	Dropped   int64 // lost to DropRate, the link filter or a partition
	Bytes     int64 // wire bytes sent (only if Config.SizeOf set)
}

// LinkFilter vetoes transmissions at send time: return false to drop the
// message. Filters model disconnection and mobility; filters run before the
// partition check.
type LinkFilter func(from, to ident.ID, now time.Duration) bool

// linkFilterEntry is one installed filter with its removal token.
type linkFilterEntry struct {
	token int
	f     LinkFilter
}

// partitionLayer is one epoch of the partition stack. labels[id] is the
// composite island label of process id: it folds in the island assignment of
// every partition at or below this layer, so two processes may communicate
// iff their labels in the TOP layer are equal — one O(1) comparison per
// message however deep the stack. Processes outside the labels array (ids
// unknown when the layer was built) share the implicit label.
type partitionLayer struct {
	labels   []int32
	implicit int32
}

func (p *partitionLayer) label(id ident.ID) int32 {
	if id >= 0 && int(id) < len(p.labels) {
		return p.labels[id]
	}
	return p.implicit
}

// fanoutEntry is one node's cached broadcast fan-out list (ascending ID
// order, self excluded), valid for the topology epoch it was built at.
type fanoutEntry struct {
	epoch uint64
	ids   []ident.ID
}

// Network is the simulated medium. All methods must be called from the
// simulation goroutine (i.e., inside DES events or before the run starts).
type Network struct {
	sim *des.Simulator //fdlint:allow clonefields immutable kernel reference
	cfg Config         //fdlint:allow clonefields immutable config, set once at construction
	// handlers is a dense slab indexed by ID (nil = unregistered); process
	// identities are small dense integers, so a slice beats a map on every
	// delivery lookup.
	handlers []node.Handler
	crashed  ident.Set
	// neighbors, when non-nil for an id, restricts that id's broadcasts
	// and sends to the given set (extension topologies). nil = full mesh.
	neighbors map[ident.ID]ident.Set
	// topoEpoch stamps the current topology generation; AddNode and
	// SetNeighbors bump it, invalidating every cached fan-out list.
	topoEpoch uint64
	// fanout caches per-node broadcast fan-out lists, rebuilt lazily when
	// their epoch stamp is stale.
	//fdlint:allow clonefields derived cache; Restore invalidates it wholesale and rebuilds lazily
	fanout []fanoutEntry
	// filters is the composable veto stack: a message is admitted only if
	// every installed filter passes.
	filters   []linkFilterEntry
	nextToken int
	// partitions is the LIFO stack of partition epochs; only the top layer
	// is consulted per message (its labels are composite).
	partitions []partitionLayer
	stats      Stats
	// bcast is the broadcast fan-out scratch buffer, reused across
	// Broadcast calls (Batch reads it synchronously, and the kernel pools
	// the per-node item storage itself), so steady-state gossip stops
	// allocating one slice per broadcast.
	//fdlint:allow clonefields scratch buffer; contents are dead between Broadcast calls
	bcast []des.BatchItem
}

// New builds a network on sim.
func New(sim *des.Simulator, cfg Config) *Network {
	if cfg.Delay == nil {
		panic("netsim: Config.Delay is required")
	}
	return &Network{
		sim:       sim,
		cfg:       cfg,
		topoEpoch: 1,
	}
}

// registered reports whether id has a handler.
func (n *Network) registered(id ident.ID) bool {
	return id >= 0 && int(id) < len(n.handlers) && n.handlers[id] != nil
}

// AddNode registers a process and returns its environment. Registering the
// same id twice panics: it is a programming error in experiment setup.
func (n *Network) AddNode(id ident.ID, h node.Handler) *Env {
	if !id.Valid() {
		panic(fmt.Sprintf("netsim: invalid node id %v", id))
	}
	if n.registered(id) {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	for int(id) >= len(n.handlers) {
		n.handlers = append(n.handlers, nil)
		n.fanout = append(n.fanout, fanoutEntry{})
	}
	n.handlers[id] = h
	n.topoEpoch++ // full-mesh fan-out lists must now include id
	return &Env{net: n, id: id}
}

// Env returns the environment bound to id (which must be registered).
func (n *Network) Env(id ident.ID) *Env {
	if !n.registered(id) {
		panic(fmt.Sprintf("netsim: unknown node %v", id))
	}
	return &Env{net: n, id: id}
}

// Nodes returns the registered process identities.
func (n *Network) Nodes() ident.Set {
	s := ident.NewSet(len(n.handlers))
	for i, h := range n.handlers {
		if h != nil {
			s.Add(ident.ID(i))
		}
	}
	return s
}

// Crash marks id as crashed: it stops sending, receiving and firing timers.
// Without a later Recover this is the crash-stop model; with one it is the
// crash phase of a crash-recovery fault.
func (n *Network) Crash(id ident.ID) { n.crashed.Add(id) }

// Recover reverses a Crash: id sends, receives and fires newly armed timers
// again. Timers that came due while the process was down stay suppressed
// (armed-while-down timers were dropped at arm time, armed-before-the-crash
// ones at fire time); reviving the process's protocol activity is the
// detector runtime's job (fd.Restartable).
func (n *Network) Recover(id ident.ID) { n.crashed.Remove(id) }

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id ident.ID) bool { return n.crashed.Has(id) }

// SetNeighbors restricts id's outgoing traffic to the given set (used by the
// partial-connectivity extension). It does not make links symmetric; callers
// model radio ranges by setting both directions.
func (n *Network) SetNeighbors(id ident.ID, neighbors ident.Set) {
	if n.neighbors == nil {
		n.neighbors = make(map[ident.ID]ident.Set)
	}
	n.neighbors[id] = neighbors.Clone()
	n.topoEpoch++
}

// Neighbors returns the broadcast set for id: its configured neighborhood,
// or every other registered node in the default full mesh.
func (n *Network) Neighbors(id ident.ID) ident.Set {
	if nb, ok := n.neighbors[id]; ok {
		out := nb.Clone()
		out.Remove(id)
		return out
	}
	out := n.Nodes()
	out.Remove(id)
	return out
}

// fanoutFor returns id's broadcast fan-out list (ascending ID order, self
// excluded), rebuilding the cached copy if the topology changed since it was
// built. Unregistered neighbor ids stay in the list — sending to them counts
// as traffic and delivers to nobody, exactly as an explicit Send would.
func (n *Network) fanoutFor(id ident.ID) []ident.ID {
	fe := &n.fanout[id]
	if fe.epoch == n.topoEpoch {
		return fe.ids
	}
	ids := fe.ids[:0]
	if nb, ok := n.neighbors[id]; ok {
		nb.ForEach(func(to ident.ID) bool {
			if to != id {
				ids = append(ids, to)
			}
			return true
		})
	} else {
		for i, h := range n.handlers {
			if h != nil && ident.ID(i) != id {
				ids = append(ids, ident.ID(i))
			}
		}
	}
	fe.ids, fe.epoch = ids, n.topoEpoch
	return ids
}

// AddLinkFilter pushes f onto the veto stack and returns a token for
// RemoveLinkFilter. Filters compose: a message is transmitted only if every
// installed filter passes.
func (n *Network) AddLinkFilter(f LinkFilter) int {
	n.nextToken++
	n.filters = append(n.filters, linkFilterEntry{token: n.nextToken, f: f})
	return n.nextToken
}

// RemoveLinkFilter removes the filter identified by token, reporting whether
// it was installed.
func (n *Network) RemoveLinkFilter(token int) bool {
	for i, e := range n.filters {
		if e.token == token {
			n.filters = append(n.filters[:i], n.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Partition splits the cluster into islands: a message is dropped unless its
// endpoints belong to the same island. Processes not listed in any island
// together form one implicit extra island, so Partition([]ident.ID{a, b})
// cuts {a, b} off from everyone else with one call. Partitions stack — a
// second Partition further constrains the first — and Heal removes the most
// recent one. Listing a process in two islands (or twice at all) panics: it
// is a programming error in scenario setup, and silently letting the last
// listing win would corrupt the island semantics.
//
// Each call opens a new partition epoch: composite island labels folding in
// every active layer are computed once here, so the per-message check is a
// single array lookup per endpoint (see partitionLayer).
func (n *Network) Partition(islands ...[]ident.ID) {
	member := make(map[ident.ID]int32)
	size := len(n.handlers)
	for i, island := range islands {
		for _, id := range island {
			if !id.Valid() {
				continue
			}
			if _, dup := member[id]; dup {
				panic(fmt.Sprintf("netsim: process %v listed in two islands", id))
			}
			member[id] = int32(i + 1) // 0 is the implicit island of unlisted processes
			if int(id) >= size {
				size = int(id) + 1
			}
		}
	}
	var prev *partitionLayer
	if k := len(n.partitions); k > 0 {
		prev = &n.partitions[k-1]
		if len(prev.labels) > size {
			size = len(prev.labels)
		}
	}
	prevLabel := func(id ident.ID) int32 {
		if prev != nil {
			return prev.label(id)
		}
		return 0
	}
	prevImplicit := int32(0)
	if prev != nil {
		prevImplicit = prev.implicit
	}
	// Composite label = dense renumbering of the (label below, island here)
	// pair, so equality in this layer ⇔ equality in every layer.
	type combo struct{ below, island int32 }
	dict := make(map[combo]int32)
	next := int32(0)
	assign := func(c combo) int32 {
		if v, ok := dict[c]; ok {
			return v
		}
		dict[c] = next
		next++
		return dict[c]
	}
	layer := partitionLayer{labels: make([]int32, size)}
	for i := 0; i < size; i++ {
		layer.labels[i] = assign(combo{prevLabel(ident.ID(i)), member[ident.ID(i)]})
	}
	layer.implicit = assign(combo{prevImplicit, 0})
	n.partitions = append(n.partitions, layer)
}

// Heal removes the most recently installed partition, reporting whether one
// was active.
func (n *Network) Heal() bool {
	k := len(n.partitions)
	if k == 0 {
		return false
	}
	n.partitions = n.partitions[:k-1]
	return true
}

// Partitioned reports whether any partition is active.
func (n *Network) Partitioned() bool { return len(n.partitions) > 0 }

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Snapshot is a checkpoint of the network's mutable state, taken with
// Network.Snapshot and rolled back with Network.Restore. It pairs with
// des.Snapshot: the kernel checkpoint holds the in-flight messages (their
// delivery closures), this one holds liveness, topology, the filter stack,
// partitions and traffic counters. It shares no mutable storage with the
// live network.
type Snapshot struct {
	handlers   []node.Handler
	crashed    ident.Set
	neighbors  map[ident.ID]ident.Set
	topoEpoch  uint64
	filters    []linkFilterEntry
	nextToken  int
	partitions []partitionLayer
	stats      Stats
}

func cloneNeighbors(src map[ident.ID]ident.Set) map[ident.ID]ident.Set {
	if src == nil {
		return nil
	}
	out := make(map[ident.ID]ident.Set, len(src))
	for id, s := range src {
		out[id] = s.Clone()
	}
	return out
}

func clonePartitions(src []partitionLayer) []partitionLayer {
	if len(src) == 0 {
		return nil
	}
	out := make([]partitionLayer, len(src))
	for i, p := range src {
		out[i] = partitionLayer{labels: append([]int32(nil), p.labels...), implicit: p.implicit}
	}
	return out
}

// Snapshot captures the network's mutable state. Handler identities are
// shared by reference (the detector runtimes checkpoint their own state);
// everything else — crash set, neighborhoods, filter stack, partition
// layers, counters — is deep-copied.
func (n *Network) Snapshot() *Snapshot {
	return &Snapshot{
		handlers:   append([]node.Handler(nil), n.handlers...),
		crashed:    n.crashed.Clone(),
		neighbors:  cloneNeighbors(n.neighbors),
		topoEpoch:  n.topoEpoch,
		filters:    append([]linkFilterEntry(nil), n.filters...),
		nextToken:  n.nextToken,
		partitions: clonePartitions(n.partitions),
		stats:      n.stats,
	}
}

// Restore rolls the network back to the checkpoint, in place (the kernel's
// pending delivery closures captured this Network, so replication rewinds it
// rather than building a second one). Deep copies go both ways, so the same
// snapshot restores any number of times. The fan-out cache is invalidated
// wholesale: rebuilds are lazy, deterministic functions of the restored
// topology, so behavior is unchanged and stale epoch stamps from the
// rolled-back run can never validate against post-restore topologies.
func (n *Network) Restore(snap *Snapshot) {
	n.handlers = append(n.handlers[:0], snap.handlers...)
	n.crashed = snap.crashed.Clone()
	n.neighbors = cloneNeighbors(snap.neighbors)
	n.topoEpoch = snap.topoEpoch
	n.fanout = make([]fanoutEntry, len(n.handlers))
	n.filters = append(n.filters[:0], snap.filters...)
	n.nextToken = snap.nextToken
	n.partitions = append(n.partitions[:0], clonePartitions(snap.partitions)...)
	n.stats = snap.stats
}

// send is the single unicast transmission path. When a neighborhood is
// configured for the sender, point-to-point sends outside it are dropped
// too: in the radio model a node can only talk to processes within its
// range.
func (n *Network) send(from, to ident.ID, payload any) {
	if n.crashed.Has(from) || from == to {
		return
	}
	if nb, ok := n.neighbors[from]; ok && !nb.Has(to) {
		return
	}
	delay, ok := n.admit(from, to, payload)
	if !ok {
		return
	}
	n.sim.After(delay, func() { n.deliver(from, to, payload) })
}

// admit runs the send-time checks shared by unicast and broadcast — stats,
// link filters, the partition label check, loss — and samples the link delay
// for an admitted message.
func (n *Network) admit(from, to ident.ID, payload any) (time.Duration, bool) {
	now := n.sim.Now()
	n.stats.Sent++
	if n.cfg.SizeOf != nil {
		n.stats.Bytes += int64(n.cfg.SizeOf(payload))
	}
	for _, e := range n.filters {
		if !e.f(from, to, now) {
			n.stats.Dropped++
			return 0, false
		}
	}
	if k := len(n.partitions); k > 0 {
		p := &n.partitions[k-1]
		if p.label(from) != p.label(to) {
			n.stats.Dropped++
			return 0, false
		}
	}
	if n.cfg.DropRate > 0 && n.sim.Rand().Float64() < n.cfg.DropRate {
		n.stats.Dropped++
		return 0, false
	}
	// A LossModel decides loss and delay in one call (e.g. trace replay with
	// recorded loss samples); plain models keep the historical single Delay
	// call so their RNG draw sequence is unchanged.
	if lm, ok := n.cfg.Delay.(LossModel); ok {
		delay, deliver := lm.DelayLoss(n.sim.Rand(), from, to, now)
		if !deliver {
			n.stats.Dropped++
			return 0, false
		}
		return delay, true
	}
	return n.cfg.Delay.Delay(n.sim.Rand(), from, to, now), true
}

// deliver hands payload to the destination process, if it is still alive.
func (n *Network) deliver(from, to ident.ID, payload any) {
	if n.crashed.Has(to) || !n.registered(to) {
		return
	}
	n.stats.Delivered++
	n.handlers[to].Deliver(from, payload)
}

// Env binds one process identity to the network; it implements node.Env.
type Env struct {
	net *Network
	id  ident.ID
}

var _ node.Env = (*Env)(nil)

// deadTimer is the handle returned for timers dropped at arm time (armed by
// an already-crashed process): never pending, Stop always false.
type deadTimer struct{}

func (deadTimer) Stop() bool { return false }

// Self implements node.Env.
func (e *Env) Self() ident.ID { return e.id }

// Now implements node.Env.
func (e *Env) Now() time.Duration { return e.net.sim.Now() }

// After implements node.Env. A timer armed while the process is crashed is
// dropped immediately — its callback would be suppressed at fire time anyway
// (a crashed process executes nothing that could outlive a recovery), so
// scheduling it would only queue dead weight in the kernel for the length of
// the downtime. The callback of a live-armed timer is still suppressed if
// the process has crashed by the time it fires.
func (e *Env) After(d time.Duration, fn func()) node.Timer {
	net := e.net
	if net.crashed.Has(e.id) {
		return deadTimer{}
	}
	return net.sim.After(d, func() {
		if net.crashed.Has(e.id) {
			return
		}
		fn()
	})
}

// Send implements node.Env.
func (e *Env) Send(to ident.ID, payload any) { e.net.send(e.id, to, payload) }

// Broadcast implements node.Env: one message per neighbor, each with an
// independent delay (models per-link radio/unicast fan-out). The fan-out
// iterates the sender's precomputed neighbor list — cost proportional to its
// degree, not to n — and is handed to the kernel as a single batch node: one
// scheduling operation instead of one heap insertion per neighbor, with
// delivery order identical to per-neighbor sends.
func (e *Env) Broadcast(payload any) {
	n := e.net
	if n.crashed.Has(e.id) {
		return
	}
	items := n.bcast[:0]
	from := e.id
	for _, to := range n.fanoutFor(from) {
		delay, ok := n.admit(from, to, payload)
		if !ok {
			continue
		}
		items = append(items, des.BatchItem{D: delay, Fn: func() { n.deliver(from, to, payload) }})
	}
	n.sim.Batch(items)
	// Batch copied everything it needs; clear the scratch so the payload
	// and delivery closures are not pinned until the next broadcast.
	for k := range items {
		items[k] = des.BatchItem{}
	}
	n.bcast = items[:0]
}
