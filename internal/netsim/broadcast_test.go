package netsim

import (
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

type recorder struct {
	at   []time.Duration
	from []ident.ID
	sim  *des.Simulator
}

func (r *recorder) Deliver(from ident.ID, payload any) {
	r.at = append(r.at, r.sim.Now())
	r.from = append(r.from, from)
}

// TestBroadcastBatchMatchesUnicast checks the batched broadcast path against
// per-neighbor unicast sends: same rng-driven delays, same delivery times,
// same per-destination order, same stats.
func TestBroadcastBatchMatchesUnicast(t *testing.T) {
	build := func() (*des.Simulator, *Network, []*recorder) {
		sim := des.New(42)
		net := New(sim, Config{
			Delay:    Exponential{Min: time.Millisecond, Mean: 5 * time.Millisecond, Cap: time.Second},
			DropRate: 0.2,
		})
		recs := make([]*recorder, 6)
		for i := range recs {
			recs[i] = &recorder{sim: sim}
			net.AddNode(ident.ID(i), recs[i])
		}
		return sim, net, recs
	}

	simA, netA, recsA := build()
	envA := netA.Env(0)
	for round := 0; round < 50; round++ {
		simA.After(time.Duration(round)*10*time.Millisecond, func() { envA.Broadcast("q") })
	}
	simA.Run()

	simB, netB, recsB := build()
	envB := netB.Env(0)
	for round := 0; round < 50; round++ {
		simB.After(time.Duration(round)*10*time.Millisecond, func() {
			// Manual fan-out over the same neighbor order Broadcast uses.
			netB.Neighbors(0).ForEach(func(to ident.ID) bool {
				envB.Send(to, "q")
				return true
			})
		})
	}
	simB.Run()

	if netA.Stats() != netB.Stats() {
		t.Fatalf("stats diverged: batched %+v vs unicast %+v", netA.Stats(), netB.Stats())
	}
	for i := range recsA {
		a, b := recsA[i], recsB[i]
		if len(a.at) != len(b.at) {
			t.Fatalf("node %d: %d vs %d deliveries", i, len(a.at), len(b.at))
		}
		for j := range a.at {
			if a.at[j] != b.at[j] || a.from[j] != b.from[j] {
				t.Fatalf("node %d delivery %d: (%v, %v) vs (%v, %v)",
					i, j, a.at[j], a.from[j], b.at[j], b.from[j])
			}
		}
	}
}

// TestBroadcastCrashedSenderSilent ensures the batched path still honors the
// crash-stop model at send time.
func TestBroadcastCrashedSenderSilent(t *testing.T) {
	sim := des.New(1)
	net := New(sim, Config{Delay: Constant{D: time.Millisecond}})
	rec := &recorder{sim: sim}
	env := net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, rec)
	net.Crash(0)
	env.Broadcast("q")
	sim.Run()
	if len(rec.at) != 0 {
		t.Errorf("crashed sender delivered %d messages", len(rec.at))
	}
	if net.Stats().Sent != 0 {
		t.Errorf("crashed sender counted %d sends", net.Stats().Sent)
	}
}
