package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

type inbox struct {
	got []struct {
		from    ident.ID
		payload any
		at      time.Duration
	}
	sim *des.Simulator
}

func (ib *inbox) Deliver(from ident.ID, payload any) {
	ib.got = append(ib.got, struct {
		from    ident.ID
		payload any
		at      time.Duration
	}{from, payload, ib.sim.Now()})
}

func newNet(t *testing.T, seed int64, n int, model DelayModel) (*des.Simulator, *Network, []*inbox, []*Env) {
	t.Helper()
	sim := des.New(seed)
	net := New(sim, Config{Delay: model})
	boxes := make([]*inbox, n)
	envs := make([]*Env, n)
	for i := 0; i < n; i++ {
		boxes[i] = &inbox{sim: sim}
		envs[i] = net.AddNode(ident.ID(i), boxes[i])
	}
	return sim, net, boxes, envs
}

func TestSendDelivers(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 2, Constant{D: 3 * time.Millisecond})
	envs[0].Send(1, "hello")
	sim.Run()
	if len(boxes[1].got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(boxes[1].got))
	}
	m := boxes[1].got[0]
	if m.from != 0 || m.payload != "hello" || m.at != 3*time.Millisecond {
		t.Errorf("delivery = %+v", m)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelfSendIgnored(t *testing.T) {
	sim, _, boxes, envs := newNet(t, 1, 2, Constant{})
	envs[0].Send(0, "loop")
	sim.Run()
	if len(boxes[0].got) != 0 {
		t.Error("self-send delivered")
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	sim, _, boxes, envs := newNet(t, 1, 4, Constant{D: time.Millisecond})
	envs[2].Broadcast("q")
	sim.Run()
	for i, ib := range boxes {
		want := 1
		if i == 2 {
			want = 0
		}
		if len(ib.got) != want {
			t.Errorf("node %d got %d messages, want %d", i, len(ib.got), want)
		}
	}
}

func TestCrashStopsEverything(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 3, Constant{D: time.Millisecond})
	fired := false
	envs[1].After(5*time.Millisecond, func() { fired = true })

	sim.After(0, func() {
		net.Crash(1)
		envs[0].Send(1, "to-crashed") // delivery suppressed
		envs[1].Send(0, "from-crashed")
		envs[1].Broadcast("bcast-from-crashed")
	})
	sim.Run()
	if len(boxes[1].got) != 0 {
		t.Error("crashed node received a message")
	}
	if len(boxes[0].got) != 0 || len(boxes[2].got) != 0 {
		t.Error("crashed node's messages were sent")
	}
	if fired {
		t.Error("crashed node's timer fired")
	}
	if !net.Crashed(1) || net.Crashed(0) {
		t.Error("Crashed() bookkeeping wrong")
	}
}

func TestCrashMidFlight(t *testing.T) {
	// A message already in flight to a node that crashes before delivery is
	// not delivered (the process stopped executing).
	sim, net, boxes, envs := newNet(t, 1, 2, Constant{D: 10 * time.Millisecond})
	envs[0].Send(1, "late")
	sim.After(time.Millisecond, func() { net.Crash(1) })
	sim.Run()
	if len(boxes[1].got) != 0 {
		t.Error("message delivered to node that crashed before arrival")
	}
}

func TestDropRate(t *testing.T) {
	sim := des.New(7)
	net := New(sim, Config{Delay: Constant{}, DropRate: 0.5})
	ib := &inbox{sim: sim}
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, ib)
	env := net.Env(0)
	const total = 2000
	for i := 0; i < total; i++ {
		env.Send(1, i)
	}
	sim.Run()
	st := net.Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("stats = %+v, want both drops and deliveries", st)
	}
	ratio := float64(st.Dropped) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("drop ratio = %.3f, want ≈0.5", ratio)
	}
}

func TestLinkFilter(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 3, Constant{})
	net.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
		return !(from == 0 && to == 2) // sever 0→2 only
	})
	envs[0].Send(1, "a")
	envs[0].Send(2, "b")
	sim.Run()
	if len(boxes[1].got) != 1 {
		t.Error("allowed link blocked")
	}
	if len(boxes[2].got) != 0 {
		t.Error("filtered link delivered")
	}
	if net.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", net.Stats().Dropped)
	}
}

func TestAddLinkFiltersCompose(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 3, Constant{})
	t1 := net.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
		return !(from == 0 && to == 1)
	})
	t2 := net.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
		return !(from == 0 && to == 2)
	})
	envs[0].Send(1, "a")
	envs[0].Send(2, "b")
	sim.Run()
	if len(boxes[1].got) != 0 || len(boxes[2].got) != 0 {
		t.Error("stacked filters did not both apply")
	}
	if !net.RemoveLinkFilter(t1) {
		t.Error("RemoveLinkFilter = false for installed filter")
	}
	envs[0].Send(1, "a2")
	envs[0].Send(2, "b2")
	sim.Run()
	if len(boxes[1].got) != 1 {
		t.Error("link stayed blocked after its filter was removed")
	}
	if len(boxes[2].got) != 0 {
		t.Error("remaining filter stopped applying")
	}
	if net.RemoveLinkFilter(t1) {
		t.Error("RemoveLinkFilter = true for already-removed token")
	}
	_ = t2
}

func TestPartitionAndHeal(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 4, Constant{})
	// Island {0,1}; {2,3} form the implicit rest island.
	net.Partition([]ident.ID{0, 1})
	if !net.Partitioned() {
		t.Error("Partitioned = false with an active partition")
	}
	envs[0].Send(1, "same-island")
	envs[0].Send(2, "cross")
	envs[2].Send(3, "rest-island")
	envs[3].Send(1, "cross-back")
	sim.Run()
	if len(boxes[1].got) != 1 || len(boxes[3].got) != 1 {
		t.Error("intra-island traffic blocked")
	}
	if len(boxes[2].got) != 0 {
		t.Error("cross-island traffic delivered")
	}
	if !net.Heal() {
		t.Error("Heal = false with an active partition")
	}
	if net.Partitioned() {
		t.Error("Partitioned = true after heal")
	}
	envs[0].Send(2, "healed")
	sim.Run()
	if len(boxes[2].got) != 1 {
		t.Error("traffic still blocked after heal")
	}
	if net.Heal() {
		t.Error("Heal = true with no partition active")
	}
}

func TestPartitionsStack(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 4, Constant{})
	net.Partition([]ident.ID{0, 1})             // {0,1} | {2,3}
	net.Partition([]ident.ID{0}, []ident.ID{1}) // further splits 0 from 1
	envs[0].Send(1, "blocked-by-second")
	sim.Run()
	if len(boxes[1].got) != 0 {
		t.Error("nested partition did not apply")
	}
	net.Heal() // pops the second partition only
	envs[0].Send(1, "intra-island-again")
	envs[0].Send(2, "still-cross")
	sim.Run()
	if len(boxes[1].got) != 1 {
		t.Error("heal did not pop the most recent partition")
	}
	if len(boxes[2].got) != 0 {
		t.Error("outer partition vanished with the inner heal")
	}
}

func TestRecoverRevivesProcess(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 2, Constant{D: time.Millisecond})
	net.Crash(1)
	envs[0].Send(1, "while-down")
	sim.Run()
	if len(boxes[1].got) != 0 {
		t.Error("crashed node received a message")
	}
	net.Recover(1)
	if net.Crashed(1) {
		t.Error("Crashed = true after Recover")
	}
	envs[0].Send(1, "after-recovery")
	envs[1].Send(0, "from-recovered")
	fired := false
	envs[1].After(time.Millisecond, func() { fired = true })
	sim.Run()
	if len(boxes[1].got) != 1 {
		t.Error("recovered node did not receive")
	}
	if len(boxes[0].got) != 1 {
		t.Error("recovered node could not send")
	}
	if !fired {
		t.Error("recovered node's timer suppressed")
	}
}

func TestNeighborsRestrictBroadcast(t *testing.T) {
	sim, net, boxes, envs := newNet(t, 1, 4, Constant{})
	net.SetNeighbors(0, ident.SetOf(1, 2))
	envs[0].Broadcast("q")
	sim.Run()
	if len(boxes[1].got) != 1 || len(boxes[2].got) != 1 {
		t.Error("neighbors did not receive broadcast")
	}
	if len(boxes[3].got) != 0 {
		t.Error("non-neighbor received broadcast")
	}
}

func TestNeighborsExcludeSelf(t *testing.T) {
	sim, _, boxes, envs := newNet(t, 1, 3, Constant{})
	// A neighborhood set that (incorrectly) includes self must not cause
	// self-delivery: ranges include self in the paper's definition.
	envs[0].net.SetNeighbors(0, ident.SetOf(0, 1))
	envs[0].Broadcast("q")
	sim.Run()
	if len(boxes[0].got) != 0 {
		t.Error("self received own broadcast")
	}
	if len(boxes[1].got) != 1 {
		t.Error("neighbor missing broadcast")
	}
}

func TestSizeAccounting(t *testing.T) {
	sim := des.New(1)
	net := New(sim, Config{Delay: Constant{}, SizeOf: func(p any) int { return len(p.(string)) }})
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, node.HandlerFunc(func(ident.ID, any) {}))
	net.Env(0).Send(1, "12345")
	sim.Run()
	if net.Stats().Bytes != 5 {
		t.Errorf("Bytes = %d, want 5", net.Stats().Bytes)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, Config{Delay: Constant{}})
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
}

func TestMissingDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without Delay did not panic")
		}
	}()
	New(des.New(1), Config{})
}

func TestUnknownEnvPanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, Config{Delay: Constant{}})
	defer func() {
		if recover() == nil {
			t.Error("Env of unknown node did not panic")
		}
	}()
	net.Env(3)
}

func TestEnvAfterTimerStop(t *testing.T) {
	sim, _, _, envs := newNet(t, 1, 2, Constant{})
	fired := false
	tm := envs[0].After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop = false on pending timer")
	}
	sim.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestDeadTimerDroppedAtArm(t *testing.T) {
	// Timers armed by an already-crashed process must not reach the kernel
	// queue: long downtimes otherwise accumulate dead events (queue
	// pressure), even though the callbacks are suppressed at fire time.
	sim, net, _, envs := newNet(t, 1, 2, Constant{})
	net.Crash(1)
	before := sim.Pending()
	fired := false
	var timers []node.Timer
	for i := 0; i < 1000; i++ {
		timers = append(timers, envs[1].After(time.Hour, func() { fired = true }))
	}
	if got := sim.Pending(); got != before {
		t.Fatalf("Pending = %d after arming dead timers, want %d", got, before)
	}
	for _, tm := range timers {
		if tm.Stop() {
			t.Fatal("Stop = true on a dead timer")
		}
	}
	sim.Run()
	if fired {
		t.Error("dead timer fired")
	}
}

func TestDeadTimersDoNotPerturbTrace(t *testing.T) {
	// Arming timers while crashed must leave the simulation's observable
	// trace byte-identical to a run that never armed them: the RNG stream,
	// delivery times and step count cannot shift.
	run := func(armDeadTimers bool) ([]time.Duration, uint64) {
		sim := des.New(42)
		net := New(sim, Config{Delay: Exponential{Min: time.Millisecond, Mean: 5 * time.Millisecond}, DropRate: 0.1})
		var tr []time.Duration
		for i := 0; i < 4; i++ {
			net.AddNode(ident.ID(i), node.HandlerFunc(func(ident.ID, any) { tr = append(tr, sim.Now()) }))
		}
		net.Crash(3)
		if armDeadTimers {
			for i := 0; i < 100; i++ {
				net.Env(3).After(time.Duration(i)*time.Millisecond, func() {})
			}
		}
		for round := 0; round < 3; round++ {
			at := time.Duration(round) * 10 * time.Millisecond
			sim.At(at, func() {
				for i := 0; i < 3; i++ {
					net.Env(ident.ID(i)).Broadcast(round)
				}
			})
		}
		sim.Run()
		return tr, sim.Steps()
	}
	gotTr, gotSteps := run(true)
	wantTr, wantSteps := run(false)
	if gotSteps != wantSteps {
		t.Errorf("Steps = %d with dead timers, %d without", gotSteps, wantSteps)
	}
	if len(gotTr) != len(wantTr) {
		t.Fatalf("trace length %d vs %d", len(gotTr), len(wantTr))
	}
	for i := range gotTr {
		if gotTr[i] != wantTr[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, gotTr[i], wantTr[i])
		}
	}
}

func TestPartitionDuplicateIslandPanics(t *testing.T) {
	_, net, _, _ := newNet(t, 1, 4, Constant{})
	defer func() {
		if recover() == nil {
			t.Error("process in two islands did not panic")
		}
	}()
	net.Partition([]ident.ID{0, 1}, []ident.ID{1, 2})
}

func TestPartitionDuplicateWithinIslandPanics(t *testing.T) {
	_, net, _, _ := newNet(t, 1, 4, Constant{})
	defer func() {
		if recover() == nil {
			t.Error("process listed twice in one island did not panic")
		}
	}()
	net.Partition([]ident.ID{0, 0})
}

func TestPartitionCoversLateNodes(t *testing.T) {
	// A node registered after the partition was installed belongs to the
	// implicit island, like any process the partition did not list.
	sim, net, _, _ := newNet(t, 1, 3, Constant{})
	net.Partition([]ident.ID{0})
	late := &inbox{sim: sim}
	net.AddNode(7, late)
	net.Env(0).Send(7, "cross")  // 0 is alone in its island
	net.Env(1).Send(7, "within") // 1 and 7 share the implicit island
	sim.Run()
	if len(late.got) != 1 || late.got[0].payload != "within" {
		t.Errorf("late node deliveries = %+v, want only the implicit-island message", late.got)
	}
}

func TestBroadcastFanoutTracksTopologyChanges(t *testing.T) {
	// The cached fan-out lists must be invalidated by SetNeighbors and by
	// AddNode (the full-mesh fan-out grows with the membership).
	sim, net, boxes, envs := newNet(t, 1, 3, Constant{})
	envs[0].Broadcast("a") // caches 0's full-mesh fan-out {1, 2}
	late := &inbox{sim: sim}
	net.AddNode(3, late)
	envs[0].Broadcast("b")
	sim.Run()
	if len(late.got) != 1 {
		t.Errorf("node added after a broadcast got %d messages, want 1", len(late.got))
	}
	net.SetNeighbors(0, ident.SetOf(2))
	envs[0].Broadcast("c")
	sim.Run()
	if len(boxes[1].got) != 2 {
		t.Errorf("node 1 got %d messages, want 2 (excluded by SetNeighbors)", len(boxes[1].got))
	}
	if len(boxes[2].got) != 3 {
		t.Errorf("node 2 got %d messages, want 3", len(boxes[2].got))
	}
	net.SetNeighbors(0, ident.SetOf(1, 2))
	envs[0].Broadcast("d")
	sim.Run()
	if len(boxes[1].got) != 3 {
		t.Errorf("node 1 got %d messages after re-adding, want 3", len(boxes[1].got))
	}
}

// --- Delay model tests ---

func TestConstantDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := Constant{D: 5 * time.Millisecond}
	if c.Delay(r, 0, 1, 0) != 5*time.Millisecond {
		t.Error("Constant delay wrong")
	}
}

func TestUniformDelayBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	u := Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Delay(r, 0, 1, 0)
		if d < u.Min || d > u.Max {
			t.Fatalf("Uniform sample %v outside [%v,%v]", d, u.Min, u.Max)
		}
	}
	degenerate := Uniform{Min: time.Second, Max: time.Second}
	if degenerate.Delay(r, 0, 1, 0) != time.Second {
		t.Error("degenerate Uniform wrong")
	}
}

func TestExponentialDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e := Exponential{Min: time.Millisecond, Mean: 2 * time.Millisecond, Cap: 50 * time.Millisecond}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := e.Delay(r, 0, 1, 0)
		if d < e.Min || d > e.Cap {
			t.Fatalf("Exponential sample %v outside bounds", d)
		}
		sum += d
	}
	mean := sum / n
	want := 3 * time.Millisecond // Min + Mean
	if mean < want-500*time.Microsecond || mean > want+500*time.Microsecond {
		t.Errorf("Exponential mean = %v, want ≈%v", mean, want)
	}
}

func TestParetoDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := Pareto{Scale: time.Millisecond, Alpha: 2, Cap: time.Second}
	for i := 0; i < 10000; i++ {
		d := p.Delay(r, 0, 1, 0)
		if d < p.Scale || d > p.Cap {
			t.Fatalf("Pareto sample %v outside [scale, cap]", d)
		}
	}
	// Alpha <= 0 falls back to 1 rather than panicking.
	bad := Pareto{Scale: time.Millisecond, Alpha: 0, Cap: time.Second}
	if d := bad.Delay(r, 0, 1, 0); d < time.Millisecond {
		t.Errorf("Pareto with alpha=0 sample %v", d)
	}
}

func TestBiasDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := Bias{
		Base:    Constant{D: 100 * time.Millisecond},
		Fast:    Constant{D: time.Millisecond},
		Favored: ident.SetOf(3),
	}
	if d := b.Delay(r, 3, 0, 0); d != time.Millisecond {
		t.Errorf("favored sender delay = %v, want 1ms", d)
	}
	if d := b.Delay(r, 0, 3, 0); d != time.Millisecond {
		t.Errorf("favored receiver delay = %v, want 1ms (round trips must be fast)", d)
	}
	if d := b.Delay(r, 0, 1, 0); d != 100*time.Millisecond {
		t.Errorf("unfavored delay = %v, want 100ms", d)
	}
}

func TestDisturbanceDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := Disturbance{
		Base:   Constant{D: time.Millisecond},
		Nodes:  ident.SetOf(1),
		Start:  10 * time.Millisecond,
		End:    20 * time.Millisecond,
		Factor: 50,
	}
	if got := d.Delay(r, 1, 0, 5*time.Millisecond); got != time.Millisecond {
		t.Errorf("before window = %v", got)
	}
	if got := d.Delay(r, 1, 0, 15*time.Millisecond); got != 50*time.Millisecond {
		t.Errorf("inside window (from) = %v, want 50ms", got)
	}
	if got := d.Delay(r, 0, 1, 15*time.Millisecond); got != 50*time.Millisecond {
		t.Errorf("inside window (to) = %v, want 50ms", got)
	}
	if got := d.Delay(r, 0, 2, 15*time.Millisecond); got != time.Millisecond {
		t.Errorf("inside window, untouched nodes = %v, want 1ms", got)
	}
	if got := d.Delay(r, 1, 0, 20*time.Millisecond); got != time.Millisecond {
		t.Errorf("End is exclusive; got %v", got)
	}
}

func TestQuickNetworkDeterminism(t *testing.T) {
	// Same seed + same workload ⇒ identical delivery traces.
	run := func(seed int64) []time.Duration {
		sim := des.New(seed)
		net := New(sim, Config{Delay: Exponential{Min: time.Millisecond, Mean: 5 * time.Millisecond}, DropRate: 0.1})
		var tr []time.Duration
		for i := 0; i < 5; i++ {
			net.AddNode(ident.ID(i), node.HandlerFunc(func(ident.ID, any) { tr = append(tr, sim.Now()) }))
		}
		for i := 0; i < 5; i++ {
			net.Env(ident.ID(i)).Broadcast(i)
		}
		sim.Run()
		return tr
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBroadcast32(b *testing.B) {
	sim := des.New(1)
	net := New(sim, Config{Delay: Uniform{Min: time.Microsecond, Max: time.Millisecond}})
	for i := 0; i < 32; i++ {
		net.AddNode(ident.ID(i), node.HandlerFunc(func(ident.ID, any) {}))
	}
	env := net.Env(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Broadcast("q")
		sim.Run()
	}
}
