package netsim

import (
	"math"
	"math/rand"
	"time"

	"asyncfd/internal/ident"
)

// DelayModel samples the one-way latency of a message. Implementations must
// be pure functions of their arguments and the supplied random source so
// that simulations stay reproducible.
type DelayModel interface {
	Delay(r *rand.Rand, from, to ident.ID, now time.Duration) time.Duration
}

// Constant delays every message by exactly D.
type Constant struct {
	D time.Duration
}

// Delay implements DelayModel.
func (c Constant) Delay(*rand.Rand, ident.ID, ident.ID, time.Duration) time.Duration { return c.D }

// Uniform draws delays uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Delay implements DelayModel.
func (u Uniform) Delay(r *rand.Rand, _, _ ident.ID, _ time.Duration) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// Exponential draws delays as Min + Exp(Mean). The exponential tail models
// congested asynchronous links; Cap (if positive) truncates pathological
// samples to keep virtual runs finite.
type Exponential struct {
	Min  time.Duration
	Mean time.Duration // mean of the exponential part
	Cap  time.Duration // 0 = uncapped
}

// Delay implements DelayModel.
func (e Exponential) Delay(r *rand.Rand, _, _ ident.ID, _ time.Duration) time.Duration {
	d := e.Min + time.Duration(r.ExpFloat64()*float64(e.Mean))
	if e.Cap > 0 && d > e.Cap {
		return e.Cap
	}
	return d
}

// Pareto draws delays as Scale·U^(-1/Alpha): a heavy tail that violates any
// fixed timeout with constant probability — the adversarial regime for
// timer-based detectors.
type Pareto struct {
	Scale time.Duration // minimum delay (x_m)
	Alpha float64       // tail index; smaller = heavier tail
	Cap   time.Duration // 0 = uncapped
}

// Delay implements DelayModel.
func (p Pareto) Delay(r *rand.Rand, _, _ ident.ID, _ time.Duration) time.Duration {
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := time.Duration(float64(p.Scale) * math.Pow(u, -1/alpha))
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}

// Bias makes every message touching a Favored process (sent by it or to it)
// travel with the Fast model instead of Base. Favoring one correct process
// realizes the paper's behavioral assumption: queries reach it quickly and
// its responses arrive among the first n−f ("winning responses") at every
// querier, eventually and forever. The responsiveness property is about the
// whole query→response round trip, which is why both directions are
// accelerated. Remove the bias and the assumption may not hold — experiment
// E6 measures exactly that.
type Bias struct {
	Base    DelayModel
	Fast    DelayModel
	Favored ident.Set
}

// Delay implements DelayModel.
func (b Bias) Delay(r *rand.Rand, from, to ident.ID, now time.Duration) time.Duration {
	if b.Favored.Has(from) || b.Favored.Has(to) {
		return b.Fast.Delay(r, from, to, now)
	}
	return b.Base.Delay(r, from, to, now)
}

// Disturbance multiplies delays touching Nodes by Factor during
// [Start, End). It models a transient slowdown (GC pause, route flap,
// overloaded host) — the scenario where a failure detector makes mistakes
// and must correct them.
type Disturbance struct {
	Base       DelayModel
	Nodes      ident.Set
	Start, End time.Duration
	Factor     float64
}

// Delay implements DelayModel.
func (d Disturbance) Delay(r *rand.Rand, from, to ident.ID, now time.Duration) time.Duration {
	base := d.Base.Delay(r, from, to, now)
	if now >= d.Start && now < d.End && (d.Nodes.Has(from) || d.Nodes.Has(to)) {
		return time.Duration(float64(base) * d.Factor)
	}
	return base
}

// Compile-time interface checks.
var (
	_ DelayModel = Constant{}
	_ DelayModel = Uniform{}
	_ DelayModel = Exponential{}
	_ DelayModel = Pareto{}
	_ DelayModel = Bias{}
	_ DelayModel = Disturbance{}
)
