package netsim

import (
	"fmt"
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/trace"
)

// lossySeries is a trace with a pronounced delay profile and a loss window,
// long enough that different link phases land on different samples.
func lossySeries(t *testing.T) *trace.DelaySeries {
	t.Helper()
	s, err := trace.Synthetic(trace.SyntheticConfig{
		Seed:     7,
		Count:    200,
		Tick:     50 * time.Millisecond,
		Base:     time.Millisecond,
		Scale:    2 * time.Millisecond,
		Alpha:    1.2,
		Cap:      80 * time.Millisecond,
		LossRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveReplay sends a message on every ordered pair every 100ms for 5s and
// returns one line per delivery ("t=... from->to at=..."), the delivery
// fingerprint of the run.
func driveReplay(t *testing.T, seed int64, series *trace.DelaySeries) []string {
	t.Helper()
	sim, _, boxes, envs := newNet(t, seed, 4, Replay{Series: series})
	for tick := time.Duration(0); tick < 5*time.Second; tick += 100 * time.Millisecond {
		tick := tick
		sim.At(tick, func() {
			for i, env := range envs {
				for j := range envs {
					if i != j {
						env.Send(ident.ID(j), tick)
					}
				}
			}
		})
	}
	sim.Run()
	var lines []string
	for i, ib := range boxes {
		for _, m := range ib.got {
			lines = append(lines, fmt.Sprintf("%v %v->p%d at=%v", m.payload, m.from, i, m.at))
		}
	}
	return lines
}

func TestReplayDeterministicAcrossRuns(t *testing.T) {
	series := lossySeries(t)
	a := driveReplay(t, 1, series)
	b := driveReplay(t, 1, series)
	if len(a) == 0 {
		t.Fatal("no deliveries")
	}
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestReplaySeedIndependent(t *testing.T) {
	// Replay never touches the RNG, so the kernel seed must not change the
	// delivery schedule.
	series := lossySeries(t)
	a := driveReplay(t, 1, series)
	b := driveReplay(t, 999, series)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ across seeds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across seeds:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestReplayDropsLossSamples(t *testing.T) {
	series := lossySeries(t)
	sim, net, _, envs := newNet(t, 1, 4, Replay{Series: series})
	for tick := time.Duration(0); tick < 10*time.Second; tick += 100 * time.Millisecond {
		sim.At(tick, func() {
			for i, env := range envs {
				for j := range envs {
					if i != j {
						env.Send(ident.ID(j), "m")
					}
				}
			}
		})
	}
	sim.Run()
	st := net.Stats()
	if st.Dropped == 0 {
		t.Error("lossy trace dropped nothing")
	}
	if st.Delivered == 0 {
		t.Error("lossy trace delivered nothing")
	}
	if st.Sent != st.Delivered+st.Dropped {
		t.Errorf("stats don't balance: %+v", st)
	}
}

func TestReplayConsumesNoRNGDraws(t *testing.T) {
	// Drive lossy replay traffic through one simulation, none through a
	// second with the same seed. If replay (or its loss decisions) consumed
	// any RNG draws the streams would have diverged.
	series := lossySeries(t)
	sim, _, _, envs := newNet(t, 42, 3, Replay{Series: series})
	for tick := time.Duration(0); tick < 5*time.Second; tick += 50 * time.Millisecond {
		sim.At(tick, func() {
			for i, env := range envs {
				for j := range envs {
					if i != j {
						env.Send(ident.ID(j), "m")
					}
				}
			}
		})
	}
	sim.Run()

	fresh := des.New(42)
	for i := 0; i < 8; i++ {
		if got, want := sim.Rand().Int63(), fresh.Rand().Int63(); got != want {
			t.Fatalf("RNG draw %d diverged after replay traffic: got %d want %d", i, got, want)
		}
	}
}

func TestReplaySnapshotRestoreIdentical(t *testing.T) {
	// Fork path: warm to 2s, snapshot, run to 6s twice from the same
	// checkpoint. Replay has no cursor state, so both continuations must
	// deliver identically.
	series := lossySeries(t)
	run := func() []string {
		sim, net, boxes, envs := newNet(t, 5, 4, Replay{Series: series})
		for tick := time.Duration(0); tick < 6*time.Second; tick += 100 * time.Millisecond {
			tick := tick
			sim.At(tick, func() {
				for i, env := range envs {
					for j := range envs {
						if i != j {
							env.Send(ident.ID(j), tick)
						}
					}
				}
			})
		}
		sim.RunUntil(2 * time.Second)
		ksnap := sim.Snapshot()
		nsnap := net.Snapshot()
		// Compare only the post-checkpoint window: drop warm-up deliveries.
		for _, ib := range boxes {
			ib.got = ib.got[:0]
		}

		collect := func() []string {
			sim.RunUntil(6 * time.Second)
			var lines []string
			for i, ib := range boxes {
				for _, m := range ib.got {
					lines = append(lines, fmt.Sprintf("%v %v->p%d at=%v", m.payload, m.from, i, m.at))
				}
			}
			return lines
		}
		first := collect()
		// Rewind: clear the inboxes, restore, rerun the same window.
		for _, ib := range boxes {
			ib.got = ib.got[:0]
		}
		sim.Restore(ksnap)
		net.Restore(nsnap)
		second := collect()
		if len(first) != len(second) {
			t.Fatalf("restored run delivered %d messages, first run %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("delivery %d differs after restore:\n  %s\n  %s", i, first[i], second[i])
			}
		}
		return first
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across runs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestReplayDirectionsDecorrelated(t *testing.T) {
	// The two directions of a link hash to different phases, so their delay
	// sequences should differ somewhere over a long window.
	series := lossySeries(t)
	r := Replay{Series: series}
	for tick := time.Duration(0); tick < 10*time.Second; tick += 100 * time.Millisecond {
		if r.Delay(nil, 0, 1, tick) != r.Delay(nil, 1, 0, tick) {
			return
		}
	}
	t.Error("forward and reverse link delays identical over 10s — phases not decorrelated")
}
