package netsim

import (
	"math/rand"
	"testing"
	"time"

	"asyncfd/internal/ident"
)

// delay_test.go exercises the distribution edges of every DelayModel: caps,
// degenerate parameters and window boundaries. The broader statistical
// checks live in netsim_test.go.

func samples(m DelayModel, n int, now time.Duration) []time.Duration {
	r := rand.New(rand.NewSource(1))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = m.Delay(r, 0, 1, now)
	}
	return out
}

func TestUniformDegenerateRange(t *testing.T) {
	// Max <= Min collapses to Min instead of panicking in Int63n.
	for _, m := range []Uniform{
		{Min: 3 * time.Millisecond, Max: 3 * time.Millisecond},
		{Min: 3 * time.Millisecond, Max: time.Millisecond},
	} {
		for _, d := range samples(m, 100, 0) {
			if d != 3*time.Millisecond {
				t.Fatalf("degenerate Uniform drew %v, want Min", d)
			}
		}
	}
}

func TestUniformInclusiveBounds(t *testing.T) {
	m := Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}
	sawMin, sawMax := false, false
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		d := m.Delay(r, 0, 1, 0)
		if d < m.Min || d > m.Max {
			t.Fatalf("Uniform drew %v outside [%v, %v]", d, m.Min, m.Max)
		}
		// The bounds are reachable only at nanosecond granularity; just
		// check the samples spread across the range.
		if d < m.Min+500*time.Microsecond {
			sawMin = true
		}
		if d > m.Max-500*time.Microsecond {
			sawMax = true
		}
	}
	if !sawMin || !sawMax {
		t.Errorf("Uniform never approached its bounds (min %v max %v)", sawMin, sawMax)
	}
}

func TestExponentialCapTruncates(t *testing.T) {
	m := Exponential{Min: time.Millisecond, Mean: 10 * time.Millisecond, Cap: 12 * time.Millisecond}
	capped := 0
	for _, d := range samples(m, 50000, 0) {
		if d < m.Min {
			t.Fatalf("Exponential drew %v below Min", d)
		}
		if d > m.Cap {
			t.Fatalf("Exponential drew %v above Cap %v", d, m.Cap)
		}
		if d == m.Cap {
			capped++
		}
	}
	if capped == 0 {
		t.Error("cap never hit despite Mean close to Cap")
	}
}

func TestExponentialUncapped(t *testing.T) {
	m := Exponential{Min: time.Millisecond, Mean: 10 * time.Millisecond}
	max := time.Duration(0)
	for _, d := range samples(m, 50000, 0) {
		if d > max {
			max = d
		}
	}
	if max <= 50*time.Millisecond {
		t.Errorf("uncapped exponential tail too short: max %v", max)
	}
}

func TestParetoScaleFloorAndCap(t *testing.T) {
	m := Pareto{Scale: 2 * time.Millisecond, Alpha: 1, Cap: 100 * time.Millisecond}
	capped := 0
	for _, d := range samples(m, 100000, 0) {
		if d < m.Scale {
			t.Fatalf("Pareto drew %v below Scale (U^(-1/α) ≥ 1)", d)
		}
		if d > m.Cap {
			t.Fatalf("Pareto drew %v above Cap", d)
		}
		if d == m.Cap {
			capped++
		}
	}
	if capped == 0 {
		t.Error("α=1 Pareto with a 50×Scale cap should hit the cap")
	}
}

func TestParetoNonPositiveAlphaDefaults(t *testing.T) {
	bad := Pareto{Scale: time.Millisecond, Alpha: 0, Cap: time.Second}
	good := Pareto{Scale: time.Millisecond, Alpha: 1, Cap: time.Second}
	a, b := samples(bad, 1000, 0), samples(good, 1000, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Alpha=0 must fall back to α=1: sample %d differs (%v vs %v)", i, a[i], b[i])
		}
	}
}

func TestBiasDirections(t *testing.T) {
	m := Bias{
		Base:    Constant{D: 10 * time.Millisecond},
		Fast:    Constant{D: time.Millisecond},
		Favored: ident.SetOf(2),
	}
	r := rand.New(rand.NewSource(1))
	if d := m.Delay(r, 2, 5, 0); d != time.Millisecond {
		t.Errorf("favored sender not accelerated: %v", d)
	}
	if d := m.Delay(r, 5, 2, 0); d != time.Millisecond {
		t.Errorf("favored receiver not accelerated: %v", d)
	}
	if d := m.Delay(r, 4, 5, 0); d != 10*time.Millisecond {
		t.Errorf("unfavored pair accelerated: %v", d)
	}
}

func TestDisturbanceWindowBoundaries(t *testing.T) {
	m := Disturbance{
		Base:   Constant{D: time.Millisecond},
		Nodes:  ident.SetOf(3),
		Start:  10 * time.Second,
		End:    20 * time.Second,
		Factor: 100,
	}
	r := rand.New(rand.NewSource(1))
	cases := []struct {
		now  time.Duration
		want time.Duration
	}{
		{10*time.Second - time.Nanosecond, time.Millisecond},       // before window
		{10 * time.Second, 100 * time.Millisecond},                 // start inclusive
		{20*time.Second - time.Nanosecond, 100 * time.Millisecond}, // window interior
		{20 * time.Second, time.Millisecond},                       // end exclusive
	}
	for _, c := range cases {
		if d := m.Delay(r, 3, 1, c.now); d != c.want {
			t.Errorf("at %v: delay = %v, want %v", c.now, d, c.want)
		}
	}
	// Untouched pairs are never disturbed.
	if d := m.Delay(r, 1, 2, 15*time.Second); d != time.Millisecond {
		t.Errorf("undisturbed pair slowed: %v", d)
	}
}
