package consensus

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/des"
	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
)

// fakeFD is a settable failure detector for unit tests.
type fakeFD struct {
	mu  sync.Mutex
	set ident.Set
}

func (f *fakeFD) Suspects() ident.Set {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set.Clone()
}

func (f *fakeFD) IsSuspected(id ident.ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set.Has(id)
}

func (f *fakeFD) suspect(id ident.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.set.Add(id)
}

var _ fd.Detector = (*fakeFD)(nil)

func TestConfigValidate(t *testing.T) {
	det := &fakeFD{}
	good := Config{Self: 0, N: 3, F: 1, Detector: det}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Self: ident.Nil, N: 3, F: 1, Detector: det},
		{Self: 5, N: 3, F: 1, Detector: det},
		{Self: 0, N: 1, F: 0, Detector: det},
		{Self: 0, N: 3, F: 2, Detector: det}, // no correct majority
		{Self: 0, N: 3, F: 1},                // no detector
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// consensusCluster builds n consensus nodes over a simulated network with a
// perfect crash-aware detector (suspects exactly the crashed processes after
// detectionLag).
type consensusCluster struct {
	sim       *des.Simulator
	net       *netsim.Network
	nodes     []*Node
	fds       []*fakeFD
	decisions map[ident.ID]Value
	decidedAt map[ident.ID]time.Duration
}

type proxy struct{ n **Node }

func (p proxy) Deliver(from ident.ID, payload any) {
	if *p.n != nil {
		(*p.n).Deliver(from, payload)
	}
}

func newConsensusCluster(t *testing.T, seed int64, n, f int, delay netsim.DelayModel) *consensusCluster {
	t.Helper()
	c := &consensusCluster{
		sim:       des.New(seed),
		decisions: make(map[ident.ID]Value),
		decidedAt: make(map[ident.ID]time.Duration),
	}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	c.nodes = make([]*Node, n)
	c.fds = make([]*fakeFD, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		c.fds[i] = &fakeFD{}
		var nd *Node
		env := c.net.AddNode(id, proxy{&nd})
		var err error
		nd, err = NewNode(env, Config{
			Self:     id,
			N:        n,
			F:        f,
			Detector: c.fds[i],
			OnDecide: func(v Value) {
				c.decisions[id] = v
				c.decidedAt[id] = c.sim.Now()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = nd
	}
	return c
}

// crash kills id at time at and makes every detector suspect it lag later.
func (c *consensusCluster) crash(id ident.ID, at, lag time.Duration) {
	c.sim.At(at, func() { c.net.Crash(id) })
	c.sim.At(at+lag, func() {
		for _, f := range c.fds {
			f.suspect(id)
		}
	})
}

func (c *consensusCluster) proposeAll(values []Value) {
	for i, nd := range c.nodes {
		v := values[i]
		nd := nd
		c.sim.At(0, func() { nd.Propose(v) })
	}
}

// checkAgreementValidity verifies the safety properties over whoever decided.
func (c *consensusCluster) checkAgreementValidity(t *testing.T, proposed []Value, wantDeciders int) Value {
	t.Helper()
	if len(c.decisions) < wantDeciders {
		t.Fatalf("only %d processes decided, want ≥ %d; rounds: %v",
			len(c.decisions), wantDeciders, c.roundsSnapshot())
	}
	var dec Value
	first := true
	for id, v := range c.decisions {
		if first {
			dec = v
			first = false
		} else if v != dec {
			t.Fatalf("agreement violated: %v decided %d, someone else %d", id, v, dec)
		}
	}
	valid := false
	for _, p := range proposed {
		if p == dec {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("validity violated: decided %d not among proposals %v", dec, proposed)
	}
	return dec
}

func (c *consensusCluster) roundsSnapshot() []uint64 {
	out := make([]uint64, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.Round()
	}
	return out
}

func TestConsensusAllCorrect(t *testing.T) {
	c := newConsensusCluster(t, 1, 5, 2, netsim.Uniform{Min: time.Millisecond, Max: 4 * time.Millisecond})
	proposed := []Value{10, 20, 30, 40, 50}
	c.proposeAll(proposed)
	c.sim.RunUntil(10 * time.Second)
	c.checkAgreementValidity(t, proposed, 5)
}

func TestConsensusSameProposal(t *testing.T) {
	c := newConsensusCluster(t, 2, 4, 1, netsim.Constant{D: time.Millisecond})
	proposed := []Value{7, 7, 7, 7}
	c.proposeAll(proposed)
	c.sim.RunUntil(10 * time.Second)
	if dec := c.checkAgreementValidity(t, proposed, 4); dec != 7 {
		t.Errorf("decided %d, want 7 (unanimous proposal)", dec)
	}
}

func TestConsensusCoordinatorCrash(t *testing.T) {
	// The round-1 coordinator (p0) crashes immediately; the protocol must
	// rotate to p1 once detectors suspect p0.
	c := newConsensusCluster(t, 3, 5, 2, netsim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond})
	proposed := []Value{1, 2, 3, 4, 5}
	c.crash(0, 500*time.Microsecond, 50*time.Millisecond)
	c.proposeAll(proposed)
	c.sim.RunUntil(30 * time.Second)
	// p0 may or may not have decided before crashing; the 4 survivors must.
	decided := 0
	for id := range c.decisions {
		if id != 0 {
			decided++
		}
	}
	if decided != 4 {
		t.Fatalf("%d survivors decided, want 4; rounds %v", decided, c.roundsSnapshot())
	}
	c.checkAgreementValidity(t, proposed, 4)
}

func TestConsensusTwoCrashes(t *testing.T) {
	c := newConsensusCluster(t, 4, 5, 2, netsim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond})
	proposed := []Value{11, 22, 33, 44, 55}
	c.crash(0, time.Millisecond, 30*time.Millisecond)
	c.crash(1, 2*time.Millisecond, 30*time.Millisecond)
	c.proposeAll(proposed)
	c.sim.RunUntil(30 * time.Second)
	decided := 0
	for id := range c.decisions {
		if id != 0 && id != 1 {
			decided++
		}
	}
	if decided != 3 {
		t.Fatalf("%d survivors decided, want 3; rounds %v", decided, c.roundsSnapshot())
	}
	c.checkAgreementValidity(t, proposed, 3)
}

func TestConsensusSafetyUnderWrongSuspicions(t *testing.T) {
	// Detectors erroneously suspect everyone from the start: liveness can
	// suffer for a while (here the FD is repaired at 1s so runs terminate),
	// but any decisions must still agree.
	c := newConsensusCluster(t, 5, 5, 2, netsim.Uniform{Min: time.Millisecond, Max: 2 * time.Millisecond})
	for _, f := range c.fds {
		for i := 0; i < 5; i++ {
			f.suspect(ident.ID(i))
		}
	}
	proposed := []Value{1, 2, 3, 4, 5}
	c.proposeAll(proposed)
	c.sim.At(time.Second, func() {
		for _, f := range c.fds {
			f.mu.Lock()
			f.set.Clear()
			f.mu.Unlock()
		}
	})
	c.sim.RunUntil(30 * time.Second)
	c.checkAgreementValidity(t, proposed, 5)
}

type duo struct {
	fdNode *core.Node
	cons   *Node
}

func TestConsensusWithRealDetector(t *testing.T) {
	// End-to-end: the time-free ◇S detector feeds consensus. p0 crashes
	// before proposing, so round 1's coordinator must be skipped via real
	// suspicions generated by the query-response protocol.
	sim := des.New(11)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Uniform{Min: time.Millisecond, Max: 4 * time.Millisecond}})
	const n, f = 5, 2

	duos := make([]duo, n)
	decisions := make(map[ident.ID]Value)

	for i := 0; i < n; i++ {
		id := ident.ID(i)
		var d duo
		dPtr := &duos[i]
		env := net.AddNode(id, nodeDemux{dPtr})
		fdNode, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{Self: id, N: n, F: f},
			Window:   10 * time.Millisecond,
			Interval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cons, err := NewNode(env, Config{
			Self: id, N: n, F: f, Detector: fdNode,
			OnDecide: func(v Value) { decisions[id] = v },
		})
		if err != nil {
			t.Fatal(err)
		}
		d = duo{fdNode: fdNode, cons: cons}
		duos[i] = d
	}
	for i := range duos {
		duos[i].fdNode.Start()
	}
	net.Crash(0)
	for i := 1; i < n; i++ {
		v := Value(100 + i)
		nd := duos[i].cons
		sim.At(time.Second, func() { nd.Propose(v) })
	}
	sim.RunUntil(60 * time.Second)

	if len(decisions) != 4 {
		t.Fatalf("decisions = %v, want all 4 survivors", decisions)
	}
	var dec Value
	first := true
	for _, v := range decisions {
		if first {
			dec, first = v, false
		} else if v != dec {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
	if dec < 101 || dec > 104 {
		t.Fatalf("validity violated: %d", dec)
	}
}

// nodeDemux routes FD messages to the detector node and consensus messages
// to the consensus node sharing one identity.
type nodeDemux struct {
	d *duo
}

func (x nodeDemux) Deliver(from ident.ID, payload any) {
	switch payload.(type) {
	case core.Query, core.Response:
		if x.d.fdNode != nil {
			x.d.fdNode.Deliver(from, payload)
		}
	default:
		if x.d.cons != nil {
			x.d.cons.Deliver(from, payload)
		}
	}
}

func TestQuickConsensusRandomized(t *testing.T) {
	// Random delays, random proposals, random single crash with laggy
	// detection: agreement + validity + termination of survivors.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4) // 3..6
		fmax := (n - 1) / 2
		c := newConsensusCluster(t, seed, n, fmax,
			netsim.Exponential{Min: 500 * time.Microsecond, Mean: 2 * time.Millisecond, Cap: 50 * time.Millisecond})
		proposed := make([]Value, n)
		for i := range proposed {
			proposed[i] = Value(r.Intn(100))
		}
		var crashed ident.ID = ident.Nil
		if fmax > 0 && r.Intn(2) == 0 {
			crashed = ident.ID(r.Intn(n))
			c.crash(crashed, time.Duration(r.Intn(20))*time.Millisecond, 50*time.Millisecond)
		}
		c.proposeAll(proposed)
		c.sim.RunUntil(60 * time.Second)

		survivors := 0
		for i := 0; i < n; i++ {
			if ident.ID(i) != crashed {
				survivors++
			}
		}
		decidedSurvivors := 0
		var dec Value
		first := true
		for id, v := range c.decisions {
			if id == crashed {
				continue
			}
			decidedSurvivors++
			if first {
				dec, first = v, false
			} else if v != dec {
				return false // agreement
			}
		}
		if decidedSurvivors != survivors {
			return false // termination
		}
		for _, p := range proposed {
			if p == dec {
				return true // validity
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
