// Package consensus implements Chandra–Toueg rotating-coordinator consensus
// for asynchronous systems equipped with a failure detector of class ◇S and
// a majority of correct processes — the very result that motivates the
// paper's detector: plugging any fd.Detector (the time-free query–response
// detector, a heartbeat detector, ...) into this module yields a consensus
// service, and experiment E7 compares decision latencies across detectors.
//
// The protocol proceeds in asynchronous rounds. In round r with coordinator
// c = (r−1) mod n:
//
//  1. every process sends its current estimate (value, timestamp) to c;
//  2. c collects a majority of estimates, adopts the one with the highest
//     timestamp and broadcasts it as the round's proposal;
//  3. every process waits until it receives c's proposal (then adopts it,
//     timestamps it with r and acknowledges) or its failure detector
//     suspects c (then it moves on);
//  4. if c gathers a majority of acknowledgments, the proposal is locked by
//     a majority and c reliably broadcasts the decision.
//
// Safety (validity, agreement) never depends on the detector; liveness
// requires ◇S's eventual weak accuracy plus strong completeness.
package consensus

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Value is a proposable value.
type Value int64

// EstimateMsg is the phase-1 message carried to the round's coordinator.
type EstimateMsg struct {
	From  ident.ID
	Round uint64
	Est   Value
	TS    uint64
}

// ProposalMsg is the coordinator's phase-2 broadcast.
type ProposalMsg struct {
	From  ident.ID
	Round uint64
	Est   Value
}

// AckMsg is the positive phase-3 acknowledgment sent back to the
// coordinator. Negative acknowledgments are unnecessary: a coordinator that
// never gathers a positive majority simply never decides in that round.
type AckMsg struct {
	From  ident.ID
	Round uint64
}

// DecideMsg propagates the decision (one-relay reliable broadcast).
type DecideMsg struct {
	From  ident.ID
	Value Value
}

// Config parameterizes a consensus participant.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// N is the number of processes (identities 0..N-1).
	N int
	// F is the crash bound; Chandra–Toueg requires a correct majority,
	// i.e. 2F < N.
	F int
	// Detector is the unreliable failure detector consulted in phase 3.
	Detector fd.Detector
	// PollInterval is how often the detector is re-consulted while waiting
	// for a coordinator (default 5ms).
	PollInterval time.Duration
	// OnDecide, if set, is invoked exactly once with the decided value.
	OnDecide func(Value)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() || int(c.Self) >= c.N {
		return errors.New("consensus: config: Self out of range")
	}
	if c.N < 2 {
		return errors.New("consensus: config: N must be ≥ 2")
	}
	if 2*c.F >= c.N {
		return fmt.Errorf("consensus: config: need a correct majority (2f < n), got f=%d n=%d", c.F, c.N)
	}
	if c.Detector == nil {
		return errors.New("consensus: config: Detector is required")
	}
	return nil
}

// roundState accumulates coordinator-side bookkeeping for one round.
type roundState struct {
	estimates int
	bestTS    uint64
	bestVal   Value
	hasBest   bool
	proposed  bool
	acks      int

	proposal    Value
	hasProposal bool
}

// Node is one consensus participant. Safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	env     node.Env
	cfg     Config
	started bool

	est Value
	ts  uint64

	round    uint64 // participant's current round (1-based)
	resolved bool   // phase 3 of the current round resolved
	poll     node.Timer

	rounds map[uint64]*roundState

	decided  bool
	decision Value
}

var _ node.Handler = (*Node)(nil)

// NewNode builds a consensus participant on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	return &Node{env: env, cfg: cfg, rounds: make(map[uint64]*roundState)}, nil
}

// majority returns ⌈(n+1)/2⌉.
func (n *Node) majority() int { return n.cfg.N/2 + 1 }

func (n *Node) coord(round uint64) ident.ID {
	return ident.ID((round - 1) % uint64(n.cfg.N))
}

func (n *Node) state(round uint64) *roundState {
	st, ok := n.rounds[round]
	if !ok {
		st = &roundState{}
		n.rounds[round] = st
	}
	return st
}

// Propose starts the protocol with this process's initial value. It must be
// called exactly once.
func (n *Node) Propose(v Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.est = v
	n.ts = 0
	n.startRoundLocked(1)
}

// Decided returns the decision, if reached.
func (n *Node) Decided() (Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.decision, n.decided
}

// Round returns the participant's current round (diagnostics).
func (n *Node) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

func (n *Node) startRoundLocked(r uint64) {
	if n.decided {
		return
	}
	n.round = r
	n.resolved = false
	c := n.coord(r)

	// Phase 1: estimate to the coordinator.
	est := EstimateMsg{From: n.cfg.Self, Round: r, Est: n.est, TS: n.ts}
	if c == n.cfg.Self {
		n.handleEstimateLocked(est)
	} else {
		n.env.Send(c, est)
	}

	// Phase 3 entry: the proposal may already be buffered.
	if st := n.state(r); st.hasProposal {
		n.adoptLocked(r, st.proposal)
		return
	}
	n.armPollLocked(r)
}

// armPollLocked schedules the next failure-detector consultation for the
// round-r coordinator wait.
func (n *Node) armPollLocked(r uint64) {
	n.poll = n.env.After(n.cfg.PollInterval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.decided || n.round != r || n.resolved {
			return
		}
		if n.cfg.Detector.IsSuspected(n.coord(r)) {
			// Phase 3, suspicion branch: give up on this coordinator.
			n.resolved = true
			n.startRoundLocked(r + 1)
			return
		}
		n.armPollLocked(r)
	})
}

// adoptLocked executes the phase-3 adoption branch for round r.
func (n *Node) adoptLocked(r uint64, v Value) {
	n.resolved = true
	if n.poll != nil {
		n.poll.Stop()
		n.poll = nil
	}
	n.est = v
	n.ts = r
	ack := AckMsg{From: n.cfg.Self, Round: r}
	if c := n.coord(r); c == n.cfg.Self {
		n.handleAckLocked(ack)
	} else {
		n.env.Send(c, ack)
	}
	if !n.decided {
		n.startRoundLocked(r + 1)
	}
}

// handleEstimateLocked is the coordinator's phase-2 trigger.
func (n *Node) handleEstimateLocked(m EstimateMsg) {
	st := n.state(m.Round)
	st.estimates++
	if !st.hasBest || m.TS > st.bestTS {
		st.hasBest = true
		st.bestTS = m.TS
		st.bestVal = m.Est
	}
	if st.proposed || st.estimates < n.majority() || n.coord(m.Round) != n.cfg.Self {
		return
	}
	st.proposed = true
	prop := ProposalMsg{From: n.cfg.Self, Round: m.Round, Est: st.bestVal}
	n.env.Broadcast(prop)
	n.handleProposalLocked(prop) // self-delivery
}

func (n *Node) handleProposalLocked(m ProposalMsg) {
	if m.From != n.coord(m.Round) {
		return // not from the legitimate coordinator of that round
	}
	st := n.state(m.Round)
	st.proposal = m.Est
	st.hasProposal = true
	if n.round == m.Round && !n.resolved && !n.decided {
		n.adoptLocked(m.Round, m.Est)
	}
}

// handleAckLocked is the coordinator's phase-4 trigger.
func (n *Node) handleAckLocked(m AckMsg) {
	st := n.state(m.Round)
	if n.coord(m.Round) != n.cfg.Self || !st.proposed {
		return
	}
	st.acks++
	if st.acks == n.majority() {
		// The proposal is locked by a majority: decide and R-broadcast.
		n.decideLocked(st.proposal)
	}
}

func (n *Node) decideLocked(v Value) {
	if n.decided {
		return
	}
	n.decided = true
	n.decision = v
	if n.poll != nil {
		n.poll.Stop()
		n.poll = nil
	}
	n.env.Broadcast(DecideMsg{From: n.cfg.Self, Value: v})
	if n.cfg.OnDecide != nil {
		n.cfg.OnDecide(v)
	}
}

// Deliver implements node.Handler. All handlers are round-indexed
// bookkeeping that is safe to run even before Propose: early messages are
// buffered in round state and consulted when the participant reaches the
// round.
func (n *Node) Deliver(_ ident.ID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m := payload.(type) {
	case EstimateMsg:
		n.handleEstimateLocked(m)
	case ProposalMsg:
		n.handleProposalLocked(m)
	case AckMsg:
		n.handleAckLocked(m)
	case DecideMsg:
		n.decideLocked(m.Value)
	}
}
