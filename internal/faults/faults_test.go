package faults

import (
	"math/rand"
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/node"
)

func TestPlanCrashAt(t *testing.T) {
	p := Plan{}.CrashAt(1, time.Second).CrashAt(2, 2*time.Second)
	if len(p) != 2 || p[0].ID != 1 || p[1].At != 2*time.Second {
		t.Errorf("plan = %+v", p)
	}
	ids := p.IDs()
	if !ids.Has(1) || !ids.Has(2) || ids.Len() != 2 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestUniformSpreadsAndDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	candidates := []ident.ID{0, 1, 2, 3, 4, 5, 6, 7}
	p := Uniform(r, candidates, 5, 10*time.Second, 20*time.Second)
	if len(p) != 5 {
		t.Fatalf("len = %d, want 5", len(p))
	}
	if p.IDs().Len() != 5 {
		t.Error("crash ids not distinct")
	}
	if p[0].At != 10*time.Second || p[4].At != 20*time.Second {
		t.Errorf("span = [%v, %v], want [10s, 20s]", p[0].At, p[4].At)
	}
	for i := 1; i < len(p); i++ {
		if p[i].At < p[i-1].At {
			t.Error("plan not sorted by time")
		}
	}
}

func TestUniformCountClamped(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := Uniform(r, []ident.ID{0, 1}, 5, 0, time.Second)
	if len(p) != 2 {
		t.Errorf("len = %d, want clamped to 2", len(p))
	}
}

func TestUniformSingleCrashCentered(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := Uniform(r, []ident.ID{0, 1, 2}, 1, 10*time.Second, 20*time.Second)
	if len(p) != 1 || p[0].At != 15*time.Second {
		t.Errorf("plan = %+v, want single crash at 15s", p)
	}
}

func TestApply(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, node.HandlerFunc(func(ident.ID, any) {}))

	p := Plan{}.CrashAt(1, 5*time.Second)
	truth := p.Apply(sim, net)

	if at, ok := truth.CrashTime(1); !ok || at != 5*time.Second {
		t.Errorf("truth = %v,%v", at, ok)
	}
	sim.RunUntil(4 * time.Second)
	if net.Crashed(1) {
		t.Error("crash applied early")
	}
	sim.RunUntil(6 * time.Second)
	if !net.Crashed(1) {
		t.Error("crash not applied")
	}
	if net.Crashed(0) {
		t.Error("wrong node crashed")
	}
}
