package faults

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/node"
)

func TestScheduleBuilders(t *testing.T) {
	s := Schedule{}.
		CrashAt(1, time.Second).
		RecoverAt(1, 2*time.Second, true).
		PartitionAt(3*time.Second, []ident.ID{0, 1}).
		HealAt(4*time.Second).
		CrashAt(2, 5*time.Second)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	kinds := []EventKind{KindCrash, KindRecover, KindPartition, KindHeal, KindCrash}
	for i, k := range kinds {
		if s[i].Kind != k {
			t.Errorf("s[%d].Kind = %v, want %v", i, s[i].Kind, k)
		}
	}
	if !s[1].FreshState {
		t.Error("RecoverAt(fresh=true) lost the flag")
	}
	if len(s[2].Islands) != 1 || len(s[2].Islands[0]) != 2 {
		t.Errorf("partition islands = %v", s[2].Islands)
	}
	ids := s.IDs()
	if !ids.Has(1) || !ids.Has(2) || ids.Len() != 2 {
		t.Errorf("IDs = %v (recover/partition/heal must not count)", ids)
	}
}

func TestUniformSpreadsAndDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	candidates := []ident.ID{0, 1, 2, 3, 4, 5, 6, 7}
	p := Uniform(r, candidates, 5, 10*time.Second, 20*time.Second)
	if len(p) != 5 {
		t.Fatalf("len = %d, want 5", len(p))
	}
	if p.IDs().Len() != 5 {
		t.Error("crash ids not distinct")
	}
	if p[0].At != 10*time.Second || p[4].At != 20*time.Second {
		t.Errorf("span = [%v, %v], want [10s, 20s]", p[0].At, p[4].At)
	}
	for i := 1; i < len(p); i++ {
		if p[i].At < p[i-1].At {
			t.Error("plan not sorted by time")
		}
	}
}

func TestUniformEdgeCases(t *testing.T) {
	candidates := []ident.ID{0, 1, 2}
	cases := []struct {
		name       string
		candidates []ident.ID
		count      int
		wantLen    int
	}{
		{"count zero", candidates, 0, 0},
		{"count negative", candidates, -3, 0},
		{"empty candidates", nil, 4, 0},
		{"count above len clamps", []ident.ID{0, 1}, 5, 2},
		{"single candidate", []ident.ID{7}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			p := Uniform(r, tc.candidates, tc.count, 0, 10*time.Second)
			if len(p) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(p), tc.wantLen)
			}
			if p.IDs().Len() != tc.wantLen {
				t.Errorf("ids not distinct: %v", p.IDs())
			}
		})
	}
	// A single crash lands mid-span.
	r := rand.New(rand.NewSource(1))
	p := Uniform(r, candidates, 1, 10*time.Second, 20*time.Second)
	if len(p) != 1 || p[0].At != 15*time.Second {
		t.Errorf("plan = %+v, want single crash at 15s", p)
	}
}

func TestUniformDeterministicAcrossIdenticalSeeds(t *testing.T) {
	candidates := []ident.ID{0, 1, 2, 3, 4, 5}
	a := Uniform(rand.New(rand.NewSource(42)), candidates, 4, time.Second, 9*time.Second)
	b := Uniform(rand.New(rand.NewSource(42)), candidates, 4, time.Second, 9*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := Uniform(rand.New(rand.NewSource(43)), candidates, 4, time.Second, 9*time.Second)
	if reflect.DeepEqual(a, c) {
		t.Log("different seeds produced identical plans (possible but unlikely)")
	}
}

func TestApplyCrashStop(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, node.HandlerFunc(func(ident.ID, any) {}))

	p := Schedule{}.CrashAt(1, 5*time.Second)
	truth := p.Apply(sim, net)

	if at, ok := truth.CrashTime(1); !ok || at != 5*time.Second {
		t.Errorf("truth = %v,%v", at, ok)
	}
	sim.RunUntil(4 * time.Second)
	if net.Crashed(1) {
		t.Error("crash applied early")
	}
	sim.RunUntil(6 * time.Second)
	if !net.Crashed(1) {
		t.Error("crash not applied")
	}
	if net.Crashed(0) {
		t.Error("wrong node crashed")
	}
}

func TestApplyRecoverAndHook(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, node.HandlerFunc(func(ident.ID, any) {}))

	// Appended out of time order on purpose: Apply must sort.
	s := Schedule{}.
		RecoverAt(1, 10*time.Second, true).
		CrashAt(1, 5*time.Second)
	type call struct {
		id    ident.ID
		fresh bool
		at    time.Duration
	}
	var calls []call
	truth := s.ApplyFunc(sim, net, func(id ident.ID, fresh bool) {
		if net.Crashed(id) {
			t.Error("hook ran before the network revived the process")
		}
		calls = append(calls, call{id, fresh, sim.Now()})
	})

	sim.RunUntil(7 * time.Second)
	if !net.Crashed(1) {
		t.Error("crash not applied")
	}
	sim.RunUntil(11 * time.Second)
	if net.Crashed(1) {
		t.Error("recovery not applied")
	}
	if len(calls) != 1 || calls[0].id != 1 || !calls[0].fresh || calls[0].at != 10*time.Second {
		t.Errorf("hook calls = %+v", calls)
	}
	ivs := truth.Intervals(1)
	if len(ivs) != 1 || ivs[0].Start != 5*time.Second || ivs[0].End != 10*time.Second {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestApplyPartitionHealDrivesNetwork(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{D: time.Microsecond}})
	var got []ident.ID
	net.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	net.AddNode(1, node.HandlerFunc(func(from ident.ID, _ any) { got = append(got, from) }))
	net.AddNode(2, node.HandlerFunc(func(ident.ID, any) {}))

	s := Schedule{}.
		PartitionAt(time.Second, []ident.ID{0}).
		HealAt(2 * time.Second)
	s.Apply(sim, net)

	env := net.Env(0)
	sim.At(500*time.Millisecond, func() { env.Send(1, "pre") })
	sim.At(1500*time.Millisecond, func() { env.Send(1, "during") })
	sim.At(2500*time.Millisecond, func() { env.Send(1, "post") })
	sim.RunUntil(3 * time.Second)
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2 (partition window must drop one)", len(got))
	}
	if net.Partitioned() {
		t.Error("partition still active after heal")
	}
}
