// Package faults builds fault scenarios for simulated runs and applies them
// to the network while recording the ground truth the QoS metrics are judged
// against. A scenario is an ordered schedule of typed events: crash-stop (or
// crash-phase) failures, crash-recovery restarts with fresh or persisted
// detector state, network partitions into islands, and heals.
//
// In the terminology of the repository README's architecture map, this is
// the fault-injection layer between the network model (internal/netsim,
// which executes the events) and the QoS judge (internal/qos, whose
// GroundTruth this package populates). The R1/R2 sweeps of internal/exp
// and the cmd/fdsim scenario flags are thin wrappers over a Schedule.
package faults

import (
	"math/rand"
	"sort"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

// EventKind enumerates the fault-scenario event types.
type EventKind int

const (
	// KindCrash stops a process (crash-stop unless a later Recover revives it).
	KindCrash EventKind = iota + 1
	// KindRecover revives a crashed process.
	KindRecover
	// KindPartition splits the network into islands.
	KindPartition
	// KindHeal removes the most recent partition.
	KindHeal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRecover:
		return "recover"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	default:
		return "event?"
	}
}

// Event is one scheduled fault-scenario step.
type Event struct {
	At   time.Duration
	Kind EventKind
	// ID is the affected process (Crash and Recover events).
	ID ident.ID
	// FreshState, on a Recover event, makes the process restart its detector
	// from scratch (volatile state lost in the reboot); false resumes with
	// the state held at the crash (persisted-state recovery).
	FreshState bool
	// Islands, on a Partition event, lists the connectivity islands; see
	// netsim.Network.Partition for the exact semantics.
	Islands [][]ident.ID
}

// Schedule is an ordered fault scenario. Builders may append events out of
// time order; Apply sorts them (stably) by time before scheduling.
type Schedule []Event

// CrashAt appends a crash, returning the extended schedule.
func (s Schedule) CrashAt(id ident.ID, at time.Duration) Schedule {
	return append(s, Event{At: at, Kind: KindCrash, ID: id})
}

// RecoverAt appends a recovery of id at time at. fresh selects whether the
// process restarts with fresh or persisted detector state.
func (s Schedule) RecoverAt(id ident.ID, at time.Duration, fresh bool) Schedule {
	return append(s, Event{At: at, Kind: KindRecover, ID: id, FreshState: fresh})
}

// PartitionAt appends a partition into the given islands at time at.
// Processes not listed in any island together form one implicit extra
// island (netsim semantics).
func (s Schedule) PartitionAt(at time.Duration, islands ...[]ident.ID) Schedule {
	return append(s, Event{At: at, Kind: KindPartition, Islands: islands})
}

// HealAt appends a heal of the most recent partition at time at.
func (s Schedule) HealAt(at time.Duration) Schedule {
	return append(s, Event{At: at, Kind: KindHeal})
}

// Uniform schedules count crashes of distinct processes drawn from
// candidates, spread uniformly over [start, end) — the paper family's
// "faults uniformly inserted during an experiment" setup. A non-positive
// count or an empty candidate slice yields an empty schedule.
func Uniform(r *rand.Rand, candidates []ident.ID, count int, start, end time.Duration) Schedule {
	if count <= 0 || len(candidates) == 0 {
		return Schedule{}
	}
	if count > len(candidates) {
		count = len(candidates)
	}
	perm := r.Perm(len(candidates))
	plan := make(Schedule, 0, count)
	span := end - start
	for i := 0; i < count; i++ {
		at := start
		if count > 1 {
			at += span * time.Duration(i) / time.Duration(count-1)
		} else {
			at += span / 2
		}
		plan = plan.CrashAt(candidates[perm[i]], at)
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return plan
}

// Apply schedules every event on the simulator against the network and
// records crashes and recoveries in a fresh ground truth. Recoveries revive
// the process at the network layer only; cluster layers that must also
// restart the detector runtime use ApplyFunc.
func (s Schedule) Apply(sim *des.Simulator, net *netsim.Network) *qos.GroundTruth {
	return s.ApplyFunc(sim, net, nil)
}

// ApplyFunc is Apply with a recovery hook: onRecover (when non-nil) runs at
// each Recover event, after the network has revived the process — the
// cluster layers use it to restart the process's detector runtime with
// fresh or persisted state.
func (s Schedule) ApplyFunc(sim *des.Simulator, net *netsim.Network, onRecover func(id ident.ID, fresh bool)) *qos.GroundTruth {
	ordered := append(Schedule(nil), s...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	truth := &qos.GroundTruth{}
	for _, e := range ordered {
		e := e
		switch e.Kind {
		case KindCrash:
			truth.Crash(e.ID, e.At)
			sim.At(e.At, func() { net.Crash(e.ID) })
		case KindRecover:
			truth.Recover(e.ID, e.At)
			sim.At(e.At, func() {
				net.Recover(e.ID)
				if onRecover != nil {
					onRecover(e.ID, e.FreshState)
				}
			})
		case KindPartition:
			sim.At(e.At, func() { net.Partition(e.Islands...) })
		case KindHeal:
			sim.At(e.At, func() { net.Heal() })
		}
	}
	return truth
}

// IDs returns the processes that crash under the schedule.
func (s Schedule) IDs() ident.Set {
	var out ident.Set
	for _, e := range s {
		if e.Kind == KindCrash {
			out.Add(e.ID)
		}
	}
	return out
}
