// Package faults builds crash schedules for simulated runs and applies them
// to the network while recording the ground truth the QoS metrics are judged
// against.
package faults

import (
	"math/rand"
	"sort"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

// Crash is one scheduled crash-stop failure.
type Crash struct {
	ID ident.ID
	At time.Duration
}

// Plan is an ordered crash schedule.
type Plan []Crash

// CrashAt appends a crash, returning the extended plan.
func (p Plan) CrashAt(id ident.ID, at time.Duration) Plan {
	return append(p, Crash{ID: id, At: at})
}

// Uniform schedules count crashes of distinct processes drawn from
// candidates, spread uniformly over [start, end) — the paper family's
// "faults uniformly inserted during an experiment" setup.
func Uniform(r *rand.Rand, candidates []ident.ID, count int, start, end time.Duration) Plan {
	if count > len(candidates) {
		count = len(candidates)
	}
	perm := r.Perm(len(candidates))
	plan := make(Plan, 0, count)
	span := end - start
	for i := 0; i < count; i++ {
		at := start
		if count > 1 {
			at += span * time.Duration(i) / time.Duration(count-1)
		} else {
			at += span / 2
		}
		plan = append(plan, Crash{ID: candidates[perm[i]], At: at})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return plan
}

// Apply schedules every crash on the simulator against the network and
// records it in a fresh ground truth.
func (p Plan) Apply(sim *des.Simulator, net *netsim.Network) *qos.GroundTruth {
	truth := &qos.GroundTruth{}
	for _, c := range p {
		c := c
		truth.Crash(c.ID, c.At)
		sim.At(c.At, func() { net.Crash(c.ID) })
	}
	return truth
}

// IDs returns the processes that crash under the plan.
func (p Plan) IDs() ident.Set {
	var s ident.Set
	for _, c := range p {
		s.Add(c.ID)
	}
	return s
}
