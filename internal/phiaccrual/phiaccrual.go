// Package phiaccrual implements the φ-accrual failure detector
// (Hayashibara et al.), the adaptive timer-based detector used by most
// contemporary open-source systems (Cassandra, Akka, ...). It is the
// "state of practice" comparator for the paper's time-free approach.
//
// Each process heartbeats every Δ. A monitor keeps a sliding window of
// heartbeat inter-arrival times per peer and computes the suspicion level
//
//	φ(t) = −log₁₀( P_later(t − t_last) )
//
// where P_later is the tail probability of the next heartbeat arriving
// after the elapsed silence, under a normal fit of the window. The peer is
// suspected while φ exceeds a threshold. Unlike a fixed timeout the scale
// adapts to observed delays — but it is still a timing assumption, and heavy
// delay tails still produce mistakes.
package phiaccrual

import (
	"errors"
	"math"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Message is a heartbeat.
type Message struct {
	From ident.ID
	Seq  uint64
}

// Config parameterizes a φ-accrual detector.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// Peers are the monitored processes (Self is ignored if present).
	Peers ident.Set
	// Interval is the heartbeat period Δ.
	Interval time.Duration
	// Threshold is the suspicion level above which a peer is suspected.
	// The conventional default is 8 (used when zero).
	Threshold float64
	// WindowSize bounds the inter-arrival sample window (default 200).
	WindowSize int
	// MinStdDev floors the fitted standard deviation to keep φ finite on
	// perfectly regular traffic (default Interval/20).
	MinStdDev time.Duration
	// CheckInterval is how often suspicion levels are re-evaluated
	// (default Interval/4).
	CheckInterval time.Duration
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

func (c *Config) fillDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 8
	}
	if c.WindowSize == 0 {
		c.WindowSize = 200
	}
	if c.MinStdDev == 0 {
		c.MinStdDev = c.Interval / 20
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = c.Interval / 4
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Millisecond
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() {
		return errors.New("phiaccrual: config: Self must be valid")
	}
	if c.Interval <= 0 {
		return errors.New("phiaccrual: config: Interval must be positive")
	}
	if c.Threshold < 0 || c.WindowSize < 0 {
		return errors.New("phiaccrual: config: negative Threshold or WindowSize")
	}
	return nil
}

// window is a bounded sample set with memoized mean/variance.
type window struct {
	samples []float64 // seconds
	next    int
	full    bool
	// stats caches the last meanStd result: the scan timer re-evaluates φ
	// several times per heartbeat interval, and re-walking an unchanged
	// window dominated large-n sweeps. push invalidates the cache, so the
	// returned floats are always the ones the walk would produce — computed
	// in the same order, just once per window mutation.
	statsValid bool
	mean, std  float64
}

func (w *window) push(v float64, capacity int) {
	w.statsValid = false
	if len(w.samples) < capacity {
		w.samples = append(w.samples, v)
		return
	}
	w.samples[w.next] = v
	w.next = (w.next + 1) % capacity
	w.full = true
}

func (w *window) meanStd() (mean, std float64) {
	if w.statsValid {
		return w.mean, w.std
	}
	n := float64(len(w.samples))
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range w.samples {
		sum += v
	}
	mean = sum / n
	var ss float64
	for _, v := range w.samples {
		d := v - mean
		ss += d * d
	}
	std = math.Sqrt(ss / n)
	w.statsValid, w.mean, w.std = true, mean, std
	return mean, std
}

// peerState tracks one monitored process.
type peerState struct {
	win       window
	last      time.Duration // arrival time of last heartbeat
	suspected bool
}

// Node is a φ-accrual detector node. Safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	env     node.Env //fdlint:allow clonefields immutable wiring, set once at construction
	cfg     Config   //fdlint:allow clonefields immutable config, set once at construction
	peers   node.DenseMap[*peerState]
	seq     uint64
	stopped bool
	beat    node.Timer
	check   node.Timer
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)
var _ node.Cloneable = (*Node)(nil)

// NewNode builds a φ-accrual detector on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	n := &Node{env: env, cfg: cfg}
	cfg.Peers.ForEach(func(p ident.ID) bool {
		if p != cfg.Self {
			n.peers.Put(p, &peerState{})
		}
		return true
	})
	return n, nil
}

// Start begins heartbeating and monitoring. Monitoring starts as if a
// heartbeat from every peer arrived now, with the window primed with the
// nominal interval — the standard bootstrap that avoids instant suspicion.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.env.Now()
	n.peers.ForEach(func(_ ident.ID, st *peerState) bool {
		st.last = now
		st.win.push(n.cfg.Interval.Seconds(), n.cfg.WindowSize)
		return true
	})
	n.tickLocked()
	n.scanLocked()
}

// Restart implements fd.Restartable. Fresh state re-runs the Start
// bootstrap per peer (window primed with the nominal interval, suspicions
// lost, with the implied restore transitions emitted); persisted state
// keeps the windows and suspicion flags. Either way the restart counts as a
// sighting of every peer: the silence clock restarts at the reboot, and the
// downtime gap must not enter the inter-arrival window as a sample.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.beat != nil {
		n.beat.Stop()
	}
	if n.check != nil {
		n.check.Stop()
	}
	n.stopped = false
	now := n.env.Now()
	// Sorted peer order, not map order: the restore events emitted here
	// all carry the same timestamp, and runs of one seed must produce
	// identical trace bytes.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st := n.peers.Get(p)
		if st == nil {
			return true
		}
		if fresh {
			if st.suspected {
				n.emitLocked(p, false)
			}
			*st = peerState{}
			st.win.push(n.cfg.Interval.Seconds(), n.cfg.WindowSize)
		}
		st.last = now
		return true
	})
	n.tickLocked()
	n.scanLocked()
}

// Stop halts heartbeating and monitoring.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.beat != nil {
		n.beat.Stop()
	}
	if n.check != nil {
		n.check.Stop()
	}
}

func (n *Node) tickLocked() {
	if n.stopped {
		return
	}
	n.seq++
	n.env.Broadcast(Message{From: n.env.Self(), Seq: n.seq})
	n.beat = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.tickLocked()
	})
}

func (n *Node) scanLocked() {
	if n.stopped {
		return
	}
	now := n.env.Now()
	// Sorted peer order, not map order: one scan instant can suspect
	// several peers, and same-seed runs must emit them in identical order.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st := n.peers.Get(p)
		if st == nil {
			return true
		}
		phi := n.phiLocked(st, now)
		if phi >= n.cfg.Threshold && !st.suspected {
			st.suspected = true
			n.emitLocked(p, true)
		}
		// Restoration happens on heartbeat arrival, not here: φ only grows
		// with silence.
		return true
	})
	n.check = n.env.After(n.cfg.CheckInterval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.scanLocked()
	})
}

// phiLocked computes the suspicion level of a peer at time now.
func (n *Node) phiLocked(st *peerState, now time.Duration) float64 {
	elapsed := (now - st.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	mean, std := st.win.meanStd()
	return phiValue(mean, std, elapsed, n.cfg.MinStdDev.Seconds())
}

// phiValue is the φ formula shared by the detector Node and the
// shard-callable Estimator: P_later(t) = 0.5 · erfc((t − µ) / (σ·√2));
// φ = −log10(P_later), with σ floored at minStd.
func phiValue(mean, std, elapsed, minStd float64) float64 {
	if std < minStd {
		std = minStd
	}
	p := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(p)
}

// Phi returns the current suspicion level for id (diagnostics/tests).
func (n *Node) Phi(id ident.ID) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.peers.Get(id)
	if st == nil {
		return 0
	}
	return n.phiLocked(st, n.env.Now())
}

// Deliver implements node.Handler.
func (n *Node) Deliver(from ident.ID, payload any) {
	if _, ok := payload.(Message); !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.peers.Get(from)
	if st == nil || n.stopped {
		return
	}
	now := n.env.Now()
	if st.suspected {
		// The silence that just ended was proven wrong — typically the
		// peer's downtime. Recording it as an inter-arrival sample would
		// poison the window (one huge outlier dominates the fitted std for
		// as long as it stays in the window, stretching detection of the
		// peer's next crash by orders of magnitude). Restore trust and
		// restart the silence clock without sampling the gap.
		st.suspected = false
		n.emitLocked(from, false)
	} else {
		st.win.push((now - st.last).Seconds(), n.cfg.WindowSize)
	}
	st.last = now
}

func (n *Node) emitLocked(subject ident.ID, suspected bool) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), subject, suspected)
	}
}

// snapshot is the node.Cloneable checkpoint: one deep-copied peerState per
// peer (the inter-arrival window is the only reference field) plus the
// sender-side counters and timer handles. Restore writes back into the SAME
// live *peerState objects so any pending closures keep seeing them.
type snapshot struct {
	peers   map[ident.ID]peerState
	seq     uint64
	stopped bool
	beat    node.Timer
	check   node.Timer
}

// Snapshot implements node.Cloneable.
func (n *Node) Snapshot() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	peers := make(map[ident.ID]peerState, n.peers.Len())
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		saved := *st
		saved.win.samples = append([]float64(nil), st.win.samples...)
		peers[p] = saved
		return true
	})
	return &snapshot{peers: peers, seq: n.seq, stopped: n.stopped, beat: n.beat, check: n.check}
}

// Restore implements node.Cloneable.
func (n *Node) Restore(snap any) {
	s := snap.(*snapshot)
	n.mu.Lock()
	defer n.mu.Unlock()
	//fdlint:allow maprange per-peer in-place writes; each iteration touches only peer p's state
	for p, saved := range s.peers {
		st := n.peers.Get(p)
		samples := append(st.win.samples[:0], saved.win.samples...)
		*st = saved
		st.win.samples = samples
	}
	n.seq = s.seq
	n.stopped = s.stopped
	n.beat = s.beat
	n.check = s.check
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out ident.Set
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		if st.suspected {
			out.Add(p)
		}
		return true
	})
	return out
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.peers.Get(id)
	return st != nil && st.suspected
}
