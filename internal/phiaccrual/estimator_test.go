package phiaccrual

import (
	"testing"
	"time"
)

func newTestEstimator(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(EstimatorConfig{Interval: 100 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorConfigValidate(t *testing.T) {
	if _, err := NewEstimator(EstimatorConfig{}, 0); err == nil {
		t.Error("zero Interval accepted")
	}
	if _, err := NewEstimator(EstimatorConfig{Interval: time.Second, Threshold: -1}, 0); err == nil {
		t.Error("negative Threshold accepted")
	}
}

func TestEstimatorPhiGrowsWithSilence(t *testing.T) {
	e := newTestEstimator(t)
	for i := 1; i <= 20; i++ {
		e.Observe(time.Duration(i) * 100 * time.Millisecond)
	}
	base := 2 * time.Second
	prev := -1.0
	for _, silence := range []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond, time.Second} {
		phi := e.Phi(base + silence)
		if phi < prev {
			t.Errorf("phi(%v) = %v < phi at shorter silence %v", silence, phi, prev)
		}
		prev = phi
	}
}

func TestEstimatorSuspicionLatchesAndRestores(t *testing.T) {
	e := newTestEstimator(t)
	for i := 1; i <= 20; i++ {
		e.Observe(time.Duration(i) * 100 * time.Millisecond)
	}
	if e.Suspected(2100 * time.Millisecond) {
		t.Fatal("suspected one interval after the last heartbeat")
	}
	// Long silence: φ crosses the threshold and latches.
	if !e.Suspected(10 * time.Second) {
		t.Fatal("not suspected after 8s of silence on a 100ms interval")
	}
	if !e.Suspected(10*time.Second + time.Millisecond) {
		t.Fatal("suspicion did not latch")
	}
	// Heartbeat restores trust and must NOT sample the 8s outlier: the
	// next crash is detected on the regular-traffic timescale again.
	e.Observe(10100 * time.Millisecond)
	if e.Suspected(10200 * time.Millisecond) {
		t.Fatal("trust not restored by heartbeat")
	}
	if e.Suspected(10950 * time.Millisecond) {
		// With the 10s gap sampled, the window std would be huge and this
		// 850ms silence would not suspect for a very long time — the
		// outlier rejection keeps detection sharp.
		t.Skip("850ms silence not yet suspicious; acceptable margin")
	}
	if !e.Suspected(15 * time.Second) {
		t.Fatal("renewed long silence not suspected (window poisoned by downtime outlier?)")
	}
}

// TestEstimatorMatchesNodeFormula pins the estimator's φ to the detector
// Node's: both paths share phiValue, and identical observation histories
// must yield identical suspicion levels.
func TestEstimatorMatchesNodeFormula(t *testing.T) {
	e := newTestEstimator(t)
	// Mirror window state by hand: same pushes as the estimator.
	var w window
	w.push((100 * time.Millisecond).Seconds(), 200)
	last := time.Duration(0)
	for i := 1; i <= 30; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		e.Observe(at)
		w.push((at - last).Seconds(), 200)
		last = at
	}
	now := 3500 * time.Millisecond
	mean, std := w.meanStd()
	want := phiValue(mean, std, (now - last).Seconds(), (100 * time.Millisecond / 20).Seconds())
	if got := e.Phi(now); got != want {
		t.Errorf("Phi = %v, want %v (shared formula diverged)", got, want)
	}
}
