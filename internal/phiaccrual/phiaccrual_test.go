package phiaccrual

import (
	"math"
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Self: 0, Interval: time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Self: ident.Nil, Interval: time.Second},
		{Self: 0, Interval: 0},
		{Self: 0, Interval: time.Second, Threshold: -1},
		{Self: 0, Interval: time.Second, WindowSize: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := Config{Self: 0, Interval: time.Second}
	c.fillDefaults()
	if c.Threshold != 8 || c.WindowSize != 200 {
		t.Errorf("defaults = %+v", c)
	}
	if c.MinStdDev != 50*time.Millisecond {
		t.Errorf("MinStdDev default = %v, want Interval/20", c.MinStdDev)
	}
	if c.CheckInterval != 250*time.Millisecond {
		t.Errorf("CheckInterval default = %v, want Interval/4", c.CheckInterval)
	}
}

func TestWindowStats(t *testing.T) {
	var w window
	for _, v := range []float64{1, 2, 3} {
		w.push(v, 10)
	}
	mean, std := w.meanStd()
	if mean != 2 {
		t.Errorf("mean = %v, want 2", mean)
	}
	if math.Abs(std-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Errorf("std = %v", std)
	}
	// Ring behavior: capacity 3, pushing a 4th evicts the oldest.
	w.push(10, 3)
	mean, _ = w.meanStd()
	if mean != 5 {
		t.Errorf("mean after eviction = %v, want (2+3+10)/3", mean)
	}
	var empty window
	if m, s := empty.meanStd(); m != 0 || s != 0 {
		t.Error("empty window stats nonzero")
	}
}

type cluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	nodes []*Node
	log   *trace.Log
}

type proxy struct{ n **Node }

func (p proxy) Deliver(from ident.ID, payload any) {
	if *p.n != nil {
		(*p.n).Deliver(from, payload)
	}
}

func newCluster(t *testing.T, n int, delay netsim.DelayModel, interval time.Duration) *cluster {
	t.Helper()
	c := &cluster{sim: des.New(5), log: &trace.Log{}}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	peers := ident.FullSet(n)
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		var nd *Node
		env := c.net.AddNode(id, proxy{&nd})
		var err error
		nd, err = NewNode(env, Config{Self: id, Peers: peers, Interval: interval, Sink: c.log})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = nd
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

func TestPhiLowOnRegularTraffic(t *testing.T) {
	c := newCluster(t, 3, netsim.Constant{D: 5 * time.Millisecond}, time.Second)
	c.sim.RunUntil(30 * time.Second)
	if c.log.Len() != 0 {
		t.Errorf("suspicions on regular traffic:\n%s", c.log)
	}
	phi := c.nodes[0].Phi(1)
	if phi >= 1 {
		t.Errorf("φ = %v on regular traffic, want < 1", phi)
	}
}

func TestPhiGrowsWithSilenceAndDetectsCrash(t *testing.T) {
	c := newCluster(t, 3, netsim.Constant{D: 5 * time.Millisecond}, time.Second)
	c.sim.At(10*time.Second, func() { c.net.Crash(2) })
	c.sim.RunUntil(60 * time.Second)
	for i := 0; i < 2; i++ {
		if !c.nodes[i].IsSuspected(2) {
			t.Errorf("node %d: crashed process not suspected (φ=%v)", i, c.nodes[i].Phi(2))
		}
		at, ok := c.log.FirstSuspicion(ident.ID(i), 2)
		if !ok || at < 10*time.Second {
			t.Errorf("node %d suspicion at %v, ok=%v", i, at, ok)
		}
	}
	if phi := c.nodes[0].Phi(2); !math.IsInf(phi, 1) && phi < 8 {
		t.Errorf("φ after long silence = %v, want ≥ threshold", phi)
	}
}

func TestPhiRestoresAfterDisturbance(t *testing.T) {
	delay := netsim.Disturbance{
		Base:   netsim.Constant{D: 5 * time.Millisecond},
		Nodes:  ident.SetOf(1),
		Start:  10 * time.Second,
		End:    18 * time.Second,
		Factor: 2000, // ≈10 s delays, far beyond the adaptive expectation
	}
	c := newCluster(t, 3, delay, time.Second)
	c.sim.RunUntil(120 * time.Second)
	falseSusp := false
	for _, e := range c.log.Events() {
		if e.Subject == 1 && e.Suspected {
			falseSusp = true
		}
	}
	if !falseSusp {
		t.Fatal("disturbance did not trigger φ suspicion; scenario too weak")
	}
	if c.nodes[0].IsSuspected(1) || c.nodes[2].IsSuspected(1) {
		t.Error("suspicion not revoked after heartbeats resumed")
	}
}

func TestPhiOfUnknownPeerZero(t *testing.T) {
	c := newCluster(t, 2, netsim.Constant{D: time.Millisecond}, time.Second)
	if got := c.nodes[0].Phi(9); got != 0 {
		t.Errorf("Phi(unknown) = %v, want 0", got)
	}
	if c.nodes[0].IsSuspected(9) {
		t.Error("unknown peer suspected")
	}
}

func TestStopSilencesNode(t *testing.T) {
	c := newCluster(t, 2, netsim.Constant{D: time.Millisecond}, 100*time.Millisecond)
	c.sim.RunUntil(time.Second)
	c.nodes[0].Stop()
	before := c.net.Stats().Sent
	c.sim.RunUntil(2 * time.Second)
	after := c.net.Stats().Sent
	if after-before > 11 { // only node 1's ~10 heartbeats remain
		t.Errorf("stopped node kept sending: %d msgs", after-before)
	}
}

func TestDeliverIgnoresForeign(t *testing.T) {
	c := newCluster(t, 2, netsim.Constant{D: time.Millisecond}, time.Second)
	c.nodes[0].Deliver(1, "junk") // must not panic or alter state
	c.nodes[0].Deliver(9, Message{From: 9, Seq: 1})
	if c.nodes[0].IsSuspected(9) {
		t.Error("stranger heartbeat created peer state")
	}
}

func TestRestartAndRedetectionUnpoisonedWindow(t *testing.T) {
	// The downtime gap must not enter the observers' inter-arrival windows:
	// after p1 recovers and crashes again, detection of the second crash
	// must be about as fast as the first, not stretched by a 10s outlier
	// sample.
	c := newCluster(t, 3, netsim.Constant{D: 10 * time.Millisecond}, time.Second)
	c.sim.At(5*time.Second, func() { c.net.Crash(1) })
	c.sim.At(15*time.Second, func() {
		c.net.Recover(1)
		c.nodes[1].Restart(true)
	})
	c.sim.At(25*time.Second, func() { c.net.Crash(1) })
	c.sim.RunUntil(45 * time.Second)
	if !c.nodes[0].IsSuspected(1) {
		t.Fatal("second crash never detected")
	}
	var redetect time.Duration
	for _, e := range c.log.Events() {
		if e.Observer == 0 && e.Subject == 1 && e.Suspected && e.At >= 25*time.Second {
			redetect = e.At - 25*time.Second
			break
		}
	}
	if redetect == 0 {
		t.Fatal("no re-detection event found")
	}
	if redetect > 10*time.Second {
		t.Errorf("re-detection took %v; the downtime gap poisoned the window", redetect)
	}
}

func TestRestartFreshClearsSuspicions(t *testing.T) {
	c := newCluster(t, 3, netsim.Constant{D: 10 * time.Millisecond}, time.Second)
	c.sim.At(3*time.Second, func() { c.net.Crash(2) })
	c.sim.RunUntil(10 * time.Second)
	if !c.nodes[0].IsSuspected(2) {
		t.Fatal("crash not detected")
	}
	c.sim.At(11*time.Second, func() {
		c.net.Crash(0)
		c.net.Recover(0)
		c.nodes[0].Restart(true)
	})
	c.sim.RunUntil(11500 * time.Millisecond)
	if c.nodes[0].IsSuspected(2) {
		t.Error("fresh restart kept a suspicion")
	}
	// The dead p2 is re-suspected once silence accumulates again.
	c.sim.RunUntil(30 * time.Second)
	if !c.nodes[0].IsSuspected(2) {
		t.Error("restarted monitor never re-detected the dead peer")
	}
}
