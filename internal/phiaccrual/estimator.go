package phiaccrual

import (
	"errors"
	"time"
)

// EstimatorConfig parameterizes a shard-callable φ-accrual estimator. The
// fields mirror the detector Config knobs that concern one monitored pair;
// zero values take the same defaults.
type EstimatorConfig struct {
	// Interval is the expected heartbeat period Δ (required; it also
	// primes the inter-arrival window).
	Interval time.Duration
	// Threshold is the suspicion level above which the peer is suspected
	// (default 8).
	Threshold float64
	// WindowSize bounds the inter-arrival sample window (default 200).
	WindowSize int
	// MinStdDev floors the fitted standard deviation (default Interval/20).
	MinStdDev time.Duration
}

// Validate checks the configuration.
func (c EstimatorConfig) Validate() error {
	if c.Interval <= 0 {
		return errors.New("phiaccrual: estimator config: Interval must be positive")
	}
	if c.Threshold < 0 || c.WindowSize < 0 {
		return errors.New("phiaccrual: estimator config: negative Threshold or WindowSize")
	}
	return nil
}

func (c *EstimatorConfig) fillDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 8
	}
	if c.WindowSize == 0 {
		c.WindowSize = 200
	}
	if c.MinStdDev == 0 {
		c.MinStdDev = c.Interval / 20
	}
}

// Estimator is the shard-callable core of the φ-accrual detector: the
// per-peer inter-arrival window and suspicion rule with no Env, goroutine
// or timer machinery. A shard worker (internal/liveshard) owns one
// Estimator per monitored peer, feeds it heartbeat arrival times via
// Observe and polls Suspected on its scan tick. All times are offsets on
// the caller's clock; the Estimator never reads a clock itself.
//
// It applies the same two refinements as the full detector Node: the start
// of monitoring counts as a sighting with the window primed by the nominal
// interval (no instant suspicion), and a silence that suspicion proved
// wrong is not sampled into the window (one downtime outlier would stretch
// the fitted tail for the whole window lifetime).
type Estimator struct {
	cfg       EstimatorConfig
	win       window
	last      time.Duration
	suspected bool
}

// NewEstimator builds an estimator primed as if a heartbeat arrived at now.
func NewEstimator(cfg EstimatorConfig, now time.Duration) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	e := &Estimator{cfg: cfg, last: now}
	e.win.push(cfg.Interval.Seconds(), cfg.WindowSize)
	return e, nil
}

// Observe records a heartbeat arrival at time at. If the peer was suspected,
// trust is restored and the proven-wrong silence is not sampled; otherwise
// the inter-arrival gap enters the window.
func (e *Estimator) Observe(at time.Duration) {
	if e.suspected {
		e.suspected = false
	} else {
		e.win.push((at - e.last).Seconds(), e.cfg.WindowSize)
	}
	e.last = at
}

// Phi returns the current suspicion level at time now.
func (e *Estimator) Phi(now time.Duration) float64 {
	elapsed := (now - e.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	mean, std := e.win.meanStd()
	return phiValue(mean, std, elapsed, e.cfg.MinStdDev.Seconds())
}

// Suspected reports (and latches) whether the peer is suspected at time
// now: φ only grows with silence, so once the threshold is crossed the
// suspicion holds until a heartbeat restores trust via Observe.
func (e *Estimator) Suspected(now time.Duration) bool {
	if !e.suspected && e.Phi(now) >= e.cfg.Threshold {
		e.suspected = true
	}
	return e.suspected
}
