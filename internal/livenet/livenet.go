// Package livenet is the real-time counterpart of netsim: an in-process
// asynchronous network where every process's handler runs on its own
// dispatcher goroutine and messages travel through randomly delayed timers.
// It exists to run the very same protocol nodes (core.Node, heartbeat.Node,
// ...) under genuine concurrency — goroutines and channels instead of a
// virtual clock — as the examples do.
//
// Concurrency contract: all goroutines are owned by the Network and joined
// by Close; per-process delivery is serialized by the dispatcher goroutine;
// handlers never run after Close returns.
package livenet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// DefaultMailbox is the default per-process mailbox capacity. Deliveries
// beyond a full mailbox park their timer goroutine until the dispatcher
// drains (counted by Parked); capacity 1 — the old behavior — parked on
// every concurrent delivery and piled up goroutines without bound under
// load.
const DefaultMailbox = 256

// Config parameterizes the live network.
type Config struct {
	// Seed seeds the delay sampler (0 = fixed default seed).
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message latency.
	// Defaults: 200µs and 2ms.
	MinDelay, MaxDelay time.Duration
	// DropRate is the probability a message is lost (0 = reliable).
	DropRate float64
	// Mailbox is the per-process mailbox capacity (default DefaultMailbox).
	// A burst of up to Mailbox deliveries to one process never parks a
	// timer goroutine.
	Mailbox int
}

type delivery struct {
	from    ident.ID
	payload any
}

// Network is the live medium. Create with New, attach nodes with AddNode,
// then Start the protocol nodes; Close tears everything down.
type Network struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	rng     *rand.Rand
	nodes   map[ident.ID]*Env
	crashed ident.Set
	closed  bool

	done    chan struct{} // closed by Close
	pending sync.WaitGroup
	dispers sync.WaitGroup

	parked    atomic.Uint64 // deliveries that blocked on a full mailbox
	delivered atomic.Uint64 // deliveries handed to a mailbox
}

// New builds a live network.
func New(cfg Config) *Network {
	if cfg.MinDelay == 0 {
		cfg.MinDelay = 200 * time.Microsecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay + 2*time.Millisecond
	}
	if cfg.Mailbox <= 0 {
		cfg.Mailbox = DefaultMailbox
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[ident.ID]*Env),
		done:  make(chan struct{}),
	}
}

// AddNode registers a process and spawns its dispatcher goroutine. It
// panics on duplicate ids (a wiring bug) and must not be called after Close.
func (n *Network) AddNode(id ident.ID, h node.Handler) *Env {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic("livenet: AddNode after Close")
	}
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("livenet: duplicate node %v", id))
	}
	env := &Env{
		net:     n,
		id:      id,
		handler: h,
		mailbox: make(chan delivery, n.cfg.Mailbox),
	}
	n.nodes[id] = env
	n.dispers.Add(1)
	go env.dispatch(&n.dispers)
	return env
}

// Parked reports how many deliveries have blocked their timer goroutine on
// a full mailbox so far. A burst of up to Config.Mailbox deliveries per
// process never parks; a sustained overload parks (and the count makes the
// pileup observable instead of silent).
func (n *Network) Parked() uint64 { return n.parked.Load() }

// Delivered reports how many deliveries have been handed to a mailbox.
func (n *Network) Delivered() uint64 { return n.delivered.Load() }

// Crash marks id crashed: no more sends, deliveries or timer callbacks.
func (n *Network) Crash(id ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed.Add(id)
}

// Crashed reports whether id crashed.
func (n *Network) Crashed(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed.Has(id)
}

// Close shuts the network down: pending timers are canceled, dispatchers
// drained and joined. Safe to call more than once.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	n.mu.Unlock()

	n.pending.Wait() // all in-flight timer callbacks finished or canceled
	n.dispers.Wait() // all dispatchers observed done
}

// after schedules fn with cancel-on-close semantics; fn runs on a timer
// goroutine unless the network closes or the owner crashes first.
func (n *Network) after(owner ident.ID, d time.Duration, fn func()) node.Timer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return stoppedTimer{}
	}
	n.pending.Add(1)
	lt := &liveTimer{}
	t := time.AfterFunc(d, func() {
		defer n.pending.Done()
		if !lt.consume() {
			return
		}
		select {
		case <-n.done:
			return
		default:
		}
		if n.Crashed(owner) {
			return
		}
		fn()
	})
	lt.t = t
	lt.net = n
	return lt
}

// liveTimer wraps time.Timer with exactly-once consumption so that Stop
// after firing reports false and a stopped timer releases the WaitGroup.
type liveTimer struct {
	mu       sync.Mutex
	t        *time.Timer
	net      *Network
	consumed bool
}

// consume marks the timer used; returns false if it was already stopped.
func (l *liveTimer) consume() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.consumed {
		return false
	}
	l.consumed = true
	return true
}

// Stop implements node.Timer.
func (l *liveTimer) Stop() bool {
	l.mu.Lock()
	if l.consumed {
		l.mu.Unlock()
		return false
	}
	l.consumed = true
	l.mu.Unlock()
	if l.t.Stop() {
		l.net.pending.Done() // callback will never run
		return true
	}
	// The callback is running concurrently; it will see consumed and
	// release the WaitGroup itself.
	return true
}

type stoppedTimer struct{}

func (stoppedTimer) Stop() bool { return false }

// Env binds one identity to the live network. It implements node.Env.
type Env struct {
	net     *Network
	id      ident.ID
	handler node.Handler
	mailbox chan delivery
}

var _ node.Env = (*Env)(nil)

// dispatch serializes deliveries to the handler.
func (e *Env) dispatch(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case d := <-e.mailbox:
			if !e.net.Crashed(e.id) {
				e.handler.Deliver(d.from, d.payload)
			}
		case <-e.net.done:
			return
		}
	}
}

// Self implements node.Env.
func (e *Env) Self() ident.ID { return e.id }

// Now implements node.Env (time since network creation).
func (e *Env) Now() time.Duration { return time.Since(e.net.start) }

// After implements node.Env.
func (e *Env) After(d time.Duration, fn func()) node.Timer {
	return e.net.after(e.id, d, fn)
}

// Send implements node.Env: the payload is delivered after a random delay
// through the destination's mailbox, unless dropped.
func (e *Env) Send(to ident.ID, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.crashed.Has(e.id) || to == e.id {
		n.mu.Unlock()
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.mu.Unlock()
		return
	}
	delay := n.cfg.MinDelay
	if span := n.cfg.MaxDelay - n.cfg.MinDelay; span > 0 {
		delay += time.Duration(n.rng.Int63n(int64(span)))
	}
	n.mu.Unlock()

	n.after(to, delay, func() {
		d := delivery{from: e.id, payload: payload}
		select {
		case dst.mailbox <- d:
			n.delivered.Add(1)
			return
		default:
		}
		// Full mailbox: the timer goroutine parks until the dispatcher
		// drains (or the network closes). Counted so overload is visible.
		n.parked.Add(1)
		select {
		case dst.mailbox <- d:
			n.delivered.Add(1)
		case <-n.done:
		}
	})
}

// Broadcast implements node.Env.
func (e *Env) Broadcast(payload any) {
	e.net.mu.Lock()
	targets := make([]ident.ID, 0, len(e.net.nodes))
	for id := range e.net.nodes {
		if id != e.id {
			targets = append(targets, id)
		}
	}
	e.net.mu.Unlock()
	ident.SortIDs(targets)
	for _, to := range targets {
		e.Send(to, payload)
	}
}
