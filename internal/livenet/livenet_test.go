package livenet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
	"asyncfd/internal/trace"
)

func TestDelivery(t *testing.T) {
	n := New(Config{MinDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	defer n.Close()

	var mu sync.Mutex
	var got []any
	done := make(chan struct{}, 1)
	n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	n.AddNode(1, node.HandlerFunc(func(from ident.ID, payload any) {
		mu.Lock()
		got = append(got, payload)
		mu.Unlock()
		select {
		case done <- struct{}{}:
		default:
		}
	}))
	n.nodes[0].Send(1, "hello")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("got = %v", got)
	}
}

func TestBroadcastAndCrash(t *testing.T) {
	n := New(Config{MinDelay: 100 * time.Microsecond, MaxDelay: 500 * time.Microsecond})
	defer n.Close()

	var count0, count2 atomic.Int64
	n.AddNode(0, node.HandlerFunc(func(ident.ID, any) { count0.Add(1) }))
	env1 := n.AddNode(1, node.HandlerFunc(func(ident.ID, any) {}))
	n.AddNode(2, node.HandlerFunc(func(ident.ID, any) { count2.Add(1) }))

	n.Crash(2)
	env1.Broadcast("x")
	time.Sleep(50 * time.Millisecond)
	if count0.Load() != 1 {
		t.Errorf("node 0 received %d, want 1", count0.Load())
	}
	if count2.Load() != 0 {
		t.Error("crashed node received a broadcast")
	}
	if !n.Crashed(2) || n.Crashed(0) {
		t.Error("Crashed bookkeeping wrong")
	}
}

func TestTimerStopAndFire(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	env := n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))

	var fired atomic.Bool
	tm := env.After(time.Millisecond, func() { fired.Store(true) })
	time.Sleep(20 * time.Millisecond)
	if !fired.Load() {
		t.Error("timer did not fire")
	}
	if tm.Stop() {
		t.Error("Stop after fire = true")
	}

	var fired2 atomic.Bool
	tm2 := env.After(50*time.Millisecond, func() { fired2.Store(true) })
	if !tm2.Stop() {
		t.Error("Stop pending = false")
	}
	time.Sleep(80 * time.Millisecond)
	if fired2.Load() {
		t.Error("stopped timer fired")
	}
}

func TestCloseCancelsTimers(t *testing.T) {
	n := New(Config{})
	env := n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	var fired atomic.Bool
	env.After(100*time.Millisecond, func() { fired.Store(true) })
	n.Close() // must not hang waiting for the 100ms timer
	time.Sleep(150 * time.Millisecond)
	if fired.Load() {
		t.Error("timer fired after Close")
	}
	n.Close() // idempotent
	if env.After(time.Millisecond, func() {}).Stop() {
		t.Error("After on closed network returned a live timer")
	}
}

func TestCrashedTimersSuppressed(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	env := n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	var fired atomic.Bool
	env.After(5*time.Millisecond, func() { fired.Store(true) })
	n.Crash(0)
	time.Sleep(30 * time.Millisecond)
	if fired.Load() {
		t.Error("crashed node's timer fired")
	}
}

// TestMailboxBurstDoesNotPark is the regression test for the capacity-1
// mailbox bug: under load every delivery parked its timer goroutine on the
// mailbox send, piling up goroutines without bound. The contract now is
// that a burst of up to Config.Mailbox deliveries to one process never
// parks, and overloads beyond that are counted by Parked.
func TestMailboxBurstDoesNotPark(t *testing.T) {
	const box = 8
	n := New(Config{MinDelay: 50 * time.Microsecond, MaxDelay: 100 * time.Microsecond, Mailbox: box})
	defer n.Close()

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var got atomic.Int64
	n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	n.AddNode(1, node.HandlerFunc(func(ident.ID, any) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate // wedge the dispatcher so the mailbox actually buffers
		got.Add(1)
	}))
	sender := n.nodes[0]

	// One delivery wedges the dispatcher; up to box more fit the mailbox.
	// None of these may park.
	for i := 0; i < box+1; i++ {
		sender.Send(1, i)
	}
	<-entered
	waitUntil(t, func() bool { return n.Delivered() == box+1 })
	if p := n.Parked(); p != 0 {
		t.Fatalf("burst of %d (mailbox %d) parked %d deliveries, want 0", box+1, box, p)
	}

	// Overload past the mailbox parks, and the parks are counted.
	for i := 0; i < 4; i++ {
		sender.Send(1, 100+i)
	}
	waitUntil(t, func() bool { return n.Parked() >= 1 })

	close(gate) // drain everything
	waitUntil(t, func() bool { return got.Load() == box+1+4 })
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDefaultMailboxSized(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	env := n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	if c := cap(env.mailbox); c != DefaultMailbox {
		t.Errorf("default mailbox capacity = %d, want %d", c, DefaultMailbox)
	}
	n2 := New(Config{Mailbox: 3})
	defer n2.Close()
	env2 := n2.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	if c := cap(env2.mailbox); c != 3 {
		t.Errorf("configured mailbox capacity = %d, want 3", c)
	}
}

func TestEnvBasics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	env := n.AddNode(7, node.HandlerFunc(func(ident.ID, any) {}))
	if env.Self() != 7 {
		t.Error("Self wrong")
	}
	if env.Now() < 0 {
		t.Error("Now negative")
	}
	env.Send(7, "self") // ignored
	env.Send(99, "ghost")
}

func TestDuplicatePanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	n.AddNode(0, node.HandlerFunc(func(ident.ID, any) {}))
}

// TestLiveFDCluster runs the actual time-free detector on the goroutine
// runtime: 4 processes, one crashes, survivors must suspect it and only it.
func TestLiveFDCluster(t *testing.T) {
	net := New(Config{MinDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Seed: 5})
	defer net.Close()
	log := &trace.Log{}

	const n, f = 4, 1
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		cell := &handlerCell{}
		env := net.AddNode(id, cell)
		nd, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{Self: id, N: n, F: f},
			Window:   10 * time.Millisecond,
			Interval: 20 * time.Millisecond,
			Sink:     log,
		})
		if err != nil {
			t.Fatal(err)
		}
		cell.n = nd
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}

	time.Sleep(300 * time.Millisecond) // steady state
	net.Crash(3)

	deadline := time.Now().Add(5 * time.Second)
	for {
		allSuspect := true
		for i := 0; i < 3; i++ {
			if !nodes[i].IsSuspected(3) {
				allSuspect = false
			}
		}
		if allSuspect {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not suspect the crashed process; log:\n%s", log)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// No survivor may (still) suspect another survivor at the end.
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 3; i++ {
		s := nodes[i].Suspects()
		s.Remove(3)
		if !s.Empty() {
			t.Errorf("node %d wrongly suspects %v", i, s)
		}
	}
	for _, nd := range nodes {
		nd.Stop()
	}
}

type handlerCell struct{ n *core.Node }

func (c *handlerCell) Deliver(from ident.ID, payload any) {
	if c.n != nil {
		c.n.Deliver(from, payload)
	}
}
