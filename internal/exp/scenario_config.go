package exp

// scenario_config.go executes compiled scenario configurations
// (internal/scenario, the asyncfd-scenario/v1 DSL) on the exact machinery
// the built-in experiments run on: the cluster program uses the same
// warm-fork seed families as R1/R2 (runFamilies), the topology program the
// same job decomposition as LT, and the consensus program the same bespoke
// harness as E7 — with the same formatters and the same v2 sample
// conventions. A config that mirrors a built-in experiment therefore
// renders the byte-identical table and v2 rows, at any -parallel width,
// fork on or off; TestConfigMatchesBuiltin holds the engine to that bar.

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"asyncfd/internal/consensus"
	"asyncfd/internal/des"
	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/scenario"
	"asyncfd/internal/trace"
)

// scenarioKinds maps a compiled detector list to cluster kinds. The
// scenario package validated the names against its DetectorNames list,
// which mirrors Kind.String().
func scenarioKinds(sc *scenario.Scenario) ([]Kind, error) {
	kinds := make([]Kind, len(sc.Cluster.Detectors))
	for i, name := range sc.Cluster.Detectors {
		switch name {
		case "async":
			kinds[i] = KindAsync
		case "heartbeat":
			kinds[i] = KindHeartbeat
		case "phi-accrual":
			kinds[i] = KindPhi
		case "chen-nfde":
			kinds[i] = KindChen
		default:
			return nil, fmt.Errorf("exp: scenario %s: unknown detector %q", sc.Name, name)
		}
	}
	return kinds, nil
}

// scenarioClusterConfig assembles the ClusterConfig of one scenario cell.
func scenarioClusterConfig(sc *scenario.Scenario, kind Kind, seed int64) ClusterConfig {
	cl := sc.Cluster
	return ClusterConfig{
		Kind: kind, N: cl.N, F: cl.F,
		Seed:  seed,
		Delay: cl.Delay,

		CountBytes:  cl.CountBytes,
		StartJitter: cl.StartJitter,

		Window:      cl.Window,
		Interval:    cl.Interval,
		Rebroadcast: cl.Rebroadcast,
		DisableTags: cl.DisableTags,

		HBInterval:   cl.HBInterval,
		HBTimeout:    cl.HBTimeout,
		PhiThreshold: cl.PhiThreshold,
		ChenAlpha:    cl.ChenAlpha,
	}
}

// ScenarioTable runs a compiled scenario and renders its table, collecting
// v2 samples exactly like the built-in experiments. A scenario's Repeat
// becomes the seed-family size unless the caller pinned Options.Repeat.
func ScenarioTable(sc *scenario.Scenario, opts Options) (*Table, error) {
	if opts.Repeat == 0 && sc.Repeat > 0 {
		opts.Repeat = sc.Repeat
	}
	switch sc.Measure.Program {
	case scenario.ProgramCluster:
		return scenarioClusterTable(sc, opts)
	case scenario.ProgramTopology:
		return scenarioTopologyTable(sc, opts)
	case scenario.ProgramConsensus:
		return scenarioConsensusTable(sc, opts)
	default:
		return nil, fmt.Errorf("exp: scenario %s: unknown program %v", sc.Name, sc.Measure.Program)
	}
}

// scMeasurement is one replicate's value of one metric; only the fields of
// the metric's kind are set.
type scMeasurement struct {
	det    qos.DetectionStats
	scalar float64
	settle time.Duration
	clean  bool
}

// scStream accumulates one named sample stream across a cell's replicates
// for column rendering.
type scStream struct {
	dets    []qos.DetectionStats // detection-family streams
	vals    []float64            // famMS/famCell inputs (ms or scalar)
	max     time.Duration        // worst settle (duration streams)
	nonzero int                  // true count (indicator streams)
}

// scenarioClusterTable is the general program: detector kinds × fault
// variants as warm-forked seed families, config-driven metrics and columns.
// The structure is R1's, generalized.
func scenarioClusterTable(sc *scenario.Scenario, opts Options) (*Table, error) {
	kinds, err := scenarioKinds(sc)
	if err != nil {
		return nil, err
	}
	columns := []string{"detector"}
	if sc.VariantHeader != "" {
		columns = append(columns, sc.VariantHeader)
	}
	for _, col := range sc.Measure.Columns {
		columns = append(columns, col.Header)
	}
	t := &Table{ID: sc.Name, Title: sc.Title, Note: sc.Note, Columns: columns}

	horizon := sc.Measure.Horizon
	metrics := sc.Measure.Metrics
	var fams []family[[]scMeasurement]
	for _, kind := range kinds {
		kind := kind
		for _, v := range sc.Variants {
			v := v
			cfg := scenarioClusterConfig(sc, kind, opts.seed())
			fams = append(fams, family[[]scMeasurement]{
				warm: sc.Measure.Warm,
				build: func() (*Cluster, *qos.GroundTruth, error) {
					c, err := NewCluster(cfg)
					if err != nil {
						return nil, nil, fmt.Errorf("scenario %s %v/%s: %w", sc.Name, kind, v.Name, err)
					}
					return c, c.Apply(v.Faults), nil
				},
				run: func(c *Cluster, truth *qos.GroundTruth) ([]scMeasurement, error) {
					c.RunUntil(horizon)
					opts.record(c.Sim)
					judge := qos.JudgeFrom(c.Log) // one trace pass for every metric
					out := make([]scMeasurement, len(metrics))
					for mi, m := range metrics {
						switch m.Kind {
						case scenario.MetricDetection, scenario.MetricRedetection, scenario.MetricTrustRestoration:
							var observers ident.Set
							if len(m.Observers) > 0 {
								for _, id := range m.Observers {
									observers.Add(id)
								}
							} else {
								observers = c.Members.Clone()
								observers.Remove(m.Victim)
							}
							switch m.Kind {
							case scenario.MetricDetection:
								out[mi].det = judge.DetectionTimes(truth, m.Victim, observers)
							case scenario.MetricRedetection:
								out[mi].det = judge.RedetectionTimes(truth, m.Victim, observers, m.Episode)
							default:
								out[mi].det = judge.TrustRestorationTimes(truth, m.Victim, observers, m.Episode)
							}
						case scenario.MetricStorm:
							out[mi].scalar = float64(judge.MistakeStorm(truth, c.Members, m.From, m.To))
						case scenario.MetricReconvergence:
							out[mi].settle, out[mi].clean = judge.Reconvergence(truth, c.Members, m.After)
						default:
							return nil, fmt.Errorf("scenario %s: unknown metric kind %v", sc.Name, m.Kind)
						}
					}
					return out, nil
				},
			})
		}
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}

	singleUnnamed := len(sc.Variants) == 1 && sc.Variants[0].Name == ""
	k := 0
	for _, kind := range kinds {
		for _, v := range sc.Variants {
			cellKey := kind.String()
			if !singleUnnamed {
				cellKey = fmt.Sprintf("%s/%s", kind, v.Name)
			}
			streams := map[string]*scStream{}
			stream := func(name string) *scStream {
				s, ok := streams[name]
				if !ok {
					s = &scStream{}
					streams[name] = s
				}
				return s
			}
			for r := 0; r < opts.runs(); r++ {
				vals := cells[k]
				k++
				for mi, m := range metrics {
					mv := vals[mi]
					switch m.Kind {
					case scenario.MetricDetection, scenario.MetricRedetection, scenario.MetricTrustRestoration:
						s := stream(m.Name)
						s.dets = append(s.dets, mv.det)
						s.vals = append(s.vals, qos.Millis(mv.det.Avg))
						opts.sampleDetection(cellKey, m.Name, r, mv.det)
					case scenario.MetricStorm:
						s := stream(m.Name)
						s.vals = append(s.vals, mv.scalar)
						opts.sample(cellKey, m.Name, r, mv.scalar)
					case scenario.MetricReconvergence:
						s := stream(m.Name)
						s.vals = append(s.vals, qos.Millis(mv.settle))
						if mv.settle > s.max {
							s.max = mv.settle
						}
						opts.sample(cellKey, m.Name, r, qos.Millis(mv.settle))
						cs := stream(m.CleanName)
						clean := 0.0
						if mv.clean {
							cs.nonzero++
							clean = 1
						}
						cs.vals = append(cs.vals, clean)
						opts.sample(cellKey, m.CleanName, r, clean)
					}
				}
			}
			row := []string{kind.String()}
			if sc.VariantHeader != "" {
				row = append(row, v.Name)
			}
			for _, col := range sc.Measure.Columns {
				s := streams[col.Metric]
				if s == nil {
					return nil, fmt.Errorf("exp: scenario %s: column %q references unknown stream %q", sc.Name, col.Header, col.Metric)
				}
				switch col.Kind {
				case scenario.ColFamMS:
					row = append(row, famMS(s.vals))
				case scenario.ColMaxMS:
					if len(s.dets) > 0 {
						row = append(row, ms(aggregateDetection(s.dets).Max))
					} else {
						row = append(row, ms(s.max))
					}
				case scenario.ColMissing:
					row = append(row, strconv.Itoa(aggregateDetection(s.dets).Missing))
				case scenario.ColFam:
					row = append(row, famCell(col.Format, "", s.vals))
				case scenario.ColRatio:
					row = append(row, fmt.Sprintf("%d/%d", s.nonzero, opts.runs()))
				default:
					return nil, fmt.Errorf("exp: scenario %s: unknown column kind %v", sc.Name, col.Kind)
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// scenarioTopologyTable is LT's sweep driven by config: neighbor-local
// heartbeat detection over the configured topology families and machine
// sizes, one crash per run. Shape and sampling match LTTopologySweep cell
// for cell.
func scenarioTopologyTable(sc *scenario.Scenario, opts Options) (*Table, error) {
	t := &Table{
		ID: sc.Name, Title: sc.Title, Note: sc.Note,
		Columns: []string{"topology", "n", "avg deg", "det avg", "det max", "msgs/proc/s", "bytes/proc/s"},
	}
	crashAt, horizon := sc.Measure.CrashAt, sc.Measure.Horizon
	interval, timeout := sc.Measure.Interval, sc.Measure.Timeout
	delay := sc.Cluster.Delay
	ns := sc.Measure.Ns
	var jobs []func() (ltRun, error)
	for _, topo := range sc.Measure.Topologies {
		topo := topo
		for _, n := range ns {
			n := n
			for r := 0; r < opts.runs(); r++ {
				seed := opts.seed() + int64(r)*101
				jobs = append(jobs, func() (ltRun, error) {
					//fdlint:allow rngdiscipline seed-addressed graph construction before the kernel runs; never interleaves with kernel draws
					g := ltGraph(topo, n, rand.New(rand.NewSource(seed)))
					degSum := 0
					for v := 0; v < n; v++ {
						degSum += g.Degree(ident.ID(v))
					}
					c, err := newTopoCluster(g, seed, delay, interval, timeout)
					if err != nil {
						return ltRun{}, fmt.Errorf("scenario %s %s n=%d: %w", sc.Name, topo, n, err)
					}
					victim := ltVictim(g)
					truth := faults.Schedule{}.CrashAt(victim, crashAt).Apply(c.sim, c.net)
					c.sim.RunUntil(horizon)
					opts.record(c.sim)
					observers := g.Neighbors(victim)
					return ltRun{
						det:    qos.JudgeFrom(c.log).DetectionTimes(truth, victim, observers),
						stats:  c.net.Stats(),
						avgDeg: float64(degSum) / float64(n),
					}, nil
				})
			}
		}
	}
	results, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	secs := horizon.Seconds()
	for _, topo := range sc.Measure.Topologies {
		for _, n := range ns {
			cell := fmt.Sprintf("%s/n=%d", topo, n)
			var dets []qos.DetectionStats
			var avgs, degs, msgs, bytes []float64
			for r := 0; r < opts.runs(); r++ {
				res := results[k]
				k++
				dets = append(dets, res.det)
				avgs = append(avgs, qos.Millis(res.det.Avg))
				degs = append(degs, res.avgDeg)
				m := float64(res.stats.Sent) / float64(n) / secs
				b := float64(res.stats.Bytes) / float64(n) / secs
				msgs = append(msgs, m)
				bytes = append(bytes, b)
				opts.sampleDetection(cell, "det", r, res.det)
				opts.sample(cell, "avg_degree", r, res.avgDeg)
				opts.sample(cell, "msgs_per_proc_s", r, m)
				opts.sample(cell, "bytes_per_proc_s", r, b)
			}
			t.AddRow(topo, strconv.Itoa(n),
				famCell("%.1f", "", degs),
				famMS(avgs), ms(aggregateDetection(dets).Max),
				famCell("%.1f", "", msgs),
				famCell("%.0f", "", bytes))
		}
	}
	return t, nil
}

// scenarioConsensusLatency is consensusLatency generalized to an arbitrary
// fault schedule: Chandra–Toueg consensus over the configured detector
// kind, proposals at sc.Measure.Propose, the scenario's crash/recover/
// partition events applied through the detector-restarting recovery hook,
// and the worst decision latency among never-crashed survivors returned.
func scenarioConsensusLatency(sc *scenario.Scenario, opts Options, kind Kind, seed int64) (time.Duration, error) {
	n, f := sc.Cluster.N, sc.Cluster.F
	propose, horizon := sc.Measure.Propose, sc.Measure.Horizon
	sim := des.New(seed)
	net := netsim.New(sim, netsim.Config{Delay: sc.Cluster.Delay})
	log := &trace.Log{}

	demuxes := make([]*fdConsensusDemux, n)
	runners := make([]runner, n)
	decidedAt := make(map[ident.ID]time.Duration)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		demux := &fdConsensusDemux{}
		demuxes[i] = demux
		env := net.AddNode(id, demux)
		cfg := scenarioClusterConfig(sc, kind, seed)
		cfg.fillDefaults()
		det, run, err := buildNode(env, id, cfg, log)
		if err != nil {
			return 0, err
		}
		demux.fdNode = run
		runners[i] = run
		cons, err := consensus.NewNode(env, consensus.Config{
			Self: id, N: n, F: f, Detector: det,
			OnDecide: func(consensus.Value) { decidedAt[id] = sim.Now() },
		})
		if err != nil {
			return 0, err
		}
		demux.cons = cons
		// Stagger detector starts, matching consensusLatency's convention.
		jitter := time.Duration(sim.Rand().Int63n(int64(time.Second)))
		sim.At(jitter, run.Start)
	}

	// The scenario's fault schedule replaces E7's hard-coded coordinator
	// crash; recoveries restart the process's detector runtime.
	sched := sc.Variants[0].Faults
	sched.ApplyFunc(sim, net, func(id ident.ID, fresh bool) {
		runners[id].Restart(fresh)
	})
	crashed := sched.IDs()
	for i := 0; i < n; i++ {
		cons := demuxes[i].cons
		v := consensus.Value(100 + i)
		sim.At(propose, func() { cons.Propose(v) })
	}
	sim.RunUntil(horizon)
	opts.record(sim)

	var worst time.Duration
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		if crashed.Has(id) {
			continue
		}
		at, ok := decidedAt[id]
		if !ok {
			return 0, fmt.Errorf("consensus over %v: survivor p%d undecided after %v", kind, i, horizon)
		}
		if lat := at - propose; lat > worst {
			worst = lat
		}
	}
	return worst, nil
}

// scenarioConsensusTable is E7's table driven by config: decision latency
// of the worst never-crashed survivor, per detector kind, under the
// scenario's fault schedule.
func scenarioConsensusTable(sc *scenario.Scenario, opts Options) (*Table, error) {
	kinds, err := scenarioKinds(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: sc.Name, Title: sc.Title, Note: sc.Note,
		Columns: []string{"detector", "decision latency (worst survivor, avg of runs)"},
	}
	var jobs []func() (time.Duration, error)
	for _, kind := range kinds {
		kind := kind
		for r := 0; r < opts.runs(); r++ {
			seed := opts.seed() + int64(r)*101
			jobs = append(jobs, func() (time.Duration, error) {
				lat, err := scenarioConsensusLatency(sc, opts, kind, seed)
				if err != nil {
					return 0, fmt.Errorf("scenario %s: %w", sc.Name, err)
				}
				return lat, nil
			})
		}
	}
	lats, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, kind := range kinds {
		cell := fmt.Sprintf("consensus/%s", kind)
		var samples []float64
		for r := 0; r < opts.runs(); r++ {
			samples = append(samples, qos.Millis(lats[k]))
			opts.sample(cell, "decision_ms", r, qos.Millis(lats[k]))
			k++
		}
		t.AddRow(kind.String(), famMS(samples))
	}
	return t, nil
}
