package exp

// qosdiff_test.go is the exp-level differential harness for the streaming
// qos.Judge: real scenario clusters (crash-recovery, partition/heal,
// transient disturbance) are recorded once, and every public metric is then
// computed three ways on the recorded trace — legacy sort+rescan reference,
// snapshot Judge (JudgeFrom) and streamed Judge (OnSuspicion event by
// event) — and required to agree exactly. The recordings themselves are
// produced under the shared runJobs pool at Parallel 1 and 8 and must be
// byte-identical, pinning trace determinism across worker counts the same
// way queue_diff_test.go pins it across queue kinds.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/trace"
)

// qosRecording is one scenario's recorded run: the raw trace plus the
// ground truth and the instants the interval metrics are judged against.
type qosRecording struct {
	name    string
	events  []trace.Event
	truth   *qos.GroundTruth
	members ident.Set
	victim  ident.ID
	horizon time.Duration
	// windowFrom/windowTo bound the scenario's storm window; windowTo is
	// also the Reconvergence origin.
	windowFrom, windowTo time.Duration
}

// qosScenarioJobs builds the three recorded scenarios as runJobs jobs, so a
// recording pass exercises the same worker pool as a real experiment.
func qosScenarioJobs() []func() (qosRecording, error) {
	// R1-style: crash at 10s, recover at 20s with fresh state, crash again
	// at 35s. Two truth intervals → exercises RedetectionTimes k=0 and k=1
	// and TrustRestorationTimes k=0.
	r1 := func() (qosRecording, error) {
		const (
			crash1    = 10 * time.Second
			recoverAt = 20 * time.Second
			crash2    = 35 * time.Second
			horizon   = 50 * time.Second
		)
		n, f := 6, 2
		victim := ident.ID(n - 1)
		c, err := NewCluster(ClusterConfig{
			Kind: KindAsync, N: n, F: f, Seed: 11, Delay: defaultDelay(),
		})
		if err != nil {
			return qosRecording{}, fmt.Errorf("r1 cluster: %w", err)
		}
		truth := c.Apply(faults.Schedule{}.
			CrashAt(victim, crash1).
			RecoverAt(victim, recoverAt, true).
			CrashAt(victim, crash2))
		c.RunUntil(horizon)
		return qosRecording{
			name: "r1-crash-recovery", events: c.Log.Events(), truth: truth,
			members: c.Members, victim: victim, horizon: horizon,
			windowFrom: recoverAt, windowTo: crash2,
		}, nil
	}
	// R2-style: a one-process minority island cut off during [15s,30s),
	// then healed. Empty crash truth for the victim → every suspicion is a
	// mistake; exercises Reconvergence and MistakeStorm on a storm-heavy
	// trace.
	r2 := func() (qosRecording, error) {
		const (
			splitAt = 15 * time.Second
			healAt  = 30 * time.Second
			horizon = 60 * time.Second
		)
		n, f := 6, 2
		victim := ident.ID(n - 1)
		c, err := NewCluster(ClusterConfig{
			Kind: KindAsync, N: n, F: f, Seed: 23, Delay: defaultDelay(),
			Rebroadcast: 2 * time.Second,
		})
		if err != nil {
			return qosRecording{}, fmt.Errorf("r2 cluster: %w", err)
		}
		truth := c.Apply(faults.Schedule{}.
			PartitionAt(splitAt, []ident.ID{victim}).
			HealAt(healAt))
		c.RunUntil(horizon)
		return qosRecording{
			name: "r2-partition-heal", events: c.Log.Events(), truth: truth,
			members: c.Members, victim: victim, horizon: horizon,
			windowFrom: splitAt, windowTo: healAt,
		}, nil
	}
	// E3-style: nobody crashes, one process is transiently slowed ×3000 —
	// the trace is pure false suspicions judged against an empty truth.
	e3 := func() (qosRecording, error) {
		const (
			start   = 30 * time.Second
			end     = 40 * time.Second
			horizon = 60 * time.Second
		)
		n, f := 8, 2
		victim := ident.ID(3)
		c, err := NewCluster(ClusterConfig{
			Kind: KindPhi, N: n, F: f, Seed: 37,
			Delay: netsim.Disturbance{
				Base:   defaultDelay(),
				Nodes:  ident.SetOf(victim),
				Start:  start,
				End:    end,
				Factor: 3000,
			},
		})
		if err != nil {
			return qosRecording{}, fmt.Errorf("e3 cluster: %w", err)
		}
		c.RunUntil(horizon)
		return qosRecording{
			name: "e3-disturbance", events: c.Log.Events(), truth: &qos.GroundTruth{},
			members: c.Members, victim: victim, horizon: horizon,
			windowFrom: start, windowTo: end,
		}, nil
	}
	return []func() (qosRecording, error){r1, r2, e3}
}

// recordScenarios runs the scenario jobs under opts's worker pool.
func recordScenarios(t *testing.T, opts Options) []qosRecording {
	t.Helper()
	recs, err := runJobs(opts, qosScenarioJobs())
	if err != nil {
		t.Fatalf("recording scenarios: %v", err)
	}
	for _, rec := range recs {
		if len(rec.events) == 0 {
			t.Fatalf("%s: recorded an empty trace; scenario exercises nothing", rec.name)
		}
	}
	return recs
}

// judgesFor builds the two Judge ingestion paths over a recording: a
// snapshot of the replayed log and a Judge streamed one event at a time in
// recording order.
func judgesFor(rec qosRecording) (snapshot, streamed *qos.Judge) {
	log := &trace.Log{}
	streamed = qos.NewJudge()
	for _, e := range rec.events {
		log.Append(e)
		streamed.OnSuspicion(e.At, e.Observer, e.Subject, e.Suspected)
	}
	return qos.JudgeFrom(log), streamed
}

// TestQoSJudgeDifferentialOnScenarioTraces proves every public metric
// identical between the legacy reference and both Judge ingestion paths on
// each recorded scenario trace.
func TestQoSJudgeDifferentialOnScenarioTraces(t *testing.T) {
	recs := recordScenarios(t, Options{Quick: true, Parallel: 1})
	for _, rec := range recs {
		rec := rec
		t.Run(rec.name, func(t *testing.T) {
			log := &trace.Log{}
			for _, e := range rec.events {
				log.Append(e)
			}
			snapshot, streamed := judgesFor(rec)
			observers := rec.members.Clone()
			observers.Remove(rec.victim)

			check := func(metric string, want, snap, stream any) {
				t.Helper()
				if !reflect.DeepEqual(want, snap) {
					t.Errorf("%s: snapshot Judge %#v != legacy %#v", metric, snap, want)
				}
				if !reflect.DeepEqual(want, stream) {
					t.Errorf("%s: streamed Judge %#v != legacy %#v", metric, stream, want)
				}
			}

			check("DetectionTimes",
				qos.LegacyDetectionTimes(log, rec.truth, rec.victim, observers),
				snapshot.DetectionTimes(rec.truth, rec.victim, observers),
				streamed.DetectionTimes(rec.truth, rec.victim, observers))
			check("Mistakes",
				qos.LegacyMistakes(log, rec.truth, rec.members, rec.horizon),
				snapshot.Mistakes(rec.truth, rec.members, rec.horizon),
				streamed.Mistakes(rec.truth, rec.members, rec.horizon))
			check("QueryAccuracy",
				qos.LegacyQueryAccuracy(log, rec.truth, rec.members, rec.horizon),
				snapshot.QueryAccuracy(rec.truth, rec.members, rec.horizon),
				streamed.QueryAccuracy(rec.truth, rec.members, rec.horizon))
			for k := 0; k <= 2; k++ {
				check(fmt.Sprintf("RedetectionTimes(k=%d)", k),
					qos.LegacyRedetectionTimes(log, rec.truth, rec.victim, observers, k),
					snapshot.RedetectionTimes(rec.truth, rec.victim, observers, k),
					streamed.RedetectionTimes(rec.truth, rec.victim, observers, k))
				check(fmt.Sprintf("TrustRestorationTimes(k=%d)", k),
					qos.LegacyTrustRestorationTimes(log, rec.truth, rec.victim, observers, k),
					snapshot.TrustRestorationTimes(rec.truth, rec.victim, observers, k),
					streamed.TrustRestorationTimes(rec.truth, rec.victim, observers, k))
			}
			wantSettle, wantClean := qos.LegacyReconvergence(log, rec.truth, rec.members, rec.windowTo)
			snapSettle, snapClean := snapshot.Reconvergence(rec.truth, rec.members, rec.windowTo)
			streamSettle, streamClean := streamed.Reconvergence(rec.truth, rec.members, rec.windowTo)
			check("Reconvergence.settle", wantSettle, snapSettle, streamSettle)
			check("Reconvergence.clean", wantClean, snapClean, streamClean)
			check("MistakeStorm",
				qos.LegacyMistakeStorm(log, rec.truth, rec.members, rec.windowFrom, rec.windowTo),
				snapshot.MistakeStorm(rec.truth, rec.members, rec.windowFrom, rec.windowTo),
				streamed.MistakeStorm(rec.truth, rec.members, rec.windowFrom, rec.windowTo))

			// The package wrappers must route through the same Judge and
			// agree with the reference too.
			check("wrapper DetectionTimes",
				qos.LegacyDetectionTimes(log, rec.truth, rec.victim, observers),
				qos.DetectionTimes(log, rec.truth, rec.victim, observers),
				snapshot.DetectionTimes(rec.truth, rec.victim, observers))
			check("wrapper Mistakes",
				qos.LegacyMistakes(log, rec.truth, rec.members, rec.horizon),
				qos.Mistakes(log, rec.truth, rec.members, rec.horizon),
				snapshot.Mistakes(rec.truth, rec.members, rec.horizon))
		})
	}
}

// TestQoSRecordingsIdenticalAcrossParallelism proves the recorded traces —
// and therefore every metric derived from them — are byte-identical whether
// the scenario jobs run serially or on an 8-worker pool.
func TestQoSRecordingsIdenticalAcrossParallelism(t *testing.T) {
	serial := recordScenarios(t, Options{Quick: true, Parallel: 1})
	pooled := recordScenarios(t, Options{Quick: true, Parallel: 8})
	if len(serial) != len(pooled) {
		t.Fatalf("recording counts differ: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		s, p := serial[i], pooled[i]
		if s.name != p.name {
			t.Fatalf("recording %d: name %q vs %q", i, s.name, p.name)
		}
		if !reflect.DeepEqual(s.events, p.events) {
			t.Errorf("%s: trace differs between parallel 1 and 8 (%d vs %d events)",
				s.name, len(s.events), len(p.events))
		}
		sIvs := s.truth.Intervals(s.victim)
		pIvs := p.truth.Intervals(p.victim)
		if !reflect.DeepEqual(sIvs, pIvs) {
			t.Errorf("%s: ground truth differs between parallel 1 and 8: %v vs %v",
				s.name, sIvs, pIvs)
		}
	}
}
