package exp

// fork.go is the warm-fork replication engine. Every replicated cell of the
// reconstructed evaluation is an R-seed family whose replicates share one
// deterministic warmup prefix: the cluster boots, rounds begin, estimator
// windows fill — all driven by the family's base seed — and only after the
// fork horizon do the replicates diverge, each re-seeding the kernel RNG
// with its strided seed. That shared prefix used to be re-simulated R times;
// with forking it is simulated once, checkpointed (des.Snapshot +
// netsim.Snapshot + trace mark + per-node state), and restored for each
// subsequent replicate. Tables and v2 rows are byte-identical either way —
// the serial comparator stays in the tree and the differential tests in
// fork_diff_test.go hold both paths to that bar.

import (
	"sync/atomic"
	"time"

	"asyncfd/internal/qos"
)

// forkOff is the package-wide default for warm-fork replication, stored
// inverted so the zero value means "fork on". cmd/fdbench resolves its
// -fork flag (and the DES_FORK environment escape hatch) into SetDefaultFork
// before running a sweep.
var forkOff atomic.Bool

// DefaultFork reports whether warm-fork replication is enabled by default.
func DefaultFork() bool { return !forkOff.Load() }

// SetDefaultFork sets the package-wide replication mode for Options that do
// not pin one (Options.Fork == 0).
func SetDefaultFork(on bool) { forkOff.Store(!on) }

// forkEnabled resolves the run's replication mode: the Options pin when set,
// the package default otherwise.
func (o Options) forkEnabled() bool {
	if o.Fork != 0 {
		return o.Fork > 0
	}
	return DefaultFork()
}

// family is one R-replicate seed family of an experiment cell: a cluster
// configuration at the family's base seed, the fork horizon its replicates
// share, and the measurement that runs a warmed cluster to completion.
type family[M any] struct {
	// warm is the fork horizon: the virtual time up to which every replicate
	// runs the identical base-seed prefix. It must precede the first fault
	// or measured behavior that replicates are meant to vary over; fault
	// schedules applied at build time may fire after it (the pending events
	// are part of the checkpoint).
	warm time.Duration
	// build constructs the family's cluster at the base seed and applies its
	// fault schedule, returning the ground truth (nil when faultless).
	build func() (*Cluster, *qos.GroundTruth, error)
	// run advances the warmed cluster to the family's horizon and measures
	// it. It is called once per replicate, always from the same warmed state.
	run func(c *Cluster, truth *qos.GroundTruth) (M, error)
}

// runFamilies executes every family's R replicates and returns the
// measurements flattened family-major, replicate-minor — the same order the
// flat per-replicate job construction produced before warm forking.
//
// Replication semantics (both paths): replicate 0 continues the base-seed
// stream from the warm horizon to completion untouched, so R=1 runs are
// plain base-seed runs; replicate r ≥ 1 re-seeds the kernel RNG at the
// horizon with the strided seed base+101·r and diverges from there. The
// fork path builds and warms each family once, checkpoints it, and restores
// the checkpoint for every subsequent replicate; the serial path re-builds
// and re-warms per replicate. Byte-identity of the two paths is enforced by
// TestSweepByteIdenticalAcrossForkModes and, at the kernel level, by
// FuzzForkEquivalence in internal/des.
func runFamilies[M any](opts Options, fams []family[M]) ([]M, error) {
	R := opts.runs()
	if !opts.forkEnabled() {
		jobs := make([]func() (M, error), 0, len(fams)*R)
		for _, fam := range fams {
			fam := fam
			for r := 0; r < R; r++ {
				r := r
				jobs = append(jobs, func() (M, error) {
					var zero M
					c, truth, err := fam.build()
					if err != nil {
						return zero, err
					}
					c.RunUntil(fam.warm)
					if r > 0 {
						c.Sim.Reseed(opts.seed() + int64(r)*101)
					}
					return fam.run(c, truth)
				})
			}
		}
		return runJobs(opts, jobs)
	}
	jobs := make([]func() ([]M, error), len(fams))
	for i, fam := range fams {
		fam := fam
		jobs[i] = func() ([]M, error) {
			c, truth, err := fam.build()
			if err != nil {
				return nil, err
			}
			c.RunUntil(fam.warm)
			var snap *ClusterSnapshot
			if R > 1 {
				snap = c.Snapshot()
			}
			out := make([]M, R)
			for r := 0; r < R; r++ {
				if r > 0 {
					c.Restore(snap)
					c.Sim.Reseed(opts.seed() + int64(r)*101)
				}
				m, err := fam.run(c, truth)
				if err != nil {
					return nil, err
				}
				out[r] = m
			}
			return out, nil
		}
	}
	grouped, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	flat := make([]M, 0, len(fams)*R)
	for _, g := range grouped {
		flat = append(flat, g...)
	}
	return flat, nil
}
