package exp

// runner.go is the sharded experiment engine. Every table cell of the
// reconstructed evaluation is decomposed into independent, seed-addressed
// jobs (config + seed + horizon), each of which builds, runs and measures a
// private DES kernel. Jobs execute on a bounded worker pool and results are
// always assembled in job index order, so a parallel run renders tables
// byte-identical to a serial one.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"asyncfd/internal/des"
)

// EngineStats accumulates kernel throughput counters across every
// simulation an experiment run executes. cmd/fdbench reports them as
// events/sec and runs/sec in its bench JSON.
type EngineStats struct {
	Events atomic.Int64 // DES events executed
	Runs   atomic.Int64 // independent simulation kernels completed
}

// record notes one finished simulation kernel in the run's stats.
func (o Options) record(sim *des.Simulator) {
	if o.Stats != nil {
		o.Stats.Events.Add(int64(sim.Steps()))
		o.Stats.Runs.Add(1)
	}
}

// Workers resolves Options.Parallel to a concrete pool size.
func (o Options) Workers() int {
	if o.Parallel < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallel == 0 {
		return 1
	}
	return o.Parallel
}

// runJobs executes o's jobs on a bounded pool and returns the results in
// job index order. The bound is the run's shared gate when one exists (All
// installs a single Workers()-sized gate so concurrently fanned-out
// experiments cannot multiply into Workers² live simulations), and a local
// Workers()-sized pool otherwise. On failure the lowest-index error is
// returned, whatever the execution interleaving, so error reporting is as
// deterministic as the tables. Jobs must be self-contained: each owns its
// simulation end to end and shares no mutable state with its siblings.
func runJobs[R any](o Options, jobs []func() (R, error)) ([]R, error) {
	results := make([]R, len(jobs))
	workers := o.Workers()
	if o.gate == nil && (workers <= 1 || len(jobs) <= 1) {
		for i, job := range jobs {
			r, err := job()
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	gate := o.gate
	if gate == nil {
		gate = make(chan struct{}, workers)
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		i := i
		go func() {
			defer wg.Done()
			gate <- struct{}{} // hold a slot only while the job runs
			defer func() { <-gate }()
			results[i], errs[i] = jobs[i]()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
