package exp

import (
	"os"
	"testing"
)

// TestL1Profile is a harness for profiling the L1 sweep; enabled only via
// L1_PROFILE=1 so normal test runs skip the multi-minute simulation.
func TestL1Profile(t *testing.T) {
	if os.Getenv("L1_PROFILE") == "" {
		t.Skip("set L1_PROFILE=1 to run the profiling harness")
	}
	if _, err := L1DetectionLargeN(Options{Seed: 1, Repeat: 3}); err != nil {
		t.Fatal(err)
	}
}
