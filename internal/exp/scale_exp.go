package exp

// scale_exp.go holds the large-machine-size sweeps (the "L" tables): the
// same detection-time and message-cost measurements as E1/E5 — they share
// the sweep bodies (detectionVsNTable, messageCostTable) — pushed to n=128
// and n=256 processes. They exist because the partial-connectivity
// follow-up literature evaluates at much larger system sizes than the DSN
// 2003 paper's n ≤ 64, and because at these sizes the asynchronous
// detector's flat detection time (≈ one query period, independent of n)
// separates visibly from the n-dependent traffic cost. Like every other
// table they decompose into seed-addressed jobs on the shared runner, so
// parallel output is byte-identical to serial — which matters here, since
// these are the sweeps one actually wants a big -parallel value for. In
// Quick mode both shrink to a single small size so tests and quick benches
// stay cheap; the n=128/256 cells are non-quick only.

// largeNs returns the sweep's machine sizes: 128/256 full-size, one small
// size in Quick mode.
func largeNs(opts Options) []int {
	if opts.Quick {
		return []int{24}
	}
	return []int{128, 256}
}

// L1DetectionLargeN extends E1's headline sweep to n=128/256: failure
// detection time per detector at large machine sizes, aggregated over the
// seed family. The time-free detector should stay near one query period
// while the timer-based baselines keep their Θ-bound latency — the
// interesting question at this scale is the spread, which is why the cells
// feed the v2 distribution rows.
func L1DetectionLargeN(opts Options) (*Table, error) {
	t := &Table{
		ID:      "L1",
		Title:   "LARGE-N: failure detection time vs system size n (avg/max over observers)",
		Note:    "E1 at n=128/256 (quick: one small size); crash of one process at t=10.4s; Δ=1s, Θ=2s",
		Columns: detectionColumns,
	}
	return detectionVsNTable(opts, t, largeNs(opts))
}

// L5MessageCostLargeN extends E5's traffic count to n=128/256: messages and
// wire bytes per process per second. The query–response scheme's quadratic
// aggregate traffic is the price of its time-freedom; at n=256 the per-row
// numbers make the scaling argument concrete.
func L5MessageCostLargeN(opts Options) (*Table, error) {
	t := &Table{
		ID:      "L5",
		Title:   "LARGE-N: message cost per process per second vs n",
		Note:    "E5 at n=128/256 (quick: one small size); stable network, no crashes; bytes measured with the wire codec",
		Columns: []string{"n", "detector", "msgs/proc/s", "bytes/proc/s"},
	}
	return messageCostTable(opts, t, largeNs(opts))
}
