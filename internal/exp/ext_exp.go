package exp

import (
	"fmt"
	"strconv"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/faults"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/topology"
	"asyncfd/internal/trace"
	"asyncfd/internal/unknown"
)

// gossipCluster wires Friedman–Tcharny-style gossip heartbeat detectors onto
// a partial topology (the extension's timer-based comparator).
type gossipCluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	log   *trace.Log
	nodes []*heartbeat.GossipNode
}

type gossipCell struct{ g *heartbeat.GossipNode }

func (c *gossipCell) Deliver(from ident.ID, payload any) {
	if c.g != nil {
		c.g.Deliver(from, payload)
	}
}

func newGossipCluster(g *topology.Graph, seed int64, delay netsim.DelayModel, interval, timeout time.Duration) (*gossipCluster, error) {
	n := g.Len()
	c := &gossipCluster{sim: des.New(seed), log: &trace.Log{}}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	c.nodes = make([]*heartbeat.GossipNode, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		cl := &gossipCell{}
		env := c.net.AddNode(id, cl)
		gn, err := heartbeat.NewGossipNode(env, heartbeat.GossipConfig{
			Self: id, N: n, Interval: interval, Timeout: timeout, Sink: c.log,
		})
		if err != nil {
			return nil, err
		}
		cl.g = gn
		c.nodes[i] = gn
		c.net.SetNeighbors(id, g.Neighbors(id))
	}
	for _, gn := range c.nodes {
		gn.Start()
	}
	return c, nil
}

// X1DensityExt regenerates the shape of the extension report's Figure 2:
// failure detection time versus range density d on an f-covering partial
// topology. The timer-based gossip detector sits between Θ−Δ and Θ
// regardless of d; the asynchronous detector's detection time falls as the
// density (and hence flooding speed) grows.
func X1DensityExt(opts Options) (*Table, error) {
	n := 24
	ks := []int{2, 3, 4, 5} // circulant chord counts: d = 2k+1
	if opts.Quick {
		n = 12
		ks = []int{2, 3}
	}
	const (
		f       = 2
		crashAt = 10 * time.Second
		horizon = 60 * time.Second
	)
	t := &Table{
		ID:    "X1",
		Title: "EXTENSION: detection time vs range density d (partial topology, unknown membership)",
		Note: fmt.Sprintf("circulant graphs on n=%d, f=%d, crash at t=10s; gossip-FT uses Δ=1s Θ=4s "+
			"(multi-hop needs a larger Θ); shape of RR-6088 Fig. 2", n, f),
		Columns: []string{"d", "async avg", "async max", "gossip-FT avg", "gossip-FT max"},
	}
	// Per density, an R-seed family for each variant: the asynchronous
	// detector on the unknown network, and the gossip heartbeat comparator
	// on the same topology.
	variants := []string{"async", "gossip-ft"}
	var jobs []func() (qos.DetectionStats, error)
	for _, k := range ks {
		k := k
		crash := ident.ID(0)
		for _, variant := range variants {
			variant := variant
			for r := 0; r < opts.runs(); r++ {
				seed := opts.seed() + int64(r)*101
				jobs = append(jobs, func() (qos.DetectionStats, error) {
					g := topology.Circulant(n, k)
					observers := ident.FullSet(n)
					observers.Remove(crash)
					if variant == "async" {
						uc, err := unknown.NewCluster(unknown.ClusterConfig{
							Graph: g, F: f, Seed: seed,
							Delay:    defaultDelay(),
							Window:   250 * time.Millisecond,
							Interval: 250 * time.Millisecond,
						})
						if err != nil {
							return qos.DetectionStats{}, fmt.Errorf("X1 async d=%d: %w", 2*k+1, err)
						}
						truth := &qos.GroundTruth{}
						truth.Crash(crash, crashAt)
						uc.CrashAt(crash, crashAt)
						uc.RunUntil(horizon)
						opts.record(uc.Sim)
						return qos.DetectionTimes(uc.Log, truth, crash, observers), nil
					}
					gc, err := newGossipCluster(g, seed, defaultDelay(), time.Second, 4*time.Second)
					if err != nil {
						return qos.DetectionStats{}, fmt.Errorf("X1 gossip d=%d: %w", 2*k+1, err)
					}
					gtruth := faults.Schedule{}.CrashAt(crash, crashAt).Apply(gc.sim, gc.net)
					gc.sim.RunUntil(horizon)
					opts.record(gc.sim)
					return qos.DetectionTimes(gc.log, gtruth, crash, observers), nil
				})
			}
		}
	}
	cells, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, k := range ks {
		row := []string{strconv.Itoa(2*k + 1)}
		for _, variant := range variants {
			cell := fmt.Sprintf("d=%d/%s", 2*k+1, variant)
			var avgs []float64
			var agg []qos.DetectionStats
			for r := 0; r < opts.runs(); r++ {
				s := cells[idx]
				idx++
				agg = append(agg, s)
				avgs = append(avgs, qos.Millis(s.Avg))
				opts.sampleDetection(cell, "det", r, s)
			}
			row = append(row, famMS(avgs), ms(aggregateDetection(agg).Max))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// X2MobilityExt regenerates the shape of the extension report's Figure 3:
// the total number of false suspicions over time when a node moves to a
// different range and reconnects. The asynchronous detector shows the
// report's signature double wave — the network suspects the mover, then the
// mover suspects its old neighbors — before mistakes flood and everything
// converges to zero.
func X2MobilityExt(opts Options) (*Table, error) {
	n := 20
	if opts.Quick {
		n = 14
	}
	const (
		k       = 3 // d = 7, as in the report's density-7 mobility run
		f       = 2
		away    = 30 * time.Second
		back    = 60 * time.Second
		horizon = 150 * time.Second
	)
	var times []time.Duration
	for s := 25; s <= 145; s += 2 {
		times = append(times, time.Duration(s)*time.Second)
	}
	// New range on the other side of the ring: d−1 consecutive nodes.
	newRange := func() ident.Set {
		var s ident.Set
		for i := 0; i < 2*k; i++ {
			s.Add(ident.ID(n/2 - k + i))
		}
		return s
	}
	asyncRun := func(seed int64) ([]int, error) {
		truth := &qos.GroundTruth{} // nobody crashes: every suspicion is false
		g := topology.Circulant(n, k)
		uc, err := unknown.NewCluster(unknown.ClusterConfig{
			Graph: g, F: f, Seed: seed,
			Delay:       defaultDelay(),
			Window:      250 * time.Millisecond,
			Interval:    250 * time.Millisecond,
			Rebroadcast: time.Second,
			Mobility:    true,
		})
		if err != nil {
			return nil, fmt.Errorf("X2 async: %w", err)
		}
		uc.RelocateAt(0, newRange(), away, back)
		uc.RunUntil(horizon)
		opts.record(uc.Sim)
		return qos.FalseSuspicionSeries(uc.Log, truth, times), nil
	}
	gossipRun := func(seed int64) ([]int, error) {
		truth := &qos.GroundTruth{} // nobody crashes: every suspicion is false
		g := topology.Circulant(n, k)
		newNeighbors := newRange()
		gc, err := newGossipCluster(g, seed, defaultDelay(), time.Second, 4*time.Second)
		if err != nil {
			return nil, fmt.Errorf("X2 gossip: %w", err)
		}
		// Equivalent move for the gossip cluster via a link filter window.
		moving := false
		gc.net.AddLinkFilter(func(from, to ident.ID, _ time.Duration) bool {
			if moving && (from == 0 || to == 0) {
				return false
			}
			return true
		})
		gc.sim.At(away, func() { moving = true })
		gc.sim.At(back, func() {
			moving = false
			// Reattach at the new position.
			newNeighbors.ForEach(func(o ident.ID) bool {
				nb := gc.net.Neighbors(o)
				nb.Add(0)
				gc.net.SetNeighbors(o, nb)
				return true
			})
			g.Neighbors(0).ForEach(func(o ident.ID) bool {
				if !newNeighbors.Has(o) {
					nb := gc.net.Neighbors(o)
					nb.Remove(0)
					gc.net.SetNeighbors(o, nb)
				}
				return true
			})
			gc.net.SetNeighbors(0, newNeighbors)
		})
		gc.sim.RunUntil(horizon)
		opts.record(gc.sim)
		return qos.FalseSuspicionSeries(gc.log, truth, times), nil
	}
	// One R-seed family per variant; async replicates first, then gossip.
	var jobs []func() ([]int, error)
	for _, run := range []func(int64) ([]int, error){asyncRun, gossipRun} {
		run := run
		for r := 0; r < opts.runs(); r++ {
			seed := opts.seed() + int64(r)*101
			jobs = append(jobs, func() ([]int, error) { return run(seed) })
		}
	}
	series, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "X2",
		Title: "EXTENSION: total false suspicions over time while a node moves to a new range",
		Note: fmt.Sprintf("n=%d circulant d=7, f=%d; node p0 detaches at 30s, reattaches across the ring at 60s; "+
			"shape of RR-6088 Fig. 3", n, f),
		Columns: []string{"t", "async", "gossip-FT"},
	}
	// perTime[variant][timepoint] holds the family's series values.
	variants := []string{"async", "gossip-ft"}
	perTime := make([][][]float64, len(variants))
	idx := 0
	for v, variant := range variants {
		cell := fmt.Sprintf("mobility/%s", variant)
		perTime[v] = make([][]float64, len(times))
		for r := 0; r < opts.runs(); r++ {
			s := series[idx]
			idx++
			peak, total := 0, 0
			for ti, count := range s {
				perTime[v][ti] = append(perTime[v][ti], float64(count))
				if count > peak {
					peak = count
				}
				total += count
			}
			opts.sample(cell, "peak_false_susp", r, float64(peak))
			opts.sample(cell, "false_susp_total", r, float64(total))
		}
	}
	for ti, at := range times {
		t.AddRow(fmt.Sprintf("%ds", int(at/time.Second)),
			famCount(perTime[0][ti]), famCount(perTime[1][ti]))
	}
	return t, nil
}
