package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"asyncfd/internal/scenario"
	"asyncfd/internal/stats"
)

func renderTable(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatalf("render %s: %v", tbl.ID, err)
	}
	return buf.String()
}

func parseScenarioFile(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "scenario", name))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse(data, true)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestConfigMatchesBuiltin is the differential bar of the scenario
// subsystem: the committed mirror configs must render byte-identical
// tables — and collect byte-identical v2 sample rows — to the built-in
// experiments they transcribe, at every parallelism and in both
// replication modes. A config drift, an engine drift, or a scheduling
// nondeterminism all fail here.
func TestConfigMatchesBuiltin(t *testing.T) {
	cases := []struct {
		file    string
		builtin func(Options) (*Table, error)
	}{
		{"r1.json", R1CrashRecovery},
		{"r2.json", R2PartitionHeal},
		{"lt.json", LTTopologySweep},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			t.Parallel()
			sc := parseScenarioFile(t, tc.file)
			refCol := &stats.Collector{}
			refTbl, err := tc.builtin(Options{Quick: true, Samples: refCol})
			if err != nil {
				t.Fatal(err)
			}
			refRender := renderTable(t, refTbl)
			refRows := refCol.Rows()
			for _, parallel := range []int{1, 8} {
				for _, fork := range []int{1, -1} {
					col := &stats.Collector{}
					got, err := ScenarioTable(sc, Options{
						Quick: true, Parallel: parallel, Fork: fork, Samples: col,
					})
					if err != nil {
						t.Fatalf("parallel=%d fork=%d: %v", parallel, fork, err)
					}
					if got.ID != refTbl.ID {
						t.Errorf("parallel=%d fork=%d: table ID %q, want %q", parallel, fork, got.ID, refTbl.ID)
					}
					if render := renderTable(t, got); render != refRender {
						t.Errorf("parallel=%d fork=%d: table differs from builtin\n--- config\n%s--- builtin\n%s",
							parallel, fork, render, refRender)
					}
					if rows := col.Rows(); !reflect.DeepEqual(rows, refRows) {
						t.Errorf("parallel=%d fork=%d: v2 rows differ from builtin\nconfig:  %+v\nbuiltin: %+v",
							parallel, fork, rows, refRows)
					}
				}
			}
		})
	}
}

// replayScenarioDoc exercises the trace-replay delay model inside the full
// engine: a synthetic heavy-tailed trace, a three-replicate family, one
// crash. Used by TestScenarioReplayForkDeterminism.
const replayScenarioDoc = `{
  "schema": "asyncfd-scenario/v1",
  "name": "replay-fork",
  "title": "trace replay under warm-fork replication",
  "repeat": 3,
  "cluster": {
    "n": 5, "f": 1,
    "detectors": ["async", "heartbeat"],
    "delay": {"model": "trace", "synthetic": {"seed": 42, "count": 400, "tick_us": 50000, "base_us": 800, "scale_us": 900, "alpha": 1.3, "cap_us": 60000, "loss": 0.02}}
  },
  "faults": {"events": [{"kind": "crash", "at_us": 10000000, "id": 4}]},
  "measure": {
    "program": "cluster",
    "warm_us": 9000000,
    "horizon_us": 25000000,
    "metrics": [{"kind": "detection", "name": "det", "victim": 4}],
    "columns": [
      {"header": "det avg", "metric": "det", "kind": "fam_ms"},
      {"header": "missing", "metric": "det", "kind": "missing"}
    ]
  }
}`

// TestScenarioReplayForkDeterminism pins the replay delay model to the
// engine's byte-identity contract: because Replay looks delays up as a pure
// function of (link, now) and draws nothing from the simulation RNG, a
// forked replicate — which restores the warm snapshot instead of re-running
// the warmup — must produce exactly the serial comparator's table and rows,
// at any worker count.
func TestScenarioReplayForkDeterminism(t *testing.T) {
	t.Parallel()
	sc, err := scenario.Parse([]byte(replayScenarioDoc), false)
	if err != nil {
		t.Fatal(err)
	}
	var refRender string
	var refRows []stats.Row
	for i, mode := range []struct{ parallel, fork int }{
		{1, -1}, {1, 1}, {8, -1}, {8, 1},
	} {
		col := &stats.Collector{}
		tbl, err := ScenarioTable(sc, Options{Parallel: mode.parallel, Fork: mode.fork, Samples: col})
		if err != nil {
			t.Fatalf("parallel=%d fork=%d: %v", mode.parallel, mode.fork, err)
		}
		render := renderTable(t, tbl)
		rows := col.Rows()
		if i == 0 {
			refRender, refRows = render, rows
			continue
		}
		if render != refRender {
			t.Errorf("parallel=%d fork=%d: table differs from serial comparator\n--- got\n%s--- want\n%s",
				mode.parallel, mode.fork, render, refRender)
		}
		if !reflect.DeepEqual(rows, refRows) {
			t.Errorf("parallel=%d fork=%d: rows differ from serial comparator", mode.parallel, mode.fork)
		}
	}
}
