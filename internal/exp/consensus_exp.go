package exp

import (
	"fmt"
	"sync"
	"time"

	"asyncfd/internal/consensus"
	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/stats"
	"asyncfd/internal/trace"
)

// fdConsensusDemux routes failure-detector traffic to the detector runtime
// and consensus traffic to the consensus participant sharing the identity.
type fdConsensusDemux struct {
	fdNode runner
	cons   *consensus.Node
}

func (d *fdConsensusDemux) Deliver(from ident.ID, payload any) {
	switch payload.(type) {
	case consensus.EstimateMsg, consensus.ProposalMsg, consensus.AckMsg, consensus.DecideMsg:
		if d.cons != nil {
			d.cons.Deliver(from, payload)
		}
	default:
		if d.fdNode != nil {
			d.fdNode.Deliver(from, payload)
		}
	}
}

// consensusLatency runs one consensus instance over the given detector kind
// with the round-1 coordinator crashing right after proposals are issued,
// and returns the worst decision latency among survivors. The crash forces
// the consensus to lean on the failure detector, so decision latency tracks
// detection latency.
func consensusLatency(opts Options, kind Kind, n, f int, seed int64, delay netsim.DelayModel) (time.Duration, error) {
	const (
		warmup  = 3 * time.Second
		propose = 5 * time.Second
		horizon = 120 * time.Second
	)
	sim := des.New(seed)
	net := netsim.New(sim, netsim.Config{Delay: delay})
	log := &trace.Log{}

	demuxes := make([]*fdConsensusDemux, n)
	decidedAt := make(map[ident.ID]time.Duration)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		demux := &fdConsensusDemux{}
		demuxes[i] = demux
		env := net.AddNode(id, demux)
		cfg := ClusterConfig{Kind: kind, N: n, F: f, Delay: delay}
		cfg.fillDefaults()
		det, run, err := buildNode(env, id, cfg, log)
		if err != nil {
			return 0, err
		}
		demux.fdNode = run
		cons, err := consensus.NewNode(env, consensus.Config{
			Self: id, N: n, F: f, Detector: det,
			OnDecide: func(consensus.Value) { decidedAt[id] = sim.Now() },
		})
		if err != nil {
			return 0, err
		}
		demux.cons = cons
		// Stagger detector starts: deployments never start in lockstep,
		// and the async detector's flooding advantage needs phase
		// diversity.
		jitter := time.Duration(sim.Rand().Int63n(int64(time.Second)))
		sim.At(jitter, run.Start)
	}

	// The round-1 coordinator dies 1ms AFTER proposals are issued, so its
	// crash is discovered only through the failure detector: every
	// participant blocks in phase 3 until its detector suspects p0.
	sim.At(propose+time.Millisecond, func() { net.Crash(0) })
	for i := 0; i < n; i++ {
		cons := demuxes[i].cons
		v := consensus.Value(100 + i)
		sim.At(propose, func() { cons.Propose(v) })
	}
	_ = warmup // detectors start within the first second and are warm by propose time
	sim.RunUntil(horizon)
	opts.record(sim)

	var worst time.Duration
	for i := 1; i < n; i++ {
		at, ok := decidedAt[ident.ID(i)]
		if !ok {
			return 0, fmt.Errorf("consensus over %v: survivor p%d undecided after %v", kind, i, horizon)
		}
		if lat := at - propose; lat > worst {
			worst = lat
		}
	}
	return worst, nil
}

// E7Consensus is the theory-to-practice bridge: the same Chandra–Toueg ◇S
// consensus runs over each detector implementation while the first
// coordinator is crashed. Decision latency is gated by how fast the detector
// lets participants skip the dead coordinator.
//
// E7 is a bespoke consensus simulation outside the Cluster harness: its
// replicate loop extracts one latency per run from the decision map
// directly — no qos.Judge, no trace re-scans — so it neither needs the
// shared-warmup checkpointing of runFamilies (consensus proposals start
// almost immediately, there is no long common prefix) nor any Judge
// hoisting.
func E7Consensus(opts Options) (*Table, error) {
	n, f := 7, 3
	if opts.Quick {
		n, f = 5, 2
	}
	t := &Table{
		ID:      "E7",
		Title:   "Chandra–Toueg consensus decision latency over each detector",
		Note:    fmt.Sprintf("n=%d, f=%d; round-1 coordinator crashes right after proposals; latency = worst survivor decision time", n, f),
		Columns: []string{"detector", "decision latency (worst survivor, avg of runs)"},
	}
	kinds := []Kind{KindAsync, KindHeartbeat, KindPhi, KindChen}
	var jobs []func() (time.Duration, error)
	for _, kind := range kinds {
		kind := kind
		for r := 0; r < opts.runs(); r++ {
			seed := opts.seed() + int64(r)*101
			jobs = append(jobs, func() (time.Duration, error) {
				lat, err := consensusLatency(opts, kind, n, f, seed, defaultDelay())
				if err != nil {
					return 0, fmt.Errorf("E7: %w", err)
				}
				return lat, nil
			})
		}
	}
	lats, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, kind := range kinds {
		cell := fmt.Sprintf("consensus/%s", kind)
		var samples []float64
		for r := 0; r < opts.runs(); r++ {
			samples = append(samples, qos.Millis(lats[k]))
			opts.sample(cell, "decision_ms", r, qos.Millis(lats[k]))
			k++
		}
		t.AddRow(kind.String(), famMS(samples))
	}
	return t, nil
}

// Experiments lists every experiment of the reconstructed evaluation in
// presentation order.
func Experiments() []NamedExperiment {
	return []NamedExperiment{
		{"E1", E1DetectionVsN},
		{"E2", E2DetectionVsF},
		{"E3", E3Disturbance},
		{"E4", E4QoS},
		{"E5", E5MessageCost},
		{"E6", E6MPSensitivity},
		{"E7", E7Consensus},
		{"E8", E8Propagation},
		{"A1", A1TagsAblation},
		{"A2", A2WindowAblation},
		{"R1", R1CrashRecovery},
		{"R2", R2PartitionHeal},
		{"X1", X1DensityExt},
		{"X2", X2MobilityExt},
		{"L1", L1DetectionLargeN},
		{"L5", L5MessageCostLargeN},
		{"LT", LTTopologySweep},
	}
}

// NamedExperiment pairs an experiment id with its generator.
type NamedExperiment struct {
	ID string
	Fn func(Options) (*Table, error)
}

// Result is one experiment's outcome in a full sweep, with its share of the
// engine throughput counters.
type Result struct {
	ID    string
	Table *Table
	// Wall is the experiment's elapsed time. Under a parallel Options,
	// experiments overlap, so Wall times need not sum to the sweep's total.
	Wall   time.Duration
	Events int64 // DES events this experiment executed
	Runs   int64 // simulation kernels this experiment completed
	// Rows holds the experiment's aggregated seed-family metric
	// distributions; non-nil only when the run collects samples
	// (Options.Samples set) and the experiment records them. cmd/fdbench
	// serializes these as the asyncfd-bench/v2 rows.
	Rows []stats.Row
}

// All runs every experiment in the reconstructed evaluation, in order. With
// a parallel Options the experiments fan out concurrently while all their
// cell jobs share one run-wide Workers()-sized gate, so the number of live
// simulations never exceeds the pool size. The returned slice is always in
// presentation order, so output is identical to a serial run.
func All(opts Options) ([]*Table, error) {
	results, err := AllResults(opts)
	if err != nil {
		return nil, err
	}
	tables := make([]*Table, len(results))
	for i, r := range results {
		tables[i] = r.Table
	}
	return tables, nil
}

// AllResults is All with a per-experiment breakdown: each entry carries its
// own wall time and throughput counters (also folded into opts.Stats when
// set). cmd/fdbench builds its bench JSON from this.
func AllResults(opts Options) ([]Result, error) {
	entries := Experiments()
	results := make([]Result, len(entries))
	// Each experiment collects into a private collector so its aggregated
	// rows land on its own Result entry; the caller's collector receives
	// every sample afterwards, merged in presentation order so its Rows()
	// stay deterministic at any worker count.
	var cols []*stats.Collector
	if opts.Samples != nil {
		cols = make([]*stats.Collector, len(entries))
		for i := range cols {
			cols[i] = &stats.Collector{}
		}
	}
	runOne := func(i int, e NamedExperiment) error {
		eng := &EngineStats{}
		eOpts := opts
		eOpts.Stats = eng
		if cols != nil {
			eOpts.Samples = cols[i]
		}
		t0 := time.Now() //fdlint:allow walltime observability: wall-clock runtime reported beside results, never feeds simulation
		tbl, err := e.Fn(eOpts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		results[i] = Result{
			ID:     e.ID,
			Table:  tbl,
			Wall:   time.Since(t0), //fdlint:allow walltime observability: wall-clock runtime reported beside results, never feeds simulation
			Events: eng.Events.Load(),
			Runs:   eng.Runs.Load(),
		}
		if cols != nil {
			results[i].Rows = cols[i].Rows()
		}
		if opts.Stats != nil {
			opts.Stats.Events.Add(results[i].Events)
			opts.Stats.Runs.Add(results[i].Runs)
		}
		return nil
	}
	// mergeSamples forwards every experiment's samples to the caller's
	// collector, in presentation order.
	mergeSamples := func() {
		for _, col := range cols {
			opts.Samples.AddSamples(col.Samples())
		}
	}
	if opts.Workers() <= 1 {
		for i, e := range entries {
			if err := runOne(i, e); err != nil {
				return nil, err
			}
		}
		if cols != nil {
			mergeSamples()
		}
		return results, nil
	}
	if opts.gate == nil {
		opts.gate = make(chan struct{}, opts.Workers())
	}
	// One goroutine per experiment; they hold no gate slots themselves, so
	// the leaf jobs inside can always make progress (no nested-pool
	// deadlock), yet everything funnels through the shared gate.
	errs := make([]error, len(entries))
	var wg sync.WaitGroup
	wg.Add(len(entries))
	for i, e := range entries {
		i, e := i, e
		go func() {
			defer wg.Done()
			errs[i] = runOne(i, e)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cols != nil {
		mergeSamples()
	}
	return results, nil
}
