package exp

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"asyncfd/internal/stats"
)

// Table is the uniform output of every experiment: figures are rendered as
// data tables (one row per x-value, one column per series), matching how the
// harness regenerates the paper family's plots as printable series.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row. The cell count must match Columns (when columns
// are declared); a mismatch is a programming error in the experiment and
// panics rather than silently producing a misaligned table.
func (t *Table) AddRow(cells ...string) {
	if len(t.Columns) > 0 && len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("exp: table %s: AddRow got %d cells, want %d (columns %v)",
			t.ID, len(cells), len(t.Columns), t.Columns))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text rendering. Rows wider than Columns (only
// possible through direct Rows manipulation — AddRow rejects them) render
// their extra cells unpadded instead of panicking.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// ms renders a duration in milliseconds with limited precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// f3 renders a float with three significant decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// famCell renders one replicated table cell from its seed-family samples:
// the family mean in the given numeric format (with an optional unit
// suffix), and — when the family carries a confidence interval (R ≥ 2 with
// non-zero spread) — the Student-t 95% half-width appended as " ±W", so the
// cell reads "mean ±ci95". Unreplicated (R = 1) and zero-spread families
// render exactly like fmt.Sprintf(format, v)+unit did before variance-aware
// rendering existed, preserving the byte identity of R=1 tables.
func famCell(format, unit string, samples []float64) string {
	s := stats.Summarize(samples)
	cell := fmt.Sprintf(format, s.Mean) + unit
	// Append the half-width only when it survives the format's resolution:
	// a CI95 of 0.04 under "%.1f" would print the same " ±0.0" as the
	// deliberately suppressed zero-spread case.
	if w := fmt.Sprintf(format, s.CI95); s.CI95 > 0 && w != fmt.Sprintf(format, 0.0) {
		cell += " ±" + w + unit
	}
	return cell
}

// famMS renders a family of millisecond samples: "12.3ms", or
// "12.3ms ±0.8ms" when the family has an interval.
func famMS(samples []float64) string { return famCell("%.1f", "ms", samples) }

// famCount renders a family of integer counts: the bare integer for a
// single replicate (byte-identical to the pre-replication rendering), the
// one-decimal mean ±ci95 otherwise.
func famCount(samples []float64) string {
	if len(samples) == 1 {
		return strconv.Itoa(int(samples[0]))
	}
	return famCell("%.1f", "", samples)
}
