package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is the uniform output of every experiment: figures are rendered as
// data tables (one row per x-value, one column per series), matching how the
// harness regenerates the paper family's plots as printable series.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; the cell count should match Columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// ms renders a duration in milliseconds with limited precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// f3 renders a float with three significant decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
