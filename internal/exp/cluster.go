// Package exp is the experiment harness: it wires simulated clusters of each
// failure-detector implementation, injects faults and disturbances, and
// regenerates every table and figure of the (reconstructed) evaluation as
// printable data tables. One function per experiment; cmd/fdbench and the
// root bench suite call them.
//
// The engine is sharded and seed-addressed: every table cell decomposes
// into independent (configuration, seed, horizon) jobs on a bounded worker
// pool, assembled in job-index order so parallel output is byte-identical
// to serial. With Options.Repeat every replicated cell runs as an R-seed
// family whose per-metric distributions (Options.Samples, aggregated by
// internal/stats) become the rows of the asyncfd-bench/v2 schema. The
// repository README ("The experiments", "Determinism") names the table ids
// — E1–E8 paper family, A1/A2 ablations, R1/R2 fault scenarios, X1/X2
// partial-connectivity extensions, L1/L5 large-n sweeps — and
// docs/BENCHMARKS.md documents the replication methodology.
package exp

import (
	"fmt"
	"time"

	"asyncfd/internal/chen"
	"asyncfd/internal/core"
	"asyncfd/internal/des"
	"asyncfd/internal/faults"
	"asyncfd/internal/fd"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/node"
	"asyncfd/internal/phiaccrual"
	"asyncfd/internal/qos"
	"asyncfd/internal/trace"
	"asyncfd/internal/wire"
)

// Kind selects a failure-detector implementation.
type Kind int

const (
	// KindAsync is the paper's time-free query–response detector.
	KindAsync Kind = iota + 1
	// KindHeartbeat is the fixed-timeout heartbeat baseline.
	KindHeartbeat
	// KindPhi is the φ-accrual baseline.
	KindPhi
	// KindChen is the Chen NFD-E baseline.
	KindChen
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAsync:
		return "async"
	case KindHeartbeat:
		return "heartbeat"
	case KindPhi:
		return "phi-accrual"
	case KindChen:
		return "chen-nfde"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every detector implementation in comparison order.
func AllKinds() []Kind { return []Kind{KindAsync, KindHeartbeat, KindPhi, KindChen} }

// ClusterConfig describes one simulated detector cluster.
type ClusterConfig struct {
	Kind Kind
	N    int
	F    int
	Seed int64
	// Delay is the network latency model (required).
	Delay netsim.DelayModel
	// CountBytes attaches the wire codec for byte accounting.
	CountBytes bool
	// StartJitter staggers node start times uniformly over [0, StartJitter)
	// — real deployments never start rounds in lockstep, and the detector's
	// flooding advantage depends on phase diversity. Default 1s; set
	// negative to start everyone at t=0.
	StartJitter time.Duration

	// Async knobs (KindAsync).
	Window      time.Duration // extra collection window per round (the Δ of the paper's evaluation)
	Interval    time.Duration // pause between rounds
	Rebroadcast time.Duration // re-query period while the quorum is unmet (needed under partitions)
	DisableTags bool          // A1 ablation only

	// Timer-based knobs.
	HBInterval   time.Duration // Δ for heartbeat/phi/chen senders
	HBTimeout    time.Duration // Θ for heartbeat
	PhiThreshold float64       // φ threshold
	ChenAlpha    time.Duration // α margin for NFD-E
}

func (c *ClusterConfig) fillDefaults() {
	if c.Window == 0 && c.Kind == KindAsync {
		c.Window = time.Second // the paper family's Δ between lines 7 and 8
	}
	if c.HBInterval == 0 {
		c.HBInterval = time.Second // Δ = 1s, as in the evaluation setup
	}
	if c.HBTimeout == 0 {
		c.HBTimeout = 2 * time.Second // Θ = 2s
	}
	if c.ChenAlpha == 0 {
		c.ChenAlpha = 300 * time.Millisecond
	}
	if c.StartJitter == 0 {
		c.StartJitter = time.Second
	}
}

// runner is implemented by every detector node runtime.
type runner interface {
	Start()
	Stop()
	Restart(fresh bool) // fd.Restartable: crash-recovery support
	Deliver(from ident.ID, payload any)
	node.Cloneable // warm-fork replication: checkpoint/rollback support
}

// Cluster is a running simulated detector deployment.
type Cluster struct {
	Sim     *des.Simulator
	Net     *netsim.Network
	Log     *trace.Log
	Members ident.Set

	cfg       ClusterConfig            //fdlint:allow clonefields immutable config, set once at construction
	detectors map[ident.ID]fd.Detector //fdlint:allow clonefields same runtimes as nodes, checkpointed through nodes in Members order
	nodes     map[ident.ID]runner
}

// handlerCell breaks the construction cycle env↔node.
type handlerCell struct{ h runner }

func (c *handlerCell) Deliver(from ident.ID, payload any) {
	if c.h != nil {
		c.h.Deliver(from, payload)
	}
}

// NewCluster builds and starts a detector on every process.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.fillDefaults()
	if cfg.Delay == nil {
		return nil, fmt.Errorf("exp: ClusterConfig.Delay is required")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("exp: need N ≥ 2, got %d", cfg.N)
	}
	c := &Cluster{
		Sim:       des.New(cfg.Seed),
		Log:       &trace.Log{},
		Members:   ident.FullSet(cfg.N),
		cfg:       cfg,
		detectors: make(map[ident.ID]fd.Detector, cfg.N),
		nodes:     make(map[ident.ID]runner, cfg.N),
	}
	netCfg := netsim.Config{Delay: cfg.Delay}
	if cfg.CountBytes {
		netCfg.SizeOf = wire.Size
	}
	c.Net = netsim.New(c.Sim, netCfg)

	for i := 0; i < cfg.N; i++ {
		id := ident.ID(i)
		cell := &handlerCell{}
		env := c.Net.AddNode(id, cell)
		det, run, err := buildNode(env, id, cfg, c.Log)
		if err != nil {
			return nil, err
		}
		cell.h = run
		c.detectors[id] = det
		c.nodes[id] = run
	}
	// Start in identity order (map iteration order would make runs
	// non-reproducible), each node at its own random phase.
	for i := 0; i < cfg.N; i++ {
		n := c.nodes[ident.ID(i)]
		var jitter time.Duration
		if cfg.StartJitter > 0 {
			jitter = time.Duration(c.Sim.Rand().Int63n(int64(cfg.StartJitter)))
		}
		c.Sim.At(jitter, n.Start)
	}
	return c, nil
}

// buildNode constructs the configured detector kind on env.
func buildNode(env *netsim.Env, id ident.ID, cfg ClusterConfig, log *trace.Log) (fd.Detector, runner, error) {
	switch cfg.Kind {
	case KindAsync:
		n, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{
				Self:        id,
				Membership:  core.KnownMembership,
				N:           cfg.N,
				F:           cfg.F,
				DisableTags: cfg.DisableTags,
			},
			Window:      cfg.Window,
			Interval:    cfg.Interval,
			Rebroadcast: cfg.Rebroadcast,
			Sink:        log,
		})
		return n, n, err
	case KindHeartbeat:
		n, err := heartbeat.NewNode(env, heartbeat.Config{
			Self:     id,
			Peers:    ident.FullSet(cfg.N),
			Interval: cfg.HBInterval,
			Timeout:  cfg.HBTimeout,
			Sink:     log,
		})
		return n, n, err
	case KindPhi:
		n, err := phiaccrual.NewNode(env, phiaccrual.Config{
			Self:      id,
			Peers:     ident.FullSet(cfg.N),
			Interval:  cfg.HBInterval,
			Threshold: cfg.PhiThreshold,
			Sink:      log,
		})
		return n, n, err
	case KindChen:
		n, err := chen.NewNode(env, chen.Config{
			Self:     id,
			Peers:    ident.FullSet(cfg.N),
			Interval: cfg.HBInterval,
			Alpha:    cfg.ChenAlpha,
			Sink:     log,
		})
		return n, n, err
	default:
		return nil, nil, fmt.Errorf("exp: unknown detector kind %d", cfg.Kind)
	}
}

// Detector returns the oracle of process id.
func (c *Cluster) Detector(id ident.ID) fd.Detector { return c.detectors[id] }

// Inject delivers a crafted payload directly to a node, bypassing the
// network — used by the A1 ablation to replay stale protocol messages.
func (c *Cluster) Inject(to, from ident.ID, payload any) {
	if n, ok := c.nodes[to]; ok {
		n.Deliver(from, payload)
	}
}

// Apply schedules a fault scenario, returning the ground truth. Recovery
// events restart the process's detector runtime (fresh or persisted state)
// after the network layer has revived it.
func (c *Cluster) Apply(s faults.Schedule) *qos.GroundTruth {
	return s.ApplyFunc(c.Sim, c.Net, func(id ident.ID, fresh bool) {
		if n, ok := c.nodes[id]; ok {
			n.Restart(fresh)
		}
	})
}

// RunUntil advances virtual time to t.
func (c *Cluster) RunUntil(t time.Duration) { c.Sim.RunUntil(t) }

// ClusterSnapshot is a checkpoint of a running cluster: the DES kernel (event
// slab, queue, clock, RNG position), the network layer, the suspicion trace
// mark, and every node runtime's detector state, captured together so the
// warm-fork engine can roll the whole simulation back to the fork horizon.
type ClusterSnapshot struct {
	sim   *des.Snapshot
	net   *netsim.Snapshot
	mark  int
	nodes []any // per-node checkpoints in identity order
}

// Snapshot checkpoints the cluster at the current virtual time. The cluster
// must be quiescent (between RunUntil calls, never from inside an event).
func (c *Cluster) Snapshot() *ClusterSnapshot {
	s := &ClusterSnapshot{
		sim:   c.Sim.Snapshot(),
		net:   c.Net.Snapshot(),
		mark:  c.Log.Mark(),
		nodes: make([]any, 0, c.Members.Len()),
	}
	// Identity order, matching Restore: Members iterates sorted.
	c.Members.ForEach(func(id ident.ID) bool {
		s.nodes = append(s.nodes, c.nodes[id].Snapshot())
		return true
	})
	return s
}

// Restore rolls the cluster back to the state captured by s, in place: every
// layer restores into its live objects so the closures held by pending kernel
// events keep referencing valid state. A snapshot may be restored any number
// of times; each restore yields a bit-identical replay point.
func (c *Cluster) Restore(s *ClusterSnapshot) {
	c.Sim.Restore(s.sim)
	c.Net.Restore(s.net)
	c.Log.TruncateTo(s.mark)
	i := 0
	c.Members.ForEach(func(id ident.ID) bool {
		c.nodes[id].Restore(s.nodes[i])
		i++
		return true
	})
}
