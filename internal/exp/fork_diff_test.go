package exp

import (
	"bytes"
	"fmt"
	"testing"

	"asyncfd/internal/stats"
)

// fork_diff_test.go is the experiment-level half of the warm-fork
// differential harness: running every replicated cell by restoring a
// checkpoint of the family's warmed prefix (the default) must be
// indistinguishable from re-simulating the prefix per replicate — every v1
// table byte and every asyncfd-bench/v2 metric row, at any worker-pool size.
// CI additionally runs the same comparison through the fdbench binary
// (DES_FORK escape hatch); see .github/workflows/ci.yml. The kernel-level
// half is FuzzForkEquivalence in internal/des.

// forkFingerprint renders the entire quick sweep — all experiments' tables
// plus their v2 rows — into one byte string under the given replication mode
// (fork > 0 checkpointed, fork < 0 serial) and worker-pool size.
func forkFingerprint(t *testing.T, fork, parallel int) string {
	t.Helper()
	results, err := AllResults(Options{
		Quick:    true,
		Seed:     1,
		Fork:     fork,
		Parallel: parallel,
		Repeat:   3, // exercise restores: replicates 1 and 2 both roll back
		Samples:  &stats.Collector{},
	})
	if err != nil {
		t.Fatalf("AllResults(fork=%d, parallel=%d): %v", fork, parallel, err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		if err := r.Table.Render(&buf); err != nil {
			t.Fatalf("render %s: %v", r.ID, err)
		}
		for _, row := range r.Rows {
			fmt.Fprintf(&buf, "%s %s %s n=%d mean=%v stderr=%v ci95=%v p50=%v p99=%v min=%v max=%v\n",
				r.ID, row.Cell, row.Metric, row.N, row.Mean, row.StdErr, row.CI95, row.P50, row.P99, row.Min, row.Max)
		}
	}
	return buf.String()
}

// TestSweepByteIdenticalAcrossForkModes runs the full quick sweep with warm
// forking on and off at -parallel 1 and -parallel 8 and asserts the rendered
// tables and v2 rows are byte-identical in all four combinations. This is
// the acceptance bar for forking being the default: restoring a checkpoint
// is a pure performance knob, never a behavior change.
func TestSweepByteIdenticalAcrossForkModes(t *testing.T) {
	baseline := forkFingerprint(t, -1, 1)
	if baseline == "" {
		t.Fatal("empty sweep fingerprint")
	}
	for _, tc := range []struct {
		name     string
		fork     int
		parallel int
	}{
		{"fork/parallel=1", 1, 1},
		{"serial/parallel=8", -1, 8},
		{"fork/parallel=8", 1, 8},
	} {
		if got := forkFingerprint(t, tc.fork, tc.parallel); got != baseline {
			t.Errorf("%s: sweep output differs from serial/parallel=1 baseline\n%s",
				tc.name, firstDiffLine(baseline, got))
		}
	}
}

// TestForkDefaultToggle pins the SetDefaultFork plumbing: Options.Fork == 0
// follows the package default, non-zero overrides it.
func TestForkDefaultToggle(t *testing.T) {
	if !DefaultFork() {
		t.Fatal("warm forking must default to on")
	}
	SetDefaultFork(false)
	defer SetDefaultFork(true)
	if DefaultFork() {
		t.Fatal("SetDefaultFork(false) did not stick")
	}
	if (Options{}).forkEnabled() {
		t.Error("Options.Fork=0 must follow the package default")
	}
	if !(Options{Fork: 1}).forkEnabled() || (Options{Fork: -1}).forkEnabled() {
		t.Error("Options.Fork=±1 must override the package default")
	}
}
