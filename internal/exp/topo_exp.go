package exp

// topo_exp.go holds the LT topology sweep: detection time and message cost
// at n=1024–4096 over ring / grid / scale-free / MANET communication graphs
// (internal/topology), the scaling direction of the partial-connectivity
// follow-up literature. The detector under test is the neighbor-local direct
// heartbeat (heartbeat.Node with Peers = graph neighbors, netsim neighbor
// restriction matching): every process monitors only its neighborhood, so
// per-process cost is driven by connectivity degree, not by n — exactly the
// property the sweep measures. Cells at this size are tractable because both
// sides of the pipeline are sparse: netsim's per-node fan-out lists and O(1)
// partition labels keep simulation cost degree-proportional, and the qos
// Judge turns metric extraction into one accumulator pass over the trace
// instead of an O(n²·E) rescan.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/faults"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/topology"
	"asyncfd/internal/trace"
	"asyncfd/internal/wire"
)

// ltTopologies lists the sweep's graph families in table order.
var ltTopologies = []string{"ring", "grid", "scale-free", "manet"}

// ltGraph builds one instance of the named topology family on n vertices.
// Randomized families (scale-free, manet) draw from r; regular families
// (ring, grid) ignore it.
func ltGraph(name string, n int, r *rand.Rand) *topology.Graph {
	switch name {
	case "ring":
		return topology.Circulant(n, 1)
	case "grid":
		// Squarest torus: rows = largest divisor of n not above √n.
		rows := 1
		for d := 1; d*d <= n; d++ {
			if n%d == 0 {
				rows = d
			}
		}
		return topology.Grid(rows, n/rows)
	case "scale-free":
		return topology.ScaleFree(r, n, 3)
	case "manet":
		// Radio graph in a 1000×1000 region with the range chosen for an
		// expected degree of ≈8: deg ≈ n·πr²/A ⇒ r = √(deg·A/(π·n)).
		const width, height, wantDeg = 1000.0, 1000.0, 8.0
		radius := math.Sqrt(wantDeg * width * height / (math.Pi * float64(n)))
		return topology.RandomGeometric(r, n, width, height, radius)
	default:
		panic("exp: unknown LT topology " + name)
	}
}

// ltNs returns the sweep's machine sizes: 1024/2048/4096 full-size, one
// small size in Quick mode.
func ltNs(opts Options) []int {
	if opts.Quick {
		return []int{48}
	}
	return []int{1024, 2048, 4096}
}

// topoCluster wires neighbor-local direct heartbeat detectors onto a
// topology graph: each process broadcasts heartbeats to — and monitors —
// exactly its graph neighborhood.
type topoCluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	log   *trace.Log
	nodes []*heartbeat.Node
}

func newTopoCluster(g *topology.Graph, seed int64, delay netsim.DelayModel, interval, timeout time.Duration) (*topoCluster, error) {
	n := g.Len()
	c := &topoCluster{sim: des.New(seed), log: &trace.Log{}}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay, SizeOf: wire.Size})
	c.nodes = make([]*heartbeat.Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		cell := &handlerCell{}
		env := c.net.AddNode(id, cell)
		hb, err := heartbeat.NewNode(env, heartbeat.Config{
			Self: id, Peers: g.Neighbors(id), Interval: interval, Timeout: timeout, Sink: c.log,
		})
		if err != nil {
			return nil, err
		}
		cell.h = hb
		c.nodes[i] = hb
		c.net.SetNeighbors(id, g.Neighbors(id))
	}
	// Start in identity order, each node at its own random phase (matching
	// NewCluster's jitter convention).
	for i := 0; i < n; i++ {
		hb := c.nodes[i]
		jitter := time.Duration(c.sim.Rand().Int63n(int64(time.Second)))
		c.sim.At(jitter, hb.Start)
	}
	return c, nil
}

// ltVictim picks the crash victim: the smallest id in the upper half of the
// id space with at least one neighbor (an isolated MANET node has no
// observers to detect it).
func ltVictim(g *topology.Graph) ident.ID {
	n := g.Len()
	for v := n / 2; v < n; v++ {
		if g.Degree(ident.ID(v)) > 0 {
			return ident.ID(v)
		}
	}
	return ident.ID(n - 1)
}

// ltRun is one seed's measurement of a topology cell.
type ltRun struct {
	det    qos.DetectionStats
	stats  netsim.Stats
	avgDeg float64
}

// LTTopologySweep measures neighbor-local failure detection at large n over
// the four topology families: per-neighbor detection time of one crash, and
// traffic per process per second. The expected shape is the sweep's point —
// detection time tracks Θ and message cost tracks the connectivity degree,
// while n grows 4× across the rows without moving either.
func LTTopologySweep(opts Options) (*Table, error) {
	t := &Table{
		ID:    "LT",
		Title: "TOPOLOGY: neighbor-local detection at n=1024–4096 (ring/grid/scale-free/MANET)",
		Note: "neighbor heartbeat detector (Δ=1s, Θ=2s) on each topology; crash of one process at t=10.4s, " +
			"detection judged over its graph neighbors; quick: one small size",
		Columns: []string{"topology", "n", "avg deg", "det avg", "det max", "msgs/proc/s", "bytes/proc/s"},
	}
	const (
		crashAt = 10400 * time.Millisecond
		horizon = 30 * time.Second
	)
	ns := ltNs(opts)
	var jobs []func() (ltRun, error)
	for _, topo := range ltTopologies {
		topo := topo
		for _, n := range ns {
			n := n
			for r := 0; r < opts.runs(); r++ {
				seed := opts.seed() + int64(r)*101
				jobs = append(jobs, func() (ltRun, error) {
					//fdlint:allow rngdiscipline seed-addressed graph construction before the kernel runs; never interleaves with kernel draws
					g := ltGraph(topo, n, rand.New(rand.NewSource(seed)))
					degSum := 0
					for v := 0; v < n; v++ {
						degSum += g.Degree(ident.ID(v))
					}
					c, err := newTopoCluster(g, seed, defaultDelay(), time.Second, 2*time.Second)
					if err != nil {
						return ltRun{}, fmt.Errorf("LT %s n=%d: %w", topo, n, err)
					}
					victim := ltVictim(g)
					truth := faults.Schedule{}.CrashAt(victim, crashAt).Apply(c.sim, c.net)
					c.sim.RunUntil(horizon)
					opts.record(c.sim)
					observers := g.Neighbors(victim)
					return ltRun{
						det:    qos.JudgeFrom(c.log).DetectionTimes(truth, victim, observers),
						stats:  c.net.Stats(),
						avgDeg: float64(degSum) / float64(n),
					}, nil
				})
			}
		}
	}
	results, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	secs := horizon.Seconds()
	for _, topo := range ltTopologies {
		for _, n := range ns {
			cell := fmt.Sprintf("%s/n=%d", topo, n)
			var dets []qos.DetectionStats
			var avgs, degs, msgs, bytes []float64
			for r := 0; r < opts.runs(); r++ {
				res := results[k]
				k++
				dets = append(dets, res.det)
				avgs = append(avgs, qos.Millis(res.det.Avg))
				degs = append(degs, res.avgDeg)
				m := float64(res.stats.Sent) / float64(n) / secs
				b := float64(res.stats.Bytes) / float64(n) / secs
				msgs = append(msgs, m)
				bytes = append(bytes, b)
				opts.sampleDetection(cell, "det", r, res.det)
				opts.sample(cell, "avg_degree", r, res.avgDeg)
				opts.sample(cell, "msgs_per_proc_s", r, m)
				opts.sample(cell, "bytes_per_proc_s", r, b)
			}
			t.AddRow(topo, strconv.Itoa(n),
				famCell("%.1f", "", degs),
				famMS(avgs), ms(aggregateDetection(dets).Max),
				famCell("%.1f", "", msgs),
				famCell("%.0f", "", bytes))
		}
	}
	return t, nil
}
