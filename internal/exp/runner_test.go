package exp

import (
	"sync"
	"sync/atomic"
	"time"

	"errors"
	"runtime"
	"strings"
	"testing"
)

func renderAll(t *testing.T, opts Options) string {
	t.Helper()
	tables, err := All(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestParallelByteIdenticalToSerial is the engine's core guarantee: a full
// quick-mode table sweep produced by the parallel runner renders exactly the
// bytes the serial runner produces for the same seed.
func TestParallelByteIdenticalToSerial(t *testing.T) {
	serial := renderAll(t, Options{Quick: true, Parallel: 0})
	for _, workers := range []int{2, -1} {
		parallel := renderAll(t, Options{Quick: true, Parallel: workers})
		if parallel != serial {
			t.Fatalf("parallel (workers=%d) sweep differs from serial sweep", workers)
		}
	}
}

// TestScenarioTablesByteIdenticalToSerial pins the engine guarantee on the
// fault-scenario sweeps specifically: crash-recovery restarts and
// partition/heal windows run through the same seed-addressed job
// decomposition, so their tables too must render byte-identically at any
// worker count. (The full-sweep test above also covers them via All; this
// isolates a failure to the scenario path.)
func TestScenarioTablesByteIdenticalToSerial(t *testing.T) {
	for _, scenario := range []struct {
		name string
		fn   func(Options) (*Table, error)
	}{{"R1", R1CrashRecovery}, {"R2", R2PartitionHeal}} {
		render := func(workers int) string {
			tbl, err := scenario.fn(Options{Quick: true, Seed: 11, Parallel: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", scenario.name, workers, err)
			}
			var b strings.Builder
			if err := tbl.Render(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}
		serial := render(0)
		for _, workers := range []int{2, -1} {
			if parallel := render(workers); parallel != serial {
				t.Fatalf("%s: parallel (workers=%d) table differs from serial", scenario.name, workers)
			}
		}
	}
}

// TestParallelStableAcrossGOMAXPROCS re-runs the same seeded parallel sweep
// under different GOMAXPROCS values; the output must not change.
func TestParallelStableAcrossGOMAXPROCS(t *testing.T) {
	opts := Options{Quick: true, Seed: 7, Parallel: 4}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	one := renderAll(t, opts)
	runtime.GOMAXPROCS(4)
	four := renderAll(t, opts)
	if one != four {
		t.Fatal("same seed produced different tables across GOMAXPROCS values")
	}
}

func TestRunJobsOrderAndErrors(t *testing.T) {
	jobs := make([]func() (int, error), 100)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 3, 16, 200} {
		out, err := runJobs(Options{Parallel: workers}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	boom := errors.New("boom")
	later := errors.New("later")
	jobs[70] = func() (int, error) { return 0, later }
	jobs[10] = func() (int, error) { return 0, boom }
	for _, workers := range []int{1, 8} {
		if _, err := runJobs(Options{Parallel: workers}, jobs); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, boom)
		}
	}
}

// TestSharedGateBoundsConcurrency checks that a run-wide gate caps live
// jobs across nested fan-outs (All installs one so experiment-level times
// cell-level parallelism cannot exceed the pool size).
func TestSharedGateBoundsConcurrency(t *testing.T) {
	const bound = 2
	opts := Options{Parallel: 64, gate: make(chan struct{}, bound)}
	var live, peak atomic.Int64
	outer := make([]func() (int, error), 4)
	for i := range outer {
		outer[i] = func() (int, error) {
			inner := make([]func() (int, error), 8)
			for j := range inner {
				inner[j] = func() (int, error) {
					n := live.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(time.Millisecond)
					live.Add(-1)
					return 0, nil
				}
			}
			_, err := runJobs(opts, inner)
			return 0, err
		}
	}
	// Outer layer mimics All: plain goroutines holding no gate slots.
	var wg sync.WaitGroup
	for _, job := range outer {
		job := job
		wg.Add(1)
		go func() { defer wg.Done(); _, _ = job() }()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrent jobs = %d, want ≤ %d", p, bound)
	}
}

func TestEngineStatsCount(t *testing.T) {
	var stats EngineStats
	opts := Options{Quick: true, Parallel: 2, Stats: &stats}
	if _, err := E1DetectionVsN(opts); err != nil {
		t.Fatal(err)
	}
	// Quick E1: 2 sizes × 4 detectors × 1 run = 8 simulations.
	if got := stats.Runs.Load(); got != 8 {
		t.Errorf("Runs = %d, want 8", got)
	}
	if stats.Events.Load() == 0 {
		t.Error("Events = 0, want kernel steps recorded")
	}
}

func TestOptionsWorkers(t *testing.T) {
	if (Options{}).Workers() != 1 {
		t.Error("zero Parallel must mean serial")
	}
	if (Options{Parallel: 6}).Workers() != 6 {
		t.Error("explicit worker count not honored")
	}
	if (Options{Parallel: -1}).Workers() != runtime.GOMAXPROCS(0) {
		t.Error("negative Parallel must mean GOMAXPROCS")
	}
}
