package exp

import (
	"strings"
	"testing"
	"time"
)

// renderLines renders tbl and returns its non-empty lines.
func renderLines(t *testing.T, tbl *Table) []string {
	t.Helper()
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(b.String(), "\n")
	return strings.Split(out, "\n")
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "alignment",
		Columns: []string{"id", "wide-column", "z"},
	}
	tbl.AddRow("1", "x", "a")
	tbl.AddRow("22222", "yy", "b")
	lines := renderLines(t, tbl)
	if len(lines) != 5 { // header line, columns, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	header, sep := lines[1], lines[2]
	// Every column after the first starts at the same offset in each row.
	wantCol2 := strings.Index(header, "wide-column")
	wantCol3 := strings.Index(header, "z")
	for _, l := range []string{sep, lines[3], lines[4]} {
		if len(l) < wantCol2 {
			t.Fatalf("row %q shorter than column offset", l)
		}
	}
	if strings.Index(lines[3], "x") != wantCol2 || strings.Index(lines[4], "yy") != wantCol2 {
		t.Errorf("column 2 misaligned:\n%s", strings.Join(lines, "\n"))
	}
	if strings.Index(lines[3], "a") != wantCol3 || strings.Index(lines[4], "b") != wantCol3 {
		t.Errorf("column 3 misaligned:\n%s", strings.Join(lines, "\n"))
	}
	// The last cell is not padded: no trailing spaces on any line.
	for _, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Errorf("trailing padding on %q", l)
		}
	}
}

// TestTableRenderRuneWidths checks alignment for multi-byte cells: widths
// must count runes, not bytes, or Greek/CJK cells shift every later column.
func TestTableRenderRuneWidths(t *testing.T) {
	tbl := &Table{ID: "T", Title: "runes", Columns: []string{"name", "val"}}
	tbl.AddRow("λM", "1")
	tbl.AddRow("plain", "2")
	lines := renderLines(t, tbl)
	r1 := []rune(lines[2+1]) // first data row
	r2 := []rune(lines[2+2])
	v1 := -1
	for i, r := range r1 {
		if r == '1' {
			v1 = i
		}
	}
	v2 := -1
	for i, r := range r2 {
		if r == '2' {
			v2 = i
		}
	}
	if v1 != v2 {
		t.Errorf("value column misaligned in rune offsets (%d vs %d):\n%s", v1, v2, strings.Join(lines, "\n"))
	}
}

func TestTableRenderNoNote(t *testing.T) {
	tbl := &Table{ID: "T", Title: "no note", Columns: []string{"a"}}
	tbl.AddRow("1")
	lines := renderLines(t, tbl)
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+columns+separator+row: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "== T: no note ==") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestTableRenderShortRow(t *testing.T) {
	// Rows narrower than Columns must render without panicking.
	tbl := &Table{ID: "T", Title: "short", Columns: []string{"a", "b", "c"}}
	tbl.AddRow("only")
	lines := renderLines(t, tbl)
	if !strings.Contains(lines[len(lines)-1], "only") {
		t.Errorf("short row lost: %q", lines)
	}
}

func TestSeparatorMatchesWidths(t *testing.T) {
	tbl := &Table{ID: "T", Title: "sep", Columns: []string{"ab", "c"}}
	tbl.AddRow("x", "longest-cell")
	lines := renderLines(t, tbl)
	sep := lines[2]
	want := "--  ------------"
	if sep != want {
		t.Errorf("separator = %q, want %q", sep, want)
	}
}

func TestMsF3Formatting(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("ms = %q", got)
	}
	if got := ms(0); got != "0.0ms" {
		t.Errorf("ms(0) = %q", got)
	}
	if got := f3(0.12345); got != "0.123" {
		t.Errorf("f3 = %q", got)
	}
}
