package exp

import (
	"strings"
	"testing"
	"time"
)

// renderLines renders tbl and returns its non-empty lines.
func renderLines(t *testing.T, tbl *Table) []string {
	t.Helper()
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(b.String(), "\n")
	return strings.Split(out, "\n")
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "alignment",
		Columns: []string{"id", "wide-column", "z"},
	}
	tbl.AddRow("1", "x", "a")
	tbl.AddRow("22222", "yy", "b")
	lines := renderLines(t, tbl)
	if len(lines) != 5 { // header line, columns, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	header, sep := lines[1], lines[2]
	// Every column after the first starts at the same offset in each row.
	wantCol2 := strings.Index(header, "wide-column")
	wantCol3 := strings.Index(header, "z")
	for _, l := range []string{sep, lines[3], lines[4]} {
		if len(l) < wantCol2 {
			t.Fatalf("row %q shorter than column offset", l)
		}
	}
	if strings.Index(lines[3], "x") != wantCol2 || strings.Index(lines[4], "yy") != wantCol2 {
		t.Errorf("column 2 misaligned:\n%s", strings.Join(lines, "\n"))
	}
	if strings.Index(lines[3], "a") != wantCol3 || strings.Index(lines[4], "b") != wantCol3 {
		t.Errorf("column 3 misaligned:\n%s", strings.Join(lines, "\n"))
	}
	// The last cell is not padded: no trailing spaces on any line.
	for _, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Errorf("trailing padding on %q", l)
		}
	}
}

// TestTableRenderRuneWidths checks alignment for multi-byte cells: widths
// must count runes, not bytes, or Greek/CJK cells shift every later column.
func TestTableRenderRuneWidths(t *testing.T) {
	tbl := &Table{ID: "T", Title: "runes", Columns: []string{"name", "val"}}
	tbl.AddRow("λM", "1")
	tbl.AddRow("plain", "2")
	lines := renderLines(t, tbl)
	r1 := []rune(lines[2+1]) // first data row
	r2 := []rune(lines[2+2])
	v1 := -1
	for i, r := range r1 {
		if r == '1' {
			v1 = i
		}
	}
	v2 := -1
	for i, r := range r2 {
		if r == '2' {
			v2 = i
		}
	}
	if v1 != v2 {
		t.Errorf("value column misaligned in rune offsets (%d vs %d):\n%s", v1, v2, strings.Join(lines, "\n"))
	}
}

func TestTableRenderNoNote(t *testing.T) {
	tbl := &Table{ID: "T", Title: "no note", Columns: []string{"a"}}
	tbl.AddRow("1")
	lines := renderLines(t, tbl)
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+columns+separator+row: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "== T: no note ==") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestTableRenderShortRow(t *testing.T) {
	// Rows narrower than Columns must render without panicking. AddRow
	// rejects the mismatch, so the row is injected directly.
	tbl := &Table{ID: "T", Title: "short", Columns: []string{"a", "b", "c"}}
	tbl.Rows = append(tbl.Rows, []string{"only"})
	lines := renderLines(t, tbl)
	if !strings.Contains(lines[len(lines)-1], "only") {
		t.Errorf("short row lost: %q", lines)
	}
}

func TestTableRenderWideRow(t *testing.T) {
	// Regression: a row with MORE cells than Columns used to index
	// widths[i] out of range and panic mid-render. It must render, with the
	// overflow cells unpadded.
	tbl := &Table{ID: "T", Title: "wide", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.Rows = append(tbl.Rows, []string{"3", "4", "overflow", "more"})
	lines := renderLines(t, tbl)
	last := lines[len(lines)-1]
	for _, want := range []string{"3", "4", "overflow", "more"} {
		if !strings.Contains(last, want) {
			t.Errorf("wide row lost cell %q: %q", want, last)
		}
	}
}

func TestAddRowRejectsMismatch(t *testing.T) {
	tbl := &Table{ID: "T", Title: "strict", Columns: []string{"a", "b"}}
	for _, cells := range [][]string{{"1"}, {"1", "2", "3"}} {
		cells := cells
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddRow(%d cells) with 2 columns did not panic", len(cells))
				}
			}()
			tbl.AddRow(cells...)
		}()
	}
	// Matching rows, and rows on a column-less table, stay accepted.
	tbl.AddRow("1", "2")
	free := &Table{ID: "F", Title: "no columns"}
	free.AddRow("anything", "goes", "here")
	if len(tbl.Rows) != 1 || len(free.Rows) != 1 {
		t.Errorf("valid rows rejected: %d/%d", len(tbl.Rows), len(free.Rows))
	}
}

func TestSeparatorMatchesWidths(t *testing.T) {
	tbl := &Table{ID: "T", Title: "sep", Columns: []string{"ab", "c"}}
	tbl.AddRow("x", "longest-cell")
	lines := renderLines(t, tbl)
	sep := lines[2]
	want := "--  ------------"
	if sep != want {
		t.Errorf("separator = %q, want %q", sep, want)
	}
}

func TestMsF3Formatting(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("ms = %q", got)
	}
	if got := ms(0); got != "0.0ms" {
		t.Errorf("ms(0) = %q", got)
	}
	if got := f3(0.12345); got != "0.123" {
		t.Errorf("f3 = %q", got)
	}
}

func TestFamCellFormatting(t *testing.T) {
	// Unreplicated family: byte-identical to the plain format — no ± suffix.
	if got := famMS([]float64{1.5}); got != "1.5ms" {
		t.Errorf("famMS single = %q, want 1.5ms", got)
	}
	if got := famCell("%.4f", "", []float64{0.0123}); got != "0.0123" {
		t.Errorf("famCell single = %q", got)
	}
	// Zero-spread family: still no suffix (CI95 = 0).
	if got := famMS([]float64{2, 2, 2}); got != "2.0ms" {
		t.Errorf("famMS zero-spread = %q, want 2.0ms", got)
	}
	// Replicated family with spread: mean ±ci95 in the same format+unit.
	got := famMS([]float64{10, 12, 14})
	if !strings.HasPrefix(got, "12.0ms ±") || !strings.HasSuffix(got, "ms") {
		t.Errorf("famMS replicated = %q, want \"12.0ms ±<w>ms\"", got)
	}
	// A half-width below the format's resolution must not print a
	// misleading " ±0.0ms" (indistinguishable from zero spread).
	if got := famMS([]float64{12.0, 12.001, 12.002}); got != "12.0ms" {
		t.Errorf("famMS sub-resolution spread = %q, want bare mean", got)
	}
	// famCount: bare integer for R=1, one-decimal mean ±ci95 otherwise.
	if got := famCount([]float64{7}); got != "7" {
		t.Errorf("famCount single = %q, want 7", got)
	}
	got = famCount([]float64{1, 2, 3})
	if !strings.HasPrefix(got, "2.0 ±") {
		t.Errorf("famCount replicated = %q, want \"2.0 ±<w>\"", got)
	}
}
