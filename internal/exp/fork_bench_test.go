package exp

import (
	"fmt"
	"testing"
	"time"
)

// fork_bench_test.go quantifies the warm-fork trade at the cluster level:
// one replicate of a detection family costs either a full build+warm+tail
// simulation (serial) or a checkpoint restore plus the tail (fork). The
// kernel-level counterpart is BenchmarkForkVsWarm in internal/des.

func forkBenchConfig(n int) ClusterConfig {
	return ClusterConfig{
		Kind: KindChen, N: n, F: boundedF(n),
		Seed:  1,
		Delay: defaultDelay(),
	}
}

const (
	forkBenchWarm    = 10 * time.Second
	forkBenchHorizon = 15 * time.Second
)

// BenchmarkForkVsWarm compares the per-replicate cost of a warmed detector
// cluster: "warm" rebuilds the cluster and re-simulates the 10s prefix plus
// the 5s measured tail, "fork" restores a checkpoint and runs the tail only
// — the work the sweep engine saves per extra replicate.
func BenchmarkForkVsWarm(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n%d/warm", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(forkBenchConfig(n))
				if err != nil {
					b.Fatal(err)
				}
				c.RunUntil(forkBenchWarm)
				c.Sim.Reseed(102)
				c.RunUntil(forkBenchHorizon)
			}
		})
		b.Run(fmt.Sprintf("n%d/fork", n), func(b *testing.B) {
			c, err := NewCluster(forkBenchConfig(n))
			if err != nil {
				b.Fatal(err)
			}
			c.RunUntil(forkBenchWarm)
			snap := c.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Restore(snap)
				c.Sim.Reseed(102)
				c.RunUntil(forkBenchHorizon)
			}
		})
	}
}
