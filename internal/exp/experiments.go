package exp

import (
	"fmt"
	"strconv"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/core/tagset"
	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
	"asyncfd/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Seed is the base random seed (default 1). Runs are deterministic in
	// the seed.
	Seed int64
	// Quick shrinks sweeps and horizons for tests and benches.
	Quick bool
	// Parallel sizes the worker pool experiment cells run on: 0 or 1 =
	// serial, n > 1 = that many workers, negative = one worker per CPU
	// (runtime.GOMAXPROCS). Tables are byte-identical whatever the value.
	Parallel int
	// Repeat overrides the per-cell seed-family size R: every replicated
	// cell runs Repeat seeds (base seed plus a per-replicate stride) and
	// the table aggregates across the family. 0 keeps the historical
	// default (1 in Quick mode, 3 otherwise). Seed-family replication is
	// what turns single-run point estimates into the confidence intervals
	// of the asyncfd-bench/v2 rows; see docs/BENCHMARKS.md.
	Repeat int
	// Fork selects warm-fork replication for seed families: 0 follows the
	// package default (SetDefaultFork — on unless cmd/fdbench's -fork flag
	// or DES_FORK turned it off), positive forces forking, negative forces
	// the serial comparator that re-simulates each replicate's warmup.
	// Tables and v2 rows are byte-identical whatever the value.
	Fork int
	// Stats, when non-nil, accumulates kernel throughput counters across
	// every simulation the run executes.
	Stats *EngineStats
	// Samples, when non-nil, collects per-cell per-replicate metric
	// observations (detection times, mistake rates, …) that aggregate
	// into the distribution rows of the asyncfd-bench/v2 schema.
	// Collection is deterministic at any Parallel value: experiments
	// record samples from their ordered aggregation loops, never from
	// concurrently executing jobs.
	Samples *stats.Collector

	// gate, when non-nil, is the run-wide concurrency bound shared by every
	// runJobs call (installed by All so experiment-level and cell-level
	// fan-out together never exceed Workers() live simulations).
	gate chan struct{}
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) runs() int {
	if o.Repeat > 0 {
		return o.Repeat
	}
	if o.Quick {
		return 1
	}
	return 3
}

// Runs reports the resolved per-cell seed-family size R (Repeat when set,
// else 1 in Quick mode and 3 otherwise). cmd/fdbench records it in the v2
// bench report.
func (o Options) Runs() int { return o.runs() }

// sample records one seed-family observation when a collector is attached.
func (o Options) sample(cell, metric string, rep int, v float64) {
	if o.Samples != nil {
		o.Samples.Add(cell, metric, rep, v)
	}
}

// sampleDetection records a DetectionStats observation's average and
// maximum under prefix ("det" → "det_avg_ms", "det_max_ms").
func (o Options) sampleDetection(cell, prefix string, rep int, s qos.DetectionStats) {
	o.sample(cell, prefix+"_avg_ms", rep, qos.Millis(s.Avg))
	o.sample(cell, prefix+"_max_ms", rep, qos.Millis(s.Max))
}

// defaultDelay is the nominal asynchronous network: ~1ms one-hop average
// with an exponential tail, mirroring the paper family's δ = 1ms setup.
func defaultDelay() netsim.DelayModel {
	return netsim.Exponential{Min: 500 * time.Microsecond, Mean: 700 * time.Microsecond, Cap: 100 * time.Millisecond}
}

// detectionFamily builds the seed family shared by the detection sweeps
// (E1/L1/E8): crash one process, run to the horizon, measure detection
// statistics. The warm horizon must precede crashAt. The run closure is
// already single-pass over the trace — one qos.DetectionTimes call per
// replicate, no per-metric Judge rebuilds — so there is nothing left to
// hoist out of the replicate loop here.
func detectionFamily(opts Options, cfg ClusterConfig, crash ident.ID, crashAt, warm, horizon time.Duration, wrap func(error) error) family[qos.DetectionStats] {
	return family[qos.DetectionStats]{
		warm: warm,
		build: func() (*Cluster, *qos.GroundTruth, error) {
			c, err := NewCluster(cfg)
			if err != nil {
				return nil, nil, wrap(err)
			}
			return c, c.Apply(faults.Schedule{}.CrashAt(crash, crashAt)), nil
		},
		run: func(c *Cluster, truth *qos.GroundTruth) (qos.DetectionStats, error) {
			c.RunUntil(horizon)
			opts.record(c.Sim)
			observers := c.Members.Clone()
			observers.Remove(crash)
			return qos.DetectionTimes(c.Log, truth, crash, observers), nil
		},
	}
}

// aggregateDetection merges per-seed stats: mean of averages, min of
// minima, max of maxima.
func aggregateDetection(stats []qos.DetectionStats) qos.DetectionStats {
	var out qos.DetectionStats
	if len(stats) == 0 {
		return out
	}
	var avgSum time.Duration
	first := true
	for _, s := range stats {
		avgSum += s.Avg
		out.Count += s.Count
		out.Missing += s.Missing
		if first || s.Min < out.Min {
			out.Min = s.Min
		}
		if first || s.Max > out.Max {
			out.Max = s.Max
		}
		first = false
	}
	out.Avg = avgSum / time.Duration(len(stats))
	return out
}

// boundedF is the default crash bound of the n-sweeps: ⌊(n−1)/3⌋, at
// least 1.
func boundedF(n int) int {
	f := (n - 1) / 3
	if f < 1 {
		f = 1
	}
	return f
}

// detectionColumns is the column set of the detection-time-vs-n sweeps.
var detectionColumns = []string{"n", "f",
	"async avg", "async max",
	"hb avg", "hb max",
	"phi avg", "phi max",
	"chen avg", "chen max"}

// detectionVsNTable fills t with the detection-time-vs-n sweep shared by
// E1 and its large-n variant L1: for every n, one process crashes
// mid-heartbeat-period and every detector kind's R-seed family measures
// detection stats, sampled per cell into the v2 rows.
func detectionVsNTable(opts Options, t *Table, ns []int) (*Table, error) {
	var fams []family[qos.DetectionStats]
	for _, n := range ns {
		n := n
		f := boundedF(n)
		for _, kind := range AllKinds() {
			kind := kind
			cfg := ClusterConfig{
				Kind: kind, N: n, F: f,
				Seed:  opts.seed(),
				Delay: defaultDelay(),
			}
			fams = append(fams, detectionFamily(opts, cfg,
				ident.ID(n-1), 10400*time.Millisecond, 10*time.Second, 30*time.Second,
				func(err error) error { return fmt.Errorf("%s %v n=%d: %w", t.ID, kind, n, err) }))
		}
	}
	stats, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, n := range ns {
		row := []string{strconv.Itoa(n), strconv.Itoa(boundedF(n))}
		for _, kind := range AllKinds() {
			cell := fmt.Sprintf("n=%d/%s", n, kind)
			avgs := make([]float64, 0, opts.runs())
			for r := 0; r < opts.runs(); r++ {
				opts.sampleDetection(cell, "det", r, stats[k+r])
				avgs = append(avgs, qos.Millis(stats[k+r].Avg))
			}
			agg := aggregateDetection(stats[k : k+opts.runs()])
			k += opts.runs()
			row = append(row, famMS(avgs), ms(agg.Max))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// E1DetectionVsN reproduces the headline comparison: failure detection time
// versus system size for the time-free detector and the three timer-based
// baselines. Expected shape: the time-free detector detects in roughly one
// query period (Δ + δ) independent of n, while the fixed-timeout heartbeat
// sits between Θ−Δ and Θ and the adaptive baselines near Δ + margin.
func E1DetectionVsN(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "failure detection time vs system size n (avg/max over observers)",
		Note:    "crash of one process at t=10.4s (mid heartbeat period); Δ=1s, Θ=2s; reconstructed experiment",
		Columns: detectionColumns,
	}
	ns := []int{4, 8, 16, 32, 64}
	if opts.Quick {
		ns = []int{4, 8}
	}
	return detectionVsNTable(opts, t, ns)
}

// E2DetectionVsF sweeps the crash bound f for the time-free detector with no
// extra collection window: a larger f means a smaller quorum n−f, so rounds
// terminate earlier — detection gets faster but the f slowest responders of
// each round are falsely suspected more often. The experiment exposes the
// latency/accuracy trade-off built into the quorum size.
func E2DetectionVsF(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "time-free detector: detection time and accuracy vs f (quorum n−f)",
		Note:    "n=16, window=0 (pure protocol), crash at t=10s; reconstructed experiment",
		Columns: []string{"f", "quorum", "det avg", "det max", "mistakes/pair/s", "PA"},
	}
	n := 16
	fs := []int{1, 3, 5, 7}
	if opts.Quick {
		n = 8
		fs = []int{1, 3}
	}
	const horizon = 30 * time.Second
	type e2run struct {
		stats qos.DetectionStats
		rate  float64
		pa    float64
	}
	var fams []family[e2run]
	for _, f := range fs {
		f := f
		cfg := ClusterConfig{
			Kind: KindAsync, N: n, F: f,
			Seed:     opts.seed(),
			Delay:    defaultDelay(),
			Window:   time.Nanosecond, // effectively zero, explicit to skip default
			Interval: time.Second,
		}
		fams = append(fams, family[e2run]{
			warm: 9 * time.Second, // crash at 10s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("E2 f=%d: %w", f, err)
				}
				return c, c.Apply(faults.Schedule{}.CrashAt(ident.ID(n-1), 10*time.Second)), nil
			},
			run: func(c *Cluster, truth *qos.GroundTruth) (e2run, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				observers := c.Members.Clone()
				observers.Remove(ident.ID(n - 1))
				judge := qos.JudgeFrom(c.Log) // one trace pass for all three metrics
				return e2run{
					stats: judge.DetectionTimes(truth, ident.ID(n-1), observers),
					rate:  judge.Mistakes(truth, c.Members, horizon).Rate,
					pa:    judge.QueryAccuracy(truth, c.Members, horizon),
				}, nil
			},
		})
	}
	results, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, f := range fs {
		cell := fmt.Sprintf("f=%d", f)
		var stats []qos.DetectionStats
		var avgs, rates, pas []float64
		for r := 0; r < opts.runs(); r++ {
			res := results[k]
			k++
			stats = append(stats, res.stats)
			avgs = append(avgs, qos.Millis(res.stats.Avg))
			rates = append(rates, res.rate)
			pas = append(pas, res.pa)
			opts.sampleDetection(cell, "det", r, res.stats)
			opts.sample(cell, "mistake_rate", r, res.rate)
			opts.sample(cell, "query_accuracy", r, res.pa)
		}
		agg := aggregateDetection(stats)
		t.AddRow(strconv.Itoa(f), strconv.Itoa(n-f), famMS(avgs), ms(agg.Max),
			famCell("%.4f", "", rates), famCell("%.3f", "", pas))
	}
	return t, nil
}

// E3Disturbance regenerates the "false suspicions over time" figure: one
// process is transiently slowed (not crashed); the time-free detector
// accumulates false suspicions and then corrects them by flooding the
// victim's self-refutation, while timer-based detectors hold the mistake
// until heartbeats outlive their timeouts again.
func E3Disturbance(opts Options) (*Table, error) {
	n := 20
	if opts.Quick {
		n = 8
	}
	f := n / 4
	const (
		start   = 30 * time.Second
		end     = 40 * time.Second
		horizon = 60 * time.Second
	)
	t := &Table{
		ID:      "E3",
		Title:   "false suspicions over time around a transient slowdown of one process",
		Note:    fmt.Sprintf("n=%d; p3 slowed ×3000 during [30s,40s); series sampled every second; reconstructed figure", n),
		Columns: []string{"t", "async", "heartbeat", "phi-accrual"},
	}
	var times []time.Duration
	for s := 25; s <= 55; s++ {
		times = append(times, time.Duration(s)*time.Second)
	}
	kinds := []Kind{KindAsync, KindHeartbeat, KindPhi}
	type e3run struct {
		series []int
		mist   qos.MistakeStats
	}
	var fams []family[e3run]
	for _, kind := range kinds {
		kind := kind
		cfg := ClusterConfig{
			Kind: kind, N: n, F: f,
			Seed: opts.seed(),
			Delay: netsim.Disturbance{
				Base:   defaultDelay(),
				Nodes:  ident.SetOf(3),
				Start:  start,
				End:    end,
				Factor: 3000,
			},
		}
		fams = append(fams, family[e3run]{
			warm: 20 * time.Second, // slowdown starts at 30s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("E3 %v: %w", kind, err)
				}
				return c, nil, nil
			},
			run: func(c *Cluster, _ *qos.GroundTruth) (e3run, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				truth := &qos.GroundTruth{}
				return e3run{
					series: qos.FalseSuspicionSeries(c.Log, truth, times),
					mist:   qos.Mistakes(c.Log, truth, c.Members, horizon),
				}, nil
			},
		})
	}
	results, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	// perTime[kind][timepoint] holds the family's series values; the table
	// renders the family mean per timepoint (the bare integer when R = 1).
	perTime := make([][][]float64, len(kinds))
	k := 0
	for i, kind := range kinds {
		cell := fmt.Sprintf("slow/%s", kind)
		perTime[i] = make([][]float64, len(times))
		for r := 0; r < opts.runs(); r++ {
			res := results[k]
			k++
			peak := 0
			for ti, v := range res.series {
				perTime[i][ti] = append(perTime[i][ti], float64(v))
				if v > peak {
					peak = v
				}
			}
			opts.sample(cell, "mistakes", r, float64(res.mist.Count))
			opts.sample(cell, "mistake_dur_ms", r, qos.Millis(res.mist.AvgDuration))
			opts.sample(cell, "peak_false_susp", r, float64(peak))
		}
	}
	for ti, at := range times {
		t.AddRow(fmt.Sprintf("%ds", int(at/time.Second)),
			famCount(perTime[0][ti]),
			famCount(perTime[1][ti]),
			famCount(perTime[2][ti]))
	}
	return t, nil
}

// E4QoS measures the Chen–Toueg–Aguilera QoS triple (mistake rate, mistake
// duration, query accuracy) for all detectors across increasingly bursty
// delay distributions, with no crash at all: everything recorded is detector
// error.
func E4QoS(opts Options) (*Table, error) {
	horizon := 120 * time.Second
	if opts.Quick {
		horizon = 30 * time.Second
	}
	t := &Table{
		ID:      "E4",
		Title:   "QoS under delay-distribution sweep (no crashes: all suspicions are mistakes)",
		Note:    "n=10, f=3; λM = mistakes per pair per second, TM = mean mistake duration, PA = query accuracy; cell values are seed-family means",
		Columns: []string{"delay model", "detector", "mistakes", "λM", "TM", "PA"},
	}
	models := []struct {
		name  string
		model netsim.DelayModel
	}{
		{"constant 1ms", netsim.Constant{D: time.Millisecond}},
		{"uniform 0.5–5ms", netsim.Uniform{Min: 500 * time.Microsecond, Max: 5 * time.Millisecond}},
		{"exp mean 2ms", netsim.Exponential{Min: 500 * time.Microsecond, Mean: 2 * time.Millisecond, Cap: 10 * time.Second}},
		{"pareto α=1 2ms", netsim.Pareto{Scale: 2 * time.Millisecond, Alpha: 1.0, Cap: 30 * time.Second}},
	}
	type e4cell struct {
		mist qos.MistakeStats
		pa   float64
	}
	var fams []family[e4cell]
	for _, m := range models {
		for _, kind := range AllKinds() {
			kind := kind
			cfg := ClusterConfig{
				Kind: kind, N: 10, F: 3,
				Seed:  opts.seed(),
				Delay: m.model,
			}
			fams = append(fams, family[e4cell]{
				warm: 5 * time.Second, // estimator windows are primed; mistakes accrue over the whole horizon
				build: func() (*Cluster, *qos.GroundTruth, error) {
					c, err := NewCluster(cfg)
					if err != nil {
						return nil, nil, fmt.Errorf("E4 %v: %w", kind, err)
					}
					return c, nil, nil
				},
				run: func(c *Cluster, _ *qos.GroundTruth) (e4cell, error) {
					c.RunUntil(horizon)
					opts.record(c.Sim)
					truth := &qos.GroundTruth{}
					judge := qos.JudgeFrom(c.Log)
					return e4cell{
						mist: judge.Mistakes(truth, c.Members, horizon),
						pa:   judge.QueryAccuracy(truth, c.Members, horizon),
					}, nil
				},
			})
		}
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, m := range models {
		for _, kind := range AllKinds() {
			cellKey := fmt.Sprintf("%s/%s", m.name, kind)
			var counts, rates, durs, pas []float64
			for r := 0; r < opts.runs(); r++ {
				cell := cells[k]
				k++
				counts = append(counts, float64(cell.mist.Count))
				rates = append(rates, cell.mist.Rate)
				durs = append(durs, qos.Millis(cell.mist.AvgDuration))
				pas = append(pas, cell.pa)
				opts.sample(cellKey, "mistakes", r, float64(cell.mist.Count))
				opts.sample(cellKey, "mistake_rate", r, cell.mist.Rate)
				opts.sample(cellKey, "mistake_dur_ms", r, qos.Millis(cell.mist.AvgDuration))
				opts.sample(cellKey, "query_accuracy", r, cell.pa)
			}
			t.AddRow(m.name, kind.String(),
				famCell("%.1f", "", counts),
				famCell("%.5f", "", rates),
				famMS(durs),
				famCell("%.3f", "", pas))
		}
	}
	return t, nil
}

// messageCostTable fills t with the traffic count shared by E5 and its
// large-n variant L5: messages and wire bytes per process per second on a
// stable network, one seed per cell (traffic is delay-schedule-stable), so
// the v2 rows carry single-sample families.
func messageCostTable(opts Options, t *Table, ns []int) (*Table, error) {
	horizon := 30 * time.Second
	if opts.Quick {
		horizon = 10 * time.Second
	}
	var jobs []func() (netsim.Stats, error)
	for _, n := range ns {
		for _, kind := range AllKinds() {
			kind := kind
			cfg := ClusterConfig{
				Kind: kind, N: n, F: boundedF(n),
				Seed:       opts.seed(),
				Delay:      defaultDelay(),
				CountBytes: true,
			}
			jobs = append(jobs, func() (netsim.Stats, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return netsim.Stats{}, fmt.Errorf("%s %v: %w", t.ID, kind, err)
				}
				c.RunUntil(horizon)
				opts.record(c.Sim)
				return c.Net.Stats(), nil
			})
		}
	}
	cells, err := runJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	secs := horizon.Seconds()
	for _, n := range ns {
		for _, kind := range AllKinds() {
			st := cells[k]
			k++
			msgs := float64(st.Sent) / float64(n) / secs
			bytes := float64(st.Bytes) / float64(n) / secs
			cell := fmt.Sprintf("n=%d/%s", n, kind)
			opts.sample(cell, "msgs_per_proc_s", 0, msgs)
			opts.sample(cell, "bytes_per_proc_s", 0, bytes)
			t.AddRow(strconv.Itoa(n), kind.String(),
				fmt.Sprintf("%.1f", msgs),
				fmt.Sprintf("%.0f", bytes))
		}
	}
	return t, nil
}

// E5MessageCost counts traffic: the query–response scheme costs two messages
// per monitored pair per round (query out, response back, both directions of
// the pair), versus one per pair per Δ for heartbeats — but query messages
// carry the suspicion state and are therefore larger.
func E5MessageCost(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "message cost per process per second vs n",
		Note:    "stable network, no crashes; bytes measured with the wire codec",
		Columns: []string{"n", "detector", "msgs/proc/s", "bytes/proc/s"},
	}
	ns := []int{4, 8, 16, 32}
	if opts.Quick {
		ns = []int{4, 8}
	}
	return messageCostTable(opts, t, ns)
}

// E6MPSensitivity probes the paper's behavioral assumption: with the pure
// protocol (window=0), eventual weak accuracy needs some process whose
// responses are always winning. The favored process's links are accelerated
// by a decreasing amount until the bias disappears; the experiment reports
// whether a never-suspected correct process exists in the tail of the run.
func E6MPSensitivity(opts Options) (*Table, error) {
	n, f := 10, 3
	if opts.Quick {
		n, f = 6, 2
	}
	const (
		horizon = 60 * time.Second
		cut     = 30 * time.Second
	)
	t := &Table{
		ID:      "E6",
		Title:   "sensitivity to the message-pattern assumption (MP)",
		Note:    "pure protocol (window=0); base delay exp(mean 5ms); 'holds' = some correct process unsuspected after t=30s",
		Columns: []string{"favored-link delay", "runs where ◇S accuracy holds", "avg never-suspected processes", "favored suspected in tail"},
	}
	base := netsim.Exponential{Min: 500 * time.Microsecond, Mean: 5 * time.Millisecond, Cap: time.Second}
	biases := []struct {
		name string
		fast netsim.DelayModel
	}{
		{"0.2ms (strong MP)", netsim.Constant{D: 200 * time.Microsecond}},
		{"2ms (marginal)", netsim.Constant{D: 2 * time.Millisecond}},
		{"none (MP off)", nil},
	}
	type e6run struct {
		never       int
		favoredTail bool
	}
	var families []family[e6run]
	for _, b := range biases {
		var delay netsim.DelayModel = base
		if b.fast != nil {
			delay = netsim.Bias{Base: base, Fast: b.fast, Favored: ident.SetOf(0)}
		}
		cfg := ClusterConfig{
			Kind: KindAsync, N: n, F: f,
			Seed:     opts.seed(),
			Delay:    delay,
			Window:   time.Nanosecond,
			Interval: 100 * time.Millisecond,
		}
		families = append(families, family[e6run]{
			warm: 5 * time.Second, // the tail cut is at 30s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("E6: %w", err)
				}
				return c, nil, nil
			},
			run: func(c *Cluster, _ *qos.GroundTruth) (e6run, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				// One episode-index pass replaces the pre-fork raw event scan
				// plus the O(pairs·events) SuspectedAt loop; the condition is
				// identical (suspected at the cut, or suspected anew after it).
				tail := qos.JudgeFrom(c.Log).SuspectedInTail(cut)
				return e6run{
					never:       n - tail.Len(),
					favoredTail: tail.Has(0),
				}, nil
			},
		})
	}
	results, err := runFamilies(opts, families)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, b := range biases {
		cell := fmt.Sprintf("mp=%s", b.name)
		holds := 0
		favoredTail := 0
		var nevers []float64
		for r := 0; r < opts.runs(); r++ {
			res := results[k]
			k++
			nevers = append(nevers, float64(res.never))
			holdsRun, favoredRun := 0.0, 0.0
			if res.never > 0 {
				holds++
				holdsRun = 1
			}
			if res.favoredTail {
				favoredTail++
				favoredRun = 1
			}
			opts.sample(cell, "never_suspected", r, float64(res.never))
			opts.sample(cell, "holds", r, holdsRun)
			opts.sample(cell, "favored_suspected", r, favoredRun)
		}
		t.AddRow(b.name,
			fmt.Sprintf("%d/%d", holds, opts.runs()),
			famCell("%.1f", "", nevers),
			fmt.Sprintf("%d/%d", favoredTail, opts.runs()))
	}
	return t, nil
}

// E8Propagation measures how long a crash takes to become known to *every*
// correct process (the completeness spread): the time-free detector floods
// suspicions inside queries, so the spread stays near one query period; with
// independent heartbeat timers the spread follows the timer skew.
func E8Propagation(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "suspicion propagation: spread between first and last observer detection",
		Note:    "crash at t=10.4s; spread = max−min permanent-detection time across observers",
		Columns: []string{"n", "async spread", "async max", "hb spread", "hb max"},
	}
	ns := []int{8, 16, 32}
	if opts.Quick {
		ns = []int{8}
	}
	var fams []family[qos.DetectionStats]
	for _, n := range ns {
		n := n
		f := (n - 1) / 3
		for _, kind := range []Kind{KindAsync, KindHeartbeat} {
			kind := kind
			cfg := ClusterConfig{
				Kind: kind, N: n, F: f,
				Seed:  opts.seed(),
				Delay: defaultDelay(),
			}
			fams = append(fams, detectionFamily(opts, cfg,
				ident.ID(n-1), 10400*time.Millisecond, 10*time.Second, 30*time.Second,
				func(err error) error { return fmt.Errorf("E8 %v: %w", kind, err) }))
		}
	}
	stats, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, n := range ns {
		row := []string{strconv.Itoa(n)}
		for _, kind := range []Kind{KindAsync, KindHeartbeat} {
			cell := fmt.Sprintf("n=%d/%s", n, kind)
			var spreads, maxes []float64
			for r := 0; r < opts.runs(); r++ {
				s := stats[k]
				k++
				spreads = append(spreads, qos.Millis(s.Max-s.Min))
				maxes = append(maxes, qos.Millis(s.Max))
				opts.sample(cell, "spread_ms", r, qos.Millis(s.Max-s.Min))
				opts.sample(cell, "last_det_ms", r, qos.Millis(s.Max))
			}
			row = append(row, famMS(spreads), famMS(maxes))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// A1TagsAblation disables the counter-tag recency guards and replays stale
// suspicion messages after the system has converged: with the tags, stale
// information is discarded on arrival; without them, every replayed message
// resurrects a long-refuted suspicion and the whole network flaps again.
// The tags are exactly what lets accuracy stabilize in the presence of old
// messages — the asynchronous model allows arbitrarily delayed deliveries.
func A1TagsAblation(opts Options) (*Table, error) {
	n, f := 8, 2
	const (
		horizon = 90 * time.Second
		tailCut = 55 * time.Second
	)
	t := &Table{
		ID:      "A1",
		Title:   "ablation: counter tags on/off under stale-message replay",
		Note:    "disturbance of p3 during [20s,25s); ten stale suspicion messages replayed during [60s,65s); tail = [55s,90s]",
		Columns: []string{"variant", "tail transitions", "suspected pairs at end", "closed mistakes"},
	}
	type a1cell struct {
		tail  int
		pairs int
		mist  int
	}
	variants := []bool{false, true}
	var fams []family[a1cell]
	for _, disable := range variants {
		disable := disable
		cfg := ClusterConfig{
			Kind: KindAsync, N: n, F: f,
			Seed: opts.seed(),
			// A constant-delay base keeps the network itself mistake-free,
			// so every event in the tail is attributable to the replay.
			Delay: netsim.Disturbance{
				Base:   netsim.Constant{D: time.Millisecond},
				Nodes:  ident.SetOf(3),
				Start:  20 * time.Second,
				End:    25 * time.Second,
				Factor: 3000,
			},
			Window:      5 * time.Millisecond,
			Interval:    200 * time.Millisecond,
			DisableTags: disable,
		}
		fams = append(fams, family[a1cell]{
			warm: 18 * time.Second, // disturbance at 20s, replay at 60s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("A1: %w", err)
				}
				// Replay: an "old" query from p2 still carrying the long-refuted
				// suspicion ⟨p3, 1⟩ arrives at p5, ten times. Tag 1 is far below
				// the tags of p3's refutations from the disturbance. Scheduled at
				// build time, so the replay events are part of the checkpoint.
				stale := core.Query{From: 2, Round: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 1}}}
				for i := 0; i < 10; i++ {
					at := 60*time.Second + time.Duration(i)*500*time.Millisecond
					c.Sim.At(at, func() { c.Inject(5, 2, stale) })
				}
				return c, nil, nil
			},
			run: func(c *Cluster, _ *qos.GroundTruth) (a1cell, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				tail := 0
				for _, e := range c.Log.Events() {
					if e.At >= tailCut {
						tail++
					}
				}
				pairs := 0
				c.Members.ForEach(func(id ident.ID) bool {
					pairs += c.Detector(id).Suspects().Len()
					return true
				})
				mist := qos.Mistakes(c.Log, &qos.GroundTruth{}, c.Members, horizon)
				return a1cell{tail: tail, pairs: pairs, mist: mist.Count}, nil
			},
		})
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, disable := range variants {
		name, cell := "tags on (paper)", "tags=on"
		if disable {
			name, cell = "tags off (ablated)", "tags=off"
		}
		var tails, pairs, mists []float64
		for r := 0; r < opts.runs(); r++ {
			res := cells[k]
			k++
			tails = append(tails, float64(res.tail))
			pairs = append(pairs, float64(res.pairs))
			mists = append(mists, float64(res.mist))
			opts.sample(cell, "tail_transitions", r, float64(res.tail))
			opts.sample(cell, "suspected_pairs", r, float64(res.pairs))
			opts.sample(cell, "mistakes", r, float64(res.mist))
		}
		t.AddRow(name, famCount(tails), famCount(pairs), famCount(mists))
	}
	return t, nil
}

// A2WindowAblation sweeps the extra collection window added after the quorum
// (the Δ the paper family inserts between lines 7 and 8): longer windows
// trade detection latency for fewer false suspicions.
func A2WindowAblation(opts Options) (*Table, error) {
	n, f := 10, 3
	const horizon = 50 * time.Second
	t := &Table{
		ID:      "A2",
		Title:   "ablation: response collection window vs detection latency and accuracy",
		Note:    "n=10, f=3, exp(mean 2ms) delays; crash of p9 at t=20s",
		Columns: []string{"window", "det avg", "det max", "mistakes/pair/s", "PA"},
	}
	windows := []time.Duration{time.Nanosecond, 2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	if opts.Quick {
		windows = []time.Duration{time.Nanosecond, 10 * time.Millisecond}
	}
	type a2cell struct {
		det  qos.DetectionStats
		rate float64
		pa   float64
	}
	var fams []family[a2cell]
	for _, w := range windows {
		cfg := ClusterConfig{
			Kind: KindAsync, N: n, F: f,
			Seed:     opts.seed(),
			Delay:    netsim.Exponential{Min: 500 * time.Microsecond, Mean: 2 * time.Millisecond, Cap: 500 * time.Millisecond},
			Window:   w,
			Interval: 200 * time.Millisecond,
		}
		fams = append(fams, family[a2cell]{
			warm: 18 * time.Second, // crash at 20s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("A2: %w", err)
				}
				return c, c.Apply(faults.Schedule{}.CrashAt(ident.ID(n-1), 20*time.Second)), nil
			},
			run: func(c *Cluster, truth *qos.GroundTruth) (a2cell, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				observers := c.Members.Clone()
				observers.Remove(ident.ID(n - 1))
				judge := qos.JudgeFrom(c.Log)
				return a2cell{
					det:  judge.DetectionTimes(truth, ident.ID(n-1), observers),
					rate: judge.Mistakes(truth, c.Members, horizon).Rate,
					pa:   judge.QueryAccuracy(truth, c.Members, horizon),
				}, nil
			},
		})
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, w := range windows {
		label := "0"
		if w > time.Nanosecond {
			label = ms(w)
		}
		cellKey := fmt.Sprintf("window=%s", label)
		var dets []qos.DetectionStats
		var avgs, rates, pas []float64
		for r := 0; r < opts.runs(); r++ {
			res := cells[k]
			k++
			dets = append(dets, res.det)
			avgs = append(avgs, qos.Millis(res.det.Avg))
			rates = append(rates, res.rate)
			pas = append(pas, res.pa)
			opts.sampleDetection(cellKey, "det", r, res.det)
			opts.sample(cellKey, "mistake_rate", r, res.rate)
			opts.sample(cellKey, "query_accuracy", r, res.pa)
		}
		agg := aggregateDetection(dets)
		t.AddRow(label, famMS(avgs), ms(agg.Max), famCell("%.4f", "", rates), famCell("%.3f", "", pas))
	}
	return t, nil
}
