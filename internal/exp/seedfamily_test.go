package exp

// seedfamily_test.go covers the many-seed confidence-interval machinery:
// the Repeat knob, sample collection, and the engine guarantee extended to
// the asyncfd-bench/v2 aggregate rows — byte-identical serial vs. parallel.

import (
	"encoding/json"
	"testing"

	"asyncfd/internal/stats"
)

// TestRepeatControlsFamilySize: Repeat overrides the per-cell seed-family
// size, multiplying the simulation count accordingly.
func TestRepeatControlsFamilySize(t *testing.T) {
	var eng EngineStats
	opts := Options{Quick: true, Repeat: 2, Stats: &eng}
	if got := opts.Runs(); got != 2 {
		t.Fatalf("Runs() = %d, want 2", got)
	}
	if _, err := E1DetectionVsN(opts); err != nil {
		t.Fatal(err)
	}
	// Quick E1: 2 sizes × 4 detectors × Repeat = 16 simulations.
	if got := eng.Runs.Load(); got != 16 {
		t.Errorf("Runs = %d, want 16", got)
	}
	if (Options{Quick: true}).Runs() != 1 || (Options{}).Runs() != 3 {
		t.Error("Repeat=0 must keep the historical defaults (quick 1, full 3)")
	}
}

// v2RowsJSON runs the sampled experiments at the given worker count and
// returns their aggregate rows serialized to JSON — the exact bytes
// cmd/fdbench would emit as asyncfd-bench/v2 rows (modulo field naming).
func v2RowsJSON(t *testing.T, workers int) string {
	t.Helper()
	col := &stats.Collector{}
	opts := Options{Quick: true, Seed: 5, Repeat: 3, Parallel: workers, Samples: col}
	for _, fn := range []func(Options) (*Table, error){E1DetectionVsN, E3Disturbance, E4QoS, A2WindowAblation, R1CrashRecovery} {
		if _, err := fn(opts); err != nil {
			t.Fatal(err)
		}
	}
	b, err := json.Marshal(col.Rows())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestV2RowsByteIdenticalSerialParallel pins the v2 guarantee: the
// aggregated seed-family rows of E1/E4/R1 serialize to the same bytes at
// any worker count.
func TestV2RowsByteIdenticalSerialParallel(t *testing.T) {
	serial := v2RowsJSON(t, 0)
	if serial == "null" || serial == "[]" {
		t.Fatal("no rows collected")
	}
	for _, workers := range []int{2, -1} {
		if parallel := v2RowsJSON(t, workers); parallel != serial {
			t.Fatalf("v2 rows (workers=%d) differ from serial", workers)
		}
	}
}

// TestSeedFamilyRowShape checks the statistical content of the collected
// rows: family size R, a real spread across seeds, and a CI half-width
// consistent with the Student-t critical value for R−1 degrees of freedom.
func TestSeedFamilyRowShape(t *testing.T) {
	col := &stats.Collector{}
	opts := Options{Quick: true, Seed: 1, Repeat: 3, Samples: col}
	if _, err := E1DetectionVsN(opts); err != nil {
		t.Fatal(err)
	}
	rows := col.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	spread := false
	for _, r := range rows {
		if r.N != 3 {
			t.Fatalf("row %s/%s: N = %d, want 3", r.Cell, r.Metric, r.N)
		}
		if r.Min > r.P50 || r.P50 > r.Max || r.Mean < r.Min || r.Mean > r.Max {
			t.Fatalf("row %s/%s: inconsistent order stats %+v", r.Cell, r.Metric, r.Summary)
		}
		if r.StdErr > 0 {
			spread = true
			want := stats.TCritical95(r.N-1) * r.StdErr
			if diff := r.CI95 - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("row %s/%s: CI95 = %v, want t×stderr = %v", r.Cell, r.Metric, r.CI95, want)
			}
		}
	}
	if !spread {
		t.Error("every family has zero spread — seeds are not being varied")
	}
}

// TestAllResultsCarriesRows: the sweep-level API must attach EVERY
// experiment's rows to its own Result — since PR 4 the whole sweep
// (E1–E8, ablations, scenarios, extensions, large-n) records samples —
// AND forward every sample to the caller's collector.
func TestAllResultsCarriesRows(t *testing.T) {
	col := &stats.Collector{}
	results, err := AllResults(Options{Quick: true, Parallel: 2, Samples: col})
	if err != nil {
		t.Fatal(err)
	}
	sampled := map[string]bool{}
	total := 0
	for _, r := range results {
		if len(r.Rows) > 0 {
			sampled[r.ID] = true
		}
		total += len(r.Rows)
	}
	for _, e := range Experiments() {
		if !sampled[e.ID] {
			t.Errorf("experiment %s carries no rows", e.ID)
		}
	}
	// The caller's collector must see the union of all experiments'
	// samples; (cell, metric) families are currently disjoint across
	// experiments, so its row count is the sum of per-experiment rows.
	if got := len(col.Rows()); got != total {
		t.Errorf("caller collector aggregates to %d rows, want %d (sum of per-experiment rows)", got, total)
	}
}
