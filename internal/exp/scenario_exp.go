package exp

// scenario_exp.go holds the fault-scenario sweeps enabled by the generalized
// fault subsystem (internal/faults.Schedule): crash-recovery restarts and
// partition/heal windows, measured with the interval-based recovery metrics
// of internal/qos. Like every other table they decompose into seed-addressed
// jobs on the shared runner, so parallel output is byte-identical to serial.

import (
	"fmt"
	"strconv"
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/qos"
)

// R1CrashRecovery is the crash-recovery sweep: one process crashes, comes
// back (with fresh or persisted detector state) and crashes again. For every
// detector kind and state mode the table reports the initial detection time,
// the trust-restoration time after the restart, the re-detection time of the
// second crash, and the mistake storm the restart provokes while the process
// is back up.
func R1CrashRecovery(opts Options) (*Table, error) {
	n, f := 8, 2
	if opts.Quick {
		n, f = 6, 2
	}
	const (
		crash1    = 10 * time.Second
		recoverAt = 20 * time.Second
		crash2    = 35 * time.Second
		horizon   = 50 * time.Second
	)
	victim := ident.ID(n - 1)
	t := &Table{
		ID:    "R1",
		Title: "crash-recovery: detection, trust restoration and re-detection per detector",
		Note: fmt.Sprintf("n=%d, f=%d; %v crashes at 10s, recovers at 20s (fresh or persisted state), crashes again at 35s; "+
			"storm = false-suspicion episodes while it is back up", n, f, victim),
		Columns: []string{"detector", "state", "det#1 avg", "restore avg", "det#2 avg", "det#2 missing", "storm"},
	}
	modes := []struct {
		name  string
		fresh bool
	}{{"fresh", true}, {"persisted", false}}
	type r1cell struct {
		det1, restore, det2 qos.DetectionStats
		storm               int
	}
	var fams []family[r1cell]
	for _, kind := range AllKinds() {
		kind := kind
		for _, mode := range modes {
			mode := mode
			cfg := ClusterConfig{
				Kind: kind, N: n, F: f,
				Seed:  opts.seed(),
				Delay: defaultDelay(),
			}
			fams = append(fams, family[r1cell]{
				warm: 9 * time.Second, // first crash at 10s
				build: func() (*Cluster, *qos.GroundTruth, error) {
					c, err := NewCluster(cfg)
					if err != nil {
						return nil, nil, fmt.Errorf("R1 %v/%s: %w", kind, mode.name, err)
					}
					truth := c.Apply(faults.Schedule{}.
						CrashAt(victim, crash1).
						RecoverAt(victim, recoverAt, mode.fresh).
						CrashAt(victim, crash2))
					return c, truth, nil
				},
				run: func(c *Cluster, truth *qos.GroundTruth) (r1cell, error) {
					c.RunUntil(horizon)
					opts.record(c.Sim)
					observers := c.Members.Clone()
					observers.Remove(victim)
					judge := qos.JudgeFrom(c.Log) // one trace pass for all four metrics
					return r1cell{
						det1:    judge.RedetectionTimes(truth, victim, observers, 0),
						restore: judge.TrustRestorationTimes(truth, victim, observers, 0),
						det2:    judge.RedetectionTimes(truth, victim, observers, 1),
						storm:   judge.MistakeStorm(truth, c.Members, recoverAt, crash2),
					}, nil
				},
			})
		}
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, kind := range AllKinds() {
		for _, mode := range modes {
			cellKey := fmt.Sprintf("%s/%s", kind, mode.name)
			var det2 []qos.DetectionStats
			var det1Avgs, restoreAvgs, det2Avgs, storms []float64
			for r := 0; r < opts.runs(); r++ {
				cell := cells[k]
				k++
				det2 = append(det2, cell.det2)
				det1Avgs = append(det1Avgs, qos.Millis(cell.det1.Avg))
				restoreAvgs = append(restoreAvgs, qos.Millis(cell.restore.Avg))
				det2Avgs = append(det2Avgs, qos.Millis(cell.det2.Avg))
				storms = append(storms, float64(cell.storm))
				opts.sampleDetection(cellKey, "det1", r, cell.det1)
				opts.sampleDetection(cellKey, "restore", r, cell.restore)
				opts.sampleDetection(cellKey, "det2", r, cell.det2)
				opts.sample(cellKey, "storm", r, float64(cell.storm))
			}
			d2 := aggregateDetection(det2)
			t.AddRow(kind.String(), mode.name,
				famMS(det1Avgs), famMS(restoreAvgs), famMS(det2Avgs),
				strconv.Itoa(d2.Missing),
				famCell("%.1f", "", storms))
		}
	}
	return t, nil
}

// R2PartitionHeal is the partition/heal sweep: a minority island is cut off
// for a window, then the partition heals. The majority side still reaches
// the async detector's quorum, so it storms suspicions of the minority just
// like the timer-based detectors time the minority out; the table reports
// the storm size, how long after the heal the last wrongful suspicion is
// corrected, and whether every run re-converged cleanly.
func R2PartitionHeal(opts Options) (*Table, error) {
	n, f := 8, 2
	if opts.Quick {
		n, f = 6, 2
	}
	const (
		splitAt = 15 * time.Second
		healAt  = 30 * time.Second
		horizon = 60 * time.Second
	)
	// Minority island: the last max(1, n/4) processes. The majority keeps
	// ≥ n−f processes, so async quorums still terminate on that side.
	minority := make([]ident.ID, 0, n/4)
	for i := n - n/4; i < n; i++ {
		minority = append(minority, ident.ID(i))
	}
	t := &Table{
		ID:    "R2",
		Title: "partition/heal: mistake storm and re-convergence per detector",
		Note: fmt.Sprintf("n=%d, f=%d; %d-process minority island cut off during [15s,30s); "+
			"storm = false-suspicion episodes beginning in the window; reconverge = settle time after the heal", n, f, len(minority)),
		Columns: []string{"detector", "storm", "reconverge avg", "reconverge max", "clean runs"},
	}
	type r2cell struct {
		storm  int
		settle time.Duration
		clean  bool
	}
	var fams []family[r2cell]
	for _, kind := range AllKinds() {
		kind := kind
		cfg := ClusterConfig{
			Kind: kind, N: n, F: f,
			Seed:  opts.seed(),
			Delay: defaultDelay(),
			// The minority island cannot reach the quorum while cut off;
			// rebroadcast lets its stalled queries complete after the
			// heal instead of blocking forever (the mobility extension's
			// re-query rule).
			Rebroadcast: 2 * time.Second,
		}
		fams = append(fams, family[r2cell]{
			warm: 14 * time.Second, // partition at 15s
			build: func() (*Cluster, *qos.GroundTruth, error) {
				c, err := NewCluster(cfg)
				if err != nil {
					return nil, nil, fmt.Errorf("R2 %v: %w", kind, err)
				}
				truth := c.Apply(faults.Schedule{}.
					PartitionAt(splitAt, minority).
					HealAt(healAt))
				return c, truth, nil
			},
			run: func(c *Cluster, truth *qos.GroundTruth) (r2cell, error) {
				c.RunUntil(horizon)
				opts.record(c.Sim)
				judge := qos.JudgeFrom(c.Log)
				settle, clean := judge.Reconvergence(truth, c.Members, healAt)
				return r2cell{
					storm:  judge.MistakeStorm(truth, c.Members, splitAt, healAt),
					settle: settle,
					clean:  clean,
				}, nil
			},
		})
	}
	cells, err := runFamilies(opts, fams)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, kind := range AllKinds() {
		cellKey := kind.String()
		cleanRuns := 0
		var settleMax time.Duration
		var storms, settles []float64
		for r := 0; r < opts.runs(); r++ {
			cell := cells[k]
			k++
			storms = append(storms, float64(cell.storm))
			settles = append(settles, qos.Millis(cell.settle))
			if cell.settle > settleMax {
				settleMax = cell.settle
			}
			if cell.clean {
				cleanRuns++
			}
			opts.sample(cellKey, "storm", r, float64(cell.storm))
			opts.sample(cellKey, "reconverge_ms", r, qos.Millis(cell.settle))
			clean := 0.0
			if cell.clean {
				clean = 1
			}
			opts.sample(cellKey, "clean", r, clean)
		}
		t.AddRow(kind.String(),
			famCell("%.1f", "", storms),
			famMS(settles), ms(settleMax),
			fmt.Sprintf("%d/%d", cleanRuns, opts.runs()))
	}
	return t, nil
}
