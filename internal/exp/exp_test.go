package exp

import (
	"strings"
	"testing"
	"time"

	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

var quick = Options{Quick: true}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindAsync:     "async",
		KindHeartbeat: "heartbeat",
		KindPhi:       "phi-accrual",
		KindChen:      "chen-nfde",
		Kind(9):       "Kind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(AllKinds()) != 4 {
		t.Error("AllKinds must list the four implementations")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Note: "a note", Columns: []string{"a", "long-column"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333333", "4")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== T: demo ==", "a note", "long-column", "333333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Kind: KindAsync, N: 4, F: 1}); err == nil {
		t.Error("missing Delay accepted")
	}
	if _, err := NewCluster(ClusterConfig{Kind: KindAsync, N: 1, F: 0, Delay: netsim.Constant{}}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := NewCluster(ClusterConfig{Kind: Kind(9), N: 4, F: 1, Delay: netsim.Constant{}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestClusterEachKindDetectsCrash(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{
				Kind: kind, N: 5, F: 1, Seed: 7,
				Delay: netsim.Constant{D: time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			truth := c.Apply(faults.Schedule{}.CrashAt(4, 5*time.Second))
			c.RunUntil(30 * time.Second)
			st := qos.DetectionTimes(c.Log, truth, 4, ident.SetOf(0, 1, 2, 3))
			if st.Count != 4 || st.Missing != 0 {
				t.Fatalf("detection stats = %+v", st)
			}
			if !c.Detector(0).IsSuspected(4) {
				t.Error("detector output does not reflect the crash")
			}
		})
	}
}

func TestClusterEachKindSurvivesCrashRecovery(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		for _, fresh := range []bool{true, false} {
			fresh := fresh
			name := kind.String() + "/persisted"
			if fresh {
				name = kind.String() + "/fresh"
			}
			t.Run(name, func(t *testing.T) {
				c, err := NewCluster(ClusterConfig{
					Kind: kind, N: 5, F: 1, Seed: 7,
					Delay: netsim.Constant{D: time.Millisecond},
				})
				if err != nil {
					t.Fatal(err)
				}
				victim := ident.ID(4)
				observers := ident.SetOf(0, 1, 2, 3)
				truth := c.Apply(faults.Schedule{}.
					CrashAt(victim, 5*time.Second).
					RecoverAt(victim, 15*time.Second, fresh).
					CrashAt(victim, 30*time.Second))
				c.RunUntil(50 * time.Second)

				det1 := qos.RedetectionTimes(c.Log, truth, victim, observers, 0)
				if det1.Count != 4 || det1.Missing != 0 {
					t.Fatalf("crash #1 detection = %+v", det1)
				}
				rst := qos.TrustRestorationTimes(c.Log, truth, victim, observers, 0)
				if rst.Missing != 0 || rst.Count == 0 {
					t.Fatalf("trust restoration = %+v; observers never re-trusted the restarted process", rst)
				}
				det2 := qos.RedetectionTimes(c.Log, truth, victim, observers, 1)
				if det2.Count != 4 || det2.Missing != 0 {
					t.Fatalf("crash #2 re-detection = %+v", det2)
				}
				if !c.Detector(0).IsSuspected(victim) {
					t.Error("detector output does not reflect the second crash")
				}
			})
		}
	}
}

func TestClusterPartitionHealAllKindsReconverge(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{
				Kind: kind, N: 6, F: 2, Seed: 3,
				Delay:       netsim.Constant{D: time.Millisecond},
				Rebroadcast: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			truth := c.Apply(faults.Schedule{}.
				PartitionAt(10*time.Second, []ident.ID{5}).
				HealAt(20 * time.Second))
			c.RunUntil(45 * time.Second)
			storm := qos.MistakeStorm(c.Log, truth, c.Members, 10*time.Second, 20*time.Second)
			if storm == 0 {
				t.Error("partition produced no false suspicions of the cut-off minority")
			}
			settle, clean := qos.Reconvergence(c.Log, truth, c.Members, 20*time.Second)
			if !clean {
				t.Errorf("cluster did not re-converge after the heal (settle=%v)", settle)
			}
			c.Members.ForEach(func(id ident.ID) bool {
				if n := c.Detector(id).Suspects().Len(); n != 0 {
					t.Errorf("%v still suspects %d processes at the end", id, n)
				}
				return true
			})
		})
	}
}

func TestR1(t *testing.T) {
	tbl, err := R1CrashRecovery(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 4 detectors × 2 state modes
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "0" {
			t.Errorf("row %v: some observer never re-detected the second crash", row)
		}
	}
}

func TestR2(t *testing.T) {
	tbl, err := R2PartitionHeal(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 detectors", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !strings.HasSuffix(row[4], "/1") || strings.HasPrefix(row[4], "0/") {
			t.Errorf("row %v: runs did not re-converge cleanly", row)
		}
	}
}

func TestE1(t *testing.T) {
	tbl, err := E1DetectionVsN(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (quick)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("row %v has %d cells, want %d", row, len(row), len(tbl.Columns))
		}
	}
}

func TestE2(t *testing.T) {
	tbl, err := E2DetectionVsF(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE3SeriesShape(t *testing.T) {
	tbl, err := E3Disturbance(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 31 {
		t.Fatalf("rows = %d, want 31 samples", len(tbl.Rows))
	}
	// The async series must rise during the disturbance and return to zero
	// by the end (self-correction).
	peak := 0
	for _, row := range tbl.Rows {
		v := atoi(t, row[1])
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		t.Error("async series never rose during the disturbance")
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if atoi(t, last[1]) != 0 {
		t.Errorf("async false suspicions did not return to zero: %v", last)
	}
	if atoi(t, last[2]) != 0 {
		t.Errorf("heartbeat false suspicions did not return to zero: %v", last)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func TestE4(t *testing.T) {
	tbl, err := E4QoS(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 16 { // 4 models × 4 detectors
		t.Fatalf("rows = %d, want 16", len(tbl.Rows))
	}
}

func TestE5(t *testing.T) {
	tbl, err := E5MessageCost(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 2 sizes × 4 detectors
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
}

func TestE6(t *testing.T) {
	tbl, err := E6MPSensitivity(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 bias levels", len(tbl.Rows))
	}
	// Under strong MP the accuracy must hold in the quick run.
	if !strings.HasPrefix(tbl.Rows[0][1], "1/1") {
		t.Errorf("strong-MP row = %v, want accuracy to hold", tbl.Rows[0])
	}
}

func TestE7(t *testing.T) {
	tbl, err := E7Consensus(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 detectors", len(tbl.Rows))
	}
}

func TestE8(t *testing.T) {
	tbl, err := E8Propagation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (quick)", len(tbl.Rows))
	}
}

func TestA1TagsMatter(t *testing.T) {
	tbl, err := A1TagsAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	on := atoi(t, tbl.Rows[0][1])
	off := atoi(t, tbl.Rows[1][1])
	if on >= off && off != 0 {
		t.Errorf("tail transitions: tags-on=%d tags-off=%d; ablation should flap more", on, off)
	}
	if on != 0 {
		t.Errorf("tags-on run still flapping in tail: %d transitions", on)
	}
}

func TestA2(t *testing.T) {
	tbl, err := A2WindowAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestDeterministicTables(t *testing.T) {
	a, err := E2DetectionVsF(quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E2DetectionVsF(quick)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := a.Render(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Errorf("same options produced different tables:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}

func TestX1(t *testing.T) {
	tbl, err := X1DensityExt(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 densities (quick)", len(tbl.Rows))
	}
}

func TestX2MobilityConverges(t *testing.T) {
	tbl, err := X2MobilityExt(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty series")
	}
	// Both detectors must spike during the move and converge to zero.
	asyncPeak, gossipPeak := 0, 0
	for _, row := range tbl.Rows {
		if v := atoi(t, row[1]); v > asyncPeak {
			asyncPeak = v
		}
		if v := atoi(t, row[2]); v > gossipPeak {
			gossipPeak = v
		}
	}
	if asyncPeak == 0 || gossipPeak == 0 {
		t.Errorf("peaks async=%d gossip=%d; the move produced no false suspicions", asyncPeak, gossipPeak)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if atoi(t, last[1]) != 0 {
		t.Errorf("async series did not converge to zero: %v", last)
	}
	if atoi(t, last[2]) != 0 {
		t.Errorf("gossip series did not converge to zero: %v", last)
	}
}
