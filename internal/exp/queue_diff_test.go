package exp

import (
	"bytes"
	"fmt"
	"testing"

	"asyncfd/internal/des"
	"asyncfd/internal/stats"
)

// queue_diff_test.go is the experiment-level half of the DES queue
// differential harness: the kernel's calendar/ladder queue (the default)
// must be indistinguishable from the binary-heap reference across the FULL
// quick sweep — every v1 table byte and every asyncfd-bench/v2 metric row,
// at any worker-pool size. CI additionally runs the same comparison through
// the fdbench binary (DES_QUEUE escape hatch); see .github/workflows/ci.yml.

// sweepFingerprint renders the entire quick sweep — all 17 experiments'
// tables plus their v2 rows — into one byte string under the given queue
// implementation and worker-pool size.
func sweepFingerprint(t *testing.T, kind des.QueueKind, parallel int) string {
	t.Helper()
	prev := des.DefaultQueue()
	des.SetDefaultQueue(kind)
	defer des.SetDefaultQueue(prev)

	results, err := AllResults(Options{
		Quick:    true,
		Seed:     1,
		Parallel: parallel,
		Repeat:   2, // exercise seed families so v2 rows carry real spread
		Samples:  &stats.Collector{},
	})
	if err != nil {
		t.Fatalf("AllResults(%v, parallel=%d): %v", kind, parallel, err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		if err := r.Table.Render(&buf); err != nil {
			t.Fatalf("render %s: %v", r.ID, err)
		}
		for _, row := range r.Rows {
			fmt.Fprintf(&buf, "%s %s %s n=%d mean=%v stderr=%v ci95=%v p50=%v p99=%v min=%v max=%v\n",
				r.ID, row.Cell, row.Metric, row.N, row.Mean, row.StdErr, row.CI95, row.P50, row.P99, row.Min, row.Max)
		}
	}
	return buf.String()
}

// TestSweepByteIdenticalAcrossQueues runs the full quick sweep under the
// heap and ladder queues at -parallel 1 and -parallel 8 and asserts the
// rendered tables and v2 rows are byte-identical in all four combinations.
// This is the acceptance bar for the ladder being the default: the queue is
// a pure performance knob, never a behavior change.
func TestSweepByteIdenticalAcrossQueues(t *testing.T) {
	baseline := sweepFingerprint(t, des.QueueHeap, 1)
	if baseline == "" {
		t.Fatal("empty sweep fingerprint")
	}
	for _, tc := range []struct {
		name     string
		kind     des.QueueKind
		parallel int
	}{
		{"ladder/parallel=1", des.QueueLadder, 1},
		{"heap/parallel=8", des.QueueHeap, 8},
		{"ladder/parallel=8", des.QueueLadder, 8},
	} {
		if got := sweepFingerprint(t, tc.kind, tc.parallel); got != baseline {
			t.Errorf("%s: sweep output differs from heap/parallel=1 baseline\n%s",
				tc.name, firstDiffLine(baseline, got))
		}
	}
}

// firstDiffLine locates the first differing line of two fingerprints, so a
// failure names the experiment/cell instead of dumping two full sweeps.
func firstDiffLine(a, b string) string {
	al, bl := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  baseline: %s\n  got:      %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: baseline %d, got %d", len(al), len(bl))
}
