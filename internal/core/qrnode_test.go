package core

import (
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/trace"
)

// simCluster wires n query-response nodes over a simulated network.
type simCluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	nodes []*Node
	log   *trace.Log
}

func newSimCluster(t *testing.T, seed int64, n, f int, delay netsim.DelayModel, window, interval time.Duration) *simCluster {
	t.Helper()
	c := &simCluster{
		sim: des.New(seed),
		log: &trace.Log{},
	}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		cfg := NodeConfig{
			Detector: Config{Self: id, Membership: KnownMembership, N: n, F: f},
			Window:   window,
			Interval: interval,
			Sink:     c.log,
		}
		// Two-phase registration: the env needs the handler, the node needs
		// the env.
		var nd *Node
		env := c.net.AddNode(id, nodeHandlerProxy{&nd})
		node, err := NewNode(env, cfg)
		if err != nil {
			t.Fatalf("NewNode(%v): %v", id, err)
		}
		nd = node
		c.nodes[i] = node
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

// nodeHandlerProxy defers handler resolution until after construction.
type nodeHandlerProxy struct{ n **Node }

func (p nodeHandlerProxy) Deliver(from ident.ID, payload any) {
	if *p.n != nil {
		(*p.n).Deliver(from, payload)
	}
}

func (c *simCluster) crashAt(id ident.ID, at time.Duration) {
	c.sim.At(at, func() { c.net.Crash(id) })
}

func (c *simCluster) run(until time.Duration) { c.sim.RunUntil(until) }

func TestClusterCompleteness(t *testing.T) {
	// n=5, f=1: p4 crashes at 2s. Every correct process must eventually and
	// permanently suspect p4 (strong completeness).
	c := newSimCluster(t, 42, 5, 1,
		netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond},
		10*time.Millisecond, 100*time.Millisecond)
	c.crashAt(4, 2*time.Second)
	c.run(20 * time.Second)

	for i := 0; i < 4; i++ {
		nd := c.nodes[i]
		if !nd.IsSuspected(4) {
			t.Errorf("node %d does not suspect crashed p4; suspects=%v", i, nd.Suspects())
		}
		// Permanence: the last transition about p4 is a suspicion, recorded
		// after the crash.
		last, ok := c.log.LastTransition(ident.ID(i), 4)
		if !ok || !last.Suspected {
			t.Errorf("node %d last transition about p4 = %+v, want suspicion", i, last)
		}
		if last.At < 2*time.Second {
			t.Errorf("node %d final suspicion at %v, before the crash", i, last.At)
		}
	}
}

func TestClusterEventualWeakAccuracyUnderMP(t *testing.T) {
	// The favored process p0 always answers fastest (message-pattern
	// assumption holds from the start), so no process ever suspects p0.
	delay := netsim.Bias{
		Base:    netsim.Uniform{Min: time.Millisecond, Max: 20 * time.Millisecond},
		Fast:    netsim.Constant{D: 100 * time.Microsecond},
		Favored: ident.SetOf(0),
	}
	c := newSimCluster(t, 7, 5, 1, delay, 0, 50*time.Millisecond)
	c.run(20 * time.Second)

	for _, e := range c.log.Events() {
		if e.Subject == 0 && e.Suspected {
			t.Fatalf("favored process suspected: %v", e)
		}
	}
	for i, nd := range c.nodes {
		if nd.IsSuspected(0) {
			t.Errorf("node %d suspects the favored process", i)
		}
	}
}

func TestClusterNoFalseSuspicionsWithGenerousWindow(t *testing.T) {
	// With a window larger than any possible delay spread and no crash,
	// every response is collected and the run is suspicion-free.
	c := newSimCluster(t, 3, 4, 1,
		netsim.Uniform{Min: time.Millisecond, Max: 10 * time.Millisecond},
		50*time.Millisecond, 50*time.Millisecond)
	c.run(10 * time.Second)
	if got := c.log.Len(); got != 0 {
		t.Errorf("recorded %d suspicion events in a crash-free generous-window run:\n%s", got, c.log)
	}
	for _, nd := range c.nodes {
		if nd.Rounds() == 0 {
			t.Error("a node completed zero rounds")
		}
	}
}

func TestClusterDisturbanceSelfCorrects(t *testing.T) {
	// p3 is transiently slowed ×100 during [3s, 6s): it gets falsely
	// suspected, then its self-refutation floods and clears every suspicion.
	delay := netsim.Disturbance{
		Base:   netsim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond},
		Nodes:  ident.SetOf(3),
		Start:  3 * time.Second,
		End:    6 * time.Second,
		Factor: 100,
	}
	c := newSimCluster(t, 11, 5, 1, delay, 10*time.Millisecond, 100*time.Millisecond)
	c.run(30 * time.Second)

	suspectedDuring := false
	for _, e := range c.log.Events() {
		if e.Subject == 3 && e.Suspected {
			suspectedDuring = true
			break
		}
	}
	if !suspectedDuring {
		t.Fatal("disturbance produced no false suspicion; scenario too weak")
	}
	for i, nd := range c.nodes {
		if nd.IsSuspected(3) {
			t.Errorf("node %d still suspects p3 long after the disturbance; log:\n%s", i, c.log)
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	runTrace := func() string {
		c := newSimCluster(t, 99, 5, 2,
			netsim.Exponential{Min: time.Millisecond, Mean: 4 * time.Millisecond, Cap: 80 * time.Millisecond},
			2*time.Millisecond, 20*time.Millisecond)
		c.crashAt(2, time.Second)
		c.run(5 * time.Second)
		return c.log.String()
	}
	a, b := runTrace(), runTrace()
	if a != b {
		t.Errorf("same seed produced different traces:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

func TestClusterStopHaltsQuerying(t *testing.T) {
	c := newSimCluster(t, 5, 3, 1, netsim.Constant{D: time.Millisecond}, 0, 10*time.Millisecond)
	c.run(time.Second)
	rounds := c.nodes[0].Rounds()
	if rounds == 0 {
		t.Fatal("no rounds before Stop")
	}
	c.nodes[0].Stop()
	c.run(2 * time.Second)
	if got := c.nodes[0].Rounds(); got != rounds {
		t.Errorf("rounds advanced after Stop: %d -> %d", rounds, got)
	}
	// A stopped node keeps answering queries, so others do not suspect it.
	if c.nodes[1].IsSuspected(0) || c.nodes[2].IsSuspected(0) {
		t.Error("stopped (but alive) node became suspected")
	}
}

func TestNewNodeIdentityMismatch(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	env := net.AddNode(3, nodeHandlerProxy{new(*Node)})
	_, err := NewNode(env, NodeConfig{Detector: Config{Self: 0, N: 4, F: 1}})
	if err == nil {
		t.Error("NewNode with mismatched identity succeeded")
	}
}

func TestNewNodeBadDetectorConfig(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	env := net.AddNode(0, nodeHandlerProxy{new(*Node)})
	_, err := NewNode(env, NodeConfig{Detector: Config{Self: 0, N: 1, F: 0}})
	if err == nil {
		t.Error("NewNode with invalid detector config succeeded")
	}
}

func TestTwoProcessCluster(t *testing.T) {
	// n=2, f=1: quorum is 1 (own response only). Rounds close immediately;
	// the peer is suspected as soon as its response misses the window, and
	// restored via refutation when its query arrives. The protocol must not
	// deadlock in this degenerate configuration.
	c := newSimCluster(t, 13, 2, 1, netsim.Constant{D: 2 * time.Millisecond}, 5*time.Millisecond, 10*time.Millisecond)
	c.run(5 * time.Second)
	if c.nodes[0].Rounds() == 0 || c.nodes[1].Rounds() == 0 {
		t.Error("two-process cluster made no progress")
	}
}

func BenchmarkClusterSecond(b *testing.B) {
	// One simulated second of a 16-process cluster per iteration.
	for i := 0; i < b.N; i++ {
		sim := des.New(1)
		net := netsim.New(sim, netsim.Config{Delay: netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}})
		nodes := make([]*Node, 16)
		for j := 0; j < 16; j++ {
			id := ident.ID(j)
			var nd *Node
			env := net.AddNode(id, nodeHandlerProxy{&nd})
			n, err := NewNode(env, NodeConfig{
				Detector: Config{Self: id, N: 16, F: 5},
				Window:   5 * time.Millisecond,
				Interval: 100 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			nd = n
			nodes[j] = n
		}
		for _, n := range nodes {
			n.Start()
		}
		sim.RunUntil(time.Second)
	}
}

func TestNodeRestartFreshResetsAndConverges(t *testing.T) {
	c := newSimCluster(t, 5, 4, 1, netsim.Constant{D: time.Millisecond}, 5*time.Millisecond, 100*time.Millisecond)
	c.sim.At(2*time.Second, func() { c.net.Crash(3) })
	c.sim.RunUntil(5 * time.Second)
	if !c.nodes[0].IsSuspected(3) {
		t.Fatal("crash of p3 not detected")
	}
	c.sim.At(6*time.Second, func() {
		c.net.Recover(3)
		c.nodes[3].Restart(true)
	})
	c.sim.RunUntil(12 * time.Second)
	for i, nd := range c.nodes {
		if nd.IsSuspected(3) {
			t.Errorf("p%d still suspects the recovered p3", i)
		}
	}
	if n := c.nodes[3].Suspects().Len(); n != 0 {
		t.Errorf("fresh-restarted node kept %d suspicions", n)
	}
	if c.nodes[3].Rounds() == 0 {
		t.Error("restarted node never completed a round")
	}
}

func TestNodeRestartPersistedAbandonsInFlightRound(t *testing.T) {
	c := newSimCluster(t, 5, 4, 1, netsim.Constant{D: time.Millisecond}, 5*time.Millisecond, 100*time.Millisecond)
	// Crash p3 mid-run; its in-flight round (if any) must be abandoned on
	// the persisted restart without panicking BeginRound, and rounds resume.
	var before uint64
	c.sim.At(2*time.Second, func() { c.net.Crash(3) })
	c.sim.At(3*time.Second, func() { before = c.nodes[3].Rounds() })
	c.sim.At(4*time.Second, func() {
		c.net.Recover(3)
		c.nodes[3].Restart(false)
	})
	c.sim.RunUntil(10 * time.Second)
	if after := c.nodes[3].Rounds(); after <= before {
		t.Errorf("rounds did not advance after persisted restart: before=%d after=%d", before, after)
	}
	for i, nd := range c.nodes {
		if nd.IsSuspected(3) {
			t.Errorf("p%d still suspects the recovered p3", i)
		}
	}
}
