package tagset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asyncfd/internal/ident"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Has(1) {
		t.Fatal("zero Set not empty")
	}
	s.Add(1, 5)
	if got, ok := s.Get(1); !ok || got != 5 {
		t.Fatalf("Get(1) = %d,%v; want 5,true", got, ok)
	}
}

func TestAddReplaces(t *testing.T) {
	s := New()
	s.Add(3, 10)
	s.Add(3, 4) // paper's Add replaces unconditionally, even with older tag
	if got, _ := s.Get(3); got != 4 {
		t.Errorf("Add did not replace: tag = %d, want 4", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestAddInvalidIDNoop(t *testing.T) {
	s := New()
	s.Add(ident.Nil, 1)
	if s.Len() != 0 {
		t.Error("Add(Nil) inserted an entry")
	}
}

func TestRemove(t *testing.T) {
	s := New()
	s.Add(1, 1)
	if !s.Remove(1) {
		t.Error("Remove existing = false")
	}
	if s.Remove(1) {
		t.Error("Remove absent = true")
	}
	var zero Set
	if zero.Remove(9) {
		t.Error("Remove on zero set = true")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := New()
	s.Add(9, 1)
	s.Add(2, 7)
	s.Add(5, 3)
	es := s.Entries()
	if len(es) != 3 || es[0].ID != 2 || es[1].ID != 5 || es[2].ID != 9 {
		t.Errorf("Entries = %v, want sorted by id", es)
	}
	ids := s.IDs()
	if ids[0] != 2 || ids[1] != 5 || ids[2] != 9 {
		t.Errorf("IDs = %v, want [p2 p5 p9]", ids)
	}
}

func TestIDSet(t *testing.T) {
	s := New()
	s.Add(1, 1)
	s.Add(64, 2)
	bits := s.IDSet()
	if !bits.Has(1) || !bits.Has(64) || bits.Len() != 2 {
		t.Errorf("IDSet = %v", bits)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.Add(1, 1)
	c := s.Clone()
	c.Add(2, 2)
	c.Add(1, 9)
	if s.Has(2) {
		t.Error("Clone shares storage")
	}
	if got, _ := s.Get(1); got != 1 {
		t.Error("Clone mutation leaked into original")
	}
}

func TestClear(t *testing.T) {
	s := New()
	s.Add(1, 1)
	s.Add(2, 2)
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear left entries")
	}
	s.Add(3, 3)
	if !s.Has(3) {
		t.Error("set unusable after Clear")
	}
}

func TestForEachStop(t *testing.T) {
	s := New()
	s.Add(1, 1)
	s.Add(2, 2)
	s.Add(3, 3)
	n := 0
	s.ForEach(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Errorf("ForEach visited %d after stop, want 1", n)
	}
}

func TestString(t *testing.T) {
	s := New()
	s.Add(10, 5)
	s.Add(2, 7)
	if got := s.String(); got != "{⟨p2, 7⟩, ⟨p10, 5⟩}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{ID: 3, Tag: 17}
	if got := e.String(); got != "⟨p3, 17⟩" {
		t.Errorf("Entry.String = %q", got)
	}
}

// --- Merge-guard semantics (Algorithm 1 lines 22 and 33) ---

func TestFresherUnknownID(t *testing.T) {
	susp, mist := New(), New()
	if !Fresher(susp, mist, 4, 0) {
		t.Error("Fresher for unknown id = false; any info about an unknown id is fresh")
	}
	if !FresherOrEqual(susp, mist, 4, 0) {
		t.Error("FresherOrEqual for unknown id = false")
	}
}

func TestFresherStrict(t *testing.T) {
	susp, mist := New(), New()
	susp.Add(4, 10)
	tests := []struct {
		incoming Tag
		want     bool
	}{
		{9, false},
		{10, false}, // suspicions do NOT win ties
		{11, true},
	}
	for _, tt := range tests {
		if got := Fresher(susp, mist, 4, tt.incoming); got != tt.want {
			t.Errorf("Fresher(incoming=%d) = %v, want %v", tt.incoming, got, tt.want)
		}
	}
}

func TestFresherOrEqualTieGoesToMistake(t *testing.T) {
	susp, mist := New(), New()
	susp.Add(4, 10)
	tests := []struct {
		incoming Tag
		want     bool
	}{
		{9, false},
		{10, true}, // a mistake wins the tie against a suspicion
		{11, true},
	}
	for _, tt := range tests {
		if got := FresherOrEqual(susp, mist, 4, tt.incoming); got != tt.want {
			t.Errorf("FresherOrEqual(incoming=%d) = %v, want %v", tt.incoming, got, tt.want)
		}
	}
}

func TestFresherAgainstMistakeSet(t *testing.T) {
	susp, mist := New(), New()
	mist.Add(4, 10)
	if Fresher(susp, mist, 4, 10) {
		t.Error("suspicion with equal tag beat an existing mistake")
	}
	if !Fresher(susp, mist, 4, 11) {
		t.Error("strictly newer suspicion rejected")
	}
	if FresherOrEqual(susp, mist, 4, 9) {
		t.Error("older mistake accepted")
	}
	if !FresherOrEqual(susp, mist, 4, 10) {
		t.Error("equal mistake rejected (mistake should be re-appliable)")
	}
}

func TestCurrentTagBothSets(t *testing.T) {
	// Defensive path: if an id were in both sets, the larger tag governs.
	susp, mist := New(), New()
	susp.Add(4, 12)
	mist.Add(4, 8)
	if Fresher(susp, mist, 4, 12) {
		t.Error("incoming equal to max tag considered fresher")
	}
	if !Fresher(susp, mist, 4, 13) {
		t.Error("incoming above max tag rejected")
	}
	susp2, mist2 := New(), New()
	susp2.Add(4, 8)
	mist2.Add(4, 12)
	if Fresher(susp2, mist2, 4, 9) {
		t.Error("mistake tag ignored when larger")
	}
}

// --- Property tests ---

func TestQuickModelConformance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		model := make(map[ident.ID]Tag)
		for i := 0; i < 300; i++ {
			id := ident.ID(r.Intn(40))
			switch r.Intn(3) {
			case 0, 1:
				tag := Tag(r.Intn(100))
				s.Add(id, tag)
				model[id] = tag
			case 2:
				s.Remove(id)
				delete(model, id)
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for id, tag := range model {
			if got, ok := s.Get(id); !ok || got != tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFresherMonotone(t *testing.T) {
	// If incoming tag a is accepted and b > a, then b is accepted too.
	f := func(seed int64, a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		r := rand.New(rand.NewSource(seed))
		susp, mist := New(), New()
		id := ident.ID(1)
		if r.Intn(2) == 0 {
			susp.Add(id, Tag(r.Intn(1000)))
		} else {
			mist.Add(id, Tag(r.Intn(1000)))
		}
		if Fresher(susp, mist, id, Tag(a)) && !Fresher(susp, mist, id, Tag(b)) {
			return false
		}
		if FresherOrEqual(susp, mist, id, Tag(a)) && !FresherOrEqual(susp, mist, id, Tag(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFresherImpliesFresherOrEqual(t *testing.T) {
	f := func(hasSusp bool, cur uint16, incoming uint16) bool {
		susp, mist := New(), New()
		if hasSusp {
			susp.Add(2, Tag(cur))
		} else {
			mist.Add(2, Tag(cur))
		}
		if Fresher(susp, mist, 2, Tag(incoming)) && !FresherOrEqual(susp, mist, 2, Tag(incoming)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddGet(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := ident.ID(i % 128)
		s.Add(id, Tag(i))
		s.Get(id)
	}
}

func BenchmarkEntries(b *testing.B) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Add(ident.ID(i), Tag(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Entries()
	}
}
