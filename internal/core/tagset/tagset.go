// Package tagset implements the counter-stamped process sets at the heart of
// the time-free failure-detector protocol.
//
// The protocol maintains two such sets per process: suspected_i and
// mistake_i. Each element is a pair ⟨id, counter⟩ where counter is the value
// of the originator's logical round counter when the piece of information was
// generated. The counter is a recency tag: when two pieces of information
// about the same process meet, the one with the larger tag wins, and — per
// the paper — a *mistake* (refutation) wins a tie against a *suspicion*.
// These merge laws are what prevents stale suspicions from circulating
// forever in the flooding scheme.
package tagset

import (
	"fmt"
	"sort"
	"strings"

	"asyncfd/internal/ident"
)

// Tag is the logical counter stamped on each piece of suspicion/mistake
// information. Tags only grow; they are never compared across processes
// except through the merge rules below.
type Tag uint64

// Entry is one ⟨id, tag⟩ pair.
type Entry struct {
	ID  ident.ID
	Tag Tag
}

// String renders the entry like the paper's ⟨p3, 17⟩.
func (e Entry) String() string {
	return fmt.Sprintf("⟨%v, %d⟩", e.ID, uint64(e.Tag))
}

// Set is a set of ⟨id, tag⟩ pairs with at most one entry per id. The zero
// value is an empty set ready for use. Set is not safe for concurrent use.
type Set struct {
	m map[ident.ID]Tag
}

// New returns an empty set. Equivalent to the zero value; provided for
// symmetry with sized constructors elsewhere.
func New() *Set { return &Set{} }

func (s *Set) ensure() {
	if s.m == nil {
		s.m = make(map[ident.ID]Tag)
	}
}

// Add implements the paper's Add(set, ⟨id, counter⟩): it inserts ⟨id, tag⟩,
// replacing any existing entry for id regardless of its tag. Callers are
// responsible for recency checks; see MergeSuspicion/MergeMistake for the
// guarded variants used by task T2.
func (s *Set) Add(id ident.ID, tag Tag) {
	if !id.Valid() {
		return
	}
	s.ensure()
	s.m[id] = tag
}

// Remove deletes the entry for id, reporting whether one was present.
func (s *Set) Remove(id ident.ID) bool {
	if s.m == nil {
		return false
	}
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	return true
}

// Get returns the tag associated with id.
func (s *Set) Get(id ident.ID) (Tag, bool) {
	if s.m == nil {
		return 0, false
	}
	t, ok := s.m[id]
	return t, ok
}

// Has reports whether id has an entry.
func (s *Set) Has(id ident.ID) bool {
	_, ok := s.Get(id)
	return ok
}

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.m) }

// Clear removes all entries.
func (s *Set) Clear() {
	for id := range s.m {
		delete(s.m, id)
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{m: make(map[ident.ID]Tag, len(s.m))}
	for id, t := range s.m {
		out.m[id] = t
	}
	return out
}

// Entries returns the entries sorted by id (deterministic order for messages
// and tests).
func (s *Set) Entries() []Entry {
	out := make([]Entry, 0, len(s.m))
	for id, t := range s.m {
		out = append(out, Entry{ID: id, Tag: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the ids present, sorted ascending.
func (s *Set) IDs() []ident.ID {
	out := make([]ident.ID, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	return ident.SortIDs(out)
}

// IDSet returns the ids present as a bitset.
func (s *Set) IDSet() ident.Set {
	var out ident.Set
	for id := range s.m {
		out.Add(id)
	}
	return out
}

// ForEach visits entries in unspecified order. If fn returns false the
// iteration stops.
func (s *Set) ForEach(fn func(Entry) bool) {
	//fdlint:allow maprange ForEach documents unspecified order; order-sensitive callers must use Entries()
	for id, t := range s.m {
		if !fn(Entry{ID: id, Tag: t}) {
			return
		}
	}
}

// String renders the set with entries sorted by id.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Entries() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Fresher reports whether information tagged incoming about id is strictly
// more recent than whatever suspected and mistake currently record about id.
// This is the guard of Algorithm 1 line 22 (suspicion loop): the receiver
// takes a suspicion into account only if the id is unknown to both sets or
// the known tag is strictly smaller.
func Fresher(suspected, mistake *Set, id ident.ID, incoming Tag) bool {
	cur, ok := currentTag(suspected, mistake, id)
	return !ok || cur < incoming
}

// FresherOrEqual is the guard of Algorithm 1 line 33 (mistake loop): a
// mistake wins ties, so an incoming mistake is applied when the known tag is
// smaller or equal.
func FresherOrEqual(suspected, mistake *Set, id ident.ID, incoming Tag) bool {
	cur, ok := currentTag(suspected, mistake, id)
	return !ok || cur <= incoming
}

// currentTag returns the tag recorded for id across the pair of sets. At
// most one of the two sets holds id at any time in the protocol; if an
// invariant violation ever put id in both, the larger tag wins.
func currentTag(suspected, mistake *Set, id ident.ID) (Tag, bool) {
	st, sok := suspected.Get(id)
	mt, mok := mistake.Get(id)
	switch {
	case sok && mok:
		if st > mt {
			return st, true
		}
		return mt, true
	case sok:
		return st, true
	case mok:
		return mt, true
	default:
		return 0, false
	}
}
