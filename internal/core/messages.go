package core

import (
	"fmt"

	"asyncfd/internal/core/tagset"
	"asyncfd/internal/ident"
)

// Query is the message broadcast at the start of every round by task T1. It
// carries the sender's full suspicion and mistake knowledge, each entry
// stamped with the logical counter current when the information was
// generated. The flooding of these two sets inside queries is the only
// propagation mechanism of the protocol.
type Query struct {
	From      ident.ID
	Round     uint64 // unique per (From, query); pairs queries with responses
	Suspected []tagset.Entry
	Mistake   []tagset.Entry
}

// String renders a compact human-readable form for traces.
func (q Query) String() string {
	return fmt.Sprintf("QUERY(from=%v round=%d susp=%d mist=%d)", q.From, q.Round, len(q.Suspected), len(q.Mistake))
}

// Response acknowledges a query. It carries no state: its information
// content is purely its arrival order — whether it lands among the first
// quorum responses ("winning response").
type Response struct {
	From  ident.ID
	Round uint64 // echoes Query.Round
}

// String renders a compact human-readable form for traces.
func (r Response) String() string {
	return fmt.Sprintf("RESPONSE(from=%v round=%d)", r.From, r.Round)
}
