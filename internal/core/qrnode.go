package core

import (
	"fmt"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// NodeConfig parameterizes the runtime that drives a Detector over a
// node.Env.
type NodeConfig struct {
	// Detector configures the protocol state machine.
	Detector Config
	// Window is the extra collection time after the quorum is reached and
	// before the round is evaluated. The pure paper protocol uses 0; the
	// evaluation sections of the paper family insert a waiting period here
	// so that late (but live) processes are counted, trading detection
	// latency for fewer false suspicions. Correctness is unaffected.
	Window time.Duration
	// Interval is the pause between the end of a round and the next query,
	// throttling network load. The paper only requires it to be finite.
	Interval time.Duration
	// Rebroadcast, when positive, re-sends the current query if the quorum
	// has not been met after this long. The pure protocol never needs it
	// (reliable links guarantee the quorum), but a node that was
	// disconnected while moving loses its in-flight query and would
	// otherwise stall forever — the mobility extension sets this.
	// Duplicate queries and responses are idempotent, so correctness is
	// unaffected.
	Rebroadcast time.Duration
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Node drives the time-free detector protocol on a runtime environment: it
// owns the query rounds of task T1 and answers queries per task T2. Node is
// safe for concurrent use (the live runtime delivers from multiple
// goroutines; the simulator from one).
type Node struct {
	mu      sync.Mutex
	env     node.Env   //fdlint:allow clonefields immutable wiring, set once at construction
	cfg     NodeConfig //fdlint:allow clonefields immutable config, set once at construction
	det     *Detector
	stopped bool
	pending node.Timer // end-of-round or next-round timer
	requery node.Timer // optional rebroadcast timer
	rounds  uint64
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)
var _ node.Cloneable = (*Node)(nil)

// NewNode builds the runtime node. The environment's identity must match
// the detector configuration.
func NewNode(env node.Env, cfg NodeConfig) (*Node, error) {
	if env.Self() != cfg.Detector.Self {
		return nil, fmt.Errorf("core: env identity %v != detector identity %v", env.Self(), cfg.Detector.Self)
	}
	n := &Node{env: env, cfg: cfg}
	detCfg := cfg.Detector
	detCfg.Observer = (*nodeObserver)(n)
	det, err := NewDetector(detCfg)
	if err != nil {
		return nil, err
	}
	n.det = det
	return n, nil
}

// nodeObserver adapts detector events to the timestamped suspicion sink.
// It runs with n.mu held (detector calls are always under the lock).
type nodeObserver Node

// FDEvent implements Observer.
func (o *nodeObserver) FDEvent(e Event) {
	n := (*Node)(o)
	if n.cfg.Sink == nil {
		return
	}
	switch e.Kind {
	case Suspect:
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), e.Subject, true)
	case Restore:
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), e.Subject, false)
	}
}

// Start launches the first query round. It must be called exactly once.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.startRoundLocked()
}

// Restart implements fd.Restartable. A fresh restart rebuilds the protocol
// state machine from its initial state — counter, suspected/mistake sets
// and, in the unknown-membership model, the learned known set are all lost
// in the reboot — and emits the implied restore transitions; a persisted
// restart keeps the state machine and merely abandons the query round that
// was in flight when the process crashed. Either way a new round starts
// immediately. A freshly reset counter is harmless: self-refutation bumps
// it above any received suspicion tag (task T2), so the restarted process
// can still clear stale suspicions of itself.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pending != nil {
		n.pending.Stop()
		n.pending = nil
	}
	n.stopRequeryLocked()
	n.stopped = false
	if fresh {
		if n.cfg.Sink != nil {
			now := n.env.Now()
			n.det.Suspects().ForEach(func(subj ident.ID) bool {
				n.cfg.Sink.OnSuspicion(now, n.env.Self(), subj, false)
				return true
			})
		}
		detCfg := n.cfg.Detector
		detCfg.Observer = (*nodeObserver)(n)
		det, err := NewDetector(detCfg)
		if err != nil {
			// Unreachable: the same configuration validated at NewNode.
			panic(fmt.Sprintf("core: Restart: %v", err))
		}
		n.det = det
	} else if n.det.RoundOpen() {
		n.det.AbortRound()
	}
	n.startRoundLocked()
}

// Stop halts the querying task. In-flight deliveries are still answered (a
// stopped node keeps responding to queries, like a process that is alive but
// no longer interested in the oracle output); pass-through behavior keeps
// shutdown of live clusters graceful.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.pending != nil {
		n.pending.Stop()
		n.pending = nil
	}
	n.stopRequeryLocked()
}

func (n *Node) stopRequeryLocked() {
	if n.requery != nil {
		n.requery.Stop()
		n.requery = nil
	}
}

// Rounds returns the number of completed query rounds.
func (n *Node) Rounds() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rounds
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.det.Suspects()
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.det.IsSuspected(id)
}

// Known returns the current known set (membership discovered so far).
func (n *Node) Known() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.det.Known()
}

// Detector exposes the underlying state machine for tests and diagnostics.
// Callers must not mutate it while the node is running.
func (n *Node) Detector() *Detector { return n.det }

// snapshot is the node.Cloneable checkpoint: the detector state machine's
// mutable state (deep-copied tag sets) plus the runtime's timers and round
// counter. Restore rolls the SAME *Detector instance back in place — the
// nodeObserver binding and any pending round-closure closures reference it.
type snapshot struct {
	det     detectorState
	stopped bool
	pending node.Timer
	requery node.Timer
	rounds  uint64
}

// Snapshot implements node.Cloneable.
func (n *Node) Snapshot() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	return &snapshot{
		det:     n.det.snapshotState(),
		stopped: n.stopped,
		pending: n.pending,
		requery: n.requery,
		rounds:  n.rounds,
	}
}

// Restore implements node.Cloneable.
func (n *Node) Restore(snap any) {
	s := snap.(*snapshot)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.det.restoreState(s.det)
	n.stopped = s.stopped
	n.pending = s.pending
	n.requery = s.requery
	n.rounds = s.rounds
}

// Deliver implements node.Handler, dispatching task T2 (queries) and the
// response collection of task T1.
func (n *Node) Deliver(from ident.ID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m := payload.(type) {
	case Query:
		resp := n.det.HandleQuery(m)
		n.env.Send(from, resp)
	case Response:
		if n.det.HandleResponse(m) {
			n.maybeCloseRoundLocked()
		}
	}
}

func (n *Node) startRoundLocked() {
	if n.stopped {
		return
	}
	n.pending = nil
	q := n.det.BeginRound()
	n.env.Broadcast(q)
	n.armRequeryLocked(q)
	n.maybeCloseRoundLocked() // quorum of 1 (own response) is possible
}

// armRequeryLocked schedules a rebroadcast of q while its quorum is unmet.
func (n *Node) armRequeryLocked(q Query) {
	if n.cfg.Rebroadcast <= 0 {
		return
	}
	n.requery = n.env.After(n.cfg.Rebroadcast, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || !n.det.RoundOpen() || n.det.Round() != q.Round || n.det.QuorumMet() {
			return
		}
		n.env.Broadcast(q)
		n.armRequeryLocked(q)
	})
}

// maybeCloseRoundLocked arms the end-of-round step once the quorum is met.
func (n *Node) maybeCloseRoundLocked() {
	if n.stopped || !n.det.RoundOpen() || !n.det.QuorumMet() || n.pending != nil {
		return
	}
	n.stopRequeryLocked()
	n.pending = n.env.After(n.cfg.Window, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.finishRoundLocked()
	})
}

func (n *Node) finishRoundLocked() {
	if n.stopped {
		return
	}
	n.pending = nil
	if _, err := n.det.EndRound(); err != nil {
		// Unreachable by construction: the round was open with quorum met
		// when the timer was armed, and nothing closes rounds in between.
		panic(fmt.Sprintf("core: EndRound: %v", err))
	}
	n.rounds++
	n.pending = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.pending = nil
		n.startRoundLocked()
	})
}
