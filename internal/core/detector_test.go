package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asyncfd/internal/core/tagset"
	"asyncfd/internal/ident"
)

func mustDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatalf("NewDetector(%+v): %v", cfg, err)
	}
	return d
}

func knownCfg(self ident.ID, n, f int) Config {
	return Config{Self: self, Membership: KnownMembership, N: n, F: f}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid known", knownCfg(0, 4, 1), false},
		{"zero membership defaults to known", Config{Self: 0, N: 4, F: 1}, false},
		{"f too large", knownCfg(0, 4, 4), true},
		{"f negative", knownCfg(0, 4, -1), true},
		{"n too small", knownCfg(0, 1, 0), true},
		{"self out of range", knownCfg(9, 4, 1), true},
		{"self invalid", knownCfg(ident.Nil, 4, 1), true},
		{"valid unknown", Config{Self: 3, Membership: UnknownMembership, D: 4, F: 1}, false},
		{"unknown density too small", Config{Self: 3, Membership: UnknownMembership, D: 2, F: 1}, true},
		{"bad membership", Config{Self: 0, Membership: Membership(9), N: 4}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			_, err = NewDetector(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewDetector() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestQuorum(t *testing.T) {
	if got := knownCfg(0, 10, 3).Quorum(); got != 7 {
		t.Errorf("known quorum = %d, want n-f = 7", got)
	}
	cfg := Config{Self: 0, Membership: UnknownMembership, D: 7, F: 2}
	if got := cfg.Quorum(); got != 5 {
		t.Errorf("unknown quorum = %d, want d-f = 5", got)
	}
}

func TestInitialState(t *testing.T) {
	d := mustDetector(t, knownCfg(1, 4, 1))
	if d.Counter() != 0 {
		t.Errorf("initial counter = %d, want 0", d.Counter())
	}
	if !d.Suspects().Empty() {
		t.Errorf("initial suspects = %v, want empty", d.Suspects())
	}
	if got := d.Known(); got.Len() != 4 {
		t.Errorf("known-membership known set = %v, want all 4", got)
	}
	if d.RoundOpen() {
		t.Error("round open before BeginRound")
	}
}

func TestInitialStateUnknown(t *testing.T) {
	d := mustDetector(t, Config{Self: 5, Membership: UnknownMembership, D: 4, F: 1})
	known := d.Known()
	if known.Len() != 1 || !known.Has(5) {
		t.Errorf("unknown-membership initial known = %v, want {p5}", known)
	}
}

func TestBeginRoundCountsSelf(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 4, 1))
	q := d.BeginRound()
	if q.From != 0 || q.Round != 1 {
		t.Errorf("query = %+v, want From=p0 Round=1", q)
	}
	if !d.RoundOpen() {
		t.Error("round not open after BeginRound")
	}
	// quorum is 3; self already counted.
	if d.QuorumMet() {
		t.Error("quorum met with only self")
	}
	d.HandleResponse(Response{From: 1, Round: 1})
	if d.QuorumMet() {
		t.Error("quorum met with 2 of 3")
	}
	d.HandleResponse(Response{From: 2, Round: 1})
	if !d.QuorumMet() {
		t.Error("quorum not met with 3 of 3")
	}
}

func TestBeginRoundPanicsWhenOpen(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 4, 1))
	d.BeginRound()
	defer func() {
		if recover() == nil {
			t.Error("BeginRound on open round did not panic")
		}
	}()
	d.BeginRound()
}

func TestHandleResponseFiltering(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 4, 1))
	if d.HandleResponse(Response{From: 1, Round: 1}) {
		t.Error("response counted before any round")
	}
	d.BeginRound()
	if d.HandleResponse(Response{From: 1, Round: 99}) {
		t.Error("response for wrong round counted")
	}
	if !d.HandleResponse(Response{From: 1, Round: 1}) {
		t.Error("valid response not counted")
	}
	if d.HandleResponse(Response{From: 1, Round: 1}) {
		t.Error("duplicate response counted")
	}
	if d.HandleResponse(Response{From: 0, Round: 1}) {
		t.Error("own response double-counted")
	}
}

func TestEndRoundErrors(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 4, 1))
	if _, err := d.EndRound(); err != ErrNoOpenRound {
		t.Errorf("EndRound with no round: err = %v, want ErrNoOpenRound", err)
	}
	d.BeginRound()
	if _, err := d.EndRound(); err != ErrQuorumNotMet {
		t.Errorf("EndRound without quorum: err = %v, want ErrQuorumNotMet", err)
	}
}

// runRound drives one full query round for d with responses from the given
// processes (self is implicit).
func runRound(t *testing.T, d *Detector, responders ...ident.ID) RoundResult {
	t.Helper()
	q := d.BeginRound()
	for _, r := range responders {
		d.HandleResponse(Response{From: r, Round: q.Round})
	}
	res, err := d.EndRound()
	if err != nil {
		t.Fatalf("EndRound: %v (state %s)", err, d.DebugString())
	}
	return res
}

func TestLocalSuspicion(t *testing.T) {
	// n=4, f=1, quorum 3. p0 hears from p1, p2 but not p3 → suspect p3 tag 0.
	d := mustDetector(t, knownCfg(0, 4, 1))
	res := runRound(t, d, 1, 2)
	if len(res.NewSuspicions) != 1 || res.NewSuspicions[0].ID != 3 || res.NewSuspicions[0].Tag != 0 {
		t.Fatalf("NewSuspicions = %v, want [⟨p3, 0⟩]", res.NewSuspicions)
	}
	if !d.IsSuspected(3) {
		t.Error("p3 not suspected")
	}
	if d.Counter() != 1 {
		t.Errorf("counter = %d, want 1 after round", d.Counter())
	}
	if res.RecFrom.Len() != 3 || !res.RecFrom.Has(0) {
		t.Errorf("RecFrom = %v, want {p0,p1,p2}", res.RecFrom)
	}
}

func TestExtraResponsesReduceSuspicion(t *testing.T) {
	// All respond (more than quorum counted before EndRound) → nobody suspected.
	d := mustDetector(t, knownCfg(0, 4, 1))
	res := runRound(t, d, 1, 2, 3)
	if len(res.NewSuspicions) != 0 {
		t.Errorf("NewSuspicions = %v, want none", res.NewSuspicions)
	}
}

func TestRepeatedRoundsDoNotResuspend(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 4, 1))
	runRound(t, d, 1, 2)
	res := runRound(t, d, 1, 2)
	if len(res.NewSuspicions) != 0 {
		t.Errorf("second round re-suspected: %v", res.NewSuspicions)
	}
	entries := d.SuspectedEntries()
	if len(entries) != 1 || entries[0].Tag != 0 {
		t.Errorf("suspected = %v, want [⟨p3, 0⟩] with original tag", entries)
	}
}

func TestSuspicionAfterMistakeBumpsCounter(t *testing.T) {
	// Lines 10–13: re-suspecting a process whose mistake entry carries tag m
	// must use a tag > m, so the new suspicion beats the old mistake.
	d := mustDetector(t, knownCfg(0, 4, 1))
	// Install a mistake about p3 with tag 7 via gossip.
	d.HandleQuery(Query{From: 1, Round: 1, Mistake: []tagset.Entry{{ID: 3, Tag: 7}}})
	if d.IsSuspected(3) {
		t.Fatal("mistake should not suspect")
	}
	res := runRound(t, d, 1, 2) // p3 silent → suspect
	if len(res.NewSuspicions) != 1 {
		t.Fatalf("NewSuspicions = %v", res.NewSuspicions)
	}
	if got := res.NewSuspicions[0].Tag; got != 8 {
		t.Errorf("suspicion tag = %d, want 8 (mistake tag 7 + 1)", got)
	}
	if len(d.MistakeEntries()) != 0 {
		t.Errorf("mistake set = %v, want empty after supersession", d.MistakeEntries())
	}
	if d.Counter() != 9 {
		t.Errorf("counter = %d, want 9 (bumped to 8, then +1)", d.Counter())
	}
}

func TestHandleQueryLearnsSender(t *testing.T) {
	d := mustDetector(t, Config{Self: 0, Membership: UnknownMembership, D: 3, F: 1})
	resp := d.HandleQuery(Query{From: 7, Round: 42})
	if resp.From != 0 || resp.Round != 42 {
		t.Errorf("response = %+v, want From=p0 Round=42", resp)
	}
	if !d.Known().Has(7) {
		t.Error("sender not learned into known set")
	}
}

func TestHandleQueryAdoptsFresherSuspicion(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 5, 1))
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 5}}})
	if got, _ := mustGet(t, d, 3); got != 5 {
		t.Errorf("adopted tag = %d, want 5", got)
	}
	// Fresher info replaces.
	d.HandleQuery(Query{From: 2, Suspected: []tagset.Entry{{ID: 3, Tag: 10}}})
	if got, _ := mustGet(t, d, 3); got != 10 {
		t.Errorf("tag after fresher gossip = %d, want 10", got)
	}
	// Stale info discarded.
	d.HandleQuery(Query{From: 4, Suspected: []tagset.Entry{{ID: 3, Tag: 6}}})
	if got, _ := mustGet(t, d, 3); got != 10 {
		t.Errorf("tag after stale gossip = %d, want 10 (unchanged)", got)
	}
	// Equal suspicion does not reapply (strict guard).
	d.HandleQuery(Query{From: 4, Suspected: []tagset.Entry{{ID: 3, Tag: 10}}})
	if got, _ := mustGet(t, d, 3); got != 10 {
		t.Errorf("tag after equal gossip = %d, want 10", got)
	}
}

func mustGet(t *testing.T, d *Detector, id ident.ID) (tagset.Tag, bool) {
	t.Helper()
	for _, e := range d.SuspectedEntries() {
		if e.ID == id {
			return e.Tag, true
		}
	}
	t.Fatalf("%v not suspected; state %s", id, d.DebugString())
	return 0, false
}

func TestSelfRefutation(t *testing.T) {
	d := mustDetector(t, knownCfg(2, 5, 1))
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 2, Tag: 9}}})
	if d.IsSuspected(2) {
		t.Fatal("process adopted a suspicion about itself")
	}
	mist := d.MistakeEntries()
	if len(mist) != 1 || mist[0].ID != 2 || mist[0].Tag != 10 {
		t.Fatalf("mistake = %v, want [⟨p2, 10⟩] (suspicion tag + 1)", mist)
	}
	if d.Counter() != 10 {
		t.Errorf("counter = %d, want 10", d.Counter())
	}
	// A stale copy of the same suspicion must not trigger a second mistake.
	d.HandleQuery(Query{From: 3, Suspected: []tagset.Entry{{ID: 2, Tag: 9}}})
	mist = d.MistakeEntries()
	if len(mist) != 1 || mist[0].Tag != 10 {
		t.Errorf("mistake after stale re-suspicion = %v, want unchanged", mist)
	}
	// A fresher suspicion of self triggers a new, higher refutation.
	d.HandleQuery(Query{From: 3, Suspected: []tagset.Entry{{ID: 2, Tag: 20}}})
	mist = d.MistakeEntries()
	if len(mist) != 1 || mist[0].Tag != 21 {
		t.Errorf("mistake after fresher re-suspicion = %v, want tag 21", mist)
	}
}

func TestMistakeClearsSuspicion(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 5, 1))
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 5}}})
	if !d.IsSuspected(3) {
		t.Fatal("setup failed")
	}
	// Equal-tag mistake wins the tie (line 33 uses ≤).
	d.HandleQuery(Query{From: 2, Mistake: []tagset.Entry{{ID: 3, Tag: 5}}})
	if d.IsSuspected(3) {
		t.Error("equal-tag mistake did not clear suspicion")
	}
	if len(d.MistakeEntries()) != 1 {
		t.Errorf("mistake set = %v", d.MistakeEntries())
	}
}

func TestStaleMistakeIgnored(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 5, 1))
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 8}}})
	d.HandleQuery(Query{From: 2, Mistake: []tagset.Entry{{ID: 3, Tag: 7}}})
	if !d.IsSuspected(3) {
		t.Error("stale mistake cleared a fresher suspicion")
	}
}

func TestFresherSuspicionClearsMistake(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 5, 1))
	d.HandleQuery(Query{From: 1, Mistake: []tagset.Entry{{ID: 3, Tag: 5}}})
	d.HandleQuery(Query{From: 2, Suspected: []tagset.Entry{{ID: 3, Tag: 6}}})
	if !d.IsSuspected(3) {
		t.Error("fresher suspicion not adopted over mistake")
	}
	if len(d.MistakeEntries()) != 0 {
		t.Errorf("mistake set = %v, want empty (line 28)", d.MistakeEntries())
	}
}

// TestPaperExampleFigure1 replays the §4.4 example of the protocol family:
// nodes B and C independently suspect a crashed A with different counters
// (5 and 10); when the information meets, the higher counter wins everywhere
// and the lower is discarded.
func TestPaperExampleFigure1(t *testing.T) {
	const (
		a ident.ID = 0
		b ident.ID = 1
		c ident.ID = 2
	)
	n, f := 5, 1
	mk := func(self ident.ID, counter tagset.Tag) *Detector {
		d := mustDetector(t, knownCfg(self, n, f))
		for d.Counter() < counter { // advance counter via empty full rounds
			runRound(t, d, otherIDs(n, self)...)
		}
		return d
	}
	dB := mk(b, 5)
	dC := mk(c, 10)

	// A crashes: B and C each run a round without A's response.
	runRound(t, dB, respondersExcept(n, b, a)...)
	runRound(t, dC, respondersExcept(n, c, a)...)

	tagB, _ := mustGet(t, dB, a)
	tagC, _ := mustGet(t, dC, a)
	if tagB != 5 || tagC != 10 {
		t.Fatalf("suspicion tags B=%d C=%d, want 5 and 10", tagB, tagC)
	}

	// B's query reaches C: C discards the older ⟨A,5⟩.
	dC.HandleQuery(dB.BeginRound())
	if got, _ := mustGet(t, dC, a); got != 10 {
		t.Errorf("C's tag after B's query = %d, want 10 (discard older)", got)
	}

	// C's query reaches B: B upgrades to ⟨A,10⟩.
	dB2 := dB // B still has an open round; T2 runs concurrently in the paper
	dB2.HandleQuery(dC.BeginRound())
	if got, _ := mustGet(t, dB2, a); got != 10 {
		t.Errorf("B's tag after C's query = %d, want 10 (upgrade)", got)
	}
}

// otherIDs returns all ids in [0,n) except self.
func otherIDs(n int, self ident.ID) []ident.ID {
	out := make([]ident.ID, 0, n-1)
	for i := 0; i < n; i++ {
		if ident.ID(i) != self {
			out = append(out, ident.ID(i))
		}
	}
	return out
}

// respondersExcept returns all ids in [0,n) except self and except skip.
func respondersExcept(n int, self, skip ident.ID) []ident.ID {
	out := make([]ident.ID, 0, n-1)
	for _, id := range otherIDs(n, self) {
		if id != skip {
			out = append(out, id)
		}
	}
	return out
}

func TestMobilityEviction(t *testing.T) {
	cfg := Config{Self: 0, Membership: UnknownMembership, D: 3, F: 1, Mobility: true}
	d := mustDetector(t, cfg)
	// Learn p5 and p6 via their queries.
	d.HandleQuery(Query{From: 5})
	d.HandleQuery(Query{From: 6})
	if !d.Known().Has(5) || !d.Known().Has(6) {
		t.Fatal("setup: known not learned")
	}
	// A mistake about p5 carried by p6 (p6 ≠ p5) → evict p5 from known.
	d.HandleQuery(Query{From: 6, Round: 1, Mistake: []tagset.Entry{{ID: 5, Tag: 3}}})
	if d.Known().Has(5) {
		t.Error("mobility rule did not evict remote process from known")
	}
	// A mistake carried by its own originator must NOT evict.
	d.HandleQuery(Query{From: 5, Round: 2, Mistake: []tagset.Entry{{ID: 5, Tag: 4}}})
	if !d.Known().Has(5) {
		t.Error("originator's own mistake evicted it from known")
	}
}

func TestMobilityDisabledNoEviction(t *testing.T) {
	cfg := Config{Self: 0, Membership: UnknownMembership, D: 3, F: 1}
	d := mustDetector(t, cfg)
	d.HandleQuery(Query{From: 5})
	d.HandleQuery(Query{From: 6, Mistake: []tagset.Entry{{ID: 5, Tag: 3}}})
	if !d.Known().Has(5) {
		t.Error("eviction happened with Mobility disabled")
	}
}

func TestMobilityNeverEvictsSelf(t *testing.T) {
	cfg := Config{Self: 5, Membership: UnknownMembership, D: 3, F: 1, Mobility: true}
	d := mustDetector(t, cfg)
	d.HandleQuery(Query{From: 6, Mistake: []tagset.Entry{{ID: 5, Tag: 3}}})
	if !d.Known().Has(5) {
		t.Error("process evicted itself from its own known set")
	}
}

func TestDisableTagsAblation(t *testing.T) {
	cfg := knownCfg(0, 5, 1)
	cfg.DisableTags = true
	d := mustDetector(t, cfg)
	// Fresh suspicion, then a STALE mistake: with tags disabled the stale
	// mistake is applied anyway — exactly the pathology the tags prevent.
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 8}}})
	d.HandleQuery(Query{From: 2, Mistake: []tagset.Entry{{ID: 3, Tag: 1}}})
	if d.IsSuspected(3) {
		t.Error("with tags disabled, stale mistake should have cleared the suspicion")
	}
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 3, Tag: 2}}})
	if !d.IsSuspected(3) {
		t.Error("with tags disabled, stale suspicion should resurrect")
	}
}

type recordingObserver struct {
	events []Event
}

func (r *recordingObserver) FDEvent(e Event) { r.events = append(r.events, e) }

func TestObserverEvents(t *testing.T) {
	obs := &recordingObserver{}
	cfg := knownCfg(0, 4, 1)
	cfg.Observer = obs
	d := mustDetector(t, cfg)

	runRound(t, d, 1, 2) // suspect p3 locally
	if len(obs.events) != 1 {
		t.Fatalf("events = %v, want 1 local suspect", obs.events)
	}
	e := obs.events[0]
	if e.Kind != Suspect || e.Subject != 3 || e.Source != LocalDetection {
		t.Errorf("event = %+v", e)
	}

	// Gossip restore.
	d.HandleQuery(Query{From: 1, Mistake: []tagset.Entry{{ID: 3, Tag: 0}}})
	if len(obs.events) != 2 {
		t.Fatalf("events = %v, want 2", obs.events)
	}
	if obs.events[1].Kind != Restore || obs.events[1].Source != Gossip {
		t.Errorf("restore event = %+v", obs.events[1])
	}

	// Gossip suspect of a new process.
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 2, Tag: 4}}})
	if len(obs.events) != 3 || obs.events[2].Kind != Suspect || obs.events[2].Source != Gossip {
		t.Fatalf("events = %+v", obs.events)
	}
	// Tag upgrade of an already-suspected process emits no event.
	d.HandleQuery(Query{From: 1, Suspected: []tagset.Entry{{ID: 2, Tag: 9}}})
	if len(obs.events) != 3 {
		t.Errorf("tag upgrade emitted an event: %+v", obs.events[3:])
	}
}

func TestStringers(t *testing.T) {
	if KnownMembership.String() != "known" || UnknownMembership.String() != "unknown" {
		t.Error("Membership.String")
	}
	if Membership(9).String() == "" {
		t.Error("invalid Membership.String empty")
	}
	if Suspect.String() != "suspect" || Restore.String() != "restore" || EventKind(9).String() == "" {
		t.Error("EventKind.String")
	}
	if LocalDetection.String() != "local" || Gossip.String() != "gossip" ||
		SelfRefutation.String() != "self-refutation" || Source(9).String() == "" {
		t.Error("Source.String")
	}
	q := Query{From: 1, Round: 2, Suspected: []tagset.Entry{{ID: 3, Tag: 4}}}
	if q.String() != "QUERY(from=p1 round=2 susp=1 mist=0)" {
		t.Errorf("Query.String = %q", q.String())
	}
	r := Response{From: 1, Round: 2}
	if r.String() != "RESPONSE(from=p1 round=2)" {
		t.Errorf("Response.String = %q", r.String())
	}
	d := mustDetector(t, knownCfg(0, 3, 1))
	if d.DebugString() == "" {
		t.Error("DebugString empty")
	}
}

// TestQuickInvariants fuzzes a detector with random gossip and rounds and
// checks structural invariants the proofs rely on:
//  1. a process is never in suspected and mistake simultaneously;
//  2. a process never suspects itself;
//  3. the logical counter never decreases.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n, fmax = 6, 2
		d, err := NewDetector(knownCfg(0, n, fmax))
		if err != nil {
			return false
		}
		prevCounter := d.Counter()
		for step := 0; step < 150; step++ {
			switch r.Intn(3) {
			case 0: // random gossip
				q := Query{From: ident.ID(1 + r.Intn(n-1)), Round: uint64(r.Intn(10))}
				for k := 0; k < r.Intn(4); k++ {
					e := tagset.Entry{ID: ident.ID(r.Intn(n)), Tag: tagset.Tag(r.Intn(30))}
					if r.Intn(2) == 0 {
						q.Suspected = append(q.Suspected, e)
					} else {
						q.Mistake = append(q.Mistake, e)
					}
				}
				d.HandleQuery(q)
			case 1: // full round with random responders
				if d.RoundOpen() {
					break
				}
				q := d.BeginRound()
				perm := r.Perm(n - 1)
				quorumExtra := d.Quorum() - 1 + r.Intn(n-d.Quorum()+1)
				for i := 0; i < quorumExtra && i < len(perm); i++ {
					d.HandleResponse(Response{From: ident.ID(perm[i] + 1), Round: q.Round})
				}
				if d.QuorumMet() {
					if _, err := d.EndRound(); err != nil {
						return false
					}
				} else {
					// drain: answer with everyone to close the round
					for i := 1; i < n; i++ {
						d.HandleResponse(Response{From: ident.ID(i), Round: q.Round})
					}
					if _, err := d.EndRound(); err != nil {
						return false
					}
				}
			case 2: // stray responses
				d.HandleResponse(Response{From: ident.ID(r.Intn(n)), Round: uint64(r.Intn(5))})
			}

			if d.IsSuspected(0) {
				return false // invariant 2
			}
			susp := d.Suspects()
			for _, e := range d.MistakeEntries() {
				if susp.Has(e.ID) {
					return false // invariant 1
				}
			}
			if d.Counter() < prevCounter {
				return false // invariant 3
			}
			prevCounter = d.Counter()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRound(b *testing.B) {
	d, err := NewDetector(knownCfg(0, 32, 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := d.BeginRound()
		for j := 1; j < 32; j++ {
			d.HandleResponse(Response{From: ident.ID(j), Round: q.Round})
		}
		if _, err := d.EndRound(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleQuery(b *testing.B) {
	d, err := NewDetector(knownCfg(0, 32, 10))
	if err != nil {
		b.Fatal(err)
	}
	q := Query{From: 1, Round: 1}
	for i := 2; i < 18; i++ {
		q.Suspected = append(q.Suspected, tagset.Entry{ID: ident.ID(i), Tag: tagset.Tag(i)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.HandleQuery(q)
	}
}

func TestAbortRound(t *testing.T) {
	d := mustDetector(t, knownCfg(0, 3, 1))
	q := d.BeginRound()
	d.AbortRound()
	if d.RoundOpen() {
		t.Error("round still open after abort")
	}
	if d.HandleResponse(Response{From: 1, Round: q.Round}) {
		t.Error("response to the aborted round counted")
	}
	// A new round starts cleanly past the aborted one.
	q2 := d.BeginRound()
	if q2.Round != q.Round+1 {
		t.Errorf("round after abort = %d, want %d", q2.Round, q.Round+1)
	}
	if d.HandleResponse(Response{From: 1, Round: q.Round}) {
		t.Error("stale response for the aborted round counted against the new one")
	}
	// Repeated aborts are harmless, and a further round still opens.
	d.AbortRound()
	d.AbortRound()
	if d.RoundOpen() {
		t.Error("round open after double abort")
	}
	if q3 := d.BeginRound(); q3.Round != q.Round+2 {
		t.Errorf("round after second abort = %d, want %d", q3.Round, q.Round+2)
	}
}
