package chen

import (
	"testing"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Self: 0, Interval: time.Second, Alpha: 100 * time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Self: ident.Nil, Interval: time.Second, Alpha: time.Second},
		{Self: 0, Interval: 0, Alpha: time.Second},
		{Self: 0, Interval: time.Second, Alpha: 0},
		{Self: 0, Interval: time.Second, Alpha: time.Second, WindowSize: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestExpectedArrival(t *testing.T) {
	st := &peerState{}
	interval := time.Second
	// Heartbeats 1,2,3 arrived exactly on schedule with 10ms transit.
	for seq := uint64(1); seq <= 3; seq++ {
		st.push(sample{seq: seq, arrival: time.Duration(seq)*interval + 10*time.Millisecond}, 100)
	}
	ea := st.expectedArrival(interval)
	want := 4*interval + 10*time.Millisecond
	if ea != want {
		t.Errorf("EA = %v, want %v", ea, want)
	}
	var empty peerState
	if empty.expectedArrival(interval) != 0 {
		t.Error("EA of empty window nonzero")
	}
}

func TestPeerStateRing(t *testing.T) {
	st := &peerState{}
	for seq := uint64(1); seq <= 5; seq++ {
		st.push(sample{seq: seq, arrival: time.Duration(seq) * time.Second}, 3)
	}
	if len(st.samples) != 3 {
		t.Errorf("window len = %d, want 3", len(st.samples))
	}
	if st.maxSeq != 5 {
		t.Errorf("maxSeq = %d, want 5", st.maxSeq)
	}
}

type cluster struct {
	sim   *des.Simulator
	net   *netsim.Network
	nodes []*Node
	log   *trace.Log
}

type proxy struct{ n **Node }

func (p proxy) Deliver(from ident.ID, payload any) {
	if *p.n != nil {
		(*p.n).Deliver(from, payload)
	}
}

func newCluster(t *testing.T, n int, delay netsim.DelayModel, interval, alpha time.Duration) *cluster {
	t.Helper()
	c := &cluster{sim: des.New(3), log: &trace.Log{}}
	c.net = netsim.New(c.sim, netsim.Config{Delay: delay})
	peers := ident.FullSet(n)
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		var nd *Node
		env := c.net.AddNode(id, proxy{&nd})
		var err error
		nd, err = NewNode(env, Config{Self: id, Peers: peers, Interval: interval, Alpha: alpha, Sink: c.log})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = nd
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

func TestNoFalseSuspicionsOnSchedule(t *testing.T) {
	c := newCluster(t, 4, netsim.Constant{D: 10 * time.Millisecond}, time.Second, 200*time.Millisecond)
	c.sim.RunUntil(30 * time.Second)
	if c.log.Len() != 0 {
		t.Errorf("suspicions on a punctual network:\n%s", c.log)
	}
}

func TestDetectsCrashNearExpectedArrival(t *testing.T) {
	const (
		interval = time.Second
		alpha    = 200 * time.Millisecond
		crashAt  = 10 * time.Second
	)
	c := newCluster(t, 3, netsim.Constant{D: 10 * time.Millisecond}, interval, alpha)
	c.sim.At(crashAt, func() { c.net.Crash(2) })
	c.sim.RunUntil(30 * time.Second)
	for i := 0; i < 2; i++ {
		at, ok := c.log.FirstSuspicion(ident.ID(i), 2)
		if !ok {
			t.Fatalf("node %d never suspected the crashed process", i)
		}
		// NFD-E detects at EA+α: within one interval + α + transit of the
		// crash.
		if at < crashAt || at > crashAt+interval+alpha+50*time.Millisecond {
			t.Errorf("node %d detection at %v, want ≈ crash + Δ + α", i, at)
		}
		if !c.nodes[i].IsSuspected(2) {
			t.Errorf("node %d suspicion not permanent", i)
		}
	}
}

func TestAdaptsToTransitDelay(t *testing.T) {
	// With a large constant transit delay, EA shifts and no suspicion
	// arises even though heartbeats arrive 500 ms "late" in absolute terms.
	c := newCluster(t, 2, netsim.Constant{D: 500 * time.Millisecond}, time.Second, 300*time.Millisecond)
	c.sim.RunUntil(30 * time.Second)
	if c.log.Len() != 0 {
		t.Errorf("failed to adapt to constant transit delay:\n%s", c.log)
	}
}

func TestRestoreAfterDisturbance(t *testing.T) {
	delay := netsim.Disturbance{
		Base:   netsim.Constant{D: 10 * time.Millisecond},
		Nodes:  ident.SetOf(1),
		Start:  10 * time.Second,
		End:    15 * time.Second,
		Factor: 500,
	}
	c := newCluster(t, 2, delay, time.Second, 200*time.Millisecond)
	c.sim.RunUntil(60 * time.Second)
	falseSusp := false
	for _, e := range c.log.Events() {
		if e.Subject == 1 && e.Suspected {
			falseSusp = true
		}
	}
	if !falseSusp {
		t.Fatal("disturbance did not trigger suspicion; scenario too weak")
	}
	if c.nodes[0].IsSuspected(1) {
		t.Error("suspicion not revoked after heartbeats resumed")
	}
}

func TestStaleHeartbeatIgnored(t *testing.T) {
	sim := des.New(1)
	net := netsim.New(sim, netsim.Config{Delay: netsim.Constant{}})
	var nd *Node
	env := net.AddNode(0, proxy{&nd})
	sender := net.AddNode(1, proxy{new(*Node)})
	var err error
	nd, err = NewNode(env, Config{Self: 0, Peers: ident.SetOf(1), Interval: time.Second, Alpha: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	sender.Send(0, Message{From: 1, Seq: 5})
	sender.Send(0, Message{From: 1, Seq: 3}) // reordered duplicate
	sender.Send(0, "junk")
	sim.RunUntil(100 * time.Millisecond)
	nd.mu.Lock()
	max := nd.peers.Get(1).maxSeq
	samples := len(nd.peers.Get(1).samples)
	nd.mu.Unlock()
	if max != 5 {
		t.Errorf("maxSeq = %d, want 5", max)
	}
	if samples != 2 { // bootstrap sample + seq 5
		t.Errorf("samples = %d, want 2 (stale seq 3 dropped)", samples)
	}
}

func TestStop(t *testing.T) {
	c := newCluster(t, 2, netsim.Constant{D: time.Millisecond}, 100*time.Millisecond, 50*time.Millisecond)
	c.sim.RunUntil(500 * time.Millisecond)
	c.nodes[0].Stop()
	c.nodes[1].Stop()
	c.log.Reset()
	c.sim.RunUntil(5 * time.Second)
	if c.log.Len() != 0 {
		t.Errorf("stopped nodes produced events:\n%s", c.log)
	}
}

func TestRestartNoFlappingAfterSenderDowntime(t *testing.T) {
	// p1's downtime shifts its seq/time relationship; the observers must
	// rebase their expected-arrival window on the first post-recovery
	// heartbeat instead of flapping once per heartbeat (the mixed-era EA
	// pathology).
	const (
		interval = time.Second
		alpha    = 300 * time.Millisecond
	)
	c := newCluster(t, 3, netsim.Constant{D: 10 * time.Millisecond}, interval, alpha)
	c.sim.At(5*time.Second, func() { c.net.Crash(1) })
	c.sim.At(15*time.Second, func() {
		c.net.Recover(1)
		c.nodes[1].Restart(true)
	})
	c.sim.RunUntil(40 * time.Second)
	if c.nodes[0].IsSuspected(1) {
		t.Fatal("recovered sender still suspected")
	}
	// Count p0's suspicion episodes about p1: exactly one (the downtime).
	episodes := 0
	for _, e := range c.log.Events() {
		if e.Observer == 0 && e.Subject == 1 && e.Suspected {
			episodes++
		}
	}
	if episodes != 1 {
		t.Errorf("p0 suspected p1 %d times, want exactly 1 (no post-recovery flapping)", episodes)
	}
}

func TestRestartFreshGracePeriod(t *testing.T) {
	// A fresh restart must not instantly suspect every peer: the bootstrap
	// window grants ≈ Δ + α of grace, within which live peers' heartbeats
	// arrive.
	const (
		interval = time.Second
		alpha    = 300 * time.Millisecond
	)
	c := newCluster(t, 3, netsim.Constant{D: 10 * time.Millisecond}, interval, alpha)
	c.sim.At(5*time.Second, func() { c.net.Crash(0) })
	c.sim.At(12*time.Second, func() {
		c.net.Recover(0)
		c.nodes[0].Restart(true)
	})
	c.sim.RunUntil(20 * time.Second)
	if n := c.nodes[0].Suspects().Len(); n != 0 {
		t.Errorf("fresh-restarted node suspects %d live peers", n)
	}
	for _, e := range c.log.Events() {
		if e.Observer == 0 && e.Suspected && e.At >= 12*time.Second {
			t.Errorf("fresh-restarted node falsely suspected %v at %v", e.Subject, e.At)
		}
	}
}

func TestRestartKeepsSequenceMonotonic(t *testing.T) {
	// The heartbeat sequence counter survives a fresh restart (it acts as an
	// incarnation number); otherwise peers would discard the restarted
	// sender's heartbeats as stale forever.
	c := newCluster(t, 2, netsim.Constant{D: 10 * time.Millisecond}, time.Second, 300*time.Millisecond)
	c.sim.At(5*time.Second, func() { c.net.Crash(1) })
	c.sim.RunUntil(10 * time.Second)
	if !c.nodes[0].IsSuspected(1) {
		t.Fatal("crash not detected")
	}
	c.sim.At(11*time.Second, func() {
		c.net.Recover(1)
		c.nodes[1].Restart(true)
	})
	c.sim.RunUntil(15 * time.Second)
	if c.nodes[0].IsSuspected(1) {
		t.Error("restarted sender never re-trusted: its heartbeats were discarded as stale")
	}
}
