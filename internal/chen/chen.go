// Package chen implements the NFD-E failure detector of Chen, Toueg and
// Aguilera ("On the quality of service of failure detectors"): heartbeats
// are sent every Δ; the monitor estimates the expected arrival time EA of
// the next heartbeat from a window of past arrivals and suspects the sender
// when the clock passes EA + α. It is the classic adaptive *expected-arrival*
// detector, complementing the φ-accrual comparator.
package chen

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Message is a sequence-numbered heartbeat.
type Message struct {
	From ident.ID
	Seq  uint64
}

// Config parameterizes an NFD-E detector.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// Peers are the monitored processes (Self is ignored if present).
	Peers ident.Set
	// Interval is the heartbeat period Δ.
	Interval time.Duration
	// Alpha is the safety margin added to the expected arrival time.
	Alpha time.Duration
	// WindowSize bounds the arrival sample window (default 100).
	WindowSize int
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() {
		return errors.New("chen: config: Self must be valid")
	}
	if c.Interval <= 0 {
		return errors.New("chen: config: Interval must be positive")
	}
	if c.Alpha <= 0 {
		return errors.New("chen: config: Alpha must be positive")
	}
	if c.WindowSize < 0 {
		return errors.New("chen: config: negative WindowSize")
	}
	return nil
}

// sample is one heartbeat observation.
type sample struct {
	seq     uint64
	arrival time.Duration
}

// peerState tracks one monitored process.
type peerState struct {
	samples []sample // ring, bounded by WindowSize
	next    int
	maxSeq  uint64
	// sumArrival/sumSeq are the running window sums Σ arrival and Σ seq,
	// maintained by push so expectedArrival is O(1) instead of re-walking
	// the window on every heartbeat. Integer arithmetic, so the incremental
	// sums equal the walked ones exactly.
	sumArrival time.Duration
	sumSeq     uint64
	suspected  bool
	timer      node.Timer
	// bootstrap marks a window holding only the synthetic restart sample;
	// the first real heartbeat replaces it wholesale, because mixing the
	// restart-era sample with post-restart sequence numbers would corrupt
	// the expected-arrival estimate.
	bootstrap bool
}

// Node is an NFD-E detector node. Safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	env     node.Env //fdlint:allow clonefields immutable wiring, set once at construction
	cfg     Config   //fdlint:allow clonefields immutable config, set once at construction
	peers   node.DenseMap[*peerState]
	seq     uint64
	stopped bool
	beat    node.Timer
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)
var _ node.Cloneable = (*Node)(nil)

// NewNode builds an NFD-E detector on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 100
	}
	n := &Node{env: env, cfg: cfg}
	cfg.Peers.ForEach(func(p ident.ID) bool {
		if p != cfg.Self {
			n.peers.Put(p, &peerState{})
		}
		return true
	})
	return n, nil
}

// Start begins heartbeating and arms the initial expectation for every peer
// as if heartbeat 0 had just arrived.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.env.Now()
	// Sorted peer order, not map order: the bootstrap deadlines coincide,
	// and same-instant timers fire in insertion order, so map iteration
	// would leak into the suspicion-event order across same-seed runs.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st := n.peers.Get(p)
		if st == nil {
			return true
		}
		st.push(sample{seq: 0, arrival: now}, n.cfg.WindowSize)
		n.armLocked(p, st)
		return true
	})
	n.tickLocked()
}

// Restart implements fd.Restartable. The heartbeat sequence counter is
// never reset — it doubles as an incarnation number, so peers (which
// discard non-increasing sequences) keep trusting the restarted sender.
// Fresh state drops each peer's arrival window and suspicion (emitting the
// implied restores) and re-bootstraps monitoring with a grace period of
// Δ + α; persisted state keeps the windows, whose now-stale expected
// arrivals typically make the node suspect everyone until fresh heartbeats
// arrive — the honest cost of resuming NFD-E from old state.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.beat != nil {
		n.beat.Stop()
	}
	n.stopped = false
	now := n.env.Now()
	// Sorted peer order, not map order: the restores emitted here share a
	// timestamp and the re-armed deadlines coincide, so map iteration would
	// make same-seed runs differ byte-for-byte.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st := n.peers.Get(p)
		if st == nil {
			return true
		}
		if st.timer != nil {
			st.timer.Stop()
		}
		if fresh {
			if st.suspected {
				n.emitLocked(p, false)
			}
			*st = peerState{bootstrap: true}
			st.push(sample{seq: 0, arrival: now}, n.cfg.WindowSize)
		}
		n.armLocked(p, st)
		return true
	})
	n.tickLocked()
}

// Stop halts heartbeating and monitoring.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.beat != nil {
		n.beat.Stop()
	}
	n.peers.ForEach(func(_ ident.ID, st *peerState) bool {
		if st.timer != nil {
			st.timer.Stop()
		}
		return true
	})
}

func (st *peerState) push(s sample, capacity int) {
	if len(st.samples) < capacity {
		st.samples = append(st.samples, s)
	} else {
		old := st.samples[st.next]
		st.sumArrival -= old.arrival
		st.sumSeq -= old.seq
		st.samples[st.next] = s
		st.next = (st.next + 1) % capacity
	}
	st.sumArrival += s.arrival
	st.sumSeq += s.seq
	if s.seq > st.maxSeq {
		st.maxSeq = s.seq
	}
}

// rebase empties the window (and its running sums) so the next push starts a
// fresh estimation era.
func (st *peerState) rebase() {
	st.samples = st.samples[:0]
	st.next = 0
	st.sumArrival = 0
	st.sumSeq = 0
}

// expectedArrival estimates EA for heartbeat maxSeq+1: the average of
// (A_i − Δ·seq_i) over the window, plus Δ·(maxSeq+1). The window sums are
// maintained incrementally by push; Σ(A_i − Δ·seq_i) = ΣA_i − Δ·Σseq_i
// exactly in integer arithmetic, so this matches the walked sum byte for
// byte at O(1) per heartbeat.
func (st *peerState) expectedArrival(interval time.Duration) time.Duration {
	if len(st.samples) == 0 {
		return 0
	}
	sum := st.sumArrival - time.Duration(st.sumSeq)*interval
	base := sum / time.Duration(len(st.samples))
	return base + time.Duration(st.maxSeq+1)*interval
}

func (n *Node) tickLocked() {
	if n.stopped {
		return
	}
	n.seq++
	n.env.Broadcast(Message{From: n.env.Self(), Seq: n.seq})
	n.beat = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.tickLocked()
	})
}

// armLocked schedules the suspicion deadline EA + α for peer p.
func (n *Node) armLocked(p ident.ID, st *peerState) {
	if st.timer != nil {
		st.timer.Stop()
	}
	deadline := st.expectedArrival(n.cfg.Interval) + n.cfg.Alpha
	wait := deadline - n.env.Now()
	st.timer = n.env.After(wait, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || st.suspected {
			return
		}
		st.suspected = true
		n.emitLocked(p, true)
	})
}

// Deliver implements node.Handler.
func (n *Node) Deliver(from ident.ID, payload any) {
	m, ok := payload.(Message)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.peers.Get(from)
	if st == nil || n.stopped {
		return
	}
	if m.Seq <= st.maxSeq {
		return // stale or reordered heartbeat; the freshest already counted
	}
	if st.bootstrap || st.suspected {
		// A heartbeat from a suspected peer proves the expected-arrival
		// estimate wrong — after a sender's downtime the estimate stays
		// wrong forever, because the sequence numbers stopped advancing
		// while the clock did not. Rebase the window on this arrival alone
		// (as with the restart bootstrap) instead of mixing incompatible
		// eras, which would otherwise flap once per heartbeat until the
		// window turns over.
		st.rebase()
		st.bootstrap = false
	}
	st.push(sample{seq: m.Seq, arrival: n.env.Now()}, n.cfg.WindowSize)
	if st.suspected {
		st.suspected = false
		n.emitLocked(from, false)
	}
	n.armLocked(from, st)
}

func (n *Node) emitLocked(subject ident.ID, suspected bool) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), subject, suspected)
	}
}

// snapshot is the node.Cloneable checkpoint: one deep-copied peerState per
// peer plus the sender-side counters. The suspicion-deadline timer handles
// are shared by value — armLocked closures capture the live *peerState, and
// the paired kernel snapshot revalidates the handles — so Restore writes
// back into the SAME peerState objects those closures hold.
type snapshot struct {
	peers   map[ident.ID]peerState
	seq     uint64
	stopped bool
	beat    node.Timer
}

// clonePeer deep-copies st (the samples window is the only reference field;
// the timer handle is immutable and shared).
func clonePeer(st *peerState) peerState {
	out := *st
	out.samples = append([]sample(nil), st.samples...)
	return out
}

// Snapshot implements node.Cloneable.
func (n *Node) Snapshot() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	peers := make(map[ident.ID]peerState, n.peers.Len())
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		peers[p] = clonePeer(st)
		return true
	})
	return &snapshot{peers: peers, seq: n.seq, stopped: n.stopped, beat: n.beat}
}

// Restore implements node.Cloneable: rolls each live *peerState back in
// place, preserving the object identities captured by pending timer
// closures.
func (n *Node) Restore(snap any) {
	s := snap.(*snapshot)
	n.mu.Lock()
	defer n.mu.Unlock()
	//fdlint:allow maprange per-peer in-place writes; each iteration touches only peer p's state
	for p, saved := range s.peers {
		st := n.peers.Get(p)
		samples := append(st.samples[:0], saved.samples...)
		*st = saved
		st.samples = samples
	}
	n.seq = s.seq
	n.stopped = s.stopped
	n.beat = s.beat
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out ident.Set
	n.peers.ForEach(func(p ident.ID, st *peerState) bool {
		if st.suspected {
			out.Add(p)
		}
		return true
	})
	return out
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.peers.Get(id)
	return st != nil && st.suspected
}
