// Package chen implements the NFD-E failure detector of Chen, Toueg and
// Aguilera ("On the quality of service of failure detectors"): heartbeats
// are sent every Δ; the monitor estimates the expected arrival time EA of
// the next heartbeat from a window of past arrivals and suspects the sender
// when the clock passes EA + α. It is the classic adaptive *expected-arrival*
// detector, complementing the φ-accrual comparator.
package chen

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// Message is a sequence-numbered heartbeat.
type Message struct {
	From ident.ID
	Seq  uint64
}

// Config parameterizes an NFD-E detector.
type Config struct {
	// Self is this process's identity.
	Self ident.ID
	// Peers are the monitored processes (Self is ignored if present).
	Peers ident.Set
	// Interval is the heartbeat period Δ.
	Interval time.Duration
	// Alpha is the safety margin added to the expected arrival time.
	Alpha time.Duration
	// WindowSize bounds the arrival sample window (default 100).
	WindowSize int
	// Sink, if set, receives timestamped suspicion transitions.
	Sink fd.SuspicionSink
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Self.Valid() {
		return errors.New("chen: config: Self must be valid")
	}
	if c.Interval <= 0 {
		return errors.New("chen: config: Interval must be positive")
	}
	if c.Alpha <= 0 {
		return errors.New("chen: config: Alpha must be positive")
	}
	if c.WindowSize < 0 {
		return errors.New("chen: config: negative WindowSize")
	}
	return nil
}

// sample is one heartbeat observation.
type sample struct {
	seq     uint64
	arrival time.Duration
}

// peerState tracks one monitored process.
type peerState struct {
	samples   []sample // ring, bounded by WindowSize
	next      int
	maxSeq    uint64
	suspected bool
	timer     node.Timer
	// bootstrap marks a window holding only the synthetic restart sample;
	// the first real heartbeat replaces it wholesale, because mixing the
	// restart-era sample with post-restart sequence numbers would corrupt
	// the expected-arrival estimate.
	bootstrap bool
}

// Node is an NFD-E detector node. Safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	env     node.Env
	cfg     Config
	peers   map[ident.ID]*peerState
	seq     uint64
	stopped bool
	beat    node.Timer
}

var _ node.Handler = (*Node)(nil)
var _ fd.Detector = (*Node)(nil)
var _ fd.Restartable = (*Node)(nil)

// NewNode builds an NFD-E detector on env.
func NewNode(env node.Env, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 100
	}
	n := &Node{env: env, cfg: cfg, peers: make(map[ident.ID]*peerState)}
	cfg.Peers.ForEach(func(p ident.ID) bool {
		if p != cfg.Self {
			n.peers[p] = &peerState{}
		}
		return true
	})
	return n, nil
}

// Start begins heartbeating and arms the initial expectation for every peer
// as if heartbeat 0 had just arrived.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.env.Now()
	// Sorted peer order, not map order: the bootstrap deadlines coincide,
	// and same-instant timers fire in insertion order, so map iteration
	// would leak into the suspicion-event order across same-seed runs.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st, ok := n.peers[p]
		if !ok {
			return true
		}
		st.push(sample{seq: 0, arrival: now}, n.cfg.WindowSize)
		n.armLocked(p, st)
		return true
	})
	n.tickLocked()
}

// Restart implements fd.Restartable. The heartbeat sequence counter is
// never reset — it doubles as an incarnation number, so peers (which
// discard non-increasing sequences) keep trusting the restarted sender.
// Fresh state drops each peer's arrival window and suspicion (emitting the
// implied restores) and re-bootstraps monitoring with a grace period of
// Δ + α; persisted state keeps the windows, whose now-stale expected
// arrivals typically make the node suspect everyone until fresh heartbeats
// arrive — the honest cost of resuming NFD-E from old state.
func (n *Node) Restart(fresh bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.beat != nil {
		n.beat.Stop()
	}
	n.stopped = false
	now := n.env.Now()
	// Sorted peer order, not map order: the restores emitted here share a
	// timestamp and the re-armed deadlines coincide, so map iteration would
	// make same-seed runs differ byte-for-byte.
	n.cfg.Peers.ForEach(func(p ident.ID) bool {
		st, ok := n.peers[p]
		if !ok {
			return true
		}
		if st.timer != nil {
			st.timer.Stop()
		}
		if fresh {
			if st.suspected {
				n.emitLocked(p, false)
			}
			*st = peerState{bootstrap: true}
			st.push(sample{seq: 0, arrival: now}, n.cfg.WindowSize)
		}
		n.armLocked(p, st)
		return true
	})
	n.tickLocked()
}

// Stop halts heartbeating and monitoring.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.beat != nil {
		n.beat.Stop()
	}
	for _, st := range n.peers {
		if st.timer != nil {
			st.timer.Stop()
		}
	}
}

func (st *peerState) push(s sample, capacity int) {
	if len(st.samples) < capacity {
		st.samples = append(st.samples, s)
	} else {
		st.samples[st.next] = s
		st.next = (st.next + 1) % capacity
	}
	if s.seq > st.maxSeq {
		st.maxSeq = s.seq
	}
}

// expectedArrival estimates EA for heartbeat maxSeq+1: the average of
// (A_i − Δ·seq_i) over the window, plus Δ·(maxSeq+1).
func (st *peerState) expectedArrival(interval time.Duration) time.Duration {
	if len(st.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range st.samples {
		sum += s.arrival - time.Duration(s.seq)*interval
	}
	base := sum / time.Duration(len(st.samples))
	return base + time.Duration(st.maxSeq+1)*interval
}

func (n *Node) tickLocked() {
	if n.stopped {
		return
	}
	n.seq++
	n.env.Broadcast(Message{From: n.env.Self(), Seq: n.seq})
	n.beat = n.env.After(n.cfg.Interval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.tickLocked()
	})
}

// armLocked schedules the suspicion deadline EA + α for peer p.
func (n *Node) armLocked(p ident.ID, st *peerState) {
	if st.timer != nil {
		st.timer.Stop()
	}
	deadline := st.expectedArrival(n.cfg.Interval) + n.cfg.Alpha
	wait := deadline - n.env.Now()
	st.timer = n.env.After(wait, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || st.suspected {
			return
		}
		st.suspected = true
		n.emitLocked(p, true)
	})
}

// Deliver implements node.Handler.
func (n *Node) Deliver(from ident.ID, payload any) {
	m, ok := payload.(Message)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.peers[from]
	if !ok || n.stopped {
		return
	}
	if m.Seq <= st.maxSeq {
		return // stale or reordered heartbeat; the freshest already counted
	}
	if st.bootstrap || st.suspected {
		// A heartbeat from a suspected peer proves the expected-arrival
		// estimate wrong — after a sender's downtime the estimate stays
		// wrong forever, because the sequence numbers stopped advancing
		// while the clock did not. Rebase the window on this arrival alone
		// (as with the restart bootstrap) instead of mixing incompatible
		// eras, which would otherwise flap once per heartbeat until the
		// window turns over.
		st.samples = st.samples[:0]
		st.next = 0
		st.bootstrap = false
	}
	st.push(sample{seq: m.Seq, arrival: n.env.Now()}, n.cfg.WindowSize)
	if st.suspected {
		st.suspected = false
		n.emitLocked(from, false)
	}
	n.armLocked(from, st)
}

func (n *Node) emitLocked(subject ident.ID, suspected bool) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnSuspicion(n.env.Now(), n.env.Self(), subject, suspected)
	}
}

// Suspects implements fd.Detector.
func (n *Node) Suspects() ident.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out ident.Set
	for p, st := range n.peers {
		if st.suspected {
			out.Add(p)
		}
	}
	return out
}

// IsSuspected implements fd.Detector.
func (n *Node) IsSuspected(id ident.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.peers[id]
	return ok && st.suspected
}
