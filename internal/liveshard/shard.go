package liveshard

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"asyncfd/internal/chen"
	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
	"asyncfd/internal/phiaccrual"
)

// drainBatch bounds how many queued events a worker folds in per wakeup
// before giving the scan tick a chance to run.
const drainBatch = 256

// shard is one estimator worker: a bounded ingest queue and the exclusively
// owned per-peer records behind it.
type shard struct {
	svc *Service
	idx int
	in  chan event

	// Owned by the worker goroutine (no locking).
	peers   node.DenseMap[*peerRec]
	peerIDs []ident.ID

	// suspected mirrors the workers' transition decisions for cross-shard
	// readers (IsSuspected/Suspects); guarded by mu, written only on
	// transitions.
	mu        sync.Mutex
	suspected ident.Set

	processed     atomic.Uint64
	droppedOldest atomic.Uint64
	droppedNewest atomic.Uint64
	scans         atomic.Uint64
	hist          latencyHist
}

// run is the worker loop: fold ingested heartbeats into the estimators,
// sweep for timeouts every ScanInterval, exit on Close.
func (sh *shard) run() {
	defer sh.svc.wg.Done()
	ticker := time.NewTicker(sh.svc.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case ev := <-sh.in:
			sh.fold(ev)
			// Drain opportunistically to amortize scheduling, but leave
			// the loop regularly so scan ticks are not starved.
			for i := 1; i < drainBatch; i++ {
				select {
				case ev := <-sh.in:
					sh.fold(ev)
				default:
					i = drainBatch
				}
			}
		case <-ticker.C:
			sh.scan()
		case <-sh.svc.done:
			return
		}
	}
}

// fold applies one heartbeat sighting to its estimator.
func (sh *shard) fold(ev event) {
	rec := sh.peers.Get(ev.peer)
	if rec == nil {
		return // unknown peer: not registered at Start
	}
	rec.est.Observe(ev.at)
	if rec.suspected {
		sh.transition(rec, false)
	}
	sh.hist.record(sh.svc.Now() - ev.ingest)
	sh.processed.Add(1)
}

// scan sweeps the shard's peers for silence-driven suspicion transitions.
func (sh *shard) scan() {
	now := sh.svc.Now()
	for _, id := range sh.peerIDs {
		rec := sh.peers.Get(id)
		if !rec.suspected && rec.est.Suspected(now) {
			sh.transition(rec, true)
		}
	}
	sh.scans.Add(1)
}

// transition flips one peer's suspicion state, mirrors it for cross-shard
// readers and emits to the sink.
func (sh *shard) transition(rec *peerRec, suspected bool) {
	rec.suspected = suspected
	sh.mu.Lock()
	if suspected {
		sh.suspected.Add(rec.id)
	} else {
		sh.suspected.Remove(rec.id)
	}
	sh.mu.Unlock()
	if sink := sh.svc.cfg.Sink; sink != nil {
		sink.OnSuspicion(sh.svc.Now(), sh.svc.cfg.Self, rec.id, suspected)
	}
}

// heartbeatFrom extracts the sending peer from any of the heartbeat-shaped
// wire payloads.
func heartbeatFrom(payload any) (ident.ID, bool) {
	switch m := payload.(type) {
	case heartbeat.Message:
		return m.From, true
	case phiaccrual.Message:
		return m.From, true
	case chen.Message:
		return m.From, true
	case heartbeat.VectorMessage:
		return m.From, true
	default:
		return ident.Nil, false
	}
}

// latencyHist is a lock-free power-of-two histogram of ingest-to-estimate
// latencies: bucket i holds samples in [2^i, 2^(i+1)) microseconds. Workers
// record; Stats readers aggregate concurrently.
type latencyHist struct {
	buckets [32]atomic.Uint64
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 → bucket 0, [2^i,2^(i+1)) → i+1
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
}

// quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded latencies, or 0 if none were recorded.
func (h *latencyHist) quantile(q float64) time.Duration {
	var counts [32]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<31) * time.Microsecond
}

// merge folds other's counts into h (used to aggregate shards).
func (h *latencyHist) merge(other *latencyHist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
}

// Stats is a point-in-time aggregate over all shards.
type Stats struct {
	// Shards is the worker count K.
	Shards int
	// Processed counts heartbeats folded into estimators.
	Processed uint64
	// DroppedOldest counts queued events evicted under overload;
	// DroppedNewest counts arrivals dropped when eviction lost a race.
	DroppedOldest, DroppedNewest uint64
	// Scans counts completed timeout sweeps across all workers.
	Scans uint64
	// QueueLen is the instantaneous total ingest backlog.
	QueueLen int
	// IngestP50 and IngestP99 bound the median and 99th-percentile
	// ingest-to-estimate latency.
	IngestP50, IngestP99 time.Duration
}

// Dropped is the total of both drop classes.
func (st Stats) Dropped() uint64 { return st.DroppedOldest + st.DroppedNewest }

// Stats aggregates counters across shards. Safe to call concurrently with
// ingestion.
func (s *Service) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	var agg latencyHist
	for _, sh := range s.shards {
		st.Processed += sh.processed.Load()
		st.DroppedOldest += sh.droppedOldest.Load()
		st.DroppedNewest += sh.droppedNewest.Load()
		st.Scans += sh.scans.Load()
		st.QueueLen += len(sh.in)
		agg.merge(&sh.hist)
	}
	st.IngestP50 = agg.quantile(0.50)
	st.IngestP99 = agg.quantile(0.99)
	return st
}
