// Package liveshard is the sharded live detector runtime: the bridge from
// the simulator-only engine to a service that monitors 10k+ peers over real
// sockets (cmd/fdload drives it at target heartbeat rates).
//
// Architecture: peers are hash-partitioned across K estimator workers.
// Each worker exclusively owns its peers' heartbeat state (a shard-callable
// estimator per peer — heartbeat.Estimator or phiaccrual.Estimator), so the
// per-heartbeat hot path takes no locks at all; cross-shard coordination
// exists only at the edges (the ingest queues in, the suspicion sink out).
// Ingest queues are bounded with a drop-oldest policy under overload: a
// heartbeat that cannot be enqueued evicts the oldest queued event first,
// because the freshest sighting is the one that matters to a failure
// detector — parking the producer (the socket read loop) would instead
// backpressure the transport into exactly the head-of-line stalls the
// sharding exists to remove. Drops are counted, never silent.
//
// Suspicion transitions are emitted to an fd.SuspicionSink with worker-side
// timestamps, so the live service plugs into the same trace/qos pipeline as
// the simulator (Chen-style detection and mistake metrics over a real run).
package liveshard

import (
	"errors"
	"sync"
	"time"

	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/node"
)

// PeerEstimator is the per-peer estimation state a shard worker owns.
// heartbeat.Estimator and phiaccrual.Estimator implement it. Implementations
// need no internal locking: all calls for one peer come from its shard's
// worker goroutine.
type PeerEstimator interface {
	// Observe records a heartbeat arrival at time at.
	Observe(at time.Duration)
	// Suspected reports whether the peer is suspected at time now.
	Suspected(now time.Duration) bool
}

// Config parameterizes the sharded detector service.
type Config struct {
	// Self is the monitor's identity (stamped on emitted transitions).
	Self ident.ID
	// Shards is the worker count K (default 1).
	Shards int
	// QueueLen bounds each shard's ingest queue (default 1024).
	QueueLen int
	// ScanInterval is how often each worker sweeps its peers for timeouts
	// (default 25ms).
	ScanInterval time.Duration
	// NewEstimator builds the per-peer estimation state, primed at time
	// now (required). Called once per peer at Start.
	NewEstimator func(peer ident.ID, now time.Duration) PeerEstimator
	// Sink, if set, receives suspicion transitions with worker-side
	// timestamps. It must be safe for concurrent use (trace.Log is).
	Sink fd.SuspicionSink
}

// event is one heartbeat sighting flowing into a shard.
type event struct {
	peer   ident.ID
	at     time.Duration // arrival timestamp (service clock)
	ingest time.Duration // enqueue timestamp, for ingest-to-estimate latency
}

// peerRec is a worker-owned per-peer record.
type peerRec struct {
	id        ident.ID
	est       PeerEstimator
	suspected bool
}

// Service is the sharded detector. Create with New, register peers with
// AddPeers, then Start; Observe (or Deliver) feeds heartbeats; Close joins
// the workers.
type Service struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	peers   []ident.ID // registered pre-Start
	started bool
	closed  bool

	shards []*shard
	done   chan struct{}
	wg     sync.WaitGroup
}

// New builds a service. NewEstimator is required.
func New(cfg Config) (*Service, error) {
	if cfg.NewEstimator == nil {
		return nil, errors.New("liveshard: Config.NewEstimator is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 25 * time.Millisecond
	}
	s := &Service{
		cfg:    cfg,
		start:  time.Now(),
		shards: make([]*shard, cfg.Shards),
		done:   make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			svc: s,
			idx: i,
			in:  make(chan event, cfg.QueueLen),
		}
	}
	return s, nil
}

// Now returns the service clock (time since New). All event timestamps and
// emitted transitions are offsets on this clock.
func (s *Service) Now() time.Duration { return time.Since(s.start) }

// AddPeers registers monitored peers. Must be called before Start.
func (s *Service) AddPeers(ids ...ident.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("liveshard: AddPeers after Start")
	}
	s.peers = append(s.peers, ids...)
}

// Shards returns the worker count K.
func (s *Service) Shards() int { return len(s.shards) }

// shardOf maps a peer to its owning shard: a multiplicative (Fibonacci)
// hash spreads even dense sequential IDs uniformly across workers.
func (s *Service) shardOf(id ident.ID) *shard {
	h := uint64(uint32(id)) * 0x9E3779B97F4A7C15
	return s.shards[(h>>33)%uint64(len(s.shards))]
}

// Start primes every peer's estimator (the start of monitoring counts as a
// sighting) and launches the K workers.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("liveshard: double Start")
	}
	s.started = true
	now := s.Now()
	for _, id := range s.peers {
		sh := s.shardOf(id)
		sh.peers.Put(id, &peerRec{id: id, est: s.cfg.NewEstimator(id, now)})
		sh.peerIDs = append(sh.peerIDs, id)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
}

// Close stops the workers and joins them. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.wg.Wait()
}

// Observe ingests a heartbeat sighting for peer at the current service
// time. It never blocks: under overload the shard's oldest queued event is
// evicted to make room (drop-oldest), and if the queue is still full — a
// racing producer won the slot — the new event is dropped. Both drops are
// counted.
func (s *Service) Observe(peer ident.ID) {
	now := s.Now()
	sh := s.shardOf(peer)
	ev := event{peer: peer, at: now, ingest: now}
	select {
	case sh.in <- ev:
		return
	default:
	}
	select {
	case <-sh.in:
		sh.droppedOldest.Add(1)
	default:
	}
	select {
	case sh.in <- ev:
	default:
		sh.droppedNewest.Add(1)
	}
}

// Deliver implements node.Handler, so a Service can sit directly behind a
// tcpnet.Transport (with Config.ConcurrentDeliver set: the service is
// internally synchronized). The heartbeat's own From field identifies the
// peer, which lets one inbound connection carry heartbeats for many logical
// peers (how cmd/fdload reaches 10k peers over a bounded socket count).
func (s *Service) Deliver(_ ident.ID, payload any) {
	if id, ok := heartbeatFrom(payload); ok {
		s.Observe(id)
	}
}

var _ node.Handler = (*Service)(nil)

// IsSuspected reports whether peer is currently suspected.
func (s *Service) IsSuspected(peer ident.ID) bool {
	sh := s.shardOf(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.suspected.Has(peer)
}

// Suspects returns the set of currently suspected peers.
func (s *Service) Suspects() ident.Set {
	var out ident.Set
	for _, sh := range s.shards {
		sh.mu.Lock()
		out.Union(sh.suspected)
		sh.mu.Unlock()
	}
	return out
}
