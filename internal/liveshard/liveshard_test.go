package liveshard

import (
	"sync"
	"testing"
	"time"

	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/phiaccrual"
	"asyncfd/internal/trace"
)

func hbEstimator(timeout time.Duration) func(ident.ID, time.Duration) PeerEstimator {
	return func(_ ident.ID, now time.Duration) PeerEstimator {
		return heartbeat.NewEstimator(timeout, now)
	}
}

func TestNewRequiresEstimator(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing NewEstimator accepted")
	}
}

func TestShardPartitioning(t *testing.T) {
	s, err := New(Config{Shards: 16, NewEstimator: hbEstimator(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Every peer maps to exactly one shard, and dense sequential IDs
	// spread across all 16 workers (the Fibonacci hash must not clump).
	seen := make(map[int]int)
	for id := ident.ID(0); id < 4096; id++ {
		sh := s.shardOf(id)
		if sh != s.shardOf(id) {
			t.Fatalf("unstable shard assignment for %v", id)
		}
		seen[sh.idx]++
	}
	if len(seen) != 16 {
		t.Fatalf("4096 dense IDs landed on %d of 16 shards", len(seen))
	}
	for idx, count := range seen {
		if count < 64 || count > 1024 {
			t.Errorf("shard %d holds %d of 4096 peers; distribution badly skewed", idx, count)
		}
	}
}

// TestSuspicionEndToEnd: silent peers get suspected, resumed heartbeats
// restore trust, transitions reach the sink.
func TestSuspicionEndToEnd(t *testing.T) {
	log := &trace.Log{}
	s, err := New(Config{
		Self:         99,
		Shards:       4,
		ScanInterval: 2 * time.Millisecond,
		NewEstimator: hbEstimator(30 * time.Millisecond),
		Sink:         log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AddPeers(0, 1, 2)
	s.Start()

	// Feed peers 0 and 1; starve peer 2.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Observe(0)
				s.Observe(1)
			case <-stop:
				return
			}
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return s.IsSuspected(2) })
	if s.IsSuspected(0) || s.IsSuspected(1) {
		t.Errorf("live peers wrongly suspected: %v", s.Suspects())
	}

	// Peer 2 comes back: trust must be restored.
	resurrect := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Observe(2)
			case <-resurrect:
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return !s.IsSuspected(2) })
	close(resurrect)
	close(stop)
	wg.Wait()

	// The sink saw both transitions with the monitor's identity.
	events := log.Events()
	var sawSuspect, sawTrust bool
	for _, e := range events {
		if e.Observer != 99 || e.Subject != 2 {
			continue
		}
		if e.Suspected {
			sawSuspect = true
		} else if sawSuspect {
			sawTrust = true
		}
	}
	if !sawSuspect || !sawTrust {
		t.Errorf("sink missed transitions for peer 2: %v", events)
	}
	if st := s.Stats(); st.Processed == 0 || st.Scans == 0 {
		t.Errorf("stats not accounted: %+v", st)
	}
}

// recordingEstimator captures the observation times a worker feeds it.
type recordingEstimator struct {
	mu  sync.Mutex
	ats []time.Duration
}

func (r *recordingEstimator) Observe(at time.Duration) {
	r.mu.Lock()
	r.ats = append(r.ats, at)
	r.mu.Unlock()
}
func (r *recordingEstimator) Suspected(time.Duration) bool { return false }
func (r *recordingEstimator) seen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ats)
}

// TestOverloadDropsOldest: with workers not yet running, a queue of
// capacity Q offered N>Q events keeps the NEWEST Q and counts the drops.
func TestOverloadDropsOldest(t *testing.T) {
	rec := &recordingEstimator{}
	s, err := New(Config{
		Shards:   1,
		QueueLen: 4,
		NewEstimator: func(ident.ID, time.Duration) PeerEstimator {
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AddPeers(0)
	// Not started: the queue fills and overflows deterministically.
	for i := 0; i < 10; i++ {
		s.Observe(0)
	}
	st := s.Stats()
	if st.DroppedOldest != 6 || st.DroppedNewest != 0 {
		t.Fatalf("drops = %d oldest / %d newest, want 6/0", st.DroppedOldest, st.DroppedNewest)
	}
	if st.QueueLen != 4 {
		t.Fatalf("backlog = %d, want 4", st.QueueLen)
	}
	// Start the worker: exactly the 4 newest events survive to the
	// estimator, in order.
	s.Start()
	waitFor(t, 5*time.Second, func() bool { return rec.seen() == 4 })
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i := 1; i < len(rec.ats); i++ {
		if rec.ats[i] < rec.ats[i-1] {
			t.Errorf("surviving events out of order: %v", rec.ats)
		}
	}
	s.Close()
	if got := s.Stats().Processed; got != 4 {
		t.Errorf("processed = %d, want 4", got)
	}
}

// TestConcurrentObserve hammers Observe from many goroutines (run under
// -race in CI) while stats are read concurrently.
func TestConcurrentObserve(t *testing.T) {
	s, err := New(Config{
		Shards:       8,
		QueueLen:     64,
		ScanInterval: time.Millisecond,
		NewEstimator: hbEstimator(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	const peers = 128
	ids := make([]ident.ID, peers)
	for i := range ids {
		ids[i] = ident.ID(i)
	}
	s.AddPeers(ids...)
	s.Start()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Observe(ident.ID((g*251 + i) % peers))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			s.Close()
			st := s.Stats()
			if st.Processed+st.Dropped() != 8*2000-uint64(st.QueueLen) {
				t.Errorf("event accounting leak: %+v", st)
			}
			if st.Processed > 0 && st.IngestP99 == 0 {
				t.Errorf("latency histogram empty despite %d processed", st.Processed)
			}
			return
		default:
			_ = s.Stats()
			_ = s.Suspects()
			time.Sleep(time.Millisecond)
		}
	}
}

// TestDeliverPayloadKinds: the node.Handler entry recognizes every
// heartbeat-shaped wire payload by its own From field.
func TestDeliverPayloadKinds(t *testing.T) {
	if id, ok := heartbeatFrom(heartbeat.Message{From: 3}); !ok || id != 3 {
		t.Error("heartbeat.Message not recognized")
	}
	if id, ok := heartbeatFrom(phiaccrual.Message{From: 4}); !ok || id != 4 {
		t.Error("phiaccrual.Message not recognized")
	}
	if id, ok := heartbeatFrom(heartbeat.VectorMessage{From: 5}); !ok || id != 5 {
		t.Error("heartbeat.VectorMessage not recognized")
	}
	if _, ok := heartbeatFrom("garbage"); ok {
		t.Error("garbage payload recognized")
	}
}

// TestPhiEstimatorIntegration runs the φ-accrual estimator under the
// sharded service.
func TestPhiEstimatorIntegration(t *testing.T) {
	s, err := New(Config{
		Shards:       2,
		ScanInterval: 2 * time.Millisecond,
		NewEstimator: func(_ ident.ID, now time.Duration) PeerEstimator {
			e, err := phiaccrual.NewEstimator(phiaccrual.EstimatorConfig{
				Interval:  5 * time.Millisecond,
				Threshold: 4,
			}, now)
			if err != nil {
				panic(err)
			}
			return e
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AddPeers(0, 1)
	s.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Observe(0)
			case <-stop:
				return
			}
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return s.IsSuspected(1) })
	if s.IsSuspected(0) {
		t.Error("heartbeating peer wrongly suspected by φ estimator")
	}
	close(stop)
	wg.Wait()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
