package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// v2Report builds a minimal v2 report with one E1 row.
func v2Report(mean, ci95 float64) *benchReport {
	repeat := 5
	return &benchReport{
		Schema: "asyncfd-bench/v2",
		Quick:  true,
		Seed:   1,
		Repeat: &repeat,
		Experiments: []experimentBench{{
			ID: "E1",
			Rows: []metricRow{{
				Cell: "n=8/async", Metric: "det_avg_ms", N: 5,
				Mean: mean, CI95: ci95,
			}},
		}},
	}
}

// writeReport marshals r into dir and returns the path.
func writeReport(t *testing.T, dir, name string, r *benchReport) string {
	t.Helper()
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runDiff runs benchdiff over the two reports and returns the regression
// list and captured output.
func runDiff(t *testing.T, args []string, old, cand *benchReport) ([]string, string) {
	t.Helper()
	dir := t.TempDir()
	paths := []string{writeReport(t, dir, "old.json", old), writeReport(t, dir, "new.json", cand)}
	var out strings.Builder
	regressions, err := run(append(args, paths...), &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return regressions, out.String()
}

func TestIdenticalReportsPass(t *testing.T) {
	regressions, out := runDiff(t, nil, v2Report(12.5, 0.8), v2Report(12.5, 0.8))
	if len(regressions) != 0 {
		t.Errorf("identical reports flagged: %v\n%s", regressions, out)
	}
}

func TestInsideIntervalPasses(t *testing.T) {
	regressions, _ := runDiff(t, nil, v2Report(12.5, 0.8), v2Report(13.1, 0.2))
	if len(regressions) != 0 {
		t.Errorf("in-interval drift flagged: %v", regressions)
	}
}

func TestOutsideIntervalWorseFails(t *testing.T) {
	regressions, out := runDiff(t, nil, v2Report(12.5, 0.8), v2Report(14.0, 0.8))
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly 1\n%s", regressions, out)
	}
	if !strings.Contains(regressions[0], "E1 n=8/async det_avg_ms") {
		t.Errorf("regression line lacks the row key: %q", regressions[0])
	}
}

func TestOutsideIntervalBetterIsImprovement(t *testing.T) {
	// det_avg_ms is a cost: a big drop is an improvement, not a regression.
	regressions, out := runDiff(t, nil, v2Report(12.5, 0.8), v2Report(10.0, 0.8))
	if len(regressions) != 0 {
		t.Errorf("improvement flagged as regression: %v", regressions)
	}
	if !strings.Contains(out, "improvement") {
		t.Errorf("improvement not reported:\n%s", out)
	}
}

func TestHigherBetterMetricDirection(t *testing.T) {
	mk := func(mean float64) *benchReport {
		r := v2Report(mean, 0.01)
		r.Experiments[0].Rows[0].Metric = "query_accuracy"
		return r
	}
	if regressions, _ := runDiff(t, nil, mk(0.99), mk(0.80)); len(regressions) != 1 {
		t.Errorf("query_accuracy drop not flagged: %v", regressions)
	}
	if regressions, _ := runDiff(t, nil, mk(0.80), mk(0.99)); len(regressions) != 0 {
		t.Errorf("query_accuracy gain flagged: %v", regressions)
	}
}

func TestZeroWidthIntervalRequiresExactMatch(t *testing.T) {
	// R=1 rows have ci95 = 0: ANY drift fails, in either direction — the
	// engine is deterministic, so drift means behavior changed and the
	// baseline must be regenerated to bless it.
	if regressions, _ := runDiff(t, nil, v2Report(12.5, 0), v2Report(12.6, 0)); len(regressions) != 1 {
		t.Errorf("zero-width worse drift not flagged: %v", regressions)
	}
	regressions, _ := runDiff(t, nil, v2Report(12.5, 0), v2Report(12.4, 0))
	if len(regressions) != 1 {
		t.Fatalf("zero-width better-direction drift not flagged: %v", regressions)
	}
	if !strings.Contains(regressions[0], "deterministic row changed") {
		t.Errorf("zero-width regression lacks the explanation: %q", regressions[0])
	}
	// -slack widens the zero interval into a relative band.
	if regressions, _ := runDiff(t, []string{"-slack", "0.05"}, v2Report(12.5, 0), v2Report(12.6, 0)); len(regressions) != 0 {
		t.Errorf("slack did not widen the interval: %v", regressions)
	}
}

func TestMissingRowIsCoverageRegression(t *testing.T) {
	cand := v2Report(12.5, 0.8)
	cand.Experiments[0].Rows = nil
	regressions, _ := runDiff(t, nil, v2Report(12.5, 0.8), cand)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "missing") {
		t.Errorf("missing row not flagged as coverage regression: %v", regressions)
	}
}

func TestAddedRowsPass(t *testing.T) {
	cand := v2Report(12.5, 0.8)
	cand.Experiments[0].Rows = append(cand.Experiments[0].Rows, metricRow{
		Cell: "n=8/async", Metric: "det_max_ms", N: 5, Mean: 30, CI95: 1,
	})
	regressions, out := runDiff(t, nil, v2Report(12.5, 0.8), cand)
	if len(regressions) != 0 {
		t.Errorf("candidate-only rows flagged: %v", regressions)
	}
	if !strings.Contains(out, "1 rows added") {
		t.Errorf("addition not counted:\n%s", out)
	}
}

// v1Report builds a rowless v1 report with the given throughput.
func v1Report(eps, rps, nspr float64) *benchReport {
	return &benchReport{
		Schema: "asyncfd-bench/v1", Quick: true, Seed: 1,
		EventsPerSec: eps, RunsPerSec: rps, NSPerRun: nspr,
		Experiments: []experimentBench{{ID: "E1", Events: 100, Runs: 8}},
	}
}

func TestV1ThroughputThreshold(t *testing.T) {
	base := v1Report(1e6, 500, 2e6)
	// 10% slower: inside the default 25% threshold.
	if regressions, _ := runDiff(t, nil, base, v1Report(0.9e6, 450, 2.2e6)); len(regressions) != 0 {
		t.Errorf("10%% throughput drop flagged at 25%% threshold: %v", regressions)
	}
	// 50% slower on all three fields: outside.
	regressions, _ := runDiff(t, nil, base, v1Report(0.5e6, 250, 4e6))
	if len(regressions) != 3 {
		t.Errorf("50%% drop regressions = %v, want all 3 throughput fields", regressions)
	}
	// Tightened threshold catches the 10% drop too.
	if regressions, _ := runDiff(t, []string{"-throughput-threshold", "0.05"}, base, v1Report(0.9e6, 450, 2.2e6)); len(regressions) != 3 {
		t.Errorf("5%% threshold missed the 10%% drop: %v", regressions)
	}
}

func TestRowlessBaselineStillGatesThroughput(t *testing.T) {
	// A v1 baseline against a v2 candidate must not disable every rule:
	// with no baseline rows to vouch for, the throughput threshold gates.
	old := v1Report(1e6, 500, 2e6)
	cand := v2Report(12.5, 0.8)
	cand.EventsPerSec, cand.RunsPerSec, cand.NSPerRun = 0.5e6, 250, 4e6
	regressions, _ := runDiff(t, nil, old, cand)
	if len(regressions) != 3 {
		t.Errorf("v1 baseline vs v2 candidate: regressions = %v, want the 3 throughput fields", regressions)
	}
}

func TestV2ThroughputIsInformationalOnly(t *testing.T) {
	old, cand := v2Report(12.5, 0.8), v2Report(12.5, 0.8)
	old.EventsPerSec, cand.EventsPerSec = 1e6, 1e5 // 10× slower machine
	regressions, out := runDiff(t, nil, old, cand)
	if len(regressions) != 0 {
		t.Errorf("v2 throughput gated: %v", regressions)
	}
	if !strings.Contains(out, "not gated") {
		t.Errorf("v2 throughput change not reported as info:\n%s", out)
	}
}

func TestUsageAndInputErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"only-one.json"}, &out); err == nil {
		t.Error("one argument accepted")
	}
	if _, err := run([]string{"a.json", "b.json", "c.json"}, &out); err == nil {
		t.Error("three arguments accepted")
	}
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", v2Report(1, 0))
	if _, err := run([]string{filepath.Join(dir, "missing.json"), good}, &out); err == nil {
		t.Error("unreadable baseline accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"hello": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{good, bad}, &out); err == nil {
		t.Error("non-bench JSON accepted")
	}
}

// writeBudget writes a budget allowance file into dir and returns its path.
func writeBudget(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "budgets.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// v2Report2Rows builds a report with two det_avg_ms cells, both at the given
// means, so one metric can regress in two places at once.
func v2Report2Rows(mean1, mean2 float64) *benchReport {
	r := v2Report(mean1, 0.1)
	r.Experiments[0].Rows = append(r.Experiments[0].Rows, metricRow{
		Cell: "n=16/async", Metric: "det_avg_ms", N: 5, Mean: mean2, CI95: 0.1,
	})
	return r
}

func TestBudgetAbsorbsListedMetric(t *testing.T) {
	dir := t.TempDir()
	budget := writeBudget(t, dir, `{"budgets": {"det_avg_ms": 2}}`)
	regressions, out := runDiff(t, []string{"-budget", budget},
		v2Report2Rows(12.5, 20.0), v2Report2Rows(14.0, 25.0))
	if len(regressions) != 0 {
		t.Errorf("budgeted regressions still failed the gate: %v\n%s", regressions, out)
	}
	if !strings.Contains(out, "budgeted") || !strings.Contains(out, "0 left") {
		t.Errorf("budget consumption not reported:\n%s", out)
	}
	if !strings.Contains(out, "0 regressions (2 budgeted)") {
		t.Errorf("summary lacks the budgeted count:\n%s", out)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Allowance 1, regressions 2 on the same metric: the first is blessed in
	// report order, the second fails the gate.
	dir := t.TempDir()
	budget := writeBudget(t, dir, `{"budgets": {"det_avg_ms": 1}}`)
	regressions, out := runDiff(t, []string{"-budget", budget},
		v2Report2Rows(12.5, 20.0), v2Report2Rows(14.0, 25.0))
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly 1 (budget of 1 exhausted)\n%s", regressions, out)
	}
	// Report order is the sorted row-key order, where "n=16" < "n=8"
	// lexicographically: the n=16 cell consumes the allowance.
	if !strings.Contains(regressions[0], "n=8/async") {
		t.Errorf("wrong regression survived: allowance must be spent in report order, got %q", regressions[0])
	}
	if !strings.Contains(out, "1 regressions (1 budgeted)") {
		t.Errorf("summary lacks the split:\n%s", out)
	}
}

func TestBudgetOtherMetricDoesNotAbsorb(t *testing.T) {
	dir := t.TempDir()
	budget := writeBudget(t, dir, `{"budgets": {"mistakes": 5}}`)
	regressions, _ := runDiff(t, []string{"-budget", budget},
		v2Report(12.5, 0.8), v2Report(14.0, 0.8))
	if len(regressions) != 1 {
		t.Errorf("allowance on an unrelated metric absorbed a det_avg_ms regression: %v", regressions)
	}
}

func TestBudgetCoversThroughputFields(t *testing.T) {
	dir := t.TempDir()
	budget := writeBudget(t, dir, `{"budgets": {"events_per_sec": 1, "ns_per_run": 1}}`)
	regressions, _ := runDiff(t, []string{"-budget", budget},
		v1Report(1e6, 500, 2e6), v1Report(0.5e6, 250, 4e6))
	if len(regressions) != 1 || !strings.Contains(regressions[0], "runs_per_sec") {
		t.Errorf("regressions = %v, want only the unbudgeted runs_per_sec", regressions)
	}
}

func TestBudgetFileErrors(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", v2Report(12.5, 0.8))
	cand := writeReport(t, dir, "new.json", v2Report(12.5, 0.8))
	var out strings.Builder
	for name, body := range map[string]string{
		"malformed": `{"budgets": `,
		"no-object": `{"hello": 1}`,
		"negative":  `{"budgets": {"det_avg_ms": -1}}`,
	} {
		path := writeBudget(t, dir, body)
		if _, err := run([]string{"-budget", path, old, cand}, &out); err == nil {
			t.Errorf("%s budget file accepted", name)
		}
	}
	if _, err := run([]string{"-budget", filepath.Join(dir, "missing.json"), old, cand}, &out); err == nil {
		t.Error("missing budget file accepted")
	}
}

// TestUpdateRoundTripWithBudget: -budget and -update compose — the blessed
// count reflects only the unbudgeted regressions, the baseline still becomes
// the candidate byte-exactly, and the post-update diff is clean.
func TestUpdateRoundTripWithBudget(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", v2Report2Rows(12.5, 20.0))
	newPath := writeReport(t, dir, "new.json", v2Report2Rows(14.0, 25.0))
	budget := writeBudget(t, dir, `{"budgets": {"det_avg_ms": 1}}`)

	var out strings.Builder
	regressions, err := run([]string{"-budget", budget, "-update", oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("-update returned regressions %v, want none (blessed)", regressions)
	}
	if !strings.Contains(out.String(), "(1 regressions blessed)") {
		t.Errorf("bless count should be the unbudgeted regressions only:\n%s", out.String())
	}
	oldRaw, _ := os.ReadFile(oldPath)
	newRaw, _ := os.ReadFile(newPath)
	if string(oldRaw) != string(newRaw) {
		t.Fatal("-update did not copy the candidate byte-exactly")
	}

	out.Reset()
	regressions, err = run([]string{"-budget", budget, oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Errorf("post-update diff not clean: %v\n%s", regressions, out.String())
	}
}

// TestUpdateRoundTrip: -update must regenerate the baseline in place from
// the candidate — byte-exactly — so update→diff round-trips clean even when
// the pre-update comparison was a hard regression.
func TestUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", v2Report(12.5, 0))
	newPath := writeReport(t, dir, "new.json", v2Report(14.0, 0.8))

	// Sanity: without -update this pair is a regression.
	var out strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 {
		t.Fatalf("pre-update regressions = %v, want 1", regressions)
	}

	// -update blesses it: exit-clean (no regressions returned) and the
	// baseline file now carries the candidate's bytes verbatim.
	out.Reset()
	regressions, err = run([]string{"-update", oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("-update returned regressions %v, want none (blessed)", regressions)
	}
	if !strings.Contains(out.String(), "regenerated") {
		t.Errorf("-update did not report the regeneration:\n%s", out.String())
	}
	oldRaw, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRaw, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(oldRaw) != string(newRaw) {
		t.Fatal("-update did not copy the candidate byte-exactly")
	}

	// Round trip: diffing the updated baseline against the candidate is clean.
	out.Reset()
	regressions, err = run([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Errorf("post-update diff not clean: %v\n%s", regressions, out.String())
	}
}
