// Command benchdiff compares two asyncfd-bench JSON reports (schema v1 or
// v2, as written by fdbench -json) and flags regressions, so CI — or a
// reviewer — can gate a PR on the committed BENCH trajectory instead of
// eyeballing it.
//
// Usage:
//
//	benchdiff [-slack F] [-throughput-threshold F] [-quiet] [-update] OLD.json NEW.json
//
// OLD is the baseline (e.g. the committed BENCH_quick_ci.json), NEW the
// candidate (e.g. a freshly generated report on the same flags). Exit
// status: 0 when no regression is found, 1 on regression, 2 on usage or
// input errors — so `benchdiff old new` works directly as a CI gate.
//
// # The interval rule (v2 rows)
//
// When either report carries asyncfd-bench/v2 distribution rows, those are
// the deterministic, machine-independent part, and benchdiff compares them
// cell by cell: rows are matched on (experiment id, cell, metric) and the
// candidate's mean is tested against the baseline's 95% confidence
// interval. A matched metric is a regression when its mean moved OUTSIDE
// [mean−ci95, mean+ci95] of the baseline IN THE WORSE DIRECTION — worse is
// metric-aware: detection/convergence times, mistake and storm counts and
// traffic are costs (up = worse), while query_accuracy, holds, clean and
// never_suspected are scores (down = worse). Moves outside the interval in
// the better direction are reported as improvements but do not fail the
// gate. Baseline rows missing from the candidate (a lost experiment, cell
// or metric) are coverage regressions and fail; candidate-only rows are
// reported as additions and pass. -slack F widens every baseline interval
// by F×|mean| (default 0) for deliberately loose gates.
//
// Zero-width intervals (R < 2 families, or zero spread) degrade to exact
// mean equality, and there drift fails in EITHER direction — which is
// precisely right for this engine: rows are byte-identical for a fixed
// (seed, configuration) whatever the machine or -parallel value, so any
// drift at all, "improvement" included, is a behavior change someone must
// either fix or bless by regenerating the committed baseline.
//
// # The throughput rule (v1 reports)
//
// When the BASELINE has no rows (plain v1), its only comparable content is
// engine throughput, which is machine- and load-dependent — so benchdiff
// applies a plain-percentage threshold instead: events_per_sec,
// runs_per_sec (higher better) and ns_per_run (lower better) may worsen by
// up to -throughput-threshold (default 0.25, i.e. 25%) before the exit
// status flips. This holds even when the candidate is v2 — rows the
// baseline cannot vouch for must not turn the gate into a no-op. When the
// baseline has rows, those are the gate and throughput changes are printed
// as information only.
//
// Mismatched quick/seed flags between the reports make means incomparable;
// benchdiff warns on stderr but still runs the comparison.
//
// # Regression budgets (-budget)
//
// -budget FILE loads per-metric regression allowances from a JSON file of
// the form {"budgets": {"det_avg_ms": 2, "mistakes": 1}}. Each regression
// whose metric still has budget left is downgraded to an informational
// "budgeted" line and consumes one unit; once a metric's allowance is
// exhausted, further regressions on it fail the gate as usual. Throughput
// regressions are budgetable under their field names (events_per_sec,
// runs_per_sec, ns_per_run). Budgets exist for planned transitions — a PR
// that knowingly worsens a handful of cells on one metric can land with a
// small explicit allowance instead of a blanket -update bless — and the
// budget file is committed next to the baseline so the allowance itself is
// reviewed.
//
// # Blessing changes (-update)
//
// -update regenerates the golden baseline in place: after printing the
// comparison, the candidate report's bytes replace OLD.json verbatim and
// the exit status is 0 whatever the diff said — the flag exists precisely
// to bless intended regressions (or an enlarged row set) when a PR changes
// engine behavior on purpose. The copy is byte-exact, so an immediately
// following `benchdiff OLD.json NEW.json` is guaranteed clean — the
// round-trip a unit test enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// metricRow mirrors the rows of the asyncfd-bench/v2 schema.
type metricRow struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	CI95   float64 `json:"ci95"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

type experimentBench struct {
	ID     string      `json:"id"`
	Events int64       `json:"events"`
	Runs   int64       `json:"runs"`
	Rows   []metricRow `json:"rows"`
}

type benchReport struct {
	Schema       string            `json:"schema"`
	Quick        bool              `json:"quick"`
	Seed         int64             `json:"seed"`
	Repeat       *int              `json:"repeat"`
	EventsPerSec float64           `json:"events_per_sec"`
	RunsPerSec   float64           `json:"runs_per_sec"`
	NSPerRun     float64           `json:"ns_per_run"`
	Experiments  []experimentBench `json:"experiments"`
}

func (r *benchReport) hasRows() bool {
	for _, e := range r.Experiments {
		if len(e.Rows) > 0 {
			return true
		}
	}
	return false
}

// higherBetter lists the score metrics, where larger is better. Every
// other metric is a cost (detection/convergence times, mistake, storm and
// suspicion counts, traffic, decision latency): smaller is better.
var higherBetter = map[string]bool{
	"query_accuracy":  true,
	"clean":           true,
	"holds":           true,
	"never_suspected": true,
}

// rowKey addresses one distribution row across reports.
type rowKey struct {
	Exp, Cell, Metric string
}

func (k rowKey) String() string { return k.Exp + " " + k.Cell + " " + k.Metric }

func loadReport(path string) (*benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema == "" || len(r.Experiments) == 0 {
		return nil, fmt.Errorf("%s: not an asyncfd-bench report (schema %q, %d experiments)", path, r.Schema, len(r.Experiments))
	}
	return &r, nil
}

func rowIndex(r *benchReport) (map[rowKey]metricRow, []rowKey) {
	idx := make(map[rowKey]metricRow)
	var keys []rowKey
	for _, e := range r.Experiments {
		for _, row := range e.Rows {
			k := rowKey{Exp: e.ID, Cell: row.Cell, Metric: row.Metric}
			idx[k] = row
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Exp != b.Exp {
			return a.Exp < b.Exp
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Metric < b.Metric
	})
	return idx, keys
}

// regression is one gate failure, tagged with the metric it landed on so a
// -budget allowance can absorb it.
type regression struct {
	metric string
	line   string
}

// diff holds the outcome of one comparison run.
type diff struct {
	regressions  []regression
	improvements []string
	additions    int
	compared     int
}

// compareRows applies the interval rule to every baseline row.
func compareRows(old, cand *benchReport, slack float64) diff {
	var d diff
	oldIdx, oldKeys := rowIndex(old)
	newIdx, newKeys := rowIndex(cand)
	for _, k := range oldKeys {
		o := oldIdx[k]
		n, ok := newIdx[k]
		if !ok {
			d.regressions = append(d.regressions, regression{k.Metric,
				fmt.Sprintf("%s: row missing from candidate (coverage regression)", k)})
			continue
		}
		d.compared++
		tolerance := o.CI95 + slack*abs(o.Mean)
		delta := n.Mean - o.Mean
		if abs(delta) <= tolerance {
			continue
		}
		line := fmt.Sprintf("%s: mean %g -> %g (baseline ±%g, n=%d)", k, o.Mean, n.Mean, tolerance, o.N)
		if tolerance == 0 {
			// A zero-width interval means the baseline row is deterministic
			// (R < 2 or zero spread): ANY drift is a behavior change that
			// must be blessed by regenerating the baseline, whatever the
			// direction.
			d.regressions = append(d.regressions, regression{k.Metric, line + " [zero-width interval: deterministic row changed]"})
			continue
		}
		worse := delta > 0
		if higherBetter[k.Metric] {
			worse = delta < 0
		}
		if worse {
			d.regressions = append(d.regressions, regression{k.Metric, line})
		} else {
			d.improvements = append(d.improvements, line)
		}
	}
	for _, k := range newKeys {
		if _, ok := oldIdx[k]; !ok {
			d.additions++
		}
	}
	return d
}

// compareThroughput applies the percentage rule to the v1 throughput
// fields. gate selects whether a worsening beyond the threshold counts as
// a regression (v1 inputs) or is informational only (v2 inputs, where the
// rows gate instead).
func compareThroughput(old, cand *benchReport, threshold float64, gate bool, out io.Writer) []regression {
	fields := []struct {
		name         string
		o, n         float64
		higherBetter bool
	}{
		{"events_per_sec", old.EventsPerSec, cand.EventsPerSec, true},
		{"runs_per_sec", old.RunsPerSec, cand.RunsPerSec, true},
		{"ns_per_run", old.NSPerRun, cand.NSPerRun, false},
	}
	var regressions []regression
	for _, f := range fields {
		if f.o == 0 {
			continue
		}
		rel := (f.n - f.o) / f.o
		worsening := -rel
		if !f.higherBetter {
			worsening = rel
		}
		switch {
		case gate && worsening > threshold:
			regressions = append(regressions, regression{f.name,
				fmt.Sprintf("throughput %s: %.4g -> %.4g (%.1f%% worse, threshold %.1f%%)",
					f.name, f.o, f.n, worsening*100, threshold*100)})
		case !gate:
			fmt.Fprintf(out, "info: throughput %s %.4g -> %.4g (%+.1f%%, not gated)\n", f.name, f.o, f.n, rel*100)
		}
	}
	return regressions
}

// budgetFile is the on-disk shape of a -budget allowance file.
type budgetFile struct {
	Budgets map[string]int `json:"budgets"`
}

func loadBudgets(path string) (map[string]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Budgets == nil {
		return nil, fmt.Errorf("%s: not a budget file (no \"budgets\" object)", path)
	}
	for metric, n := range bf.Budgets {
		if n < 0 {
			return nil, fmt.Errorf("%s: budget for %q is negative (%d)", path, metric, n)
		}
	}
	return bf.Budgets, nil
}

// applyBudgets splits the regression list into hard failures and budgeted
// ones: each regression whose metric still has allowance left consumes one
// unit and is downgraded. Allowance is consumed in report order, so the
// first N regressions on a metric are the blessed ones.
func applyBudgets(regs []regression, budgets map[string]int) (hard []regression, budgeted []string) {
	remaining := make(map[string]int, len(budgets))
	for m, n := range budgets {
		remaining[m] = n
	}
	for _, r := range regs {
		if remaining[r.metric] > 0 {
			remaining[r.metric]--
			budgeted = append(budgeted,
				fmt.Sprintf("%s [budget %s: %d left]", r.line, r.metric, remaining[r.metric]))
			continue
		}
		hard = append(hard, r)
	}
	return hard, budgeted
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// run executes the comparison and returns the regression list. An error
// means the comparison itself could not run (usage, unreadable input).
func run(args []string, out io.Writer) ([]string, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	slack := fs.Float64("slack", 0, "extra allowed drift on v2 rows, as a fraction of the baseline mean, added to the ci95 half-width")
	throughput := fs.Float64("throughput-threshold", 0.25, "allowed relative worsening of v1 throughput fields (0.25 = 25%)")
	quiet := fs.Bool("quiet", false, "suppress improvement/addition/info lines; print regressions only")
	update := fs.Bool("update", false, "after comparing, regenerate the baseline in place: overwrite OLD.json with the candidate's bytes and exit 0 (bless the changes)")
	budgetPath := fs.String("budget", "", "JSON file of per-metric regression allowances ({\"budgets\": {\"metric\": N}}); the first N regressions on each listed metric are downgraded to informational lines")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: benchdiff [flags] OLD.json NEW.json\n\ncompares two asyncfd-bench reports (see 'go doc ./cmd/benchdiff')\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return nil, fmt.Errorf("want exactly 2 arguments, got %d", fs.NArg())
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		return nil, err
	}
	var budgets map[string]int
	if *budgetPath != "" {
		if budgets, err = loadBudgets(*budgetPath); err != nil {
			return nil, err
		}
	}
	if oldRep.Quick != newRep.Quick || oldRep.Seed != newRep.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: reports differ in quick/seed (old quick=%v seed=%d, new quick=%v seed=%d); means may be incomparable\n",
			oldRep.Quick, oldRep.Seed, newRep.Quick, newRep.Seed)
	}

	var d diff
	if oldRep.hasRows() || newRep.hasRows() {
		d = compareRows(oldRep, newRep, *slack)
	}
	infoSink := out
	if *quiet {
		infoSink = io.Discard
	}
	// Throughput gates whenever the BASELINE carries no rows — a rowless v1
	// baseline must not turn the whole comparison into a no-op just because
	// the candidate happens to be v2 (rows the baseline can't vouch for).
	d.regressions = append(d.regressions,
		compareThroughput(oldRep, newRep, *throughput, !oldRep.hasRows(), infoSink)...)

	hard, budgeted := applyBudgets(d.regressions, budgets)
	for _, r := range hard {
		fmt.Fprintf(out, "REGRESSION %s\n", r.line)
	}
	// Budgeted regressions are part of the verdict (allowance was spent), so
	// they print even under -quiet — just without the failing prefix.
	for _, line := range budgeted {
		fmt.Fprintf(out, "budgeted %s\n", line)
	}
	if !*quiet {
		for _, line := range d.improvements {
			fmt.Fprintf(out, "improvement %s\n", line)
		}
	}
	fmt.Fprintf(out, "benchdiff: %d regressions (%d budgeted), %d improvements, %d rows compared, %d rows added\n",
		len(hard), len(budgeted), len(d.improvements), d.compared, d.additions)
	if *update {
		// Byte-exact copy: the blessed baseline IS the candidate report, so
		// re-diffing the pair immediately afterwards is clean by construction.
		raw, err := os.ReadFile(fs.Arg(1))
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(fs.Arg(0), raw, 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "benchdiff: baseline %s regenerated from %s (%d regressions blessed)\n",
			fs.Arg(0), fs.Arg(1), len(hard))
		return nil, nil
	}
	lines := make([]string, len(hard))
	for i, r := range hard {
		lines[i] = r.line
	}
	return lines, nil
}

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
		}
		os.Exit(2)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}
