// Command fdsim runs a single simulated failure-detector scenario and prints
// the suspicion timeline plus QoS summary. Beyond the classic single
// crash-stop failure it drives the generalized fault scenarios: a
// crash-recovery (the crashed process rejoins with fresh or persisted
// detector state, optionally crashing again) and a partition/heal window
// that cuts a minority island off the cluster.
//
// Usage:
//
//	fdsim [-kind async|heartbeat|phi-accrual|chen-nfde] [-n 8] [-f 2]
//	      [-crash 4] [-crash-at 10s] [-recover-at 0] [-fresh]
//	      [-crash2-at 0] [-partition-at 0] [-heal-at 0] [-island 0]
//	      [-dur 30s] [-seed 1] [-trace]
//
// -recover-at > 0 revives the crashed process at that time (-fresh selects
// fresh vs. persisted detector state) and -crash2-at > 0 crashes it a second
// time, reporting re-detection and trust-restoration metrics. -partition-at
// with -heal-at cuts off the last -island processes (default n/4) for the
// window and reports the mistake storm and the re-convergence time after the
// heal.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asyncfd/internal/exp"
	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdsim", flag.ContinueOnError)
	kindName := fs.String("kind", "async", "detector: async, heartbeat, phi-accrual, chen-nfde")
	n := fs.Int("n", 8, "number of processes")
	f := fs.Int("f", 2, "crash bound f")
	crash := fs.Int("crash", -1, "process to crash (-1 = none)")
	crashAt := fs.Duration("crash-at", 10*time.Second, "crash time")
	recoverAt := fs.Duration("recover-at", 0, "recovery time of the crashed process (0 = crash-stop)")
	fresh := fs.Bool("fresh", true, "recover with fresh detector state (false = persisted)")
	crash2At := fs.Duration("crash2-at", 0, "second crash time after the recovery (0 = none)")
	partitionAt := fs.Duration("partition-at", 0, "cut a minority island off at this time (0 = no partition)")
	healAt := fs.Duration("heal-at", 0, "heal the partition at this time")
	island := fs.Int("island", 0, "size of the minority island (0 = n/4, at least 1)")
	dur := fs.Duration("dur", 30*time.Second, "virtual run duration")
	seed := fs.Int64("seed", 1, "random seed")
	showTrace := fs.Bool("trace", true, "print the suspicion event timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var kind exp.Kind
	for _, k := range exp.AllKinds() {
		if k.String() == *kindName {
			kind = k
		}
	}
	if kind == 0 {
		return fmt.Errorf("unknown detector kind %q", *kindName)
	}

	if *recoverAt > 0 {
		if *crash < 0 {
			return fmt.Errorf("-recover-at needs -crash")
		}
		if *recoverAt <= *crashAt {
			return fmt.Errorf("-recover-at %v must be after -crash-at %v", *recoverAt, *crashAt)
		}
		if *crash2At > 0 && *crash2At <= *recoverAt {
			return fmt.Errorf("-crash2-at %v must be after -recover-at %v", *crash2At, *recoverAt)
		}
	} else if *crash2At > 0 {
		return fmt.Errorf("-crash2-at needs -recover-at")
	}
	if *healAt > 0 {
		if *partitionAt <= 0 {
			return fmt.Errorf("-heal-at needs -partition-at")
		}
		if *healAt <= *partitionAt {
			return fmt.Errorf("-heal-at %v must be after -partition-at %v", *healAt, *partitionAt)
		}
	}

	cfg := exp.ClusterConfig{
		Kind: kind, N: *n, F: *f, Seed: *seed,
		Delay: netsim.Exponential{Min: 500 * time.Microsecond, Mean: 700 * time.Microsecond, Cap: 100 * time.Millisecond},
	}
	if *partitionAt > 0 {
		// A cut-off island cannot reach the async quorum; rebroadcast lets
		// its stalled queries complete after the heal.
		cfg.Rebroadcast = 2 * time.Second
	}
	c, err := exp.NewCluster(cfg)
	if err != nil {
		return err
	}

	schedule := faults.Schedule{}
	victim := ident.ID(*crash)
	if *crash >= 0 {
		schedule = schedule.CrashAt(victim, *crashAt)
		if *recoverAt > 0 {
			schedule = schedule.RecoverAt(victim, *recoverAt, *fresh)
			if *crash2At > 0 {
				schedule = schedule.CrashAt(victim, *crash2At)
			}
		}
	}
	var minority []ident.ID
	if *partitionAt > 0 {
		size := *island
		if size <= 0 {
			size = *n / 4
		}
		if size < 1 {
			size = 1
		}
		if size >= *n {
			return fmt.Errorf("island size %d must be smaller than n=%d", size, *n)
		}
		for i := *n - size; i < *n; i++ {
			minority = append(minority, ident.ID(i))
		}
		schedule = schedule.PartitionAt(*partitionAt, minority)
		if *healAt > *partitionAt {
			schedule = schedule.HealAt(*healAt)
		}
	}
	truth := c.Apply(schedule)
	c.RunUntil(*dur)

	fmt.Printf("detector=%v n=%d f=%d seed=%d horizon=%v\n\n", kind, *n, *f, *seed, *dur)
	if *showTrace {
		fmt.Print("suspicion timeline:\n")
		events := c.Log.Events()
		if len(events) == 0 {
			fmt.Println("  (no suspicion events)")
		}
		for _, e := range events {
			fmt.Printf("  %v\n", e)
		}
		fmt.Println()
	}
	if *crash >= 0 {
		observers := c.Members.Clone()
		observers.Remove(victim)
		if *recoverAt > 0 {
			det := qos.RedetectionTimes(c.Log, truth, victim, observers, 0)
			fmt.Printf("detection of %v (crash #1): avg=%v min=%v max=%v detected-by=%d missing=%d\n",
				victim, det.Avg, det.Min, det.Max, det.Count, det.Missing)
			rst := qos.TrustRestorationTimes(c.Log, truth, victim, observers, 0)
			fmt.Printf("trust restoration after recovery: avg=%v max=%v restored-by=%d never=%d\n",
				rst.Avg, rst.Max, rst.Count, rst.Missing)
			if *crash2At > 0 {
				det2 := qos.RedetectionTimes(c.Log, truth, victim, observers, 1)
				fmt.Printf("re-detection (crash #2): avg=%v min=%v max=%v detected-by=%d missing=%d\n",
					det2.Avg, det2.Min, det2.Max, det2.Count, det2.Missing)
				storm := qos.MistakeStorm(c.Log, truth, c.Members, *recoverAt, *crash2At)
				fmt.Printf("mistake storm while recovered: %d false-suspicion episodes\n", storm)
			}
		} else {
			det := qos.DetectionTimes(c.Log, truth, victim, observers)
			fmt.Printf("detection of %v: avg=%v min=%v max=%v detected-by=%d missing=%d\n",
				victim, det.Avg, det.Min, det.Max, det.Count, det.Missing)
		}
	}
	if *partitionAt > 0 {
		end := *healAt
		if end <= *partitionAt {
			end = *dur
		}
		storm := qos.MistakeStorm(c.Log, truth, c.Members, *partitionAt, end)
		fmt.Printf("partition window [%v,%v) island=%v: %d false-suspicion episodes\n",
			*partitionAt, end, minority, storm)
		if *healAt > *partitionAt {
			settle, clean := qos.Reconvergence(c.Log, truth, c.Members, *healAt)
			fmt.Printf("re-convergence after heal: settle=%v clean=%v\n", settle, clean)
		}
	}
	mist := qos.Mistakes(c.Log, truth, c.Members, *dur)
	pa := qos.QueryAccuracy(c.Log, truth, c.Members, *dur)
	fmt.Printf("mistakes: closed=%d unresolved=%d avg-duration=%v rate=%.5f/pair/s\n",
		mist.Count, mist.Unresolved, mist.AvgDuration, mist.Rate)
	fmt.Printf("query accuracy PA=%.4f\n", pa)
	st := c.Net.Stats()
	fmt.Printf("traffic: sent=%d delivered=%d dropped=%d\n", st.Sent, st.Delivered, st.Dropped)
	return nil
}
