// Command fdsim runs a single simulated failure-detector scenario and prints
// the suspicion timeline plus QoS summary.
//
// Usage:
//
//	fdsim [-kind async|heartbeat|phi-accrual|chen-nfde] [-n 8] [-f 2]
//	      [-crash 4] [-crash-at 10s] [-dur 30s] [-seed 1] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asyncfd/internal/exp"
	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdsim", flag.ContinueOnError)
	kindName := fs.String("kind", "async", "detector: async, heartbeat, phi-accrual, chen-nfde")
	n := fs.Int("n", 8, "number of processes")
	f := fs.Int("f", 2, "crash bound f")
	crash := fs.Int("crash", -1, "process to crash (-1 = none)")
	crashAt := fs.Duration("crash-at", 10*time.Second, "crash time")
	dur := fs.Duration("dur", 30*time.Second, "virtual run duration")
	seed := fs.Int64("seed", 1, "random seed")
	showTrace := fs.Bool("trace", true, "print the suspicion event timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var kind exp.Kind
	for _, k := range exp.AllKinds() {
		if k.String() == *kindName {
			kind = k
		}
	}
	if kind == 0 {
		return fmt.Errorf("unknown detector kind %q", *kindName)
	}

	c, err := exp.NewCluster(exp.ClusterConfig{
		Kind: kind, N: *n, F: *f, Seed: *seed,
		Delay: netsim.Exponential{Min: 500 * time.Microsecond, Mean: 700 * time.Microsecond, Cap: 100 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	truth := &qos.GroundTruth{}
	if *crash >= 0 {
		truth = c.Apply(faults.Plan{}.CrashAt(ident.ID(*crash), *crashAt))
	}
	c.RunUntil(*dur)

	fmt.Printf("detector=%v n=%d f=%d seed=%d horizon=%v\n\n", kind, *n, *f, *seed, *dur)
	if *showTrace {
		fmt.Print("suspicion timeline:\n")
		events := c.Log.Events()
		if len(events) == 0 {
			fmt.Println("  (no suspicion events)")
		}
		for _, e := range events {
			fmt.Printf("  %v\n", e)
		}
		fmt.Println()
	}
	if *crash >= 0 {
		observers := c.Members.Clone()
		observers.Remove(ident.ID(*crash))
		det := qos.DetectionTimes(c.Log, truth, ident.ID(*crash), observers)
		fmt.Printf("detection of p%d: avg=%v min=%v max=%v detected-by=%d missing=%d\n",
			*crash, det.Avg, det.Min, det.Max, det.Count, det.Missing)
	}
	mist := qos.Mistakes(c.Log, truth, c.Members, *dur)
	pa := qos.QueryAccuracy(c.Log, truth, c.Members, *dur)
	fmt.Printf("mistakes: closed=%d unresolved=%d avg-duration=%v rate=%.5f/pair/s\n",
		mist.Count, mist.Unresolved, mist.AvgDuration, mist.Rate)
	fmt.Printf("query accuracy PA=%.4f\n", pa)
	st := c.Net.Stats()
	fmt.Printf("traffic: sent=%d delivered=%d dropped=%d\n", st.Sent, st.Delivered, st.Dropped)
	return nil
}
