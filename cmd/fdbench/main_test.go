package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrorPaths covers the CLI failure modes: each must surface an
// error instead of silently doing nothing (or worse, writing a bogus
// report).
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown experiment", []string{"-quick", "-exp", "E99"}, "unknown experiment"},
		{"unknown experiment in a list", []string{"-quick", "-exp", "E2,E99"}, "unknown experiment"},
		{"negative repeat", []string{"-quick", "-repeat", "-2"}, "-repeat must be"},
		{"unknown queue", []string{"-quick", "-exp", "E2", "-queue", "wheel"}, "unknown queue"},
		{"unwritable json target", []string{"-quick", "-exp", "E2", "-json", filepath.Join(t.TempDir(), "no-such-dir", "out.json")}, "no-such-dir"},
		{"json target is a directory", []string{"-quick", "-exp", "E2", "-json", t.TempDir()}, "is a directory"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestV2ReportAlwaysCarriesRepeat is the regression test for the omitempty
// bug: a -ci run whose seed family resolves to 1 (quick mode, no -repeat)
// used to drop the documented top-level "repeat" field entirely. v2 must
// always carry it; v1 must never.
func TestV2ReportAlwaysCarriesRepeat(t *testing.T) {
	readReport := func(args []string) map[string]any {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bench.json")
		if err := run(append(args, "-json", path)); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	v2 := readReport([]string{"-quick", "-exp", "E2", "-ci"})
	if v2["schema"] != "asyncfd-bench/v2" {
		t.Fatalf("schema = %v, want asyncfd-bench/v2", v2["schema"])
	}
	rep, ok := v2["repeat"]
	if !ok {
		t.Fatal(`v2 report with resolved family size 1 dropped the "repeat" field`)
	}
	if rep != float64(1) {
		t.Errorf("repeat = %v, want 1", rep)
	}

	v1 := readReport([]string{"-quick", "-exp", "E2"})
	if v1["schema"] != "asyncfd-bench/v1" {
		t.Fatalf("schema = %v, want asyncfd-bench/v1", v1["schema"])
	}
	if _, ok := v1["repeat"]; ok {
		t.Error(`v1 report must not carry a "repeat" field`)
	}
}

// readExperiments runs fdbench with args plus a -json target and returns
// the report's experiment entries.
func readExperiments(t *testing.T, args []string) []map[string]any {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(append(args, "-json", path)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Experiments
}

// TestExpCommaList checks a comma-separated -exp runs every named
// experiment in order with one combined report — the shape the nightly
// non-quick gate relies on ("-exp L1,L5").
func TestExpCommaList(t *testing.T) {
	exps := readExperiments(t, []string{"-quick", "-exp", "E2, E1", "-ci", "-repeat", "2"})
	if len(exps) != 2 || exps[0]["id"] != "E2" || exps[1]["id"] != "E1" {
		t.Fatalf("experiments = %v, want [E2 E1] in order", exps)
	}
	for _, e := range exps {
		rows, ok := e["rows"].([]any)
		if !ok || len(rows) == 0 {
			t.Errorf("experiment %v carries no v2 rows in list mode", e["id"])
		}
	}
}

// TestQueueFlagByteIdentical is the CLI face of the differential harness:
// the same invocation under -queue heap and -queue ladder must produce
// byte-identical reports (modulo the machine-dependent timing fields, which
// is why it compares experiments' rows, events and runs).
func TestQueueFlagByteIdentical(t *testing.T) {
	fingerprint := func(queue string) string {
		exps := readExperiments(t, []string{"-quick", "-exp", "E1,E4", "-ci", "-repeat", "2", "-queue", queue})
		var b strings.Builder
		for _, e := range exps {
			raw, err := json.Marshal(map[string]any{"id": e["id"], "events": e["events"], "runs": e["runs"], "rows": e["rows"]})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(raw)
			b.WriteByte('\n')
		}
		return b.String()
	}
	heap, ladder := fingerprint("heap"), fingerprint("ladder")
	if heap != ladder {
		t.Errorf("heap and ladder reports differ:\nheap:   %s\nladder: %s", heap, ladder)
	}
}
