package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrorPaths covers the CLI failure modes: each must surface an
// error instead of silently doing nothing (or worse, writing a bogus
// report).
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown experiment", []string{"-quick", "-exp", "E99"}, "unknown experiment"},
		{"negative repeat", []string{"-quick", "-repeat", "-2"}, "-repeat must be"},
		{"unwritable json target", []string{"-quick", "-exp", "E2", "-json", filepath.Join(t.TempDir(), "no-such-dir", "out.json")}, "no-such-dir"},
		{"json target is a directory", []string{"-quick", "-exp", "E2", "-json", t.TempDir()}, "is a directory"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestV2ReportAlwaysCarriesRepeat is the regression test for the omitempty
// bug: a -ci run whose seed family resolves to 1 (quick mode, no -repeat)
// used to drop the documented top-level "repeat" field entirely. v2 must
// always carry it; v1 must never.
func TestV2ReportAlwaysCarriesRepeat(t *testing.T) {
	readReport := func(args []string) map[string]any {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bench.json")
		if err := run(append(args, "-json", path)); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	v2 := readReport([]string{"-quick", "-exp", "E2", "-ci"})
	if v2["schema"] != "asyncfd-bench/v2" {
		t.Fatalf("schema = %v, want asyncfd-bench/v2", v2["schema"])
	}
	rep, ok := v2["repeat"]
	if !ok {
		t.Fatal(`v2 report with resolved family size 1 dropped the "repeat" field`)
	}
	if rep != float64(1) {
		t.Errorf("repeat = %v, want 1", rep)
	}

	v1 := readReport([]string{"-quick", "-exp", "E2"})
	if v1["schema"] != "asyncfd-bench/v1" {
		t.Fatalf("schema = %v, want asyncfd-bench/v1", v1["schema"])
	}
	if _, ok := v1["repeat"]; ok {
		t.Error(`v1 report must not carry a "repeat" field`)
	}
}
