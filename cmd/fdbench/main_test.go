package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrorPaths covers the CLI failure modes: each must surface an
// error instead of silently doing nothing (or worse, writing a bogus
// report).
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown experiment", []string{"-quick", "-exp", "E99"}, "unknown experiment"},
		{"unknown experiment in a list", []string{"-quick", "-exp", "E2,E99"}, "unknown experiment"},
		{"negative repeat", []string{"-quick", "-repeat", "-2"}, "-repeat must be"},
		{"unknown queue", []string{"-quick", "-exp", "E2", "-queue", "wheel"}, "unknown queue"},
		{"unwritable json target", []string{"-quick", "-exp", "E2", "-json", filepath.Join(t.TempDir(), "no-such-dir", "out.json")}, "no-such-dir"},
		{"json target is a directory", []string{"-quick", "-exp", "E2", "-json", t.TempDir()}, "is a directory"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestV2ReportAlwaysCarriesRepeat is the regression test for the omitempty
// bug: a -ci run whose seed family resolves to 1 (quick mode, no -repeat)
// used to drop the documented top-level "repeat" field entirely. v2 must
// always carry it; v1 must never.
func TestV2ReportAlwaysCarriesRepeat(t *testing.T) {
	readReport := func(args []string) map[string]any {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bench.json")
		if err := run(append(args, "-json", path)); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	v2 := readReport([]string{"-quick", "-exp", "E2", "-ci"})
	if v2["schema"] != "asyncfd-bench/v2" {
		t.Fatalf("schema = %v, want asyncfd-bench/v2", v2["schema"])
	}
	rep, ok := v2["repeat"]
	if !ok {
		t.Fatal(`v2 report with resolved family size 1 dropped the "repeat" field`)
	}
	if rep != float64(1) {
		t.Errorf("repeat = %v, want 1", rep)
	}

	v1 := readReport([]string{"-quick", "-exp", "E2"})
	if v1["schema"] != "asyncfd-bench/v1" {
		t.Fatalf("schema = %v, want asyncfd-bench/v1", v1["schema"])
	}
	if _, ok := v1["repeat"]; ok {
		t.Error(`v1 report must not carry a "repeat" field`)
	}
}

// minimalScenarioDoc is a small but complete asyncfd-scenario/v1 config for
// the -config CLI tests.
const minimalScenarioDoc = `{
  "schema": "asyncfd-scenario/v1",
  "name": "cli-demo",
  "title": "one crash, one detector",
  "cluster": {
    "n": 4, "f": 1, "detectors": ["heartbeat"],
    "delay": {"model": "constant", "d_us": 700}
  },
  "faults": {"events": [{"kind": "crash", "at_us": 10000000, "id": 3}]},
  "measure": {
    "program": "cluster",
    "warm_us": 9000000,
    "horizon_us": 20000000,
    "metrics": [{"kind": "detection", "name": "det", "victim": 3}],
    "columns": [{"header": "det avg", "metric": "det", "kind": "fam_ms"}]
  }
}`

// writeScenario drops a scenario document into a temp file and returns its
// path.
func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestConfigErrorPaths covers the -config failure modes: every one must exit
// non-zero with a one-line reason naming the problem, never run a partial
// sweep or write a bogus report.
func TestConfigErrorPaths(t *testing.T) {
	valid := writeScenario(t, minimalScenarioDoc)
	wrongSchema := writeScenario(t, `{"schema": "asyncfd-scenario/v9"}`)
	notJSON := writeScenario(t, `not a config`)
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing file", []string{"-quick", "-config", filepath.Join(t.TempDir(), "absent.json")}, "no such file"},
		{"unknown schema version", []string{"-quick", "-config", wrongSchema}, "unknown schema version"},
		{"invalid config body", []string{"-quick", "-config", notJSON}, "scenario:"},
		{"config and exp conflict", []string{"-quick", "-config", valid, "-exp", "E2"}, "mutually exclusive"},
		{"unwritable json target", []string{"-quick", "-config", valid, "-json", filepath.Join(t.TempDir(), "no-such-dir", "out.json")}, "no-such-dir"},
		{"bad file in a list", []string{"-quick", "-config", valid + "," + wrongSchema}, "unknown schema version"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestConfigRunsScenario checks the -config happy path: the report carries
// the scenario under its config-declared name, with v2 rows under -ci.
func TestConfigRunsScenario(t *testing.T) {
	path := writeScenario(t, minimalScenarioDoc)
	exps := readExperiments(t, []string{"-quick", "-config", path, "-ci", "-repeat", "2"})
	if len(exps) != 1 || exps[0]["id"] != "cli-demo" {
		t.Fatalf("experiments = %v, want [cli-demo]", exps)
	}
	rows, ok := exps[0]["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatal("scenario run carries no v2 rows under -ci")
	}
	row, _ := rows[0].(map[string]any)
	if row["cell"] != "heartbeat" || row["metric"] != "det_avg_ms" {
		t.Errorf("first row = %v, want cell=heartbeat metric=det_avg_ms", row)
	}
}

// readExperiments runs fdbench with args plus a -json target and returns
// the report's experiment entries.
func readExperiments(t *testing.T, args []string) []map[string]any {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(append(args, "-json", path)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Experiments
}

// TestExpCommaList checks a comma-separated -exp runs every named
// experiment in order with one combined report — the shape the nightly
// non-quick gate relies on ("-exp L1,L5").
func TestExpCommaList(t *testing.T) {
	exps := readExperiments(t, []string{"-quick", "-exp", "E2, E1", "-ci", "-repeat", "2"})
	if len(exps) != 2 || exps[0]["id"] != "E2" || exps[1]["id"] != "E1" {
		t.Fatalf("experiments = %v, want [E2 E1] in order", exps)
	}
	for _, e := range exps {
		rows, ok := e["rows"].([]any)
		if !ok || len(rows) == 0 {
			t.Errorf("experiment %v carries no v2 rows in list mode", e["id"])
		}
	}
}

// TestQueueFlagByteIdentical is the CLI face of the differential harness:
// the same invocation under -queue heap and -queue ladder must produce
// byte-identical reports (modulo the machine-dependent timing fields, which
// is why it compares experiments' rows, events and runs).
func TestQueueFlagByteIdentical(t *testing.T) {
	fingerprint := func(queue string) string {
		exps := readExperiments(t, []string{"-quick", "-exp", "E1,E4", "-ci", "-repeat", "2", "-queue", queue})
		var b strings.Builder
		for _, e := range exps {
			raw, err := json.Marshal(map[string]any{"id": e["id"], "events": e["events"], "runs": e["runs"], "rows": e["rows"]})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(raw)
			b.WriteByte('\n')
		}
		return b.String()
	}
	heap, ladder := fingerprint("heap"), fingerprint("ladder")
	if heap != ladder {
		t.Errorf("heap and ladder reports differ:\nheap:   %s\nladder: %s", heap, ladder)
	}
}
