// Command fdbench regenerates every table and figure of the reconstructed
// evaluation (see the repository README and docs/BENCHMARKS.md) on the
// sharded experiment engine, optionally in parallel, with many-seed
// confidence intervals and machine-readable benchmark output.
//
// Usage:
//
//	fdbench [-exp all|E1..E8|A1|A2|R1|R2|X1|X2|L1|L5|LT|comma-list] [-quick]
//	        [-config FILE[,FILE...]]
//	        [-seed N] [-repeat R] [-parallel N] [-ci] [-json FILE]
//	        [-queue ladder|heap] [-fork on|off]
//
// Row kinds: ids E1–E8 are the reconstructed paper-family tables, A1/A2 the
// ablations, R1/R2 the fault-scenario sweeps (crash-recovery and
// partition/heal), X1/X2 the partial-connectivity extensions, L1/L5 the
// large-machine-size sweeps (E1's detection time and E5's message cost at
// n=128/256) and LT the topology sweep (neighbor-local detection and
// per-process traffic on ring/grid/scale-free/MANET graphs at
// n=1024/2048/4096, tractable thanks to netsim's sparse delivery and the
// streaming qos Judge; quick mode shrinks the large sweeps to one small
// size like every other table). -exp also accepts a comma-separated list
// ("L1,L5,LT"), run in the given order with one combined report — the
// nightly bench gate uses this.
//
// -config runs scenario config files (schema asyncfd-scenario/v1, see
// internal/scenario and docs/BENCHMARKS.md "Scenario configs") instead of
// built-in experiments: each file compiles into a cluster, fault schedule
// and metric set and executes on the same engine the built-ins use, so the
// tables and -ci rows follow the exact conventions above — a config that
// mirrors a built-in experiment reproduces it byte-for-byte (the
// differential tests in internal/exp enforce this). A comma-separated list
// runs each config in order with one combined report, which is how the CI
// scenario gate diffs the shipped configs/ library against its committed
// baseline. -config and -exp are mutually exclusive; -quick selects each
// config's "quick" overlay when it has one. The report's experiment ids are
// the scenarios' names.
//
// -queue selects the DES kernel's timing-queue implementation: "ladder"
// (the calendar/ladder queue, default) or "heap" (the binary-heap
// reference). The DES_QUEUE environment variable is the escape hatch when
// the flag is not given. Every experiment is byte-identical under either
// queue at any -parallel — the differential harness in internal/des and
// internal/exp enforces it, and CI compares full fdbench runs both ways —
// so the knob exists for benchmarking and for bisecting kernel issues, not
// for changing results. See docs/BENCHMARKS.md, "The kernel event queue".
//
// -fork selects how replicated seed families are run: "on" (the default)
// simulates each family's shared warmup prefix once, checkpoints the whole
// deployment (DES kernel, network, detector state) and restores the
// checkpoint per extra replicate; "off" re-simulates the prefix for every
// replicate. The DES_FORK environment variable ("on"/"off", also "1"/"0")
// is the escape hatch when the flag is not given. Like -queue, this is a
// pure performance knob: tables and v2 rows are byte-identical either way
// at any -parallel (the differential harness in internal/exp enforces it,
// and CI compares full fdbench runs both ways). See docs/BENCHMARKS.md,
// "Warmup forking".
//
// -parallel sizes the worker pool experiment cells run on: 1 = serial
// (default), N > 1 = that many workers, 0 or negative = one worker per CPU.
// Tables and v2 metric rows are byte-identical whatever the pool size; only
// wall-clock time changes.
//
// -repeat R sets the seed-family size: every replicated cell runs R seeds
// (base seed plus a fixed per-replicate stride) and tables aggregate across
// the family. 0 keeps the default family (1 seed in -quick mode, 3
// otherwise).
//
// -json writes a benchmark report to FILE ("-" = stdout, suppressing the
// tables). Without -ci the report uses schema "asyncfd-bench/v1",
// unchanged since PR 1 so committed BENCH files stay comparable:
//
//	{
//	  "schema": "asyncfd-bench/v1",   // schema identifier, bumped on change
//	  "go_max_procs": 8,              // runtime.GOMAXPROCS at run time
//	  "workers": 8,                   // resolved worker-pool size
//	  "quick": true,                  // quick-mode sweep?
//	  "seed": 1,                      // base random seed
//	  "wall_ns": 123456789,           // sweep wall-clock time, ns; rendering
//	                                  // and IO are excluded so numbers are
//	                                  // comparable across output modes
//	  "events": 4210033,              // DES kernel events executed
//	  "runs": 64,                     // independent simulations completed
//	  "events_per_sec": 3.4e7,        // events / wall seconds
//	  "runs_per_sec": 520.1,          // runs / wall seconds
//	  "ns_per_run": 1922733.5,        // wall_ns / runs
//	  "experiments": [                // per-experiment breakdown, in order;
//	    {"id": "E1", "wall_ns": 1,    // under -parallel experiments overlap,
//	     "events": 2, "runs": 3},     // so their wall_ns need not sum to the
//	    ...                           // sweep total
//	  ]
//	}
//
// -ci bumps the schema to "asyncfd-bench/v2": everything above plus a
// top-level "repeat" (the resolved seed-family size R, always present in
// v2 — even when it resolves to 1) and, on each experiment that records
// metric samples, a "rows" array of per-cell per-metric distribution
// summaries over the seed family:
//
//	{"id": "E1", "wall_ns": ..., "events": ..., "runs": ...,
//	 "rows": [
//	   {"cell": "n=128/async",     // table cell the family belongs to
//	    "metric": "det_avg_ms",    // metric name; *_ms = milliseconds
//	    "n": 5,                    // family size (seeds observed)
//	    "mean": 2012.4,            // sample mean
//	    "stderr": 14.2,            // standard error of the mean
//	    "ci95": 39.4,              // Student-t 95% CI half-width:
//	                               //   mean ± ci95
//	    "p50": 2008.1, "p99": 2051.0,
//	    "min": 1980.3, "max": 2052.7},
//	   ...]}
//
// Every experiment in the sweep records samples. Per experiment:
// E1/L1 (det_avg_ms/det_max_ms per n×detector), E2 (detection,
// mistake_rate, query_accuracy per f), E3 (mistakes, mistake_dur_ms,
// peak_false_susp per detector under the slowdown), E4 (mistakes,
// mistake_rate, mistake_dur_ms, query_accuracy per delay-model×detector),
// E5/L5 (msgs_per_proc_s, bytes_per_proc_s; single-seed families), E6
// (never_suspected, holds, favored_suspected per MP bias), E7
// (decision_ms per detector), E8 (spread_ms, last_det_ms per n×detector),
// A1 (tail_transitions, suspected_pairs, mistakes per tag variant), A2
// (det_avg_ms/det_max_ms, mistake_rate, query_accuracy per window), R1
// (det1/restore/det2 and storm per detector×state-mode), R2 (storm,
// reconverge_ms, clean per detector), X1 (det_avg_ms/det_max_ms per
// density×variant), X2 (peak_false_susp, false_susp_total per mobility
// variant), and LT (det_avg_ms/det_max_ms, avg_degree, msgs_per_proc_s,
// bytes_per_proc_s per topology×n). Rows are sorted by cell then metric and are byte-identical at
// any -parallel value (regression-tested), so v2 reports diff cleanly. A
// family of R < 2 seeds has stderr = ci95 = 0 — run with -repeat 5 (or
// more) for meaningful intervals.
//
// With -repeat 2+, replicated table cells also render their family mean
// with the Student-t 95% half-width appended ("12.3ms ±0.8ms");
// unreplicated runs render byte-identically to earlier releases.
//
// Committed BENCH_*.json files at the repo root track the engine's
// trajectory across PRs: BENCH_quick.json (v1, throughput) and
// BENCH_quick_ci.json (v2 baseline, -quick -repeat 5 -ci; CI regenerates
// it fresh and gates the diff with cmd/benchdiff). See docs/BENCHMARKS.md
// for the methodology, the full v1→v2 diff and the regression rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"asyncfd/internal/des"
	"asyncfd/internal/exp"
	"asyncfd/internal/scenario"
	"asyncfd/internal/stats"
)

// metricRow is the JSON form of one asyncfd-bench/v2 distribution row.
type metricRow struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	CI95   float64 `json:"ci95"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func toMetricRows(rows []stats.Row) []metricRow {
	out := make([]metricRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, metricRow{
			Cell: r.Cell, Metric: r.Metric, N: r.N,
			Mean: r.Mean, StdErr: r.StdErr, CI95: r.CI95,
			P50: r.P50, P99: r.P99, Min: r.Min, Max: r.Max,
		})
	}
	return out
}

type experimentBench struct {
	ID     string      `json:"id"`
	WallNS int64       `json:"wall_ns"`
	Events int64       `json:"events"`
	Runs   int64       `json:"runs"`
	Rows   []metricRow `json:"rows,omitempty"` // v2 only
}

type benchReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	Workers    int    `json:"workers"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	// Repeat is the resolved seed-family size R. A pointer, not an
	// omitempty int: v2 documents the field as always present, and the
	// resolved family size is 1 in quick mode without -repeat — omitempty
	// would silently drop exactly that documented case. v1 keeps it nil
	// (absent).
	Repeat       *int              `json:"repeat,omitempty"`
	WallNS       int64             `json:"wall_ns"`
	Events       int64             `json:"events"`
	Runs         int64             `json:"runs"`
	EventsPerSec float64           `json:"events_per_sec"`
	RunsPerSec   float64           `json:"runs_per_sec"`
	NSPerRun     float64           `json:"ns_per_run"`
	Experiments  []experimentBench `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdbench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (E1..E8, A1, A2, R1, R2, X1, X2, L1, L5, LT), a comma-separated list, or 'all'")
	configPath := fs.String("config", "", "scenario config file(s) to run instead of built-in experiments (asyncfd-scenario/v1 JSON, comma-separated list allowed); mutually exclusive with -exp")
	quickFlag := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "base random seed")
	repeat := fs.Int("repeat", 0, "seed-family size R per cell (0 = default: 1 with -quick, 3 otherwise)")
	parallel := fs.Int("parallel", 1, "worker pool size; 0 or negative = one worker per CPU")
	ciFlag := fs.Bool("ci", false, "collect per-cell seed-family distributions; bumps the -json schema to asyncfd-bench/v2 (rows with mean/stderr/ci95/p50/p99 per metric)")
	jsonPath := fs.String("json", "", "write a bench report (schema asyncfd-bench/v1, or v2 with -ci) to this file; '-' = stdout, tables suppressed")
	queueFlag := fs.String("queue", "", "DES kernel timing queue: 'ladder' (default) or 'heap'; empty = $DES_QUEUE, then the kernel default. Results are byte-identical either way")
	forkFlag := fs.String("fork", "", "warm-fork replication: 'on' (default) checkpoints each seed family's warmed prefix and restores it per replicate, 'off' re-simulates the prefix; empty = $DES_FORK, then on. Results are byte-identical either way")
	if err := fs.Parse(args); err != nil {
		return err
	}
	expSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})
	if *configPath != "" && expSet {
		return fmt.Errorf("-config and -exp are mutually exclusive; a config file names its own scenario")
	}
	if *parallel == 0 {
		*parallel = -1 // 0 and negative both mean GOMAXPROCS
	}
	if *repeat < 0 {
		return fmt.Errorf("-repeat must be ≥ 0, got %d", *repeat)
	}
	queueName := *queueFlag
	if queueName == "" {
		queueName = os.Getenv("DES_QUEUE")
	}
	if queueName != "" {
		kind, ok := des.ParseQueueKind(queueName)
		if !ok {
			return fmt.Errorf("unknown queue %q (want 'ladder' or 'heap')", queueName)
		}
		des.SetDefaultQueue(kind)
	}
	forkName := *forkFlag
	if forkName == "" {
		forkName = os.Getenv("DES_FORK")
	}
	switch strings.ToLower(forkName) {
	case "", "on", "1", "true":
		// The package default (on) stands; an explicit "on" also covers the
		// case where an earlier SetDefaultFork in this process turned it off.
		if forkName != "" {
			exp.SetDefaultFork(true)
		}
	case "off", "0", "false":
		exp.SetDefaultFork(false)
	default:
		return fmt.Errorf("unknown -fork value %q (want 'on' or 'off')", forkName)
	}
	opts := exp.Options{Seed: *seed, Quick: *quickFlag, Parallel: *parallel, Repeat: *repeat}
	if *ciFlag {
		opts.Samples = &stats.Collector{}
	}

	jsonOnly := *jsonPath == "-"
	report := benchReport{
		Schema:     "asyncfd-bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    opts.Workers(),
		Quick:      *quickFlag,
		Seed:       *seed,
	}
	if *ciFlag {
		report.Schema = "asyncfd-bench/v2"
		repeatResolved := opts.Runs()
		report.Repeat = &repeatResolved
	}

	// Everything below is timed before rendering, so wall_ns measures
	// simulation work only and is identical whether tables are printed.
	var results []exp.Result
	if *configPath != "" {
		// Scenario configs, run in the given order with one combined report
		// (the CI scenario gate runs the shipped configs/ library this way).
		for _, path := range strings.Split(*configPath, ",") {
			path = strings.TrimSpace(path)
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sc, err := scenario.Parse(data, *quickFlag)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			engineStats := &exp.EngineStats{}
			eOpts := opts
			eOpts.Stats = engineStats
			if opts.Samples != nil {
				eOpts.Samples = &stats.Collector{}
			}
			t0 := time.Now()
			tbl, err := exp.ScenarioTable(sc, eOpts)
			if err != nil {
				return fmt.Errorf("%s: scenario %s: %w", path, sc.Name, err)
			}
			wall := time.Since(t0)
			report.WallNS += wall.Nanoseconds()
			r := exp.Result{
				ID: sc.Name, Table: tbl, Wall: wall,
				Events: engineStats.Events.Load(), Runs: engineStats.Runs.Load(),
			}
			if eOpts.Samples != nil {
				r.Rows = eOpts.Samples.Rows()
			}
			results = append(results, r)
		}
	} else if strings.EqualFold(*expID, "all") {
		// The pooled sweep: experiment- and cell-level fan-out share one
		// Workers()-sized gate, so small experiments overlap the big ones.
		t0 := time.Now()
		all, err := exp.AllResults(opts)
		if err != nil {
			return err
		}
		report.WallNS = time.Since(t0).Nanoseconds()
		results = all
	} else {
		// One experiment, or a comma-separated list run in the given order
		// (the nightly gate runs "-exp L1,L5,LT" for one combined report).
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			found := false
			for _, e := range exp.Experiments() {
				if !strings.EqualFold(e.ID, id) {
					continue
				}
				found = true
				engineStats := &exp.EngineStats{}
				eOpts := opts
				eOpts.Stats = engineStats
				if opts.Samples != nil {
					// A private collector per experiment keeps each Result's
					// rows scoped to it, as in the pooled sweep.
					eOpts.Samples = &stats.Collector{}
				}
				t0 := time.Now()
				tbl, err := e.Fn(eOpts)
				if err != nil {
					return fmt.Errorf("experiment %s: %w", e.ID, err)
				}
				wall := time.Since(t0)
				report.WallNS += wall.Nanoseconds()
				r := exp.Result{
					ID: e.ID, Table: tbl, Wall: wall,
					Events: engineStats.Events.Load(), Runs: engineStats.Runs.Load(),
				}
				if eOpts.Samples != nil {
					r.Rows = eOpts.Samples.Rows()
				}
				results = append(results, r)
				break
			}
			if !found {
				return fmt.Errorf("unknown experiment %q", id)
			}
		}
	}

	for _, r := range results {
		report.Experiments = append(report.Experiments, experimentBench{
			ID:     r.ID,
			WallNS: r.Wall.Nanoseconds(),
			Events: r.Events,
			Runs:   r.Runs,
			Rows:   toMetricRows(r.Rows),
		})
		if !jsonOnly {
			if err := r.Table.Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if *jsonPath == "" {
		return nil
	}
	for _, e := range report.Experiments {
		report.Events += e.Events
		report.Runs += e.Runs
	}
	if secs := float64(report.WallNS) / 1e9; secs > 0 {
		report.EventsPerSec = float64(report.Events) / secs
		report.RunsPerSec = float64(report.Runs) / secs
	}
	if report.Runs > 0 {
		report.NSPerRun = float64(report.WallNS) / float64(report.Runs)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonOnly {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(*jsonPath, out, 0o644)
}
