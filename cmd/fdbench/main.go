// Command fdbench regenerates every table and figure of the reconstructed
// evaluation (see DESIGN.md and EXPERIMENTS.md) on the sharded experiment
// engine, optionally in parallel and with machine-readable benchmark output.
//
// Usage:
//
//	fdbench [-exp all|E1|E2|E3|E4|E5|E6|E7|E8|A1|A2|R1|R2|X1|X2] [-quick]
//	        [-seed N] [-parallel N] [-json FILE]
//
// Besides the paper-family tables (E1–E8), the ablations (A1, A2) and the
// partial-connectivity extensions (X1, X2), the sweep includes the
// fault-scenario tables built on the generalized fault subsystem
// (internal/faults.Schedule):
//
//   - R1: crash-recovery — a process crashes, rejoins with fresh or
//     persisted detector state and crashes again; reports detection,
//     trust-restoration and re-detection times plus the post-restart
//     mistake storm, per detector.
//   - R2: partition/heal — a minority island is cut off for a window and
//     then healed; reports the partition-window mistake storm and the
//     re-convergence settle time after the heal, per detector.
//
// -parallel sizes the worker pool experiment cells run on: 1 = serial
// (default), N > 1 = that many workers, 0 or negative = one worker per CPU.
// Tables are byte-identical whatever the pool size; only wall-clock time
// changes.
//
// -json writes a benchmark report to FILE ("-" = stdout, suppressing the
// tables). Schema "asyncfd-bench/v1":
//
//	{
//	  "schema": "asyncfd-bench/v1",   // schema identifier, bumped on change
//	  "go_max_procs": 8,              // runtime.GOMAXPROCS at run time
//	  "workers": 8,                   // resolved worker-pool size
//	  "quick": true,                  // quick-mode sweep?
//	  "seed": 1,                      // base random seed
//	  "wall_ns": 123456789,           // sweep wall-clock time, ns; rendering
//	                                  // and IO are excluded so numbers are
//	                                  // comparable across output modes
//	  "events": 4210033,              // DES kernel events executed
//	  "runs": 64,                     // independent simulations completed
//	  "events_per_sec": 3.4e7,        // events / wall seconds
//	  "runs_per_sec": 520.1,          // runs / wall seconds
//	  "ns_per_run": 1922733.5,        // wall_ns / runs
//	  "experiments": [                // per-experiment breakdown, in order;
//	    {"id": "E1", "wall_ns": 1,    // under -parallel experiments overlap,
//	     "events": 2, "runs": 3},     // so their wall_ns need not sum to the
//	    ...                           // sweep total
//	  ]
//	}
//
// Row kinds in "experiments": ids E1–E8 are the reconstructed paper-family
// tables, A1/A2 the ablations, R1/R2 the fault-scenario sweeps
// (crash-recovery and partition/heal), and X1/X2 the partial-connectivity
// extensions. The schema identifier stays asyncfd-bench/v1: rows gained new
// id values, not new fields, so consumers keyed on the id set remain
// compatible.
//
// Committed BENCH_*.json files at the repo root use this schema to track the
// engine's throughput trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"asyncfd/internal/exp"
)

type experimentBench struct {
	ID     string `json:"id"`
	WallNS int64  `json:"wall_ns"`
	Events int64  `json:"events"`
	Runs   int64  `json:"runs"`
}

type benchReport struct {
	Schema       string            `json:"schema"`
	GoMaxProcs   int               `json:"go_max_procs"`
	Workers      int               `json:"workers"`
	Quick        bool              `json:"quick"`
	Seed         int64             `json:"seed"`
	WallNS       int64             `json:"wall_ns"`
	Events       int64             `json:"events"`
	Runs         int64             `json:"runs"`
	EventsPerSec float64           `json:"events_per_sec"`
	RunsPerSec   float64           `json:"runs_per_sec"`
	NSPerRun     float64           `json:"ns_per_run"`
	Experiments  []experimentBench `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdbench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (E1..E8, A1, A2, R1, R2, X1, X2) or 'all'")
	quickFlag := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "base random seed")
	parallel := fs.Int("parallel", 1, "worker pool size; 0 or negative = one worker per CPU")
	jsonPath := fs.String("json", "", "write a bench report (schema asyncfd-bench/v1) to this file; '-' = stdout, tables suppressed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel == 0 {
		*parallel = -1 // 0 and negative both mean GOMAXPROCS
	}
	opts := exp.Options{Seed: *seed, Quick: *quickFlag, Parallel: *parallel}

	jsonOnly := *jsonPath == "-"
	report := benchReport{
		Schema:     "asyncfd-bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    opts.Workers(),
		Quick:      *quickFlag,
		Seed:       *seed,
	}

	// Everything below is timed before rendering, so wall_ns measures
	// simulation work only and is identical whether tables are printed.
	var results []exp.Result
	if strings.EqualFold(*expID, "all") {
		// The pooled sweep: experiment- and cell-level fan-out share one
		// Workers()-sized gate, so small experiments overlap the big ones.
		t0 := time.Now()
		all, err := exp.AllResults(opts)
		if err != nil {
			return err
		}
		report.WallNS = time.Since(t0).Nanoseconds()
		results = all
	} else {
		found := false
		for _, e := range exp.Experiments() {
			if !strings.EqualFold(e.ID, *expID) {
				continue
			}
			found = true
			stats := &exp.EngineStats{}
			eOpts := opts
			eOpts.Stats = stats
			t0 := time.Now()
			tbl, err := e.Fn(eOpts)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			wall := time.Since(t0)
			report.WallNS = wall.Nanoseconds()
			results = []exp.Result{{
				ID: e.ID, Table: tbl, Wall: wall,
				Events: stats.Events.Load(), Runs: stats.Runs.Load(),
			}}
			break
		}
		if !found {
			return fmt.Errorf("unknown experiment %q", *expID)
		}
	}

	for _, r := range results {
		report.Experiments = append(report.Experiments, experimentBench{
			ID:     r.ID,
			WallNS: r.Wall.Nanoseconds(),
			Events: r.Events,
			Runs:   r.Runs,
		})
		if !jsonOnly {
			if err := r.Table.Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if *jsonPath == "" {
		return nil
	}
	for _, e := range report.Experiments {
		report.Events += e.Events
		report.Runs += e.Runs
	}
	if secs := float64(report.WallNS) / 1e9; secs > 0 {
		report.EventsPerSec = float64(report.Events) / secs
		report.RunsPerSec = float64(report.Runs) / secs
	}
	if report.Runs > 0 {
		report.NSPerRun = float64(report.WallNS) / float64(report.Runs)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonOnly {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(*jsonPath, out, 0o644)
}
