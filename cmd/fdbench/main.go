// Command fdbench regenerates every table and figure of the reconstructed
// evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	fdbench [-exp all|E1|E2|E3|E4|E5|E6|E7|E8|A1|A2|X1|X2] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncfd/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdbench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (E1..E8, A1, A2, X1, X2) or 'all'")
	quickFlag := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := exp.Options{Seed: *seed, Quick: *quickFlag}

	experiments := map[string]func(exp.Options) (*exp.Table, error){
		"E1": exp.E1DetectionVsN,
		"E2": exp.E2DetectionVsF,
		"E3": exp.E3Disturbance,
		"E4": exp.E4QoS,
		"E5": exp.E5MessageCost,
		"E6": exp.E6MPSensitivity,
		"E7": exp.E7Consensus,
		"E8": exp.E8Propagation,
		"A1": exp.A1TagsAblation,
		"A2": exp.A2WindowAblation,
		"X1": exp.X1DensityExt,
		"X2": exp.X2MobilityExt,
	}

	if strings.EqualFold(*expID, "all") {
		tables, err := exp.All(opts)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := experiments[strings.ToUpper(*expID)]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *expID)
	}
	t, err := fn(opts)
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
